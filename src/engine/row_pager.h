#ifndef PERFEVAL_ENGINE_ROW_PAGER_H_
#define PERFEVAL_ENGINE_ROW_PAGER_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "db/storage.h"
#include "engine/row_layout.h"

namespace perfeval {
namespace engine {

/// Simulated I/O accounting for the row store, mirroring the columnar
/// db::StorageManager's model — same DiskModel charges, same LRU pool
/// budget (a page *count*), same sequential-stream seek discipline — over
/// a row-major page shape: one page holds `rows_per_page` complete tuples
/// (packed stride bytes plus the string payload a serialized row would
/// carry inline). That shape is the design point under test: a row scan
/// always pays full-tuple bytes no matter how few columns the query
/// touches, where the columnar layout reads only the referenced columns.
/// What is held constant vs. what legitimately differs is spelled out in
/// DESIGN.md ("Comparing backends defensibly").
///
/// Thread safety: TouchRows/FlushCaches/ResetStats/StatsSnapshot serialize
/// on one mutex. Determinism is the caller's contract, as with
/// StorageManager: the row executor accounts scan I/O from the
/// coordinating thread in row-range order before fanning compute out, so
/// stats are independent of worker interleaving.
class RowPager {
 public:
  RowPager(db::DiskModel disk, size_t buffer_pool_pages,
           size_t rows_per_page);

  RowPager(const RowPager&) = delete;
  RowPager& operator=(const RowPager&) = delete;

  size_t rows_per_page() const { return rows_per_page_; }

  /// Registers a packed table so page counts and byte sizes are known.
  void RegisterTable(uint32_t table_id, const RowBlock& block);

  /// Re-registers `table_id` with new contents (catalog re-sync after the
  /// write path commits): page sizes are recomputed and every resident
  /// page of the table is evicted — the new version is cold.
  void ReplaceTable(uint32_t table_id, const RowBlock& block);

  /// Number of pages of a registered table.
  size_t NumPages(uint32_t table_id) const;

  /// Touches every page overlapping rows [row_begin, row_end), pages
  /// ascending, and returns the stats delta charged to exactly this call.
  db::StorageStats TouchRows(uint32_t table_id, size_t row_begin,
                             size_t row_end);

  /// Empties the buffer pool — the cold-run "reboot".
  void FlushCaches();

  db::StorageStats StatsSnapshot() const;
  void ResetStats();

 private:
  struct TableMeta {
    /// Exact bytes per page: stride * rows-in-page plus the string
    /// payload of those rows (charged per occurrence, as an inline
    /// row-major serialization would store it).
    std::vector<size_t> page_bytes;
  };

  db::DiskModel disk_;
  size_t buffer_pool_pages_;
  size_t rows_per_page_;

  /// table_id -> page metadata. Written by Register/ReplaceTable (no
  /// concurrent queries, as with StorageManager::ReplaceTable).
  std::unordered_map<uint32_t, TableMeta> tables_;

  mutable std::mutex mu_;
  /// LRU buffer pool: most-recent at front; key = table_id << 32 | page.
  std::list<uint64_t> lru_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> resident_;
  /// Per-table stream head for sequential-read detection: reading page
  /// p+1 right after page p of the same table costs no seek; hits advance
  /// the head too (OS readahead keeps streaming over warm pages).
  std::unordered_map<uint32_t, uint32_t> stream_heads_;
  db::StorageStats stats_;
};

}  // namespace engine
}  // namespace perfeval

#endif  // PERFEVAL_ENGINE_ROW_PAGER_H_
