#ifndef PERFEVAL_ENGINE_BACKEND_H_
#define PERFEVAL_ENGINE_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>

#include "db/backend_kind.h"
#include "db/database.h"
#include "db/plan.h"
#include "db/profile.h"
#include "db/storage.h"
#include "db/table.h"

namespace perfeval {
namespace engine {

/// Per-execution knobs a backend must honor. Deliberately the subset of
/// DatabaseOptions whose semantics are backend-independent — everything
/// here is part of the comparison protocol (held constant across
/// backends), while physical knobs like join_algo or morsel policy belong
/// to one backend's implementation and stay out of the interface.
struct ExecOptions {
  db::ExecMode mode = db::ExecMode::kOptimized;
  /// Intra-query parallelism. Both backends guarantee results and
  /// reported StorageStats identical at any setting.
  int threads = 1;
  /// Checked execution: operators assert their own invariants and throw
  /// QueryError on violation. Checked int64 arithmetic is always on.
  bool check = false;
};

/// One backend execution's complete outcome. `table` is the
/// backend-neutral result every backend converts to (what the
/// differential oracle diffs); the timing split keeps the conversion
/// honest: `server_wall_ns` ends when the backend's *native* result is
/// fully materialized (a selection-materialized columnar table; a packed
/// RowBlock), and `finish_ns` is the untimed-by-server conversion of a
/// non-columnar native result into `table`. Benches report both — see
/// DESIGN.md, "Comparing backends defensibly".
struct BackendResult {
  std::shared_ptr<const db::Table> table;
  db::Profiler profile;
  /// Buffer-pool activity charged to exactly this execution.
  db::StorageStats storage;
  /// Measured CPU-side wall time of the server phase.
  int64_t server_wall_ns = 0;
  /// Simulated I/O stall charged inside the server phase
  /// (== storage.stall_ns; kept separate so observed = wall + stall).
  int64_t stall_ns = 0;
  /// Converting the native result to `table` (0 when native is columnar).
  int64_t finish_ns = 0;

  int64_t ObservedServerNs() const { return server_wall_ns + stall_ns; }
};

/// A query-execution backend: a private copy of the catalog in its own
/// physical layout, executing the shared logical plan representation
/// (db::PlanNode / PlanSpec) with per-operator traces and I/O accounting.
/// Two production implementations — the columnar vectorized executor
/// (ColumnarBackend, adapting db::Database) and the packed-tuple row
/// store (RowStoreBackend) — race through one harness, reproducing the
/// paper's two-engines-one-protocol discipline internally.
class Backend {
 public:
  virtual ~Backend() = default;

  virtual db::BackendKind kind() const = 0;
  const char* name() const { return db::BackendKindName(kind()); }

  /// Adds `table` to the backend's catalog in its native layout.
  virtual void RegisterTable(const std::string& name,
                             std::shared_ptr<db::Table> table) = 0;

  /// Folds the database's committed state into this backend's catalog:
  /// runs the write-path refresh hook, then re-imports any table whose
  /// installed snapshot changed since the last sync. Lets a secondary
  /// backend observe exactly the snapshot a Database::Run would.
  virtual void SyncFrom(db::Database* database) = 0;

  /// Executes `plan` against the backend's catalog. Throws db::QueryError
  /// for runtime query failures (overflow, checked-mode violations), as
  /// Database::Run does.
  virtual BackendResult Execute(const db::PlanPtr& plan,
                                const ExecOptions& options) = 0;

  /// Cumulative I/O counters of the backend's buffer pool.
  virtual db::StorageStats StorageSnapshot() const = 0;

  /// Empties the backend's buffer pool — the cold-run "reboot".
  virtual void FlushCaches() = 0;
};

/// Builds a backend over `database`'s catalog and storage configuration:
/// kColumnar adapts the database itself; kRowStore packs every catalog
/// table into row form with a matching pager budget (same DiskModel, same
/// buffer_pool_pages, same rows_per_page — the held-constant half of the
/// comparison protocol). `database` must outlive the returned backend.
std::unique_ptr<Backend> CreateBackend(db::BackendKind kind,
                                       db::Database* database);

}  // namespace engine
}  // namespace perfeval

#endif  // PERFEVAL_ENGINE_BACKEND_H_
