#ifndef PERFEVAL_ENGINE_ROW_BACKEND_H_
#define PERFEVAL_ENGINE_ROW_BACKEND_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "engine/backend.h"
#include "engine/row_layout.h"
#include "engine/row_pager.h"

namespace perfeval {
namespace engine {

/// The row-store backend: every catalog table is packed into fixed-stride
/// row tuples over a shared string heap (engine/row_layout.h), and plan
/// trees execute row-at-a-time with batching — a genuinely different
/// design point from the columnar engine, not a wrapper over the
/// reference interpreter:
///
///  - No selection vectors: a filter copies surviving tuples (one
///    fixed-stride memcpy each) into a fresh block instead of refining an
///    index vector over columnar arrays.
///  - Tuple-at-a-time CPU cost: general predicates and projections
///    evaluate db::Expr per row over batch-unpacked scratch columns
///    (kDebug always does; kOptimized takes compiled fast paths for
///    simple predicates and column-reference projections that read packed
///    slots directly).
///  - Row-major cache/I/O behavior: a scan touches full tuples no matter
///    how few columns the query needs (RowPager charges accordingly), and
///    strings move by (offset, length) slot over a shared heap instead of
///    std::string copies.
///
/// Semantics are the engine's, bit for bit where the contract demands it:
/// Kleene 3VL with UNKNOWN -> not-selected at filter boundaries (via
/// db::Expr), aggregates skip NULLs and yield NULL over zero rows,
/// checked int64 accumulation, groups in first-occurrence order, NULL
/// sorting smallest, joins rejecting non-int64/NULL keys — the
/// backend-vs-backend oracle sweep (tests/sql/oracle_backend_test.cc)
/// holds all of it to zero mismatches against both the columnar engine
/// and the reference interpreter.
///
/// Determinism: results and StorageStats are identical at any `threads`
/// setting — parallel operators partition rows into fixed-size batches
/// (never derived from the thread count), workers fill disjoint ranges,
/// and scan I/O is accounted by the coordinator in row order before
/// compute fans out.
///
/// Thread safety: concurrent Execute() calls are safe (blocks are
/// immutable, the pager locks internally, the catalog is read under a
/// shared mutex); RegisterTable/SyncFrom take the catalog mutex
/// exclusively and must not race in-flight executions of the tables they
/// replace.
class RowStoreBackend : public Backend {
 public:
  struct Options {
    db::DiskModel disk;
    size_t buffer_pool_pages = 256;
    size_t rows_per_page = 4096;
    /// Rows per executor batch: the unpack/evaluate granularity of the
    /// general path and the unit of parallel range partitioning. Fixed
    /// per backend instance; never derived from the thread count.
    size_t batch_rows = 1024;
  };

  RowStoreBackend() : RowStoreBackend(Options()) {}
  explicit RowStoreBackend(Options options);

  /// Convenience: a backend whose pager matches `database`'s storage
  /// configuration (same DiskModel / pool budget / rows per page), with
  /// every catalog table imported.
  static std::unique_ptr<RowStoreBackend> Over(db::Database* database);

  db::BackendKind kind() const override {
    return db::BackendKind::kRowStore;
  }

  void RegisterTable(const std::string& name,
                     std::shared_ptr<db::Table> table) override;

  /// Runs the database's refresh hook, then re-packs every table whose
  /// installed snapshot changed identity since the last sync (and imports
  /// tables this backend has not seen). Re-packed tables are cold in the
  /// pager, mirroring StorageManager::ReplaceTable.
  void SyncFrom(db::Database* database) override;

  BackendResult Execute(const db::PlanPtr& plan,
                        const ExecOptions& options) override;

  db::StorageStats StorageSnapshot() const override {
    return pager_->StatsSnapshot();
  }

  void FlushCaches() override { pager_->FlushCaches(); }

  const Options& options() const { return options_; }

  /// The packed block of a registered table (tests inspect layouts and
  /// page accounting through this).
  RowBlockPtr GetBlock(const std::string& name) const;
  uint32_t TableId(const std::string& name) const;
  RowPager& pager() { return *pager_; }

 private:
  struct CatalogEntry {
    RowBlockPtr block;
    /// Identity of the columnar snapshot this block was packed from;
    /// SyncFrom re-packs when the database's pointer differs.
    std::shared_ptr<const db::Table> source;
    uint32_t table_id = 0;
  };

  Options options_;
  std::unique_ptr<RowPager> pager_;

  /// Guards the catalog map. Executions hold it shared; registration and
  /// sync hold it exclusively.
  mutable std::shared_mutex catalog_mu_;
  std::unordered_map<std::string, CatalogEntry> tables_;
  uint32_t next_table_id_ = 1;
};

}  // namespace engine
}  // namespace perfeval

#endif  // PERFEVAL_ENGINE_ROW_BACKEND_H_
