#ifndef PERFEVAL_ENGINE_COLUMNAR_BACKEND_H_
#define PERFEVAL_ENGINE_COLUMNAR_BACKEND_H_

#include <memory>
#include <string>

#include "engine/backend.h"

namespace perfeval {
namespace engine {

/// The existing columnar vectorized executor behind the Backend
/// interface: a thin adapter over db::Database::Run (adapted, not
/// rewritten — every prior A-bench result stays the measurement of this
/// code path). The wrapped database is borrowed, so the SQL shell and
/// benches can keep planning against the same catalog they execute on.
class ColumnarBackend : public Backend {
 public:
  explicit ColumnarBackend(db::Database* database) : database_(database) {}

  db::BackendKind kind() const override {
    return db::BackendKind::kColumnar;
  }

  void RegisterTable(const std::string& name,
                     std::shared_ptr<db::Table> table) override {
    database_->RegisterTable(name, std::move(table));
  }

  void SyncFrom(db::Database* database) override;

  BackendResult Execute(const db::PlanPtr& plan,
                        const ExecOptions& options) override;

  db::StorageStats StorageSnapshot() const override {
    return database_->storage().StatsSnapshot();
  }

  void FlushCaches() override { database_->FlushCaches(); }

  db::Database* database() { return database_; }

 private:
  db::Database* database_;
};

}  // namespace engine
}  // namespace perfeval

#endif  // PERFEVAL_ENGINE_COLUMNAR_BACKEND_H_
