#include "engine/row_backend.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "db/error.h"
#include "db/expr.h"
#include "db/invariants.h"
#include "db/plan.h"
#include "sched/parallel_for.h"

namespace perfeval {
namespace engine {
namespace {

using Clock = std::chrono::steady_clock;

int64_t NsSince(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              start)
      .count();
}

struct CatalogView {
  RowBlockPtr block;
  uint32_t table_id = 0;
};

/// Everything one execution threads down the plan tree.
struct RowExecCtx {
  db::ExecMode mode = db::ExecMode::kOptimized;
  int threads = 1;
  bool check = false;
  size_t batch_rows = 1024;
  db::Profiler* profiler = nullptr;
  RowPager* pager = nullptr;
  const std::unordered_map<std::string, CatalogView>* catalog = nullptr;
  /// I/O charged to this execution so far (deltas returned by the pager,
  /// accumulated on the coordinating thread in row order).
  db::StorageStats io;
};

/// Times one operator's own work (children already executed) and records
/// an OpTrace on destruction — the row-store analogue of plan.cc's
/// TraceScope, with identical op naming so per-operator attribution lines
/// up across backends.
class RowTrace {
 public:
  RowTrace(RowExecCtx& ctx, std::string op, size_t rows_in)
      : ctx_(ctx),
        op_(std::move(op)),
        rows_in_(rows_in),
        stall_before_(ctx.io.stall_ns),
        start_(Clock::now()) {}

  ~RowTrace() {
    if (ctx_.profiler == nullptr) {
      return;
    }
    db::OpTrace trace;
    trace.op = std::move(op_);
    trace.rows_in = rows_in_;
    trace.rows_out = rows_out_;
    trace.wall_ns = NsSince(start_);
    trace.stall_ns = ctx_.io.stall_ns - stall_before_;
    trace.threads_used = threads_used_;
    ctx_.profiler->Record(std::move(trace));
  }

  void set_rows_out(size_t n) { rows_out_ = n; }
  void set_threads_used(int n) { threads_used_ = n; }

 private:
  RowExecCtx& ctx_;
  std::string op_;
  size_t rows_in_;
  size_t rows_out_ = 0;
  int threads_used_ = 0;
  int64_t stall_before_;
  Clock::time_point start_;
};

const CatalogView& LookupTable(const RowExecCtx& ctx,
                               const std::string& name) {
  auto it = ctx.catalog->find(name);
  if (it == ctx.catalog->end()) {
    throw db::QueryError(StatusCode::kNotFound,
                         "row backend: unknown table " + name);
  }
  return it->second;
}

/// A scratch columnar view of rows [begin, end) of a block — the batch
/// half of "row-at-a-time with batching": db::Expr evaluation (the
/// engine's full NULL/overflow semantics for free) runs tuple-at-a-time
/// over it.
db::Table UnpackBatch(const RowBlock& block, size_t begin, size_t end) {
  db::Table scratch(block.schema());
  scratch.ReserveRows(end - begin);
  UnpackRows(block, begin, end, &scratch);
  return scratch;
}

bool EvalSimpleAt(const RowBlock& block, size_t r,
                  const db::SimplePredicate& pred, bool is_double) {
  if (block.IsNull(r, pred.column)) {
    return false;  // UNKNOWN -> not selected at the filter boundary.
  }
  double v = is_double ? block.DoubleAt(r, pred.column)
                       : static_cast<double>(block.Int64At(r, pred.column));
  switch (pred.op) {
    case db::CmpOp::kEq:
      return v == pred.value;
    case db::CmpOp::kNe:
      return v != pred.value;
    case db::CmpOp::kLt:
      return v < pred.value;
    case db::CmpOp::kLe:
      return v <= pred.value;
    case db::CmpOp::kGt:
      return v > pred.value;
    case db::CmpOp::kGe:
      return v >= pred.value;
  }
  return false;
}

/// Shared body of Filter and FilterScan: evaluates `predicate` over
/// fixed-size row batches (in parallel when asked — batch boundaries
/// never depend on the thread count, and per-batch survivor lists are
/// concatenated in batch order, so output and stats are deterministic at
/// any `threads`), then copies surviving tuples into a fresh block
/// sharing the input's heap.
RowBlockPtr FilterBlock(const RowBlock& input, const db::Expr& predicate,
                        RowExecCtx& ctx, RowTrace* trace, const char* op) {
  size_t n = input.num_rows();
  size_t batch = ctx.batch_rows;
  size_t num_batches = n == 0 ? 0 : (n + batch - 1) / batch;
  std::vector<std::vector<uint32_t>> survivors(num_batches);

  db::SimplePredicate simple;
  bool fast = ctx.mode == db::ExecMode::kOptimized &&
              predicate.AsSimplePredicate(&simple) &&
              input.schema().column(simple.column).type !=
                  db::DataType::kString;
  bool is_double = fast && input.schema().column(simple.column).type ==
                               db::DataType::kDouble;

  auto eval_batch = [&](size_t b) {
    size_t begin = b * batch;
    size_t end = std::min(n, begin + batch);
    std::vector<uint32_t>& out = survivors[b];
    if (fast) {
      // Compiled fast path: the predicate reads the packed slot at a
      // fixed offset — no unpack, no virtual dispatch per tuple.
      for (size_t r = begin; r < end; ++r) {
        if (EvalSimpleAt(input, r, simple, is_double)) {
          out.push_back(static_cast<uint32_t>(r));
        }
      }
      return;
    }
    db::Table scratch = UnpackBatch(input, begin, end);
    for (size_t r = begin; r < end; ++r) {
      if (predicate.EvalBool(scratch, r - begin)) {
        out.push_back(static_cast<uint32_t>(r));
      }
    }
  };

  int threads_used = 1;
  if (ctx.threads > 1 && num_batches > 1) {
    sched::ParallelForStats stats;
    sched::ParallelFor(ctx.threads, num_batches, eval_batch, &stats);
    threads_used = stats.workers_spawned;
  } else {
    for (size_t b = 0; b < num_batches; ++b) {
      eval_batch(b);
    }
  }

  size_t total = 0;
  for (const auto& s : survivors) {
    total += s.size();
  }
  auto out = std::make_shared<RowBlock>(input.layout(), input.heap());
  out->ReserveRows(total);
  if (ctx.check) {
    std::vector<uint32_t> all;
    all.reserve(total);
    for (const auto& s : survivors) {
      all.insert(all.end(), s.begin(), s.end());
    }
    db::CheckSelectionStrictlyIncreasing(all, op);
    db::CheckSelectionSubsequence(all, nullptr, n, op);
  }
  for (const auto& s : survivors) {
    for (uint32_t r : s) {
      out->AppendRowCopy(input, r);
    }
  }
  trace->set_rows_out(out->num_rows());
  trace->set_threads_used(threads_used);
  return out;
}

int64_t JoinKeyAt(const RowBlock& block, size_t col, size_t row,
                  const std::string& name) {
  if (block.schema().column(col).type != db::DataType::kInt64) {
    throw db::QueryError(StatusCode::kInvalidArgument,
                         "join key column " + name + " is not int64");
  }
  if (block.IsNull(row, col)) {
    throw db::QueryError(StatusCode::kInvalidArgument,
                         "join key column " + name + " contains NULL (row " +
                             std::to_string(row) +
                             "); NULL join keys are unsupported");
  }
  return block.Int64At(row, col);
}

RowBlockPtr ExecJoin(const db::PlanSpec& spec, const RowBlockPtr& left,
                     const RowBlockPtr& right, RowExecCtx& ctx,
                     const char* op) {
  size_t nkeys = spec.left_keys.size();
  std::vector<size_t> lk(nkeys);
  std::vector<size_t> rk(nkeys);
  for (size_t k = 0; k < nkeys; ++k) {
    lk[k] = left->schema().MustIndexOf(spec.left_keys[k]);
    rk[k] = right->schema().MustIndexOf(spec.right_keys[k]);
  }

  // Build from the right (the engine's build side), probe left rows in
  // order: left-major match order, build rows ascending within a key —
  // the reference interpreter's emission order.
  using Key = std::pair<int64_t, int64_t>;
  std::map<Key, std::vector<uint32_t>> build;
  for (size_t r = 0; r < right->num_rows(); ++r) {
    Key key{JoinKeyAt(*right, rk[0], r, spec.right_keys[0]),
            nkeys > 1 ? JoinKeyAt(*right, rk[1], r, spec.right_keys[1]) : 0};
    build[key].push_back(static_cast<uint32_t>(r));
  }
  std::vector<uint32_t> out_left;
  std::vector<uint32_t> out_right;
  for (size_t r = 0; r < left->num_rows(); ++r) {
    Key key{JoinKeyAt(*left, lk[0], r, spec.left_keys[0]),
            nkeys > 1 ? JoinKeyAt(*left, lk[1], r, spec.left_keys[1]) : 0};
    auto it = build.find(key);
    if (it == build.end()) {
      continue;
    }
    for (uint32_t rr : it->second) {
      out_left.push_back(static_cast<uint32_t>(r));
      out_right.push_back(rr);
    }
  }

  if (ctx.check && nkeys == 1) {
    std::vector<int64_t> probe_keys(left->num_rows());
    for (size_t r = 0; r < left->num_rows(); ++r) {
      probe_keys[r] = left->Int64At(r, lk[0]);
    }
    std::vector<int64_t> build_keys(right->num_rows());
    for (size_t r = 0; r < right->num_rows(); ++r) {
      build_keys[r] = right->Int64At(r, rk[0]);
    }
    db::CheckJoinMatchConservation(probe_keys, build_keys, out_left.size(),
                                   op);
  }

  // Output layout: left columns then right columns. Heap: share when
  // possible (same heap, or the only string columns live on one side);
  // otherwise concatenate both heaps and shift the right side's string
  // slots by the concatenation offset.
  std::vector<db::ColumnSpec> specs = left->schema().columns();
  for (const db::ColumnSpec& s : right->schema().columns()) {
    specs.push_back(s);
  }
  auto has_strings = [](const RowBlock& b) {
    for (const db::ColumnSpec& s : b.schema().columns()) {
      if (s.type == db::DataType::kString) {
        return true;
      }
    }
    return false;
  };
  bool left_strings = has_strings(*left);
  bool right_strings = has_strings(*right);
  std::shared_ptr<StringHeap> heap;
  uint32_t right_delta = 0;
  if (left->heap() == right->heap() || !right_strings) {
    heap = left->heap();
  } else if (!left_strings) {
    heap = right->heap();
  } else {
    heap = std::make_shared<StringHeap>();
    heap->AppendHeap(*left->heap());  // left slots keep offset 0.
    right_delta = heap->AppendHeap(*right->heap());
  }

  auto out = std::make_shared<RowBlock>(
      RowLayout::For(db::Schema(std::move(specs))), heap);
  out->ReserveRows(out_left.size());
  size_t lcols = left->schema().num_columns();
  size_t rcols = right->schema().num_columns();
  std::vector<uint8_t> right_is_string(rcols, 0);
  for (size_t c = 0; c < rcols; ++c) {
    right_is_string[c] =
        right->schema().column(c).type == db::DataType::kString ? 1 : 0;
  }
  for (size_t i = 0; i < out_left.size(); ++i) {
    uint32_t lr = out_left[i];
    uint32_t rr = out_right[i];
    uint8_t* row = out->AppendRow();
    for (size_t c = 0; c < lcols; ++c) {
      if (left->IsNull(lr, c)) {
        out->SetNull(row, c);
      } else {
        out->SetRawSlot(row, c, left->RawSlotAt(lr, c));
      }
    }
    for (size_t c = 0; c < rcols; ++c) {
      size_t oc = lcols + c;
      if (right->IsNull(rr, c)) {
        out->SetNull(row, oc);
      } else {
        uint64_t slot = right->RawSlotAt(rr, c);
        if (right_delta != 0 && right_is_string[c] != 0) {
          slot = StringHeap::ShiftSlot(slot, right_delta);
        }
        out->SetRawSlot(row, oc, slot);
      }
    }
  }
  return out;
}

RowBlockPtr ExecProject(const db::PlanSpec& spec, const RowBlockPtr& input,
                        RowExecCtx& ctx, RowTrace* trace) {
  size_t n = input->num_rows();
  size_t ncols = spec.exprs.size();
  std::vector<db::ColumnSpec> specs(ncols);
  for (size_t j = 0; j < ncols; ++j) {
    specs[j] = {spec.names[j], spec.exprs[j]->ResultType(input->schema())};
  }

  // Fast path: every output is a plain column reference — tuple
  // re-shaping by raw slot copy, string heap shared, parallel over
  // fixed-size row ranges into a presized block.
  std::vector<size_t> src_cols(ncols);
  bool all_refs = ctx.mode == db::ExecMode::kOptimized;
  for (size_t j = 0; all_refs && j < ncols; ++j) {
    all_refs = spec.exprs[j]->AsColumnIndex(&src_cols[j]);
  }
  if (all_refs) {
    auto out = std::make_shared<RowBlock>(
        RowLayout::For(db::Schema(std::move(specs))), input->heap());
    out->ResizeRows(n);
    size_t batch = ctx.batch_rows;
    size_t num_batches = n == 0 ? 0 : (n + batch - 1) / batch;
    auto copy_range = [&](size_t b) {
      size_t begin = b * batch;
      size_t end = std::min(n, begin + batch);
      for (size_t r = begin; r < end; ++r) {
        uint8_t* row = out->MutableRowPtr(r);
        for (size_t j = 0; j < ncols; ++j) {
          if (input->IsNull(r, src_cols[j])) {
            out->SetNull(row, j);
          } else {
            out->SetRawSlot(row, j, input->RawSlotAt(r, src_cols[j]));
          }
        }
      }
    };
    int threads_used = 1;
    if (ctx.threads > 1 && num_batches > 1) {
      sched::ParallelForStats stats;
      sched::ParallelFor(ctx.threads, num_batches, copy_range, &stats);
      threads_used = stats.workers_spawned;
    } else {
      for (size_t b = 0; b < num_batches; ++b) {
        copy_range(b);
      }
    }
    trace->set_rows_out(n);
    trace->set_threads_used(threads_used);
    return out;
  }

  // General path: batch-unpack, evaluate each expression tuple-at-a-time
  // (full engine semantics via db::Expr), re-intern computed strings into
  // a fresh heap.
  auto out = std::make_shared<RowBlock>(
      RowLayout::For(db::Schema(std::move(specs))));
  out->ReserveRows(n);
  size_t batch = ctx.batch_rows;
  for (size_t begin = 0; begin < n; begin += batch) {
    size_t end = std::min(n, begin + batch);
    db::Table scratch = UnpackBatch(*input, begin, end);
    for (size_t r = begin; r < end; ++r) {
      uint8_t* row = out->AppendRow();
      for (size_t j = 0; j < ncols; ++j) {
        out->SetValue(row, j, spec.exprs[j]->EvalRow(scratch, r - begin));
      }
    }
  }
  trace->set_rows_out(n);
  trace->set_threads_used(1);
  return out;
}

/// Flat accumulator for one (group, aggregate) pair — the reference
/// interpreter's state shape, reproduced so both backends and the
/// interpreter agree bit-for-bit on int64 paths and to 1e-9 on doubles.
struct AggState {
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  int64_t isum = 0;
  int64_t imin = 0;
  int64_t imax = 0;
  int64_t count = 0;
  std::map<std::string, bool> distinct;
};

RowBlockPtr ExecAggregate(const db::PlanSpec& spec, const RowBlockPtr& input,
                          RowExecCtx& ctx, const char* op) {
  const db::Schema& schema = input->schema();
  std::vector<size_t> group_cols;
  for (const std::string& name : spec.group_by) {
    group_cols.push_back(schema.MustIndexOf(name));
  }
  const std::vector<db::AggSpec>& aggregates = spec.aggregates;
  std::vector<uint8_t> int_agg(aggregates.size(), 0);
  for (size_t a = 0; a < aggregates.size(); ++a) {
    const db::AggSpec& as = aggregates[a];
    int_agg[a] = (as.op == db::AggOp::kSum || as.op == db::AggOp::kAvg ||
                  as.op == db::AggOp::kMin || as.op == db::AggOp::kMax) &&
                         as.expr != nullptr &&
                         as.expr->ResultType(schema) == db::DataType::kInt64
                     ? 1
                     : 0;
  }

  // One serial pass in row order (batched unpack for expression input):
  // groups appear in first-occurrence order, doubles accumulate in flat
  // input order — matching the reference interpreter exactly; the 1e-9
  // diff tolerance absorbs the columnar engine's morsel-order float
  // reassociation.
  std::unordered_map<std::string, size_t> group_index;
  std::vector<uint32_t> first_rows;
  std::vector<std::vector<AggState>> states(aggregates.size());
  size_t n = input->num_rows();
  size_t batch = ctx.batch_rows;
  std::string key;
  for (size_t begin = 0; begin < n; begin += batch) {
    size_t end = std::min(n, begin + batch);
    db::Table scratch = UnpackBatch(*input, begin, end);
    for (size_t r = begin; r < end; ++r) {
      size_t sr = r - begin;
      key.clear();
      for (size_t c : group_cols) {
        key += scratch.column(c).GetValue(sr).ToString();
        key += '\x1f';
      }
      auto [it, inserted] = group_index.try_emplace(key, group_index.size());
      if (inserted) {
        first_rows.push_back(static_cast<uint32_t>(r));
        for (size_t a = 0; a < aggregates.size(); ++a) {
          states[a].emplace_back();
        }
      }
      size_t g = it->second;
      for (size_t a = 0; a < aggregates.size(); ++a) {
        const db::AggSpec& as = aggregates[a];
        AggState& state = states[a][g];
        if (as.op == db::AggOp::kCount && as.expr == nullptr) {
          ++state.count;
          continue;
        }
        db::Value v = as.expr->EvalRow(scratch, sr);
        if (v.is_null()) {
          continue;  // SQL aggregates skip NULL inputs.
        }
        switch (as.op) {
          case db::AggOp::kCount:
            ++state.count;
            break;
          case db::AggOp::kCountDistinct:
            state.distinct[v.ToString()] = true;
            break;
          default:
            if (int_agg[a] != 0) {
              int64_t i = v.AsInt64();
              if (state.count == 0) {
                state.imin = i;
                state.imax = i;
              } else {
                state.imin = std::min(state.imin, i);
                state.imax = std::max(state.imax, i);
              }
              state.isum = db::CheckedAdd(state.isum, i, "SUM accumulator");
            } else {
              double d = v.AsDouble();
              if (state.count == 0) {
                state.min = d;
                state.max = d;
              } else {
                state.min = std::min(state.min, d);
                state.max = std::max(state.max, d);
              }
              state.sum += d;
            }
            ++state.count;
            break;
        }
      }
    }
  }
  if (group_cols.empty() && first_rows.empty()) {
    first_rows.push_back(0);  // Global aggregate over zero rows.
    for (size_t a = 0; a < aggregates.size(); ++a) {
      states[a].emplace_back();
    }
  }
  if (ctx.check) {
    // First-occurrence order implies strictly increasing representative
    // rows; a violation means the grouping pass reordered input.
    db::CheckSelectionStrictlyIncreasing(first_rows, op);
  }

  std::vector<db::ColumnSpec> specs;
  for (size_t c : group_cols) {
    specs.push_back(schema.column(c));
  }
  for (const db::AggSpec& as : aggregates) {
    specs.push_back({as.output_name, db::AggOutputType(as, schema)});
  }
  // Group-key strings are raw slot copies out of the input block, so the
  // output shares its heap; aggregate outputs are always numeric.
  auto out = std::make_shared<RowBlock>(
      RowLayout::For(db::Schema(std::move(specs))), input->heap());
  size_t emitted = group_cols.empty() ? 1 : first_rows.size();
  out->ReserveRows(emitted);
  for (size_t g = 0; g < emitted; ++g) {
    uint8_t* row = out->AppendRow();
    for (size_t gc = 0; gc < group_cols.size(); ++gc) {
      if (input->IsNull(first_rows[g], group_cols[gc])) {
        out->SetNull(row, gc);
      } else {
        out->SetRawSlot(row, gc,
                        input->RawSlotAt(first_rows[g], group_cols[gc]));
      }
    }
    for (size_t a = 0; a < aggregates.size(); ++a) {
      const AggState& state = states[a][g];
      size_t oc = group_cols.size() + a;
      bool is_int = int_agg[a] != 0;
      switch (aggregates[a].op) {
        case db::AggOp::kSum:
          if (state.count == 0) {
            out->SetNull(row, oc);
          } else if (is_int) {
            out->SetInt64(row, oc, state.isum);
          } else {
            out->SetDouble(row, oc, state.sum);
          }
          break;
        case db::AggOp::kAvg:
          if (state.count == 0) {
            out->SetNull(row, oc);
          } else if (is_int) {
            out->SetDouble(row, oc, static_cast<double>(state.isum) /
                                        static_cast<double>(state.count));
          } else {
            out->SetDouble(row, oc,
                           state.sum / static_cast<double>(state.count));
          }
          break;
        case db::AggOp::kMin:
          if (state.count == 0) {
            out->SetNull(row, oc);
          } else if (is_int) {
            out->SetInt64(row, oc, state.imin);
          } else {
            out->SetDouble(row, oc, state.min);
          }
          break;
        case db::AggOp::kMax:
          if (state.count == 0) {
            out->SetNull(row, oc);
          } else if (is_int) {
            out->SetInt64(row, oc, state.imax);
          } else {
            out->SetDouble(row, oc, state.max);
          }
          break;
        case db::AggOp::kCount:
          out->SetInt64(row, oc, state.count);
          break;
        case db::AggOp::kCountDistinct:
          out->SetInt64(row, oc,
                        static_cast<int64_t>(state.distinct.size()));
          break;
      }
    }
  }
  return out;
}

/// Typed comparator over packed rows; ordering semantics mirror
/// db::RowComparator exactly (NULL smallest before the direction flip,
/// int64/date native, doubles with NaN ordered greatest and tying with
/// itself — the explicit NaN branch keeps the strict weak ordering valid
/// under descending keys — strings lexicographic).
class BlockComparator {
 public:
  BlockComparator(const RowBlock& block, const std::vector<db::SortKey>& keys)
      : block_(block) {
    for (const db::SortKey& spec : keys) {
      Key key;
      key.col = block.schema().MustIndexOf(spec.column);
      key.type = block.schema().column(key.col).type;
      key.ascending = spec.ascending;
      keys_.push_back(key);
    }
  }

  bool operator()(uint32_t a, uint32_t b) const {
    for (const Key& key : keys_) {
      int c = CompareOne(key, a, b);
      if (c != 0) {
        return key.ascending ? c < 0 : c > 0;
      }
    }
    return false;
  }

 private:
  struct Key {
    size_t col = 0;
    db::DataType type = db::DataType::kInt64;
    bool ascending = true;
  };

  int CompareOne(const Key& key, uint32_t a, uint32_t b) const {
    bool a_null = block_.IsNull(a, key.col);
    bool b_null = block_.IsNull(b, key.col);
    if (a_null || b_null) {
      return a_null == b_null ? 0 : (a_null ? -1 : 1);
    }
    switch (key.type) {
      case db::DataType::kInt64:
      case db::DataType::kDate: {
        int64_t x = block_.Int64At(a, key.col);
        int64_t y = block_.Int64At(b, key.col);
        return x < y ? -1 : (x == y ? 0 : 1);
      }
      case db::DataType::kDouble: {
        double x = block_.DoubleAt(a, key.col);
        double y = block_.DoubleAt(b, key.col);
        bool x_nan = std::isnan(x);
        bool y_nan = std::isnan(y);
        if (x_nan || y_nan) {
          return x_nan == y_nan ? 0 : (x_nan ? 1 : -1);
        }
        return x < y ? -1 : (x == y ? 0 : 1);
      }
      case db::DataType::kString: {
        std::string_view x = block_.StringAt(a, key.col);
        std::string_view y = block_.StringAt(b, key.col);
        return x < y ? -1 : (x == y ? 0 : 1);
      }
    }
    return 0;
  }

  const RowBlock& block_;
  std::vector<Key> keys_;
};

RowBlockPtr GatherRows(const RowBlock& input,
                       const std::vector<uint32_t>& rows) {
  auto out = std::make_shared<RowBlock>(input.layout(), input.heap());
  out->ReserveRows(rows.size());
  for (uint32_t r : rows) {
    out->AppendRowCopy(input, r);
  }
  return out;
}

RowBlockPtr ExecSort(const db::PlanSpec& spec, const RowBlockPtr& input,
                     RowExecCtx& ctx, bool top_n, const char* op) {
  std::vector<uint32_t> rows(input->num_rows());
  for (size_t i = 0; i < rows.size(); ++i) {
    rows[i] = static_cast<uint32_t>(i);
  }
  BlockComparator less(*input, spec.sort_keys);
  std::stable_sort(rows.begin(), rows.end(), less);
  if (ctx.check) {
    std::vector<uint32_t> identity(input->num_rows());
    for (size_t i = 0; i < identity.size(); ++i) {
      identity[i] = static_cast<uint32_t>(i);
    }
    db::CheckPermutation(identity, rows, op);
  }
  if (top_n && rows.size() > spec.limit) {
    rows.resize(spec.limit);
  }
  return GatherRows(*input, rows);
}

RowBlockPtr ExecNode(const db::PlanNode& node, RowExecCtx& ctx) {
  db::PlanSpec spec = node.Spec();
  std::vector<const db::PlanNode*> children = node.Children();
  switch (spec.kind) {
    case db::PlanKind::kScan: {
      const CatalogView& entry = LookupTable(ctx, spec.table_name);
      RowTrace trace(ctx, "Scan(" + spec.table_name + ")",
                     entry.block->num_rows());
      // A row scan reads whole tuples: every page of the table is
      // touched no matter which columns the query wants — the layout's
      // defining I/O cost, charged in row order from the coordinator.
      ctx.io += ctx.pager->TouchRows(entry.table_id, 0,
                                     entry.block->num_rows());
      trace.set_rows_out(entry.block->num_rows());
      return entry.block;
    }
    case db::PlanKind::kFilterScan: {
      const CatalogView& entry = LookupTable(ctx, spec.table_name);
      RowTrace trace(ctx, "FilterScan(" + spec.table_name + ")",
                     entry.block->num_rows());
      ctx.io += ctx.pager->TouchRows(entry.table_id, 0,
                                     entry.block->num_rows());
      return FilterBlock(*entry.block, *spec.predicate, ctx, &trace,
                         "FilterScan");
    }
    case db::PlanKind::kFilter: {
      RowBlockPtr input = ExecNode(*children[0], ctx);
      RowTrace trace(ctx, "Filter", input->num_rows());
      return FilterBlock(*input, *spec.predicate, ctx, &trace, "Filter");
    }
    case db::PlanKind::kProject: {
      RowBlockPtr input = ExecNode(*children[0], ctx);
      RowTrace trace(ctx, "Project", input->num_rows());
      return ExecProject(spec, input, ctx, &trace);
    }
    case db::PlanKind::kHashJoin:
    case db::PlanKind::kMergeJoin: {
      RowBlockPtr left = ExecNode(*children[0], ctx);
      RowBlockPtr right = ExecNode(*children[1], ctx);
      bool hash = spec.kind == db::PlanKind::kHashJoin;
      std::string name =
          std::string(hash ? "HashJoin(" : "MergeJoin(") +
          spec.left_keys[0] + "=" + spec.right_keys[0] + ")";
      RowTrace trace(ctx, std::move(name),
                     left->num_rows() + right->num_rows());
      RowBlockPtr out = ExecJoin(spec, left, right, ctx,
                                 hash ? "HashJoin" : "MergeJoin");
      trace.set_rows_out(out->num_rows());
      return out;
    }
    case db::PlanKind::kAggregate: {
      RowBlockPtr input = ExecNode(*children[0], ctx);
      RowTrace trace(ctx, "Aggregate", input->num_rows());
      RowBlockPtr out = ExecAggregate(spec, input, ctx, "Aggregate");
      trace.set_rows_out(out->num_rows());
      return out;
    }
    case db::PlanKind::kSort: {
      RowBlockPtr input = ExecNode(*children[0], ctx);
      RowTrace trace(ctx, "Sort", input->num_rows());
      RowBlockPtr out = ExecSort(spec, input, ctx, /*top_n=*/false, "Sort");
      trace.set_rows_out(out->num_rows());
      return out;
    }
    case db::PlanKind::kTopN: {
      RowBlockPtr input = ExecNode(*children[0], ctx);
      RowTrace trace(ctx, "TopN", input->num_rows());
      RowBlockPtr out = ExecSort(spec, input, ctx, /*top_n=*/true, "TopN");
      trace.set_rows_out(out->num_rows());
      return out;
    }
    case db::PlanKind::kLimit: {
      RowBlockPtr input = ExecNode(*children[0], ctx);
      RowTrace trace(ctx, "Limit", input->num_rows());
      std::vector<uint32_t> rows;
      size_t keep = std::min(input->num_rows(), spec.limit);
      rows.reserve(keep);
      for (size_t r = 0; r < keep; ++r) {
        rows.push_back(static_cast<uint32_t>(r));
      }
      RowBlockPtr out = GatherRows(*input, rows);
      trace.set_rows_out(out->num_rows());
      return out;
    }
  }
  throw db::QueryError(StatusCode::kInternal, "unknown plan kind");
}

}  // namespace

RowStoreBackend::RowStoreBackend(Options options)
    : options_(options),
      pager_(std::make_unique<RowPager>(options.disk,
                                        options.buffer_pool_pages,
                                        options.rows_per_page)) {
  PERFEVAL_CHECK_GT(options_.batch_rows, 0u);
}

std::unique_ptr<RowStoreBackend> RowStoreBackend::Over(
    db::Database* database) {
  Options options;
  options.disk = database->options().disk;
  options.buffer_pool_pages = database->options().buffer_pool_pages;
  options.rows_per_page = database->options().rows_per_page;
  auto backend = std::make_unique<RowStoreBackend>(options);
  backend->SyncFrom(database);
  return backend;
}

void RowStoreBackend::RegisterTable(const std::string& name,
                                    std::shared_ptr<db::Table> table) {
  std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  PERFEVAL_CHECK(tables_.find(name) == tables_.end())
      << "duplicate table " << name;
  CatalogEntry entry;
  entry.block = std::make_shared<RowBlock>(PackTable(*table));
  entry.source = std::move(table);
  entry.table_id = next_table_id_++;
  pager_->RegisterTable(entry.table_id, *entry.block);
  tables_[name] = std::move(entry);
}

void RowStoreBackend::SyncFrom(db::Database* database) {
  database->Refresh();
  std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  for (const std::string& name : database->TableNames()) {
    std::shared_ptr<const db::Table> source = database->GetTableShared(name);
    auto it = tables_.find(name);
    if (it == tables_.end()) {
      CatalogEntry entry;
      entry.block = std::make_shared<RowBlock>(PackTable(*source));
      entry.source = std::move(source);
      entry.table_id = next_table_id_++;
      pager_->RegisterTable(entry.table_id, *entry.block);
      tables_[name] = std::move(entry);
    } else if (it->second.source != source) {
      // The write path installed a new snapshot: re-pack; the new block's
      // pages are cold, as with StorageManager::ReplaceTable.
      it->second.block = std::make_shared<RowBlock>(PackTable(*source));
      it->second.source = std::move(source);
      pager_->ReplaceTable(it->second.table_id, *it->second.block);
    }
  }
}

BackendResult RowStoreBackend::Execute(const db::PlanPtr& plan,
                                       const ExecOptions& options) {
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  std::unordered_map<std::string, CatalogView> catalog;
  catalog.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) {
    catalog[name] = CatalogView{entry.block, entry.table_id};
  }

  BackendResult result;
  RowExecCtx ctx;
  ctx.mode = options.mode;
  ctx.threads = options.threads < 1 ? 1 : options.threads;
  ctx.check = options.check;
  ctx.batch_rows = options_.batch_rows;
  ctx.profiler = &result.profile;
  ctx.pager = pager_.get();
  ctx.catalog = &catalog;

  Clock::time_point start = Clock::now();
  RowBlockPtr out = ExecNode(*plan, ctx);
  result.server_wall_ns = NsSince(start);
  result.storage = ctx.io;
  result.stall_ns = ctx.io.stall_ns;

  Clock::time_point finish_start = Clock::now();
  result.table = UnpackToTable(*out);
  result.finish_ns = NsSince(finish_start);
  return result;
}

RowBlockPtr RowStoreBackend::GetBlock(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  auto it = tables_.find(name);
  PERFEVAL_CHECK(it != tables_.end()) << "unknown table " << name;
  return it->second.block;
}

uint32_t RowStoreBackend::TableId(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  auto it = tables_.find(name);
  PERFEVAL_CHECK(it != tables_.end()) << "unknown table " << name;
  return it->second.table_id;
}

}  // namespace engine
}  // namespace perfeval
