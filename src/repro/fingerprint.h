#ifndef PERFEVAL_REPRO_FINGERPRINT_H_
#define PERFEVAL_REPRO_FINGERPRINT_H_

#include <cstdint>
#include <string>

#include "core/environment.h"
#include "repro/properties.h"

namespace perfeval {
namespace repro {

/// FNV-1a 64-bit hash, used to fingerprint configurations and environments.
uint64_t Fnv1a64(const std::string& data);

/// A compact identity of one experimental setup: the environment spec plus
/// the full parameter set, hashed. Two runs with the same fingerprint used
/// the same code knobs on the same class of machine — the precondition for
/// comparing their numbers (paper, slides 37–45: the DBG/OPT war story is a
/// fingerprint mismatch that went unnoticed for days).
struct SetupFingerprint {
  std::string environment_summary;
  std::string parameters;  ///< serialized Properties.
  uint64_t hash = 0;

  /// "fp-<16 hex digits>".
  std::string ShortId() const;
};

SetupFingerprint FingerprintSetup(const core::EnvironmentSpec& environment,
                                  const Properties& properties);

}  // namespace repro
}  // namespace perfeval

#endif  // PERFEVAL_REPRO_FINGERPRINT_H_
