#ifndef PERFEVAL_REPRO_PROPERTIES_H_
#define PERFEVAL_REPRO_PROPERTIES_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"

namespace perfeval {
namespace repro {

/// The paper's recommended parameterization pattern (slides 183–195, the
/// java.util.Properties walkthrough), in C++: a string key/value map with
///  1. code-supplied defaults (SetDefault),
///  2. optional configuration-file overrides (LoadFile),
///  3. environment-variable overrides (OverrideFromEnv),
///  4. command-line overrides -Dkey=value (OverrideFromArgs),
/// applied in that order, so "have a very simple means to obtain a test for
/// the values f1=v1 ... fk=vk" holds for every experiment binary.
class Properties {
 public:
  Properties() = default;

  /// Sets a default; does not overwrite an explicit value.
  void SetDefault(const std::string& key, const std::string& value);

  /// Sets an explicit value (overrides everything before it).
  void Set(const std::string& key, const std::string& value);

  bool Has(const std::string& key) const;

  std::optional<std::string> Get(const std::string& key) const;
  std::string GetOr(const std::string& key,
                    const std::string& fallback) const;

  /// Typed getters; return `fallback` when missing or unparsable.
  int64_t GetInt(const std::string& key, int64_t fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  /// Loads `key=value` lines; '#' and '!' start comments; whitespace around
  /// keys/values is trimmed. Missing file is an error (the paper: "report
  /// meaningful error if the configuration file is not found").
  Status LoadFile(const std::string& path);

  /// Overrides from environment variables named <prefix><key>
  /// (e.g. prefix "PERFEVAL_", key "dataDir" -> PERFEVAL_dataDir).
  void OverrideFromEnv(const std::string& prefix);

  /// Consumes -Dkey=value arguments; returns the remaining arguments in
  /// order (argv[0] excluded).
  std::vector<std::string> OverrideFromArgs(int argc, char** argv);

  /// All keys in sorted order.
  std::vector<std::string> Keys() const;

  /// "key=value" lines, sorted by key — the serialized configuration for
  /// manifests.
  std::string Serialize() const;

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, std::string> defaults_;
};

}  // namespace repro
}  // namespace perfeval

#endif  // PERFEVAL_REPRO_PROPERTIES_H_
