#ifndef PERFEVAL_REPRO_SUITE_H_
#define PERFEVAL_REPRO_SUITE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace perfeval {
namespace repro {

/// One registered experiment: everything another human needs to repeat it
/// (paper, slides 216–217: script to run, where to look for the graph, how
/// long it takes, extra installation if any).
struct ExperimentInfo {
  std::string id;            ///< e.g. "T2".
  std::string title;         ///< "Hot vs. cold runs, user vs. real time".
  std::string command;       ///< e.g. "build/bench/bench_hot_cold".
  std::string outputs;       ///< where results land, e.g. "bench_results/t2_*".
  std::string approx_runtime;  ///< "a few seconds".
  std::string extra_setup;   ///< "" when none.
};

/// Registry of a project's experiments; emits the repeatability
/// instructions document.
class ExperimentSuite {
 public:
  /// `requirements`: what the installation needs ("cmake, ninja, gtest…").
  explicit ExperimentSuite(std::string project_name,
                           std::string requirements);

  /// Registers an experiment; duplicate ids are an error.
  Status Register(ExperimentInfo info);

  /// Adds a free-form note section (Markdown heading + body) emitted after
  /// the per-experiment sections — e.g. suite-wide flags or sanitizer
  /// instructions that apply to every experiment.
  void AddNote(std::string heading, std::string body);

  const std::vector<std::pair<std::string, std::string>>& notes() const {
    return notes_;
  }

  const std::vector<ExperimentInfo>& experiments() const {
    return experiments_;
  }

  /// Finds an experiment by id; nullptr when absent.
  const ExperimentInfo* Find(const std::string& id) const;

  /// Generates the full instructions document (Markdown): installation,
  /// then one section per experiment.
  std::string InstructionsMarkdown() const;

 private:
  std::string project_name_;
  std::string requirements_;
  std::vector<ExperimentInfo> experiments_;
  std::vector<std::pair<std::string, std::string>> notes_;
};

/// The suite describing this repository's own experiments (T1..T8, F1..F5,
/// A1) — used by the bench binaries and by tests that check the suite is
/// complete against DESIGN.md's index.
const ExperimentSuite& PerfevalSuite();

}  // namespace repro
}  // namespace perfeval

#endif  // PERFEVAL_REPRO_SUITE_H_
