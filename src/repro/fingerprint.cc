#include "repro/fingerprint.h"

#include "common/string_util.h"

namespace perfeval {
namespace repro {

uint64_t Fnv1a64(const std::string& data) {
  uint64_t hash = 14695981039346656037ULL;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::string SetupFingerprint::ShortId() const {
  return StrFormat("fp-%016llx", static_cast<unsigned long long>(hash));
}

SetupFingerprint FingerprintSetup(const core::EnvironmentSpec& environment,
                                  const Properties& properties) {
  SetupFingerprint fp;
  fp.environment_summary = environment.ToReportString();
  fp.parameters = properties.Serialize();
  fp.hash = Fnv1a64(fp.environment_summary + "\n" + fp.parameters);
  return fp;
}

}  // namespace repro
}  // namespace perfeval
