#include "repro/manifest.h"

#include <filesystem>
#include <fstream>

namespace perfeval {
namespace repro {

RunManifest::RunManifest(std::string experiment_id,
                         std::string protocol_description)
    : experiment_id_(std::move(experiment_id)),
      protocol_description_(std::move(protocol_description)) {}

std::string RunManifest::ToString() const {
  std::string out;
  out += "[experiment]\n";
  out += "id=" + experiment_id_ + "\n";
  out += "protocol=" + protocol_description_ + "\n\n";
  out += "[environment]\n";
  out += environment_.ToReportString();
  out += "\n[parameters]\n";
  out += parameters_;
  out += "\n[outputs]\n";
  for (const std::string& output : outputs_) {
    out += output + "\n";
  }
  if (!notes_.empty()) {
    out += "\n[notes]\n";
    for (const std::string& note : notes_) {
      out += note + "\n";
    }
  }
  return out;
}

Status RunManifest::WriteToFile(const std::string& path) const {
  std::filesystem::path fs_path(path);
  std::error_code ec;
  if (fs_path.has_parent_path()) {
    std::filesystem::create_directories(fs_path.parent_path(), ec);
    if (ec) {
      return Status::IoError("cannot create directory for " + path);
    }
  }
  std::ofstream file(path);
  if (!file) {
    return Status::IoError("cannot open " + path);
  }
  file << ToString();
  if (!file) {
    return Status::IoError("write failed for " + path);
  }
  return Status::OK();
}

}  // namespace repro
}  // namespace perfeval
