#include "repro/suite.h"

namespace perfeval {
namespace repro {

ExperimentSuite::ExperimentSuite(std::string project_name,
                                 std::string requirements)
    : project_name_(std::move(project_name)),
      requirements_(std::move(requirements)) {}

Status ExperimentSuite::Register(ExperimentInfo info) {
  if (Find(info.id) != nullptr) {
    return Status::AlreadyExists("experiment " + info.id +
                                 " already registered");
  }
  experiments_.push_back(std::move(info));
  return Status::OK();
}

void ExperimentSuite::AddNote(std::string heading, std::string body) {
  notes_.emplace_back(std::move(heading), std::move(body));
}

const ExperimentInfo* ExperimentSuite::Find(const std::string& id) const {
  for (const ExperimentInfo& info : experiments_) {
    if (info.id == id) {
      return &info;
    }
  }
  return nullptr;
}

std::string ExperimentSuite::InstructionsMarkdown() const {
  std::string out = "# Repeating the " + project_name_ + " experiments\n\n";
  out += "## Installation\n\n" + requirements_ + "\n\n";
  out += "## Experiments\n\n";
  for (const ExperimentInfo& info : experiments_) {
    out += "### " + info.id + ": " + info.title + "\n\n";
    if (!info.extra_setup.empty()) {
      out += "- Extra setup: " + info.extra_setup + "\n";
    }
    out += "- Run: `" + info.command + "`\n";
    out += "- Results: " + info.outputs + "\n";
    out += "- Approximate runtime: " + info.approx_runtime + "\n\n";
  }
  for (const auto& [heading, body] : notes_) {
    out += "## " + heading + "\n\n" + body + "\n\n";
  }
  return out;
}

const ExperimentSuite& PerfevalSuite() {
  static const ExperimentSuite* suite = [] {
    auto* s = new ExperimentSuite(
        "perfeval",
        "cmake >= 3.16, ninja, a C++20 compiler, GoogleTest and Google "
        "Benchmark. Build with `cmake -B build -G Ninja && cmake --build "
        "build`.");
    auto add = [&](const char* id, const char* title, const char* command,
                   const char* outputs, const char* runtime) {
      Status status = s->Register({id, title, command, outputs, runtime, ""});
      (void)status;
    };
    add("T1", "Server vs client time and output channels (slides 23-26)",
        "build/bench/bench_output_channels",
        "stdout + bench_results/t1_output_channels.csv", "tens of seconds");
    add("T2", "Hot vs cold runs, user vs real time (slides 33-36)",
        "build/bench/bench_hot_cold",
        "stdout + bench_results/t2_hot_cold.csv", "tens of seconds");
    add("F1", "DBG/OPT relative execution time, 22 queries (slide 41)",
        "build/bench/bench_dbg_opt",
        "stdout + bench_results/f1_dbg_opt.{csv,gnu}", "about a minute");
    add("F2", "SELECT MAX scan across machine generations (slides 46/51)",
        "build/bench/bench_scan_generations",
        "stdout + bench_results/f2_scan_generations.{csv,gnu}", "seconds");
    add("T3", "2^2 design, memory x cache MIPS example (slides 70-78)",
        "build/bench/bench_sign_table_22", "stdout", "instant");
    add("T4", "Allocation of variation, interconnects (slides 86-93)",
        "build/bench/bench_allocation_variation",
        "stdout + bench_results/t4_allocation.csv", "seconds");
    add("T5", "3-level fractional factorial catalogue (slides 67-69)",
        "build/bench/bench_fractional_3level", "stdout", "instant");
    add("T6", "2^(7-4) and 2^(4-1) confounding algebra (slides 100-109)",
        "build/bench/bench_confounding", "stdout", "instant");
    add("T7", "Design sizes: simple vs full factorial vs 2^k (slides 56-66)",
        "build/bench/bench_design_sizes", "stdout", "instant");
    add("F3", "Chart-guideline linter on the paper's bad charts "
        "(slides 118-131)",
        "build/bench/bench_chart_lint", "stdout", "instant");
    add("F4", "Histogram cell-size manipulation (slide 144)",
        "build/bench/bench_histogram_cells", "stdout", "instant");
    add("F5", "SIGMOD 2008 repeatability outcomes (slides 218-220)",
        "build/bench/bench_repeatability_survey", "stdout", "instant");
    add("T8", "Confidence-interval overlap comparisons (slide 142)",
        "build/bench/bench_confidence_overlap", "stdout", "seconds");
    add("A1", "Engine factor screening, 2^(k-p) + allocation (ablation)",
        "build/bench/bench_engine_screening",
        "stdout + bench_results/a1_screening.csv", "about a minute");
    add("A2", "Operator crossovers: hash vs merge join, top-n vs sort; "
        "radix bits x threads sweep vs legacy hash join with bootstrap "
        "CIs + hwsim cost dissection (ablation)",
        "build/bench/bench_join_crossover",
        "stdout + bench_results/a2_*.csv + "
        "bench_results/BENCH_join_crossover.json", "about a minute");
    add("A3", "TPC-H-style power and throughput metrics (slide 22)",
        "build/bench/bench_throughput",
        "stdout + bench_results/a3_throughput.csv", "about a minute");
    add("A4", "Foreign-key skew sweep: data profile and operator cost",
        "build/bench/bench_skew",
        "stdout + bench_results/a4_skew.csv", "about a minute");
    add("A5", "Scale-up: query time vs TPC-H scale factor (slide 22)",
        "build/bench/bench_scaleup",
        "stdout + bench_results/a5_scaleup.{csv,gnu}", "about a minute");
    add("A6", "Scheduler determinism: jobs=1 vs jobs=4 bit-identical "
        "responses under design/randomized/interleaved orders",
        "build/bench/bench_sched_determinism",
        "stdout + bench_results/a6_sched_determinism.csv", "seconds");
    add("A7", "Adaptive morsel-driven parallel query speedup as a "
        "2-factor study: Q1/Q6 at sf {0.01, 1} x threads {1, 2, 4, 8}, "
        "modeled-compute speedups with bootstrap CIs, results and I/O "
        "stats bit-identical at every setting (`--smoke` for the fast "
        "sf=0.01 pass)",
        "build/bench/bench_parallel_scan",
        "stdout + bench_results/BENCH_parallel_scan.json",
        "several minutes (sf=1 data generation dominates)");
    add("A8", "Service latency under load: closed-loop capacity "
        "calibration, open-loop Poisson sweep with percentile+CI "
        "throughput-latency curves, and the closed-vs-open coordinated-"
        "omission comparison at equal offered load",
        "build/bench/bench_service_latency",
        "stdout + bench_results/BENCH_service_latency.json + "
        "bench_results/a8_service_latency.{csv,gnu,svg}",
        "about a minute");
    add("A9", "Write path: ingest rate vs commit batch size with fsync "
        "accounting, group-commit amortization, recovery time vs WAL "
        "length (with the checkpoint bound), and closed-loop read "
        "latency quiet vs under concurrent ingest",
        "build/bench/bench_write_path",
        "stdout + bench_results/BENCH_write_path.json + "
        "bench_results/a9_{ingest_rate,recovery}.{csv,gnu,svg}",
        "about a minute");
    add("A10", "Scale-out serving across a shard cluster: throughput-"
        "latency curves vs shard count {1,2,4,8} through the sharded "
        "front-end, capacity speedup ratios with bootstrap CIs, tail "
        "amplification (p99 of max-over-shards vs per-shard p99), and a "
        "straggler cell where one slow shard's disk pins the cluster tail",
        "build/bench/bench_shard_scaleout",
        "stdout + bench_results/BENCH_shard_scaleout.json + "
        "bench_results/a10_shard_scaleout.{gnu,svg}",
        "a few minutes");
    add("A11", "Cost-based optimizer study: cost-model calibration "
        "against measured TRACE join times (with a FitLinear re-fit of "
        "the per-probe-row constant), per-operator Q-error distributions "
        "of estimated vs actual cardinality and cost over all 22 TPC-H "
        "plans, and who-wins crossovers of optimizer-picked vs best "
        "hand-picked plans (selectivity sweep + per-query table with "
        "bootstrap ratio CIs)",
        "build/bench/bench_optimizer",
        "stdout + bench_results/BENCH_optimizer.json + "
        "bench_results/a11_selectivity.{csv,gnu,svg}",
        "a few minutes");
    add("A12", "Multi-backend faceoff: the columnar vectorized executor "
        "vs the packed-tuple row store racing the same plan trees "
        "through one harness — hot who-wins over all 22 TPC-H queries "
        "with interleaved samples and bootstrap row/col ratio CIs "
        "(non-overlap with 1.0 flagged), per-operator TRACE attribution "
        "per backend, and a cold layout-crossover sweep (selectivity x "
        "projected-column count) locating where one seek + full tuples "
        "beats per-column streams; results diffed row-vs-col on every "
        "sample pair",
        "build/bench/bench_backend_faceoff",
        "stdout + bench_results/BENCH_backend_faceoff.json + "
        "bench_results/a12_crossover.{csv,gnu,svg}",
        "a few minutes");
    s->AddNote(
        "Parallel execution & determinism",
        "Every bench binary takes uniform scheduling flags: `--jobs=N` "
        "(worker threads), `--order=design|randomized|interleaved` (trial "
        "execution order; `--schedSeed=S` seeds the shuffle), "
        "`--isolation=exclusive|concurrent` (exclusive, the default, "
        "serializes timing-sensitive trials on one slot; concurrent fans "
        "simulation-bound trials over all workers), and `--progress` "
        "(per-trial completion lines with an ETA).\n\n"
        "None of these flags can change a reported number: each trial draws "
        "from an RNG stream seeded with hash(experiment id, point index, "
        "replication index) and results are reassembled into design order "
        "before aggregation, so `--jobs=1` and `--jobs=4` are bit-identical "
        "under every ordering. A6 verifies this end to end.\n\n"
        "The database engine itself carries the same invariant one layer "
        "down: `--dbThreads=N` (equivalently the `dbThreads` property, the "
        "SQL shell's `\\threads N`, or `db::Database::set_threads`) turns "
        "on morsel-driven intra-query parallelism — scans, filters and "
        "aggregations split the input into policy-sized morsels claimed by "
        "workers from a shared counter, while the coordinator accounts "
        "simulated I/O per page in chunk order. The go-parallel decision "
        "is adaptive (db::MorselPolicy): inputs under the serial cutoff "
        "run inline no matter how many threads were requested, so small "
        "scans never pay fan-out overhead. Morsel boundaries never depend "
        "on the thread count and partial results merge in morsel order, so "
        "result relations and StorageStats are bit-identical at any thread "
        "count, in both execution modes. A7 measures the speedup and "
        "re-verifies the invariant on every run.");
    s->AddNote(
        "ThreadSanitizer",
        "The concurrency tests carry ctest labels — `sched` for the "
        "scheduler, `db` for morsel-parallel query execution, `serve` for "
        "the concurrent query service, `txn` for the write path "
        "(concurrent ingest + scan, group commit, crash-point fuzzing), "
        "`shard` for concurrent scatter-gather across the shard cluster, "
        "`engine` for concurrent multi-backend Execute — and should pass "
        "under ThreadSanitizer:\n\n"
        "```sh\n"
        "cmake -B build-tsan -S . -DPERFEVAL_SANITIZE=thread\n"
        "cmake --build build-tsan --target sched_test db_parallel_test "
        "serve_test txn_test shard_test engine_test\n"
        "ctest --test-dir build-tsan -L sched\n"
        "ctest --test-dir build-tsan -L db\n"
        "ctest --test-dir build-tsan -L serve\n"
        "ctest --test-dir build-tsan -L txn\n"
        "ctest --test-dir build-tsan -L shard\n"
        "ctest --test-dir build-tsan -L engine -R ConcurrentExecute\n"
        "```");
    s->AddNote(
        "Serving & tail latency",
        "A8 measures the engine behind a `serve::QueryService` — bounded "
        "admission queue, worker-pool executor, per-request deadlines, and "
        "a selectable overload policy (block / shed / timeout). The load "
        "generator drives it both ways the literature distinguishes: "
        "closed-loop (fixed client population; arrival adapts to service "
        "speed) and open-loop (seeded Poisson arrivals on a virtual "
        "schedule; a late dispatch is charged from the *intended* arrival, "
        "so coordinated omission is measured rather than hidden). Latencies "
        "land in a log2-bucketed histogram (<= 6.25% relative error) and "
        "percentiles carry bootstrap confidence intervals. Schedules and "
        "result fingerprints are pure functions of the run seed — identical "
        "at any worker count, which serve_test verifies at 1/4/8 workers.");
    s->AddNote(
        "Write path & crash recovery",
        "A9 measures `txn::DeltaStore` (DESIGN.md S15): INSERT/DELETE "
        "transactions buffer writes, commit through a CRC-framed WAL on a "
        "seedable virtual disk with explicit durability (data survives a "
        "crash only up to the last fsync, plus a seeded torn prefix), and "
        "apply to in-memory deltas that merge deterministically over the "
        "immutable base columns at scan time. Checkpoints compact the "
        "deltas, install via fsync-then-rename, and truncate the log; "
        "`Open()` replays the tail. Correctness is held by two harnesses: "
        "a crash-point fuzzer that kills the process at *every* mutating "
        "disk operation of a seeded workload (200+ sites) and requires "
        "recovery to match a shadow copy of exactly the acknowledged "
        "commits, and the differential oracle, which re-runs all 22 TPC-H "
        "queries against the reference interpreter after every randomized "
        "interleaved INSERT/DELETE batch (`ctest -L oracle`). The fsync "
        "accounting flows through the same DiskModel as the read path, so "
        "A9's batch-size sweep prices the seek-per-commit the group-commit "
        "protocol exists to amortize.");
    s->AddNote(
        "Scale-out & sharding",
        "A10 measures a `shard::ShardCluster` (DESIGN.md S16): TPC-H "
        "hash-partitioned across N single-node databases (lineitem "
        "co-partitioned with orders on orderkey; dimensions replicated), a "
        "site-annotating planner that pushes scans, filters, co-partitioned "
        "joins and partial aggregates to the shards, and a coordinator that "
        "scatters fragments over per-shard `serve::QueryService` instances "
        "and merges partials in fixed shard-then-first-occurrence order. "
        "Results AND merged StorageStats are bit-identical to single-node "
        "at any shard count and any per-shard thread count — the oracle "
        "diffs all 22 queries sharded-vs-single-node across execution modes "
        "and join algorithms (`ctest -L shard`, `ctest -L oracle`). A "
        "front-end tier adds per-tenant admission quotas; A10 drives it "
        "with the same load-sweep harness as A8, so A8-vs-A10 differences "
        "are system, never harness. The tail-amplification cells quantify "
        "why scatter-gather tails grow with N (the coordinator waits for "
        "the max over shards, turning the per-shard latency CDF F into "
        "F^N) and the straggler cell shows one slow disk pinning the "
        "cluster's p99.");
    s->AddNote(
        "Cost-based optimization",
        "A11 measures `opt::Optimize` (DESIGN.md S17): per-column "
        "statistics (exact row/NULL counts, zone-map min/max, Chao1 "
        "distinct counts, equi-width histograms) feed a cardinality "
        "estimator and a calibrated per-row cost model, and a dynamic "
        "program over connected join subgraphs picks both the join order "
        "and a physical algorithm (legacy/hash/radix/merge) per join. "
        "The rewrite is opt-in (`\\opt on` in the SQL shell, --dbOpt=on "
        "in the benches) and semantics-preserving by construction: only "
        "inner equi-join regions are re-ordered, a schema-restoring "
        "Project caps every reordered region, and unconsumed join edges "
        "reappear as filters. Plan choice is a pure function of the "
        "statistics snapshot — the same database state yields the same "
        "plan at any thread or shard count — and the differential oracle "
        "re-runs all 22 TPC-H plans plus fuzzed queries with the "
        "optimizer enabled across execution modes, thread counts and a "
        "2-shard cluster against both the reference interpreter and the "
        "rule-only plan (`ctest -L opt`, `ctest -L oracle`). A11's "
        "Q-error tables quantify the estimator the DoE way; the who-wins "
        "tables report the end metric: how often the optimizer matches "
        "an oracle that hand-picks the best global algorithm per query.");
    s->AddNote(
        "Multi-backend comparison",
        "A12 races two production backends behind one `engine::Backend` "
        "interface (DESIGN.md S18): the columnar vectorized executor "
        "(adapting `db::Database`) and a packed-tuple row store that "
        "materializes every table as fixed-stride rows plus a string "
        "heap and executes the same plan trees tuple-at-a-time with "
        "batching. Held constant across backends: the generated data, "
        "the plan representation, the DiskModel, the buffer-pool budget "
        "and rows-per-page, the thread count, and the measurement "
        "protocol (observed server time = measured wall + simulated "
        "stall; the row store's packed-result -> Table conversion is "
        "reported separately as finish time, never hidden in server "
        "time). Legitimately different: page shape (per-column pages vs "
        "per-table tuple pages), bytes per scan, seeks per scan (one "
        "stream per column vs one per table), and per-operator CPU. "
        "Select a backend with `--dbBackend=col|row` in any bench, "
        "`\\backend col|row` in the SQL shell, or "
        "`db::Database::set_backend`; typos are hard usage errors. The "
        "differential oracle extends to backend-vs-backend: all 22 "
        "TPC-H plans plus fuzzed queries run on both backends across "
        "execution modes, thread counts and checked execution, and must "
        "match the reference interpreter AND each other, including "
        "after randomized INSERT/DELETE batches folded in through "
        "`SyncFrom` (`ctest -L engine`, `ctest -L oracle`).");
    return s;
  }();
  return *suite;
}

}  // namespace repro
}  // namespace perfeval
