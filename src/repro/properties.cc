#include "repro/properties.h"

#include <cstdlib>
#include <fstream>

#include "common/string_util.h"

namespace perfeval {
namespace repro {

void Properties::SetDefault(const std::string& key,
                            const std::string& value) {
  defaults_[key] = value;
}

void Properties::Set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

bool Properties::Has(const std::string& key) const {
  return values_.count(key) > 0 || defaults_.count(key) > 0;
}

std::optional<std::string> Properties::Get(const std::string& key) const {
  auto it = values_.find(key);
  if (it != values_.end()) {
    return it->second;
  }
  auto def = defaults_.find(key);
  if (def != defaults_.end()) {
    return def->second;
  }
  return std::nullopt;
}

std::string Properties::GetOr(const std::string& key,
                              const std::string& fallback) const {
  return Get(key).value_or(fallback);
}

int64_t Properties::GetInt(const std::string& key, int64_t fallback) const {
  std::optional<std::string> value = Get(key);
  if (!value) {
    return fallback;
  }
  return ParseInt64(*value).value_or(fallback);
}

double Properties::GetDouble(const std::string& key, double fallback) const {
  std::optional<std::string> value = Get(key);
  if (!value) {
    return fallback;
  }
  return ParseDouble(*value).value_or(fallback);
}

bool Properties::GetBool(const std::string& key, bool fallback) const {
  std::optional<std::string> value = Get(key);
  if (!value) {
    return fallback;
  }
  return ParseBool(*value).value_or(fallback);
}

Status Properties::LoadFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("configuration file not found: " + path);
  }
  std::string line;
  int line_number = 0;
  while (std::getline(file, line)) {
    ++line_number;
    std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#' || trimmed[0] == '!') {
      continue;
    }
    size_t eq = trimmed.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(
          StrFormat("%s:%d: expected key=value, got \"%s\"", path.c_str(),
                    line_number, trimmed.c_str()));
    }
    std::string key = Trim(trimmed.substr(0, eq));
    std::string value = Trim(trimmed.substr(eq + 1));
    if (key.empty()) {
      return Status::InvalidArgument(
          StrFormat("%s:%d: empty key", path.c_str(), line_number));
    }
    values_[key] = value;
  }
  return Status::OK();
}

void Properties::OverrideFromEnv(const std::string& prefix) {
  // Check every known key (default or explicit) against the environment.
  for (const auto& [key, value] : defaults_) {
    (void)value;
    if (const char* env = std::getenv((prefix + key).c_str())) {
      values_[key] = env;
    }
  }
  for (auto& [key, value] : values_) {
    (void)value;
    if (const char* env = std::getenv((prefix + key).c_str())) {
      values_[key] = env;
    }
  }
}

std::vector<std::string> Properties::OverrideFromArgs(int argc,
                                                      char** argv) {
  std::vector<std::string> remaining;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (StartsWith(arg, "-D")) {
      size_t eq = arg.find('=');
      if (eq != std::string::npos && eq > 2) {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
        continue;
      }
    }
    remaining.push_back(arg);
  }
  return remaining;
}

std::vector<std::string> Properties::Keys() const {
  std::map<std::string, bool> all;
  for (const auto& [key, value] : defaults_) {
    (void)value;
    all[key] = true;
  }
  for (const auto& [key, value] : values_) {
    (void)value;
    all[key] = true;
  }
  std::vector<std::string> keys;
  keys.reserve(all.size());
  for (const auto& [key, present] : all) {
    (void)present;
    keys.push_back(key);
  }
  return keys;
}

std::string Properties::Serialize() const {
  std::string out;
  for (const std::string& key : Keys()) {
    out += key + "=" + GetOr(key, "") + "\n";
  }
  return out;
}

}  // namespace repro
}  // namespace perfeval
