#ifndef PERFEVAL_REPRO_MANIFEST_H_
#define PERFEVAL_REPRO_MANIFEST_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/environment.h"
#include "repro/properties.h"

namespace perfeval {
namespace repro {

/// A run manifest: the provenance record written next to every experiment's
/// results so that "yourself, 3 years later when writing the thesis"
/// (paper, slide 158) can reconstruct exactly what produced them. Captures
/// the experiment id, the full parameter set, the environment spec, the
/// run protocol in prose, and the output files produced.
class RunManifest {
 public:
  RunManifest(std::string experiment_id, std::string protocol_description);

  void set_environment(const core::EnvironmentSpec& environment) {
    environment_ = environment;
  }
  void set_properties(const Properties& properties) {
    parameters_ = properties.Serialize();
  }
  void AddOutput(const std::string& path) { outputs_.push_back(path); }
  void AddNote(const std::string& note) { notes_.push_back(note); }

  /// Human- and machine-readable rendering (INI-style sections).
  std::string ToString() const;

  /// Writes to `path` (creates parent directories).
  Status WriteToFile(const std::string& path) const;

 private:
  std::string experiment_id_;
  std::string protocol_description_;
  core::EnvironmentSpec environment_;
  std::string parameters_;
  std::vector<std::string> outputs_;
  std::vector<std::string> notes_;
};

}  // namespace repro
}  // namespace perfeval

#endif  // PERFEVAL_REPRO_MANIFEST_H_
