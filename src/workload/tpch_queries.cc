#include "workload/tpch_queries.h"

#include "common/check.h"

namespace perfeval {
namespace workload {
namespace {

using db::AggOp;
using db::AggSpec;
using db::Col;
using db::Database;
using db::ExprPtr;
using db::PlanPtr;
using db::Schema;
using db::SortKey;

/// A plan together with its output schema, so expressions for downstream
/// operators can be bound while the plan is being assembled.
struct Bound {
  PlanPtr plan;
  Schema schema;
};

Bound BScan(const Database& d, const std::string& table,
            std::vector<std::string> cols) {
  return {db::Scan(table, std::move(cols)), d.GetTable(table).schema()};
}

Bound BFilterScan(const Database& d, const std::string& table,
                  std::vector<std::string> cols, ExprPtr pred) {
  return {db::FilterScan(table, std::move(cols), std::move(pred)),
          d.GetTable(table).schema()};
}

// The helpers take Bound by const reference (plans are shared_ptrs, schemas
// small vectors) so call sites may keep binding expressions against
// `b.schema` in the same statement that consumes `b`.

Bound BFilter(const Bound& b, ExprPtr pred) {
  return {db::Filter(b.plan, std::move(pred)), b.schema};
}

Schema ConcatSchemas(const Schema& a, const Schema& b) {
  std::vector<db::ColumnSpec> specs = a.columns();
  for (const db::ColumnSpec& spec : b.columns()) {
    specs.push_back(spec);
  }
  return Schema(std::move(specs));
}

Bound BJoin(const Bound& l, const Bound& r, const std::string& lk,
            const std::string& rk) {
  return {db::HashJoin(l.plan, r.plan, lk, rk),
          ConcatSchemas(l.schema, r.schema)};
}

Bound BJoin2(const Bound& l, const Bound& r, const std::string& lk1,
             const std::string& rk1, const std::string& lk2,
             const std::string& rk2) {
  return {db::HashJoin2(l.plan, r.plan, lk1, rk1, lk2, rk2),
          ConcatSchemas(l.schema, r.schema)};
}

Bound BProject(const Bound& b,
               std::vector<std::pair<std::string, ExprPtr>> projections) {
  std::vector<ExprPtr> exprs;
  std::vector<std::string> names;
  std::vector<db::ColumnSpec> specs;
  for (auto& [name, expr] : projections) {
    specs.push_back({name, expr->ResultType(b.schema)});
    names.push_back(name);
    exprs.push_back(std::move(expr));
  }
  return {db::Project(b.plan, std::move(exprs), std::move(names)),
          Schema(std::move(specs))};
}

Bound BAgg(const Bound& b, std::vector<std::string> group_by,
           std::vector<AggSpec> aggs) {
  std::vector<db::ColumnSpec> specs;
  for (const std::string& g : group_by) {
    specs.push_back(b.schema.column(b.schema.MustIndexOf(g)));
  }
  for (const AggSpec& agg : aggs) {
    db::DataType type =
        (agg.op == AggOp::kCount || agg.op == AggOp::kCountDistinct)
            ? db::DataType::kInt64
            : db::DataType::kDouble;
    specs.push_back({agg.output_name, type});
  }
  return {db::Aggregate(b.plan, std::move(group_by), std::move(aggs)),
          Schema(std::move(specs))};
}

Bound BSort(const Bound& b, std::vector<SortKey> keys) {
  return {db::Sort(b.plan, std::move(keys)), b.schema};
}

Bound BLimit(const Bound& b, size_t n) {
  return {db::Limit(b.plan, n), b.schema};
}

/// l_extendedprice * (1 - l_discount) over schema `s`.
ExprPtr Revenue(const Schema& s) {
  return db::Mul(Col(s, "l_extendedprice"),
                 db::Sub(db::LitDouble(1.0), Col(s, "l_discount")));
}

// ---- The 22 queries ----

PlanPtr BuildQ1(const Database& d) {
  const Schema& li = d.GetTable("lineitem").schema();
  Bound b = BFilterScan(
      d, "lineitem",
      {"l_quantity", "l_extendedprice", "l_discount", "l_tax",
       "l_returnflag", "l_linestatus", "l_shipdate"},
      db::Le(Col(li, "l_shipdate"), db::LitDate("1998-09-02")));
  ExprPtr disc_price = Revenue(li);
  ExprPtr charge = db::Mul(
      Revenue(li), db::Add(db::LitDouble(1.0), Col(li, "l_tax")));
  b = BAgg(b, {"l_returnflag", "l_linestatus"},
           {{AggOp::kSum, Col(li, "l_quantity"), "sum_qty"},
            {AggOp::kSum, Col(li, "l_extendedprice"), "sum_base_price"},
            {AggOp::kSum, disc_price, "sum_disc_price"},
            {AggOp::kSum, charge, "sum_charge"},
            {AggOp::kAvg, Col(li, "l_quantity"), "avg_qty"},
            {AggOp::kAvg, Col(li, "l_extendedprice"), "avg_price"},
            {AggOp::kAvg, Col(li, "l_discount"), "avg_disc"},
            {AggOp::kCount, nullptr, "count_order"}});
  b = BSort(b, {{"l_returnflag", true}, {"l_linestatus", true}});
  return b.plan;
}

PlanPtr BuildQ2(const Database& d) {
  const Schema& part = d.GetTable("part").schema();
  const Schema& region = d.GetTable("region").schema();
  Bound p = BFilterScan(
      d, "part", {"p_partkey", "p_mfgr", "p_size", "p_type"},
      db::And(db::Eq(Col(part, "p_size"), db::LitInt(15)),
              db::Like(Col(part, "p_type"), "%BRASS")));
  Bound ps = BScan(d, "partsupp", {"ps_partkey", "ps_suppkey"});
  Bound b = BJoin(ps, p, "ps_partkey", "p_partkey");
  Bound s = BScan(d, "supplier",
                  {"s_suppkey", "s_name", "s_address", "s_nationkey",
                   "s_phone", "s_acctbal", "s_comment"});
  b = BJoin(b, s, "ps_suppkey", "s_suppkey");
  Bound n = BScan(d, "nation", {"n_nationkey", "n_name", "n_regionkey"});
  b = BJoin(b, n, "s_nationkey", "n_nationkey");
  Bound r = BFilterScan(d, "region", {"r_regionkey", "r_name"},
                        db::Eq(Col(region, "r_name"),
                               db::LitString("EUROPE")));
  b = BJoin(b, r, "n_regionkey", "r_regionkey");
  b = BSort(b, {{"s_acctbal", false},
                           {"n_name", true},
                           {"s_name", true},
                           {"p_partkey", true}});
  b = BProject(b,
               {{"s_acctbal", Col(b.schema, "s_acctbal")},
                {"s_name", Col(b.schema, "s_name")},
                {"n_name", Col(b.schema, "n_name")},
                {"p_partkey", Col(b.schema, "p_partkey")},
                {"p_mfgr", Col(b.schema, "p_mfgr")},
                {"s_address", Col(b.schema, "s_address")},
                {"s_phone", Col(b.schema, "s_phone")},
                {"s_comment", Col(b.schema, "s_comment")}});
  return BLimit(b, 100).plan;
}

PlanPtr BuildQ3(const Database& d) {
  const Schema& cust = d.GetTable("customer").schema();
  const Schema& ord = d.GetTable("orders").schema();
  const Schema& li = d.GetTable("lineitem").schema();
  Bound c = BFilterScan(d, "customer", {"c_custkey", "c_mktsegment"},
                        db::Eq(Col(cust, "c_mktsegment"),
                               db::LitString("BUILDING")));
  Bound o = BFilterScan(
      d, "orders", {"o_orderkey", "o_custkey", "o_orderdate",
                    "o_shippriority"},
      db::Lt(Col(ord, "o_orderdate"), db::LitDate("1995-03-15")));
  Bound oc = BJoin(o, c, "o_custkey", "c_custkey");
  Bound l = BFilterScan(
      d, "lineitem", {"l_orderkey", "l_extendedprice", "l_discount",
                      "l_shipdate"},
      db::Gt(Col(li, "l_shipdate"), db::LitDate("1995-03-15")));
  Bound b = BJoin(l, oc, "l_orderkey", "o_orderkey");
  ExprPtr revenue = Revenue(b.schema);
  b = BAgg(b, {"l_orderkey", "o_orderdate", "o_shippriority"},
           {{AggOp::kSum, revenue, "revenue"}});
  b = BSort(b, {{"revenue", false}, {"o_orderdate", true}});
  return BLimit(b, 10).plan;
}

PlanPtr BuildQ4(const Database& d) {
  const Schema& ord = d.GetTable("orders").schema();
  const Schema& li = d.GetTable("lineitem").schema();
  Bound o = BFilterScan(
      d, "orders", {"o_orderkey", "o_orderdate", "o_orderpriority"},
      db::And(db::Ge(Col(ord, "o_orderdate"), db::LitDate("1993-07-01")),
              db::Lt(Col(ord, "o_orderdate"), db::LitDate("1993-10-01"))));
  Bound l = BFilterScan(
      d, "lineitem", {"l_orderkey", "l_commitdate", "l_receiptdate"},
      db::Lt(Col(li, "l_commitdate"), Col(li, "l_receiptdate")));
  Bound b = BJoin(l, o, "l_orderkey", "o_orderkey");
  b = BAgg(b, {"o_orderpriority"},
           {{AggOp::kCountDistinct, Col(b.schema, "o_orderkey"),
             "order_count"}});
  return BSort(b, {{"o_orderpriority", true}}).plan;
}

PlanPtr BuildQ5(const Database& d) {
  const Schema& ord = d.GetTable("orders").schema();
  const Schema& region = d.GetTable("region").schema();
  Bound o = BFilterScan(
      d, "orders", {"o_orderkey", "o_custkey", "o_orderdate"},
      db::And(db::Ge(Col(ord, "o_orderdate"), db::LitDate("1994-01-01")),
              db::Lt(Col(ord, "o_orderdate"), db::LitDate("1995-01-01"))));
  Bound c = BScan(d, "customer", {"c_custkey", "c_nationkey"});
  Bound oc = BJoin(o, c, "o_custkey", "c_custkey");
  Bound l = BScan(d, "lineitem",
                  {"l_orderkey", "l_suppkey", "l_extendedprice",
                   "l_discount"});
  Bound b = BJoin(l, oc, "l_orderkey", "o_orderkey");
  Bound s = BScan(d, "supplier", {"s_suppkey", "s_nationkey"});
  b = BJoin(b, s, "l_suppkey", "s_suppkey");
  b = BFilter(b, db::Eq(Col(b.schema, "c_nationkey"),
                                   Col(b.schema, "s_nationkey")));
  Bound n = BScan(d, "nation", {"n_nationkey", "n_name", "n_regionkey"});
  b = BJoin(b, n, "s_nationkey", "n_nationkey");
  Bound r = BFilterScan(d, "region", {"r_regionkey", "r_name"},
                        db::Eq(Col(region, "r_name"),
                               db::LitString("ASIA")));
  b = BJoin(b, r, "n_regionkey", "r_regionkey");
  ExprPtr revenue = Revenue(b.schema);
  b = BAgg(b, {"n_name"}, {{AggOp::kSum, revenue, "revenue"}});
  return BSort(b, {{"revenue", false}}).plan;
}

PlanPtr BuildQ6(const Database& d) {
  const Schema& li = d.GetTable("lineitem").schema();
  Bound b = BFilterScan(
      d, "lineitem",
      {"l_shipdate", "l_discount", "l_quantity", "l_extendedprice"},
      db::And(
          db::And(db::Ge(Col(li, "l_shipdate"), db::LitDate("1994-01-01")),
                  db::Lt(Col(li, "l_shipdate"), db::LitDate("1995-01-01"))),
          db::And(
              db::And(db::Ge(Col(li, "l_discount"), db::LitDouble(0.05)),
                      db::Le(Col(li, "l_discount"), db::LitDouble(0.07))),
              db::Lt(Col(li, "l_quantity"), db::LitDouble(24.0)))));
  ExprPtr revenue =
      db::Mul(Col(li, "l_extendedprice"), Col(li, "l_discount"));
  return BAgg(b, {}, {{AggOp::kSum, revenue, "revenue"}}).plan;
}

PlanPtr BuildQ7(const Database& d) {
  const Schema& li = d.GetTable("lineitem").schema();
  const Schema& nation = d.GetTable("nation").schema();
  Bound supp_nation =
      BProject(BScan(d, "nation", {"n_nationkey", "n_name"}),
               {{"n1_key", Col(nation, "n_nationkey")},
                {"supp_nation", Col(nation, "n_name")}});
  Bound cust_nation =
      BProject(BScan(d, "nation", {"n_nationkey", "n_name"}),
               {{"n2_key", Col(nation, "n_nationkey")},
                {"cust_nation", Col(nation, "n_name")}});
  Bound s = BJoin(BScan(d, "supplier", {"s_suppkey", "s_nationkey"}),
                  supp_nation, "s_nationkey", "n1_key");
  Bound c = BJoin(BScan(d, "customer", {"c_custkey", "c_nationkey"}),
                  cust_nation, "c_nationkey", "n2_key");
  Bound l = BFilterScan(
      d, "lineitem",
      {"l_orderkey", "l_suppkey", "l_shipdate", "l_extendedprice",
       "l_discount"},
      db::And(db::Ge(Col(li, "l_shipdate"), db::LitDate("1995-01-01")),
              db::Le(Col(li, "l_shipdate"), db::LitDate("1996-12-31"))));
  Bound b = BJoin(l, s, "l_suppkey", "s_suppkey");
  Bound o = BScan(d, "orders", {"o_orderkey", "o_custkey"});
  b = BJoin(b, o, "l_orderkey", "o_orderkey");
  b = BJoin(b, c, "o_custkey", "c_custkey");
  b = BFilter(
      b,
      db::Or(db::And(db::Eq(Col(b.schema, "supp_nation"),
                            db::LitString("FRANCE")),
                     db::Eq(Col(b.schema, "cust_nation"),
                            db::LitString("GERMANY"))),
             db::And(db::Eq(Col(b.schema, "supp_nation"),
                            db::LitString("GERMANY")),
                     db::Eq(Col(b.schema, "cust_nation"),
                            db::LitString("FRANCE")))));
  b = BProject(b,
               {{"supp_nation", Col(b.schema, "supp_nation")},
                {"cust_nation", Col(b.schema, "cust_nation")},
                {"l_year", db::Year(Col(b.schema, "l_shipdate"))},
                {"volume", Revenue(b.schema)}});
  b = BAgg(b, {"supp_nation", "cust_nation", "l_year"},
           {{AggOp::kSum, Col(b.schema, "volume"), "revenue"}});
  return BSort(b, {{"supp_nation", true},
                              {"cust_nation", true},
                              {"l_year", true}})
      .plan;
}

PlanPtr BuildQ8(const Database& d) {
  const Schema& part = d.GetTable("part").schema();
  const Schema& ord = d.GetTable("orders").schema();
  const Schema& nation = d.GetTable("nation").schema();
  const Schema& region = d.GetTable("region").schema();
  Bound p = BFilterScan(d, "part", {"p_partkey", "p_type"},
                        db::Eq(Col(part, "p_type"),
                               db::LitString("ECONOMY ANODIZED STEEL")));
  Bound l = BScan(d, "lineitem",
                  {"l_orderkey", "l_partkey", "l_suppkey",
                   "l_extendedprice", "l_discount"});
  Bound b = BJoin(l, p, "l_partkey", "p_partkey");
  Bound o = BFilterScan(
      d, "orders", {"o_orderkey", "o_custkey", "o_orderdate"},
      db::And(db::Ge(Col(ord, "o_orderdate"), db::LitDate("1995-01-01")),
              db::Le(Col(ord, "o_orderdate"), db::LitDate("1996-12-31"))));
  b = BJoin(b, o, "l_orderkey", "o_orderkey");
  Bound c = BScan(d, "customer", {"c_custkey", "c_nationkey"});
  b = BJoin(b, c, "o_custkey", "c_custkey");
  Bound n1 = BProject(BScan(d, "nation", {"n_nationkey", "n_regionkey"}),
                      {{"c_nkey", Col(nation, "n_nationkey")},
                       {"c_rkey", Col(nation, "n_regionkey")}});
  b = BJoin(b, n1, "c_nationkey", "c_nkey");
  Bound r = BFilterScan(d, "region", {"r_regionkey", "r_name"},
                        db::Eq(Col(region, "r_name"),
                               db::LitString("AMERICA")));
  b = BJoin(b, r, "c_rkey", "r_regionkey");
  Bound s = BScan(d, "supplier", {"s_suppkey", "s_nationkey"});
  b = BJoin(b, s, "l_suppkey", "s_suppkey");
  Bound n2 = BProject(BScan(d, "nation", {"n_nationkey", "n_name"}),
                      {{"s_nkey", Col(nation, "n_nationkey")},
                       {"s_nation", Col(nation, "n_name")}});
  b = BJoin(b, n2, "s_nationkey", "s_nkey");
  b = BProject(b,
               {{"o_year", db::Year(Col(b.schema, "o_orderdate"))},
                {"volume", Revenue(b.schema)},
                {"s_nation", Col(b.schema, "s_nation")}});
  ExprPtr brazil_volume =
      db::If(db::Eq(Col(b.schema, "s_nation"), db::LitString("BRAZIL")),
             Col(b.schema, "volume"), db::LitDouble(0.0));
  b = BAgg(b, {"o_year"},
           {{AggOp::kSum, brazil_volume, "brazil_volume"},
            {AggOp::kSum, Col(b.schema, "volume"), "total_volume"}});
  b = BProject(b,
               {{"o_year", Col(b.schema, "o_year")},
                {"mkt_share", db::Div(Col(b.schema, "brazil_volume"),
                                      Col(b.schema, "total_volume"))}});
  return BSort(b, {{"o_year", true}}).plan;
}

PlanPtr BuildQ9(const Database& d) {
  const Schema& part = d.GetTable("part").schema();
  Bound p = BFilterScan(d, "part", {"p_partkey", "p_name"},
                        db::Contains(Col(part, "p_name"), "green"));
  Bound l = BScan(d, "lineitem",
                  {"l_orderkey", "l_partkey", "l_suppkey", "l_quantity",
                   "l_extendedprice", "l_discount"});
  Bound b = BJoin(l, p, "l_partkey", "p_partkey");
  Bound ps = BScan(d, "partsupp",
                   {"ps_partkey", "ps_suppkey", "ps_supplycost"});
  b = BJoin2(b, ps, "l_partkey", "ps_partkey",
             "l_suppkey", "ps_suppkey");
  Bound s = BScan(d, "supplier", {"s_suppkey", "s_nationkey"});
  b = BJoin(b, s, "l_suppkey", "s_suppkey");
  Bound o = BScan(d, "orders", {"o_orderkey", "o_orderdate"});
  b = BJoin(b, o, "l_orderkey", "o_orderkey");
  Bound n = BScan(d, "nation", {"n_nationkey", "n_name"});
  b = BJoin(b, n, "s_nationkey", "n_nationkey");
  ExprPtr amount =
      db::Sub(Revenue(b.schema), db::Mul(Col(b.schema, "ps_supplycost"),
                                         Col(b.schema, "l_quantity")));
  b = BProject(b,
               {{"nation", Col(b.schema, "n_name")},
                {"o_year", db::Year(Col(b.schema, "o_orderdate"))},
                {"amount", amount}});
  b = BAgg(b, {"nation", "o_year"},
           {{AggOp::kSum, Col(b.schema, "amount"), "sum_profit"}});
  return BSort(b, {{"nation", true}, {"o_year", false}}).plan;
}

PlanPtr BuildQ10(const Database& d) {
  const Schema& ord = d.GetTable("orders").schema();
  const Schema& li = d.GetTable("lineitem").schema();
  Bound o = BFilterScan(
      d, "orders", {"o_orderkey", "o_custkey", "o_orderdate"},
      db::And(db::Ge(Col(ord, "o_orderdate"), db::LitDate("1993-10-01")),
              db::Lt(Col(ord, "o_orderdate"), db::LitDate("1994-01-01"))));
  Bound l = BFilterScan(
      d, "lineitem",
      {"l_orderkey", "l_extendedprice", "l_discount", "l_returnflag"},
      db::Eq(Col(li, "l_returnflag"), db::LitString("R")));
  Bound b = BJoin(l, o, "l_orderkey", "o_orderkey");
  Bound c = BScan(d, "customer",
                  {"c_custkey", "c_name", "c_acctbal", "c_phone",
                   "c_nationkey", "c_address", "c_comment"});
  b = BJoin(b, c, "o_custkey", "c_custkey");
  Bound n = BScan(d, "nation", {"n_nationkey", "n_name"});
  b = BJoin(b, n, "c_nationkey", "n_nationkey");
  ExprPtr revenue = Revenue(b.schema);
  b = BAgg(b,
           {"c_custkey", "c_name", "c_acctbal", "c_phone", "n_name",
            "c_address", "c_comment"},
           {{AggOp::kSum, revenue, "revenue"}});
  b = BSort(b, {{"revenue", false}});
  return BLimit(b, 20).plan;
}

PlanPtr BuildQ11(const Database& d) {
  const Schema& nation = d.GetTable("nation").schema();
  Bound ps = BScan(d, "partsupp",
                   {"ps_partkey", "ps_suppkey", "ps_availqty",
                    "ps_supplycost"});
  Bound s = BScan(d, "supplier", {"s_suppkey", "s_nationkey"});
  Bound b = BJoin(ps, s, "ps_suppkey", "s_suppkey");
  Bound n = BFilterScan(d, "nation", {"n_nationkey", "n_name"},
                        db::Eq(Col(nation, "n_name"),
                               db::LitString("GERMANY")));
  b = BJoin(b, n, "s_nationkey", "n_nationkey");
  ExprPtr value = db::Mul(Col(b.schema, "ps_supplycost"),
                          Col(b.schema, "ps_availqty"));
  b = BAgg(b, {"ps_partkey"}, {{AggOp::kSum, value, "value"}});
  b = BSort(b, {{"value", false}});
  return BLimit(b, 100).plan;
}

PlanPtr BuildQ12(const Database& d) {
  const Schema& li = d.GetTable("lineitem").schema();
  Bound l = BFilterScan(
      d, "lineitem",
      {"l_orderkey", "l_shipmode", "l_commitdate", "l_receiptdate",
       "l_shipdate"},
      db::And(
          db::And(db::InStrings(Col(li, "l_shipmode"), {"MAIL", "SHIP"}),
                  db::And(db::Lt(Col(li, "l_commitdate"),
                                 Col(li, "l_receiptdate")),
                          db::Lt(Col(li, "l_shipdate"),
                                 Col(li, "l_commitdate")))),
          db::And(
              db::Ge(Col(li, "l_receiptdate"), db::LitDate("1994-01-01")),
              db::Lt(Col(li, "l_receiptdate"), db::LitDate("1995-01-01")))));
  Bound o = BScan(d, "orders", {"o_orderkey", "o_orderpriority"});
  Bound b = BJoin(l, o, "l_orderkey", "o_orderkey");
  ExprPtr is_high = db::InStrings(Col(b.schema, "o_orderpriority"),
                                  {"1-URGENT", "2-HIGH"});
  b = BAgg(b, {"l_shipmode"},
           {{AggOp::kSum,
             db::If(is_high, db::LitDouble(1.0), db::LitDouble(0.0)),
             "high_line_count"},
            {AggOp::kSum,
             db::If(is_high, db::LitDouble(0.0), db::LitDouble(1.0)),
             "low_line_count"}});
  return BSort(b, {{"l_shipmode", true}}).plan;
}

PlanPtr BuildQ13(const Database& d) {
  const Schema& ord = d.GetTable("orders").schema();
  Bound o = BFilterScan(
      d, "orders", {"o_orderkey", "o_custkey", "o_comment"},
      db::Not(db::Like(Col(ord, "o_comment"), "%special%requests%")));
  Bound counts = BAgg(o, {"o_custkey"},
                      {{AggOp::kCount, nullptr, "c_count"}});
  Bound b = BAgg(counts, {"c_count"},
                 {{AggOp::kCount, nullptr, "custdist"}});
  return BSort(b, {{"custdist", false}, {"c_count", false}}).plan;
}

PlanPtr BuildQ14(const Database& d) {
  const Schema& li = d.GetTable("lineitem").schema();
  Bound l = BFilterScan(
      d, "lineitem",
      {"l_partkey", "l_shipdate", "l_extendedprice", "l_discount"},
      db::And(db::Ge(Col(li, "l_shipdate"), db::LitDate("1995-09-01")),
              db::Lt(Col(li, "l_shipdate"), db::LitDate("1995-10-01"))));
  Bound p = BScan(d, "part", {"p_partkey", "p_type"});
  Bound b = BJoin(l, p, "l_partkey", "p_partkey");
  ExprPtr revenue = Revenue(b.schema);
  ExprPtr promo = db::If(db::Like(Col(b.schema, "p_type"), "PROMO%"),
                         revenue, db::LitDouble(0.0));
  b = BAgg(b, {},
           {{AggOp::kSum, promo, "promo_revenue_part"},
            {AggOp::kSum, revenue, "total_revenue"}});
  b = BProject(
      b,
      {{"promo_revenue",
        db::Div(db::Mul(db::LitDouble(100.0),
                        Col(b.schema, "promo_revenue_part")),
                Col(b.schema, "total_revenue"))}});
  return b.plan;
}

PlanPtr BuildQ15(const Database& d) {
  const Schema& li = d.GetTable("lineitem").schema();
  Bound l = BFilterScan(
      d, "lineitem",
      {"l_suppkey", "l_shipdate", "l_extendedprice", "l_discount"},
      db::And(db::Ge(Col(li, "l_shipdate"), db::LitDate("1996-01-01")),
              db::Lt(Col(li, "l_shipdate"), db::LitDate("1996-04-01"))));
  Bound rev = BAgg(l, {"l_suppkey"},
                   {{AggOp::kSum, Revenue(li), "total_revenue"}});
  rev = BSort(rev, {{"total_revenue", false}});
  rev = BLimit(rev, 1);
  Bound s = BScan(d, "supplier",
                  {"s_suppkey", "s_name", "s_address", "s_phone"});
  Bound b = BJoin(rev, s, "l_suppkey", "s_suppkey");
  b = BProject(b,
               {{"s_suppkey", Col(b.schema, "s_suppkey")},
                {"s_name", Col(b.schema, "s_name")},
                {"s_address", Col(b.schema, "s_address")},
                {"s_phone", Col(b.schema, "s_phone")},
                {"total_revenue", Col(b.schema, "total_revenue")}});
  return b.plan;
}

PlanPtr BuildQ16(const Database& d) {
  const Schema& part = d.GetTable("part").schema();
  Bound p = BFilterScan(
      d, "part", {"p_partkey", "p_brand", "p_type", "p_size"},
      db::And(db::And(db::Ne(Col(part, "p_brand"),
                             db::LitString("Brand#45")),
                      db::Not(db::Like(Col(part, "p_type"),
                                       "MEDIUM POLISHED%"))),
              db::InInts(Col(part, "p_size"),
                         {49, 14, 23, 45, 19, 3, 36, 9})));
  Bound ps = BScan(d, "partsupp", {"ps_partkey", "ps_suppkey"});
  Bound b = BJoin(ps, p, "ps_partkey", "p_partkey");
  b = BAgg(b, {"p_brand", "p_type", "p_size"},
           {{AggOp::kCountDistinct, Col(b.schema, "ps_suppkey"),
             "supplier_cnt"}});
  return BSort(b, {{"supplier_cnt", false},
                              {"p_brand", true},
                              {"p_type", true},
                              {"p_size", true}})
      .plan;
}

PlanPtr BuildQ17(const Database& d) {
  const Schema& part = d.GetTable("part").schema();
  const Schema& li = d.GetTable("lineitem").schema();
  Bound p = BFilterScan(
      d, "part", {"p_partkey", "p_brand", "p_container"},
      db::And(db::Eq(Col(part, "p_brand"), db::LitString("Brand#23")),
              db::Eq(Col(part, "p_container"),
                     db::LitString("MED BOX"))));
  Bound l = BFilterScan(d, "lineitem",
                        {"l_partkey", "l_quantity", "l_extendedprice"},
                        db::Lt(Col(li, "l_quantity"), db::LitDouble(5.0)));
  Bound b = BJoin(l, p, "l_partkey", "p_partkey");
  b = BAgg(b, {},
           {{AggOp::kSum, Col(b.schema, "l_extendedprice"), "sum_price"}});
  b = BProject(b,
               {{"avg_yearly", db::Div(Col(b.schema, "sum_price"),
                                       db::LitDouble(7.0))}});
  return b.plan;
}

PlanPtr BuildQ18(const Database& d) {
  Bound l = BScan(d, "lineitem", {"l_orderkey", "l_quantity"});
  Bound big = BAgg(l, {"l_orderkey"},
                   {{AggOp::kSum, Col(l.schema, "l_quantity"), "sum_qty"}});
  big = BFilter(big, db::Gt(Col(big.schema, "sum_qty"),
                                       db::LitDouble(300.0)));
  Bound o = BScan(d, "orders",
                  {"o_orderkey", "o_custkey", "o_orderdate",
                   "o_totalprice"});
  Bound b = BJoin(big, o, "l_orderkey", "o_orderkey");
  Bound c = BScan(d, "customer", {"c_custkey", "c_name"});
  b = BJoin(b, c, "o_custkey", "c_custkey");
  b = BSort(b, {{"o_totalprice", false}, {"o_orderdate", true}});
  b = BProject(b,
               {{"c_name", Col(b.schema, "c_name")},
                {"c_custkey", Col(b.schema, "c_custkey")},
                {"o_orderkey", Col(b.schema, "o_orderkey")},
                {"o_orderdate", Col(b.schema, "o_orderdate")},
                {"o_totalprice", Col(b.schema, "o_totalprice")},
                {"sum_qty", Col(b.schema, "sum_qty")}});
  return BLimit(b, 100).plan;
}

PlanPtr BuildQ19(const Database& d) {
  Bound l = BScan(d, "lineitem",
                  {"l_partkey", "l_quantity", "l_extendedprice",
                   "l_discount", "l_shipmode", "l_shipinstruct"});
  Bound p = BScan(d, "part",
                  {"p_partkey", "p_brand", "p_container", "p_size"});
  Bound b = BJoin(l, p, "l_partkey", "p_partkey");
  const Schema& s = b.schema;
  auto clause = [&s](const char* brand,
                     std::vector<std::string> containers, double qty_lo,
                     double qty_hi, int64_t size_hi) {
    return db::And(
        db::And(db::Eq(Col(s, "p_brand"), db::LitString(brand)),
                db::InStrings(Col(s, "p_container"), std::move(containers))),
        db::And(db::And(db::Ge(Col(s, "l_quantity"), db::LitDouble(qty_lo)),
                        db::Le(Col(s, "l_quantity"),
                               db::LitDouble(qty_hi))),
                db::And(db::Ge(Col(s, "p_size"), db::LitInt(1)),
                        db::Le(Col(s, "p_size"), db::LitInt(size_hi)))));
  };
  ExprPtr common =
      db::And(db::InStrings(Col(s, "l_shipmode"), {"AIR", "REG AIR"}),
              db::Eq(Col(s, "l_shipinstruct"),
                     db::LitString("DELIVER IN PERSON")));
  ExprPtr any_clause = db::Or(
      clause("Brand#12", {"SM CASE", "SM BOX", "SM PACK", "SM PKG"}, 1.0,
             11.0, 5),
      db::Or(clause("Brand#23", {"MED BAG", "MED BOX", "MED PKG",
                                 "MED PACK"},
                    10.0, 20.0, 10),
             clause("Brand#34", {"LG CASE", "LG BOX", "LG PACK", "LG PKG"},
                    20.0, 30.0, 15)));
  b = BFilter(b, db::And(common, any_clause));
  return BAgg(b, {},
              {{AggOp::kSum, Revenue(b.schema), "revenue"}})
      .plan;
}

PlanPtr BuildQ20(const Database& d) {
  const Schema& part = d.GetTable("part").schema();
  const Schema& ps_schema = d.GetTable("partsupp").schema();
  const Schema& nation = d.GetTable("nation").schema();
  Bound p = BFilterScan(d, "part", {"p_partkey", "p_name"},
                        db::Like(Col(part, "p_name"), "forest%"));
  Bound ps = BFilterScan(
      d, "partsupp", {"ps_partkey", "ps_suppkey", "ps_availqty"},
      db::Gt(Col(ps_schema, "ps_availqty"), db::LitInt(100)));
  Bound b = BJoin(ps, p, "ps_partkey", "p_partkey");
  Bound s = BScan(d, "supplier",
                  {"s_suppkey", "s_name", "s_address", "s_nationkey"});
  b = BJoin(b, s, "ps_suppkey", "s_suppkey");
  Bound n = BFilterScan(d, "nation", {"n_nationkey", "n_name"},
                        db::Eq(Col(nation, "n_name"),
                               db::LitString("CANADA")));
  b = BJoin(b, n, "s_nationkey", "n_nationkey");
  b = BAgg(b, {"s_name", "s_address"},
           {{AggOp::kCount, nullptr, "num_parts"}});
  return BSort(b, {{"s_name", true}}).plan;
}

PlanPtr BuildQ21(const Database& d) {
  const Schema& li = d.GetTable("lineitem").schema();
  const Schema& ord = d.GetTable("orders").schema();
  const Schema& nation = d.GetTable("nation").schema();
  Bound l = BFilterScan(
      d, "lineitem", {"l_orderkey", "l_suppkey", "l_receiptdate",
                      "l_commitdate"},
      db::Gt(Col(li, "l_receiptdate"), Col(li, "l_commitdate")));
  Bound s = BScan(d, "supplier", {"s_suppkey", "s_name", "s_nationkey"});
  Bound b = BJoin(l, s, "l_suppkey", "s_suppkey");
  Bound n = BFilterScan(d, "nation", {"n_nationkey", "n_name"},
                        db::Eq(Col(nation, "n_name"),
                               db::LitString("SAUDI ARABIA")));
  b = BJoin(b, n, "s_nationkey", "n_nationkey");
  Bound o = BFilterScan(d, "orders", {"o_orderkey", "o_orderstatus"},
                        db::Eq(Col(ord, "o_orderstatus"),
                               db::LitString("F")));
  b = BJoin(b, o, "l_orderkey", "o_orderkey");
  b = BAgg(b, {"s_name"}, {{AggOp::kCount, nullptr, "numwait"}});
  b = BSort(b, {{"numwait", false}, {"s_name", true}});
  return BLimit(b, 100).plan;
}

PlanPtr BuildQ22(const Database& d) {
  const Schema& cust = d.GetTable("customer").schema();
  Bound c = BFilterScan(
      d, "customer", {"c_phone", "c_acctbal"},
      db::And(db::InStrings(db::Substr(Col(cust, "c_phone"), 1, 2),
                            {"13", "31", "23", "29", "30", "18", "17"}),
              db::Gt(Col(cust, "c_acctbal"), db::LitDouble(0.0))));
  c = BProject(c,
               {{"cntrycode", db::Substr(Col(cust, "c_phone"), 1, 2)},
                {"c_acctbal", Col(cust, "c_acctbal")}});
  Bound b = BAgg(c, {"cntrycode"},
                 {{AggOp::kCount, nullptr, "numcust"},
                  {AggOp::kSum, Col(c.schema, "c_acctbal"), "totacctbal"}});
  return BSort(b, {{"cntrycode", true}}).plan;
}

struct QueryEntry {
  int number;
  const char* name;
  const char* simplification;
  PlanPtr (*build)(const Database&);
};

const QueryEntry kQueries[] = {
    {1, "Pricing Summary Report", "faithful", BuildQ1},
    {2, "Minimum Cost Supplier",
     "correlated min-supplycost subquery dropped; returns all qualifying "
     "part/supplier pairs ordered as in the spec",
     BuildQ2},
    {3, "Shipping Priority", "faithful", BuildQ3},
    {4, "Order Priority Checking",
     "EXISTS rewritten as join + count(distinct o_orderkey)", BuildQ4},
    {5, "Local Supplier Volume", "faithful", BuildQ5},
    {6, "Forecasting Revenue Change", "faithful", BuildQ6},
    {7, "Volume Shipping", "faithful", BuildQ7},
    {8, "National Market Share", "faithful", BuildQ8},
    {9, "Product Type Profit Measure", "faithful", BuildQ9},
    {10, "Returned Item Reporting", "faithful", BuildQ10},
    {11, "Important Stock Identification",
     "HAVING sum > fraction-of-total replaced by top-100 by value",
     BuildQ11},
    {12, "Shipping Modes and Order Priority", "faithful", BuildQ12},
    {13, "Customer Distribution",
     "left outer join dropped: customers with zero orders not counted",
     BuildQ13},
    {14, "Promotion Effect", "faithful", BuildQ14},
    {15, "Top Supplier", "revenue view inlined; ties broken arbitrarily",
     BuildQ15},
    {16, "Parts/Supplier Relationship",
     "complaint-supplier anti-join dropped", BuildQ16},
    {17, "Small-Quantity-Order Revenue",
     "correlated 0.2*avg(quantity) threshold replaced by constant 5",
     BuildQ17},
    {18, "Large Volume Customer", "faithful", BuildQ18},
    {19, "Discounted Revenue", "faithful", BuildQ19},
    {20, "Potential Part Promotion",
     "correlated 0.5*sum(l_quantity) availability threshold replaced by "
     "constant 100",
     BuildQ20},
    {21, "Suppliers Who Kept Orders Waiting",
     "multi-supplier EXISTS/NOT EXISTS pair dropped", BuildQ21},
    {22, "Global Sales Opportunity",
     "avg(acctbal) threshold replaced by 0; no-recent-orders anti-join "
     "dropped",
     BuildQ22},
};

}  // namespace

db::PlanPtr TpchQuery::Build(const db::Database& database) const {
  return kQueries[number - 1].build(database);
}

const std::vector<TpchQuery>& AllTpchQueries() {
  static const std::vector<TpchQuery>* queries = [] {
    auto* v = new std::vector<TpchQuery>();
    for (const QueryEntry& entry : kQueries) {
      TpchQuery q;
      q.number = entry.number;
      q.name = entry.name;
      q.simplification = entry.simplification;
      v->push_back(q);
    }
    return v;
  }();
  return *queries;
}

const TpchQuery& GetTpchQuery(int number) {
  PERFEVAL_CHECK_GE(number, 1);
  PERFEVAL_CHECK_LE(number, 22);
  return AllTpchQueries()[static_cast<size_t>(number - 1)];
}

}  // namespace workload
}  // namespace perfeval
