#include "workload/micro.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/random.h"
#include "common/zipf.h"

namespace perfeval {
namespace workload {

const char* DistributionName(Distribution distribution) {
  switch (distribution) {
    case Distribution::kUniform:
      return "uniform";
    case Distribution::kZipf:
      return "zipf";
    case Distribution::kSequential:
      return "sequential";
    case Distribution::kGaussian:
      return "gaussian";
  }
  return "unknown";
}

std::shared_ptr<db::Table> GenerateMicroTable(const MicroTableSpec& spec) {
  PERFEVAL_CHECK(!spec.columns.empty());
  std::vector<db::ColumnSpec> schema_specs;
  for (const MicroColumnSpec& column : spec.columns) {
    schema_specs.push_back({column.name, db::DataType::kInt64});
  }
  auto table = std::make_shared<db::Table>(db::Schema(schema_specs));
  table->ReserveRows(spec.num_rows);

  Pcg32 rng(spec.seed);
  std::vector<int64_t> previous_column;
  for (size_t c = 0; c < spec.columns.size(); ++c) {
    const MicroColumnSpec& cs = spec.columns[c];
    PERFEVAL_CHECK_LE(cs.min_value, cs.max_value);
    PERFEVAL_CHECK_GE(cs.correlation, 0.0);
    PERFEVAL_CHECK_LE(cs.correlation, 1.0);
    double span = static_cast<double>(cs.max_value - cs.min_value);
    std::unique_ptr<ZipfGenerator> zipf;
    if (cs.distribution == Distribution::kZipf) {
      uint64_t distinct =
          std::min<uint64_t>(static_cast<uint64_t>(span) + 1, 100'000);
      zipf = std::make_unique<ZipfGenerator>(distinct, cs.zipf_theta);
    }
    std::vector<int64_t> values(spec.num_rows);
    for (size_t r = 0; r < spec.num_rows; ++r) {
      int64_t v = 0;
      switch (cs.distribution) {
        case Distribution::kUniform:
          v = rng.NextInRange(cs.min_value, cs.max_value);
          break;
        case Distribution::kZipf: {
          uint64_t rank = zipf->Next(rng);
          double fraction = static_cast<double>(rank - 1) /
                            static_cast<double>(zipf->n());
          v = cs.min_value + static_cast<int64_t>(fraction * span);
          break;
        }
        case Distribution::kSequential:
          v = cs.min_value + static_cast<int64_t>(r);
          break;
        case Distribution::kGaussian: {
          double mean = static_cast<double>(cs.min_value) + span / 2.0;
          double sd = span / 6.0;
          double g = mean + sd * rng.NextGaussian();
          v = std::clamp(static_cast<int64_t>(std::llround(g)),
                         cs.min_value, cs.max_value);
          break;
        }
      }
      if (c > 0 && cs.correlation > 0.0) {
        // Blend with the previous column: corr=1 copies it exactly.
        double blended =
            cs.correlation * static_cast<double>(previous_column[r]) +
            (1.0 - cs.correlation) * static_cast<double>(v);
        v = static_cast<int64_t>(std::llround(blended));
      }
      values[r] = v;
    }
    db::Column& column = table->column(c);
    for (int64_t v : values) {
      column.AppendInt64(v);
    }
    previous_column = std::move(values);
  }
  table->FinishBulkLoad();
  return table;
}

db::ExprPtr PredicateForSelectivity(const db::Table& table,
                                    const std::string& column,
                                    double selectivity) {
  PERFEVAL_CHECK_GE(selectivity, 0.0);
  PERFEVAL_CHECK_LE(selectivity, 1.0);
  const db::Column& col = table.ColumnByName(column);
  PERFEVAL_CHECK(col.type() == db::DataType::kInt64);
  std::vector<int64_t> sorted = col.ints();
  PERFEVAL_CHECK(!sorted.empty());
  std::sort(sorted.begin(), sorted.end());
  size_t index = selectivity >= 1.0
                     ? sorted.size() - 1
                     : static_cast<size_t>(selectivity *
                                           static_cast<double>(sorted.size()));
  int64_t threshold =
      selectivity <= 0.0 ? sorted.front() - 1 : sorted[index];
  return db::Le(db::Col(table.schema(), column), db::LitInt(threshold));
}

double MeasuredSelectivity(const db::Table& table, const std::string& column,
                           double selectivity) {
  db::ExprPtr pred = PredicateForSelectivity(table, column, selectivity);
  size_t matches = 0;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (pred->EvalBool(table, r)) {
      ++matches;
    }
  }
  return table.num_rows() == 0
             ? 0.0
             : static_cast<double>(matches) /
                   static_cast<double>(table.num_rows());
}

}  // namespace workload
}  // namespace perfeval
