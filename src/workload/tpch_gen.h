#ifndef PERFEVAL_WORKLOAD_TPCH_GEN_H_
#define PERFEVAL_WORKLOAD_TPCH_GEN_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/random.h"
#include "db/database.h"
#include "db/table.h"

namespace perfeval {
namespace workload {

/// Scaled-down, seedable TPC-H data generator.
///
/// A (seed, scale_factor) pair fully determines the data set — the
/// repeatability property the paper demands of experiment inputs
/// (slides 157–163, and the war story on slide 227 about data sets whose
/// identity was lost). Value distributions follow the TPC-H spec in the
/// aspects the queries depend on: date ranges and the shipdate/commitdate/
/// receiptdate ordering, returnflag/linestatus derivation from dates,
/// discount/tax/quantity ranges, brand/type/container vocabularies, and
/// uniform foreign keys.
class TpchGenerator {
 public:
  /// `fk_zipf_theta` > 0 skews the foreign keys (l_partkey, l_suppkey,
  /// o_custkey) with a Zipf distribution of that parameter — hot parts,
  /// hot suppliers, hot customers — the "controllable value distribution"
  /// knob of slide 11 applied to the standard benchmark; 0 keeps the
  /// spec's uniform keys.
  explicit TpchGenerator(double scale_factor, uint64_t seed = 19920101,
                         double fk_zipf_theta = 0.0);

  double scale_factor() const { return scale_factor_; }

  /// Worker threads for chunk-parallel generation (<= 1 runs serially).
  /// Purely a speed knob: the large tables are generated in fixed-size
  /// chunks, each drawing from its own (seed, table, chunk) RNG stream and
  /// concatenated in chunk order, so the data set is bit-identical at any
  /// thread count — (seed, scale_factor) still fully determines it.
  int threads() const { return threads_; }
  void set_threads(int threads) { threads_ = threads < 1 ? 1 : threads; }

  /// Generates one table by TPC-H name ("lineitem", "orders", ...).
  std::shared_ptr<db::Table> Generate(const std::string& table_name);

  /// Generates all eight tables and registers them with `database`.
  void LoadAll(db::Database* database);

  /// Expected cardinality of a table at this scale factor (lineitem is
  /// approximate: lines per order are random in [1, 7]).
  int64_t Cardinality(const std::string& table_name) const;

 private:
  std::shared_ptr<db::Table> GenerateRegion();
  std::shared_ptr<db::Table> GenerateNation();
  std::shared_ptr<db::Table> GenerateSupplier();
  std::shared_ptr<db::Table> GenerateCustomer();
  std::shared_ptr<db::Table> GeneratePart();
  std::shared_ptr<db::Table> GeneratePartsupp();
  std::shared_ptr<db::Table> GenerateOrders();
  std::shared_ptr<db::Table> GenerateLineitem();

  /// Chunk-parallel table builder: splits `units` work items (rows, or
  /// orders for lineitem) into fixed-size chunks, runs `fill(rng, begin,
  /// end, out)` per chunk with a chunk-specific RNG, and concatenates the
  /// per-chunk tables in chunk order. Chunk boundaries and streams depend
  /// only on (seed, stream, units), never on threads_.
  std::shared_ptr<db::Table> BuildChunked(
      int64_t units, uint64_t stream, const db::Schema& schema,
      const std::function<void(Pcg32&, int64_t, int64_t, db::Table*)>& fill);

  double scale_factor_;
  uint64_t seed_;
  double fk_zipf_theta_;
  int threads_ = 1;

  /// Orders and lineitem must agree on order keys/dates; generating orders
  /// caches what lineitem needs.
  struct OrderInfo {
    int64_t orderkey;
    int32_t orderdate;
    int num_lines;
  };
  std::vector<OrderInfo> order_infos_;
  bool orders_generated_ = false;
};

}  // namespace workload
}  // namespace perfeval

#endif  // PERFEVAL_WORKLOAD_TPCH_GEN_H_
