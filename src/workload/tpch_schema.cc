#include "workload/tpch_schema.h"

namespace perfeval {
namespace workload {

using db::DataType;

db::Schema RegionSchema() {
  return db::Schema({{"r_regionkey", DataType::kInt64},
                     {"r_name", DataType::kString},
                     {"r_comment", DataType::kString}});
}

db::Schema NationSchema() {
  return db::Schema({{"n_nationkey", DataType::kInt64},
                     {"n_name", DataType::kString},
                     {"n_regionkey", DataType::kInt64},
                     {"n_comment", DataType::kString}});
}

db::Schema SupplierSchema() {
  return db::Schema({{"s_suppkey", DataType::kInt64},
                     {"s_name", DataType::kString},
                     {"s_address", DataType::kString},
                     {"s_nationkey", DataType::kInt64},
                     {"s_phone", DataType::kString},
                     {"s_acctbal", DataType::kDouble},
                     {"s_comment", DataType::kString}});
}

db::Schema CustomerSchema() {
  return db::Schema({{"c_custkey", DataType::kInt64},
                     {"c_name", DataType::kString},
                     {"c_address", DataType::kString},
                     {"c_nationkey", DataType::kInt64},
                     {"c_phone", DataType::kString},
                     {"c_acctbal", DataType::kDouble},
                     {"c_mktsegment", DataType::kString},
                     {"c_comment", DataType::kString}});
}

db::Schema PartSchema() {
  return db::Schema({{"p_partkey", DataType::kInt64},
                     {"p_name", DataType::kString},
                     {"p_mfgr", DataType::kString},
                     {"p_brand", DataType::kString},
                     {"p_type", DataType::kString},
                     {"p_size", DataType::kInt64},
                     {"p_container", DataType::kString},
                     {"p_retailprice", DataType::kDouble},
                     {"p_comment", DataType::kString}});
}

db::Schema PartsuppSchema() {
  return db::Schema({{"ps_partkey", DataType::kInt64},
                     {"ps_suppkey", DataType::kInt64},
                     {"ps_availqty", DataType::kInt64},
                     {"ps_supplycost", DataType::kDouble},
                     {"ps_comment", DataType::kString}});
}

db::Schema OrdersSchema() {
  return db::Schema({{"o_orderkey", DataType::kInt64},
                     {"o_custkey", DataType::kInt64},
                     {"o_orderstatus", DataType::kString},
                     {"o_totalprice", DataType::kDouble},
                     {"o_orderdate", DataType::kDate},
                     {"o_orderpriority", DataType::kString},
                     {"o_clerk", DataType::kString},
                     {"o_shippriority", DataType::kInt64},
                     {"o_comment", DataType::kString}});
}

db::Schema LineitemSchema() {
  return db::Schema({{"l_orderkey", DataType::kInt64},
                     {"l_partkey", DataType::kInt64},
                     {"l_suppkey", DataType::kInt64},
                     {"l_linenumber", DataType::kInt64},
                     {"l_quantity", DataType::kDouble},
                     {"l_extendedprice", DataType::kDouble},
                     {"l_discount", DataType::kDouble},
                     {"l_tax", DataType::kDouble},
                     {"l_returnflag", DataType::kString},
                     {"l_linestatus", DataType::kString},
                     {"l_shipdate", DataType::kDate},
                     {"l_commitdate", DataType::kDate},
                     {"l_receiptdate", DataType::kDate},
                     {"l_shipinstruct", DataType::kString},
                     {"l_shipmode", DataType::kString},
                     {"l_comment", DataType::kString}});
}

}  // namespace workload
}  // namespace perfeval
