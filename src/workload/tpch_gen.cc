#include "workload/tpch_gen.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/random.h"
#include "common/zipf.h"
#include "common/string_util.h"
#include "sched/parallel_for.h"
#include "workload/tpch_schema.h"

namespace perfeval {
namespace workload {
namespace {

using db::DateFromYmd;
using db::Table;
using db::Value;

const char* kRegionNames[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                              "MIDDLE EAST"};

struct NationDef {
  const char* name;
  int region;
};
const NationDef kNations[] = {
    {"ALGERIA", 0},      {"ARGENTINA", 1},  {"BRAZIL", 1},
    {"CANADA", 1},       {"EGYPT", 4},      {"ETHIOPIA", 0},
    {"FRANCE", 3},       {"GERMANY", 3},    {"INDIA", 2},
    {"INDONESIA", 2},    {"IRAN", 4},       {"IRAQ", 4},
    {"JAPAN", 2},        {"JORDAN", 4},     {"KENYA", 0},
    {"MOROCCO", 0},      {"MOZAMBIQUE", 0}, {"PERU", 1},
    {"CHINA", 2},        {"ROMANIA", 3},    {"SAUDI ARABIA", 4},
    {"VIETNAM", 2},      {"RUSSIA", 3},     {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1}};
constexpr int kNumNations = 25;

const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
                           "HOUSEHOLD"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kShipModes[] = {"REG AIR", "AIR",  "RAIL", "SHIP",
                            "TRUCK",   "MAIL", "FOB"};
const char* kShipInstructs[] = {"DELIVER IN PERSON", "COLLECT COD", "NONE",
                                "TAKE BACK RETURN"};
const char* kContainers1[] = {"SM", "LG", "MED", "JUMBO", "WRAP"};
const char* kContainers2[] = {"CASE", "BOX", "BAG", "JAR", "PKG", "PACK",
                              "CAN", "DRUM"};
const char* kTypes1[] = {"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY",
                         "PROMO"};
const char* kTypes2[] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                         "BRUSHED"};
const char* kTypes3[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
const char* kNameWords[] = {
    "almond",  "antique", "aquamarine", "azure",     "beige",  "bisque",
    "black",   "blanched", "blue",      "blush",     "brown",  "burlywood",
    "chiffon", "chocolate", "coral",    "cornflower", "cream", "cyan",
    "dark",    "deep",     "dim",       "dodger",    "drab",   "firebrick",
    "floral",  "forest",   "frosted",   "gainsboro", "ghost",  "goldenrod",
    "green",   "grey",     "honeydew",  "hot",       "indian", "ivory",
    "khaki",   "lace",     "lavender",  "lawn",      "lemon",  "light",
    "lime",    "linen",    "magenta",   "maroon",    "medium", "metallic",
    "midnight", "mint",    "misty",     "moccasin",  "navajo", "navy",
    "olive",   "orange",   "orchid",    "pale",      "papaya", "peach"};
const char* kCommentWords[] = {
    "carefully", "quickly",  "furiously", "slyly",    "blithely", "regular",
    "final",     "special",  "express",   "pending",  "ironic",   "even",
    "bold",      "silent",   "unusual",   "deposits", "requests", "accounts",
    "packages",  "theodolites", "instructions", "foxes", "ideas", "pinto",
    "beans",     "dependencies", "excuses", "platelets", "asymptotes",
    "courts",    "dolphins", "multipliers", "sauternes", "warthogs"};

std::string RandomWords(Pcg32& rng, int min_words, int max_words,
                        const char* const* vocab, size_t vocab_size) {
  int n = static_cast<int>(
      rng.NextInRange(min_words, max_words));
  std::string out;
  for (int i = 0; i < n; ++i) {
    if (i > 0) {
      out += ' ';
    }
    out += vocab[rng.NextBounded(static_cast<uint32_t>(vocab_size))];
  }
  return out;
}

std::string RandomComment(Pcg32& rng) {
  return RandomWords(rng, 3, 8, kCommentWords,
                     std::size(kCommentWords));
}

std::string RandomPhone(Pcg32& rng, int64_t nationkey) {
  return StrFormat("%02d-%03u-%03u-%04u", static_cast<int>(nationkey) + 10,
                   rng.NextBounded(900) + 100, rng.NextBounded(900) + 100,
                   rng.NextBounded(9000) + 1000);
}

template <typename T, size_t N>
const char* Pick(Pcg32& rng, T (&array)[N]) {
  return array[rng.NextBounded(static_cast<uint32_t>(N))];
}

/// Work items per generation chunk. Fixed — never derived from the thread
/// count — so chunk boundaries, and with them every RNG stream, are a pure
/// function of (seed, scale_factor).
constexpr int64_t kGenChunkRows = 65536;

}  // namespace

TpchGenerator::TpchGenerator(double scale_factor, uint64_t seed,
                             double fk_zipf_theta)
    : scale_factor_(scale_factor),
      seed_(seed),
      fk_zipf_theta_(fk_zipf_theta) {
  PERFEVAL_CHECK_GT(scale_factor, 0.0);
  PERFEVAL_CHECK_GE(fk_zipf_theta, 0.0);
}

int64_t TpchGenerator::Cardinality(const std::string& table_name) const {
  auto scaled = [this](int64_t base) {
    return std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(base * scale_factor_)));
  };
  if (table_name == "region") {
    return 5;
  }
  if (table_name == "nation") {
    return kNumNations;
  }
  if (table_name == "supplier") {
    return scaled(kSupplierBase);
  }
  if (table_name == "customer") {
    return scaled(kCustomerBase);
  }
  if (table_name == "part") {
    return scaled(kPartBase);
  }
  if (table_name == "partsupp") {
    return scaled(kPartBase) * kPartsuppPerPart;
  }
  if (table_name == "orders") {
    return scaled(kOrdersBase);
  }
  if (table_name == "lineitem") {
    return scaled(kOrdersBase) * (1 + kMaxLineitemsPerOrder) / 2;
  }
  PERFEVAL_CHECK(false) << "unknown TPC-H table " << table_name;
  return 0;
}

std::shared_ptr<Table> TpchGenerator::Generate(
    const std::string& table_name) {
  if (table_name == "region") {
    return GenerateRegion();
  }
  if (table_name == "nation") {
    return GenerateNation();
  }
  if (table_name == "supplier") {
    return GenerateSupplier();
  }
  if (table_name == "customer") {
    return GenerateCustomer();
  }
  if (table_name == "part") {
    return GeneratePart();
  }
  if (table_name == "partsupp") {
    return GeneratePartsupp();
  }
  if (table_name == "orders") {
    return GenerateOrders();
  }
  if (table_name == "lineitem") {
    return GenerateLineitem();
  }
  PERFEVAL_CHECK(false) << "unknown TPC-H table " << table_name;
  return nullptr;
}

void TpchGenerator::LoadAll(db::Database* database) {
  // Orders before lineitem (lineitem derives from order info).
  for (const char* name : {"region", "nation", "supplier", "customer",
                           "part", "partsupp", "orders", "lineitem"}) {
    database->RegisterTable(name, Generate(name));
  }
}

std::shared_ptr<Table> TpchGenerator::BuildChunked(
    int64_t units, uint64_t stream, const db::Schema& schema,
    const std::function<void(Pcg32&, int64_t, int64_t, Table*)>& fill) {
  auto table = std::make_shared<Table>(schema);
  if (units <= 0) {
    return table;
  }
  int64_t num_chunks = (units + kGenChunkRows - 1) / kGenChunkRows;
  // Every chunk draws from its own stream, derived from (table stream,
  // chunk index) — workers never share RNG state, and a chunk's content
  // does not depend on which worker generated it or what ran before it.
  auto chunk_rng = [this, stream](int64_t chunk) {
    return Pcg32(seed_,
                 MixSeed(stream, static_cast<uint64_t>(chunk), 0x74706368ULL));
  };
  if (threads_ <= 1 || num_chunks <= 1) {
    // Serial path uses the same per-chunk streams, so it produces exactly
    // the bytes the parallel path's chunk-order concatenation produces.
    for (int64_t c = 0; c < num_chunks; ++c) {
      Pcg32 rng = chunk_rng(c);
      int64_t begin = c * kGenChunkRows;
      fill(rng, begin, std::min(units, begin + kGenChunkRows), table.get());
    }
    return table;
  }
  std::vector<std::unique_ptr<Table>> parts(
      static_cast<size_t>(num_chunks));
  sched::ParallelFor(
      threads_, static_cast<size_t>(num_chunks), [&](size_t c) {
        Pcg32 rng = chunk_rng(static_cast<int64_t>(c));
        auto part = std::make_unique<Table>(schema);
        int64_t begin = static_cast<int64_t>(c) * kGenChunkRows;
        fill(rng, begin, std::min(units, begin + kGenChunkRows), part.get());
        parts[c] = std::move(part);
      });
  for (const std::unique_ptr<Table>& part : parts) {
    table->AppendTable(*part);
  }
  return table;
}

std::shared_ptr<Table> TpchGenerator::GenerateRegion() {
  Pcg32 rng(seed_, 1);
  auto table = std::make_shared<Table>(RegionSchema());
  for (int64_t i = 0; i < 5; ++i) {
    table->AppendRow({Value::Int64(i), Value::String(kRegionNames[i]),
                      Value::String(RandomComment(rng))});
  }
  return table;
}

std::shared_ptr<Table> TpchGenerator::GenerateNation() {
  Pcg32 rng(seed_, 2);
  auto table = std::make_shared<Table>(NationSchema());
  for (int64_t i = 0; i < kNumNations; ++i) {
    table->AppendRow({Value::Int64(i), Value::String(kNations[i].name),
                      Value::Int64(kNations[i].region),
                      Value::String(RandomComment(rng))});
  }
  return table;
}

std::shared_ptr<Table> TpchGenerator::GenerateSupplier() {
  Pcg32 rng(seed_, 3);
  int64_t n = Cardinality("supplier");
  auto table = std::make_shared<Table>(SupplierSchema());
  table->ReserveRows(n);
  for (int64_t i = 1; i <= n; ++i) {
    int64_t nation = rng.NextBounded(kNumNations);
    std::string comment = RandomComment(rng);
    // ~0.5% of suppliers carry the "Customer...Complaints" marker (Q16).
    if (rng.NextBernoulli(0.005)) {
      comment += " Customer Complaints";
    }
    table->AppendRow(
        {Value::Int64(i), Value::String(StrFormat("Supplier#%09lld",
                                                  static_cast<long long>(i))),
         Value::String(RandomWords(rng, 2, 4, kNameWords,
                                   std::size(kNameWords))),
         Value::Int64(nation), Value::String(RandomPhone(rng, nation)),
         Value::Double(rng.NextDoubleInRange(-999.99, 9999.99)),
         Value::String(comment)});
  }
  return table;
}

std::shared_ptr<Table> TpchGenerator::GenerateCustomer() {
  int64_t n = Cardinality("customer");
  return BuildChunked(
      n, 4, CustomerSchema(),
      [](Pcg32& rng, int64_t begin, int64_t end, Table* out) {
        out->ReserveRows(static_cast<size_t>(end - begin));
        for (int64_t i = begin + 1; i <= end; ++i) {
          int64_t nation = rng.NextBounded(kNumNations);
          out->AppendRow(
              {Value::Int64(i),
               Value::String(StrFormat("Customer#%09lld",
                                       static_cast<long long>(i))),
               Value::String(RandomWords(rng, 2, 4, kNameWords,
                                         std::size(kNameWords))),
               Value::Int64(nation), Value::String(RandomPhone(rng, nation)),
               Value::Double(rng.NextDoubleInRange(-999.99, 9999.99)),
               Value::String(Pick(rng, kSegments)),
               Value::String(RandomComment(rng))});
        }
      });
}

std::shared_ptr<Table> TpchGenerator::GeneratePart() {
  int64_t n = Cardinality("part");
  return BuildChunked(
      n, 5, PartSchema(),
      [](Pcg32& rng, int64_t begin, int64_t end, Table* out) {
        out->ReserveRows(static_cast<size_t>(end - begin));
        for (int64_t i = begin + 1; i <= end; ++i) {
          int mfgr = static_cast<int>(rng.NextBounded(5)) + 1;
          int brand = mfgr * 10 + static_cast<int>(rng.NextBounded(5)) + 1;
          std::string type = std::string(Pick(rng, kTypes1)) + " " +
                             Pick(rng, kTypes2) + " " + Pick(rng, kTypes3);
          std::string container = std::string(Pick(rng, kContainers1)) +
                                  " " + Pick(rng, kContainers2);
          out->AppendRow(
              {Value::Int64(i),
               Value::String(RandomWords(rng, 4, 5, kNameWords,
                                         std::size(kNameWords))),
               Value::String(StrFormat("Manufacturer#%d", mfgr)),
               Value::String(StrFormat("Brand#%d", brand)),
               Value::String(type), Value::Int64(rng.NextInRange(1, 50)),
               Value::String(container),
               Value::Double(900.0 + static_cast<double>(i % 1000) / 10.0),
               Value::String(RandomComment(rng))});
        }
      });
}

std::shared_ptr<Table> TpchGenerator::GeneratePartsupp() {
  int64_t parts = Cardinality("part");
  int64_t suppliers = Cardinality("supplier");
  // Chunked by part key: each part emits its kPartsuppPerPart rows inside
  // one chunk, so the (p, s) enumeration order is unchanged.
  return BuildChunked(
      parts, 6, PartsuppSchema(),
      [suppliers](Pcg32& rng, int64_t begin, int64_t end, Table* out) {
        out->ReserveRows(static_cast<size_t>(end - begin) *
                         kPartsuppPerPart);
        for (int64_t p = begin + 1; p <= end; ++p) {
          for (int s = 0; s < kPartsuppPerPart; ++s) {
            // TPC-H's supplier spreading formula keeps (p, s) pairs unique.
            int64_t suppkey =
                (p + s * (suppliers / kPartsuppPerPart + 1)) % suppliers + 1;
            out->AppendRow(
                {Value::Int64(p), Value::Int64(suppkey),
                 Value::Int64(rng.NextInRange(1, 9999)),
                 Value::Double(rng.NextDoubleInRange(1.0, 1000.0)),
                 Value::String(RandomComment(rng))});
          }
        }
      });
}

std::shared_ptr<Table> TpchGenerator::GenerateOrders() {
  int64_t n = Cardinality("orders");
  int64_t customers = Cardinality("customer");
  order_infos_.assign(static_cast<size_t>(n), OrderInfo{});

  const int32_t start_date = DateFromYmd(1992, 1, 1);
  const int32_t end_date = DateFromYmd(1998, 8, 2);
  const int32_t current_date = DateFromYmd(1995, 6, 17);

  // Built once and shared: ZipfGenerator::Next is const (the only mutable
  // state is the caller's RNG), so concurrent chunks can draw from it.
  std::unique_ptr<ZipfGenerator> cust_zipf;
  if (fk_zipf_theta_ > 0.0) {
    cust_zipf = std::make_unique<ZipfGenerator>(
        static_cast<uint64_t>(customers), fk_zipf_theta_);
  }
  auto table = BuildChunked(
      n, 7, OrdersSchema(),
      [&, customers](Pcg32& rng, int64_t begin, int64_t end, Table* out) {
        out->ReserveRows(static_cast<size_t>(end - begin));
        for (int64_t i = begin + 1; i <= end; ++i) {
          // TPC-H order keys are sparse; we keep them dense for simplicity
          // (lineitem and the date-ordering invariants rely on row i
          // holding orderkey i+1).
          int64_t orderkey = i;
          int64_t custkey = cust_zipf
                                ? static_cast<int64_t>(cust_zipf->Next(rng))
                                : rng.NextInRange(1, customers);
          int32_t orderdate = static_cast<int32_t>(
              rng.NextInRange(start_date, end_date));
          int num_lines =
              static_cast<int>(rng.NextInRange(1, kMaxLineitemsPerOrder));
          // Order status derives from the order date relative to "today":
          // old orders are finished (F), recent ones open (O), around the
          // boundary partially shipped (P).
          const char* status = "O";
          if (orderdate + 90 < current_date) {
            status = "F";
          } else if (orderdate < current_date) {
            status = "P";
          }
          out->AppendRow(
              {Value::Int64(orderkey), Value::Int64(custkey),
               Value::String(status),
               Value::Double(rng.NextDoubleInRange(800.0, 500000.0)),
               Value::Date(orderdate), Value::String(Pick(rng, kPriorities)),
               Value::String(
                   StrFormat("Clerk#%09u", rng.NextBounded(1000) + 1)),
               Value::Int64(0), Value::String(RandomComment(rng))});
          // Chunks own disjoint index ranges of order_infos_, pre-sized
          // above, so concurrent writes never alias.
          order_infos_[static_cast<size_t>(i - 1)] = {orderkey, orderdate,
                                                      num_lines};
        }
      });
  orders_generated_ = true;
  return table;
}

std::shared_ptr<Table> TpchGenerator::GenerateLineitem() {
  if (!orders_generated_) {
    (void)GenerateOrders();
  }
  int64_t parts = Cardinality("part");
  int64_t suppliers = Cardinality("supplier");
  const int32_t current_date = DateFromYmd(1995, 6, 17);

  std::unique_ptr<ZipfGenerator> part_zipf;
  if (fk_zipf_theta_ > 0.0) {
    part_zipf = std::make_unique<ZipfGenerator>(
        static_cast<uint64_t>(parts), fk_zipf_theta_);
  }
  // Chunked by order index — an order's lines always come from one chunk,
  // preserving the clustered-by-orderkey layout MergeJoin exploits.
  return BuildChunked(
      static_cast<int64_t>(order_infos_.size()), 8, LineitemSchema(),
      [&, parts, suppliers](Pcg32& rng, int64_t begin, int64_t end,
                            Table* out) {
        for (int64_t o = begin; o < end; ++o) {
          const OrderInfo& order = order_infos_[static_cast<size_t>(o)];
          for (int line = 1; line <= order.num_lines; ++line) {
            int64_t partkey =
                part_zipf ? static_cast<int64_t>(part_zipf->Next(rng))
                          : rng.NextInRange(1, parts);
            int64_t suppkey =
                (partkey + rng.NextBounded(kPartsuppPerPart) *
                               (suppliers / kPartsuppPerPart + 1)) %
                    suppliers +
                1;
            double quantity = static_cast<double>(rng.NextInRange(1, 50));
            double price_base =
                900.0 + static_cast<double>(partkey % 1000) / 10.0;
            double extendedprice = quantity * price_base;
            double discount =
                static_cast<double>(rng.NextInRange(0, 10)) / 100.0;
            double tax = static_cast<double>(rng.NextInRange(0, 8)) / 100.0;
            int32_t shipdate =
                order.orderdate +
                static_cast<int32_t>(rng.NextInRange(1, 121));
            int32_t commitdate =
                order.orderdate +
                static_cast<int32_t>(rng.NextInRange(30, 90));
            int32_t receiptdate =
                shipdate + static_cast<int32_t>(rng.NextInRange(1, 30));
            // Return flag and line status derive from dates, as in the
            // spec: items received in the past are returned (R) or
            // accepted (A); future/unshipped ones are N. Status F when
            // shipped in the past.
            const char* returnflag = "N";
            if (receiptdate <= current_date) {
              returnflag = rng.NextBernoulli(0.5) ? "R" : "A";
            }
            const char* linestatus = shipdate > current_date ? "O" : "F";
            out->AppendRow(
                {Value::Int64(order.orderkey), Value::Int64(partkey),
                 Value::Int64(suppkey), Value::Int64(line),
                 Value::Double(quantity), Value::Double(extendedprice),
                 Value::Double(discount), Value::Double(tax),
                 Value::String(returnflag), Value::String(linestatus),
                 Value::Date(shipdate), Value::Date(commitdate),
                 Value::Date(receiptdate),
                 Value::String(Pick(rng, kShipInstructs)),
                 Value::String(Pick(rng, kShipModes)),
                 Value::String(RandomComment(rng))});
          }
        }
      });
}

}  // namespace workload
}  // namespace perfeval
