#include "workload/driver.h"

#include <numeric>

#include "common/check.h"
#include "common/random.h"
#include "core/metrics.h"
#include "core/timer.h"
#include "sched/worker_pool.h"
#include "stats/descriptive.h"
#include "workload/tpch_queries.h"

namespace perfeval {
namespace workload {

TpchDriver::TpchDriver(db::Database* database,
                       std::vector<int> query_numbers, db::ExecMode mode)
    : database_(database),
      query_numbers_(std::move(query_numbers)),
      mode_(mode) {
  PERFEVAL_CHECK(database_ != nullptr);
  if (query_numbers_.empty()) {
    query_numbers_.resize(22);
    std::iota(query_numbers_.begin(), query_numbers_.end(), 1);
  }
  for (int q : query_numbers_) {
    PERFEVAL_CHECK_GE(q, 1);
    PERFEVAL_CHECK_LE(q, 22);
  }
}

double TpchDriver::RunQueryMs(int query_number) {
  db::PlanPtr plan = GetTpchQuery(query_number).Build(*database_);
  return database_->Run(plan, mode_).ServerRealMs();
}

PowerResult TpchDriver::RunPowerTest() {
  // Warm-up pass, un-measured.
  for (int q : query_numbers_) {
    (void)RunQueryMs(q);
  }
  PowerResult result;
  result.stream.query_order = query_numbers_;
  for (int q : query_numbers_) {
    double ms = RunQueryMs(q);
    result.stream.query_ms.push_back(ms);
    result.stream.total_ms += ms;
  }
  // Geometric mean needs strictly positive values; clamp timer-resolution
  // zeros to one microsecond.
  std::vector<double> clamped = result.stream.query_ms;
  for (double& ms : clamped) {
    ms = std::max(ms, 1e-3);
  }
  result.geomean_ms = stats::GeometricMean(clamped);
  result.power_qph = core::QueriesPerHour(1.0, result.geomean_ms);
  return result;
}

ThroughputResult TpchDriver::RunThroughputTest(int num_streams,
                                               uint64_t seed) {
  PERFEVAL_CHECK_GE(num_streams, 1);
  ThroughputResult result;
  result.streams = MakeStreams(num_streams, seed);
  for (StreamResult& stream : result.streams) {
    for (int q : stream.query_order) {
      double ms = RunQueryMs(q);
      stream.query_ms.push_back(ms);
      stream.total_ms += ms;
    }
    result.total_ms += stream.total_ms;
  }
  FinishThroughputResult(&result, num_streams);
  return result;
}

ThroughputResult TpchDriver::RunConcurrentThroughputTest(int num_streams,
                                                         uint64_t seed) {
  PERFEVAL_CHECK_GE(num_streams, 1);
  ThroughputResult result;
  result.streams = MakeStreams(num_streams, seed);
  // Unmeasured warm-up: every stream runs its permutation once, with the
  // same concurrency as the measured window, so the measured window starts
  // from a warm buffer pool — cold misses are a different experiment
  // (slide 32), not part of a steady-state throughput number.
  {
    sched::WorkerPool pool(num_streams);
    for (StreamResult& stream_ref : result.streams) {
      StreamResult* stream = &stream_ref;
      pool.Submit([this, stream] {
        for (int q : stream->query_order) {
          (void)RunQueryMs(q);
        }
      });
    }
    pool.Drain();
  }
  core::WallTimer wall;
  {
    // One worker per stream; each stream owns its pre-allocated
    // StreamResult slot, so workers never write shared state.
    sched::WorkerPool pool(num_streams);
    for (StreamResult& stream_ref : result.streams) {
      StreamResult* stream = &stream_ref;
      pool.Submit([this, stream] {
        for (int q : stream->query_order) {
          double ms = RunQueryMs(q);
          stream->query_ms.push_back(ms);
          stream->total_ms += ms;
        }
      });
    }
    pool.Drain();
  }
  result.total_ms = wall.ElapsedMs();
  FinishThroughputResult(&result, num_streams);
  return result;
}

void TpchDriver::FinishThroughputResult(ThroughputResult* result,
                                        int num_streams) {
  double queries_per_stream = static_cast<double>(query_numbers_.size());
  result->throughput_qph = core::QueriesPerHour(
      static_cast<double>(num_streams) * queries_per_stream,
      result->total_ms);
  std::vector<double> stream_rates;
  stream_rates.reserve(result->streams.size());
  for (StreamResult& stream : result->streams) {
    stream.qph = core::QueriesPerHour(queries_per_stream, stream.total_ms);
    stream_rates.push_back(stream.qph);
  }
  result->stream_qph_min = stats::Min(stream_rates);
  result->stream_qph_median = stats::Median(stream_rates);
  result->stream_qph_max = stats::Max(stream_rates);
}

std::vector<StreamResult> TpchDriver::MakeStreams(int num_streams,
                                                  uint64_t seed) {
  std::vector<StreamResult> streams;
  streams.reserve(num_streams);
  Pcg32 rng(seed);
  for (int s = 0; s < num_streams; ++s) {
    StreamResult stream;
    stream.query_order = query_numbers_;
    // Fisher-Yates permutation, distinct per stream via the shared RNG.
    for (size_t i = stream.query_order.size(); i > 1; --i) {
      size_t j = rng.NextBounded(static_cast<uint32_t>(i));
      std::swap(stream.query_order[i - 1], stream.query_order[j]);
    }
    stream.query_ms.reserve(stream.query_order.size());
    streams.push_back(std::move(stream));
  }
  return streams;
}

}  // namespace workload
}  // namespace perfeval
