#ifndef PERFEVAL_WORKLOAD_TPCH_SCHEMA_H_
#define PERFEVAL_WORKLOAD_TPCH_SCHEMA_H_

#include "db/table.h"

namespace perfeval {
namespace workload {

/// The eight TPC-H tables with their standard column names. Our generator
/// is a scaled-down dbgen substitute (DESIGN.md, substitutions): same
/// schema shape and value structure, smaller default scale factor.
db::Schema RegionSchema();
db::Schema NationSchema();
db::Schema SupplierSchema();
db::Schema CustomerSchema();
db::Schema PartSchema();
db::Schema PartsuppSchema();
db::Schema OrdersSchema();
db::Schema LineitemSchema();

/// Base (scale factor 1) cardinalities of the scalable tables.
inline constexpr int64_t kSupplierBase = 10'000;
inline constexpr int64_t kCustomerBase = 150'000;
inline constexpr int64_t kPartBase = 200'000;
inline constexpr int64_t kOrdersBase = 1'500'000;
inline constexpr int kPartsuppPerPart = 4;
inline constexpr int kMaxLineitemsPerOrder = 7;

}  // namespace workload
}  // namespace perfeval

#endif  // PERFEVAL_WORKLOAD_TPCH_SCHEMA_H_
