#ifndef PERFEVAL_WORKLOAD_DRIVER_H_
#define PERFEVAL_WORKLOAD_DRIVER_H_

#include <string>
#include <vector>

#include "db/database.h"

namespace perfeval {
namespace workload {

/// One stream's execution record.
struct StreamResult {
  std::vector<int> query_order;     ///< permutation of the query numbers.
  std::vector<double> query_ms;     ///< per query, in execution order.
  double total_ms = 0.0;
  /// This stream's own rate, queries/hour over its total_ms. In the
  /// concurrent test the spread across streams shows contention the
  /// aggregate hides.
  double qph = 0.0;
};

/// TPC-H-style power test result: every query once, single stream.
struct PowerResult {
  StreamResult stream;
  double geomean_ms = 0.0;
  /// The TPC-H-style power metric: queries per hour a stream of
  /// geomean-cost queries would sustain (3600000 / geomean_ms).
  double power_qph = 0.0;
};

/// TPC-H-style throughput test result: S streams, each a different
/// permutation of the query set, run back to back (sequential test) or
/// at the same time on one worker thread per stream (concurrent test).
struct ThroughputResult {
  std::vector<StreamResult> streams;
  /// Sequential test: sum of per-stream totals. Concurrent test: wall
  /// clock of the measured window only (warm-up excluded), from first
  /// stream start to last stream finish.
  double total_ms = 0.0;
  /// Queries per hour: streams * queries * 3600000 / total_ms.
  double throughput_qph = 0.0;
  /// Spread of the per-stream rates — reporting only the aggregate is the
  /// single-mean trap the paper warns about (slide 140): one starved
  /// stream disappears inside a healthy total.
  double stream_qph_min = 0.0;
  double stream_qph_median = 0.0;
  double stream_qph_max = 0.0;
};

/// Runs TPC-H-style workload tests over an already-loaded database —
/// the paper's first metric, "Throughput: queries per time" (slide 22),
/// measured the way the standard benchmark defines it: a single-stream
/// power test (geometric mean, so no query dominates) and a multi-stream
/// throughput test over distinct query permutations.
class TpchDriver {
 public:
  /// `query_numbers` defaults to all 22 when empty.
  TpchDriver(db::Database* database, std::vector<int> query_numbers = {},
             db::ExecMode mode = db::ExecMode::kOptimized);

  /// Single stream, queries in ascending order, hot (one warm-up pass).
  PowerResult RunPowerTest();

  /// `num_streams` sequential streams; stream s runs the query set in a
  /// seeded permutation (distinct per stream), so caching effects differ
  /// per stream as in the real benchmark.
  ThroughputResult RunThroughputTest(int num_streams, uint64_t seed = 1);

  /// Same streams and per-stream permutations as RunThroughputTest (the
  /// permutations depend only on `seed`), but every stream runs on its own
  /// worker thread against the shared database. An unmeasured concurrent
  /// warm-up pass (each stream runs its permutation once) precedes the
  /// measured window, so cold buffer-pool misses don't masquerade as
  /// contention; `total_ms` is the wall clock of the measured window only,
  /// so `throughput_qph` measures multi-stream scale-up, and the
  /// per-stream qph spread (min/median/max) exposes stream starvation the
  /// aggregate hides. Result relations stay deterministic; per-query times
  /// are subject to contention, as in any real concurrent throughput test.
  ThroughputResult RunConcurrentThroughputTest(int num_streams,
                                               uint64_t seed = 1);

  const std::vector<int>& query_numbers() const { return query_numbers_; }

 private:
  double RunQueryMs(int query_number);
  /// Builds `num_streams` StreamResults with their seeded permutations
  /// (shared by the sequential and concurrent throughput tests).
  std::vector<StreamResult> MakeStreams(int num_streams, uint64_t seed);
  /// Computes the aggregate qph and the per-stream qph spread from the
  /// per-stream totals already in `result`.
  void FinishThroughputResult(ThroughputResult* result, int num_streams);

  db::Database* database_;
  std::vector<int> query_numbers_;
  db::ExecMode mode_;
};

}  // namespace workload
}  // namespace perfeval

#endif  // PERFEVAL_WORKLOAD_DRIVER_H_
