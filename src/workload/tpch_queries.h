#ifndef PERFEVAL_WORKLOAD_TPCH_QUERIES_H_
#define PERFEVAL_WORKLOAD_TPCH_QUERIES_H_

#include <string>
#include <vector>

#include "db/database.h"
#include "db/plan.h"

namespace perfeval {
namespace workload {

/// One of the 22 TPC-H queries, adapted to the engine's operator set.
///
/// The plans keep each query's structural character — the table set, join
/// shape, predicates, grouping and ordering — while replacing SQL features
/// the engine does not have (correlated subqueries, anti-joins, HAVING over
/// fractions of totals) with the nearest equivalent; `simplification`
/// documents each deviation ("faithful" when there is none). This keeps the
/// per-query cost profile diverse, which is what the paper's slide-41
/// DBG/OPT figure needs from the 22-query workload.
struct TpchQuery {
  int number = 0;
  std::string name;
  std::string simplification;

  /// Builds the physical plan against `database`'s catalog.
  db::PlanPtr Build(const db::Database& database) const;
};

/// All 22 queries in order.
const std::vector<TpchQuery>& AllTpchQueries();

/// Query by number (1-22).
const TpchQuery& GetTpchQuery(int number);

}  // namespace workload
}  // namespace perfeval

#endif  // PERFEVAL_WORKLOAD_TPCH_QUERIES_H_
