#ifndef PERFEVAL_WORKLOAD_MICRO_H_
#define PERFEVAL_WORKLOAD_MICRO_H_

#include <memory>
#include <string>

#include "db/database.h"
#include "db/expr.h"
#include "db/table.h"

namespace perfeval {
namespace workload {

/// Value distribution of a generated micro-benchmark column.
enum class Distribution {
  kUniform,
  kZipf,        ///< skewed; theta controls skew.
  kSequential,  ///< 0, 1, 2, ... (sorted, unique).
  kGaussian,    ///< mean = (lo+hi)/2, sd = (hi-lo)/6, clamped.
};

const char* DistributionName(Distribution distribution);

/// Specification of one synthetic column (paper, slide 11: micro-benchmarks
/// give control over data size, value ranges, distribution, correlation).
struct MicroColumnSpec {
  std::string name = "v";
  Distribution distribution = Distribution::kUniform;
  int64_t min_value = 0;
  int64_t max_value = 1'000'000;
  double zipf_theta = 1.0;
  /// Correlation with the previous column in the table: 0 = independent,
  /// 1 = identical ordering (value = previous column's value + noise).
  double correlation = 0.0;
};

/// Specification of a synthetic table.
struct MicroTableSpec {
  std::string name = "micro";
  size_t num_rows = 100'000;
  uint64_t seed = 42;
  std::vector<MicroColumnSpec> columns;
};

/// Generates the table described by `spec` (all columns kInt64).
std::shared_ptr<db::Table> GenerateMicroTable(const MicroTableSpec& spec);

/// A `column <= threshold` predicate that selects approximately
/// `selectivity` (in [0, 1]) of the table's rows; the threshold is the
/// empirical quantile. Micro-benchmarks sweep selectivity this way.
db::ExprPtr PredicateForSelectivity(const db::Table& table,
                                    const std::string& column,
                                    double selectivity);

/// The exact fraction of rows the predicate built by
/// PredicateForSelectivity selects.
double MeasuredSelectivity(const db::Table& table, const std::string& column,
                           double selectivity);

}  // namespace workload
}  // namespace perfeval

#endif  // PERFEVAL_WORKLOAD_MICRO_H_
