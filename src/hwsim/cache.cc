#include "hwsim/cache.h"

#include "common/check.h"
#include "common/string_util.h"

namespace perfeval {
namespace hwsim {

CacheLevel::CacheLevel(CacheConfig config) : config_(std::move(config)) {
  PERFEVAL_CHECK_GT(config_.size_bytes, 0u);
  PERFEVAL_CHECK_GT(config_.line_bytes, 0u);
  PERFEVAL_CHECK_GT(config_.associativity, 0u);
  size_t num_lines = config_.size_bytes / config_.line_bytes;
  PERFEVAL_CHECK_GT(num_lines, 0u);
  PERFEVAL_CHECK_EQ(num_lines % config_.associativity, 0u)
      << "cache lines must divide evenly into sets";
  num_sets_ = num_lines / config_.associativity;
  tags_.assign(num_lines, kInvalidTag);
  stamps_.assign(num_lines, 0);
}

bool CacheLevel::Access(uint64_t address) {
  ++counters_.accesses;
  ++clock_;
  uint64_t line = address / config_.line_bytes;
  size_t set = static_cast<size_t>(line % num_sets_);
  uint64_t tag = line / num_sets_;
  size_t base = set * config_.associativity;

  size_t lru_way = 0;
  uint64_t lru_stamp = ~uint64_t{0};
  for (size_t way = 0; way < config_.associativity; ++way) {
    if (tags_[base + way] == tag) {
      stamps_[base + way] = clock_;
      ++counters_.hits;
      return true;
    }
    if (stamps_[base + way] < lru_stamp) {
      lru_stamp = stamps_[base + way];
      lru_way = way;
    }
  }
  ++counters_.misses;
  tags_[base + lru_way] = tag;
  stamps_[base + lru_way] = clock_;
  return false;
}

void CacheLevel::Install(uint64_t address) {
  ++clock_;
  uint64_t line = address / config_.line_bytes;
  size_t set = static_cast<size_t>(line % num_sets_);
  uint64_t tag = line / num_sets_;
  size_t base = set * config_.associativity;
  size_t lru_way = 0;
  uint64_t lru_stamp = ~uint64_t{0};
  for (size_t way = 0; way < config_.associativity; ++way) {
    if (tags_[base + way] == tag) {
      stamps_[base + way] = clock_;
      return;
    }
    if (stamps_[base + way] < lru_stamp) {
      lru_stamp = stamps_[base + way];
      lru_way = way;
    }
  }
  tags_[base + lru_way] = tag;
  stamps_[base + lru_way] = clock_;
}

void CacheLevel::Flush() {
  tags_.assign(tags_.size(), kInvalidTag);
  stamps_.assign(stamps_.size(), 0);
}

MemoryHierarchy::MemoryHierarchy(std::vector<CacheConfig> levels,
                                 double cycle_ns, double memory_latency_ns)
    : cycle_ns_(cycle_ns), memory_latency_ns_(memory_latency_ns) {
  PERFEVAL_CHECK_GT(cycle_ns_, 0.0);
  PERFEVAL_CHECK_GT(memory_latency_ns_, 0.0);
  levels_.reserve(levels.size());
  for (CacheConfig& config : levels) {
    levels_.emplace_back(std::move(config));
  }
}

void MemoryHierarchy::IssuePrefetch(uint64_t address) {
  for (CacheLevel& level : levels_) {
    level.Install(address);
  }
  ++prefetches_issued_;
}

void MemoryHierarchy::TrainStream(uint64_t address) {
  // Per-page training: consecutive misses inside one 4KB page at a
  // constant delta arm a stream. Pages train independently, so interleaved
  // sequential streams (a scan plus scattered partition writes) each get
  // their own detector — up to the stream capacity.
  uint64_t page = address / kTrainPageBytes;
  StreamTrainer* trainer = nullptr;
  StreamTrainer* lru = nullptr;
  for (StreamTrainer& t : trainers_) {
    if (t.page == page) {
      trainer = &t;
      break;
    }
    if (lru == nullptr || t.last_use < lru->last_use) {
      lru = &t;
    }
  }
  if (trainer == nullptr) {
    if (trainers_.size() < kMaxStreams) {
      trainers_.push_back(StreamTrainer());
      trainer = &trainers_.back();
    } else {
      trainer = lru;
    }
    trainer->page = page;
    trainer->last_addr = address;
    trainer->last_delta = 0;
    trainer->last_use = prefetch_clock_;
    return;
  }
  int64_t delta = static_cast<int64_t>(address) -
                  static_cast<int64_t>(trainer->last_addr);
  if (delta != 0 && delta == trainer->last_delta) {
    // Two equal same-page strides: arm a stream (reuse an idle slot or
    // evict the least recently advanced one) and fetch ahead.
    PrefetchStream* slot = nullptr;
    for (PrefetchStream& s : streams_) {
      if (!s.active) {
        slot = &s;
        break;
      }
      if (slot == nullptr || s.last_use < slot->last_use) {
        slot = &s;
      }
    }
    if (slot == nullptr || (slot->active && streams_.size() < kMaxStreams)) {
      streams_.push_back(PrefetchStream());
      slot = &streams_.back();
    }
    slot->active = true;
    slot->delta = delta;
    slot->next_expected = address + static_cast<uint64_t>(delta);
    slot->last_use = prefetch_clock_;
    IssuePrefetch(slot->next_expected);
  }
  trainer->last_delta = delta;
  trainer->last_addr = address;
  trainer->last_use = prefetch_clock_;
}

double MemoryHierarchy::AccessNs(uint64_t address) {
  // Stream prefetcher: while the access stream follows a learned stride,
  // stay one step ahead of it (prefetch latency overlaps the hits, an
  // idealized but standard model).
  if (next_line_prefetch_) {
    ++prefetch_clock_;
    for (PrefetchStream& s : streams_) {
      if (s.active && address == s.next_expected) {
        s.next_expected = address + static_cast<uint64_t>(s.delta);
        s.last_use = prefetch_clock_;
        IssuePrefetch(s.next_expected);
        break;
      }
    }
  }
  double latency = 0.0;
  for (CacheLevel& level : levels_) {
    latency += level.config().hit_latency_cycles * cycle_ns_;
    if (level.Access(address)) {
      return latency;
    }
  }
  ++memory_accesses_;
  if (next_line_prefetch_) {
    TrainStream(address);
  }
  return latency + memory_latency_ns_;
}

void MemoryHierarchy::Flush() {
  for (CacheLevel& level : levels_) {
    level.Flush();
  }
}

void MemoryHierarchy::ResetCounters() {
  for (CacheLevel& level : levels_) {
    level.ResetCounters();
  }
  memory_accesses_ = 0;
}

std::string MemoryHierarchy::CountersToString() const {
  std::string out = StrFormat("%-6s %12s %12s %12s %10s\n", "level",
                              "accesses", "hits", "misses", "miss rate");
  for (const CacheLevel& level : levels_) {
    const CacheCounters& c = level.counters();
    out += StrFormat("%-6s %12lld %12lld %12lld %9.2f%%\n",
                     level.config().name.c_str(),
                     static_cast<long long>(c.accesses),
                     static_cast<long long>(c.hits),
                     static_cast<long long>(c.misses), c.MissRate() * 100.0);
  }
  out += StrFormat("%-6s %12lld\n", "memory",
                   static_cast<long long>(memory_accesses_));
  return out;
}

}  // namespace hwsim
}  // namespace perfeval
