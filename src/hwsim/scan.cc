#include "hwsim/scan.h"

#include "common/check.h"

namespace perfeval {
namespace hwsim {

const char* ScanLayoutName(ScanLayout layout) {
  switch (layout) {
    case ScanLayout::kColumnar:
      return "columnar";
    case ScanLayout::kRowStore:
      return "row-store";
  }
  return "unknown";
}

ScanResult SimulateScanMax(const MachineProfile& machine,
                           const ScanSpec& spec) {
  PERFEVAL_CHECK_GT(spec.num_elements, 0);
  PERFEVAL_CHECK_GE(spec.tuple_bytes, spec.value_bytes);
  MemoryHierarchy hierarchy = machine.MakeHierarchy();
  hierarchy.set_next_line_prefetch(spec.next_line_prefetch);

  size_t stride = spec.layout == ScanLayout::kColumnar ? spec.value_bytes
                                                       : spec.tuple_bytes;
  double mem_ns_total = 0.0;
  for (int64_t i = 0; i < spec.num_elements; ++i) {
    mem_ns_total += hierarchy.AccessNs(static_cast<uint64_t>(i) * stride);
  }

  ScanResult result;
  result.system = machine.system;
  result.year = machine.year;
  result.iterations = spec.num_elements;
  result.cpu_ns_per_iter =
      spec.instructions_per_iteration * machine.cpi * machine.CycleNs();
  result.mem_ns_per_iter =
      mem_ns_total / static_cast<double>(spec.num_elements);
  result.counter_report = hierarchy.CountersToString();
  return result;
}

}  // namespace hwsim
}  // namespace perfeval
