#ifndef PERFEVAL_HWSIM_MACHINE_H_
#define PERFEVAL_HWSIM_MACHINE_H_

#include <string>
#include <vector>

#include "hwsim/cache.h"

namespace perfeval {
namespace hwsim {

/// One machine generation's performance parameters: enough to predict how a
/// memory-bound kernel behaves (clock, pipeline quality, cache hierarchy,
/// memory latency).
struct MachineProfile {
  std::string system;  ///< e.g. "Sun LX".
  std::string cpu;     ///< e.g. "Sparc".
  int year = 0;
  double clock_mhz = 0.0;
  /// Average cycles per instruction for a simple scan loop (pipeline and
  /// issue-width quality; superscalar machines go below 1).
  double cpi = 1.0;
  std::vector<CacheConfig> caches;
  double memory_latency_ns = 100.0;

  double CycleNs() const { return 1000.0 / clock_mhz; }

  MemoryHierarchy MakeHierarchy() const {
    return MemoryHierarchy(caches, CycleNs(), memory_latency_ns);
  }
};

/// The five machine generations of the paper's slide-46 figure (Sun LX 1992
/// through SGI Origin2000), with cache/latency parameters from the
/// published hardware specs of those systems (DESIGN.md, substitutions:
/// the physical machines are simulated). The story the figure tells —
/// clock speed up 10x, scan time per iteration nearly flat because memory
/// latency stalls dominate — is a property of these parameters.
const std::vector<MachineProfile>& HistoricalMachines();

/// Profile by system name ("Sun LX", ...); aborts when unknown.
const MachineProfile& MachineByName(const std::string& system);

}  // namespace hwsim
}  // namespace perfeval

#endif  // PERFEVAL_HWSIM_MACHINE_H_
