#ifndef PERFEVAL_HWSIM_CACHE_H_
#define PERFEVAL_HWSIM_CACHE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace perfeval {
namespace hwsim {

/// Configuration of one cache level.
struct CacheConfig {
  std::string name = "L1";
  size_t size_bytes = 32 * 1024;
  size_t line_bytes = 64;
  size_t associativity = 4;      ///< ways per set.
  int hit_latency_cycles = 1;
};

/// Hit/miss counters of one level — the "hardware performance counters" the
/// paper tells experimenters to read (slides 47–53: VTune, oprofile, PAPI…).
/// Here they are filled by simulation, preserving the analysis workflow.
struct CacheCounters {
  int64_t accesses = 0;
  int64_t hits = 0;
  int64_t misses = 0;

  double MissRate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) /
                               static_cast<double>(accesses);
  }
};

/// A set-associative LRU cache level.
class CacheLevel {
 public:
  explicit CacheLevel(CacheConfig config);

  const CacheConfig& config() const { return config_; }
  const CacheCounters& counters() const { return counters_; }

  /// Looks up the line containing `address`; on a miss the line is
  /// installed (evicting the set's LRU way). Returns true on hit.
  bool Access(uint64_t address);

  /// Installs the line containing `address` without counting the access
  /// (used by prefetchers): tags/LRU update, counters untouched.
  void Install(uint64_t address);

  /// Empties the cache (cold state) without clearing counters.
  void Flush();

  void ResetCounters() { counters_ = CacheCounters(); }

  size_t num_sets() const { return num_sets_; }

 private:
  CacheConfig config_;
  size_t num_sets_;
  /// tags_[set * associativity + way]; kInvalidTag marks an empty way.
  std::vector<uint64_t> tags_;
  /// LRU stamps parallel to tags_.
  std::vector<uint64_t> stamps_;
  uint64_t clock_ = 0;
  CacheCounters counters_;

  static constexpr uint64_t kInvalidTag = ~uint64_t{0};
};

/// A multi-level inclusive cache hierarchy over a flat memory with a fixed
/// access latency. Access() walks L1 -> L2 -> ... -> memory and returns the
/// time the access took.
class MemoryHierarchy {
 public:
  /// `levels` ordered from closest (L1) outward. `cycle_ns` converts hit
  /// latencies (in cycles) to time; `memory_latency_ns` is charged when all
  /// levels miss.
  MemoryHierarchy(std::vector<CacheConfig> levels, double cycle_ns,
                  double memory_latency_ns);

  /// Enables a stride-stream prefetcher: demand misses train per-4KB-page
  /// detectors, and two consecutive same-page misses at a constant delta
  /// arm a stream that runs one delta ahead of the access stream
  /// (re-arming on every stream hit), so a constant-stride scan stops
  /// missing after its first few accesses. Up to kMaxStreams streams are
  /// tracked concurrently (real L2 prefetchers track a few dozen), so
  /// interleaved sequential streams — a scan plus the scattered
  /// per-partition writes of a radix partition pass — are each covered
  /// until the stream count exceeds capacity, after which LRU thrash turns
  /// the excess streams back into demand misses. The mechanism that
  /// eventually broke the slide-46 figure's "memory wall" for sequential
  /// scans — and does nothing for random access.
  void set_next_line_prefetch(bool enabled) {
    next_line_prefetch_ = enabled;
  }
  bool next_line_prefetch() const { return next_line_prefetch_; }

  /// Concurrent streams the prefetcher tracks; fan-out past this count
  /// degrades to unprefetched misses (the capacity wall that caps useful
  /// radix-partition fan-out).
  static constexpr size_t kMaxStreams = 32;

  /// Simulated latency of a load at `address`, in nanoseconds.
  double AccessNs(uint64_t address);

  void Flush();
  void ResetCounters();

  size_t num_levels() const { return levels_.size(); }
  const CacheLevel& level(size_t i) const { return levels_[i]; }
  int64_t memory_accesses() const { return memory_accesses_; }
  int64_t prefetches_issued() const { return prefetches_issued_; }

  /// Per-level counter table.
  std::string CountersToString() const;

 private:
  std::vector<CacheLevel> levels_;
  double cycle_ns_;
  double memory_latency_ns_;
  int64_t memory_accesses_ = 0;
  int64_t prefetches_issued_ = 0;
  bool next_line_prefetch_ = false;

  /// An armed stream: fetches one `delta` ahead while accesses keep
  /// landing on `next_expected`.
  struct PrefetchStream {
    uint64_t next_expected = 0;
    int64_t delta = 0;
    uint64_t last_use = 0;
    bool active = false;
  };
  /// Per-page miss history used to detect new streams.
  struct StreamTrainer {
    uint64_t page = ~uint64_t{0};
    uint64_t last_addr = 0;
    int64_t last_delta = 0;
    uint64_t last_use = 0;
  };
  static constexpr uint64_t kTrainPageBytes = 4096;

  std::vector<PrefetchStream> streams_;
  std::vector<StreamTrainer> trainers_;
  uint64_t prefetch_clock_ = 0;

  void IssuePrefetch(uint64_t address);
  void TrainStream(uint64_t address);
};

}  // namespace hwsim
}  // namespace perfeval

#endif  // PERFEVAL_HWSIM_CACHE_H_
