#ifndef PERFEVAL_HWSIM_SCAN_H_
#define PERFEVAL_HWSIM_SCAN_H_

#include <cstdint>
#include <string>

#include "hwsim/machine.h"

namespace perfeval {
namespace hwsim {

/// Outcome of simulating `SELECT MAX(column) FROM table` on one machine,
/// dissected the way the paper's slide-46/51 figure dissects it: CPU cycles
/// vs memory-access time per loop iteration.
struct ScanResult {
  std::string system;
  int year = 0;
  int64_t iterations = 0;
  double cpu_ns_per_iter = 0.0;  ///< instruction execution.
  double mem_ns_per_iter = 0.0;  ///< cache/memory access time.
  std::string counter_report;    ///< per-level hit/miss table.

  double TotalNsPerIter() const { return cpu_ns_per_iter + mem_ns_per_iter; }
  double MemoryShare() const {
    double total = TotalNsPerIter();
    return total == 0.0 ? 0.0 : mem_ns_per_iter / total;
  }
};

/// Memory layout of the scanned attribute.
///  - kColumnar: values packed contiguously (stride = value size), the
///    MonetDB layout.
///  - kRowStore: each value embedded in a wide tuple, so consecutive
///    iterations touch different cache lines — the layout behind the
///    paper's "hardly any performance improvement" observation.
enum class ScanLayout {
  kColumnar,
  kRowStore,
};

const char* ScanLayoutName(ScanLayout layout);

/// Parameters of the simulated scan loop.
struct ScanSpec {
  int64_t num_elements = 1 << 20;
  size_t value_bytes = 8;
  size_t tuple_bytes = 64;  ///< row-store tuple width (>= value_bytes).
  ScanLayout layout = ScanLayout::kRowStore;
  /// Instructions per loop iteration (load, compare, cmov/branch, index
  /// arithmetic — a simple interpreted scan loop).
  int instructions_per_iteration = 5;
  /// Enable the hierarchy's next-line stream prefetcher (off on the
  /// figure's 1990s machines; the knob that later softened the memory
  /// wall for sequential scans).
  bool next_line_prefetch = false;
};

/// Runs the scan loop through the machine's simulated cache hierarchy
/// (cold caches) and returns the per-iteration cost split.
ScanResult SimulateScanMax(const MachineProfile& machine,
                           const ScanSpec& spec);

}  // namespace hwsim
}  // namespace perfeval

#endif  // PERFEVAL_HWSIM_SCAN_H_
