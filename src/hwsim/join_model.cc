#include "hwsim/join_model.h"

#include <vector>

#include "common/check.h"
#include "common/random.h"

namespace perfeval {
namespace hwsim {
namespace {

uint64_t NextPow2(uint64_t v) {
  uint64_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

/// Deterministic pseudo-random key stream: key i of side `side`.
uint64_t KeyAt(uint64_t seed, int side, int64_t i) {
  return SplitMix64(seed ^ (static_cast<uint64_t>(side) << 62) ^
                    static_cast<uint64_t>(i));
}

}  // namespace

JoinCostResult SimulateRadixJoin(const MachineProfile& machine,
                                 const JoinSpec& spec) {
  PERFEVAL_CHECK_GT(spec.build_rows, 0);
  PERFEVAL_CHECK_GT(spec.probe_rows, 0);
  PERFEVAL_CHECK_GE(spec.radix_bits, 0);
  MemoryHierarchy hierarchy = machine.MakeHierarchy();
  hierarchy.set_next_line_prefetch(spec.next_line_prefetch);

  const int64_t parts = int64_t{1} << spec.radix_bits;
  const uint64_t mask = static_cast<uint64_t>(parts) - 1;
  const double cpu_per_instr = machine.cpi * machine.CycleNs();

  // Non-overlapping address regions, far enough apart that distinct
  // structures never share a cache line.
  const uint64_t kRegion = uint64_t{1} << 32;
  const uint64_t build_keys_base = 0;
  const uint64_t probe_keys_base = kRegion;
  const uint64_t build_part_base = 2 * kRegion;
  const uint64_t probe_part_base = 3 * kRegion;
  const uint64_t tables_base = 4 * kRegion;
  // Generous per-partition strides keep regions disjoint for any split.
  // The odd skew term de-aliases partitions: a pure power-of-two stride
  // would map every partition's cursor and table onto the same cache sets
  // (a layout real heap allocations don't have, and one radix joins pad
  // away when they do).
  const uint64_t kSkewBytes = 65 * 64;
  const uint64_t part_stride =
      NextPow2(static_cast<uint64_t>(spec.build_rows + spec.probe_rows) *
               spec.tuple_bytes) +
      kSkewBytes;
  const uint64_t table_stride =
      NextPow2(static_cast<uint64_t>(spec.build_rows) * spec.slot_bytes * 2) +
      kSkewBytes;

  // Materialize the partition split once (hash of the deterministic key
  // stream), so the replayed address stream is the engine's actual
  // schedule: scatter pass per side, then partition-at-a-time build+probe.
  std::vector<std::vector<uint64_t>> build_parts(
      static_cast<size_t>(parts));
  std::vector<std::vector<uint64_t>> probe_parts(
      static_cast<size_t>(parts));
  for (int64_t i = 0; i < spec.build_rows; ++i) {
    uint64_t key = KeyAt(spec.seed, 0, i);
    build_parts[SplitMix64(key) & mask].push_back(key);
  }
  for (int64_t i = 0; i < spec.probe_rows; ++i) {
    uint64_t key = KeyAt(spec.seed, 1, i);
    probe_parts[SplitMix64(key) & mask].push_back(key);
  }

  double partition_mem_ns = 0.0;
  double build_mem_ns = 0.0;
  double probe_mem_ns = 0.0;

  // Pass 1 (radix only): read each side sequentially, scatter tuples to
  // the partition regions. Reads stream; writes jump between 2^bits
  // cursors — the fan-out cost that caps useful radix bits.
  if (spec.radix_bits > 0) {
    std::vector<uint64_t> cursor(static_cast<size_t>(parts), 0);
    for (int64_t i = 0; i < spec.build_rows; ++i) {
      partition_mem_ns += hierarchy.AccessNs(
          build_keys_base + static_cast<uint64_t>(i) * spec.key_bytes);
      size_t p = SplitMix64(KeyAt(spec.seed, 0, i)) & mask;
      partition_mem_ns += hierarchy.AccessNs(
          build_part_base + p * part_stride + cursor[p] * spec.tuple_bytes);
      ++cursor[p];
    }
    cursor.assign(static_cast<size_t>(parts), 0);
    for (int64_t i = 0; i < spec.probe_rows; ++i) {
      partition_mem_ns += hierarchy.AccessNs(
          probe_keys_base + static_cast<uint64_t>(i) * spec.key_bytes);
      size_t p = SplitMix64(KeyAt(spec.seed, 1, i)) & mask;
      partition_mem_ns += hierarchy.AccessNs(
          probe_part_base + p * part_stride + cursor[p] * spec.tuple_bytes);
      ++cursor[p];
    }
  }

  // Pass 2+3: per partition, build a hash table over the partition's
  // build tuples (sequential read + random slot write), then probe it
  // (sequential read + random slot read). The random working set is one
  // partition's table — the quantity ChooseRadixBits pushes under the
  // cache size.
  for (int64_t p = 0; p < parts; ++p) {
    const std::vector<uint64_t>& build = build_parts[static_cast<size_t>(p)];
    const std::vector<uint64_t>& probe = probe_parts[static_cast<size_t>(p)];
    uint64_t slots = NextPow2(build.size() * 8 / 7 + 1);
    if (slots < 16) {
      slots = 16;
    }
    uint64_t table_base = tables_base + static_cast<uint64_t>(p) *
                                            table_stride;
    for (size_t i = 0; i < build.size(); ++i) {
      uint64_t read_base = spec.radix_bits > 0
                               ? build_part_base +
                                     static_cast<uint64_t>(p) * part_stride
                               : build_keys_base;
      build_mem_ns += hierarchy.AccessNs(
          read_base + static_cast<uint64_t>(i) * spec.tuple_bytes);
      uint64_t slot = SplitMix64(build[i] ^ 0x5bd1e995u) & (slots - 1);
      build_mem_ns +=
          hierarchy.AccessNs(table_base + slot * spec.slot_bytes);
    }
    for (size_t i = 0; i < probe.size(); ++i) {
      uint64_t read_base = spec.radix_bits > 0
                               ? probe_part_base +
                                     static_cast<uint64_t>(p) * part_stride
                               : probe_keys_base;
      probe_mem_ns += hierarchy.AccessNs(
          read_base + static_cast<uint64_t>(i) * spec.tuple_bytes);
      uint64_t slot = SplitMix64(probe[i] ^ 0x5bd1e995u) & (slots - 1);
      probe_mem_ns +=
          hierarchy.AccessNs(table_base + slot * spec.slot_bytes);
    }
  }

  JoinCostResult result;
  result.system = machine.system;
  result.year = machine.year;
  result.radix_bits = spec.radix_bits;
  int64_t both_sides = spec.build_rows + spec.probe_rows;
  if (spec.radix_bits > 0) {
    JoinPassCost partition;
    partition.pass = "partition";
    partition.tuples = both_sides;
    partition.cpu_ns_per_tuple = spec.partition_instructions * cpu_per_instr;
    partition.mem_ns_per_tuple =
        partition_mem_ns / static_cast<double>(both_sides);
    result.passes.push_back(partition);
  }
  JoinPassCost build;
  build.pass = "build";
  build.tuples = spec.build_rows;
  build.cpu_ns_per_tuple = spec.build_instructions * cpu_per_instr;
  build.mem_ns_per_tuple =
      build_mem_ns / static_cast<double>(spec.build_rows);
  result.passes.push_back(build);
  JoinPassCost probe;
  probe.pass = "probe";
  probe.tuples = spec.probe_rows;
  probe.cpu_ns_per_tuple = spec.probe_instructions * cpu_per_instr;
  probe.mem_ns_per_tuple =
      probe_mem_ns / static_cast<double>(spec.probe_rows);
  result.passes.push_back(probe);
  result.counter_report = hierarchy.CountersToString();
  return result;
}

}  // namespace hwsim
}  // namespace perfeval
