#ifndef PERFEVAL_HWSIM_JOIN_MODEL_H_
#define PERFEVAL_HWSIM_JOIN_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "hwsim/machine.h"

namespace perfeval {
namespace hwsim {

/// Cost split of one pass of the simulated join, dissected the way the
/// paper's slide-46/51 figure dissects a scan: instruction-execution time
/// vs cache/memory-access time per tuple.
struct JoinPassCost {
  std::string pass;  ///< "partition", "build", or "probe".
  int64_t tuples = 0;
  double cpu_ns_per_tuple = 0.0;
  double mem_ns_per_tuple = 0.0;

  double TotalNsPerTuple() const {
    return cpu_ns_per_tuple + mem_ns_per_tuple;
  }
  double TotalNs() const {
    return TotalNsPerTuple() * static_cast<double>(tuples);
  }
};

/// Outcome of simulating an equi-join on one machine profile.
struct JoinCostResult {
  std::string system;
  int year = 0;
  int radix_bits = 0;
  std::vector<JoinPassCost> passes;
  std::string counter_report;  ///< per-level hit/miss table, all passes.

  double TotalNs() const {
    double total = 0.0;
    for (const JoinPassCost& pass : passes) {
      total += pass.TotalNs();
    }
    return total;
  }
  double MemNs() const {
    double total = 0.0;
    for (const JoinPassCost& pass : passes) {
      total += pass.mem_ns_per_tuple * static_cast<double>(pass.tuples);
    }
    return total;
  }
  double MemoryShare() const {
    double total = TotalNs();
    return total == 0.0 ? 0.0 : MemNs() / total;
  }
};

/// Parameters of the simulated join. Defaults mirror the engine's layout:
/// 8-byte keys, a 12-byte partitioned (key, row) tuple, and a 16-byte
/// hash-table slot per distinct build key.
struct JoinSpec {
  int64_t build_rows = 1 << 18;
  int64_t probe_rows = 1 << 20;
  /// Radix fan-out (log2 partitions). 0 simulates the non-partitioned
  /// flat-table join: no partition pass, one hash table spanning the whole
  /// build side.
  int radix_bits = 0;
  size_t key_bytes = 8;
  size_t tuple_bytes = 12;
  size_t slot_bytes = 16;
  /// Instructions per tuple: hash+scatter for the partition pass,
  /// hash+probe+link for build/probe (simple tight loops).
  int partition_instructions = 8;
  int build_instructions = 12;
  int probe_instructions = 12;
  /// Enable the hierarchy's stream prefetcher (default on: the engine the
  /// model explains runs on hardware with one). The partition pass is a
  /// bundle of sequential streams, so it is nearly free while the stream
  /// count (1 read + 2^bits write cursors) fits the prefetcher's capacity
  /// — and degrades past it, which is what caps useful fan-out.
  bool next_line_prefetch = true;
  /// Seed for the deterministic pseudo-random key stream.
  uint64_t seed = 42;
};

/// Simulates a (radix-partitioned) hash join's address stream through the
/// machine's cache hierarchy and returns the per-pass CPU/memory split —
/// the model behind the engine's default radix fan-out: partitioning costs
/// one extra sequential pass per side, but shrinks the random-access
/// working set of build+probe from the whole build side to one partition,
/// which pays off exactly when the whole-side hash table overflows the
/// cache that partitions fit in. ChooseRadixBits in db/join.cc targets the
/// L2 of the "Sun Ultra" profile; this model reproduces why.
JoinCostResult SimulateRadixJoin(const MachineProfile& machine,
                                 const JoinSpec& spec);

}  // namespace hwsim
}  // namespace perfeval

#endif  // PERFEVAL_HWSIM_JOIN_MODEL_H_
