#include "hwsim/machine.h"

#include "common/check.h"

namespace perfeval {
namespace hwsim {

const std::vector<MachineProfile>& HistoricalMachines() {
  static const std::vector<MachineProfile>* machines = [] {
    auto* v = new std::vector<MachineProfile>();
    // Sun LX, 50 MHz microSPARC (1992): scalar in-order pipeline, small
    // unified cache, DRAM of the era.
    v->push_back({"Sun LX",
                  "Sparc",
                  1992,
                  50.0,
                  1.2,
                  {{"L1", 8 * 1024, 32, 1, 1}},
                  110.0});
    // Sun Ultra 1, 200 MHz UltraSPARC (1996): 4-way superscalar,
    // 16KB L1 + 512KB external L2.
    v->push_back({"Sun Ultra",
                  "UltraSparc",
                  1996,
                  200.0,
                  1.0,
                  {{"L1", 16 * 1024, 32, 1, 1},
                   {"L2", 512 * 1024, 64, 2, 8}},
                  130.0});
    // Sun Ultra 2, 296 MHz UltraSPARC-II (1997).
    v->push_back({"Sun Ultra2",
                  "UltraSparcII",
                  1997,
                  296.0,
                  0.9,
                  {{"L1", 16 * 1024, 32, 1, 1},
                   {"L2", 1024 * 1024, 64, 2, 10}},
                  140.0});
    // DEC AlphaServer, 500 MHz Alpha 21164 (1998): fastest clock of its
    // day, deep hierarchy, but memory latency barely better.
    v->push_back({"DEC Alpha",
                  "Alpha",
                  1998,
                  500.0,
                  0.8,
                  {{"L1", 8 * 1024, 32, 1, 1},
                   {"L2", 96 * 1024, 64, 3, 6},
                   {"L3", 4 * 1024 * 1024, 64, 1, 20}},
                  150.0});
    // SGI Origin2000, 300 MHz R12000 (2000): ccNUMA — remote memory makes
    // average latency the *worst* of the five.
    v->push_back({"Origin2000",
                  "R12000",
                  2000,
                  300.0,
                  0.8,
                  {{"L1", 32 * 1024, 32, 2, 1},
                   {"L2", 8 * 1024 * 1024, 128, 2, 12}},
                  260.0});
    return v;
  }();
  return *machines;
}

const MachineProfile& MachineByName(const std::string& system) {
  for (const MachineProfile& machine : HistoricalMachines()) {
    if (machine.system == system) {
      return machine;
    }
  }
  PERFEVAL_CHECK(false) << "unknown machine " << system;
  return HistoricalMachines()[0];
}

}  // namespace hwsim
}  // namespace perfeval
