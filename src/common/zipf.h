#ifndef PERFEVAL_COMMON_ZIPF_H_
#define PERFEVAL_COMMON_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/random.h"

namespace perfeval {

/// Zipf-distributed integer generator over {1, ..., n} with skew `theta`.
///
/// Micro-benchmarks must control value distribution and skew (paper,
/// slide 11: "Controllable workload and data characteristics — value ranges
/// and distribution"). theta == 0 degenerates to uniform; theta around 1 is
/// the classical Zipf. Uses an inverse-CDF table, O(log n) per draw.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
    PERFEVAL_CHECK_GT(n, 0u);
    PERFEVAL_CHECK_GE(theta, 0.0);
    cdf_.reserve(n_);
    double norm = 0.0;
    for (uint64_t i = 1; i <= n_; ++i) {
      norm += 1.0 / std::pow(static_cast<double>(i), theta_);
    }
    double cumulative = 0.0;
    for (uint64_t i = 1; i <= n_; ++i) {
      cumulative += (1.0 / std::pow(static_cast<double>(i), theta_)) / norm;
      cdf_.push_back(cumulative);
    }
    cdf_.back() = 1.0;  // guard against rounding drift.
  }

  /// Draws a value in [1, n]; rank 1 is the most frequent.
  uint64_t Next(Pcg32& rng) const {
    double u = rng.NextDouble();
    // First index whose cumulative probability covers u.
    size_t lo = 0;
    size_t hi = cdf_.size() - 1;
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return static_cast<uint64_t>(lo) + 1;
  }

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  std::vector<double> cdf_;
};

}  // namespace perfeval

#endif  // PERFEVAL_COMMON_ZIPF_H_
