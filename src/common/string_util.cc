#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace perfeval {

std::vector<std::string> Split(std::string_view input, char delimiter) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == delimiter) {
      out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += separator;
    }
    out += parts[i];
  }
  return out;
}

std::string Trim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return std::string(input.substr(begin, end - begin));
}

std::string ToLower(std::string_view input) {
  std::string out(input);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return std::string();
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  va_end(args_copy);
  return out;
}

std::optional<int64_t> ParseInt64(std::string_view text) {
  std::string trimmed = Trim(text);
  if (trimmed.empty()) {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(trimmed.c_str(), &end, 10);
  if (errno != 0 || end != trimmed.c_str() + trimmed.size()) {
    return std::nullopt;
  }
  return static_cast<int64_t>(value);
}

std::optional<double> ParseDouble(std::string_view text) {
  std::string trimmed = Trim(text);
  if (trimmed.empty()) {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(trimmed.c_str(), &end);
  if (errno != 0 || end != trimmed.c_str() + trimmed.size()) {
    return std::nullopt;
  }
  return value;
}

std::optional<bool> ParseBool(std::string_view text) {
  std::string lower = ToLower(Trim(text));
  if (lower == "true" || lower == "1" || lower == "yes" || lower == "on") {
    return true;
  }
  if (lower == "false" || lower == "0" || lower == "no" || lower == "off") {
    return false;
  }
  return std::nullopt;
}

std::string PadLeft(std::string_view text, size_t width) {
  if (text.size() >= width) {
    return std::string(text);
  }
  return std::string(width - text.size(), ' ') + std::string(text);
}

std::string PadRight(std::string_view text, size_t width) {
  if (text.size() >= width) {
    return std::string(text);
  }
  return std::string(text) + std::string(width - text.size(), ' ');
}

}  // namespace perfeval
