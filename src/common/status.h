#ifndef PERFEVAL_COMMON_STATUS_H_
#define PERFEVAL_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace perfeval {

/// Canonical error codes, modelled after the usual database-library set.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kIoError,
  kInternal,
  kOverloaded,         ///< shed by an admission controller; retry later.
  kDeadlineExceeded,   ///< deadline passed before the work could run.
  kAborted,            ///< transaction aborted (conflict or explicit); retry.
  kDataLoss,           ///< unrecoverable corruption of durable state.
};

/// Returns a stable human-readable name for `code` ("OK", "InvalidArgument"…).
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value used instead of exceptions throughout
/// the library (see DESIGN.md, Conventions). A default-constructed Status is
/// OK; error statuses carry a code and a message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

/// Propagates a non-OK status to the caller.
#define PERFEVAL_RETURN_IF_ERROR(expr)                 \
  do {                                                 \
    ::perfeval::Status status_macro_value_ = (expr);   \
    if (!status_macro_value_.ok()) {                   \
      return status_macro_value_;                      \
    }                                                  \
  } while (false)

}  // namespace perfeval

#endif  // PERFEVAL_COMMON_STATUS_H_
