#ifndef PERFEVAL_COMMON_RESULT_H_
#define PERFEVAL_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace perfeval {

/// A value-or-error type: holds either a `T` or a non-OK Status.
/// Accessing the value of an error Result aborts (programming error), so
/// callers must test `ok()` first or use `value_or`.
template <typename T>
class Result {
 public:
  /// Implicit from value and from Status, so functions can `return value;`
  /// or `return Status::InvalidArgument(...);` directly.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    PERFEVAL_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    PERFEVAL_CHECK(ok()) << "value() on error Result: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    PERFEVAL_CHECK(ok()) << "value() on error Result: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    PERFEVAL_CHECK(ok()) << "value() on error Result: " << status_.ToString();
    return std::move(*value_);
  }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates its error
/// status to the caller. `lhs` may include a declaration
/// (`PERFEVAL_ASSIGN_OR_RETURN(auto x, F())`).
#define PERFEVAL_INTERNAL_CONCAT2(a, b) a##b
#define PERFEVAL_INTERNAL_CONCAT(a, b) PERFEVAL_INTERNAL_CONCAT2(a, b)

#define PERFEVAL_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) {                                     \
    return tmp.status();                               \
  }                                                    \
  lhs = std::move(tmp).value()

#define PERFEVAL_ASSIGN_OR_RETURN(lhs, expr)                             \
  PERFEVAL_ASSIGN_OR_RETURN_IMPL(                                        \
      PERFEVAL_INTERNAL_CONCAT(result_macro_value_, __LINE__), lhs, expr)

}  // namespace perfeval

#endif  // PERFEVAL_COMMON_RESULT_H_
