#ifndef PERFEVAL_COMMON_CHECK_H_
#define PERFEVAL_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace perfeval {
namespace internal_check {

/// Accumulates a failure message and aborts the process when destroyed.
/// Used only via the PERFEVAL_CHECK* macros below.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition
            << " ";
  }

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_check
}  // namespace perfeval

/// Aborts with a message when `condition` is false. Additional context may be
/// streamed in: PERFEVAL_CHECK(n > 0) << "n=" << n;
#define PERFEVAL_CHECK(condition)                                  \
  switch (0)                                                       \
  case 0:                                                          \
  default:                                                         \
    if (condition) {                                               \
    } else /* NOLINT */                                            \
      ::perfeval::internal_check::CheckFailure(__FILE__, __LINE__, \
                                               #condition)

#define PERFEVAL_CHECK_EQ(a, b) PERFEVAL_CHECK((a) == (b))
#define PERFEVAL_CHECK_NE(a, b) PERFEVAL_CHECK((a) != (b))
#define PERFEVAL_CHECK_LT(a, b) PERFEVAL_CHECK((a) < (b))
#define PERFEVAL_CHECK_LE(a, b) PERFEVAL_CHECK((a) <= (b))
#define PERFEVAL_CHECK_GT(a, b) PERFEVAL_CHECK((a) > (b))
#define PERFEVAL_CHECK_GE(a, b) PERFEVAL_CHECK((a) >= (b))

#endif  // PERFEVAL_COMMON_CHECK_H_
