#ifndef PERFEVAL_COMMON_STRING_UTIL_H_
#define PERFEVAL_COMMON_STRING_UTIL_H_

#include <cstdarg>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace perfeval {

/// Splits `input` at every occurrence of `delimiter`. Adjacent delimiters
/// produce empty fields; an empty input yields one empty field.
std::vector<std::string> Split(std::string_view input, char delimiter);

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Removes leading and trailing ASCII whitespace.
std::string Trim(std::string_view input);

/// ASCII lower-casing.
std::string ToLower(std::string_view input);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// Strict numeric parsing: the whole (trimmed) string must be consumed.
std::optional<int64_t> ParseInt64(std::string_view text);
std::optional<double> ParseDouble(std::string_view text);
std::optional<bool> ParseBool(std::string_view text);

/// Left/right padding to a minimum width (no truncation).
std::string PadLeft(std::string_view text, size_t width);
std::string PadRight(std::string_view text, size_t width);

}  // namespace perfeval

#endif  // PERFEVAL_COMMON_STRING_UTIL_H_
