#ifndef PERFEVAL_COMMON_PARTITION_H_
#define PERFEVAL_COMMON_PARTITION_H_

#include <cstdint>

#include "common/check.h"
#include "common/random.h"

namespace perfeval {

/// Deterministic hash partitioner: assigns an int64 partition key to one of
/// `num_shards` shards.
///
/// The assignment is a pure function of (salt, key, num_shards) — never of
/// load order, insertion order, platform, or pointer values — so two tables
/// partitioned on keys drawn from the same domain with the same salt are
/// co-partitioned: equal keys always land on the same shard, which is what
/// keeps co-partitioned joins (lineitem ⋈ orders on orderkey) shard-local.
///
/// The key is mixed through MixSeed (SplitMix64-based, fixed 64-bit
/// arithmetic, no libc hashing) before the modulus, so:
///  - the mixed value Hash(key) is independent of the shard count — growing
///    a cluster from N to M shards changes assignments only through the
///    final `% num_shards`, never through the hash itself;
///  - nearby keys (TPC-H's dense orderkeys) spread uniformly instead of
///    striping.
class HashPartitioner {
 public:
  /// `salt` separates independent partitioning domains; tables that must be
  /// co-partitioned share a salt.
  explicit HashPartitioner(int num_shards, uint64_t salt = 0)
      : num_shards_(num_shards), salt_(salt) {
    PERFEVAL_CHECK_GE(num_shards_, 1);
  }

  int num_shards() const { return num_shards_; }
  uint64_t salt() const { return salt_; }

  /// The shard-count-independent mixed key.
  uint64_t Hash(int64_t key) const {
    return MixSeed(salt_, 0x5ca1ab1e5ca1eULL, static_cast<uint64_t>(key));
  }

  /// Shard of `key` in [0, num_shards): Hash(key) % num_shards.
  int ShardOf(int64_t key) const {
    return static_cast<int>(Hash(key) %
                            static_cast<uint64_t>(num_shards_));
  }

 private:
  int num_shards_;
  uint64_t salt_;
};

}  // namespace perfeval

#endif  // PERFEVAL_COMMON_PARTITION_H_
