#ifndef PERFEVAL_COMMON_RANDOM_H_
#define PERFEVAL_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>

#include "common/check.h"

namespace perfeval {

/// SplitMix64 finalizer (Steele et al. 2014): a cheap bijective mixer used
/// to derive well-separated seeds from structured inputs (ids, indices).
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Mixes three structured values into one seed. Used by the experiment
/// scheduler to give every (experiment, design point, replication) trial
/// its own deterministic RNG stream, so results are independent of worker
/// count and completion order.
inline uint64_t MixSeed(uint64_t a, uint64_t b, uint64_t c) {
  uint64_t h = SplitMix64(a);
  h = SplitMix64(h ^ SplitMix64(b ^ 0x2545f4914f6cdd1dULL));
  h = SplitMix64(h ^ SplitMix64(c ^ 0x9e6c63d0876a9a47ULL));
  return h;
}

/// PCG-XSH-RR 32-bit pseudo-random generator (O'Neill 2014).
///
/// Deterministic and seedable — a repeatability requirement from the paper
/// (slides 157–163: experiments must be re-runnable by another human). All
/// data generators and simulators in this library draw from Pcg32 so that a
/// (seed, parameters) pair fully determines an experiment's input.
class Pcg32 {
 public:
  explicit Pcg32(uint64_t seed = 0x853c49e6748fea9bULL,
                 uint64_t stream = 0xda3e39cb94b95bdbULL)
      : state_(0), inc_((stream << 1u) | 1u) {
    Next();
    state_ += seed;
    Next();
  }

  /// Uniform 32-bit value.
  uint32_t Next() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((~rot + 1u) & 31u));
  }

  /// Uniform integer in [0, bound), bias-free (rejection sampling).
  uint32_t NextBounded(uint32_t bound) {
    PERFEVAL_CHECK_GT(bound, 0u);
    uint32_t threshold = (~bound + 1u) % bound;
    for (;;) {
      uint32_t r = Next();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    PERFEVAL_CHECK_LE(lo, hi);
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) {  // full 64-bit range: combine two draws.
      return static_cast<int64_t>((static_cast<uint64_t>(Next()) << 32) |
                                  Next());
    }
    // Compose a 64-bit draw and reduce; span <= 2^32 for all practical
    // callers but handle the general case via modulo of a wide draw.
    uint64_t wide = (static_cast<uint64_t>(Next()) << 32) | Next();
    return lo + static_cast<int64_t>(wide % span);
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return Next() * (1.0 / 4294967296.0); }

  /// Uniform double in [lo, hi).
  double NextDoubleInRange(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Standard normal via Box–Muller (one value per call; the pair's second
  /// value is cached).
  double NextGaussian() {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-12) {
      u1 = NextDouble();
    }
    double u2 = NextDouble();
    double radius = std::sqrt(-2.0 * std::log(u1));
    double angle = 2.0 * 3.14159265358979323846 * u2;
    cached_gaussian_ = radius * std::sin(angle);
    has_cached_gaussian_ = true;
    return radius * std::cos(angle);
  }

  /// Exponential with the given rate (mean = 1/rate).
  double NextExponential(double rate) {
    PERFEVAL_CHECK_GT(rate, 0.0);
    double u = 1.0 - NextDouble();  // in (0, 1]
    return -std::log(u) / rate;
  }

  /// True with probability `p`.
  bool NextBernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
  uint64_t inc_;
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace perfeval

#endif  // PERFEVAL_COMMON_RANDOM_H_
