#include "txn/store.h"

#include <utility>

#include "common/check.h"
#include "db/error.h"
#include "txn/codec.h"

namespace perfeval {
namespace txn {
namespace {

constexpr uint32_t kCheckpointMagic = 0x504B4354;  // "TCKP"

/// Arity/type validation shared by BufferInsert (user input) and replay
/// (untrusted log bytes): every row must match the schema exactly, with
/// NULLs carrying the declared column type.
Status ValidateRows(const db::Schema& schema,
                    const std::vector<std::vector<db::Value>>& rows) {
  for (const auto& row : rows) {
    if (row.size() != schema.num_columns()) {
      return Status::InvalidArgument(
          "row has " + std::to_string(row.size()) + " values, table has " +
          std::to_string(schema.num_columns()) + " columns");
    }
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].type() != schema.column(c).type) {
        return Status::InvalidArgument(
            "value for column " + schema.column(c).name + " has type " +
            db::DataTypeName(row[c].type()) + ", expected " +
            db::DataTypeName(schema.column(c).type));
      }
    }
  }
  return Status::OK();
}

}  // namespace

DeltaStore::DeltaStore(db::Database* database, VirtualDisk* disk,
                       Options options)
    : db_(database),
      disk_(disk),
      options_(std::move(options)),
      wal_(disk, options_.wal_file) {
  PERFEVAL_CHECK(db_ != nullptr);
  PERFEVAL_CHECK(disk_ != nullptr);
}

DeltaStore::DeltaStore(db::Database* database, VirtualDisk* disk)
    : DeltaStore(database, disk, Options()) {}

Status DeltaStore::Open() {
  PERFEVAL_CHECK(!opened_) << "DeltaStore::Open called twice";
  std::string tmp = options_.ckpt_file + ".tmp";
  // A leftover .tmp is a checkpoint that crashed before its atomic
  // rename: never installed, safe to discard.
  if (disk_->Exists(tmp)) {
    disk_->Remove(tmp);
  }
  uint64_t start_lsn = 1;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (disk_->Exists(options_.ckpt_file)) {
      // The checkpoint file only ever appears via fsync-then-rename, so
      // its bytes are fully durable: any damage here is corruption of
      // installed state, not a torn write — kDataLoss, never truncation.
      std::string image = disk_->ReadAll(options_.ckpt_file);
      if (image.size() < 8) {
        return Status::DataLoss("checkpoint image truncated");
      }
      ByteCursor header(std::string_view(image).substr(0, 8));
      uint32_t len = header.GetU32();
      uint32_t crc = header.GetU32();
      if (image.size() - 8 != len) {
        return Status::DataLoss("checkpoint image length mismatch");
      }
      std::string_view payload = std::string_view(image).substr(8);
      if (Crc32(payload) != crc) {
        return Status::DataLoss("checkpoint image CRC mismatch");
      }
      ByteCursor c(payload);
      if (c.GetU32() != kCheckpointMagic) {
        return Status::DataLoss("checkpoint image bad magic");
      }
      start_lsn = c.GetU64();
      uint32_t num_tables = c.GetU32();
      for (uint32_t i = 0; i < num_tables && c.ok(); ++i) {
        std::string name = c.GetString();
        if (!c.ok()) {
          break;
        }
        if (!db_->HasTable(name)) {
          return Status::DataLoss("checkpoint references unknown table " +
                                  name);
        }
        PERFEVAL_ASSIGN_OR_RETURN(
            TableDelta delta,
            TableDelta::Decode(&c, db_->GetTableShared(name)));
        if (!delta.empty()) {
          catalog_stale_[name] = true;
        }
        deltas_.emplace(std::move(name), std::move(delta));
      }
      if (!c.AtEnd()) {
        return Status::DataLoss("checkpoint image trailing or missing bytes");
      }
    }

    PERFEVAL_ASSIGN_OR_RETURN(WalContents wal,
                              ReadWal(*disk_, options_.wal_file));
    if (wal.torn_tail_bytes > 0) {
      // Drop the torn tail from the physical log so future appends start
      // on a record boundary. Only ever removes non-durable bytes, so a
      // crash inside this repair just means doing it again next open.
      size_t size = disk_->Size(options_.wal_file);
      disk_->Truncate(options_.wal_file, size - wal.torn_tail_bytes);
      disk_->Sync(options_.wal_file);
      stats_.torn_tail_bytes = wal.torn_tail_bytes;
    }
    uint64_t last_lsn = start_lsn - 1;
    for (const WalRecord& record : wal.records) {
      if (record.lsn < start_lsn) {
        continue;  // pre-checkpoint record in a not-yet-truncated log.
      }
      if (record.lsn != last_lsn + 1) {
        return Status::DataLoss("WAL LSN gap: expected " +
                                std::to_string(last_lsn + 1) + ", found " +
                                std::to_string(record.lsn));
      }
      Status applied = ApplyRecord(record);
      if (!applied.ok() && applied.code() != StatusCode::kAborted) {
        return applied;  // kDataLoss: log inconsistent with checkpoint.
      }
      // kAborted replays the runtime outcome: the commit was reported
      // aborted and its record is skipped identically here.
      last_lsn = record.lsn;
      ++stats_.wal_records_replayed;
    }
    wal_.set_next_lsn(last_lsn + 1);
    next_apply_lsn_ = last_lsn + 1;
  }
  opened_ = true;
  db_->SetRefreshHook([this] { RefreshCatalog(); });
  RefreshCatalog();
  return Status::OK();
}

uint64_t DeltaStore::Begin() {
  std::lock_guard<std::mutex> lock(txn_mu_);
  uint64_t id = next_txn_id_++;
  pending_[id];
  return id;
}

Status DeltaStore::BufferInsert(uint64_t txn_id, const std::string& table,
                                std::vector<std::vector<db::Value>> rows) {
  if (!db_->HasTable(table)) {
    return Status::NotFound("no table named " + table);
  }
  PERFEVAL_RETURN_IF_ERROR(
      ValidateRows(db_->GetTableShared(table)->schema(), rows));
  std::lock_guard<std::mutex> lock(txn_mu_);
  auto it = pending_.find(txn_id);
  if (it == pending_.end()) {
    return Status::InvalidArgument("unknown transaction " +
                                   std::to_string(txn_id));
  }
  it->second.inserts.push_back({table, std::move(rows)});
  return Status::OK();
}

Status DeltaStore::BufferDelete(uint64_t txn_id, const std::string& table,
                                RowPredicate pred) {
  if (!db_->HasTable(table)) {
    return Status::NotFound("no table named " + table);
  }
  std::lock_guard<std::mutex> lock(txn_mu_);
  auto it = pending_.find(txn_id);
  if (it == pending_.end()) {
    return Status::InvalidArgument("unknown transaction " +
                                   std::to_string(txn_id));
  }
  it->second.deletes.push_back({table, std::move(pred)});
  return Status::OK();
}

Status DeltaStore::Commit(uint64_t txn_id, CommitInfo* info) {
  PERFEVAL_CHECK(opened_) << "Commit before Open";
  if (info != nullptr) {
    *info = CommitInfo();
  }
  PendingTxn txn;
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    auto it = pending_.find(txn_id);
    if (it == pending_.end()) {
      return Status::InvalidArgument("unknown transaction " +
                                     std::to_string(txn_id));
    }
    txn = std::move(it->second);
    pending_.erase(it);
  }

  // Phase 1 — resolve + append, one critical section: DELETE predicates
  // run over the merged snapshot of committed state and the record lands
  // in the WAL before any later commit resolves, so WAL (= LSN = apply)
  // order equals resolution order.
  WalRecord record;
  record.txn_id = txn_id;
  uint64_t lsn = 0;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    for (auto& ins : txn.inserts) {
      if (ins.rows.empty()) {
        continue;
      }
      WalOp op;
      op.kind = WalOp::Kind::kInsert;
      op.table = ins.table;
      op.rows = std::move(ins.rows);
      record.ops.push_back(std::move(op));
    }
    for (const auto& del : txn.deletes) {
      const MergedSnapshot& merged = MergedFor(del.table);
      WalOp op;
      op.kind = WalOp::Kind::kDelete;
      op.table = del.table;
      uint32_t n = static_cast<uint32_t>(merged.table->num_rows());
      for (uint32_t r = 0; r < n; ++r) {
        if (del.pred && !del.pred(*merged.table, r)) {
          continue;
        }
        const RowOrigin& origin = merged.origins[r];
        (origin.from_insert ? op.insert_rows : op.base_rows)
            .push_back(origin.pos);
      }
      if (!op.base_rows.empty() || !op.insert_rows.empty()) {
        record.ops.push_back(std::move(op));
      }
    }
    if (record.ops.empty()) {
      // Nothing to make durable; the commit is trivially done.
      ++stats_.commits;
      return Status::OK();
    }
    lsn = wal_.Append(record);
    record.lsn = lsn;
  }

  // Phase 2 — harden: group-commit fsync (shared with concurrent
  // committers). Throws CrashException under an armed crash point; the
  // store is dead afterwards, like the process it models.
  wal_.SyncUpTo(lsn);

  // Phase 3 — apply in LSN order. Each committer waits its turn, so the
  // in-memory deltas advance exactly in WAL order and a conflict aborts
  // the same transaction at runtime and on replay.
  std::unique_lock<std::mutex> lock(state_mu_);
  apply_cv_.wait(lock, [&] { return next_apply_lsn_ == lsn; });
  Status applied = ApplyRecord(record);
  next_apply_lsn_ = lsn + 1;
  apply_cv_.notify_all();
  if (applied.ok()) {
    ++stats_.commits;
    if (info != nullptr) {
      info->lsn = lsn;
      for (const WalOp& op : record.ops) {
        if (op.kind == WalOp::Kind::kInsert) {
          info->rows_inserted += op.rows.size();
        } else {
          info->rows_deleted += op.base_rows.size() + op.insert_rows.size();
        }
      }
    }
  } else if (applied.code() == StatusCode::kAborted) {
    ++stats_.aborts;
  }
  return applied;
}

void DeltaStore::Abort(uint64_t txn_id) {
  std::lock_guard<std::mutex> lock(txn_mu_);
  pending_.erase(txn_id);
}

Status DeltaStore::ApplyRecord(const WalRecord& record) {
  // Validate every op of the record before applying any (per-record
  // atomicity across tables): inserts against the schema, deletes against
  // the current bitmaps, merged per table so a record whose delete ops
  // overlap is itself a double delete.
  std::map<std::string, std::pair<std::vector<uint32_t>, std::vector<uint32_t>>>
      dels;
  for (const WalOp& op : record.ops) {
    if (!db_->HasTable(op.table)) {
      return Status::DataLoss("record references unknown table " + op.table);
    }
    if (op.kind == WalOp::Kind::kInsert) {
      Status rows_ok = ValidateRows(DeltaFor(op.table).schema(), op.rows);
      if (!rows_ok.ok()) {
        return Status::DataLoss("record row does not match schema of " +
                                op.table + ": " + rows_ok.message());
      }
    } else {
      auto& lists = dels[op.table];
      lists.first.insert(lists.first.end(), op.base_rows.begin(),
                         op.base_rows.end());
      lists.second.insert(lists.second.end(), op.insert_rows.begin(),
                          op.insert_rows.end());
    }
  }
  for (const auto& [table, lists] : dels) {
    PERFEVAL_RETURN_IF_ERROR(
        DeltaFor(table).ValidateDelete(lists.first, lists.second));
  }

  for (const WalOp& op : record.ops) {
    if (op.kind == WalOp::Kind::kInsert) {
      DeltaFor(op.table).ApplyInsert(op.rows);
      stats_.rows_inserted += op.rows.size();
      merged_cache_.erase(op.table);
      catalog_stale_[op.table] = true;
    }
  }
  for (const auto& [table, lists] : dels) {
    Status s = DeltaFor(table).ApplyDelete(lists.first, lists.second);
    PERFEVAL_CHECK(s.ok()) << "validated delete failed to apply: "
                           << s.ToString();
    stats_.rows_deleted += lists.first.size() + lists.second.size();
    merged_cache_.erase(table);
    catalog_stale_[table] = true;
  }
  return Status::OK();
}

TableDelta& DeltaStore::DeltaFor(const std::string& table) {
  auto it = deltas_.find(table);
  if (it == deltas_.end()) {
    // First touch: capture the pristine base from the catalog. Safe
    // because the catalog entry is only replaced by RefreshCatalog once a
    // delta exists, so an absent delta means the entry is still pristine.
    it = deltas_.emplace(table, TableDelta(db_->GetTableShared(table))).first;
  }
  return it->second;
}

const MergedSnapshot& DeltaStore::MergedFor(const std::string& table) {
  auto it = merged_cache_.find(table);
  if (it == merged_cache_.end()) {
    it = merged_cache_.emplace(table, DeltaFor(table).BuildMerged()).first;
  }
  return it->second;
}

Status DeltaStore::Checkpoint() {
  PERFEVAL_CHECK(opened_) << "Checkpoint before Open";
  std::unique_lock<std::mutex> lock(state_mu_);
  // Quiesce: appended-but-unapplied commits finish their apply (they only
  // need this mutex, which the wait releases); new commits block on the
  // resolve critical section until the checkpoint is installed.
  apply_cv_.wait(lock, [&] { return next_apply_lsn_ == wal_.next_lsn(); });

  uint64_t horizon = wal_.next_lsn();
  std::string payload;
  PutU32(&payload, kCheckpointMagic);
  PutU64(&payload, horizon);
  PutU32(&payload, static_cast<uint32_t>(deltas_.size()));
  for (auto& [name, delta] : deltas_) {
    delta.Compact();
    // Compaction renumbers insert positions; cached origin maps are stale.
    merged_cache_.erase(name);
    PutString(&payload, name);
    delta.Encode(&payload);
  }
  std::string image;
  PutU32(&image, static_cast<uint32_t>(payload.size()));
  PutU32(&image, Crc32(payload));
  image.append(payload);

  // Install: tmp write + fsync, atomic rename, then WAL truncation. A
  // crash at any site leaves either the old checkpoint + full WAL or the
  // new checkpoint + (possibly still-to-be-truncated) WAL whose records
  // all fall below the new horizon — both recover to the same state.
  std::string tmp = options_.ckpt_file + ".tmp";
  disk_->Remove(tmp);
  disk_->Append(tmp, image);
  disk_->Sync(tmp);
  disk_->Rename(tmp, options_.ckpt_file);
  wal_.TruncateLog(horizon);
  ++stats_.checkpoints;
  return Status::OK();
}

void DeltaStore::RefreshCatalog() {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (db_->check()) {
    // Checked execution extends to the write path: refuse to serve from a
    // delta whose structural invariants do not hold.
    for (const auto& [name, delta] : deltas_) {
      Status s = delta.CheckIntegrity();
      if (!s.ok()) {
        throw db::QueryError::Invariant("delta store integrity (" + name +
                                        "): " + s.message());
      }
    }
  }
  // Install under state_mu_ so concurrent refreshes cannot regress the
  // catalog to an older snapshot. ReplaceTable takes the exec gate
  // exclusively inside; commit threads never take the gate, so the lock
  // order state_mu_ -> exec gate is cycle-free.
  for (auto& [name, stale] : catalog_stale_) {
    if (!stale) {
      continue;
    }
    db_->ReplaceTable(name, MergedFor(name).table);
    stale = false;
  }
}

Status DeltaStore::CheckIntegrity() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  for (const auto& [name, delta] : deltas_) {
    Status s = delta.CheckIntegrity();
    if (!s.ok()) {
      return Status::DataLoss("table " + name + ": " + s.message());
    }
  }
  return Status::OK();
}

std::shared_ptr<db::Table> DeltaStore::MergedTable(const std::string& table) {
  std::lock_guard<std::mutex> lock(state_mu_);
  return MergedFor(table).table;
}

DeltaStoreStats DeltaStore::stats() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return stats_;
}

void DeltaStore::CorruptForTest(const std::string& table,
                                TableDelta::Corruption kind) {
  std::lock_guard<std::mutex> lock(state_mu_);
  DeltaFor(table).CorruptForTest(kind);
  merged_cache_.erase(table);
}

}  // namespace txn
}  // namespace perfeval
