#ifndef PERFEVAL_TXN_DELTA_H_
#define PERFEVAL_TXN_DELTA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "txn/codec.h"
#include "db/table.h"

namespace perfeval {
namespace txn {

/// Where a merged row came from: a position in the pristine base table or
/// a position in the delta's insert side. Commit-time DELETE resolution
/// maps predicate matches over the merged view back to physical rows
/// through this.
struct RowOrigin {
  bool from_insert = false;
  uint32_t pos = 0;
};

/// The merged read snapshot of one table: live base rows (in base order)
/// followed by live inserted rows (in insertion order) — deterministic by
/// construction, so scan results are bit-identical at any thread count.
struct MergedSnapshot {
  std::shared_ptr<db::Table> table;
  std::vector<RowOrigin> origins;
};

/// The write-side state of one table, layered over its immutable base:
///
///   - a delete bitmap over the pristine base rows,
///   - an append-only columnar insert table,
///   - a delete bitmap plus strictly-increasing row ids over the inserts.
///
/// Mutations are validate-then-apply: ApplyDelete checks every target row
/// first and applies nothing on rejection, so a WAL record either applies
/// entirely or is skipped entirely — at runtime and during replay alike.
///
/// Not thread-safe; DeltaStore serializes all access under its state lock.
class TableDelta {
 public:
  explicit TableDelta(std::shared_ptr<const db::Table> base);

  const db::Schema& schema() const { return base_->schema(); }
  const db::Table& base() const { return *base_; }

  size_t num_base_rows() const { return base_->num_rows(); }
  size_t num_base_deleted() const { return base_deleted_count_; }
  size_t num_insert_rows() const { return insert_table_.num_rows(); }
  size_t num_insert_deleted() const { return insert_deleted_count_; }
  size_t num_live_rows() const {
    return base_->num_rows() - base_deleted_count_ +
           insert_table_.num_rows() - insert_deleted_count_;
  }
  /// True when the delta carries no mutations at all (merged == base).
  bool empty() const {
    return base_deleted_count_ == 0 && insert_table_.num_rows() == 0;
  }

  /// Appends rows to the insert side, assigning strictly increasing row
  /// ids. Rows must match the schema (checked by Table::AppendRow).
  void ApplyInsert(const std::vector<std::vector<db::Value>>& rows);

  /// Checks whether the targeted rows can all be deleted: kAborted when
  /// any target is already deleted or listed twice (a write-write
  /// conflict: the row was gone by the time this commit reached its turn
  /// in the apply order), kDataLoss on out-of-range positions. Changes
  /// nothing — DeltaStore validates every table of a record before
  /// applying any of it (per-record atomicity).
  Status ValidateDelete(const std::vector<uint32_t>& base_rows,
                        const std::vector<uint32_t>& insert_rows) const;

  /// Marks base positions / insert positions deleted. Validates first
  /// (ValidateDelete) and applies nothing on rejection.
  Status ApplyDelete(const std::vector<uint32_t>& base_rows,
                     const std::vector<uint32_t>& insert_rows);

  /// Builds the merged read snapshot with its origin map.
  MergedSnapshot BuildMerged() const;

  /// Structural invariants, checked in checked execution mode and by the
  /// crash fuzzer after every recovery: delete-bitmap popcounts match the
  /// maintained counters (a bit was never set twice), bitmap sizes match
  /// their tables, and insert row ids are strictly increasing. Returns
  /// kDataLoss naming the violated invariant.
  Status CheckIntegrity() const;

  /// Drops deleted insert rows, renumbering the survivors' positions
  /// deterministically (order preserved) — the checkpoint compaction.
  /// Row ids are preserved, so they stay strictly increasing.
  void Compact();

  /// Serializes the delta for the checkpoint image.
  void Encode(std::string* out) const;

  /// Decodes a checkpoint-image delta over the given pristine base.
  /// Returns kDataLoss on any structural damage.
  static Result<TableDelta> Decode(ByteCursor* c,
                                   std::shared_ptr<const db::Table> base);

  /// Test hook: deliberately breaks one invariant so the checked-mode
  /// negative test can prove CheckIntegrity actually fires.
  enum class Corruption {
    kDeleteCountMismatch,  ///< counter no longer matches the bitmap.
    kRowIdOrder,           ///< insert row ids no longer increase.
  };
  void CorruptForTest(Corruption kind);

 private:
  std::shared_ptr<const db::Table> base_;
  std::vector<uint8_t> base_deleted_;  ///< one flag per pristine base row.
  size_t base_deleted_count_ = 0;

  db::Table insert_table_;
  std::vector<uint8_t> insert_deleted_;
  size_t insert_deleted_count_ = 0;
  std::vector<uint64_t> insert_rowids_;  ///< strictly increasing.
  uint64_t next_rowid_ = 0;
};

}  // namespace txn
}  // namespace perfeval

#endif  // PERFEVAL_TXN_DELTA_H_
