#include "txn/vdisk.h"

#include <algorithm>

#include "common/check.h"
#include "common/random.h"

namespace perfeval {
namespace txn {
namespace {

uint64_t HashName(const std::string& name) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a.
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

VirtualDisk::VirtualDisk(db::DiskModel model) : model_(model) {}

void VirtualDisk::CountOpOrCrash() {
  if (crashed_) {
    throw CrashException();
  }
  if (crash_at_ >= 0 && op_count_ == crash_at_) {
    crashed_ = true;
    throw CrashException();
  }
  ++op_count_;
}

void VirtualDisk::Append(const std::string& file, std::string_view data) {
  std::lock_guard<std::mutex> lock(mu_);
  CountOpOrCrash();
  files_[file].volatile_.append(data.data(), data.size());
  stats_.bytes_written += static_cast<int64_t>(data.size());
}

void VirtualDisk::Truncate(const std::string& file, size_t new_size) {
  std::lock_guard<std::mutex> lock(mu_);
  CountOpOrCrash();
  auto it = files_.find(file);
  PERFEVAL_CHECK(it != files_.end()) << "Truncate of missing file " << file;
  std::string& v = it->second.volatile_;
  if (new_size < v.size()) {
    v.resize(new_size);
  }
}

void VirtualDisk::Sync(const std::string& file) {
  std::lock_guard<std::mutex> lock(mu_);
  CountOpOrCrash();
  auto it = files_.find(file);
  PERFEVAL_CHECK(it != files_.end()) << "Sync of missing file " << file;
  File& f = it->second;
  // An fsync pays one seek plus transfer for the bytes it makes durable.
  // The dirty volume is measured against the longest common prefix, so a
  // truncate-then-rewrite pays for the rewritten span, not the file size.
  size_t common = 0;
  size_t limit = std::min(f.durable.size(), f.volatile_.size());
  while (common < limit && f.durable[common] == f.volatile_[common]) {
    ++common;
  }
  size_t dirty = f.volatile_.size() - common;
  int64_t stall =
      model_.seek_ns + static_cast<int64_t>(dirty * model_.ns_per_byte);
  ++stats_.fsyncs;
  stats_.write_stall_ns += stall;
  f.durable = f.volatile_;
}

void VirtualDisk::Rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  CountOpOrCrash();
  auto it = files_.find(from);
  PERFEVAL_CHECK(it != files_.end()) << "Rename of missing file " << from;
  File moved = std::move(it->second);
  files_.erase(it);
  files_[to] = std::move(moved);
}

void VirtualDisk::Remove(const std::string& file) {
  std::lock_guard<std::mutex> lock(mu_);
  CountOpOrCrash();
  files_.erase(file);
}

bool VirtualDisk::Exists(const std::string& file) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.find(file) != files_.end();
}

std::string VirtualDisk::ReadAll(const std::string& file) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(file);
  PERFEVAL_CHECK(it != files_.end()) << "ReadAll of missing file " << file;
  return it->second.volatile_;
}

size_t VirtualDisk::Size(const std::string& file) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(file);
  return it == files_.end() ? 0 : it->second.volatile_.size();
}

void VirtualDisk::ArmCrash(int64_t op_index, uint64_t tear_seed) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_at_ = op_index;
  tear_seed_ = tear_seed;
}

int64_t VirtualDisk::op_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return op_count_;
}

bool VirtualDisk::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

void VirtualDisk::Reopen() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, f] : files_) {
    if (f.volatile_ == f.durable) {
      continue;
    }
    uint64_t h = MixSeed(tear_seed_, HashName(name),
                         static_cast<uint64_t>(op_count_));
    if (f.volatile_.size() >= f.durable.size() &&
        f.volatile_.compare(0, f.durable.size(), f.durable) == 0) {
      // Pure appends since the last sync: an arbitrary seeded prefix of
      // the unsynced tail survives — the torn write.
      size_t tail = f.volatile_.size() - f.durable.size();
      size_t kept = static_cast<size_t>(h % (tail + 1));
      f.durable.append(f.volatile_, f.durable.size(), kept);
    } else if ((h & 1) != 0) {
      // Truncate/rewrite in flight: the filesystem may or may not have
      // persisted it. Adversarially pick one, seeded.
      f.durable = f.volatile_;
    }
    f.volatile_ = f.durable;
  }
  crashed_ = false;
  crash_at_ = -1;
  op_count_ = 0;
}

db::StorageStats VirtualDisk::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void VirtualDisk::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = db::StorageStats();
}

}  // namespace txn
}  // namespace perfeval
