#include "txn/dml.h"

#include <utility>
#include <vector>

#include "db/expr.h"
#include "db/types.h"
#include "sql/parser.h"
#include "sql/planner.h"

namespace perfeval {
namespace txn {
namespace {

/// Coerces one VALUES literal to the declared type of its target column.
Result<db::Value> CoerceLiteral(const sql::AstExpr& node,
                                const db::ColumnSpec& column) {
  auto mismatch = [&](const char* what) {
    return Status::InvalidArgument(
        std::string(what) + " literal cannot fill " +
        db::DataTypeName(column.type) + " column " + column.name +
        " (at offset " + std::to_string(node.offset) + ")");
  };
  switch (node.kind) {
    case sql::AstExprKind::kNullLit:
      return db::Value::Null(column.type);
    case sql::AstExprKind::kIntLit:
      if (column.type == db::DataType::kInt64) {
        return db::Value::Int64(node.int_value);
      }
      if (column.type == db::DataType::kDouble) {
        return db::Value::Double(static_cast<double>(node.int_value));
      }
      return mismatch("integer");
    case sql::AstExprKind::kDoubleLit:
      if (column.type == db::DataType::kDouble) {
        return db::Value::Double(node.double_value);
      }
      return mismatch("double");
    case sql::AstExprKind::kStringLit:
    case sql::AstExprKind::kDateLit: {
      if (column.type == db::DataType::kString &&
          node.kind == sql::AstExprKind::kStringLit) {
        return db::Value::String(node.text);
      }
      if (column.type == db::DataType::kDate) {
        int32_t days = 0;
        if (!db::ParseDate(node.text, &days)) {
          return Status::InvalidArgument("bad date literal '" + node.text +
                                         "' for column " + column.name);
        }
        return db::Value::Date(days);
      }
      return mismatch(node.kind == sql::AstExprKind::kDateLit ? "date"
                                                              : "string");
    }
    default:
      return Status::InvalidArgument(
          "INSERT values must be literals (at offset " +
          std::to_string(node.offset) + ")");
  }
}

}  // namespace

Result<DmlResult> ExecuteInsert(const sql::InsertStatement& statement,
                                DeltaStore& store) {
  db::Database& database = store.database();
  if (!database.HasTable(statement.table)) {
    return Status::NotFound("no table named " + statement.table);
  }
  const db::Schema& schema =
      database.GetTableShared(statement.table)->schema();
  std::vector<std::vector<db::Value>> rows;
  rows.reserve(statement.rows.size());
  for (const auto& ast_row : statement.rows) {
    if (ast_row.size() != schema.num_columns()) {
      return Status::InvalidArgument(
          "VALUES row has " + std::to_string(ast_row.size()) +
          " values, table " + statement.table + " has " +
          std::to_string(schema.num_columns()) + " columns");
    }
    std::vector<db::Value> row;
    row.reserve(ast_row.size());
    for (size_t c = 0; c < ast_row.size(); ++c) {
      PERFEVAL_ASSIGN_OR_RETURN(db::Value value,
                                CoerceLiteral(*ast_row[c], schema.column(c)));
      row.push_back(std::move(value));
    }
    rows.push_back(std::move(row));
  }

  uint64_t txn = store.Begin();
  Status buffered =
      store.BufferInsert(txn, statement.table, std::move(rows));
  if (!buffered.ok()) {
    store.Abort(txn);
    return buffered;
  }
  DeltaStore::CommitInfo info;
  PERFEVAL_RETURN_IF_ERROR(store.Commit(txn, &info));
  DmlResult result;
  result.rows_affected = info.rows_inserted;
  return result;
}

Result<DmlResult> ExecuteDelete(const sql::DeleteStatement& statement,
                                DeltaStore& store) {
  db::Database& database = store.database();
  if (!database.HasTable(statement.table)) {
    return Status::NotFound("no table named " + statement.table);
  }
  RowPredicate pred;  // null predicate: delete every row.
  if (statement.where != nullptr) {
    const db::Schema& schema =
        database.GetTableShared(statement.table)->schema();
    PERFEVAL_ASSIGN_OR_RETURN(db::ExprPtr bound,
                              sql::BindWhereExpr(statement.where, schema));
    pred = [bound](const db::Table& table, uint32_t row) {
      return bound->EvalBool(table, row);
    };
  }

  uint64_t txn = store.Begin();
  Status buffered = store.BufferDelete(txn, statement.table, std::move(pred));
  if (!buffered.ok()) {
    store.Abort(txn);
    return buffered;
  }
  DeltaStore::CommitInfo info;
  PERFEVAL_RETURN_IF_ERROR(store.Commit(txn, &info));
  DmlResult result;
  result.rows_affected = info.rows_deleted;
  return result;
}

Result<DmlResult> ExecuteDml(const std::string& sql_text, DeltaStore& store) {
  PERFEVAL_ASSIGN_OR_RETURN(sql::Statement statement,
                            sql::ParseSql(sql_text));
  switch (statement.kind) {
    case sql::Statement::Kind::kInsert:
      return ExecuteInsert(statement.insert, store);
    case sql::Statement::Kind::kDelete:
      return ExecuteDelete(statement.delete_from, store);
    case sql::Statement::Kind::kSelect:
      return Status::InvalidArgument(
          "ExecuteDml only runs INSERT/DELETE; run SELECT through "
          "sql::RunQuery");
  }
  return Status::Internal("unreachable statement kind");
}

}  // namespace txn
}  // namespace perfeval
