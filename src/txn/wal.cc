#include "txn/wal.h"

#include "common/check.h"
#include "txn/codec.h"

namespace perfeval {
namespace txn {
namespace {

void PutOp(std::string* out, const WalOp& op) {
  PutU8(out, static_cast<uint8_t>(op.kind));
  PutString(out, op.table);
  if (op.kind == WalOp::Kind::kInsert) {
    PutU32(out, static_cast<uint32_t>(op.rows.size()));
    for (const auto& row : op.rows) {
      PutU32(out, static_cast<uint32_t>(row.size()));
      for (const auto& v : row) {
        PutValue(out, v);
      }
    }
  } else {
    PutU32(out, static_cast<uint32_t>(op.base_rows.size()));
    for (uint32_t r : op.base_rows) {
      PutU32(out, r);
    }
    PutU32(out, static_cast<uint32_t>(op.insert_rows.size()));
    for (uint32_t r : op.insert_rows) {
      PutU32(out, r);
    }
  }
}

bool GetOp(ByteCursor* c, WalOp* op) {
  uint8_t kind = c->GetU8();
  if (kind != static_cast<uint8_t>(WalOp::Kind::kInsert) &&
      kind != static_cast<uint8_t>(WalOp::Kind::kDelete)) {
    c->Poison();
    return false;
  }
  op->kind = static_cast<WalOp::Kind>(kind);
  op->table = c->GetString();
  if (op->kind == WalOp::Kind::kInsert) {
    uint32_t num_rows = c->GetU32();
    for (uint32_t i = 0; i < num_rows && c->ok(); ++i) {
      uint32_t num_cols = c->GetU32();
      std::vector<db::Value> row;
      for (uint32_t j = 0; j < num_cols && c->ok(); ++j) {
        row.push_back(GetValue(c));
      }
      op->rows.push_back(std::move(row));
    }
  } else {
    uint32_t n = c->GetU32();
    for (uint32_t i = 0; i < n && c->ok(); ++i) {
      op->base_rows.push_back(c->GetU32());
    }
    n = c->GetU32();
    for (uint32_t i = 0; i < n && c->ok(); ++i) {
      op->insert_rows.push_back(c->GetU32());
    }
  }
  return c->ok();
}

bool DecodePayload(std::string_view payload, WalRecord* record) {
  ByteCursor c(payload);
  record->lsn = c.GetU64();
  record->txn_id = c.GetU64();
  uint32_t num_ops = c.GetU32();
  record->ops.clear();
  for (uint32_t i = 0; i < num_ops && c.ok(); ++i) {
    WalOp op;
    if (!GetOp(&c, &op)) {
      return false;
    }
    record->ops.push_back(std::move(op));
  }
  return c.AtEnd();
}

}  // namespace

std::string EncodeWalRecord(const WalRecord& record) {
  std::string payload;
  PutU64(&payload, record.lsn);
  PutU64(&payload, record.txn_id);
  PutU32(&payload, static_cast<uint32_t>(record.ops.size()));
  for (const auto& op : record.ops) {
    PutOp(&payload, op);
  }
  std::string frame;
  frame.reserve(payload.size() + 8);
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32(payload));
  frame.append(payload);
  return frame;
}

Result<WalContents> ReadWal(const VirtualDisk& disk, const std::string& file) {
  WalContents out;
  if (!disk.Exists(file)) {
    return out;
  }
  std::string log = disk.ReadAll(file);
  size_t pos = 0;
  while (pos < log.size()) {
    // A frame damaged at the very end of the log is a torn tail — the
    // crash interrupted the final append, and the tear model only damages
    // suffixes. The same damage followed by more valid bytes cannot be a
    // torn append: the durable log itself is corrupt.
    if (log.size() - pos < 8) {
      out.torn_tail_bytes = log.size() - pos;
      break;
    }
    ByteCursor header(std::string_view(log).substr(pos, 8));
    uint32_t len = header.GetU32();
    uint32_t crc = header.GetU32();
    if (log.size() - pos - 8 < len) {
      out.torn_tail_bytes = log.size() - pos;
      break;
    }
    std::string_view payload = std::string_view(log).substr(pos + 8, len);
    WalRecord record;
    if (Crc32(payload) != crc || !DecodePayload(payload, &record)) {
      if (pos + 8 + len == log.size()) {
        out.torn_tail_bytes = log.size() - pos;
        break;
      }
      return Status::DataLoss("WAL corrupt mid-log at offset " +
                              std::to_string(pos) + " of " + file);
    }
    out.records.push_back(std::move(record));
    pos += 8 + len;
  }
  return out;
}

WalWriter::WalWriter(VirtualDisk* disk, std::string file)
    : disk_(disk), file_(std::move(file)) {
  PERFEVAL_CHECK(disk_ != nullptr);
}

uint64_t WalWriter::Append(WalRecord record) {
  std::unique_lock<std::mutex> lock(mu_);
  if (poisoned_) {
    throw CrashException();
  }
  record.lsn = next_lsn_++;
  std::string frame = EncodeWalRecord(record);
  // Append under the writer lock: frames land in LSN order, so a torn
  // tail always truncates a suffix of the commit order.
  try {
    disk_->Append(file_, frame);
  } catch (const CrashException&) {
    poisoned_ = true;
    synced_cv_.notify_all();
    throw;
  }
  appended_lsn_ = record.lsn;
  return record.lsn;
}

void WalWriter::SyncUpTo(uint64_t lsn) {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (poisoned_) {
      throw CrashException();
    }
    if (synced_lsn_ >= lsn) {
      return;
    }
    if (sync_in_flight_) {
      // A leader's fsync is in flight; if our record was appended before
      // it sampled its target we ride along for free. Wait and re-check.
      synced_cv_.wait(lock);
      continue;
    }
    // Leader: sync everything appended so far — followers whose records
    // landed before this point share this one fsync (group commit).
    sync_in_flight_ = true;
    uint64_t target = appended_lsn_;
    lock.unlock();
    try {
      disk_->Sync(file_);
    } catch (const CrashException&) {
      lock.lock();
      sync_in_flight_ = false;
      poisoned_ = true;
      synced_cv_.notify_all();
      throw;
    }
    lock.lock();
    sync_in_flight_ = false;
    if (target > synced_lsn_) {
      synced_lsn_ = target;
    }
    synced_cv_.notify_all();
  }
}

void WalWriter::TruncateLog(uint64_t next_lsn) {
  std::unique_lock<std::mutex> lock(mu_);
  if (poisoned_) {
    throw CrashException();
  }
  try {
    disk_->Truncate(file_, 0);
    disk_->Sync(file_);
  } catch (const CrashException&) {
    poisoned_ = true;
    synced_cv_.notify_all();
    throw;
  }
  next_lsn_ = next_lsn;
  appended_lsn_ = next_lsn - 1;
  synced_lsn_ = next_lsn - 1;
}

uint64_t WalWriter::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

void WalWriter::set_next_lsn(uint64_t next_lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  next_lsn_ = next_lsn;
  appended_lsn_ = next_lsn - 1;
  synced_lsn_ = next_lsn - 1;
}

}  // namespace txn
}  // namespace perfeval
