#ifndef PERFEVAL_TXN_CRASHFUZZ_H_
#define PERFEVAL_TXN_CRASHFUZZ_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace perfeval {
namespace txn {

/// Configuration of one crash-point fuzzing campaign (see RunCrashFuzz).
struct CrashFuzzOptions {
  uint64_t seed = 42;
  /// Committed transactions in the scripted workload. Sized so the full
  /// run produces well over 200 crash sites at the defaults.
  int num_commits = 100;
  /// Commits between checkpoints (checkpoint sites are fuzzed too).
  int checkpoint_every = 12;
  int rows_per_insert = 4;
  /// Test every `site_stride`-th crash site (1 = exhaustive). The smoke
  /// configuration uses a stride to stay inside a ctest budget.
  int site_stride = 1;
};

/// What a campaign did. `mismatches` must be zero: every tested crash
/// site recovered to exactly the acked state (or acked + the one
/// in-flight commit), with integrity intact and no uncommitted or
/// aborted write resurrected.
struct CrashFuzzReport {
  int64_t total_sites = 0;      ///< mutating disk ops of the crash-free run.
  int64_t sites_tested = 0;
  int64_t crashes_injected = 0;
  int64_t recoveries_ok = 0;
  int64_t mismatches = 0;
  int64_t torn_tails_seen = 0;  ///< recoveries that discarded a torn tail.
  int64_t replays_with_records = 0;  ///< recoveries that replayed >= 1 record.
  std::string first_failure;    ///< empty when mismatches == 0.
};

/// Seeded crash-point fuzzing of the write path:
///
///   1. Runs a deterministic scripted workload (interleaved INSERT /
///      DELETE commits, explicit aborts, a hanging never-committed
///      transaction, periodic checkpoints) against a fresh in-memory
///      database on a VirtualDisk, crash-free, recording the total number
///      of mutating disk operations N and a shadow model of every acked
///      commit.
///   2. For each site k (stride-sampled from 0..N-1): re-runs the same
///      workload with a crash armed at disk operation k — the k-th WAL
///      append, fsync, checkpoint write, rename or truncate throws
///      mid-protocol and a seeded torn tail is applied to unsynced bytes.
///      The disk is then reopened, a fresh database recovers via
///      DeltaStore::Open, and every table is diffed (db::DiffTables,
///      exact, order-sensitive) against the shadow state at the crash:
///      committed data must survive exactly; the single commit in flight
///      at the crash may be either fully present or fully absent;
///      uncommitted and aborted writes must never resurrect; and
///      CheckIntegrity must hold. A follow-up commit after recovery must
///      also succeed (the store is usable, not just readable).
///
/// Fully deterministic in `options.seed`. Errors (not mismatches) are
/// returned as a non-OK status only for harness-level failures.
Result<CrashFuzzReport> RunCrashFuzz(const CrashFuzzOptions& options);

}  // namespace txn
}  // namespace perfeval

#endif  // PERFEVAL_TXN_CRASHFUZZ_H_
