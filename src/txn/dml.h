#ifndef PERFEVAL_TXN_DML_H_
#define PERFEVAL_TXN_DML_H_

#include <string>

#include "common/result.h"
#include "sql/ast.h"
#include "txn/store.h"

namespace perfeval {
namespace txn {

/// Outcome of one DML statement.
struct DmlResult {
  uint64_t rows_affected = 0;
};

/// Executes one parsed INSERT as a single auto-commit transaction:
/// literal values are coerced to the column types (integer literals fill
/// DOUBLE columns, string literals fill DATE columns, NULL takes the
/// column's type), then committed through the delta store.
Result<DmlResult> ExecuteInsert(const sql::InsertStatement& statement,
                                DeltaStore& store);

/// Executes one parsed DELETE as a single auto-commit transaction: the
/// WHERE clause is bound against the table schema (sql::BindWhereExpr)
/// and resolved to physical rows over the merged snapshot at commit time.
Result<DmlResult> ExecuteDelete(const sql::DeleteStatement& statement,
                                DeltaStore& store);

/// Parses `sql_text` and executes it if it is DML (INSERT or DELETE).
/// SELECT statements are rejected with InvalidArgument — reads go through
/// sql::RunQuery / Database::Run, which pick up committed writes via the
/// refresh hook.
Result<DmlResult> ExecuteDml(const std::string& sql_text, DeltaStore& store);

}  // namespace txn
}  // namespace perfeval

#endif  // PERFEVAL_TXN_DML_H_
