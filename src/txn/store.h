#ifndef PERFEVAL_TXN_STORE_H_
#define PERFEVAL_TXN_STORE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "db/database.h"
#include "txn/delta.h"
#include "txn/vdisk.h"
#include "txn/wal.h"

namespace perfeval {
namespace txn {

/// Row predicate used to resolve a buffered DELETE at commit time:
/// called per live row of the merged snapshot; true means delete.
using RowPredicate = std::function<bool(const db::Table&, uint32_t row)>;

/// Counters the write-path bench reports alongside VirtualDisk's fsync
/// accounting.
struct DeltaStoreStats {
  uint64_t commits = 0;
  uint64_t aborts = 0;          ///< conflict aborts at apply time.
  uint64_t rows_inserted = 0;
  uint64_t rows_deleted = 0;
  uint64_t checkpoints = 0;
  uint64_t wal_records_replayed = 0;  ///< by the last Open().
  uint64_t torn_tail_bytes = 0;       ///< discarded by the last Open().
};

/// The write path: a WAL-backed delta store layered over a Database's
/// immutable base tables (DESIGN.md S15).
///
/// Transactions buffer INSERTs (rows) and DELETEs (predicates), then
/// Commit():
///
///   1. resolve — under the state lock, DELETE predicates run over the
///      merged snapshot and map matches to physical row positions via the
///      origin map; the record (rows + resolved positions, never
///      predicates) is appended to the WAL. Resolution and append are one
///      critical section, so WAL order == resolution order.
///   2. harden — group commit: the record is fsynced, sharing the fsync
///      with concurrently committing transactions (WalWriter::SyncUpTo).
///   3. apply — records apply to the in-memory deltas strictly in LSN
///      order (commit threads sequence themselves on next_apply_lsn_).
///      Apply is validate-then-apply: a record whose delete targets a row
///      a lower-LSN commit already deleted aborts (kAborted) and changes
///      nothing. Replay runs the identical validation in the identical
///      order, so an aborted commit stays aborted after recovery.
///
/// Readers never see un-hardened data: queries observe deltas only after
/// apply, which happens after fsync. RefreshCatalog() — installed as the
/// Database's refresh hook — folds applied deltas into the catalog by
/// swapping in merged snapshots (Database::ReplaceTable), so every
/// existing operator, zone map, checked-mode invariant and the reference
/// oracle work unchanged on mutated tables.
///
/// Checkpoint() compacts and serializes the deltas plus the WAL horizon
/// to ckpt.tmp, fsyncs, atomically renames over the checkpoint file, then
/// truncates the WAL — crash-safe at every intermediate site. Open()
/// recovers: pristine base + checkpoint image + replay of WAL records at
/// or above the checkpoint horizon, discarding a torn tail and failing
/// with kDataLoss on mid-log corruption.
///
/// Thread-safe: Begin/Buffer*/Commit/Abort may race freely; Checkpoint
/// and RefreshCatalog may run concurrently with commits.
class DeltaStore {
 public:
  struct Options {
    std::string wal_file = "wal.log";
    std::string ckpt_file = "checkpoint.img";
  };

  /// `database` must hold pristine (never-mutated) base tables and must
  /// outlive the store, as must `disk`.
  DeltaStore(db::Database* database, VirtualDisk* disk, Options options);
  DeltaStore(db::Database* database, VirtualDisk* disk);

  DeltaStore(const DeltaStore&) = delete;
  DeltaStore& operator=(const DeltaStore&) = delete;

  /// Recovers durable state from `disk` (checkpoint + WAL replay) and
  /// installs the refresh hook on the database. Call exactly once,
  /// before any transaction. kDataLoss on corrupt durable state.
  Status Open();

  // ---- Transactions ----

  /// Starts a transaction and returns its id.
  uint64_t Begin();

  /// Buffers rows for insertion into `table`. Validates arity and types
  /// against the schema (InvalidArgument / NotFound); rows become visible
  /// only after Commit. Statements do not see their own transaction's
  /// earlier buffered writes (DELETE resolves against committed state).
  Status BufferInsert(uint64_t txn_id, const std::string& table,
                      std::vector<std::vector<db::Value>> rows);

  /// Buffers a DELETE of every committed row of `table` matching `pred`
  /// (nullptr matches every row). Resolution happens at commit time.
  Status BufferDelete(uint64_t txn_id, const std::string& table,
                      RowPredicate pred);

  /// What a successful commit did (all zero for an empty transaction).
  struct CommitInfo {
    uint64_t rows_inserted = 0;
    uint64_t rows_deleted = 0;
    uint64_t lsn = 0;  ///< 0 when no WAL record was needed.
  };

  /// Commits: resolve + WAL append + group-commit fsync + in-order
  /// apply. OK means the transaction is durable and visible; kAborted
  /// means a write-write conflict and nothing was applied (the WAL
  /// record exists but replay skips it identically). May throw
  /// CrashException under an armed crash point.
  Status Commit(uint64_t txn_id, CommitInfo* info = nullptr);

  /// Drops a transaction's buffered writes without logging anything.
  void Abort(uint64_t txn_id);

  // ---- Maintenance ----

  /// Compacts deltas and installs a checkpoint, truncating the WAL.
  /// Serializes against commits. May throw CrashException.
  Status Checkpoint();

  /// Folds applied deltas into the database catalog (merged snapshots
  /// via ReplaceTable). Installed as the Database refresh hook; cheap
  /// when nothing changed. In checked execution mode, runs
  /// CheckIntegrity first and throws QueryError on violation.
  void RefreshCatalog();

  /// Structural invariants of every delta (see TableDelta::CheckIntegrity).
  Status CheckIntegrity() const;

  /// The merged snapshot of `table` (for tests and the crash fuzzer's
  /// oracle diff; queries read through the catalog instead).
  std::shared_ptr<db::Table> MergedTable(const std::string& table);

  DeltaStoreStats stats() const;
  uint64_t next_lsn() const { return wal_.next_lsn(); }
  db::Database& database() { return *db_; }

  /// Test hook: corrupts one table's delta (see TableDelta::CorruptForTest)
  /// so the checked-mode negative test can prove detection.
  void CorruptForTest(const std::string& table, TableDelta::Corruption kind);

 private:
  struct PendingInsert {
    std::string table;
    std::vector<std::vector<db::Value>> rows;
  };
  struct PendingDelete {
    std::string table;
    RowPredicate pred;
  };
  struct PendingTxn {
    std::vector<PendingInsert> inserts;
    std::vector<PendingDelete> deletes;
  };

  /// Returns the delta for `table`, creating it over the pristine base on
  /// first touch. Caller holds state_mu_. The pristine base is captured
  /// from the catalog, which is safe because the catalog entry is only
  /// ever replaced *after* a delta exists (RefreshCatalog).
  TableDelta& DeltaFor(const std::string& table);

  /// Cached merged snapshot for `table`, rebuilt when stale. Caller
  /// holds state_mu_.
  const MergedSnapshot& MergedFor(const std::string& table);

  /// Validates and applies one record to the deltas. Caller holds
  /// state_mu_. kAborted on conflict (nothing applied).
  Status ApplyRecord(const WalRecord& record);

  db::Database* db_;
  VirtualDisk* disk_;
  Options options_;
  WalWriter wal_;
  bool opened_ = false;

  mutable std::mutex txn_mu_;
  uint64_t next_txn_id_ = 1;
  std::unordered_map<uint64_t, PendingTxn> pending_;

  /// Guards deltas, merged cache, apply sequencing and stats. Lock order:
  /// state_mu_ before the exec gate inside ReplaceTable (RefreshCatalog);
  /// commit threads never take the exec gate.
  mutable std::mutex state_mu_;
  std::condition_variable apply_cv_;
  uint64_t next_apply_lsn_ = 1;
  std::map<std::string, TableDelta> deltas_;
  std::map<std::string, MergedSnapshot> merged_cache_;
  /// Tables whose catalog entry is behind the applied delta state.
  std::map<std::string, bool> catalog_stale_;
  DeltaStoreStats stats_;
};

}  // namespace txn
}  // namespace perfeval

#endif  // PERFEVAL_TXN_STORE_H_
