#ifndef PERFEVAL_TXN_CODEC_H_
#define PERFEVAL_TXN_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "db/value.h"

namespace perfeval {
namespace txn {

/// Little-endian byte-stream primitives shared by the WAL record format
/// and the checkpoint image. Nothing here trusts its input: decoding goes
/// through ByteCursor, whose reads are bounds-checked and which turns any
/// overrun into a sticky "bad" state instead of undefined behavior — the
/// CRC catches random damage, the cursor catches everything else.

inline void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

inline void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

inline void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

inline void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked little-endian read cursor over an immutable buffer.
class ByteCursor {
 public:
  explicit ByteCursor(std::string_view data) : data_(data) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && pos_ == data_.size(); }

  /// Marks the cursor bad (decoding found a semantically invalid value,
  /// e.g. an out-of-range enum tag).
  void Poison() { ok_ = false; }

  uint8_t GetU8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(data_[pos_++]);
  }

  uint32_t GetU32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  uint64_t GetU64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  std::string GetString() {
    uint32_t len = GetU32();
    if (!Need(len)) return std::string();
    std::string s(data_.substr(pos_, len));
    pos_ += len;
    return s;
  }

 private:
  bool Need(size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// Self-describing scalar: [u8 type tag][u8 null flag][payload].
void PutValue(std::string* out, const db::Value& v);

/// Decodes one scalar; poisons the cursor on an invalid type tag.
db::Value GetValue(ByteCursor* c);

/// CRC-32 (IEEE 802.3 polynomial, reflected) — guards every WAL record
/// and the checkpoint image against torn or corrupted bytes.
uint32_t Crc32(std::string_view data);

}  // namespace txn
}  // namespace perfeval

#endif  // PERFEVAL_TXN_CODEC_H_
