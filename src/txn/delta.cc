#include "txn/delta.h"

#include <utility>

#include "common/check.h"

namespace perfeval {
namespace txn {

TableDelta::TableDelta(std::shared_ptr<const db::Table> base)
    : base_(std::move(base)),
      base_deleted_(base_->num_rows(), 0),
      insert_table_(base_->schema()) {
  PERFEVAL_CHECK(base_ != nullptr);
}

void TableDelta::ApplyInsert(const std::vector<std::vector<db::Value>>& rows) {
  for (const auto& row : rows) {
    insert_table_.AppendRow(row);
    insert_deleted_.push_back(0);
    insert_rowids_.push_back(next_rowid_++);
  }
}

Status TableDelta::ValidateDelete(
    const std::vector<uint32_t>& base_rows,
    const std::vector<uint32_t>& insert_rows) const {
  for (uint32_t r : base_rows) {
    if (r >= base_deleted_.size()) {
      return Status::DataLoss("delete targets base row " + std::to_string(r) +
                              " beyond " + std::to_string(base_deleted_.size()));
    }
    if (base_deleted_[r]) {
      return Status::Aborted("base row " + std::to_string(r) +
                             " already deleted");
    }
  }
  for (uint32_t r : insert_rows) {
    if (r >= insert_deleted_.size()) {
      return Status::DataLoss("delete targets insert row " +
                              std::to_string(r) + " beyond " +
                              std::to_string(insert_deleted_.size()));
    }
    if (insert_deleted_[r]) {
      return Status::Aborted("insert row " + std::to_string(r) +
                             " already deleted");
    }
  }
  // A single record naming the same row twice is also a double delete.
  for (size_t i = 0; i < base_rows.size(); ++i) {
    for (size_t j = i + 1; j < base_rows.size(); ++j) {
      if (base_rows[i] == base_rows[j]) {
        return Status::Aborted("base row " + std::to_string(base_rows[i]) +
                               " deleted twice in one record");
      }
    }
  }
  for (size_t i = 0; i < insert_rows.size(); ++i) {
    for (size_t j = i + 1; j < insert_rows.size(); ++j) {
      if (insert_rows[i] == insert_rows[j]) {
        return Status::Aborted("insert row " + std::to_string(insert_rows[i]) +
                               " deleted twice in one record");
      }
    }
  }
  return Status::OK();
}

Status TableDelta::ApplyDelete(const std::vector<uint32_t>& base_rows,
                               const std::vector<uint32_t>& insert_rows) {
  // Validate everything before touching anything: a rejected record must
  // leave the delta exactly as it was (per-record atomicity, identical at
  // runtime and on replay).
  PERFEVAL_RETURN_IF_ERROR(ValidateDelete(base_rows, insert_rows));
  for (uint32_t r : base_rows) {
    base_deleted_[r] = 1;
  }
  base_deleted_count_ += base_rows.size();
  for (uint32_t r : insert_rows) {
    insert_deleted_[r] = 1;
  }
  insert_deleted_count_ += insert_rows.size();
  return Status::OK();
}

MergedSnapshot TableDelta::BuildMerged() const {
  MergedSnapshot out;
  out.table = std::make_shared<db::Table>(base_->schema());
  out.table->ReserveRows(num_live_rows());
  out.origins.reserve(num_live_rows());
  size_t cols = base_->num_columns();
  std::vector<db::Value> row(cols);
  for (size_t r = 0; r < base_->num_rows(); ++r) {
    if (base_deleted_[r]) {
      continue;
    }
    for (size_t c = 0; c < cols; ++c) {
      row[c] = base_->ValueAt(r, c);
    }
    out.table->AppendRow(row);
    out.origins.push_back({false, static_cast<uint32_t>(r)});
  }
  for (size_t r = 0; r < insert_table_.num_rows(); ++r) {
    if (insert_deleted_[r]) {
      continue;
    }
    for (size_t c = 0; c < cols; ++c) {
      row[c] = insert_table_.ValueAt(r, c);
    }
    out.table->AppendRow(row);
    out.origins.push_back({true, static_cast<uint32_t>(r)});
  }
  return out;
}

Status TableDelta::CheckIntegrity() const {
  if (base_deleted_.size() != base_->num_rows()) {
    return Status::DataLoss("base delete bitmap covers " +
                            std::to_string(base_deleted_.size()) +
                            " rows, base has " +
                            std::to_string(base_->num_rows()));
  }
  if (insert_deleted_.size() != insert_table_.num_rows() ||
      insert_rowids_.size() != insert_table_.num_rows()) {
    return Status::DataLoss("insert-side bitmap/rowid length mismatch");
  }
  size_t base_pop = 0;
  for (uint8_t b : base_deleted_) {
    if (b > 1) {
      return Status::DataLoss("base delete bitmap holds a non-boolean flag");
    }
    base_pop += b;
  }
  if (base_pop != base_deleted_count_) {
    return Status::DataLoss(
        "base delete bitmap popcount " + std::to_string(base_pop) +
        " != counter " + std::to_string(base_deleted_count_) +
        " (a row was marked deleted twice)");
  }
  size_t insert_pop = 0;
  for (uint8_t b : insert_deleted_) {
    if (b > 1) {
      return Status::DataLoss("insert delete bitmap holds a non-boolean flag");
    }
    insert_pop += b;
  }
  if (insert_pop != insert_deleted_count_) {
    return Status::DataLoss(
        "insert delete bitmap popcount " + std::to_string(insert_pop) +
        " != counter " + std::to_string(insert_deleted_count_) +
        " (a row was marked deleted twice)");
  }
  for (size_t i = 1; i < insert_rowids_.size(); ++i) {
    if (insert_rowids_[i] <= insert_rowids_[i - 1]) {
      return Status::DataLoss("insert row ids not strictly increasing at " +
                              std::to_string(i));
    }
  }
  if (!insert_rowids_.empty() && insert_rowids_.back() >= next_rowid_) {
    return Status::DataLoss("insert row id counter behind assigned ids");
  }
  return Status::OK();
}

void TableDelta::Compact() {
  if (insert_deleted_count_ == 0) {
    return;
  }
  db::Table compacted(base_->schema());
  compacted.ReserveRows(insert_table_.num_rows() - insert_deleted_count_);
  std::vector<uint64_t> rowids;
  rowids.reserve(insert_table_.num_rows() - insert_deleted_count_);
  size_t cols = insert_table_.num_columns();
  std::vector<db::Value> row(cols);
  for (size_t r = 0; r < insert_table_.num_rows(); ++r) {
    if (insert_deleted_[r]) {
      continue;
    }
    for (size_t c = 0; c < cols; ++c) {
      row[c] = insert_table_.ValueAt(r, c);
    }
    compacted.AppendRow(row);
    rowids.push_back(insert_rowids_[r]);
  }
  insert_table_ = std::move(compacted);
  insert_rowids_ = std::move(rowids);
  insert_deleted_.assign(insert_table_.num_rows(), 0);
  insert_deleted_count_ = 0;
}

void TableDelta::Encode(std::string* out) const {
  // Deleted base rows as a sparse position list: checkpoints stay
  // proportional to the delta, not the base.
  PutU64(out, static_cast<uint64_t>(base_->num_rows()));
  PutU32(out, static_cast<uint32_t>(base_deleted_count_));
  for (size_t r = 0; r < base_deleted_.size(); ++r) {
    if (base_deleted_[r]) {
      PutU32(out, static_cast<uint32_t>(r));
    }
  }
  PutU64(out, next_rowid_);
  PutU32(out, static_cast<uint32_t>(insert_table_.num_rows()));
  size_t cols = insert_table_.num_columns();
  PutU32(out, static_cast<uint32_t>(cols));
  for (size_t r = 0; r < insert_table_.num_rows(); ++r) {
    PutU8(out, insert_deleted_[r]);
    PutU64(out, insert_rowids_[r]);
    for (size_t c = 0; c < cols; ++c) {
      PutValue(out, insert_table_.ValueAt(r, c));
    }
  }
}

Result<TableDelta> TableDelta::Decode(ByteCursor* c,
                                      std::shared_ptr<const db::Table> base) {
  TableDelta delta(std::move(base));
  uint64_t base_rows = c->GetU64();
  if (base_rows != delta.base_->num_rows()) {
    return Status::DataLoss("checkpoint base row count " +
                            std::to_string(base_rows) +
                            " != pristine base " +
                            std::to_string(delta.base_->num_rows()));
  }
  uint32_t num_deleted = c->GetU32();
  for (uint32_t i = 0; i < num_deleted && c->ok(); ++i) {
    uint32_t r = c->GetU32();
    if (r >= delta.base_deleted_.size() || delta.base_deleted_[r]) {
      return Status::DataLoss("checkpoint base delete list invalid");
    }
    delta.base_deleted_[r] = 1;
    ++delta.base_deleted_count_;
  }
  uint64_t next_rowid = c->GetU64();
  uint32_t num_inserts = c->GetU32();
  uint32_t cols = c->GetU32();
  if (c->ok() && cols != delta.base_->num_columns()) {
    return Status::DataLoss("checkpoint column count mismatch");
  }
  std::vector<db::Value> row(cols);
  for (uint32_t r = 0; r < num_inserts && c->ok(); ++r) {
    uint8_t deleted = c->GetU8();
    uint64_t rowid = c->GetU64();
    for (uint32_t j = 0; j < cols && c->ok(); ++j) {
      row[j] = GetValue(c);
    }
    if (!c->ok()) {
      break;
    }
    if (deleted > 1) {
      return Status::DataLoss("checkpoint insert deleted flag invalid");
    }
    for (uint32_t j = 0; j < cols; ++j) {
      if (row[j].type() != delta.base_->schema().column(j).type) {
        return Status::DataLoss("checkpoint insert row type mismatch");
      }
    }
    delta.insert_table_.AppendRow(row);
    delta.insert_deleted_.push_back(deleted);
    delta.insert_deleted_count_ += deleted;
    delta.insert_rowids_.push_back(rowid);
  }
  delta.next_rowid_ = next_rowid;
  if (!c->ok()) {
    return Status::DataLoss("checkpoint delta truncated or corrupt");
  }
  Status integrity = delta.CheckIntegrity();
  if (!integrity.ok()) {
    return integrity;
  }
  return delta;
}

void TableDelta::CorruptForTest(Corruption kind) {
  switch (kind) {
    case Corruption::kDeleteCountMismatch:
      // Mark a row deleted behind the counter's back — the state a
      // double-marking bug would leave.
      PERFEVAL_CHECK(!base_deleted_.empty());
      base_deleted_[0] = 1;
      break;
    case Corruption::kRowIdOrder:
      PERFEVAL_CHECK(insert_rowids_.size() >= 2);
      std::swap(insert_rowids_[0], insert_rowids_[1]);
      break;
  }
}

}  // namespace txn
}  // namespace perfeval
