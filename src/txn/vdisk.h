#ifndef PERFEVAL_TXN_VDISK_H_
#define PERFEVAL_TXN_VDISK_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>

#include "db/storage.h"

namespace perfeval {
namespace txn {

/// Thrown by VirtualDisk when an armed crash point fires: the simulated
/// process dies mid-write. Not a QueryError — nothing about the query was
/// wrong; the machine went away. The crash-point fuzzer catches it at the
/// top of a scenario, reopens the disk, and recovers.
class CrashException : public std::runtime_error {
 public:
  CrashException() : std::runtime_error("simulated crash") {}
};

/// The write-path counterpart of the read path's simulated disk
/// (db::StorageManager): a set of named byte files with explicit
/// durability. Substitutes a real filesystem the same way DiskModel
/// substitutes a physical drive — deterministic, seedable, and with the
/// one property a recovery protocol is actually built against:
///
///   data is durable only after Sync(); anything appended since the last
///   Sync() may survive a crash only as a prefix (a torn write), chosen
///   by the crash seed.
///
/// Rename() and Remove() model journaled metadata operations: atomic and
/// immediately durable (either the old name or the new name exists after
/// a crash, never a half state) — the standard contract checkpoint
/// installation relies on.
///
/// Crash-point injection: ArmCrash(k) makes the k-th subsequent mutating
/// operation (append/truncate/sync/rename/remove — each is one "site")
/// throw CrashException *instead of* executing. After a crash every
/// further operation throws too (the process is dead); Reopen() settles
/// the surviving image (durable bytes plus a seeded torn prefix of any
/// unsynced tail) and the disk is usable again, as if remounted.
///
/// Accounting: appends and fsyncs are charged through the same DiskModel
/// as page reads, into the write fields of db::StorageStats — an fsync
/// pays one seek plus transfer time for the unsynced bytes it makes
/// durable, which is what makes group commit measurable.
///
/// Thread safety: every method serializes on one internal mutex.
class VirtualDisk {
 public:
  explicit VirtualDisk(db::DiskModel model = db::DiskModel());

  VirtualDisk(const VirtualDisk&) = delete;
  VirtualDisk& operator=(const VirtualDisk&) = delete;

  // ---- Mutating operations (each is one crash site) ----

  /// Appends bytes to `file` (created if absent). Volatile until Sync().
  void Append(const std::string& file, std::string_view data);

  /// Truncates `file` to `new_size` logical bytes. Volatile until Sync().
  void Truncate(const std::string& file, size_t new_size);

  /// Makes `file`'s current logical content durable.
  void Sync(const std::string& file);

  /// Atomically and durably renames `from` to `to` (replacing `to`).
  /// The volatile view moves with the durable one.
  void Rename(const std::string& from, const std::string& to);

  /// Durably removes `file`; no-op when absent.
  void Remove(const std::string& file);

  // ---- Reads (never crash sites) ----

  bool Exists(const std::string& file) const;
  /// Logical (volatile) content — what the running process observes.
  std::string ReadAll(const std::string& file) const;
  size_t Size(const std::string& file) const;

  // ---- Crash machinery ----

  /// Arms a crash at mutating operation number `op_index` (0-based,
  /// counted from construction or the last Reopen()). Negative disarms.
  void ArmCrash(int64_t op_index, uint64_t tear_seed);

  /// Mutating operations performed since construction / last Reopen().
  int64_t op_count() const;

  bool crashed() const;

  /// Settles the post-crash image: each file keeps its durable content
  /// plus a seeded-length prefix of its unsynced tail (the torn write).
  /// Clears the crashed state, disarms the crash point, and resets the
  /// operation counter. Also callable on a healthy disk (volatile data
  /// is lost, like a machine powered off without sync).
  void Reopen();

  /// Write accounting (read fields stay zero). Thread-safe copy.
  db::StorageStats stats() const;
  void ResetStats();

 private:
  struct File {
    std::string durable;    ///< content as of the last Sync().
    std::string volatile_;  ///< current logical content.
  };

  /// Counts one mutating operation and fires the armed crash point.
  /// Returns normally when the operation should proceed.
  void CountOpOrCrash();

  db::DiskModel model_;
  mutable std::mutex mu_;
  std::map<std::string, File> files_;
  int64_t op_count_ = 0;
  int64_t crash_at_ = -1;
  uint64_t tear_seed_ = 0;
  bool crashed_ = false;
  db::StorageStats stats_;
};

}  // namespace txn
}  // namespace perfeval

#endif  // PERFEVAL_TXN_VDISK_H_
