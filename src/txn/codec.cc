#include "txn/codec.h"

#include <array>
#include <cstring>

namespace perfeval {
namespace txn {
namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

void PutValue(std::string* out, const db::Value& v) {
  PutU8(out, static_cast<uint8_t>(v.type()));
  PutU8(out, v.is_null() ? 1 : 0);
  if (v.is_null()) {
    return;
  }
  switch (v.type()) {
    case db::DataType::kInt64:
      PutU64(out, static_cast<uint64_t>(v.AsInt64()));
      break;
    case db::DataType::kDouble: {
      double d = v.AsDouble();
      uint64_t bits = 0;
      std::memcpy(&bits, &d, sizeof(bits));
      PutU64(out, bits);
      break;
    }
    case db::DataType::kString:
      PutString(out, v.AsString());
      break;
    case db::DataType::kDate:
      PutU64(out, static_cast<uint64_t>(static_cast<int64_t>(v.AsDate())));
      break;
  }
}

db::Value GetValue(ByteCursor* c) {
  uint8_t type_tag = c->GetU8();
  uint8_t null_tag = c->GetU8();
  if (type_tag > static_cast<uint8_t>(db::DataType::kDate) || null_tag > 1) {
    c->Poison();
    return db::Value();
  }
  db::DataType type = static_cast<db::DataType>(type_tag);
  if (null_tag != 0) {
    return db::Value::Null(type);
  }
  switch (type) {
    case db::DataType::kInt64:
      return db::Value::Int64(static_cast<int64_t>(c->GetU64()));
    case db::DataType::kDouble: {
      uint64_t bits = c->GetU64();
      double d = 0;
      std::memcpy(&d, &bits, sizeof(d));
      return db::Value::Double(d);
    }
    case db::DataType::kString:
      return db::Value::String(c->GetString());
    case db::DataType::kDate:
      return db::Value::Date(
          static_cast<int32_t>(static_cast<int64_t>(c->GetU64())));
  }
  return db::Value();
}

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  uint32_t c = 0xFFFFFFFFu;
  for (char ch : data) {
    c = kTable[(c ^ static_cast<uint8_t>(ch)) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace txn
}  // namespace perfeval
