#include "txn/crashfuzz.h"

#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/random.h"
#include "db/database.h"
#include "db/reference.h"
#include "txn/store.h"
#include "txn/vdisk.h"

namespace perfeval {
namespace txn {
namespace {

// ---- Fixture: a small two-table database, fully deterministic ----

const char* const kTables[] = {"items", "tags"};

db::Schema ItemsSchema() {
  return db::Schema({{"id", db::DataType::kInt64},
                     {"val", db::DataType::kInt64},
                     {"price", db::DataType::kDouble},
                     {"name", db::DataType::kString}});
}

db::Schema TagsSchema() {
  return db::Schema(
      {{"id", db::DataType::kInt64}, {"tag", db::DataType::kString}});
}

std::vector<std::vector<db::Value>> BaseItemRows() {
  std::vector<std::vector<db::Value>> rows;
  for (int64_t i = 0; i < 16; ++i) {
    rows.push_back({db::Value::Int64(i), db::Value::Int64(i % 7),
                    db::Value::Double(i * 1.5),
                    db::Value::String("base" + std::to_string(i))});
  }
  return rows;
}

std::vector<std::vector<db::Value>> BaseTagRows() {
  std::vector<std::vector<db::Value>> rows;
  for (int64_t i = 0; i < 8; ++i) {
    rows.push_back({db::Value::Int64(i),
                    db::Value::String("tag" + std::to_string(i % 3))});
  }
  return rows;
}

std::unique_ptr<db::Database> MakeFixtureDb() {
  auto database = std::make_unique<db::Database>();
  auto items = std::make_shared<db::Table>(ItemsSchema());
  for (const auto& row : BaseItemRows()) {
    items->AppendRow(row);
  }
  database->RegisterTable("items", std::move(items));
  auto tags = std::make_shared<db::Table>(TagsSchema());
  for (const auto& row : BaseTagRows()) {
    tags->AppendRow(row);
  }
  database->RegisterTable("tags", std::move(tags));
  return database;
}

// ---- Shadow model: the logical live rows of every table ----

using Shadow = std::map<std::string, std::vector<std::vector<db::Value>>>;

Shadow InitialShadow() {
  Shadow shadow;
  shadow["items"] = BaseItemRows();
  shadow["tags"] = BaseTagRows();
  return shadow;
}

/// A DELETE expressed as data, so the same predicate can run against the
/// store (as a RowPredicate) and against the shadow (over value rows).
struct DeleteSpec {
  std::string table;
  size_t col = 0;
  int64_t mod = 1;
  int64_t residue = 0;
};

RowPredicate PredFor(const DeleteSpec& spec) {
  size_t col = spec.col;
  int64_t mod = spec.mod;
  int64_t residue = spec.residue;
  return [col, mod, residue](const db::Table& table, uint32_t row) {
    return table.ValueAt(row, col).AsInt64() % mod == residue;
  };
}

/// The logical content of one committed step — applied to the shadow on
/// ack, and the ambiguity unit when a crash hits mid-commit.
struct StepEffect {
  std::vector<std::pair<std::string, std::vector<std::vector<db::Value>>>>
      inserts;
  std::vector<DeleteSpec> deletes;
};

void ApplyToShadow(Shadow* shadow, const StepEffect& effect) {
  // Deletes resolve against pre-transaction state, so they cannot touch
  // the same step's inserts: apply them first, exactly like the store.
  for (const DeleteSpec& spec : effect.deletes) {
    auto& rows = (*shadow)[spec.table];
    std::vector<std::vector<db::Value>> kept;
    kept.reserve(rows.size());
    for (auto& row : rows) {
      if (row[spec.col].AsInt64() % spec.mod == spec.residue) {
        continue;
      }
      kept.push_back(std::move(row));
    }
    rows = std::move(kept);
  }
  for (const auto& [table, rows] : effect.inserts) {
    auto& dest = (*shadow)[table];
    dest.insert(dest.end(), rows.begin(), rows.end());
  }
}

std::vector<std::vector<db::Value>> MarkerRows(int step, int64_t marker) {
  return {{db::Value::Int64(-(step * 10 + 1)), db::Value::Int64(marker),
           db::Value::Double(0.0), db::Value::String("never-committed")}};
}

/// The scripted step `i`: inserts into items (and periodically tags),
/// sometimes a modulus delete. All values derive from (seed, i) through
/// the workload RNG, so every run of the same options replays the same
/// script.
StepEffect MakeEffect(int i, const CrashFuzzOptions& options, Pcg32* rng) {
  StepEffect effect;
  std::vector<std::vector<db::Value>> rows;
  for (int j = 0; j < options.rows_per_insert; ++j) {
    int64_t id = 10000 + static_cast<int64_t>(i) * 100 + j;
    rows.push_back({db::Value::Int64(id),
                    db::Value::Int64(rng->NextInRange(0, 99)),
                    db::Value::Double(i + j * 0.25),
                    db::Value::String("r" + std::to_string(i) + "_" +
                                      std::to_string(j))});
  }
  effect.inserts.emplace_back("items", std::move(rows));
  if (i % 5 == 0) {
    effect.inserts.emplace_back(
        "tags", std::vector<std::vector<db::Value>>{
                    {db::Value::Int64(20000 + i),
                     db::Value::String("t" + std::to_string(i))}});
  }
  if (rng->NextBounded(3) == 0) {
    DeleteSpec spec;
    spec.table = "items";
    spec.col = 1;  // val
    spec.mod = 5 + rng->NextBounded(5);
    spec.residue = rng->NextBounded(static_cast<uint32_t>(spec.mod));
    effect.deletes.push_back(spec);
  }
  if (i % 7 == 2) {
    DeleteSpec spec;
    spec.table = "tags";
    spec.col = 0;  // id
    spec.mod = 11;
    spec.residue = rng->NextBounded(11);
    effect.deletes.push_back(spec);
  }
  return effect;
}

/// Runs the scripted workload. Acked commits fold into `shadow`;
/// `inflight` holds the effect of the commit currently being attempted so
/// a CrashException escaping from Commit leaves the caller knowing the
/// one ambiguous step. Throws CrashException when the armed site fires.
Status RunWorkload(DeltaStore* store, const CrashFuzzOptions& options,
                   Shadow* shadow, std::optional<StepEffect>* inflight) {
  Pcg32 rng(MixSeed(options.seed, 0x5C21, 0x77));
  uint64_t hanging = store->Begin();
  int since_checkpoint = 0;
  for (int i = 0; i < options.num_commits; ++i) {
    if (i % 9 == 3) {
      // An explicitly aborted transaction: its marker rows must never
      // appear, before or after any crash.
      uint64_t t = store->Begin();
      PERFEVAL_RETURN_IF_ERROR(
          store->BufferInsert(t, "items", MarkerRows(i, -999)));
      store->Abort(t);
    }
    if (i % 10 == 5) {
      // The hanging transaction accumulates writes and never commits.
      PERFEVAL_RETURN_IF_ERROR(
          store->BufferInsert(hanging, "items", MarkerRows(i, -777)));
    }
    StepEffect effect = MakeEffect(i, options, &rng);
    uint64_t t = store->Begin();
    for (const auto& [table, rows] : effect.inserts) {
      PERFEVAL_RETURN_IF_ERROR(store->BufferInsert(t, table, rows));
    }
    for (const DeleteSpec& spec : effect.deletes) {
      PERFEVAL_RETURN_IF_ERROR(
          store->BufferDelete(t, spec.table, PredFor(spec)));
    }
    *inflight = effect;
    PERFEVAL_RETURN_IF_ERROR(store->Commit(t));
    ApplyToShadow(shadow, effect);
    inflight->reset();
    if (++since_checkpoint >= options.checkpoint_every) {
      PERFEVAL_RETURN_IF_ERROR(store->Checkpoint());
      since_checkpoint = 0;
    }
  }
  return Status::OK();
}

/// Exact, order-sensitive oracle diff of every table against the shadow.
/// Empty string == bit-identical.
std::string DiffShadow(DeltaStore* store, const Shadow& shadow) {
  for (const char* name : kTables) {
    std::shared_ptr<db::Table> actual = store->MergedTable(name);
    db::Table expected(actual->schema());
    auto it = shadow.find(name);
    if (it != shadow.end()) {
      expected.ReserveRows(it->second.size());
      for (const auto& row : it->second) {
        expected.AppendRow(row);
      }
    }
    std::string diff =
        db::DiffTables(*actual, expected, /*double_tol=*/0.0,
                       /*ignore_row_order=*/false);
    if (!diff.empty()) {
      return std::string(name) + ": " + diff;
    }
  }
  return std::string();
}

}  // namespace

Result<CrashFuzzReport> RunCrashFuzz(const CrashFuzzOptions& options) {
  CrashFuzzReport report;

  // Golden, crash-free run: records the total number of crash sites and
  // proves the workload itself converges to its shadow.
  {
    VirtualDisk disk;
    std::unique_ptr<db::Database> database = MakeFixtureDb();
    DeltaStore store(database.get(), &disk);
    Status opened = store.Open();
    if (!opened.ok()) {
      return Status::Internal("crash-free open failed: " + opened.ToString());
    }
    Shadow shadow = InitialShadow();
    std::optional<StepEffect> inflight;
    PERFEVAL_RETURN_IF_ERROR(RunWorkload(&store, options, &shadow, &inflight));
    report.total_sites = disk.op_count();
    std::string diff = DiffShadow(&store, shadow);
    if (!diff.empty()) {
      return Status::Internal("crash-free run diverged from shadow: " + diff);
    }
  }

  int stride = options.site_stride < 1 ? 1 : options.site_stride;
  for (int64_t site = 0; site < report.total_sites; site += stride) {
    ++report.sites_tested;
    VirtualDisk disk;
    Shadow shadow = InitialShadow();
    std::optional<StepEffect> inflight;
    bool crashed = false;
    {
      std::unique_ptr<db::Database> database = MakeFixtureDb();
      DeltaStore store(database.get(), &disk);
      Status opened = store.Open();
      if (!opened.ok()) {
        return Status::Internal("pre-crash open failed: " + opened.ToString());
      }
      disk.ArmCrash(site, MixSeed(options.seed, 0xC4A5,
                                  static_cast<uint64_t>(site)));
      try {
        Status ran = RunWorkload(&store, options, &shadow, &inflight);
        if (!ran.ok()) {
          return Status::Internal("workload failed at site " +
                                  std::to_string(site) + ": " +
                                  ran.ToString());
        }
      } catch (const CrashException&) {
        crashed = true;
      }
      // The store and its database die with the simulated process; only
      // the disk survives into recovery.
    }
    if (!crashed) {
      // Deterministic replay means this cannot happen below total_sites.
      return Status::Internal("site " + std::to_string(site) +
                              " did not crash");
    }
    ++report.crashes_injected;

    disk.Reopen();
    std::unique_ptr<db::Database> recovered_db = MakeFixtureDb();
    DeltaStore recovered(recovered_db.get(), &disk);
    Status rec = recovered.Open();
    auto fail = [&](const std::string& what) {
      ++report.mismatches;
      if (report.first_failure.empty()) {
        report.first_failure =
            "site " + std::to_string(site) + ": " + what;
      }
    };
    if (!rec.ok()) {
      fail("recovery failed: " + rec.ToString());
      continue;
    }
    DeltaStoreStats stats = recovered.stats();
    if (stats.torn_tail_bytes > 0) {
      ++report.torn_tails_seen;
    }
    if (stats.wal_records_replayed > 0) {
      ++report.replays_with_records;
    }
    Status integrity = recovered.CheckIntegrity();
    if (!integrity.ok()) {
      fail("integrity: " + integrity.ToString());
      continue;
    }
    // Committed state must survive exactly; the one in-flight commit may
    // be fully present or fully absent (it was appended but its ack never
    // reached the client); nothing else may exist.
    std::string diff = DiffShadow(&recovered, shadow);
    if (!diff.empty() && inflight.has_value()) {
      Shadow with_inflight = shadow;
      ApplyToShadow(&with_inflight, *inflight);
      std::string diff2 = DiffShadow(&recovered, with_inflight);
      if (!diff2.empty()) {
        fail("state matches neither acked (" + diff +
             ") nor acked+inflight (" + diff2 + ")");
        continue;
      }
    } else if (!diff.empty()) {
      fail("state differs from acked commits: " + diff);
      continue;
    }
    // The recovered store must be writable, not just readable.
    uint64_t t = recovered.Begin();
    Status buf = recovered.BufferInsert(
        t, "items",
        {{db::Value::Int64(900000 + site), db::Value::Int64(1),
          db::Value::Double(0.5), db::Value::String("post-recovery")}});
    Status committed = buf.ok() ? recovered.Commit(t) : buf;
    if (!committed.ok()) {
      fail("post-recovery commit failed: " + committed.ToString());
      continue;
    }
    ++report.recoveries_ok;
  }
  return report;
}

}  // namespace txn
}  // namespace perfeval
