#ifndef PERFEVAL_TXN_WAL_H_
#define PERFEVAL_TXN_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/value.h"
#include "txn/vdisk.h"

namespace perfeval {
namespace txn {

/// One mutation inside a committed transaction. Deletes are logged as
/// *resolved* physical row ids (pristine-base positions and delta-insert
/// positions), never predicates, so replay applies exactly what commit
/// applied without re-evaluating anything.
struct WalOp {
  enum class Kind : uint8_t { kInsert = 1, kDelete = 2 };

  Kind kind = Kind::kInsert;
  std::string table;
  /// kInsert: full rows in schema column order (self-describing values).
  std::vector<std::vector<db::Value>> rows;
  /// kDelete: row positions in the pristine base / the insert-side delta.
  std::vector<uint32_t> base_rows;
  std::vector<uint32_t> insert_rows;
};

/// One WAL record == one committed transaction (per-commit records): all
/// its ops, framed with a length and a CRC. A record is either entirely
/// durable or it is a torn tail — which is exactly the atomic-commit
/// property recovery needs.
struct WalRecord {
  uint64_t lsn = 0;
  uint64_t txn_id = 0;
  std::vector<WalOp> ops;
};

/// Serializes `record` into the on-log frame:
///   [u32 payload_len][u32 crc32(payload)][payload]
/// with a self-describing little-endian payload (lsn, txn id, ops).
std::string EncodeWalRecord(const WalRecord& record);

/// The decoded log plus what the tail looked like.
struct WalContents {
  std::vector<WalRecord> records;
  /// Bytes of a torn (incomplete or CRC-failing) final frame that were
  /// discarded. Zero when the log ends on a record boundary.
  size_t torn_tail_bytes = 0;
};

/// Reads and validates every record of `file` on `disk` (missing file ==
/// empty log). A short or CRC-failing frame at the very end is a torn
/// tail — the crash interrupted the last append — and is discarded. The
/// same damage anywhere *before* the tail cannot be explained by a torn
/// append and is unrecoverable: kDataLoss.
Result<WalContents> ReadWal(const VirtualDisk& disk, const std::string& file);

/// Appends records and makes them durable with group commit: concurrent
/// committers appending closely in time share one fsync (a leader syncs
/// up to the highest appended LSN; followers wait on it) — the classic
/// amortization that makes per-transaction durability affordable.
class WalWriter {
 public:
  WalWriter(VirtualDisk* disk, std::string file);

  /// Assigns the next LSN, frames the record and appends it to the log
  /// (volatile until Sync'd). Returns the assigned LSN.
  uint64_t Append(WalRecord record);

  /// Blocks until every record up to and including `lsn` is durable.
  void SyncUpTo(uint64_t lsn);

  /// Truncates the log to empty and makes the truncation durable
  /// (checkpoint installation). LSNs keep counting from `next_lsn`.
  void TruncateLog(uint64_t next_lsn);

  uint64_t next_lsn() const;

  /// Resets the LSN counter (recovery: continue after the replayed tail).
  void set_next_lsn(uint64_t next_lsn);

 private:
  VirtualDisk* disk_;
  std::string file_;

  mutable std::mutex mu_;
  std::condition_variable synced_cv_;
  uint64_t next_lsn_ = 1;
  uint64_t appended_lsn_ = 0;  ///< highest LSN written to the log.
  uint64_t synced_lsn_ = 0;    ///< highest LSN known durable.
  bool sync_in_flight_ = false;
  /// A crash escaped a leader's fsync: every waiter must die too (the
  /// process is gone); set before broadcasting.
  bool poisoned_ = false;
};

}  // namespace txn
}  // namespace perfeval

#endif  // PERFEVAL_TXN_WAL_H_
