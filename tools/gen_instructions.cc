// Generates REPRODUCING.md from the registered experiment suite — the
// paper's slide-216 checklist (installation, per experiment: script, where
// results land, how long it takes), produced from the same registry the
// tests validate so the document cannot drift from the binaries.
//
// Usage: gen_instructions [output-path]   (default: REPRODUCING.md)

#include <cstdio>
#include <fstream>

#include "repro/suite.h"

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "REPRODUCING.md";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  out << perfeval::repro::PerfevalSuite().InstructionsMarkdown();
  std::printf("wrote %s (%zu experiments)\n", path,
              perfeval::repro::PerfevalSuite().experiments().size());
  return 0;
}
