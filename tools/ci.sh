#!/usr/bin/env bash
# CI entry point — the same jobs .github/workflows/ci.yml runs, invocable
# locally: tools/ci.sh
#   [tier1|asan|oracle|serve|parallel|shard|opt|txn|engine|all].
# Each job uses its own build directory so they can be cached independently.
set -euo pipefail

cd "$(dirname "$0")/.."

job="${1:-all}"
jobs_flag="-j$(nproc)"

tier1() {
  # The tier-1 gate: default Release build + the full test suite.
  cmake -B build -S .
  cmake --build build "$jobs_flag"
  ctest --test-dir build --output-on-failure "$jobs_flag"
}

asan() {
  # Memory job: ASan+UBSan over the whole suite. Catches the class of bug
  # checked mode asserts against (OOB selection vectors, wrapping
  # arithmetic) at the C++ level rather than the relational level.
  cmake -B build-asan -S . -DPERFEVAL_SANITIZE=address
  cmake --build build-asan "$jobs_flag"
  ctest --test-dir build-asan --output-on-failure "$jobs_flag"
}

oracle() {
  # Differential-oracle smoke: all 22 TPC-H plans + 200+ fuzzed queries on
  # the engine (exec modes x threads x join algos) vs. the row-at-a-time
  # reference interpreter, plus the fuzz/metamorphic suite in sql_test.
  cmake -B build -S .
  cmake --build build "$jobs_flag" --target oracle_test sql_test
  ctest --test-dir build --output-on-failure -L oracle
  ctest --test-dir build --output-on-failure -R 'SqlFuzzTest'
}

serve() {
  # Serving smoke: the query-service/load-generator suite (replay
  # determinism, overload policies, deadlines) plus the A8 bench's fast
  # path, then the same `serve`-labelled tests under ThreadSanitizer —
  # the admission queue and response fulfillment are the newest
  # concurrency surface in the tree.
  cmake -B build -S .
  cmake --build build "$jobs_flag" --target serve_test bench_service_latency
  ctest --test-dir build --output-on-failure -L serve
  cmake -B build-tsan -S . -DPERFEVAL_SANITIZE=thread
  cmake --build build-tsan "$jobs_flag" --target serve_test
  # -R keeps the TSan pass to the serve_test cases (the bench smoke under
  # the same label is built only in the Release tree).
  ctest --test-dir build-tsan --output-on-failure -L serve -R 'QueryService|LoadGenerator|LatencyHistogram|BuildSchedule'
}

parallel() {
  # Parallel-execution job: the morsel-parallel determinism and adaptive-
  # dispatch suite (db_parallel_test), the ParallelFor accounting tests
  # (sched_test), the A7 bench's --smoke fast path (adaptive dispatch +
  # cross-thread determinism check + bootstrap CIs end to end), then the
  # same suites under ThreadSanitizer — morsel claiming and the padded
  # per-worker stats are the shared-memory hot spots.
  cmake -B build -S .
  cmake --build build "$jobs_flag" --target db_parallel_test sched_test bench_parallel_scan
  ctest --test-dir build --output-on-failure -L db
  ctest --test-dir build --output-on-failure -L sched
  cmake -B build-tsan -S . -DPERFEVAL_SANITIZE=thread
  cmake --build build-tsan "$jobs_flag" --target db_parallel_test sched_test
  # -R keeps the TSan pass to the test cases (the bench smoke under the
  # same label is built only in the Release tree).
  ctest --test-dir build-tsan --output-on-failure -L db -R 'Parallel|Morsel|Adaptive'
  ctest --test-dir build-tsan --output-on-failure -L sched -R 'ParallelFor'
}

shard() {
  # Scale-out job: the shard-cluster suite (planner site annotation, all
  # 22 queries sharded-vs-single-node with bit-identical stats at shard
  # counts {1,2,4,8}, straggler attribution, front-end quotas) plus the
  # A10 bench's fast path in Release, then the concurrent scatter-gather
  # test under ThreadSanitizer — fragment fan-out over the per-shard
  # services is the newest concurrency surface in the tree.
  cmake -B build -S .
  cmake --build build "$jobs_flag" --target shard_test bench_shard_scaleout
  ctest --test-dir build --output-on-failure -L shard
  cmake -B build-tsan -S . -DPERFEVAL_SANITIZE=thread
  cmake --build build-tsan "$jobs_flag" --target shard_test
  # -R keeps the TSan pass to the shard_test cases (the bench smoke under
  # the same label is built only in the Release tree).
  ctest --test-dir build-tsan --output-on-failure -L shard -R 'ShardPlanner|ShardCluster|ShardedTpch'
}

opt() {
  # Cost-based-optimizer job: the statistics/estimator/DP-rewrite suite
  # and the strict bench-knob parsing in Release plus the A11 bench's
  # fast path (calibration + Q-error + who-wins end to end), then the
  # same `opt`-labelled tests under ASan+UBSan — the rewrite allocates
  # and re-wires plan trees, exactly where a lifetime bug would hide.
  cmake -B build -S .
  cmake --build build "$jobs_flag" --target opt_test bench_util_test bench_optimizer
  ctest --test-dir build --output-on-failure -L opt
  cmake -B build-asan -S . -DPERFEVAL_SANITIZE=address
  cmake --build build-asan "$jobs_flag" --target opt_test
  # -R keeps the ASan pass to the opt_test cases (the bench smoke under
  # the same label is built only in the Release tree).
  ctest --test-dir build-asan --output-on-failure -L opt -R 'TableStats|Estimator|CostModel|Optimize'
}

txn() {
  # Write-path job: the WAL/checkpoint/recovery suite, the exhaustive
  # crash-point fuzz sweep and the A9 bench's fast path in Release, then
  # the crash fuzzer again under ASan+UBSan (recovery code paths shuffle
  # buffers around torn/corrupt frames — exactly where an OOB hides), and
  # the concurrent ingest+scan test under ThreadSanitizer.
  cmake -B build -S .
  cmake --build build "$jobs_flag" --target txn_test bench_write_path
  ctest --test-dir build --output-on-failure -L txn
  cmake -B build-asan -S . -DPERFEVAL_SANITIZE=address
  cmake --build build-asan "$jobs_flag" --target txn_test
  ctest --test-dir build-asan --output-on-failure -R 'CrashFuzz|Wal|VirtualDisk|TableDelta'
  cmake -B build-tsan -S . -DPERFEVAL_SANITIZE=thread
  cmake --build build-tsan "$jobs_flag" --target txn_test
  # -R keeps the TSan pass to the txn_test cases (the bench smoke under
  # the same label is built only in the Release tree).
  ctest --test-dir build-tsan --output-on-failure -L txn -R 'DeltaStore'
}

engine() {
  # Multi-backend job: the engine suite (row layout pack/unpack, pager
  # I/O accounting, row-store determinism/overflow contracts) plus the
  # A12 faceoff bench's fast path in Release, then engine_test again
  # under ASan+UBSan (the packed-row kernels do raw stride arithmetic —
  # exactly where an OOB hides), and the concurrent-Execute test under
  # ThreadSanitizer (shared catalog + pager behind concurrent queries).
  cmake -B build -S .
  cmake --build build "$jobs_flag" --target engine_test bench_backend_faceoff
  ctest --test-dir build --output-on-failure -L engine
  cmake -B build-asan -S . -DPERFEVAL_SANITIZE=address
  cmake --build build-asan "$jobs_flag" --target engine_test
  # -R keeps the ASan pass to the engine_test cases (the bench smoke
  # under the same label is built only in the Release tree).
  ctest --test-dir build-asan --output-on-failure -L engine -R 'RowLayout|RowPager|RowBackend|BackendFactory|BackendKind|ColumnarBackend'
  cmake -B build-tsan -S . -DPERFEVAL_SANITIZE=thread
  cmake --build build-tsan "$jobs_flag" --target engine_test
  ctest --test-dir build-tsan --output-on-failure -L engine -R 'ConcurrentExecute'
}

case "$job" in
  tier1)    tier1 ;;
  asan)     asan ;;
  oracle)   oracle ;;
  serve)    serve ;;
  parallel) parallel ;;
  shard)    shard ;;
  opt)      opt ;;
  txn)      txn ;;
  engine)   engine ;;
  all)      tier1; oracle; serve; parallel; shard; opt; txn; engine; asan ;;
  *)
    echo "usage: tools/ci.sh [tier1|asan|oracle|serve|parallel|shard|opt|txn|engine|all]" >&2
    exit 2
    ;;
esac
