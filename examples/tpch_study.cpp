// A complete mini performance study on the TPC-H workload, following the
// paper's checklist end to end:
//  - documented hardware/software environment (slides 149-156),
//  - documented run protocol (slide 32),
//  - per-query timings with confidence intervals (slide 142),
//  - EXPLAIN and per-operator TRACE for one query (slides 52-54, "find
//    out where the time goes"),
//  - machine-readable results + provenance manifest (slides 198-217).
//
// Usage: tpch_study [-DscaleFactor=0.02] [-Dqueries=1,3,6,18]

#include <cstdio>

#include "common/string_util.h"
#include "core/environment.h"
#include "report/csv.h"
#include "report/table_format.h"
#include "repro/manifest.h"
#include "repro/properties.h"
#include "stats/confidence.h"
#include "workload/tpch_gen.h"
#include "workload/tpch_queries.h"

using namespace perfeval;  // NOLINT(build/namespaces) example binary.

int main(int argc, char** argv) {
  repro::Properties props;
  props.SetDefault("scaleFactor", "0.02");
  props.SetDefault("queries", "1,3,6,18");
  props.SetDefault("repetitions", "5");
  (void)props.OverrideFromArgs(argc, argv);
  props.OverrideFromEnv("PERFEVAL_");

  core::EnvironmentSpec env = core::CaptureEnvironment();
  std::printf("== TPC-H mini study ==\n%s\n", env.ToReportString().c_str());

  double sf = props.GetDouble("scaleFactor", 0.02);
  int reps = static_cast<int>(props.GetInt("repetitions", 5));
  db::Database database;
  workload::TpchGenerator gen(sf);
  gen.LoadAll(&database);
  std::printf("scale factor %.3g; protocol: 1 warm-up, %d measured runs, "
              "mean with 95%% CI\n\n", sf, reps);

  report::TextTable table;
  table.SetHeader({"Q", "name", "rows", "mean (ms)", "95% CI +/-"});
  table.SetAlignments({report::Align::kRight, report::Align::kLeft,
                       report::Align::kRight, report::Align::kRight,
                       report::Align::kRight});
  report::CsvWriter csv({"query", "mean_ms", "ci_half_width_ms"});

  for (const std::string& q_text :
       Split(props.GetOr("queries", "1,3,6,18"), ',')) {
    int q = static_cast<int>(ParseInt64(q_text).value_or(0));
    if (q < 1 || q > 22) {
      std::fprintf(stderr, "skipping bad query id '%s'\n", q_text.c_str());
      continue;
    }
    const workload::TpchQuery& query = workload::GetTpchQuery(q);
    db::PlanPtr plan = query.Build(database);
    (void)database.Run(plan);  // warm-up.
    std::vector<double> samples;
    size_t result_rows = 0;
    for (int i = 0; i < reps; ++i) {
      db::QueryResult result = database.Run(plan);
      samples.push_back(result.ServerRealMs());
      result_rows = result.table->num_rows();
    }
    stats::ConfidenceInterval ci =
        stats::MeanConfidenceInterval(samples, 0.95);
    table.AddRow({StrFormat("%d", q), query.name,
                  StrFormat("%zu", result_rows),
                  StrFormat("%.2f", ci.mean),
                  StrFormat("%.2f", ci.HalfWidth())});
    csv.AddNumericRow({static_cast<double>(q), ci.mean, ci.HalfWidth()});
  }
  std::printf("%s\n", table.ToString().c_str());

  // CSI on Q1: where does the time go?
  db::PlanPtr q1 = workload::GetTpchQuery(1).Build(database);
  std::printf("EXPLAIN Q1:\n%s\n", db::Explain(q1).c_str());
  db::QueryResult traced = database.Run(q1);
  std::printf("TRACE Q1:\n%s\n", traced.profile.ToString().c_str());

  // Repeatability artifacts.
  std::string csv_path = "bench_results/tpch_study.csv";
  if (!csv.WriteToFile(csv_path).ok()) {
    std::fprintf(stderr, "failed to write %s\n", csv_path.c_str());
    return 1;
  }
  repro::RunManifest manifest(
      "tpch_study", "hot runs: 1 warm-up, mean of repeated runs, 95% CI");
  manifest.set_environment(env);
  manifest.set_properties(props);
  manifest.AddOutput(csv_path);
  if (!manifest.WriteToFile("bench_results/tpch_study_manifest.txt").ok()) {
    return 1;
  }
  std::printf("results: %s (+ manifest)\n", csv_path.c_str());
  return 0;
}
