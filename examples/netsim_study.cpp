// Memory-interconnect study on the netsim substrate: sweep the system
// size N for both networks under both traffic patterns, and show where
// the cheap Omega network is good enough and where the crossbar's cost is
// justified — an example of "describe the picture at large, highlight
// interesting details" (paper, slide 18).

#include <cstdio>

#include "common/string_util.h"
#include "core/metrics.h"
#include "report/gnuplot.h"
#include "report/table_format.h"
#include "netsim/simulator.h"

using namespace perfeval;  // NOLINT(build/namespaces) example binary.

int main() {
  std::printf("== interconnect scaling study ==\n");
  std::printf(
      "cost reminder: a crossbar needs N^2 crosspoints, an Omega network "
      "N/2*log2(N) 2x2 switches.\n\n");

  report::TextTable table;
  table.SetHeader({"N", "pattern", "T crossbar", "T omega", "T bus",
                   "omega/crossbar", "crossbar cost", "omega cost"});
  core::Series crossbar_random;
  crossbar_random.name = "crossbar random";
  core::Series omega_random;
  omega_random.name = "omega random";
  core::Series crossbar_matrix;
  crossbar_matrix.name = "crossbar matrix";
  core::Series omega_matrix;
  omega_matrix.name = "omega matrix";

  for (int n : {4, 8, 16, 32, 64}) {
    netsim::SimulationConfig config;
    config.num_processors = n;
    config.measured_cycles = 3000;
    for (const char* pattern : {"Random", "Matrix"}) {
      netsim::NetworkMetrics crossbar =
          netsim::SimulateCell("Crossbar", pattern, config);
      netsim::NetworkMetrics omega =
          netsim::SimulateCell("Omega", pattern, config);
      netsim::NetworkMetrics bus =
          netsim::SimulateCell("Bus", pattern, config);
      int log2n = 0;
      while ((1 << log2n) < n) {
        ++log2n;
      }
      table.AddRow({std::to_string(n), pattern,
                    StrFormat("%.3f", crossbar.throughput),
                    StrFormat("%.3f", omega.throughput),
                    StrFormat("%.3f", bus.throughput),
                    StrFormat("%.2f",
                              omega.throughput / crossbar.throughput),
                    StrFormat("%d crosspoints", n * n),
                    StrFormat("%d switches", n / 2 * log2n)});
      if (std::string(pattern) == "Random") {
        crossbar_random.Append(n, crossbar.throughput);
        omega_random.Append(n, omega.throughput);
      } else {
        crossbar_matrix.Append(n, crossbar.throughput);
        omega_matrix.Append(n, omega.throughput);
      }
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "reading: the Omega network gives up a bounded fraction of "
      "throughput for a hardware cost that grows as N log N instead of "
      "N^2 — the larger the system, the better that trade looks.\n");

  report::ChartSpec chart;
  chart.title = "Throughput vs system size";
  chart.x_label = "processors / memory modules (N)";
  chart.y_label = "throughput (grants/processor/cycle) fraction";
  chart.logscale_x = true;
  chart.series = {crossbar_random, omega_random, crossbar_matrix,
                  omega_matrix};
  if (report::WriteChart(chart, "bench_results/netsim_study").ok()) {
    std::printf("wrote bench_results/netsim_study.{csv,gnu}\n");
  }
  return 0;
}
