// An interactive SQL shell over the TPC-H database — the "low setup
// threshold; easy to run" property the paper wants from micro-benchmark
// tooling (slide 11), plus the DBMS-provided timing and introspection it
// recommends using (slides 28-29, 52): every query prints server/client
// times MonetDB-style, EXPLAIN shows plans, and special commands expose
// the buffer pool and execution mode.
//
// Usage: sql_shell [-DscaleFactor=0.01]   (reads statements from stdin)
//
// Special commands:
//   \mode debug|optimized    switch execution mode
//   \threads N               set morsel-parallel worker threads
//   \join ALGO [BITS]        set equi-join algorithm: legacy|hash|radix
//                            |merge; optional radix fan-out bits (0=auto)
//   \check on|off            checked execution: operators assert their
//                            invariants (costs O(input) per operator)
//   \opt on|off              cost-based optimization: re-order equi-join
//                            regions and pin per-join algorithms from
//                            table stats (results stay bit-identical;
//                            EXPLAIN shows the optimized tree)
//   \backend col|row         execution backend: the columnar vectorized
//                            engine or the packed-tuple row store
//                            (engine::RowStoreBackend); results are
//                            oracle-identical, timings are not
//   \timing on|off           route queries through the serve::QueryService
//                            and print the server-side split (queue wait /
//                            exec / total) alongside client wall time
//   \flush                   flush the buffer pool (next run is cold)
//   \trace <sql>             run and print the per-operator trace
//   \tables                  list catalog tables
//   \load <name> <file.csv>  load a CSV (types inferred) as table <name>
//   \wal                     show write-path stats (commits, WAL, fsyncs)
//   \checkpoint              compact committed deltas, truncate the WAL
//   \q                       quit
//
// INSERT INTO t VALUES (...) and DELETE FROM t [WHERE ...] run through
// the write path (txn::DeltaStore over a virtual disk): each statement is
// one auto-commit transaction — WAL append, fsync, apply — and later
// SELECTs see the committed rows via the catalog refresh hook.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "common/string_util.h"
#include "core/timer.h"
#include "db/error.h"
#include "engine/row_backend.h"
#include "repro/properties.h"
#include "db/csv_loader.h"
#include "serve/service.h"
#include "sql/planner.h"
#include "txn/dml.h"
#include "txn/store.h"
#include "txn/vdisk.h"
#include "workload/tpch_gen.h"

using namespace perfeval;  // NOLINT(build/namespaces) example binary.

namespace {

/// The \timing service: one worker, shed beyond a short queue — a shell
/// issues one query at a time, so the split mostly shows dispatch cost,
/// but the numbers come from the same code path a loaded service reports.
std::unique_ptr<serve::QueryService> MakeTimingService(
    db::Database& database, db::ExecMode mode) {
  serve::ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 4;
  options.overload = serve::OverloadPolicy::kShed;
  options.mode = mode;
  options.sink = db::SinkKind::kFile;
  options.fingerprint_results = false;
  return std::make_unique<serve::QueryService>(&database, options);
}

/// Runs `sql_text` through the query service and prints the slide-23-style
/// split: server queue wait + execution vs. the client's wall clock.
void RunTimed(db::Database& database, serve::QueryService& service,
              const std::string& sql_text) {
  Result<sql::PlannedQuery> planned = sql::PlanQuery(sql_text, database);
  if (!planned.ok()) {
    std::printf("error: %s\n", planned.status().ToString().c_str());
    return;
  }
  if (planned->explain) {
    std::printf("%s\n", db::Explain(planned->plan).c_str());
    return;
  }
  core::WallTimer client_wall;
  serve::Request request;
  request.plan = planned->plan;
  serve::Response response = service.Execute(std::move(request));
  double client_ms = client_wall.ElapsedMs();
  if (!response.status.ok()) {
    std::printf("error: %s\n", response.status.ToString().c_str());
    return;
  }
  std::printf("%s", response.table->ToString(25).c_str());
  std::printf("%zu row(s)\n", response.table->num_rows());
  std::printf(
      "Server %.3f msec (queue wait %.3f + exec %.3f), Client %.3f msec\n",
      response.server.TotalNs() / 1e6, response.server.queue_wait_ns / 1e6,
      response.server.exec_ns / 1e6, client_ms);
}

/// Runs one SELECT through the row-store backend: plan against the shared
/// catalog, sync the backend's packed copy (folds committed write-path
/// deltas), execute row-at-a-time. Prints the same timing lines as the
/// columnar path plus the row store's finish cost (converting the packed
/// native result to a printable columnar table).
void RunRowBackend(db::Database& database,
                   engine::RowStoreBackend& backend,
                   const std::string& sql_text, db::ExecMode mode,
                   bool with_trace) {
  Result<sql::PlannedQuery> planned = sql::PlanQuery(sql_text, database);
  if (!planned.ok()) {
    std::printf("error: %s\n", planned.status().ToString().c_str());
    return;
  }
  if (planned->explain) {
    std::printf("%s\n", db::Explain(planned->plan).c_str());
    return;
  }
  backend.SyncFrom(&database);
  engine::ExecOptions options;
  options.mode = mode;
  options.threads = database.threads();
  options.check = database.check();
  core::WallTimer wall;
  try {
    engine::BackendResult result = backend.Execute(planned->plan, options);
    double client_ms = wall.ElapsedMs();
    std::printf("%s", result.table->ToString(25).c_str());
    std::printf("%zu row(s)\n", result.table->num_rows());
    std::printf(
        "Server %.3f msec (+ %.3f finish), Client %.3f msec [backend: %s]\n",
        result.ObservedServerNs() / 1e6, result.finish_ns / 1e6, client_ms,
        backend.name());
    std::printf("Pages %lld hits / %lld misses\n",
                static_cast<long long>(result.storage.page_hits),
                static_cast<long long>(result.storage.page_misses));
    if (with_trace) {
      std::printf("\n%s", result.profile.ToString().c_str());
    }
  } catch (const db::QueryError& e) {
    std::printf("error: %s\n", e.ToStatus().ToString().c_str());
  }
}

void RunAndPrint(db::Database& database, const std::string& sql_text,
                 db::ExecMode mode, bool with_trace) {
  Result<db::QueryResult> result =
      sql::RunQuery(sql_text, database, mode, db::SinkKind::kFile);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s", result->table->ToString(25).c_str());
  std::printf("%zu row(s)\n", result->table->num_rows());
  // MonetDB-style timing lines (paper, slide 29).
  std::printf("Server %.3f msec (user %.3f), Client %.3f msec\n",
              result->ServerRealMs(), result->ServerUserMs(),
              result->ClientRealMs());
  std::printf("Pages %lld hits / %lld misses\n",
              static_cast<long long>(result->storage.page_hits),
              static_cast<long long>(result->storage.page_misses));
  if (with_trace) {
    std::printf("\n%s", result->profile.ToString().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  repro::Properties props;
  props.SetDefault("scaleFactor", "0.01");
  (void)props.OverrideFromArgs(argc, argv);
  double sf = props.GetDouble("scaleFactor", 0.01);

  db::Database database;
  workload::TpchGenerator gen(sf);
  gen.LoadAll(&database);
  // The write path: INSERT/DELETE commit through a WAL on a virtual disk
  // and become visible to queries via the catalog refresh hook.
  txn::VirtualDisk disk;
  txn::DeltaStore store(&database, &disk);
  {
    Status opened = store.Open();
    if (!opened.ok()) {
      std::printf("error opening write path: %s\n",
                  opened.ToString().c_str());
      return 1;
    }
  }
  db::ExecMode mode = db::ExecMode::kOptimized;
  // Created on \timing on, recreated when \mode changes (the service binds
  // its execution mode at construction).
  std::unique_ptr<serve::QueryService> timing_service;
  bool timing_on = false;
  // Created lazily on the first \backend row; kept across switches so its
  // buffer pool stays warm (SyncFrom re-packs only changed tables).
  std::unique_ptr<engine::RowStoreBackend> row_backend;

  std::printf("perfeval SQL shell — TPC-H sf %.3g loaded. \\q to quit.\n",
              sf);
  std::string line;
  std::string statement;
  while (true) {
    std::printf("sql> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) {
      break;
    }
    std::string trimmed = Trim(line);
    if (StartsWith(trimmed, "\\")) {
      if (trimmed == "\\q") {
        break;
      }
      if (trimmed == "\\flush") {
        database.FlushCaches();
        std::printf("buffer pool flushed — next run is cold\n");
        continue;
      }
      if (trimmed == "\\tables") {
        for (const std::string& name : database.TableNames()) {
          std::printf("%-10s %8zu rows  %s\n", name.c_str(),
                      database.GetTable(name).num_rows(),
                      database.GetTable(name).schema().ToString().c_str());
        }
        continue;
      }
      if (StartsWith(trimmed, "\\mode")) {
        if (trimmed.find("debug") != std::string::npos) {
          mode = db::ExecMode::kDebug;
        } else {
          mode = db::ExecMode::kOptimized;
        }
        if (timing_on) {
          timing_service = MakeTimingService(database, mode);
        }
        std::printf("execution mode: %s\n", db::ExecModeName(mode));
        continue;
      }
      if (StartsWith(trimmed, "\\timing")) {
        std::vector<std::string> parts = Split(trimmed, ' ');
        if (parts.size() == 2 && (parts[1] == "on" || parts[1] == "off")) {
          timing_on = parts[1] == "on";
        } else if (parts.size() != 1) {
          std::printf("usage: \\timing on|off\n");
          continue;
        }
        if (timing_on && timing_service == nullptr) {
          timing_service = MakeTimingService(database, mode);
        }
        if (!timing_on) {
          timing_service.reset();
        }
        std::printf("timing (server queue/exec split): %s\n",
                    timing_on ? "on" : "off");
        continue;
      }
      if (StartsWith(trimmed, "\\threads")) {
        std::vector<std::string> parts = Split(trimmed, ' ');
        if (parts.size() == 2) {
          database.set_threads(std::atoi(parts[1].c_str()));
        } else if (parts.size() > 2) {
          std::printf("usage: \\threads <N>\n");
          continue;
        }
        std::printf(
            "worker threads: %d (results are identical at any setting)\n",
            database.threads());
        continue;
      }
      if (StartsWith(trimmed, "\\join")) {
        std::vector<std::string> parts = Split(trimmed, ' ');
        if (parts.size() == 2 || parts.size() == 3) {
          Result<db::JoinAlgo> algo = db::ParseJoinAlgo(parts[1]);
          if (!algo.ok()) {
            std::printf("error: %s\n", algo.status().ToString().c_str());
            continue;
          }
          database.set_join_algo(*algo);
          if (parts.size() == 3) {
            database.set_radix_bits(std::atoi(parts[2].c_str()));
          }
        } else if (parts.size() > 3) {
          std::printf("usage: \\join <legacy|hash|radix|merge> [bits]\n");
          continue;
        }
        std::printf("join algorithm: %s (radix bits: %d%s)\n",
                    db::JoinAlgoName(database.join_algo()),
                    database.radix_bits(),
                    database.radix_bits() <= 0 ? " = auto" : "");
        continue;
      }
      if (StartsWith(trimmed, "\\opt")) {
        std::vector<std::string> parts = Split(trimmed, ' ');
        if (parts.size() == 2 && (parts[1] == "on" || parts[1] == "off")) {
          database.set_optimize(parts[1] == "on");
        } else if (parts.size() != 1) {
          std::printf("usage: \\opt on|off\n");
          continue;
        }
        std::printf("cost-based optimization: %s\n",
                    database.optimize() ? "on" : "off");
        continue;
      }
      if (StartsWith(trimmed, "\\backend")) {
        std::vector<std::string> parts = Split(trimmed, ' ');
        if (parts.size() == 2) {
          Result<db::BackendKind> kind = db::ParseBackendKind(parts[1]);
          if (!kind.ok()) {
            std::printf("usage: \\backend col|row (%s)\n",
                        kind.status().message().c_str());
            continue;
          }
          database.set_backend(*kind);
          if (*kind == db::BackendKind::kRowStore &&
              row_backend == nullptr) {
            row_backend = engine::RowStoreBackend::Over(&database);
          }
        } else if (parts.size() != 1) {
          std::printf("usage: \\backend col|row\n");
          continue;
        }
        std::printf("execution backend: %s\n",
                    db::BackendKindName(database.backend()));
        continue;
      }
      if (StartsWith(trimmed, "\\check") && trimmed != "\\checkpoint") {
        std::vector<std::string> parts = Split(trimmed, ' ');
        if (parts.size() == 2 && (parts[1] == "on" || parts[1] == "off")) {
          database.set_check(parts[1] == "on");
        } else if (parts.size() != 1) {
          std::printf("usage: \\check on|off\n");
          continue;
        }
        std::printf("checked execution: %s\n",
                    database.check() ? "on" : "off");
        continue;
      }
      if (StartsWith(trimmed, "\\load ")) {
        std::vector<std::string> parts = Split(trimmed, ' ');
        if (parts.size() != 3) {
          std::printf("usage: \\load <name> <file.csv>\n");
          continue;
        }
        Result<std::shared_ptr<db::Table>> loaded = db::LoadCsv(parts[2]);
        if (!loaded.ok()) {
          std::printf("error: %s\n", loaded.status().ToString().c_str());
          continue;
        }
        if (database.HasTable(parts[1])) {
          std::printf("error: table %s already exists\n",
                      parts[1].c_str());
          continue;
        }
        database.RegisterTable(parts[1], *loaded);
        std::printf("loaded %s: %zu rows %s\n", parts[1].c_str(),
                    (*loaded)->num_rows(),
                    (*loaded)->schema().ToString().c_str());
        continue;
      }
      if (trimmed == "\\wal") {
        txn::DeltaStoreStats ts = store.stats();
        db::StorageStats ws = disk.stats();
        std::printf(
            "commits %llu (aborts %llu), rows +%llu/-%llu, checkpoints "
            "%llu, next LSN %llu\n",
            static_cast<unsigned long long>(ts.commits),
            static_cast<unsigned long long>(ts.aborts),
            static_cast<unsigned long long>(ts.rows_inserted),
            static_cast<unsigned long long>(ts.rows_deleted),
            static_cast<unsigned long long>(ts.checkpoints),
            static_cast<unsigned long long>(store.next_lsn()));
        std::printf("WAL %zu bytes on disk, %lld bytes written, %lld "
                    "fsyncs, %.3f msec write stall\n",
                    disk.Exists("wal.log") ? disk.Size("wal.log") : 0,
                    static_cast<long long>(ws.bytes_written),
                    static_cast<long long>(ws.fsyncs),
                    ws.write_stall_ns / 1e6);
        continue;
      }
      if (trimmed == "\\checkpoint") {
        Status ckpt = store.Checkpoint();
        if (!ckpt.ok()) {
          std::printf("error: %s\n", ckpt.ToString().c_str());
          continue;
        }
        std::printf("checkpoint installed; WAL truncated to %zu bytes\n",
                    disk.Exists("wal.log") ? disk.Size("wal.log") : 0);
        continue;
      }
      if (StartsWith(trimmed, "\\trace ")) {
        if (database.backend() == db::BackendKind::kRowStore) {
          RunRowBackend(database, *row_backend, trimmed.substr(7), mode,
                        /*with_trace=*/true);
        } else {
          RunAndPrint(database, trimmed.substr(7), mode,
                      /*with_trace=*/true);
        }
        continue;
      }
      std::printf("unknown command %s\n", trimmed.c_str());
      continue;
    }
    if (trimmed.empty()) {
      continue;
    }
    // Each non-empty line is one statement; end a multi-line statement by
    // typing its continuation on one line (the parser accepts newlines
    // inside, so pasting multi-line SQL as a block also works).
    statement = trimmed;
    std::string head = ToLower(statement.substr(0, 6));
    if (head == "insert" || head == "delete") {
      core::WallTimer wall;
      Result<txn::DmlResult> dml = txn::ExecuteDml(statement, store);
      if (!dml.ok()) {
        std::printf("error: %s\n", dml.status().ToString().c_str());
      } else {
        std::printf("%llu row(s) affected, Client %.3f msec\n",
                    static_cast<unsigned long long>(dml->rows_affected),
                    wall.ElapsedMs());
      }
      statement.clear();
      continue;
    }
    if (database.backend() == db::BackendKind::kRowStore) {
      // \timing routes through the columnar-bound QueryService; the row
      // backend prints its own server/finish split instead.
      RunRowBackend(database, *row_backend, statement, mode,
                    /*with_trace=*/false);
    } else if (timing_on) {
      RunTimed(database, *timing_service, statement);
    } else {
      RunAndPrint(database, statement, mode, /*with_trace=*/false);
    }
    statement.clear();
  }
  std::printf("\n");
  return 0;
}
