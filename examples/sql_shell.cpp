// An interactive SQL shell over the TPC-H database — the "low setup
// threshold; easy to run" property the paper wants from micro-benchmark
// tooling (slide 11), plus the DBMS-provided timing and introspection it
// recommends using (slides 28-29, 52): every query prints server/client
// times MonetDB-style, EXPLAIN shows plans, and special commands expose
// the buffer pool and execution mode.
//
// Usage: sql_shell [-DscaleFactor=0.01]   (reads statements from stdin)
//
// Special commands:
//   \mode debug|optimized    switch execution mode
//   \threads N               set morsel-parallel worker threads
//   \join ALGO [BITS]        set equi-join algorithm: legacy|hash|radix
//                            |merge; optional radix fan-out bits (0=auto)
//   \check on|off            checked execution: operators assert their
//                            invariants (costs O(input) per operator)
//   \flush                   flush the buffer pool (next run is cold)
//   \trace <sql>             run and print the per-operator trace
//   \tables                  list catalog tables
//   \load <name> <file.csv>  load a CSV (types inferred) as table <name>
//   \q                       quit

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/string_util.h"
#include "repro/properties.h"
#include "db/csv_loader.h"
#include "sql/planner.h"
#include "workload/tpch_gen.h"

using namespace perfeval;  // NOLINT(build/namespaces) example binary.

namespace {

void RunAndPrint(db::Database& database, const std::string& sql_text,
                 db::ExecMode mode, bool with_trace) {
  Result<db::QueryResult> result =
      sql::RunQuery(sql_text, database, mode, db::SinkKind::kFile);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s", result->table->ToString(25).c_str());
  std::printf("%zu row(s)\n", result->table->num_rows());
  // MonetDB-style timing lines (paper, slide 29).
  std::printf("Server %.3f msec (user %.3f), Client %.3f msec\n",
              result->ServerRealMs(), result->ServerUserMs(),
              result->ClientRealMs());
  std::printf("Pages %lld hits / %lld misses\n",
              static_cast<long long>(result->storage.page_hits),
              static_cast<long long>(result->storage.page_misses));
  if (with_trace) {
    std::printf("\n%s", result->profile.ToString().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  repro::Properties props;
  props.SetDefault("scaleFactor", "0.01");
  (void)props.OverrideFromArgs(argc, argv);
  double sf = props.GetDouble("scaleFactor", 0.01);

  db::Database database;
  workload::TpchGenerator gen(sf);
  gen.LoadAll(&database);
  db::ExecMode mode = db::ExecMode::kOptimized;

  std::printf("perfeval SQL shell — TPC-H sf %.3g loaded. \\q to quit.\n",
              sf);
  std::string line;
  std::string statement;
  while (true) {
    std::printf("sql> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) {
      break;
    }
    std::string trimmed = Trim(line);
    if (StartsWith(trimmed, "\\")) {
      if (trimmed == "\\q") {
        break;
      }
      if (trimmed == "\\flush") {
        database.FlushCaches();
        std::printf("buffer pool flushed — next run is cold\n");
        continue;
      }
      if (trimmed == "\\tables") {
        for (const std::string& name : database.TableNames()) {
          std::printf("%-10s %8zu rows  %s\n", name.c_str(),
                      database.GetTable(name).num_rows(),
                      database.GetTable(name).schema().ToString().c_str());
        }
        continue;
      }
      if (StartsWith(trimmed, "\\mode")) {
        if (trimmed.find("debug") != std::string::npos) {
          mode = db::ExecMode::kDebug;
        } else {
          mode = db::ExecMode::kOptimized;
        }
        std::printf("execution mode: %s\n", db::ExecModeName(mode));
        continue;
      }
      if (StartsWith(trimmed, "\\threads")) {
        std::vector<std::string> parts = Split(trimmed, ' ');
        if (parts.size() == 2) {
          database.set_threads(std::atoi(parts[1].c_str()));
        } else if (parts.size() > 2) {
          std::printf("usage: \\threads <N>\n");
          continue;
        }
        std::printf(
            "worker threads: %d (results are identical at any setting)\n",
            database.threads());
        continue;
      }
      if (StartsWith(trimmed, "\\join")) {
        std::vector<std::string> parts = Split(trimmed, ' ');
        if (parts.size() == 2 || parts.size() == 3) {
          Result<db::JoinAlgo> algo = db::ParseJoinAlgo(parts[1]);
          if (!algo.ok()) {
            std::printf("error: %s\n", algo.status().ToString().c_str());
            continue;
          }
          database.set_join_algo(*algo);
          if (parts.size() == 3) {
            database.set_radix_bits(std::atoi(parts[2].c_str()));
          }
        } else if (parts.size() > 3) {
          std::printf("usage: \\join <legacy|hash|radix|merge> [bits]\n");
          continue;
        }
        std::printf("join algorithm: %s (radix bits: %d%s)\n",
                    db::JoinAlgoName(database.join_algo()),
                    database.radix_bits(),
                    database.radix_bits() <= 0 ? " = auto" : "");
        continue;
      }
      if (StartsWith(trimmed, "\\check")) {
        std::vector<std::string> parts = Split(trimmed, ' ');
        if (parts.size() == 2 && (parts[1] == "on" || parts[1] == "off")) {
          database.set_check(parts[1] == "on");
        } else if (parts.size() != 1) {
          std::printf("usage: \\check on|off\n");
          continue;
        }
        std::printf("checked execution: %s\n",
                    database.check() ? "on" : "off");
        continue;
      }
      if (StartsWith(trimmed, "\\load ")) {
        std::vector<std::string> parts = Split(trimmed, ' ');
        if (parts.size() != 3) {
          std::printf("usage: \\load <name> <file.csv>\n");
          continue;
        }
        Result<std::shared_ptr<db::Table>> loaded = db::LoadCsv(parts[2]);
        if (!loaded.ok()) {
          std::printf("error: %s\n", loaded.status().ToString().c_str());
          continue;
        }
        if (database.HasTable(parts[1])) {
          std::printf("error: table %s already exists\n",
                      parts[1].c_str());
          continue;
        }
        database.RegisterTable(parts[1], *loaded);
        std::printf("loaded %s: %zu rows %s\n", parts[1].c_str(),
                    (*loaded)->num_rows(),
                    (*loaded)->schema().ToString().c_str());
        continue;
      }
      if (StartsWith(trimmed, "\\trace ")) {
        RunAndPrint(database, trimmed.substr(7), mode, /*with_trace=*/true);
        continue;
      }
      std::printf("unknown command %s\n", trimmed.c_str());
      continue;
    }
    if (trimmed.empty()) {
      continue;
    }
    // Each non-empty line is one statement; end a multi-line statement by
    // typing its continuation on one line (the parser accepts newlines
    // inside, so pasting multi-line SQL as a block also works).
    statement = trimmed;
    RunAndPrint(database, statement, mode, /*with_trace=*/false);
    statement.clear();
  }
  std::printf("\n");
  return 0;
}
