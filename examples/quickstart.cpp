// Quickstart: the perfeval workflow in one page.
//
// 1. Define factors and a design (doe).
// 2. Run it under a documented protocol with the harness (core).
// 3. Estimate effects and allocate variation (doe).
// 4. Report with confidence intervals (stats) and emit plot-ready files
//    (report).
//
// The system under test here is the bundled mini column-store: we ask
// whether vectorized execution and zone maps matter for a selective scan.

#include <cstdio>

#include "core/runner.h"
#include "db/database.h"
#include "doe/allocation.h"
#include "doe/effects.h"
#include "doe/interaction.h"
#include "report/gnuplot.h"
#include "workload/micro.h"

using namespace perfeval;  // NOLINT(build/namespaces) example binary.

int main() {
  // ---- The system under test: one synthetic table. ----
  workload::MicroTableSpec spec;
  spec.name = "events";
  spec.num_rows = 200'000;
  spec.columns.push_back(
      {"v", workload::Distribution::kUniform, 0, 1'000'000, 1.0, 0.0});
  db::Database database;
  database.RegisterTable("events", workload::GenerateMicroTable(spec));
  db::ExprPtr predicate = workload::PredicateForSelectivity(
      database.GetTable("events"), "v", 0.05);
  db::PlanPtr query = db::FilterScan("events", {"v"}, predicate);

  // ---- 1. Factors and design: a 2^2 full factorial. ----
  doe::Design design = doe::TwoLevelFullFactorial(
      {doe::Factor::TwoLevel("vectorized", "off", "on"),
       doe::Factor::TwoLevel("zonemaps", "off", "on")});
  std::printf("Design (%zu runs):\n%s\n", design.num_runs(),
              design.ToTable().c_str());

  // ---- 2. Run under a documented protocol. ----
  core::RunProtocol protocol;
  protocol.warmup_runs = 1;
  protocol.measured_runs = 5;
  protocol.aggregation = core::Aggregation::kMedian;
  core::ExperimentRunner runner(protocol, core::ResponseMetric::kUserMs);
  core::ExperimentResult result =
      runner.Run(design, [&](const doe::DesignPoint& point) {
        db::ExecMode mode = point.levels[0] == 1
                                ? db::ExecMode::kOptimized
                                : db::ExecMode::kDebug;
        bool zone_maps = point.levels[1] == 1;
        db::QueryResult qr =
            database.Run(query, mode, db::SinkKind::kDiscard, zone_maps);
        return qr.server;
      });
  std::printf("%s\n", result.ToTable(design).c_str());

  // ---- 3. Effects and allocation of variation. ----
  doe::SignTable table = doe::SignTable::FullFactorial(2);
  std::vector<double> y = result.AggregatedResponses();
  doe::EffectModel model = doe::EstimateEffects(table, y);
  std::printf("Fitted model (ms):\n%s\n", model.ToString().c_str());
  std::printf("Allocation of variation:\n%s\n",
              doe::AllocateVariation(table, y).ToTable().c_str());

  // Interaction plot (paper, slide 58): parallel lines = no interaction.
  std::vector<core::Series> interaction =
      doe::InteractionPlot(table, y, 0, 1, "zonemaps");
  std::printf(
      "Interaction of vectorization x zone maps (slope gap %.3f ms — "
      "parallel lines when ~0):\n", 
      doe::InteractionSlopeGap(table, y, 0, 1));
  for (const core::Series& s : interaction) {
    std::printf("  %-14s  A=off: %8.3f ms   A=on: %8.3f ms\n",
                s.name.c_str(), s.y[0], s.y[1]);
  }
  std::printf("\n");

  // ---- 4. A plot-ready chart with the guidelines baked in. ----
  core::Series series;
  series.name = "median scan time";
  for (size_t run = 0; run < y.size(); ++run) {
    series.AppendWithError(static_cast<double>(run + 1), y[run],
                           result.runs[run].confidence.has_value()
                               ? result.runs[run].confidence->HalfWidth()
                               : 0.0);
  }
  report::ChartSpec chart;
  chart.title = "Selective scan: vectorization x zone maps";
  chart.x_label = "design point";
  chart.y_label = "user CPU time (ms)";
  chart.style = report::ChartStyle::kErrorBars;
  chart.series = {series};
  if (report::WriteChart(chart, "bench_results/quickstart").ok()) {
    std::printf(
        "wrote bench_results/quickstart.{csv,gnu} — run gnuplot on the "
        ".gnu file to render the figure\n");
  }
  return 0;
}
