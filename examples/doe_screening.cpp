// The paper's recommended two-stage experiment methodology (slides 59,
// 110-113) applied to the storage layer:
//
//   Stage 1 — screening: a 2^(4-1) fractional factorial (8 runs instead of
//   16) over four storage knobs, allocation of variation to find the
//   factors that matter.
//
//   Stage 2 — refinement: a finer one-factor sweep over the winner,
//   plotted with error bars.

#include <cmath>
#include <cstdio>

#include "common/string_util.h"
#include "db/database.h"
#include "doe/allocation.h"
#include "doe/confounding.h"
#include "doe/effects.h"
#include "report/gnuplot.h"
#include "report/table_format.h"
#include "sched/scheduler.h"
#include "stats/confidence.h"
#include "stats/regression.h"
#include "workload/micro.h"

using namespace perfeval;  // NOLINT(build/namespaces) example binary.

namespace {

std::shared_ptr<db::Table> MakeData() {
  workload::MicroTableSpec spec;
  spec.name = "readings";
  spec.num_rows = 300'000;
  spec.columns.push_back({"sensor", workload::Distribution::kSequential, 0,
                          299'999, 1.0, 0.0});
  spec.columns.push_back(
      {"value", workload::Distribution::kGaussian, 0, 100'000, 1.0, 0.0});
  return workload::GenerateMicroTable(spec);
}

/// Response: observed time (ms) of a cold selective scan.
double MeasureConfig(const std::shared_ptr<db::Table>& data, bool big_pool,
                     bool big_pages, bool ssd, bool zone_maps) {
  db::DatabaseOptions options;
  options.buffer_pool_pages = big_pool ? 2048 : 16;
  options.rows_per_page = big_pages ? 8192 : 512;
  options.disk = ssd ? db::DiskModel::Ssd() : db::DiskModel();
  db::Database database(options);
  database.RegisterTable("readings", data);
  db::ExprPtr predicate = workload::PredicateForSelectivity(
      database.GetTable("readings"), "sensor", 0.02);
  db::PlanPtr plan = db::FilterScan("readings", {"sensor", "value"},
                                    predicate);
  database.FlushCaches();
  return database
      .Run(plan, db::ExecMode::kOptimized, db::SinkKind::kDiscard,
           zone_maps)
      .ServerRealMs();
}

}  // namespace

int main() {
  std::shared_ptr<db::Table> data = MakeData();
  const std::vector<std::string> names = {"pool", "pagesize", "ssd",
                                          "zonemaps"};

  // ---- Stage 1: 2^(4-1) screening, D = ABC (resolution IV). ----
  doe::FractionalDesignSpec spec(4, {doe::Generator{3, 0b0111}});
  doe::SignTable table = doe::SignTable::Fractional(spec);
  std::printf("Stage 1: 2^(4-1) screening, D=ABC — %zu of 16 runs\n",
              table.num_runs());
  std::printf("alias structure:\n%s\n", spec.DescribeAliases(1).c_str());

  // The fractional sign table as a Design, executed through the
  // experiment scheduler. The response is a deterministic simulated cold
  // scan (virtual-time disk), so the trials are simulation-bound: the
  // concurrent isolation policy may fan them out across workers without
  // perturbing the results, and the randomized run order de-correlates run
  // index from time-varying machine state — at identical reported numbers.
  std::vector<doe::DesignPoint> points;
  for (size_t run = 0; run < table.num_runs(); ++run) {
    doe::DesignPoint point;
    for (size_t f = 0; f < 4; ++f) {
      point.levels.push_back(table.FactorSign(run, f) > 0 ? 1 : 0);
    }
    points.push_back(point);
  }
  doe::Design design({doe::Factor::TwoLevel("pool", "16", "2048"),
                      doe::Factor::TwoLevel("pagesize", "512", "8192"),
                      doe::Factor::TwoLevel("ssd", "hdd", "ssd"),
                      doe::Factor::TwoLevel("zonemaps", "off", "on")},
                     points, "2^(4-1) D=ABC");
  core::RunProtocol protocol;
  protocol.warmup_runs = 0;  // MeasureConfig is cold by construction.
  protocol.measured_runs = 1;
  protocol.aggregation = core::Aggregation::kLast;
  sched::Options sched_options;
  sched_options.experiment_id = "doe_screening";
  sched_options.jobs = 4;
  sched_options.order = core::RunOrder::kRandomized;
  sched_options.seed = 7;
  sched_options.isolation = core::IsolationPolicy::kConcurrent;
  sched::Scheduler scheduler(sched_options);
  Result<core::ExperimentResult> screening = scheduler.Run(
      design, protocol, core::ResponseMetric::kRealMs,
      [&](const doe::DesignPoint& point, const core::TrialSpec&) {
        core::Measurement m;
        m.real_ns = static_cast<int64_t>(
            MeasureConfig(data, point.levels[0] > 0, point.levels[1] > 0,
                          point.levels[2] > 0, point.levels[3] > 0) *
            1e6);
        return m;
      });
  if (!screening.ok()) {
    std::fprintf(stderr, "screening failed: %s\n",
                 screening.status().ToString().c_str());
    return 1;
  }
  std::printf("protocol: %s\n\n",
              screening->protocol_description.c_str());
  std::vector<double> y = screening->AggregatedResponses();
  doe::EffectModel model = doe::EstimateMainEffectsFractional(table, y);
  report::TextTable effects;
  effects.SetHeader({"factor", "effect q (ms)"});
  size_t winner = 0;
  double winner_magnitude = -1.0;
  for (size_t f = 0; f < 4; ++f) {
    double q = model.Coefficient(doe::EffectMask{1} << f);
    effects.AddRow({names[f], StrFormat("%+.2f", q)});
    if (std::fabs(q) > winner_magnitude) {
      winner_magnitude = std::fabs(q);
      winner = f;
    }
  }
  std::printf("%s\n", effects.ToString().c_str());
  std::printf("dominant factor: %s\n\n", names[winner].c_str());

  // ---- Stage 2: refine the dominant factor (the disk in any sane run)
  // with a sweep over disk bandwidth at the best levels of the rest. ----
  std::printf("Stage 2: refining the disk factor — seek-time sweep\n");
  core::Series series;
  series.name = "cold scan";
  for (double seek_ms : {0.05, 0.5, 2.0, 5.0, 9.0, 15.0}) {
    db::DatabaseOptions options;
    options.buffer_pool_pages = 2048;
    options.rows_per_page = 8192;
    options.disk.seek_ns = static_cast<int64_t>(seek_ms * 1e6);
    db::Database database(options);
    database.RegisterTable("readings", data);
    db::ExprPtr predicate = workload::PredicateForSelectivity(
        database.GetTable("readings"), "sensor", 0.02);
    db::PlanPtr plan =
        db::FilterScan("readings", {"sensor", "value"}, predicate);
    std::vector<double> samples;
    for (int i = 0; i < 3; ++i) {
      database.FlushCaches();
      samples.push_back(database.Run(plan).ServerRealMs());
    }
    stats::ConfidenceInterval ci =
        stats::MeanConfidenceInterval(samples, 0.95);
    series.AppendWithError(seek_ms, ci.mean, ci.HalfWidth());
    std::printf("  seek %5.2f ms -> %7.2f ms  [+/- %.2f]\n", seek_ms,
                ci.mean, ci.HalfWidth());
  }

  // Fit the cost model: scan time = fixed + per-seek-ms * seek_ms.
  // The slope estimates how many seeks the scan performs.
  stats::LinearFit fit = stats::FitLinear(series.x, series.y);
  std::printf("\ncost model fit: %s\n", fit.ToString().c_str());
  std::printf(
      "slope = ms of scan time per ms of seek latency ~= number of "
      "seeks: %.2f [%.2f, %.2f]\n",
      fit.slope, fit.slope_ci.lower, fit.slope_ci.upper);

  report::ChartSpec chart;
  chart.title = "Cold selective scan vs disk seek time";
  chart.x_label = "seek time (ms)";
  chart.y_label = "scan time (ms)";
  chart.style = report::ChartStyle::kErrorBars;
  chart.series = {series};
  if (report::WriteChart(chart, "bench_results/doe_screening").ok()) {
    std::printf("\nwrote bench_results/doe_screening.{csv,gnu}\n");
  }
  return 0;
}
