// DeltaStore: transactions over the immutable column store. Covers
// commit visibility through the catalog (queries see committed deltas),
// abort semantics, validation, checkpoint + WAL recovery round trips,
// torn-tail repair, replayed conflict aborts, per-record atomicity
// across tables, the checked-mode integrity gate, and a TSan-targeted
// concurrent ingest + scan test.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "db/database.h"
#include "db/error.h"
#include "db/plan.h"
#include "db/reference.h"
#include "txn/store.h"
#include "txn/wal.h"

namespace perfeval {
namespace txn {
namespace {

// A fresh pristine database: recovery always starts from one of these
// plus the durable state, exactly like a process restart.
std::unique_ptr<db::Database> MakeDb() {
  db::DatabaseOptions options;
  options.rows_per_page = 4;
  auto database = std::make_unique<db::Database>(options);
  auto t = std::make_shared<db::Table>(
      db::Schema({{"id", db::DataType::kInt64}, {"v", db::DataType::kInt64}}));
  for (int i = 0; i < 8; ++i) {
    t->AppendRow({db::Value::Int64(i), db::Value::Int64(i % 3)});
  }
  database->RegisterTable("t", std::move(t));
  auto u = std::make_shared<db::Table>(
      db::Schema({{"k", db::DataType::kInt64}, {"s", db::DataType::kString}}));
  u->AppendRow({db::Value::Int64(1), db::Value::String("one")});
  database->RegisterTable("u", std::move(u));
  return database;
}

std::vector<std::vector<db::Value>> IntRows(std::vector<int64_t> ids) {
  std::vector<std::vector<db::Value>> rows;
  for (int64_t id : ids) {
    rows.push_back({db::Value::Int64(id), db::Value::Int64(id % 3)});
  }
  return rows;
}

RowPredicate IdEquals(int64_t id) {
  return [id](const db::Table& table, uint32_t row) {
    return table.ValueAt(row, 0).AsInt64() == id;
  };
}

Status CommitInsert(DeltaStore& store, const std::string& table,
                    std::vector<std::vector<db::Value>> rows,
                    DeltaStore::CommitInfo* info = nullptr) {
  uint64_t txn = store.Begin();
  Status s = store.BufferInsert(txn, table, std::move(rows));
  if (!s.ok()) {
    store.Abort(txn);
    return s;
  }
  return store.Commit(txn, info);
}

TEST(DeltaStoreTest, CommittedInsertIsVisibleToQueries) {
  auto database = MakeDb();
  VirtualDisk disk;
  DeltaStore store(database.get(), &disk);
  ASSERT_TRUE(store.Open().ok());

  DeltaStore::CommitInfo info;
  ASSERT_TRUE(CommitInsert(store, "t", IntRows({100, 101}), &info).ok());
  EXPECT_EQ(info.rows_inserted, 2u);
  EXPECT_GT(info.lsn, 0u);

  // The refresh hook folds the delta in at the top of Run().
  db::QueryResult result = database->Run(db::Scan("t"));
  EXPECT_EQ(result.table->num_rows(), 10u);
  EXPECT_EQ(store.MergedTable("t")->num_rows(), 10u);

  DeltaStoreStats stats = store.stats();
  EXPECT_EQ(stats.commits, 1u);
  EXPECT_EQ(stats.rows_inserted, 2u);
}

TEST(DeltaStoreTest, DeleteResolvesPredicateAtCommit) {
  auto database = MakeDb();
  VirtualDisk disk;
  DeltaStore store(database.get(), &disk);
  ASSERT_TRUE(store.Open().ok());

  uint64_t txn = store.Begin();
  ASSERT_TRUE(store.BufferDelete(txn, "t", IdEquals(3)).ok());
  DeltaStore::CommitInfo info;
  ASSERT_TRUE(store.Commit(txn, &info).ok());
  EXPECT_EQ(info.rows_deleted, 1u);
  EXPECT_EQ(database->Run(db::Scan("t")).table->num_rows(), 7u);

  // A second delete of the same id resolves against committed state:
  // nothing matches, the commit is trivially empty — not a conflict.
  uint64_t txn2 = store.Begin();
  ASSERT_TRUE(store.BufferDelete(txn2, "t", IdEquals(3)).ok());
  DeltaStore::CommitInfo info2;
  ASSERT_TRUE(store.Commit(txn2, &info2).ok());
  EXPECT_EQ(info2.rows_deleted, 0u);
  EXPECT_EQ(info2.lsn, 0u);
}

TEST(DeltaStoreTest, NullPredicateDeletesEveryRow) {
  auto database = MakeDb();
  VirtualDisk disk;
  DeltaStore store(database.get(), &disk);
  ASSERT_TRUE(store.Open().ok());
  uint64_t txn = store.Begin();
  ASSERT_TRUE(store.BufferDelete(txn, "t", nullptr).ok());
  DeltaStore::CommitInfo info;
  ASSERT_TRUE(store.Commit(txn, &info).ok());
  EXPECT_EQ(info.rows_deleted, 8u);
  EXPECT_EQ(database->Run(db::Scan("t")).table->num_rows(), 0u);
}

TEST(DeltaStoreTest, AbortedAndUnknownTransactionsChangeNothing) {
  auto database = MakeDb();
  VirtualDisk disk;
  DeltaStore store(database.get(), &disk);
  ASSERT_TRUE(store.Open().ok());

  uint64_t txn = store.Begin();
  ASSERT_TRUE(store.BufferInsert(txn, "t", IntRows({500})).ok());
  store.Abort(txn);
  EXPECT_EQ(database->Run(db::Scan("t")).table->num_rows(), 8u);
  // The aborted id is gone: committing it now is an error, not a replay.
  EXPECT_EQ(store.Commit(txn).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(store.BufferInsert(99999, "t", IntRows({1})).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store.stats().aborts, 0u);  // explicit aborts are not conflicts.
}

TEST(DeltaStoreTest, BufferInsertValidatesSchema) {
  auto database = MakeDb();
  VirtualDisk disk;
  DeltaStore store(database.get(), &disk);
  ASSERT_TRUE(store.Open().ok());
  uint64_t txn = store.Begin();
  EXPECT_EQ(store.BufferInsert(txn, "nope", IntRows({1})).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(store.BufferDelete(txn, "nope", nullptr).code(),
            StatusCode::kNotFound);
  // Wrong arity.
  EXPECT_EQ(
      store.BufferInsert(txn, "t", {{db::Value::Int64(1)}}).code(),
      StatusCode::kInvalidArgument);
  // Wrong type.
  EXPECT_EQ(store
                .BufferInsert(txn, "t",
                              {{db::Value::Int64(1),
                                db::Value::String("not an int")}})
                .code(),
            StatusCode::kInvalidArgument);
  // NULLs must carry the declared column type.
  EXPECT_TRUE(store
                  .BufferInsert(txn, "t",
                                {{db::Value::Int64(1),
                                  db::Value::Null(db::DataType::kInt64)}})
                  .ok());
  store.Abort(txn);
}

TEST(DeltaStoreTest, EmptyCommitNeedsNoWal) {
  auto database = MakeDb();
  VirtualDisk disk;
  DeltaStore store(database.get(), &disk);
  ASSERT_TRUE(store.Open().ok());
  uint64_t txn = store.Begin();
  DeltaStore::CommitInfo info;
  ASSERT_TRUE(store.Commit(txn, &info).ok());
  EXPECT_EQ(info.lsn, 0u);
  EXPECT_EQ(disk.stats().fsyncs, 0);
  EXPECT_EQ(store.stats().commits, 1u);
}

TEST(DeltaStoreTest, MultiTableCommitIsAtomicAndVisible) {
  auto database = MakeDb();
  VirtualDisk disk;
  DeltaStore store(database.get(), &disk);
  ASSERT_TRUE(store.Open().ok());
  uint64_t txn = store.Begin();
  ASSERT_TRUE(store.BufferInsert(txn, "t", IntRows({100})).ok());
  ASSERT_TRUE(store
                  .BufferInsert(txn, "u",
                                {{db::Value::Int64(2),
                                  db::Value::String("two")}})
                  .ok());
  ASSERT_TRUE(store.BufferDelete(txn, "t", IdEquals(0)).ok());
  ASSERT_TRUE(store.Commit(txn).ok());
  EXPECT_EQ(database->Run(db::Scan("t")).table->num_rows(), 8u);  // +1 -1
  EXPECT_EQ(database->Run(db::Scan("u")).table->num_rows(), 2u);
}

TEST(DeltaStoreTest, RecoveryFromWalAloneRestoresExactState) {
  VirtualDisk disk;
  std::shared_ptr<db::Table> expected_t;
  std::shared_ptr<db::Table> expected_u;
  {
    auto database = MakeDb();
    DeltaStore store(database.get(), &disk);
    ASSERT_TRUE(store.Open().ok());
    ASSERT_TRUE(CommitInsert(store, "t", IntRows({100, 101, 102})).ok());
    uint64_t txn = store.Begin();
    ASSERT_TRUE(store.BufferDelete(txn, "t", IdEquals(101)).ok());
    ASSERT_TRUE(store.Commit(txn).ok());
    ASSERT_TRUE(
        CommitInsert(store, "u",
                     {{db::Value::Int64(7), db::Value::String("seven")}})
            .ok());
    expected_t = store.MergedTable("t");
    expected_u = store.MergedTable("u");
  }
  disk.Reopen();  // power cut: only synced bytes survive (all commits are).

  auto database = MakeDb();
  DeltaStore store(database.get(), &disk);
  ASSERT_TRUE(store.Open().ok());
  EXPECT_EQ(store.stats().wal_records_replayed, 3u);
  EXPECT_EQ(db::DiffTables(*store.MergedTable("t"), *expected_t, 0.0, false),
            "");
  EXPECT_EQ(db::DiffTables(*store.MergedTable("u"), *expected_u, 0.0, false),
            "");
  // Queries on the recovered database see the recovered state directly.
  EXPECT_EQ(database->Run(db::Scan("t")).table->num_rows(),
            expected_t->num_rows());
  // The recovered store accepts new commits with continuing LSNs.
  ASSERT_TRUE(CommitInsert(store, "t", IntRows({200})).ok());
}

TEST(DeltaStoreTest, CheckpointTruncatesWalAndRecoveryUsesIt) {
  VirtualDisk disk;
  std::shared_ptr<db::Table> expected;
  {
    auto database = MakeDb();
    DeltaStore store(database.get(), &disk);
    ASSERT_TRUE(store.Open().ok());
    ASSERT_TRUE(CommitInsert(store, "t", IntRows({100, 101})).ok());
    uint64_t txn = store.Begin();
    ASSERT_TRUE(store.BufferDelete(txn, "t", IdEquals(100)).ok());
    ASSERT_TRUE(store.Commit(txn).ok());
    ASSERT_TRUE(store.Checkpoint().ok());
    EXPECT_EQ(disk.Size("wal.log"), 0u);
    // Post-checkpoint commits land in the (fresh) WAL.
    ASSERT_TRUE(CommitInsert(store, "t", IntRows({300})).ok());
    expected = store.MergedTable("t");
    EXPECT_EQ(store.stats().checkpoints, 1u);
  }
  disk.Reopen();

  auto database = MakeDb();
  DeltaStore store(database.get(), &disk);
  ASSERT_TRUE(store.Open().ok());
  // Only the post-checkpoint record replays; the rest came from the image.
  EXPECT_EQ(store.stats().wal_records_replayed, 1u);
  EXPECT_EQ(db::DiffTables(*store.MergedTable("t"), *expected, 0.0, false),
            "");
}

TEST(DeltaStoreTest, TornWalTailIsDiscardedAndRepaired) {
  VirtualDisk disk;
  {
    auto database = MakeDb();
    DeltaStore store(database.get(), &disk);
    ASSERT_TRUE(store.Open().ok());
    ASSERT_TRUE(CommitInsert(store, "t", IntRows({100})).ok());
  }
  // A torn append: half a frame past the last synced record.
  disk.Append("wal.log", std::string("\x40\x00\x00\x00\x99", 5));
  {
    auto database = MakeDb();
    DeltaStore store(database.get(), &disk);
    ASSERT_TRUE(store.Open().ok());
    EXPECT_EQ(store.stats().torn_tail_bytes, 5u);
    EXPECT_EQ(store.stats().wal_records_replayed, 1u);
    EXPECT_EQ(store.MergedTable("t")->num_rows(), 9u);
  }
  // The repair truncated the tail durably: reopening is clean.
  disk.Reopen();
  auto database = MakeDb();
  DeltaStore store(database.get(), &disk);
  ASSERT_TRUE(store.Open().ok());
  EXPECT_EQ(store.stats().torn_tail_bytes, 0u);
}

// Hand-crafts a WAL whose second record conflicts with the first — the
// state a crash leaves when two concurrent committers raced, the loser
// was reported kAborted, and both records are on the log. Replay must
// skip the loser entirely: its conflicting delete AND its insert (the
// record is atomic), exactly as the runtime outcome.
TEST(DeltaStoreTest, ReplayedConflictAbortsWholeRecordIdentically) {
  VirtualDisk disk;
  WalWriter writer(&disk, "wal.log");
  WalRecord winner;
  winner.txn_id = 1;
  WalOp del;
  del.kind = WalOp::Kind::kDelete;
  del.table = "t";
  del.base_rows = {0};
  winner.ops.push_back(del);
  writer.Append(winner);

  WalRecord loser;
  loser.txn_id = 2;
  WalOp ins;
  ins.kind = WalOp::Kind::kInsert;
  ins.table = "u";
  ins.rows = {{db::Value::Int64(666), db::Value::String("never")}};
  loser.ops.push_back(ins);
  loser.ops.push_back(del);  // same base row: a write-write conflict.
  writer.Append(loser);
  writer.SyncUpTo(2);

  auto database = MakeDb();
  DeltaStore store(database.get(), &disk);
  ASSERT_TRUE(store.Open().ok());
  EXPECT_EQ(store.stats().wal_records_replayed, 2u);
  EXPECT_EQ(store.MergedTable("t")->num_rows(), 7u);  // one delete applied.
  EXPECT_EQ(store.MergedTable("u")->num_rows(), 1u);  // loser's insert skipped.
  // The recovered LSN counter accounts for both records.
  EXPECT_EQ(store.next_lsn(), 3u);
}

TEST(DeltaStoreTest, WalLsnGapIsDataLoss) {
  VirtualDisk disk;
  WalRecord r1;
  r1.lsn = 1;
  r1.txn_id = 1;
  WalOp op;
  op.kind = WalOp::Kind::kDelete;
  op.table = "t";
  op.base_rows = {0};
  r1.ops.push_back(op);
  WalRecord r3 = r1;
  r3.lsn = 3;
  r3.ops[0].base_rows = {1};
  disk.Append("wal.log", EncodeWalRecord(r1) + EncodeWalRecord(r3));

  auto database = MakeDb();
  DeltaStore store(database.get(), &disk);
  Status s = store.Open();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_NE(s.message().find("LSN gap"), std::string::npos);
}

TEST(DeltaStoreTest, ReplayedRecordAgainstWrongSchemaIsDataLoss) {
  VirtualDisk disk;
  WalRecord r1;
  r1.lsn = 1;
  r1.txn_id = 1;
  WalOp op;
  op.kind = WalOp::Kind::kInsert;
  op.table = "t";
  op.rows = {{db::Value::String("wrong"), db::Value::Int64(1)}};
  r1.ops.push_back(op);
  disk.Append("wal.log", EncodeWalRecord(r1));
  auto database = MakeDb();
  DeltaStore store(database.get(), &disk);
  EXPECT_EQ(store.Open().code(), StatusCode::kDataLoss);

  VirtualDisk disk2;
  r1.ops[0].table = "ghost";
  disk2.Append("wal.log", EncodeWalRecord(r1));
  auto database2 = MakeDb();
  DeltaStore store2(database2.get(), &disk2);
  EXPECT_EQ(store2.Open().code(), StatusCode::kDataLoss);
}

TEST(DeltaStoreTest, CorruptCheckpointImageIsDataLoss) {
  VirtualDisk disk;
  {
    auto database = MakeDb();
    DeltaStore store(database.get(), &disk);
    ASSERT_TRUE(store.Open().ok());
    ASSERT_TRUE(CommitInsert(store, "t", IntRows({100})).ok());
    ASSERT_TRUE(store.Checkpoint().ok());
  }
  // The checkpoint only ever appears whole (fsync-then-rename), so damage
  // to it is corruption, never a torn write.
  std::string image = disk.ReadAll("checkpoint.img");
  disk.Remove("checkpoint.img");
  image[image.size() / 2] ^= 0x40;
  disk.Append("checkpoint.img", image);
  auto database = MakeDb();
  DeltaStore store(database.get(), &disk);
  EXPECT_EQ(store.Open().code(), StatusCode::kDataLoss);
}

TEST(DeltaStoreTest, StaleCheckpointTmpIsDiscardedAtOpen) {
  VirtualDisk disk;
  disk.Append("checkpoint.img.tmp", "half-written never-renamed image");
  auto database = MakeDb();
  DeltaStore store(database.get(), &disk);
  ASSERT_TRUE(store.Open().ok());
  EXPECT_FALSE(disk.Exists("checkpoint.img.tmp"));
}

// The checked-mode negative test: seeded delta corruption must turn the
// next checked query into a QueryError instead of a silent wrong answer.
TEST(DeltaStoreTest, CheckedModeCatchesSeededDeltaCorruption) {
  auto database = MakeDb();
  VirtualDisk disk;
  DeltaStore store(database.get(), &disk);
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(CommitInsert(store, "t", IntRows({100, 101})).ok());
  ASSERT_EQ(database->Run(db::Scan("t")).table->num_rows(), 10u);

  store.CorruptForTest("t", TableDelta::Corruption::kRowIdOrder);
  EXPECT_FALSE(store.CheckIntegrity().ok());
  // Unchecked: the engine serves on, oblivious.
  EXPECT_NO_THROW(database->Run(db::Scan("t")));
  // Checked: the refresh hook refuses before the query executes.
  database->set_check(true);
  try {
    database->Run(db::Scan("t"));
    FAIL() << "checked mode must detect the corrupted delta";
  } catch (const db::QueryError& e) {
    EXPECT_NE(std::string(e.what()).find("delta store integrity"),
              std::string::npos);
  }
}

// The TSan target: writers committing inserts (with periodic checkpoints)
// race readers running scans through the query service path. Reader row
// counts must be non-decreasing (no snapshot regression) and the final
// state must be exact.
TEST(DeltaStoreTest, ConcurrentIngestAndScanIsCleanAndMonotone) {
  auto database = MakeDb();
  database->set_threads(2);  // morsel-parallel scans under ingest.
  VirtualDisk disk;
  DeltaStore store(database.get(), &disk);
  ASSERT_TRUE(store.Open().ok());

  constexpr int kWriters = 4;
  constexpr int kCommitsPerWriter = 25;
  constexpr int kRowsPerCommit = 2;
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&database, &done, &failures] {
      size_t last = 0;
      while (!done.load(std::memory_order_acquire)) {
        size_t rows = database->Run(db::Scan("t")).table->num_rows();
        if (rows < last) {
          failures.fetch_add(1);
        }
        last = rows;
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&store, &failures, w] {
      for (int i = 0; i < kCommitsPerWriter; ++i) {
        int64_t base = 1000 + w * 1000 + i * kRowsPerCommit;
        uint64_t txn = store.Begin();
        if (!store.BufferInsert(txn, "t", IntRows({base, base + 1})).ok() ||
            !store.Commit(txn).ok()) {
          failures.fetch_add(1);
        }
        if (w == 0 && i % 10 == 9 && !store.Checkpoint().ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) {
    t.join();
  }

  EXPECT_EQ(failures.load(), 0);
  size_t expected = 8 + kWriters * kCommitsPerWriter * kRowsPerCommit;
  EXPECT_EQ(database->Run(db::Scan("t")).table->num_rows(), expected);
  EXPECT_TRUE(store.CheckIntegrity().ok());
  DeltaStoreStats stats = store.stats();
  EXPECT_EQ(stats.commits, uint64_t{kWriters} * kCommitsPerWriter);
  EXPECT_EQ(stats.rows_inserted,
            uint64_t{kWriters} * kCommitsPerWriter * kRowsPerCommit);
}

}  // namespace
}  // namespace txn
}  // namespace perfeval
