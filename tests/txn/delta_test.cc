// TableDelta: the per-table write-side state. Covers merge determinism
// and origins, validate-then-apply delete semantics (kAborted conflicts,
// kDataLoss corruption), compaction, checkpoint encode/decode round
// trips, and the seeded-corruption hooks the checked-mode negative
// tests rely on.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "db/reference.h"
#include "db/table.h"
#include "txn/codec.h"
#include "txn/delta.h"

namespace perfeval {
namespace txn {
namespace {

std::shared_ptr<db::Table> BaseTable(int rows = 4) {
  auto table = std::make_shared<db::Table>(
      db::Schema({{"id", db::DataType::kInt64}, {"name", db::DataType::kString}}));
  for (int i = 0; i < rows; ++i) {
    table->AppendRow(
        {db::Value::Int64(i), db::Value::String("base" + std::to_string(i))});
  }
  return table;
}

std::vector<std::vector<db::Value>> Rows(std::vector<int64_t> ids) {
  std::vector<std::vector<db::Value>> rows;
  for (int64_t id : ids) {
    rows.push_back(
        {db::Value::Int64(id), db::Value::String("ins" + std::to_string(id))});
  }
  return rows;
}

std::vector<int64_t> Ids(const db::Table& table) {
  std::vector<int64_t> ids;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    ids.push_back(table.ValueAt(r, 0).AsInt64());
  }
  return ids;
}

TEST(TableDeltaTest, MergedIsBaseLiveThenInsertLiveWithOrigins) {
  TableDelta delta(BaseTable(4));
  delta.ApplyInsert(Rows({100, 101}));
  // Delete base row 1 and insert-side row 0 (id 100).
  ASSERT_TRUE(delta.ApplyDelete({1}, {0}).ok());

  EXPECT_EQ(delta.num_base_rows(), 4u);
  EXPECT_EQ(delta.num_base_deleted(), 1u);
  EXPECT_EQ(delta.num_insert_rows(), 2u);
  EXPECT_EQ(delta.num_insert_deleted(), 1u);
  EXPECT_EQ(delta.num_live_rows(), 4u);
  EXPECT_FALSE(delta.empty());

  MergedSnapshot merged = delta.BuildMerged();
  EXPECT_EQ(Ids(*merged.table), (std::vector<int64_t>{0, 2, 3, 101}));
  ASSERT_EQ(merged.origins.size(), 4u);
  EXPECT_FALSE(merged.origins[0].from_insert);
  EXPECT_EQ(merged.origins[0].pos, 0u);
  EXPECT_FALSE(merged.origins[2].from_insert);
  EXPECT_EQ(merged.origins[2].pos, 3u);
  EXPECT_TRUE(merged.origins[3].from_insert);
  EXPECT_EQ(merged.origins[3].pos, 1u);
}

TEST(TableDeltaTest, EmptyDeltaMergesToBaseExactly) {
  auto base = BaseTable(3);
  TableDelta delta(base);
  EXPECT_TRUE(delta.empty());
  MergedSnapshot merged = delta.BuildMerged();
  EXPECT_EQ(db::DiffTables(*merged.table, *base, 0.0, false), "");
}

TEST(TableDeltaTest, DoubleDeleteIsAbortedAndChangesNothing) {
  TableDelta delta(BaseTable(4));
  ASSERT_TRUE(delta.ApplyDelete({2}, {}).ok());
  Status again = delta.ApplyDelete({2}, {});
  EXPECT_EQ(again.code(), StatusCode::kAborted);
  EXPECT_EQ(delta.num_base_deleted(), 1u);
}

TEST(TableDeltaTest, DuplicateTargetInOneRecordIsAborted) {
  TableDelta delta(BaseTable(4));
  EXPECT_EQ(delta.ValidateDelete({1, 1}, {}).code(), StatusCode::kAborted);
}

TEST(TableDeltaTest, OutOfRangeDeleteIsDataLoss) {
  TableDelta delta(BaseTable(4));
  EXPECT_EQ(delta.ValidateDelete({4}, {}).code(), StatusCode::kDataLoss);
  delta.ApplyInsert(Rows({100}));
  EXPECT_EQ(delta.ValidateDelete({}, {1}).code(), StatusCode::kDataLoss);
}

TEST(TableDeltaTest, RejectedDeleteBatchAppliesNothing) {
  TableDelta delta(BaseTable(4));
  ASSERT_TRUE(delta.ApplyDelete({3}, {}).ok());
  // Row 0 is deletable, row 3 is not: the whole batch must be a no-op.
  Status s = delta.ApplyDelete({0, 3}, {});
  EXPECT_EQ(s.code(), StatusCode::kAborted);
  EXPECT_EQ(delta.num_base_deleted(), 1u);
  EXPECT_EQ(Ids(*delta.BuildMerged().table), (std::vector<int64_t>{0, 1, 2}));
}

TEST(TableDeltaTest, CompactDropsDeletedInsertsAndKeepsOrder) {
  TableDelta delta(BaseTable(2));
  delta.ApplyInsert(Rows({100, 101, 102, 103}));
  ASSERT_TRUE(delta.ApplyDelete({}, {0, 2}).ok());
  delta.Compact();
  EXPECT_EQ(delta.num_insert_rows(), 2u);
  EXPECT_EQ(delta.num_insert_deleted(), 0u);
  EXPECT_TRUE(delta.CheckIntegrity().ok());
  EXPECT_EQ(Ids(*delta.BuildMerged().table),
            (std::vector<int64_t>{0, 1, 101, 103}));
  // Survivors keep their row ids, so later inserts still increase.
  delta.ApplyInsert(Rows({104}));
  EXPECT_TRUE(delta.CheckIntegrity().ok());
}

TEST(TableDeltaTest, EncodeDecodeRoundTripsEverything) {
  auto base = BaseTable(4);
  TableDelta delta(base);
  delta.ApplyInsert(Rows({100, 101, 102}));
  ASSERT_TRUE(delta.ApplyDelete({0, 3}, {1}).ok());

  std::string bytes;
  delta.Encode(&bytes);
  ByteCursor c(bytes);
  auto decoded = TableDelta::Decode(&c, base);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(c.AtEnd());
  EXPECT_TRUE(decoded->CheckIntegrity().ok());
  EXPECT_EQ(decoded->num_base_deleted(), 2u);
  EXPECT_EQ(decoded->num_insert_rows(), 3u);
  EXPECT_EQ(decoded->num_insert_deleted(), 1u);
  EXPECT_EQ(db::DiffTables(*decoded->BuildMerged().table,
                           *delta.BuildMerged().table, 0.0, false),
            "");
}

TEST(TableDeltaTest, DecodeOfDamagedBytesIsDataLoss) {
  auto base = BaseTable(4);
  TableDelta delta(base);
  delta.ApplyInsert(Rows({100}));
  ASSERT_TRUE(delta.ApplyDelete({1}, {}).ok());
  std::string bytes;
  delta.Encode(&bytes);
  // Flip every byte position in turn: decode must either fail cleanly
  // with kDataLoss or produce a delta that still passes CheckIntegrity —
  // never crash, never silently accept structural damage it can detect.
  int rejected = 0;
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string damaged = bytes;
    damaged[i] = static_cast<char>(damaged[i] ^ 0xFF);
    ByteCursor c(damaged);
    auto decoded = TableDelta::Decode(&c, base);
    if (!decoded.ok()) {
      EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss) << "byte " << i;
      ++rejected;
    } else {
      EXPECT_TRUE(decoded->CheckIntegrity().ok()) << "byte " << i;
    }
  }
  EXPECT_GT(rejected, 0);
  // Truncation at any point is also detected.
  ByteCursor shortc(std::string_view(bytes).substr(0, bytes.size() / 2));
  EXPECT_FALSE(TableDelta::Decode(&shortc, base).ok());
}

TEST(TableDeltaTest, CorruptForTestBreaksExactlyOneInvariant) {
  {
    TableDelta delta(BaseTable(4));
    EXPECT_TRUE(delta.CheckIntegrity().ok());
    delta.CorruptForTest(TableDelta::Corruption::kDeleteCountMismatch);
    Status s = delta.CheckIntegrity();
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  }
  {
    TableDelta delta(BaseTable(4));
    delta.ApplyInsert(Rows({100, 101}));
    EXPECT_TRUE(delta.CheckIntegrity().ok());
    delta.CorruptForTest(TableDelta::Corruption::kRowIdOrder);
    Status s = delta.CheckIntegrity();
    ASSERT_FALSE(s.ok());
    EXPECT_NE(s.message().find("row id"), std::string::npos);
  }
}

}  // namespace
}  // namespace txn
}  // namespace perfeval
