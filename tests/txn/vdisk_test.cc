// VirtualDisk: the write path's simulated filesystem. Covers the one
// contract recovery is built against (synced data survives a crash,
// unsynced appends survive only as a seeded prefix), atomic+durable
// rename, crash-point arming, and fsync accounting.

#include <string>

#include <gtest/gtest.h>

#include "txn/vdisk.h"

namespace perfeval {
namespace txn {
namespace {

TEST(VirtualDiskTest, SyncedDataSurvivesReopen) {
  VirtualDisk disk;
  disk.Append("f", "durable-part");
  disk.Sync("f");
  disk.Append("f", "-unsynced-tail");
  disk.Reopen();
  std::string after = disk.ReadAll("f");
  // The synced prefix must survive byte-for-byte; the unsynced tail may
  // survive only as a (possibly empty) prefix.
  ASSERT_GE(after.size(), std::string("durable-part").size());
  EXPECT_EQ(after.substr(0, 12), "durable-part");
  EXPECT_LE(after.size(), std::string("durable-part-unsynced-tail").size());
  EXPECT_EQ(std::string("durable-part-unsynced-tail").substr(0, after.size()),
            after);
}

TEST(VirtualDiskTest, UnsyncedFileMayVanishEntirely) {
  VirtualDisk disk;
  disk.ArmCrash(-1, /*tear_seed=*/0);  // seed 0 with op_count 1 keeps 0 or
                                       // more bytes; only the bound matters.
  disk.Append("f", "never-synced");
  disk.Reopen();
  // Whatever survived must be a prefix of what was written.
  std::string after = disk.Exists("f") ? disk.ReadAll("f") : std::string();
  EXPECT_EQ(std::string("never-synced").substr(0, after.size()), after);
}

TEST(VirtualDiskTest, TornTailIsDeterministicInSeed) {
  auto run = [](uint64_t seed) {
    VirtualDisk disk;
    disk.ArmCrash(-1, seed);
    disk.Append("f", "0123456789");
    disk.Sync("f");
    disk.Append("f", "abcdefghij");
    disk.Reopen();
    return disk.ReadAll("f");
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_EQ(run(7).substr(0, 10), "0123456789");
}

TEST(VirtualDiskTest, RenameIsAtomicAndDurable) {
  VirtualDisk disk;
  disk.Append("a.tmp", "image");
  disk.Sync("a.tmp");
  disk.Rename("a.tmp", "a");
  EXPECT_FALSE(disk.Exists("a.tmp"));
  EXPECT_EQ(disk.ReadAll("a"), "image");
  disk.Reopen();  // crash right after the rename
  EXPECT_FALSE(disk.Exists("a.tmp"));
  EXPECT_EQ(disk.ReadAll("a"), "image");
}

TEST(VirtualDiskTest, RemoveIsDurable) {
  VirtualDisk disk;
  disk.Append("f", "x");
  disk.Sync("f");
  disk.Remove("f");
  EXPECT_FALSE(disk.Exists("f"));
  disk.Reopen();
  EXPECT_FALSE(disk.Exists("f"));
  disk.Remove("f");  // removing an absent file is a no-op, not an error.
}

TEST(VirtualDiskTest, TruncateShrinksAndSyncMakesItDurable) {
  VirtualDisk disk;
  disk.Append("f", "0123456789");
  disk.Sync("f");
  disk.Truncate("f", 4);
  EXPECT_EQ(disk.ReadAll("f"), "0123");
  disk.Sync("f");
  disk.Reopen();
  EXPECT_EQ(disk.ReadAll("f"), "0123");
}

TEST(VirtualDiskTest, ArmedCrashFiresAtExactOperation) {
  VirtualDisk disk;
  disk.ArmCrash(2, /*tear_seed=*/99);
  disk.Append("f", "one");  // op 0
  disk.Append("f", "two");  // op 1
  EXPECT_FALSE(disk.crashed());
  EXPECT_THROW(disk.Append("f", "three"), CrashException);  // op 2 dies
  EXPECT_TRUE(disk.crashed());
  // The process is dead: every further mutation throws, reads still work.
  EXPECT_THROW(disk.Sync("f"), CrashException);
  EXPECT_THROW(disk.Append("g", "x"), CrashException);
  EXPECT_EQ(disk.ReadAll("f"), "onetwo");
  // Reopen clears the crash and resets the op counter.
  disk.Reopen();
  EXPECT_FALSE(disk.crashed());
  EXPECT_EQ(disk.op_count(), 0);
  disk.Append("f", "alive");
  EXPECT_EQ(disk.op_count(), 1);
}

TEST(VirtualDiskTest, CrashedOperationDidNotExecute) {
  VirtualDisk disk;
  disk.Append("f", "keep");
  disk.Sync("f");
  disk.ArmCrash(disk.op_count(), /*tear_seed=*/1);
  EXPECT_THROW(disk.Append("f", "lost"), CrashException);
  disk.Reopen();
  EXPECT_EQ(disk.ReadAll("f"), "keep");
}

TEST(VirtualDiskTest, FsyncAccountingChargesWriteStats) {
  db::DiskModel model;
  model.seek_ns = 1000;
  model.ns_per_byte = 10;
  VirtualDisk disk(model);
  disk.Append("f", std::string(100, 'x'));
  db::StorageStats before = disk.stats();
  EXPECT_EQ(before.bytes_written, 100);
  EXPECT_EQ(before.fsyncs, 0);
  disk.Sync("f");
  db::StorageStats after = disk.stats();
  EXPECT_EQ(after.fsyncs, 1);
  // One seek plus transfer for the 100 dirty bytes.
  EXPECT_EQ(after.write_stall_ns - before.write_stall_ns, 1000 + 100 * 10);
  // A second sync with nothing dirty pays only the seek.
  disk.Sync("f");
  EXPECT_EQ(disk.stats().write_stall_ns - after.write_stall_ns, 1000);
}

}  // namespace
}  // namespace txn
}  // namespace perfeval
