// WAL framing and the group-commit writer: encode/decode round trips,
// torn-tail discarding vs. mid-log corruption (kDataLoss), LSN
// assignment, fsync sharing, and log truncation.

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "db/value.h"
#include "txn/codec.h"
#include "txn/vdisk.h"
#include "txn/wal.h"

namespace perfeval {
namespace txn {
namespace {

WalRecord InsertRecord(uint64_t lsn, uint64_t txn_id) {
  WalRecord record;
  record.lsn = lsn;
  record.txn_id = txn_id;
  WalOp op;
  op.kind = WalOp::Kind::kInsert;
  op.table = "t";
  op.rows = {{db::Value::Int64(41), db::Value::Double(2.5),
              db::Value::String("hello"), db::Value::Date(9131)},
             {db::Value::Null(db::DataType::kInt64),
              db::Value::Null(db::DataType::kDouble),
              db::Value::Null(db::DataType::kString),
              db::Value::Null(db::DataType::kDate)}};
  record.ops.push_back(std::move(op));
  WalOp del;
  del.kind = WalOp::Kind::kDelete;
  del.table = "u";
  del.base_rows = {0, 7, 13};
  del.insert_rows = {2};
  record.ops.push_back(std::move(del));
  return record;
}

TEST(WalTest, EncodeDecodeRoundTrip) {
  VirtualDisk disk;
  WalWriter writer(&disk, "wal");
  WalRecord record = InsertRecord(0, 42);
  uint64_t lsn = writer.Append(record);
  EXPECT_EQ(lsn, 1u);
  writer.SyncUpTo(lsn);

  auto contents = ReadWal(disk, "wal");
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_EQ(contents->torn_tail_bytes, 0u);
  ASSERT_EQ(contents->records.size(), 1u);
  const WalRecord& got = contents->records[0];
  EXPECT_EQ(got.lsn, 1u);
  EXPECT_EQ(got.txn_id, 42u);
  ASSERT_EQ(got.ops.size(), 2u);
  EXPECT_EQ(got.ops[0].kind, WalOp::Kind::kInsert);
  EXPECT_EQ(got.ops[0].table, "t");
  ASSERT_EQ(got.ops[0].rows.size(), 2u);
  EXPECT_EQ(got.ops[0].rows[0][0].AsInt64(), 41);
  EXPECT_DOUBLE_EQ(got.ops[0].rows[0][1].AsDouble(), 2.5);
  EXPECT_EQ(got.ops[0].rows[0][2].AsString(), "hello");
  EXPECT_EQ(got.ops[0].rows[0][3].AsDate(), 9131);
  for (int c = 0; c < 4; ++c) {
    EXPECT_TRUE(got.ops[0].rows[1][c].is_null()) << "column " << c;
  }
  EXPECT_EQ(got.ops[1].kind, WalOp::Kind::kDelete);
  EXPECT_EQ(got.ops[1].table, "u");
  EXPECT_EQ(got.ops[1].base_rows, (std::vector<uint32_t>{0, 7, 13}));
  EXPECT_EQ(got.ops[1].insert_rows, (std::vector<uint32_t>{2}));
}

TEST(WalTest, MissingFileIsEmptyLog) {
  VirtualDisk disk;
  auto contents = ReadWal(disk, "nope");
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->records.empty());
  EXPECT_EQ(contents->torn_tail_bytes, 0u);
}

TEST(WalTest, TornFinalFrameIsDiscardedNotFatal) {
  std::string full = EncodeWalRecord(InsertRecord(1, 1));
  std::string next = EncodeWalRecord(InsertRecord(2, 2));
  // Every proper prefix of the second frame is a legitimate torn append.
  for (size_t cut : {size_t{1}, size_t{3}, size_t{8}, next.size() - 1}) {
    VirtualDisk d;
    d.Append("wal", full + next.substr(0, cut));
    auto contents = ReadWal(d, "wal");
    ASSERT_TRUE(contents.ok()) << "cut=" << cut;
    ASSERT_EQ(contents->records.size(), 1u) << "cut=" << cut;
    EXPECT_EQ(contents->records[0].lsn, 1u);
    EXPECT_EQ(contents->torn_tail_bytes, cut) << "cut=" << cut;
  }
}

TEST(WalTest, CorruptedTailCrcIsATornWrite) {
  // Damage confined to the final frame is indistinguishable from a torn
  // append and must be discarded, not fatal.
  VirtualDisk disk;
  std::string full = EncodeWalRecord(InsertRecord(1, 1));
  std::string bad = EncodeWalRecord(InsertRecord(2, 2));
  bad.back() = static_cast<char>(bad.back() ^ 0x5A);
  disk.Append("wal", full + bad);
  auto contents = ReadWal(disk, "wal");
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  ASSERT_EQ(contents->records.size(), 1u);
  EXPECT_EQ(contents->torn_tail_bytes, bad.size());
}

TEST(WalTest, MidLogCorruptionIsDataLoss) {
  // The same damage followed by more valid bytes cannot be explained by a
  // torn append: unrecoverable.
  std::string first = EncodeWalRecord(InsertRecord(1, 1));
  std::string second = EncodeWalRecord(InsertRecord(2, 2));
  std::string log = first + second;
  log[12] = static_cast<char>(log[12] ^ 0xFF);  // inside frame 1's payload.
  VirtualDisk disk;
  disk.Append("wal", log);
  auto contents = ReadWal(disk, "wal");
  ASSERT_FALSE(contents.ok());
  EXPECT_EQ(contents.status().code(), StatusCode::kDataLoss);
}

TEST(WalTest, OneSyncHardensEveryAppendedRecord) {
  VirtualDisk disk;
  WalWriter writer(&disk, "wal");
  uint64_t lsn1 = writer.Append(InsertRecord(0, 1));
  uint64_t lsn2 = writer.Append(InsertRecord(0, 2));
  uint64_t lsn3 = writer.Append(InsertRecord(0, 3));
  EXPECT_EQ(lsn3, lsn1 + 2);
  writer.SyncUpTo(lsn3);
  EXPECT_EQ(disk.stats().fsyncs, 1);
  // Already-covered LSNs return without a new barrier — the group-commit
  // amortization.
  writer.SyncUpTo(lsn1);
  writer.SyncUpTo(lsn2);
  EXPECT_EQ(disk.stats().fsyncs, 1);
}

TEST(WalTest, ConcurrentCommittersAllBecomeDurable) {
  VirtualDisk disk;
  WalWriter writer(&disk, "wal");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&writer, t] {
      for (int i = 0; i < kPerThread; ++i) {
        uint64_t lsn =
            writer.Append(InsertRecord(0, static_cast<uint64_t>(t * 100 + i)));
        writer.SyncUpTo(lsn);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  auto contents = ReadWal(disk, "wal");
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->records.size(),
            static_cast<size_t>(kThreads * kPerThread));
  // LSNs are dense and ordered on the log regardless of thread timing.
  for (size_t i = 0; i < contents->records.size(); ++i) {
    EXPECT_EQ(contents->records[i].lsn, i + 1);
  }
  // Group commit: fsyncs never exceed appends, and with contention the
  // leader usually covers followers. Correctness bound only — timing
  // decides the exact count.
  EXPECT_LE(disk.stats().fsyncs, int64_t{kThreads} * kPerThread);
  EXPECT_GE(disk.stats().fsyncs, 1);
}

TEST(WalTest, TruncateLogEmptiesDurablyAndKeepsLsnCounting) {
  VirtualDisk disk;
  WalWriter writer(&disk, "wal");
  uint64_t lsn = writer.Append(InsertRecord(0, 1));
  writer.SyncUpTo(lsn);
  writer.TruncateLog(writer.next_lsn());
  disk.Reopen();  // truncation must already be durable.
  auto contents = ReadWal(disk, "wal");
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->records.empty());
  EXPECT_EQ(writer.Append(InsertRecord(0, 2)), lsn + 1);
}

}  // namespace
}  // namespace txn
}  // namespace perfeval
