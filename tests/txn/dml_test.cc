// The SQL DML front-end: INSERT INTO ... VALUES and DELETE FROM ...
// WHERE parsed, bound against the catalog, and executed through the
// delta store — including literal coercion, NULLs, multi-row VALUES,
// and the error paths.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "common/check.h"
#include "db/database.h"
#include "db/plan.h"
#include "txn/dml.h"
#include "txn/store.h"
#include "txn/vdisk.h"

namespace perfeval {
namespace txn {
namespace {

std::unique_ptr<db::Database> MakeDb() {
  auto database = std::make_unique<db::Database>();
  auto t = std::make_shared<db::Table>(db::Schema({
      {"id", db::DataType::kInt64},
      {"price", db::DataType::kDouble},
      {"name", db::DataType::kString},
      {"shipped", db::DataType::kDate},
  }));
  for (int i = 0; i < 4; ++i) {
    t->AppendRow({db::Value::Int64(i), db::Value::Double(i * 1.5),
                  db::Value::String("row" + std::to_string(i)),
                  db::Value::Date(9000 + i)});
  }
  database->RegisterTable("items", std::move(t));
  return database;
}

class DmlTest : public ::testing::Test {
 protected:
  DmlTest() : database_(MakeDb()), store_(database_.get(), &disk_) {
    Status s = store_.Open();
    PERFEVAL_CHECK(s.ok()) << s.ToString();
  }

  size_t NumRows() { return store_.MergedTable("items")->num_rows(); }

  std::unique_ptr<db::Database> database_;
  VirtualDisk disk_;
  DeltaStore store_;
};

TEST_F(DmlTest, InsertSingleRowWithAllTypes) {
  auto result = ExecuteDml(
      "INSERT INTO items VALUES (10, 2.5, 'widget', DATE '1995-01-01')",
      store_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows_affected, 1u);
  auto merged = store_.MergedTable("items");
  ASSERT_EQ(merged->num_rows(), 5u);
  EXPECT_EQ(merged->ValueAt(4, 0).AsInt64(), 10);
  EXPECT_DOUBLE_EQ(merged->ValueAt(4, 1).AsDouble(), 2.5);
  EXPECT_EQ(merged->ValueAt(4, 2).AsString(), "widget");
}

TEST_F(DmlTest, InsertMultiRowValuesAndCoercions) {
  // Int literal into a double column widens; a plain string fills a date
  // column; negative literals carry their sign; NULL takes the column type.
  auto result = ExecuteDml(
      "INSERT INTO items VALUES"
      " (-5, 1, '1997-03-15', '1997-03-15'),"
      " (6, NULL, NULL, NULL)",
      store_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows_affected, 2u);
  auto merged = store_.MergedTable("items");
  ASSERT_EQ(merged->num_rows(), 6u);
  EXPECT_EQ(merged->ValueAt(4, 0).AsInt64(), -5);
  EXPECT_DOUBLE_EQ(merged->ValueAt(4, 1).AsDouble(), 1.0);
  EXPECT_EQ(merged->ValueAt(4, 2).AsString(), "1997-03-15");
  EXPECT_FALSE(merged->ValueAt(4, 3).is_null());
  EXPECT_TRUE(merged->ValueAt(5, 1).is_null());
  EXPECT_TRUE(merged->ValueAt(5, 2).is_null());
  EXPECT_TRUE(merged->ValueAt(5, 3).is_null());
}

TEST_F(DmlTest, DeleteWithWherePredicate) {
  auto result = ExecuteDml("DELETE FROM items WHERE id >= 2", store_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows_affected, 2u);
  EXPECT_EQ(NumRows(), 2u);
  // Expressions over any column work — the full WHERE binder is in play.
  auto more =
      ExecuteDml("DELETE FROM items WHERE price * 2.0 > 0.5 AND id = 1",
                 store_);
  ASSERT_TRUE(more.ok()) << more.status().ToString();
  EXPECT_EQ(more->rows_affected, 1u);
  EXPECT_EQ(NumRows(), 1u);
}

TEST_F(DmlTest, DeleteWithoutWhereClearsTable) {
  auto result = ExecuteDml("DELETE FROM items", store_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows_affected, 4u);
  EXPECT_EQ(NumRows(), 0u);
  // Deleting from the now-empty table affects nothing.
  auto again = ExecuteDml("DELETE FROM items", store_);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->rows_affected, 0u);
}

TEST_F(DmlTest, InsertThenDeleteOwnRows) {
  ASSERT_TRUE(
      ExecuteDml("INSERT INTO items VALUES (100, 0.0, 'x', NULL)", store_)
          .ok());
  auto result = ExecuteDml("DELETE FROM items WHERE id = 100", store_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows_affected, 1u);
  EXPECT_EQ(NumRows(), 4u);
}

TEST_F(DmlTest, ErrorsDoNotMutate) {
  struct Case {
    const char* sql;
    StatusCode code;
  };
  const Case cases[] = {
      {"INSERT INTO ghost VALUES (1, 2.0, 'a', NULL)", StatusCode::kNotFound},
      {"DELETE FROM ghost", StatusCode::kNotFound},
      // Arity mismatch.
      {"INSERT INTO items VALUES (1, 2.0)", StatusCode::kInvalidArgument},
      // Type mismatch: string into the int column.
      {"INSERT INTO items VALUES ('one', 2.0, 'a', NULL)",
       StatusCode::kInvalidArgument},
      // Double into the int column does not silently truncate.
      {"INSERT INTO items VALUES (1.5, 2.0, 'a', NULL)",
       StatusCode::kInvalidArgument},
      // Bad date text.
      {"INSERT INTO items VALUES (1, 2.0, 'a', 'not-a-date')",
       StatusCode::kInvalidArgument},
      // Non-literal VALUES entry.
      {"INSERT INTO items VALUES (1 + 1, 2.0, 'a', NULL)",
       StatusCode::kInvalidArgument},
      // Unknown column in WHERE.
      {"DELETE FROM items WHERE ghost = 1", StatusCode::kInvalidArgument},
      // NULL literal outside INSERT VALUES.
      {"DELETE FROM items WHERE id = NULL", StatusCode::kInvalidArgument},
      // Parse errors.
      {"INSERT items VALUES (1)", StatusCode::kInvalidArgument},
      {"DELETE items", StatusCode::kInvalidArgument},
  };
  for (const Case& c : cases) {
    auto result = ExecuteDml(c.sql, store_);
    EXPECT_FALSE(result.ok()) << c.sql;
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), c.code) << c.sql << " -> "
                                                << result.status().ToString();
    }
    EXPECT_EQ(NumRows(), 4u) << c.sql;
  }
  EXPECT_EQ(store_.stats().rows_inserted, 0u);
  EXPECT_EQ(store_.stats().rows_deleted, 0u);
}

TEST_F(DmlTest, SelectIsRejectedWithPointerToRunQuery) {
  auto result = ExecuteDml("SELECT id FROM items", store_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("RunQuery"), std::string::npos);
}

TEST_F(DmlTest, DmlAndQueriesInterleaveOnOneDatabase) {
  ASSERT_TRUE(
      ExecuteDml("INSERT INTO items VALUES (50, 9.5, 'fifty', NULL)", store_)
          .ok());
  EXPECT_EQ(database_->Run(db::Scan("items")).table->num_rows(), 5u);
  ASSERT_TRUE(ExecuteDml("DELETE FROM items WHERE id < 2", store_).ok());
  EXPECT_EQ(database_->Run(db::Scan("items")).table->num_rows(), 3u);
}

}  // namespace
}  // namespace txn
}  // namespace perfeval
