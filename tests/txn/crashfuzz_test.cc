// The seeded crash-point fuzzer, run exhaustively: every mutating disk
// operation of a scripted workload (WAL appends, fsyncs, checkpoint
// writes, renames, truncations) becomes a crash site; after each crash
// the store recovers and is diffed cell-by-cell against a shadow model.
// This is the acceptance gate of DESIGN.md S15: >= 200 sites, zero
// mismatches, torn tails actually exercised, and real WAL replays.

#include <gtest/gtest.h>

#include "txn/crashfuzz.h"

namespace perfeval {
namespace txn {
namespace {

TEST(CrashFuzzTest, ExhaustiveSweepRecoversExactlyAtEverySite) {
  CrashFuzzOptions options;  // defaults: 100 commits, stride 1, seed 42.
  auto report = RunCrashFuzz(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_GE(report->total_sites, 200);
  EXPECT_EQ(report->sites_tested, report->total_sites);
  EXPECT_EQ(report->crashes_injected, report->sites_tested);
  EXPECT_EQ(report->recoveries_ok, report->sites_tested);
  EXPECT_EQ(report->mismatches, 0) << report->first_failure;
  EXPECT_TRUE(report->first_failure.empty()) << report->first_failure;
  // The sweep must actually exercise the interesting recovery paths:
  // crashes that tore a WAL frame, and recoveries that replayed records.
  EXPECT_GT(report->torn_tails_seen, 0);
  EXPECT_GT(report->replays_with_records, 0);
}

TEST(CrashFuzzTest, CampaignIsDeterministicInItsSeed) {
  CrashFuzzOptions options;
  options.seed = 7;
  options.num_commits = 14;
  options.checkpoint_every = 5;
  options.site_stride = 3;
  auto a = RunCrashFuzz(options);
  auto b = RunCrashFuzz(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->total_sites, b->total_sites);
  EXPECT_EQ(a->sites_tested, b->sites_tested);
  EXPECT_EQ(a->torn_tails_seen, b->torn_tails_seen);
  EXPECT_EQ(a->replays_with_records, b->replays_with_records);
  EXPECT_EQ(a->mismatches, 0) << a->first_failure;
  // The stride samples, it does not skip silently.
  EXPECT_GE(a->sites_tested, a->total_sites / 3);
}

TEST(CrashFuzzTest, DifferentSeedsStillAllRecover) {
  for (uint64_t seed : {uint64_t{1}, uint64_t{123456789}}) {
    CrashFuzzOptions options;
    options.seed = seed;
    options.num_commits = 12;
    options.checkpoint_every = 4;
    auto report = RunCrashFuzz(options);
    ASSERT_TRUE(report.ok()) << "seed " << seed;
    EXPECT_EQ(report->mismatches, 0)
        << "seed " << seed << ": " << report->first_failure;
    EXPECT_EQ(report->recoveries_ok, report->sites_tested) << "seed " << seed;
  }
}

}  // namespace
}  // namespace txn
}  // namespace perfeval
