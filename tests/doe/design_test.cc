#include "doe/design.h"

#include <set>

#include <gtest/gtest.h>

namespace perfeval {
namespace doe {
namespace {

std::vector<Factor> ThreeFactors() {
  return {Factor("buffer", {"small", "medium", "large"}),
          Factor("vectorized", {"off", "on"}),
          Factor("disk", {"hdd", "ssd"})};
}

TEST(SimpleDesignTest, RunCountMatchesFormula) {
  Design design = SimpleDesign(ThreeFactors());
  // 1 + (3-1) + (2-1) + (2-1) = 5.
  EXPECT_EQ(design.num_runs(), 5u);
  EXPECT_EQ(SimpleDesignRuns({3, 2, 2}), 5);
}

TEST(SimpleDesignTest, VariesOneFactorAtATime) {
  Design design = SimpleDesign(ThreeFactors());
  const DesignPoint& baseline = design.points()[0];
  for (size_t r = 1; r < design.num_runs(); ++r) {
    int changed = 0;
    for (size_t f = 0; f < design.num_factors(); ++f) {
      changed += design.points()[r].levels[f] != baseline.levels[f] ? 1 : 0;
    }
    EXPECT_EQ(changed, 1) << "run " << r;
  }
}

TEST(SimpleDesignTest, CoversAllLevels) {
  EXPECT_TRUE(SimpleDesign(ThreeFactors()).CoversAllLevels());
}

TEST(FullFactorialTest, AllCombinationsPresent) {
  Design design = FullFactorialDesign(ThreeFactors());
  EXPECT_EQ(design.num_runs(), 12u);  // 3*2*2
  EXPECT_EQ(FullFactorialRuns({3, 2, 2}), 12);
  // Every combination unique.
  std::set<std::vector<size_t>> seen;
  for (const DesignPoint& point : design.points()) {
    EXPECT_TRUE(seen.insert(point.levels).second);
  }
  EXPECT_TRUE(design.CoversAllLevels());
  EXPECT_TRUE(design.IsPairwiseBalanced());
}

TEST(TwoLevelTest, ProducesPowerOfTwoRuns) {
  std::vector<Factor> factors = {Factor::TwoLevel("A", "-", "+"),
                                 Factor::TwoLevel("B", "-", "+"),
                                 Factor::TwoLevel("C", "-", "+")};
  Design design = TwoLevelFullFactorial(factors);
  EXPECT_EQ(design.num_runs(), 8u);
  EXPECT_EQ(TwoLevelRuns(3), 8);
}

TEST(TwoLevelDeathTest, RejectsMultiLevelFactors) {
  std::vector<Factor> factors = {Factor("A", {"1", "2", "3"})};
  EXPECT_DEATH(TwoLevelFullFactorial(factors), "two-level");
}

TEST(DesignSizeTest, PaperScenarioSlide56) {
  // "5 parameters, each has between 10 and 40 values": full factorial is
  // infeasible (10^5 at the low end), 2^k is 32, simple is 1+sum(ni-1).
  std::vector<size_t> levels = {10, 20, 30, 40, 25};
  EXPECT_EQ(FullFactorialRuns(levels), 10LL * 20 * 30 * 40 * 25);
  EXPECT_EQ(TwoLevelRuns(5), 32);
  EXPECT_EQ(SimpleDesignRuns(levels), 1 + 9 + 19 + 29 + 39 + 24);
  EXPECT_LT(TwoLevelRuns(5), SimpleDesignRuns(levels));
}

TEST(DesignSizeTest, FractionalRunsFormula) {
  EXPECT_EQ(FractionalRuns(7, 4), 8);   // the slide-102 2^(7-4) design.
  EXPECT_EQ(FractionalRuns(4, 1), 8);   // the slide-104 2^(4-1) design.
}

TEST(DesignTest, TableRenderingListsAllRuns) {
  Design design = SimpleDesign(ThreeFactors());
  std::string table = design.ToTable();
  EXPECT_NE(table.find("buffer"), std::string::npos);
  EXPECT_NE(table.find("medium"), std::string::npos);
  int lines = 0;
  for (char c : table) {
    lines += c == '\n' ? 1 : 0;
  }
  EXPECT_EQ(lines, static_cast<int>(design.num_runs()) + 1);
}

TEST(DesignTest, LevelNameAt) {
  Design design = FullFactorialDesign(ThreeFactors());
  EXPECT_EQ(design.LevelNameAt(0, 0), "small");
  // Factor 0 varies fastest.
  EXPECT_EQ(design.LevelNameAt(1, 0), "medium");
}

TEST(FactorDeathTest, NeedsAtLeastOneLevel) {
  EXPECT_DEATH(Factor("empty", {}), "at least one level");
}

}  // namespace
}  // namespace doe
}  // namespace perfeval
