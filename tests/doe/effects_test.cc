#include "doe/effects.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace perfeval {
namespace doe {
namespace {

TEST(EffectsTest, PaperSlide72MemoryCacheExample) {
  // The paper's 2^2 example: MIPS of a workstation for memory {4MB,16MB} x
  // cache {1KB,2KB}: y = (15, 45, 25, 75) in sign-table order.
  // Solved model: y = 40 + 20 xA + 10 xB + 5 xA xB.
  SignTable table = SignTable::FullFactorial(2);
  std::vector<double> y = {15.0, 45.0, 25.0, 75.0};
  EffectModel model = EstimateEffects(table, y);
  EXPECT_DOUBLE_EQ(model.mean(), 40.0);
  EXPECT_DOUBLE_EQ(model.Coefficient(0b01), 20.0);  // qA (memory)
  EXPECT_DOUBLE_EQ(model.Coefficient(0b10), 10.0);  // qB (cache)
  EXPECT_DOUBLE_EQ(model.Coefficient(0b11), 5.0);   // qAB
}

TEST(EffectsTest, ModelReproducesEveryObservation) {
  // With 2^k coefficients and 2^k observations the fit is exact.
  SignTable table = SignTable::FullFactorial(3);
  Pcg32 rng(7);
  std::vector<double> y;
  for (size_t i = 0; i < 8; ++i) {
    y.push_back(rng.NextDoubleInRange(0.0, 100.0));
  }
  EffectModel model = EstimateEffects(table, y);
  for (size_t run = 0; run < 8; ++run) {
    EXPECT_NEAR(model.Predict(table, run), y[run], 1e-9);
  }
}

TEST(EffectsTest, RecoversPlantedLinearModel) {
  // Generate responses from a known model; estimation must recover it.
  SignTable table = SignTable::FullFactorial(4);
  const double q0 = 12.0;
  const double qA = 3.0;
  const double qBC = -1.5;
  std::vector<double> y(16);
  for (size_t run = 0; run < 16; ++run) {
    y[run] = q0 + qA * table.ColumnSign(run, 0b0001) +
             qBC * table.ColumnSign(run, 0b0110);
  }
  EffectModel model = EstimateEffects(table, y);
  EXPECT_NEAR(model.mean(), q0, 1e-9);
  EXPECT_NEAR(model.Coefficient(0b0001), qA, 1e-9);
  EXPECT_NEAR(model.Coefficient(0b0110), qBC, 1e-9);
  // All unplanted coefficients are zero.
  EXPECT_NEAR(model.Coefficient(0b0010), 0.0, 1e-9);
  EXPECT_NEAR(model.Coefficient(0b1111), 0.0, 1e-9);
}

TEST(EffectsTest, ConstantResponseHasOnlyMean) {
  SignTable table = SignTable::FullFactorial(2);
  EffectModel model = EstimateEffects(table, {7.0, 7.0, 7.0, 7.0});
  EXPECT_DOUBLE_EQ(model.mean(), 7.0);
  EXPECT_DOUBLE_EQ(model.Coefficient(0b01), 0.0);
  EXPECT_DOUBLE_EQ(model.Coefficient(0b10), 0.0);
  EXPECT_DOUBLE_EQ(model.Coefficient(0b11), 0.0);
}

TEST(EffectsTest, FractionalEstimatesConfoundedSums) {
  // In D=ABC, the estimate labelled "D" is really qD + qABC.
  FractionalDesignSpec spec(4, {Generator{3, 0b0111}});
  SignTable fractional = SignTable::Fractional(spec);
  // Plant a model with qD = 2 and qABC = 1 over a full 2^4 table, then
  // evaluate its responses at the fraction's 8 runs.
  SignTable full = SignTable::FullFactorial(4);
  std::vector<double> y;
  for (size_t run = 0; run < fractional.num_runs(); ++run) {
    double response = 10.0 + 2.0 * fractional.ColumnSign(run, 0b1000) +
                      1.0 * fractional.ColumnSign(run, 0b0111);
    y.push_back(response);
  }
  EffectModel model = EstimateMainEffectsFractional(fractional, y);
  // D and ABC share a column in the fraction, so the estimate is 3.
  EXPECT_NEAR(model.Coefficient(0b1000), 3.0, 1e-9);
  (void)full;
}

TEST(EffectsTest, ReplicatedUsesRunMeans) {
  SignTable table = SignTable::FullFactorial(2);
  std::vector<std::vector<double>> y = {
      {14.0, 16.0}, {44.0, 46.0}, {24.0, 26.0}, {74.0, 76.0}};
  EffectModel model = EstimateEffectsReplicated(table, y);
  EXPECT_DOUBLE_EQ(model.mean(), 40.0);
  EXPECT_DOUBLE_EQ(model.Coefficient(0b01), 20.0);
}

TEST(EffectsTest, ToStringListsCoefficients) {
  SignTable table = SignTable::FullFactorial(2);
  EffectModel model = EstimateEffects(table, {15.0, 45.0, 25.0, 75.0});
  std::string text = model.ToString();
  EXPECT_NE(text.find("qI"), std::string::npos);
  EXPECT_NE(text.find("qAB"), std::string::npos);
}

TEST(EffectsDeathTest, ResponseCountMustMatchRuns) {
  SignTable table = SignTable::FullFactorial(2);
  EXPECT_DEATH(EstimateEffects(table, {1.0, 2.0}), "CHECK failed");
}

}  // namespace
}  // namespace doe
}  // namespace perfeval
