#include "doe/significance.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace perfeval {
namespace doe {
namespace {

/// Replicated responses from a planted model y = 100 + qA*xA + qB*xB +
/// noise; qAB = 0.
std::vector<std::vector<double>> PlantedResponses(const SignTable& table,
                                                  double q_a, double q_b,
                                                  double noise_sd,
                                                  int replications,
                                                  uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<std::vector<double>> y(table.num_runs());
  for (size_t run = 0; run < table.num_runs(); ++run) {
    double mean = 100.0 + q_a * table.ColumnSign(run, 0b01) +
                  q_b * table.ColumnSign(run, 0b10);
    for (int i = 0; i < replications; ++i) {
      y[run].push_back(mean + noise_sd * rng.NextGaussian());
    }
  }
  return y;
}

TEST(Anova2kTest, DetectsRealEffectsRejectsAbsentOnes) {
  SignTable table = SignTable::FullFactorial(2);
  // A is a big effect, B tiny relative to noise, AB zero.
  std::vector<std::vector<double>> y =
      PlantedResponses(table, 10.0, 0.05, 1.0, 5, 42);
  stats::AnovaTable anova = Anova2k(table, y);
  const stats::AnovaRow* a = anova.Find("A");
  const stats::AnovaRow* b = anova.Find("B");
  const stats::AnovaRow* ab = anova.Find("AB");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(ab, nullptr);
  EXPECT_TRUE(a->significant);
  EXPECT_LT(a->p_value, 1e-6);
  EXPECT_FALSE(b->significant);
  EXPECT_FALSE(ab->significant);
}

TEST(Anova2kTest, PureNoiseRarelySignificant) {
  SignTable table = SignTable::FullFactorial(3);
  int false_positives = 0;
  const int kTrials = 200;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<std::vector<double>> y =
        PlantedResponses(table, 0.0, 0.0, 1.0, 3,
                         static_cast<uint64_t>(trial) + 1000);
    stats::AnovaTable anova = Anova2k(table, y);
    false_positives += anova.Find("A")->significant ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(false_positives) / kTrials, 0.05, 0.05);
}

TEST(Anova2kTest, SumOfSquaresDecomposes) {
  SignTable table = SignTable::FullFactorial(2);
  std::vector<std::vector<double>> y =
      PlantedResponses(table, 5.0, 2.0, 0.5, 4, 7);
  stats::AnovaTable anova = Anova2k(table, y);
  double effects = 0.0;
  for (const stats::AnovaRow& row : anova.rows) {
    if (row.source != "error" && row.source != "total") {
      effects += row.sum_of_squares;
    }
  }
  EXPECT_NEAR(effects + anova.Find("error")->sum_of_squares,
              anova.Find("total")->sum_of_squares,
              1e-6 * anova.Find("total")->sum_of_squares);
  // df: 3 effects * 1 + error 4*(4-1)=12 = total 15.
  EXPECT_EQ(anova.Find("error")->degrees_of_freedom, 12.0);
  EXPECT_EQ(anova.Find("total")->degrees_of_freedom, 15.0);
}

TEST(Anova2kTest, CustomFactorNames) {
  SignTable table = SignTable::FullFactorial(2);
  std::vector<std::vector<double>> y =
      PlantedResponses(table, 10.0, 0.0, 0.5, 3, 3);
  stats::AnovaTable anova =
      Anova2k(table, y, 0.05, {"cache", "memory"});
  EXPECT_NE(anova.Find("cache"), nullptr);
  EXPECT_NE(anova.Find("cache*memory"), nullptr);
}

TEST(Anova2kTest, NoiseFreeReplicasGiveZeroPValues) {
  SignTable table = SignTable::FullFactorial(2);
  std::vector<std::vector<double>> y = {
      {15.0, 15.0}, {45.0, 45.0}, {25.0, 25.0}, {75.0, 75.0}};
  stats::AnovaTable anova = Anova2k(table, y);
  EXPECT_TRUE(anova.Find("A")->significant);
  EXPECT_DOUBLE_EQ(anova.Find("A")->p_value, 0.0);
}

TEST(Anova2kDeathTest, RequiresReplication) {
  SignTable table = SignTable::FullFactorial(2);
  std::vector<std::vector<double>> y = {{1.0}, {2.0}, {3.0}, {4.0}};
  EXPECT_DEATH(Anova2k(table, y), "replicated");
}

}  // namespace
}  // namespace doe
}  // namespace perfeval
