#include "doe/interaction.h"

#include <gtest/gtest.h>

#include "doe/effects.h"

namespace perfeval {
namespace doe {
namespace {

TEST(InteractionTest, PaperSlide58NoInteraction) {
  // Table (a): A1/A2 x B1/B2 = 3,5 / 6,8 — the effect of A is +2
  // regardless of B: parallel lines, zero gap.
  SignTable table = SignTable::FullFactorial(2);
  std::vector<double> y = {3.0, 5.0, 6.0, 8.0};
  std::vector<core::Series> plot = InteractionPlot(table, y, 0, 1, "B");
  ASSERT_EQ(plot.size(), 2u);
  EXPECT_EQ(plot[0].name, "B low");
  EXPECT_EQ(plot[1].name, "B high");
  EXPECT_DOUBLE_EQ(plot[0].y[0], 3.0);
  EXPECT_DOUBLE_EQ(plot[0].y[1], 5.0);
  EXPECT_DOUBLE_EQ(plot[1].y[0], 6.0);
  EXPECT_DOUBLE_EQ(plot[1].y[1], 8.0);
  EXPECT_DOUBLE_EQ(InteractionSlopeGap(table, y, 0, 1), 0.0);
}

TEST(InteractionTest, PaperSlide58WithInteraction) {
  // Table (b): 3,5 / 6,9 — A's effect is +2 at B1 but +3 at B2. Slopes
  // are per unit of x in [-1, +1], so the gap is (3-2)/2 = 0.5 = 2*qAB.
  SignTable table = SignTable::FullFactorial(2);
  std::vector<double> y = {3.0, 5.0, 6.0, 9.0};
  EXPECT_DOUBLE_EQ(InteractionSlopeGap(table, y, 0, 1), 0.5);
}

TEST(InteractionTest, GapEqualsTwiceQab) {
  SignTable table = SignTable::FullFactorial(2);
  std::vector<double> y = {15.0, 45.0, 25.0, 75.0};  // slide 72: qAB = 5.
  EffectModel model = EstimateEffects(table, y);
  EXPECT_DOUBLE_EQ(InteractionSlopeGap(table, y, 0, 1),
                   2.0 * model.Coefficient(0b11));
}

TEST(InteractionTest, MarginalizesOverOtherFactorsInLargerDesigns) {
  // 2^3 with a planted pure AB interaction; C is noise the plot averages
  // out exactly.
  SignTable table = SignTable::FullFactorial(3);
  std::vector<double> y(8);
  for (size_t run = 0; run < 8; ++run) {
    y[run] = 10.0 + 4.0 * table.ColumnSign(run, 0b011) +
             100.0 * table.ColumnSign(run, 0b100);
  }
  EXPECT_NEAR(InteractionSlopeGap(table, y, 0, 1), 8.0, 1e-9);
  // And no spurious interaction between A and C.
  EXPECT_NEAR(InteractionSlopeGap(table, y, 0, 2), 0.0, 1e-9);
}

TEST(InteractionDeathTest, RejectsSameFactorTwice) {
  SignTable table = SignTable::FullFactorial(2);
  std::vector<double> y = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DEATH(InteractionPlot(table, y, 1, 1), "CHECK failed");
}

}  // namespace
}  // namespace doe
}  // namespace perfeval
