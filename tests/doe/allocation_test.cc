#include "doe/allocation.h"

#include <gtest/gtest.h>

namespace perfeval {
namespace doe {
namespace {

// The slide-92 reproduction. One documented deviation (see EXPERIMENTS.md,
// T4): the slide's summary table attaches {17.2%, 77.0%, 5.8%} to
// {qA, qB, qAB}, but running the sign-table algebra on the slide's own
// printed response table — rows (A,B) = (-1,-1), (1,-1), (-1,1), (1,1) —
// yields exactly those numbers with qA and qB SWAPPED. The magnitudes are
// reproduced below; the factor labels follow the algebra, not the slide.

TEST(AllocationTest, PaperSlide92InterconnectThroughput) {
  // Response T (throughput): 0.6041, 0.4220, 0.7922, 0.4717.
  // Fractions: {77.0%, 17.2%, 5.8%} for {A, B, AB}.
  SignTable table = SignTable::FullFactorial(2);
  std::vector<double> t = {0.6041, 0.4220, 0.7922, 0.4717};
  VariationAllocation allocation = AllocateVariation(table, t);
  EXPECT_NEAR(allocation.FractionFor(0b01), 0.770, 0.002);
  EXPECT_NEAR(allocation.FractionFor(0b10), 0.172, 0.002);
  EXPECT_NEAR(allocation.FractionFor(0b11), 0.058, 0.002);
}

TEST(AllocationTest, PaperSlide92TransitTime) {
  // Response N (90% transit time): 3, 5, 2, 4 -> {80%, 20%, 0%}.
  SignTable table = SignTable::FullFactorial(2);
  std::vector<double> n = {3.0, 5.0, 2.0, 4.0};
  VariationAllocation allocation = AllocateVariation(table, n);
  EXPECT_NEAR(allocation.FractionFor(0b01), 0.80, 1e-9);
  EXPECT_NEAR(allocation.FractionFor(0b10), 0.20, 1e-9);
  EXPECT_NEAR(allocation.FractionFor(0b11), 0.0, 1e-9);
}

TEST(AllocationTest, PaperSlide92ResponseTime) {
  // Response R: 1.655, 2.378, 1.262, 2.190 -> {87.8%, 10.9%, 1.3%}.
  SignTable table = SignTable::FullFactorial(2);
  std::vector<double> r = {1.655, 2.378, 1.262, 2.190};
  VariationAllocation allocation = AllocateVariation(table, r);
  double a = allocation.FractionFor(0b01);
  double b = allocation.FractionFor(0b10);
  double ab = allocation.FractionFor(0b11);
  EXPECT_NEAR(a + b + ab, 1.0, 1e-9);
  EXPECT_NEAR(a, 0.878, 0.002);
  EXPECT_NEAR(b, 0.109, 0.002);
  EXPECT_NEAR(ab, 0.013, 0.002);
}

TEST(AllocationTest, FractionsSumToOneWithoutReplication) {
  SignTable table = SignTable::FullFactorial(3);
  std::vector<double> y = {5, 9, 2, 8, 1, 7, 3, 6};
  VariationAllocation allocation = AllocateVariation(table, y);
  double total = 0.0;
  for (const VariationComponent& c : allocation.components) {
    total += c.fraction;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(AllocationTest, SingleFactorExplainsEverything) {
  SignTable table = SignTable::FullFactorial(2);
  // Response depends only on A.
  std::vector<double> y = {10.0, 20.0, 10.0, 20.0};
  VariationAllocation allocation = AllocateVariation(table, y);
  EXPECT_NEAR(allocation.FractionFor(0b01), 1.0, 1e-9);
  EXPECT_NEAR(allocation.FractionFor(0b10), 0.0, 1e-9);
}

TEST(AllocationTest, ComponentsSortedByImportance) {
  SignTable table = SignTable::FullFactorial(2);
  std::vector<double> y = {15.0, 45.0, 25.0, 75.0};
  VariationAllocation allocation = AllocateVariation(table, y);
  for (size_t i = 1; i < allocation.components.size(); ++i) {
    EXPECT_GE(allocation.components[i - 1].fraction,
              allocation.components[i].fraction);
  }
}

TEST(AllocationTest, ReplicationSeparatesExperimentalError) {
  SignTable table = SignTable::FullFactorial(2);
  // Identical means as the slide-72 example but noisy replicas.
  std::vector<std::vector<double>> y = {{14.0, 16.0},
                                        {44.0, 46.0},
                                        {24.0, 26.0},
                                        {74.0, 76.0}};
  VariationAllocation allocation = AllocateVariationReplicated(table, y);
  EXPECT_GT(allocation.ErrorFraction(), 0.0);
  double total = 0.0;
  for (const VariationComponent& c : allocation.components) {
    total += c.fraction;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // SSE = sum over runs of 2 * 1^2 = 8.
  for (const VariationComponent& c : allocation.components) {
    if (c.is_error) {
      EXPECT_NEAR(c.sum_of_squares, 8.0, 1e-9);
    }
  }
}

TEST(AllocationTest, NoiseFreeReplicationHasZeroError) {
  SignTable table = SignTable::FullFactorial(2);
  std::vector<std::vector<double>> y = {
      {15.0, 15.0}, {45.0, 45.0}, {25.0, 25.0}, {75.0, 75.0}};
  VariationAllocation allocation = AllocateVariationReplicated(table, y);
  EXPECT_DOUBLE_EQ(allocation.ErrorFraction(), 0.0);
}

TEST(AllocationTest, TableRenderingShowsPercentages) {
  SignTable table = SignTable::FullFactorial(2);
  VariationAllocation allocation =
      AllocateVariation(table, {0.6041, 0.4220, 0.7922, 0.4717});
  std::string rendered = allocation.ToTable();
  EXPECT_NE(rendered.find("qB"), std::string::npos);
  EXPECT_NE(rendered.find("76.9%"), std::string::npos);
  EXPECT_NE(rendered.find("17.2%"), std::string::npos);
}

}  // namespace
}  // namespace doe
}  // namespace perfeval
