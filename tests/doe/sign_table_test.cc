#include "doe/sign_table.h"

#include <gtest/gtest.h>

namespace perfeval {
namespace doe {
namespace {

TEST(SignTableTest, TwoFactorTableMatchesPaperSlide74) {
  // Slide 74: runs (A,B) = (-1,-1), (1,-1), (-1,1), (1,1) with AB column
  // 1, -1, -1, 1.
  SignTable table = SignTable::FullFactorial(2);
  ASSERT_EQ(table.num_runs(), 4u);
  const EffectMask A = 0b01;
  const EffectMask B = 0b10;
  const EffectMask AB = 0b11;
  EXPECT_EQ(table.Column(A), (std::vector<int>{-1, 1, -1, 1}));
  EXPECT_EQ(table.Column(B), (std::vector<int>{-1, -1, 1, 1}));
  EXPECT_EQ(table.Column(AB), (std::vector<int>{1, -1, -1, 1}));
  EXPECT_EQ(table.Column(0), (std::vector<int>{1, 1, 1, 1}));
}

class SignTablePropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SignTablePropertyTest, AllColumnsZeroSum) {
  SignTable table = SignTable::FullFactorial(GetParam());
  for (EffectMask e = 1; e < (EffectMask{1} << GetParam()); ++e) {
    EXPECT_TRUE(table.IsZeroSum(e)) << EffectName(e);
  }
}

TEST_P(SignTablePropertyTest, AllColumnPairsOrthogonal) {
  size_t k = GetParam();
  SignTable table = SignTable::FullFactorial(k);
  for (EffectMask a = 0; a < (EffectMask{1} << k); ++a) {
    for (EffectMask b = a + 1; b < (EffectMask{1} << k); ++b) {
      EXPECT_TRUE(table.AreOrthogonal(a, b))
          << EffectName(a) << " vs " << EffectName(b);
    }
  }
}

TEST_P(SignTablePropertyTest, IsProper) {
  EXPECT_TRUE(SignTable::FullFactorial(GetParam()).IsProper());
}

INSTANTIATE_TEST_SUITE_P(Ks, SignTablePropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(FractionalSignTableTest, PaperSlide102Construction) {
  // 2^(7-4): base factors A,B,C; D=AB? No — slide 102 labels the
  // rightmost interaction columns AB, AC, BC, ABC as D, E, F, G.
  FractionalDesignSpec spec(
      7, {Generator{3, 0b011},    // D = AB
          Generator{4, 0b101},    // E = AC
          Generator{5, 0b110},    // F = BC
          Generator{6, 0b111}});  // G = ABC
  SignTable table = SignTable::Fractional(spec);
  EXPECT_EQ(table.num_runs(), 8u);
  EXPECT_EQ(table.num_factors(), 7u);
  // Slide 103: 7 zero-sum columns, base factor columns orthogonal.
  for (size_t f = 0; f < 7; ++f) {
    EXPECT_TRUE(table.IsZeroSum(EffectMask{1} << f)) << f;
  }
  EXPECT_TRUE(table.IsProper());
  // Row 1 of slide 102: A=-1 B=-1 C=-1 -> D=AB=1, E=AC=1, F=BC=1, G=-1.
  EXPECT_EQ(table.FactorSign(0, 3), 1);
  EXPECT_EQ(table.FactorSign(0, 4), 1);
  EXPECT_EQ(table.FactorSign(0, 5), 1);
  EXPECT_EQ(table.FactorSign(0, 6), -1);
  // Row 2: A=1 B=-1 C=-1 -> D=-1, E=-1, F=1, G=1.
  EXPECT_EQ(table.FactorSign(1, 3), -1);
  EXPECT_EQ(table.FactorSign(1, 4), -1);
  EXPECT_EQ(table.FactorSign(1, 5), 1);
  EXPECT_EQ(table.FactorSign(1, 6), 1);
}

TEST(FractionalSignTableTest, GeneratedColumnEqualsInteraction) {
  // D = ABC in a 2^(4-1): column D equals column ABC of the base table.
  FractionalDesignSpec spec(4, {Generator{3, 0b111}});
  SignTable fractional = SignTable::Fractional(spec);
  SignTable base = SignTable::FullFactorial(3);
  for (size_t run = 0; run < 8; ++run) {
    EXPECT_EQ(fractional.FactorSign(run, 3), base.ColumnSign(run, 0b111));
  }
}

TEST(FractionalSignTableTest, ConfoundedColumnsAreIdentical) {
  // In D=ABC, the AD column equals the BC column (slide 105).
  FractionalDesignSpec spec(4, {Generator{3, 0b111}});
  SignTable table = SignTable::Fractional(spec);
  EffectMask AD = 0b1001;
  EffectMask BC = 0b0110;
  for (size_t run = 0; run < table.num_runs(); ++run) {
    EXPECT_EQ(table.ColumnSign(run, AD), table.ColumnSign(run, BC));
  }
}

TEST(SignTableTest, ToTableContainsSigns) {
  SignTable table = SignTable::FullFactorial(2);
  std::string rendered = table.ToTable({0b01, 0b10, 0b11});
  EXPECT_NE(rendered.find("AB"), std::string::npos);
  EXPECT_NE(rendered.find("-1"), std::string::npos);
}

TEST(SignTableDeathTest, RejectsZeroFactors) {
  EXPECT_DEATH(SignTable::FullFactorial(0), "CHECK failed");
}

}  // namespace
}  // namespace doe
}  // namespace perfeval
