#include "doe/fractional3.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

namespace perfeval {
namespace doe {
namespace {

TEST(IsPrimeTest, SmallValues) {
  EXPECT_FALSE(IsPrime(0));
  EXPECT_FALSE(IsPrime(1));
  EXPECT_TRUE(IsPrime(2));
  EXPECT_TRUE(IsPrime(3));
  EXPECT_FALSE(IsPrime(4));
  EXPECT_TRUE(IsPrime(5));
  EXPECT_FALSE(IsPrime(9));
  EXPECT_TRUE(IsPrime(13));
}

TEST(Slide67Test, NineRunsForFourThreeLevelFactors) {
  Design design = PaperSlide67Design();
  EXPECT_EQ(design.num_runs(), 9u);
  EXPECT_EQ(design.num_factors(), 4u);
  // 9 of 81 possible combinations.
  EXPECT_EQ(FullFactorialRuns({3, 3, 3, 3}), 81);
}

TEST(Slide67Test, EveryLevelAppearsExactlyThreeTimes) {
  Design design = PaperSlide67Design();
  for (size_t f = 0; f < design.num_factors(); ++f) {
    std::map<size_t, int> counts;
    for (const DesignPoint& point : design.points()) {
      ++counts[point.levels[f]];
    }
    ASSERT_EQ(counts.size(), 3u);
    for (const auto& [level, count] : counts) {
      EXPECT_EQ(count, 3) << "factor " << f << " level " << level;
    }
  }
}

TEST(Slide67Test, PairwiseOrthogonal) {
  // Every pair of levels of every pair of factors appears exactly once —
  // the property that lets main effects be estimated from 9 runs.
  Design design = PaperSlide67Design();
  for (size_t f1 = 0; f1 < 4; ++f1) {
    for (size_t f2 = f1 + 1; f2 < 4; ++f2) {
      std::set<std::pair<size_t, size_t>> pairs;
      for (const DesignPoint& point : design.points()) {
        EXPECT_TRUE(
            pairs.insert({point.levels[f1], point.levels[f2]}).second)
            << "duplicate pair for factors " << f1 << "," << f2;
      }
      EXPECT_EQ(pairs.size(), 9u);
    }
  }
  EXPECT_TRUE(design.IsPairwiseBalanced());
}

TEST(Slide67Test, UsesThePaperCatalogue) {
  Design design = PaperSlide67Design();
  EXPECT_EQ(design.factors()[0].name(), "CPU");
  EXPECT_EQ(design.factors()[0].level_name(1), "Z80");
  EXPECT_EQ(design.factors()[3].level_name(0), "High school");
  std::string table = design.ToTable();
  EXPECT_NE(table.find("8086"), std::string::npos);
  EXPECT_NE(table.find("Postgraduate"), std::string::npos);
}

class LatinSquareSweepTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(LatinSquareSweepTest, BalancedForPrimeSizes) {
  auto [m, k] = GetParam();
  std::vector<Factor> factors;
  for (size_t f = 0; f < k; ++f) {
    std::vector<std::string> levels;
    for (size_t l = 0; l < m; ++l) {
      levels.push_back(std::to_string(l));
    }
    factors.emplace_back("F" + std::to_string(f), levels);
  }
  Design design = LatinSquareFractional(factors);
  EXPECT_EQ(design.num_runs(), m * m);
  EXPECT_TRUE(design.CoversAllLevels());
  EXPECT_TRUE(design.IsPairwiseBalanced());
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, LatinSquareSweepTest,
    ::testing::Values(std::make_tuple(2u, 3u), std::make_tuple(3u, 3u),
                      std::make_tuple(3u, 4u), std::make_tuple(5u, 4u),
                      std::make_tuple(5u, 6u), std::make_tuple(7u, 8u)));

TEST(LatinSquareDeathTest, RejectsNonPrime) {
  std::vector<Factor> factors(3, Factor("F", {"0", "1", "2", "3"}));
  EXPECT_DEATH(LatinSquareFractional(factors), "prime");
}

TEST(LatinSquareDeathTest, RejectsTooManyFactors) {
  std::vector<Factor> factors(5, Factor("F", {"0", "1", "2"}));
  EXPECT_DEATH(LatinSquareFractional(factors), "m\\+1");
}

}  // namespace
}  // namespace doe
}  // namespace perfeval
