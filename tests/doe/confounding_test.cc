#include "doe/confounding.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace perfeval {
namespace doe {
namespace {

EffectMask M(const std::string& name) {
  EffectMask mask = 0;
  EXPECT_TRUE(ParseEffectName(name, &mask)) << name;
  return mask;
}

TEST(EffectNameTest, RoundTrips) {
  for (const char* name : {"I", "A", "B", "AB", "ACD", "ABCDEFG"}) {
    EffectMask mask = 0;
    ASSERT_TRUE(ParseEffectName(name, &mask));
    EXPECT_EQ(EffectName(mask), name);
  }
}

TEST(EffectNameTest, RejectsGarbage) {
  EffectMask mask = 0;
  EXPECT_FALSE(ParseEffectName("", &mask));
  EXPECT_FALSE(ParseEffectName("a", &mask));
  EXPECT_FALSE(ParseEffectName("AA", &mask));
  EXPECT_FALSE(ParseEffectName("A B", &mask));
}

TEST(EffectNameTest, CustomFactorNames) {
  EXPECT_EQ(EffectName(0b11, {"cache", "memory"}), "cache*memory");
  EXPECT_EQ(EffectName(0, {"cache", "memory"}), "I");
}

TEST(EffectOrderTest, CountsFactors) {
  EXPECT_EQ(EffectOrder(M("I")), 0);
  EXPECT_EQ(EffectOrder(M("A")), 1);
  EXPECT_EQ(EffectOrder(M("ABD")), 3);
}

TEST(ConfoundingTest, PaperSlide105AliasesForDEqualsABC) {
  // D = ABC in a 2^(4-1) design. The paper derives:
  // AD=BC, BD=AC, AB=CD, A=BCD, B=ACD, C=ABD, I=ABCD.
  FractionalDesignSpec spec(4, {Generator{3, M("ABC")}});

  std::vector<EffectMask> words = spec.DefiningWords();
  ASSERT_EQ(words.size(), 2u);
  EXPECT_EQ(words[0], M("I"));
  EXPECT_EQ(words[1], M("ABCD"));

  auto aliased_with = [&](const std::string& a, const std::string& b) {
    std::vector<EffectMask> alias_set = spec.AliasSet(M(a));
    return std::find(alias_set.begin(), alias_set.end(), M(b)) !=
           alias_set.end();
  };
  EXPECT_TRUE(aliased_with("AD", "BC"));
  EXPECT_TRUE(aliased_with("BD", "AC"));
  EXPECT_TRUE(aliased_with("AB", "CD"));
  EXPECT_TRUE(aliased_with("A", "BCD"));
  EXPECT_TRUE(aliased_with("B", "ACD"));
  EXPECT_TRUE(aliased_with("C", "ABD"));
  EXPECT_TRUE(aliased_with("I", "ABCD"));
  // And a non-alias: A is not confounded with B.
  EXPECT_FALSE(aliased_with("A", "B"));
}

TEST(ConfoundingTest, PaperSlide108AliasesForDEqualsAB) {
  // D = AB: A=BD, B=AD, D=AB, I=ABD, AC=BCD, BC=ACD, CD=ABC, C=ABCD.
  FractionalDesignSpec spec(4, {Generator{3, M("AB")}});
  auto aliased_with = [&](const std::string& a, const std::string& b) {
    std::vector<EffectMask> alias_set = spec.AliasSet(M(a));
    return std::find(alias_set.begin(), alias_set.end(), M(b)) !=
           alias_set.end();
  };
  EXPECT_TRUE(aliased_with("A", "BD"));
  EXPECT_TRUE(aliased_with("B", "AD"));
  EXPECT_TRUE(aliased_with("D", "AB"));
  EXPECT_TRUE(aliased_with("I", "ABD"));
  EXPECT_TRUE(aliased_with("AC", "BCD"));
  EXPECT_TRUE(aliased_with("C", "ABCD"));
}

TEST(ConfoundingTest, ResolutionRanksTheTwoDesigns) {
  // Slide 108: D=ABC (resolution IV) is preferred over D=AB (III).
  FractionalDesignSpec d_abc(4, {Generator{3, M("ABC")}});
  FractionalDesignSpec d_ab(4, {Generator{3, M("AB")}});
  EXPECT_EQ(d_abc.Resolution(), 4);
  EXPECT_EQ(d_ab.Resolution(), 3);
  EXPECT_TRUE(PreferDesign(d_abc, d_ab));
  EXPECT_FALSE(PreferDesign(d_ab, d_abc));
}

TEST(ConfoundingTest, TwoToSevenMinusFourHasResolutionThree) {
  FractionalDesignSpec spec(7, {Generator{3, M("AB")}, Generator{4, M("AC")},
                                Generator{5, M("BC")},
                                Generator{6, M("ABC")}});
  EXPECT_EQ(spec.num_runs(), 8u);
  EXPECT_EQ(spec.DefiningWords().size(), 16u);
  EXPECT_EQ(spec.Resolution(), 3);
}

TEST(ConfoundingTest, AliasSetSizeIsTwoToTheP) {
  FractionalDesignSpec spec(6, {Generator{4, M("ABC")},
                                Generator{5, M("BCD")}});
  EXPECT_EQ(spec.AliasSet(M("A")).size(), 4u);
}

TEST(ConfoundingTest, AliasSetsPartitionAllEffects) {
  // Every effect appears in exactly one alias set.
  FractionalDesignSpec spec(4, {Generator{3, M("ABC")}});
  std::set<std::vector<EffectMask>> distinct_sets;
  for (EffectMask e = 0; e < 16; ++e) {
    distinct_sets.insert(spec.AliasSet(e));
  }
  EXPECT_EQ(distinct_sets.size(), 8u);  // 16 effects / 2 per set.
  size_t total = 0;
  for (const auto& alias_set : distinct_sets) {
    total += alias_set.size();
  }
  EXPECT_EQ(total, 16u);
}

TEST(ConfoundingTest, DescribeAliasesMentionsMainEffects) {
  FractionalDesignSpec spec(4, {Generator{3, M("ABC")}});
  std::string description = spec.DescribeAliases(2);
  EXPECT_NE(description.find("A = BCD"), std::string::npos);
  EXPECT_NE(description.find("AB = CD"), std::string::npos);
}

TEST(ConfoundingDeathTest, RejectsMainEffectGenerator) {
  EXPECT_DEATH(FractionalDesignSpec(4, {Generator{3, M("A")}}),
               "interaction");
}

TEST(ConfoundingDeathTest, RejectsBaseFactorTarget) {
  EXPECT_DEATH(FractionalDesignSpec(4, {Generator{0, M("AB")}}),
               "non-base");
}

}  // namespace
}  // namespace doe
}  // namespace perfeval
