#include "report/gnuplot.h"

#include <fstream>

#include <gtest/gtest.h>

namespace perfeval {
namespace report {
namespace {

ChartSpec BasicSpec() {
  ChartSpec spec;
  spec.title = "Execution time for various scale factors";
  spec.x_label = "Scale factor";
  spec.y_label = "Execution time (ms)";
  core::Series series;
  series.name = "Q1";
  series.Append(1, 1234);
  series.Append(2, 2467);
  series.Append(3, 4623);
  spec.series.push_back(series);
  return spec;
}

TEST(GnuplotTest, ScriptContainsPaperElements) {
  // Mirrors the paper's slide-202 example command file.
  std::string script =
      GnuplotScript(BasicSpec(), "results.csv", "results.eps");
  EXPECT_NE(script.find("set terminal postscript"), std::string::npos);
  EXPECT_NE(script.find("set output \"results.eps\""), std::string::npos);
  EXPECT_NE(script.find(
                "set title \"Execution time for various scale factors\""),
            std::string::npos);
  EXPECT_NE(script.find("set xlabel \"Scale factor\""), std::string::npos);
  EXPECT_NE(script.find("set ylabel \"Execution time (ms)\""),
            std::string::npos);
  EXPECT_NE(script.find("plot \"results.csv\""), std::string::npos);
  EXPECT_NE(script.find("linespoints"), std::string::npos);
}

TEST(GnuplotTest, AspectRatioRuleFromSlide146) {
  // width_fraction x of \textwidth => set size ratio 0 x*1.5,x.
  ChartSpec spec = BasicSpec();
  spec.width_fraction = 0.5;
  std::string script = GnuplotScript(spec, "d.csv", "d.eps");
  EXPECT_NE(script.find("set size ratio 0 0.750,0.500"), std::string::npos);
}

TEST(GnuplotTest, YAxisStartsAtZeroByDefault) {
  std::string script = GnuplotScript(BasicSpec(), "d.csv", "d.eps");
  EXPECT_NE(script.find("set yrange [0:*]"), std::string::npos);
}

TEST(GnuplotTest, NonzeroOriginIsOptIn) {
  ChartSpec spec = BasicSpec();
  spec.allow_nonzero_y_origin = true;
  std::string script = GnuplotScript(spec, "d.csv", "d.eps");
  EXPECT_EQ(script.find("set yrange [0:*]"), std::string::npos);
}

TEST(GnuplotTest, LogScales) {
  ChartSpec spec = BasicSpec();
  spec.logscale_x = true;
  spec.logscale_y = true;
  std::string script = GnuplotScript(spec, "d.csv", "d.eps");
  EXPECT_NE(script.find("set logscale x"), std::string::npos);
  EXPECT_NE(script.find("set logscale y"), std::string::npos);
}

TEST(GnuplotTest, MultipleSeriesGetOwnPlotClauses) {
  ChartSpec spec = BasicSpec();
  core::Series second;
  second.name = "Q16";
  second.Append(1, 10);
  second.Append(2, 20);
  second.Append(3, 30);
  spec.series.push_back(second);
  std::string script = GnuplotScript(spec, "d.csv", "d.eps");
  EXPECT_NE(script.find("title \"Q1\""), std::string::npos);
  EXPECT_NE(script.find("title \"Q16\""), std::string::npos);
  EXPECT_NE(script.find("using 1:3"), std::string::npos);
}

TEST(GnuplotTest, BarChartsUseHistogramStyle) {
  ChartSpec spec = BasicSpec();
  spec.style = ChartStyle::kBars;
  std::string script = GnuplotScript(spec, "d.csv", "d.eps");
  EXPECT_NE(script.find("histogram"), std::string::npos);
  EXPECT_NE(script.find("xtic(1)"), std::string::npos);
}

TEST(GnuplotTest, StackedBars) {
  ChartSpec spec = BasicSpec();
  spec.style = ChartStyle::kStackedBars;
  std::string script = GnuplotScript(spec, "d.csv", "d.eps");
  EXPECT_NE(script.find("rowstacked"), std::string::npos);
}

TEST(GnuplotTest, WriteChartEmitsCsvAndScript) {
  std::string stem = ::testing::TempDir() + "/chart_test/f2";
  ASSERT_TRUE(WriteChart(BasicSpec(), stem).ok());
  std::ifstream csv(stem + ".csv");
  std::ifstream gnu(stem + ".gnu");
  EXPECT_TRUE(csv.good());
  EXPECT_TRUE(gnu.good());
  std::string first_line;
  std::getline(csv, first_line);
  EXPECT_EQ(first_line, "x,Q1");
  std::ifstream svg(stem + ".svg");
  EXPECT_TRUE(svg.good());
}

}  // namespace
}  // namespace report
}  // namespace perfeval
