#include "report/table_format.h"

#include <gtest/gtest.h>

namespace perfeval {
namespace report {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable table;
  table.SetHeader({"query", "time (ms)"});
  table.AddRow({"Q1", "3534"});
  table.AddRow({"Q16", "707"});
  std::string text = table.ToString();
  // Right-aligned by default: the shorter value is padded.
  EXPECT_NE(text.find("query"), std::string::npos);
  EXPECT_NE(text.find("3534"), std::string::npos);
  // Each line has the same length.
  std::vector<size_t> lengths;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n') {
      if (i > start) {
        lengths.push_back(i - start);
      }
      start = i + 1;
    }
  }
  for (size_t len : lengths) {
    EXPECT_EQ(len, lengths[0]);
  }
}

TEST(TextTableTest, LeftAlignmentOption) {
  TextTable table;
  table.SetHeader({"name", "value"});
  table.SetAlignments({Align::kLeft, Align::kRight});
  table.AddRow({"a", "1"});
  table.AddRow({"long-name", "2"});
  std::string text = table.ToString();
  // "a" starts at column 0 of its row (left aligned).
  EXPECT_NE(text.find("\na "), std::string::npos);
}

TEST(TextTableTest, SeparatorRows) {
  TextTable table;
  table.SetHeader({"x"});
  table.AddRow({"1"});
  table.AddSeparator();
  table.AddRow({"2"});
  std::string text = table.ToString();
  // Header separator plus the explicit one.
  int dashes_lines = 0;
  size_t pos = 0;
  while ((pos = text.find("\n-", pos)) != std::string::npos) {
    ++dashes_lines;
    pos += 2;
  }
  EXPECT_EQ(dashes_lines, 2);
}

TEST(TextTableDeathTest, RowWidthMismatchAborts) {
  TextTable table;
  table.SetHeader({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "row width");
}

TEST(TextTableTest, CountsDataRows) {
  TextTable table;
  table.SetHeader({"a"});
  EXPECT_EQ(table.num_rows(), 0u);
  table.AddRow({"1"});
  table.AddRow({"2"});
  EXPECT_EQ(table.num_rows(), 2u);
}


TEST(TextTableTest, MarkdownRendering) {
  TextTable table;
  table.SetHeader({"query", "time (ms)"});
  table.SetAlignments({Align::kLeft, Align::kRight});
  table.AddRow({"Q1", "3534"});
  table.AddSeparator();
  table.AddRow({"Q16", "707"});
  EXPECT_EQ(table.ToMarkdown(),
            "| query | time (ms) |\n"
            "|:---|---:|\n"
            "| Q1 | 3534 |\n"
            "| Q16 | 707 |\n");
}

TEST(TextTableTest, LatexRenderingEscapesSpecials) {
  TextTable table;
  table.SetHeader({"effect", "%var"});
  table.SetAlignments({Align::kLeft, Align::kRight});
  table.AddRow({"q_A & co", "77.0%"});
  std::string latex = table.ToLatex();
  EXPECT_NE(latex.find("\\begin{tabular}{lr}"), std::string::npos);
  EXPECT_NE(latex.find("effect & \\%var"), std::string::npos);
  EXPECT_NE(latex.find("q\\_A \\& co & 77.0\\%"), std::string::npos);
  EXPECT_NE(latex.find("\\end{tabular}"), std::string::npos);
}

TEST(TextTableTest, LatexSeparatorsBecomeHlines) {
  TextTable table;
  table.SetHeader({"a"});
  table.AddRow({"1"});
  table.AddSeparator();
  table.AddRow({"2"});
  std::string latex = table.ToLatex();
  // header hline pair + separator + trailing = 4 \hline lines.
  size_t count = 0;
  size_t pos = 0;
  while ((pos = latex.find("\\hline", pos)) != std::string::npos) {
    ++count;
    pos += 6;
  }
  EXPECT_EQ(count, 4u);
}

}  // namespace
}  // namespace report
}  // namespace perfeval
