#include "report/chart_lint.h"

#include <gtest/gtest.h>

namespace perfeval {
namespace report {
namespace {

core::Series MakeSeries(const std::string& name, double scale = 1.0) {
  core::Series series;
  series.name = name;
  for (int i = 0; i < 5; ++i) {
    series.Append(i, scale * (10.0 + i));
  }
  return series;
}

ChartSpec CleanSpec() {
  ChartSpec spec;
  spec.title = "Response time under load";
  spec.x_label = "Number of users";
  spec.y_label = "Response time (ms)";
  spec.series = {MakeSeries("system A"), MakeSeries("system B")};
  return spec;
}

bool HasRule(const std::vector<LintFinding>& findings,
             const std::string& rule) {
  for (const LintFinding& finding : findings) {
    if (finding.rule == rule) {
      return true;
    }
  }
  return false;
}

TEST(ChartLintTest, CleanChartHasNoFindings) {
  EXPECT_TRUE(LintChart(CleanSpec()).empty());
}

TEST(ChartLintTest, TooManyCurves) {
  // Slide 128: "A line chart should be limited at 6 curves".
  ChartSpec spec = CleanSpec();
  spec.series.clear();
  for (int i = 0; i < 7; ++i) {
    spec.series.push_back(MakeSeries("system " + std::to_string(i)));
  }
  EXPECT_TRUE(HasRule(LintChart(spec), "too-many-curves"));
}

TEST(ChartLintTest, SixCurvesAreStillFine) {
  ChartSpec spec = CleanSpec();
  spec.series.clear();
  for (int i = 0; i < 6; ++i) {
    spec.series.push_back(MakeSeries("system " + std::to_string(i)));
  }
  EXPECT_FALSE(HasRule(LintChart(spec), "too-many-curves"));
}

TEST(ChartLintTest, TooManyBars) {
  // Slide 128: "A column chart or bar should be limited to 10 bars".
  ChartSpec spec = CleanSpec();
  spec.style = ChartStyle::kBars;
  spec.series.clear();
  core::Series wide = MakeSeries("times");
  for (int i = 5; i < 12; ++i) {
    wide.Append(i, 10.0 + i);
  }
  spec.series = {wide};  // 12 x-positions x 1 series = 12 bars.
  EXPECT_TRUE(HasRule(LintChart(spec), "too-many-bars"));
}

TEST(ChartLintTest, MissingUnitInYLabel) {
  // Slide 122: prefer "CPU time (ms)" to "CPU time".
  ChartSpec spec = CleanSpec();
  spec.y_label = "CPU time";
  EXPECT_TRUE(HasRule(LintChart(spec), "missing-unit"));
}

TEST(ChartLintTest, DimensionlessLabelsNeedNoUnit) {
  ChartSpec spec = CleanSpec();
  spec.y_label = "relative execution time: DBG/OPT ratio";
  EXPECT_FALSE(HasRule(LintChart(spec), "missing-unit"));
  spec.y_label = "Speedup factor";
  EXPECT_FALSE(HasRule(LintChart(spec), "missing-unit"));
}

TEST(ChartLintTest, MissingAxisLabels) {
  ChartSpec spec = CleanSpec();
  spec.x_label = "";
  std::vector<LintFinding> findings = LintChart(spec);
  EXPECT_TRUE(HasRule(findings, "missing-axis-label"));
}

TEST(ChartLintTest, NonzeroYOriginFlagged) {
  // The "MINE is better than YOURS" pictorial game (slide 138).
  ChartSpec spec = CleanSpec();
  spec.allow_nonzero_y_origin = true;
  EXPECT_TRUE(HasRule(LintChart(spec), "nonzero-y-origin"));
}

TEST(ChartLintTest, LogScaleExemptFromZeroOrigin) {
  ChartSpec spec = CleanSpec();
  spec.allow_nonzero_y_origin = true;
  spec.logscale_y = true;
  EXPECT_FALSE(HasRule(LintChart(spec), "nonzero-y-origin"));
}

TEST(ChartLintTest, MixedResultVariablesDetected) {
  // Slide 129: response time + utilization + throughput on one chart.
  ChartSpec spec = CleanSpec();
  spec.series = {MakeSeries("response time", 1.0),
                 MakeSeries("utilization", 0.001),
                 MakeSeries("throughput", 1000.0)};
  EXPECT_TRUE(HasRule(LintChart(spec), "mixed-y-axes"));
}

TEST(ChartLintTest, SymbolicLegendDetected) {
  // Slide 131: "mu=1" makes the reader's brain compute a join.
  ChartSpec spec = CleanSpec();
  spec.series = {MakeSeries("mu=1"), MakeSeries("mu=2")};
  std::vector<LintFinding> findings = LintChart(spec);
  EXPECT_TRUE(HasRule(findings, "symbolic-legend"));
  // Keyword names like "1 job/sec" pass.
  spec.series = {MakeSeries("1 job/sec"), MakeSeries("2 jobs/sec")};
  EXPECT_FALSE(HasRule(LintChart(spec), "symbolic-legend"));
}

TEST(ChartLintTest, HistogramCellRule) {
  stats::Histogram sparse(0.0, 12.0, 6);
  sparse.Add(1.0);  // one cell with 1 point, others empty.
  EXPECT_FALSE(LintHistogram(sparse).empty());

  stats::Histogram dense(0.0, 2.0, 1);
  for (int i = 0; i < 10; ++i) {
    dense.Add(1.0);
  }
  EXPECT_TRUE(LintHistogram(dense).empty());
}

TEST(ChartLintTest, FindingsToStringFormat) {
  ChartSpec spec = CleanSpec();
  spec.y_label = "CPU time";
  std::string text = FindingsToString(LintChart(spec));
  EXPECT_NE(text.find("[missing-unit]"), std::string::npos);
  EXPECT_EQ(FindingsToString({}), "");
}

}  // namespace
}  // namespace report
}  // namespace perfeval
