#include "report/svg.h"

#include <fstream>

#include <gtest/gtest.h>

namespace perfeval {
namespace report {
namespace {

int CountOccurrences(const std::string& haystack,
                     const std::string& needle) {
  int count = 0;
  size_t pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

ChartSpec LineSpec() {
  ChartSpec spec;
  spec.title = "Execution time for various scale factors";
  spec.x_label = "Scale factor";
  spec.y_label = "Execution time (ms)";
  core::Series q1;
  q1.name = "Q1";
  q1.Append(1, 1234);
  q1.Append(2, 2467);
  q1.Append(3, 4623);
  core::Series q6;
  q6.name = "Q6";
  q6.Append(1, 400);
  q6.Append(2, 800);
  q6.Append(3, 1200);
  spec.series = {q1, q6};
  return spec;
}

TEST(SvgTest, DocumentStructure) {
  std::string svg = RenderSvg(LineSpec());
  EXPECT_NE(svg.find("<svg xmlns=\"http://www.w3.org/2000/svg\""),
            std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("Execution time for various scale factors"),
            std::string::npos);
  EXPECT_NE(svg.find("Scale factor"), std::string::npos);
  EXPECT_NE(svg.find("Execution time (ms)"), std::string::npos);
}

TEST(SvgTest, OnePolylinePerSeriesPlusLegend) {
  std::string svg = RenderSvg(LineSpec());
  EXPECT_EQ(CountOccurrences(svg, "<polyline"), 2);
  // Legend keywords present.
  EXPECT_NE(svg.find(">Q1</text>"), std::string::npos);
  EXPECT_NE(svg.find(">Q6</text>"), std::string::npos);
  // One point marker per data point.
  EXPECT_EQ(CountOccurrences(svg, "<circle"), 6);
}

TEST(SvgTest, YAxisAnchoredAtZero) {
  // Data minimum is 400, but the y ticks must include 0 (slide 138).
  std::string svg = RenderSvg(LineSpec());
  EXPECT_NE(svg.find(">0</text>"), std::string::npos);
}

TEST(SvgTest, NonzeroOriginOnlyWhenOptedIn) {
  ChartSpec spec = LineSpec();
  spec.allow_nonzero_y_origin = true;
  // All y values >= 400: with a free origin the 0 tick disappears.
  std::string svg = RenderSvg(spec);
  EXPECT_EQ(svg.find(">0</text>"), std::string::npos);
}

TEST(SvgTest, AspectRatioIsTwoThirds) {
  std::string svg = RenderSvg(LineSpec(), 720);
  EXPECT_NE(svg.find("width=\"720\" height=\"480\""), std::string::npos);
}

TEST(SvgTest, ErrorBarsDrawWhiskers) {
  ChartSpec spec;
  spec.title = "with error bars";
  spec.x_label = "x";
  spec.y_label = "y (ms)";
  spec.style = ChartStyle::kErrorBars;
  core::Series series;
  series.name = "measured";
  series.AppendWithError(1, 10, 2);
  series.AppendWithError(2, 12, 1);
  spec.series = {series};
  std::string svg = RenderSvg(spec);
  // 3 lines per point (stem + 2 caps) on top of gridlines.
  EXPECT_GE(CountOccurrences(svg, "<line"), 6);
}

TEST(SvgTest, BarChartRectangles) {
  ChartSpec spec;
  spec.title = "bars";
  spec.x_label = "year";
  spec.y_label = "ns/iteration (ns)";
  spec.style = ChartStyle::kBars;
  core::Series cpu;
  cpu.name = "CPU";
  cpu.Append(1992, 120);
  cpu.Append(1996, 25);
  core::Series mem;
  mem.name = "Memory";
  mem.Append(1992, 130);
  mem.Append(1996, 175);
  spec.series = {cpu, mem};
  std::string svg = RenderSvg(spec);
  // Background + legend swatches (2) + data bars (4).
  EXPECT_GE(CountOccurrences(svg, "<rect"), 7);
  EXPECT_NE(svg.find(">1992</text>"), std::string::npos);
}

TEST(SvgTest, StackedBarsCoverTotals) {
  ChartSpec spec;
  spec.title = "stacked";
  spec.x_label = "year";
  spec.y_label = "time (ns)";
  spec.style = ChartStyle::kStackedBars;
  core::Series a;
  a.name = "CPU";
  a.Append(1, 100);
  core::Series b;
  b.name = "Memory";
  b.Append(1, 150);
  spec.series = {a, b};
  std::string svg = RenderSvg(spec);
  // The y axis must reach the stack total (250): a tick at or above 250.
  EXPECT_NE(svg.find(">250</text>"), std::string::npos);
}

TEST(SvgTest, LogScaleDecadeTicks) {
  ChartSpec spec = LineSpec();
  spec.logscale_x = true;
  spec.logscale_y = true;
  spec.series[0].x = {10, 100, 1000};
  spec.series[1].x = {10, 100, 1000};
  std::string svg = RenderSvg(spec);
  EXPECT_NE(svg.find(">10</text>"), std::string::npos);
  EXPECT_NE(svg.find(">100</text>"), std::string::npos);
  EXPECT_NE(svg.find(">1000</text>"), std::string::npos);
}

TEST(SvgTest, XmlEscaping) {
  ChartSpec spec = LineSpec();
  spec.title = "a < b & c > d";
  std::string svg = RenderSvg(spec);
  EXPECT_NE(svg.find("a &lt; b &amp; c &gt; d"), std::string::npos);
  EXPECT_EQ(svg.find("a < b & c"), std::string::npos);
}

TEST(SvgTest, DeterministicOutput) {
  EXPECT_EQ(RenderSvg(LineSpec()), RenderSvg(LineSpec()));
}

TEST(SvgTest, WriteSvgChartProducesBothFiles) {
  std::string stem = ::testing::TempDir() + "/svg_chart_test/fig";
  ASSERT_TRUE(WriteSvgChart(LineSpec(), stem).ok());
  std::ifstream svg(stem + ".svg");
  std::ifstream csv(stem + ".csv");
  EXPECT_TRUE(svg.good());
  EXPECT_TRUE(csv.good());
  std::string first_line;
  std::getline(svg, first_line);
  EXPECT_NE(first_line.find("<svg"), std::string::npos);
}

}  // namespace
}  // namespace report
}  // namespace perfeval
