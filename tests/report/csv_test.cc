#include "report/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace perfeval {
namespace report {
namespace {

TEST(CsvTest, BasicRendering) {
  CsvWriter writer({"x", "y"});
  writer.AddRow({"1", "2"});
  writer.AddNumericRow({3.5, 4.25});
  EXPECT_EQ(writer.ToString(), "x,y\n1,2\n3.5,4.25\n");
}

TEST(CsvTest, QuotesSpecialCharacters) {
  CsvWriter writer({"name"});
  writer.AddRow({"has,comma"});
  writer.AddRow({"has\"quote"});
  writer.AddRow({"has\nnewline"});
  EXPECT_EQ(writer.ToString(),
            "name\n\"has,comma\"\n\"has\"\"quote\"\n\"has\nnewline\"\n");
}

TEST(CsvTest, WritesToFileCreatingDirectories) {
  std::string dir = ::testing::TempDir() + "/csv_test_sub";
  std::string path = dir + "/deep/result.csv";
  CsvWriter writer({"a"});
  writer.AddRow({"1"});
  ASSERT_TRUE(writer.WriteToFile(path).ok());
  std::ifstream file(path);
  std::string content((std::istreambuf_iterator<char>(file)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "a\n1\n");
}

TEST(CsvDeathTest, EmptyHeaderAborts) {
  EXPECT_DEATH(CsvWriter({}), "CHECK failed");
}

TEST(CsvDeathTest, RowWidthMismatchAborts) {
  CsvWriter writer({"a", "b"});
  EXPECT_DEATH(writer.AddRow({"1"}), "CHECK failed");
}

TEST(SeriesCsvTest, MultipleSeriesShareX) {
  core::Series s1;
  s1.name = "DBG";
  s1.Append(1, 100);
  s1.Append(2, 200);
  core::Series s2;
  s2.name = "OPT";
  s2.Append(1, 50);
  s2.Append(2, 90);
  std::string path = ::testing::TempDir() + "/series.csv";
  ASSERT_TRUE(WriteSeriesCsv({s1, s2}, path).ok());
  std::ifstream file(path);
  std::string line;
  std::getline(file, line);
  EXPECT_EQ(line, "x,DBG,OPT");
  std::getline(file, line);
  EXPECT_EQ(line, "1,100,50");
}

TEST(SeriesCsvTest, MismatchedLengthsRejected) {
  core::Series s1;
  s1.Append(1, 1);
  core::Series s2;
  s2.Append(1, 1);
  s2.Append(2, 2);
  Status status = WriteSeriesCsv({s1, s2}, "/tmp/nope.csv");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(SeriesCsvTest, EmptySeriesListRejected) {
  EXPECT_FALSE(WriteSeriesCsv({}, "/tmp/nope.csv").ok());
}

}  // namespace
}  // namespace report
}  // namespace perfeval
