// Unit coverage for the src/engine subsystem: the packed row layout
// (pack/unpack round-trips every column type including NULL masks), the
// row pager's I/O accounting (full-tuple cold charges, warm hits,
// eviction, ReplaceTable cold), the row-store executor's determinism
// contract (results and StorageStats identical at any thread count),
// checked execution, overflow propagation, concurrent Execute safety
// (the TSan surface), and the backend-kind knob parsing.

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "db/backend_kind.h"
#include "db/database.h"
#include "db/error.h"
#include "db/expr.h"
#include "db/plan.h"
#include "db/reference.h"
#include "engine/backend.h"
#include "engine/columnar_backend.h"
#include "engine/row_backend.h"
#include "engine/row_layout.h"
#include "engine/row_pager.h"
#include "workload/tpch_gen.h"
#include "workload/tpch_queries.h"

namespace perfeval {
namespace engine {
namespace {

using db::DataType;
using db::Value;

// ---- Backend-kind knob ----

TEST(BackendKindTest, ParsesCanonicalNamesAndAliases) {
  EXPECT_EQ(db::ParseBackendKind("col").value(), db::BackendKind::kColumnar);
  EXPECT_EQ(db::ParseBackendKind("columnar").value(),
            db::BackendKind::kColumnar);
  EXPECT_EQ(db::ParseBackendKind("row").value(), db::BackendKind::kRowStore);
  EXPECT_EQ(db::ParseBackendKind("rowstore").value(),
            db::BackendKind::kRowStore);
  EXPECT_STREQ(db::BackendKindName(db::BackendKind::kColumnar), "col");
  EXPECT_STREQ(db::BackendKindName(db::BackendKind::kRowStore), "row");
}

TEST(BackendKindTest, RejectsTyposAsUsageErrors) {
  for (const char* bad : {"", "Row", "COL", "column", "rows", "both"}) {
    Result<db::BackendKind> kind = db::ParseBackendKind(bad);
    EXPECT_FALSE(kind.ok()) << bad;
    EXPECT_EQ(kind.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

// ---- Row layout ----

db::Schema AllTypesSchema() {
  return db::Schema({{"i", DataType::kInt64},
                     {"d", DataType::kDouble},
                     {"s", DataType::kString},
                     {"t", DataType::kDate}});
}

/// A table exercising every type with NULLs sprinkled in every column —
/// including row 0 (leading NULL bits) and a NULL in the final row.
std::shared_ptr<db::Table> AllTypesTable(size_t n) {
  auto table = std::make_shared<db::Table>(AllTypesSchema());
  for (size_t r = 0; r < n; ++r) {
    std::vector<Value> row;
    row.push_back(r % 5 == 0 ? Value::Null(DataType::kInt64)
                             : Value::Int64(static_cast<int64_t>(r) - 3));
    row.push_back(r % 7 == 1 ? Value::Null(DataType::kDouble)
                             : Value::Double(0.25 * static_cast<double>(r)));
    row.push_back(r % 3 == 2
                      ? Value::Null(DataType::kString)
                      : Value::String("str_" + std::to_string(r % 11)));
    row.push_back(r + 1 == n ? Value::Null(DataType::kDate)
                             : Value::Date(static_cast<int32_t>(10000 + r)));
    table->AppendRow(row);
  }
  return table;
}

TEST(RowLayoutTest, StrideAndNullBitmapShape) {
  RowLayout narrow = RowLayout::For(db::Schema({{"a", DataType::kInt64}}));
  EXPECT_EQ(narrow.stride(), 8u + 8u);  // 1 null byte padded to 8, 1 slot.
  // 9 columns need 2 null bytes, still one 8-byte bitmap word.
  std::vector<db::ColumnSpec> specs;
  for (int i = 0; i < 9; ++i) {
    specs.push_back({"c" + std::to_string(i), DataType::kInt64});
  }
  RowLayout wide = RowLayout::For(db::Schema(specs));
  EXPECT_EQ(wide.stride(), 8u + 9u * 8u);
  EXPECT_EQ(wide.SlotOffset(0), 8u);
  EXPECT_EQ(RowLayout::NullByte(8), 1u);
  EXPECT_EQ(RowLayout::NullBit(8), 1u);
}

TEST(RowLayoutTest, PackUnpackRoundTripsAllTypesAndNullMasks) {
  for (size_t n : {0u, 1u, 7u, 64u, 257u}) {
    std::shared_ptr<db::Table> table = AllTypesTable(n);
    RowBlock block = PackTable(*table);
    ASSERT_EQ(block.num_rows(), n);
    std::shared_ptr<db::Table> back = UnpackToTable(block);
    EXPECT_EQ(db::DiffTables(*back, *table, 0.0,
                             /*ignore_row_order=*/false),
              "")
        << "n=" << n;
    // Spot-check the typed readers against the source values.
    for (size_t r = 0; r < n; ++r) {
      for (size_t c = 0; c < 4; ++c) {
        Value expect = table->ValueAt(r, c);
        EXPECT_EQ(block.IsNull(r, c), expect.is_null());
        Value got = block.ValueAt(r, c);
        EXPECT_EQ(got.ToString(), expect.ToString());
      }
    }
  }
}

TEST(RowLayoutTest, StringHeapSlotMath) {
  StringHeap heap;
  uint64_t a = heap.Append("hello");
  uint64_t b = heap.Append("world!");
  EXPECT_EQ(heap.At(a), "hello");
  EXPECT_EQ(heap.At(b), "world!");
  EXPECT_EQ(StringHeap::SlotLength(b), 6u);

  StringHeap merged;
  uint32_t d0 = merged.AppendHeap(heap);
  EXPECT_EQ(d0, 0u);
  StringHeap other;
  uint64_t c = other.Append("xyz");
  uint32_t delta = merged.AppendHeap(other);
  EXPECT_EQ(delta, heap.size_bytes());
  EXPECT_EQ(merged.At(StringHeap::ShiftSlot(c, delta)), "xyz");
  EXPECT_EQ(merged.At(a), "hello");  // original slots stay valid.
}

// ---- Row pager ----

TEST(RowPagerTest, ColdChargesFullTupleBytesThenWarmHits) {
  std::shared_ptr<db::Table> table = AllTypesTable(100);
  RowBlock block = PackTable(*table);
  db::DiskModel disk;
  RowPager pager(disk, /*buffer_pool_pages=*/64, /*rows_per_page=*/16);
  pager.RegisterTable(1, block);
  EXPECT_EQ(pager.NumPages(1), 7u);  // ceil(100 / 16).

  db::StorageStats cold = pager.TouchRows(1, 0, 100);
  EXPECT_EQ(cold.page_misses, 7);
  EXPECT_EQ(cold.page_hits, 0);
  // A row page carries complete tuples: packed stride bytes plus the
  // string payload, i.e. exactly the block's byte size over all pages.
  EXPECT_EQ(static_cast<size_t>(cold.bytes_read), block.ByteSize());
  // One seek for the first page, then the stream is sequential.
  int64_t expect_stall =
      disk.seek_ns +
      static_cast<int64_t>(cold.bytes_read * disk.ns_per_byte);
  EXPECT_EQ(cold.stall_ns, expect_stall);

  db::StorageStats warm = pager.TouchRows(1, 0, 100);
  EXPECT_EQ(warm.page_misses, 0);
  EXPECT_EQ(warm.page_hits, 7);
  EXPECT_EQ(warm.bytes_read, 0);
  EXPECT_EQ(warm.stall_ns, 0);

  pager.FlushCaches();
  db::StorageStats again = pager.TouchRows(1, 0, 100);
  EXPECT_EQ(again.page_misses, 7);
}

TEST(RowPagerTest, EvictsPastPoolBudgetAndReplaceTableGoesCold) {
  std::shared_ptr<db::Table> table = AllTypesTable(100);
  RowBlock block = PackTable(*table);
  // Pool holds 4 of the 7 pages: a full sweep always evicts the head of
  // the scan, so the next sweep misses everything (sequential flooding).
  RowPager pager(db::DiskModel(), /*buffer_pool_pages=*/4,
                 /*rows_per_page=*/16);
  pager.RegisterTable(1, block);
  (void)pager.TouchRows(1, 0, 100);
  db::StorageStats sweep = pager.TouchRows(1, 0, 100);
  EXPECT_EQ(sweep.page_misses, 7);

  // Touch a prefix that fits: resident afterwards.
  RowPager fits(db::DiskModel(), /*buffer_pool_pages=*/4,
                /*rows_per_page=*/16);
  fits.RegisterTable(1, block);
  (void)fits.TouchRows(1, 0, 48);
  EXPECT_EQ(fits.TouchRows(1, 0, 48).page_hits, 3);

  // ReplaceTable evicts the old version: the new pages are cold.
  fits.ReplaceTable(1, block);
  db::StorageStats replaced = fits.TouchRows(1, 0, 48);
  EXPECT_EQ(replaced.page_misses, 3);
  EXPECT_EQ(replaced.page_hits, 0);
}

// ---- Row-store backend ----

db::PlanPtr AllTypesFilterPlan(const db::Schema& schema) {
  return db::Sort(
      db::Project(
          db::FilterScan("t", {}, db::Ge(db::Col(schema, "i"),
                                         db::LitInt(0))),
          {db::Col(schema, "i"), db::Col(schema, "s"),
           db::Mul(db::Col(schema, "d"), db::LitDouble(2.0))},
          {"i", "s", "d2"}),
      {{"i", true}});
}

/// Results and per-execution StorageStats must be identical at any
/// thread count — batches are fixed-size and I/O is charged by the
/// coordinator in row order, never by worker interleaving.
TEST(RowBackendTest, DeterministicResultsAndStatsAcrossThreadCounts) {
  RowStoreBackend::Options options;
  options.batch_rows = 16;  // Many batches even on a small table.
  RowStoreBackend backend(options);
  std::shared_ptr<db::Table> table = AllTypesTable(300);
  backend.RegisterTable("t", std::make_shared<db::Table>(*table));
  db::PlanPtr plan = AllTypesFilterPlan(table->schema());

  std::shared_ptr<const db::Table> baseline;
  db::StorageStats base_stats;
  for (int threads : {1, 2, 8}) {
    backend.FlushCaches();
    ExecOptions exec;
    exec.threads = threads;
    exec.check = true;
    BackendResult result = backend.Execute(plan, exec);
    if (baseline == nullptr) {
      baseline = result.table;
      base_stats = result.storage;
      continue;
    }
    EXPECT_EQ(db::DiffTables(*result.table, *baseline, 0.0,
                             /*ignore_row_order=*/false),
              "")
        << "threads=" << threads;
    EXPECT_EQ(result.storage.page_hits, base_stats.page_hits);
    EXPECT_EQ(result.storage.page_misses, base_stats.page_misses);
    EXPECT_EQ(result.storage.bytes_read, base_stats.bytes_read);
    EXPECT_EQ(result.storage.stall_ns, base_stats.stall_ns);
  }
}

/// The boundary cases of fixed-size batching: row counts straddling the
/// batch size must neither drop nor duplicate rows on any operator path.
TEST(RowBackendTest, BatchBoundaryRowCounts) {
  for (size_t n : {15u, 16u, 17u, 31u, 32u, 33u}) {
    RowStoreBackend::Options options;
    options.batch_rows = 16;
    RowStoreBackend backend(options);
    std::shared_ptr<db::Table> table = AllTypesTable(n);
    backend.RegisterTable("t", std::make_shared<db::Table>(*table));
    db::PlanPtr plan = AllTypesFilterPlan(table->schema());
    for (int threads : {1, 4}) {
      ExecOptions exec;
      exec.threads = threads;
      exec.check = true;
      BackendResult result = backend.Execute(plan, exec);
      // Independent expectation: count rows with non-NULL i >= 0.
      size_t expect = 0;
      for (size_t r = 0; r < n; ++r) {
        Value v = table->ValueAt(r, 0);
        if (!v.is_null() && v.AsInt64() >= 0) {
          ++expect;
        }
      }
      EXPECT_EQ(result.table->num_rows(), expect)
          << "n=" << n << " threads=" << threads;
    }
  }
}

TEST(RowBackendTest, SumOverflowThrowsOutOfRange) {
  RowStoreBackend backend;
  auto table = std::make_shared<db::Table>(
      db::Schema({{"v", DataType::kInt64}}));
  table->AppendRow({Value::Int64(std::numeric_limits<int64_t>::max())});
  table->AppendRow({Value::Int64(1)});
  backend.RegisterTable("t", table);
  db::PlanPtr plan = db::Aggregate(
      db::Scan("t"), {},
      {{db::AggOp::kSum, db::Col(table->schema(), "v"), "s"}});
  try {
    (void)backend.Execute(plan, ExecOptions());
    FAIL() << "expected QueryError";
  } catch (const db::QueryError& e) {
    EXPECT_EQ(e.code(), StatusCode::kOutOfRange);
  }
}

/// Concurrent executions over one backend share immutable blocks and a
/// locked pager; run the same plan from several threads and require every
/// result identical (the TSan job drives this test).
TEST(RowBackendTest, ConcurrentExecuteIsSafeAndAgrees) {
  RowStoreBackend backend;
  std::shared_ptr<db::Table> table = AllTypesTable(500);
  backend.RegisterTable("t", std::make_shared<db::Table>(*table));
  db::PlanPtr plan = AllTypesFilterPlan(table->schema());
  BackendResult expected = backend.Execute(plan, ExecOptions());

  constexpr int kThreads = 4;
  std::vector<std::shared_ptr<const db::Table>> results(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&backend, &plan, &results, i] {
      ExecOptions exec;
      exec.threads = 2;
      results[i] = backend.Execute(plan, exec).table;
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_EQ(db::DiffTables(*results[i], *expected.table, 0.0,
                             /*ignore_row_order=*/false),
              "")
        << "worker " << i;
  }
}

// ---- The two backends side by side ----

TEST(BackendFactoryTest, CreatesBothKindsOverOneDatabase) {
  db::Database database;
  workload::TpchGenerator gen(0.001);
  gen.LoadAll(&database);
  std::unique_ptr<Backend> col =
      CreateBackend(db::BackendKind::kColumnar, &database);
  std::unique_ptr<Backend> row =
      CreateBackend(db::BackendKind::kRowStore, &database);
  EXPECT_EQ(col->kind(), db::BackendKind::kColumnar);
  EXPECT_EQ(row->kind(), db::BackendKind::kRowStore);
  EXPECT_STREQ(col->name(), "col");
  EXPECT_STREQ(row->name(), "row");

  db::PlanPtr plan = workload::GetTpchQuery(6).Build(database);
  ASSERT_NE(plan, nullptr);
  BackendResult a = col->Execute(plan, ExecOptions());
  BackendResult b = row->Execute(plan, ExecOptions());
  EXPECT_EQ(db::DiffTables(*b.table, *a.table, 1e-9,
                           /*ignore_row_order=*/true),
            "");
  // The columnar adapter reports the database's own storage counters; the
  // row store accounts through its private pager.
  EXPECT_GT(a.storage.page_misses + a.storage.page_hits, 0);
  EXPECT_GT(b.storage.page_misses + b.storage.page_hits, 0);
}

/// The layouts' defining I/O difference, observable through StorageStats:
/// projecting ONE column of a wide table costs the row store full-tuple
/// bytes but costs the columnar engine only that column's pages.
TEST(BackendFactoryTest, NarrowProjectionReadsFewerBytesColumnar) {
  db::Database database;
  workload::TpchGenerator gen(0.002);
  gen.LoadAll(&database);
  std::unique_ptr<Backend> col =
      CreateBackend(db::BackendKind::kColumnar, &database);
  std::unique_ptr<Backend> row =
      CreateBackend(db::BackendKind::kRowStore, &database);
  const db::Schema& schema = database.GetTable("lineitem").schema();
  db::PlanPtr plan =
      db::Aggregate(db::Project(db::Scan("lineitem", {"l_quantity"}),
                                {db::Col(schema, "l_quantity")},
                                {"l_quantity"}),
                    {}, {{db::AggOp::kSum,
                          db::Col(db::Schema({{"l_quantity",
                                               DataType::kDouble}}),
                                  "l_quantity"),
                          "s"}});
  col->FlushCaches();
  row->FlushCaches();
  BackendResult a = col->Execute(plan, ExecOptions());
  BackendResult b = row->Execute(plan, ExecOptions());
  EXPECT_EQ(db::DiffTables(*b.table, *a.table, 1e-9,
                           /*ignore_row_order=*/false),
            "");
  EXPECT_GT(b.storage.bytes_read, 4 * a.storage.bytes_read)
      << "row store must pay full-tuple I/O for a one-column query";
}

TEST(ColumnarBackendTest, RestoresDatabaseKnobsAfterExecute) {
  db::Database database;
  workload::TpchGenerator gen(0.001);
  gen.LoadAll(&database);
  database.set_threads(3);
  database.set_check(false);
  ColumnarBackend backend(&database);
  db::PlanPtr plan = workload::GetTpchQuery(6).Build(database);
  ExecOptions exec;
  exec.threads = 8;
  exec.check = true;
  (void)backend.Execute(plan, exec);
  EXPECT_EQ(database.threads(), 3);
  EXPECT_FALSE(database.check());
}

}  // namespace
}  // namespace engine
}  // namespace perfeval
