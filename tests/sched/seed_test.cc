#include "sched/seed.h"

#include <gtest/gtest.h>

#include <set>

namespace perfeval {
namespace sched {
namespace {

TEST(SeedTest, ExperimentHashIsStableAndDiscriminates) {
  // The seed of a trial must be reproducible across runs and processes —
  // FNV-1a of the id, no address-dependent state.
  EXPECT_EQ(HashExperimentId("A1"), HashExperimentId("A1"));
  EXPECT_NE(HashExperimentId("A1"), HashExperimentId("A2"));
  EXPECT_NE(HashExperimentId(""), HashExperimentId("A1"));
}

TEST(SeedTest, TrialSeedsAreDistinctAcrossCoordinates) {
  // Neighbouring trials — same point/next rep, next point/same rep, and
  // swapped coordinates — all get different streams.
  uint64_t h = HashExperimentId("demo");
  std::set<uint64_t> seeds;
  for (size_t p = 0; p < 16; ++p) {
    for (int r = 0; r < 8; ++r) {
      seeds.insert(TrialSeed(h, p, r));
    }
  }
  EXPECT_EQ(seeds.size(), 16u * 8u);
  EXPECT_NE(TrialSeed(h, 1, 2), TrialSeed(h, 2, 1));
}

TEST(SeedTest, TrialSeedIsAPureFunction) {
  uint64_t h = HashExperimentId("demo");
  EXPECT_EQ(TrialSeed(h, 3, 1), TrialSeed(h, 3, 1));
  EXPECT_NE(TrialSeed(h, 3, 1), TrialSeed(HashExperimentId("other"), 3, 1));
}

}  // namespace
}  // namespace sched
}  // namespace perfeval
