#include "sched/scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/random.h"
#include "sched/seed.h"

namespace perfeval {
namespace sched {
namespace {

doe::Design ThreeFactorDesign() {
  return doe::TwoLevelFullFactorial(
      {doe::Factor::TwoLevel("A", "lo", "hi"),
       doe::Factor::TwoLevel("B", "lo", "hi"),
       doe::Factor::TwoLevel("C", "lo", "hi")});
}

/// Seeded synthetic workload: a virtual-time response that depends on the
/// design point and on noise from the trial's own RNG stream — the
/// scheduler's determinism contract is that the schedule never leaks into
/// this value.
core::Measurement SyntheticTrial(const doe::DesignPoint& point,
                                 const core::TrialSpec& spec) {
  Pcg32 rng(spec.seed);
  double base_ms = 10.0 + 5.0 * static_cast<double>(point.levels[0]) +
                   3.0 * static_cast<double>(point.levels[1]) +
                   1.0 * static_cast<double>(point.levels[2]);
  core::Measurement m;
  m.simulated_stall_ns = static_cast<int64_t>(
      (base_ms + rng.NextGaussian()) * 1e6);
  return m;
}

Options ConcurrentOptions(int jobs, core::RunOrder order,
                          uint64_t seed = 42) {
  Options options;
  options.experiment_id = "sched-test";
  options.jobs = jobs;
  options.order = order;
  options.seed = seed;
  options.isolation = core::IsolationPolicy::kConcurrent;
  return options;
}

core::RunProtocol Replicated(int measured_runs) {
  core::RunProtocol protocol;
  protocol.warmup_runs = 0;
  protocol.measured_runs = measured_runs;
  protocol.aggregation = core::Aggregation::kMean;
  return protocol;
}

TEST(SchedulerTest, ParallelAndSerialProduceIdenticalResults) {
  // The tentpole invariant: jobs=4 and jobs=1 are bit-identical, under
  // every ordering — responses, aggregates, CIs and outlier sets alike.
  doe::Design design = ThreeFactorDesign();
  core::RunProtocol protocol = Replicated(6);
  Scheduler serial(
      ConcurrentOptions(1, core::RunOrder::kDesignOrder));
  Result<core::ExperimentResult> reference = serial.Run(
      design, protocol, core::ResponseMetric::kObservedRealMs,
      SyntheticTrial);
  ASSERT_TRUE(reference.ok());
  for (core::RunOrder order :
       {core::RunOrder::kDesignOrder, core::RunOrder::kRandomized,
        core::RunOrder::kInterleaved}) {
    Scheduler parallel(ConcurrentOptions(4, order));
    Result<core::ExperimentResult> result = parallel.Run(
        design, protocol, core::ResponseMetric::kObservedRealMs,
        SyntheticTrial);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->runs.size(), reference->runs.size());
    EXPECT_EQ(result->AggregatedResponses(),
              reference->AggregatedResponses());
    for (size_t p = 0; p < result->runs.size(); ++p) {
      EXPECT_EQ(result->runs[p].responses, reference->runs[p].responses);
      EXPECT_EQ(result->runs[p].outlier_runs,
                reference->runs[p].outlier_runs);
      ASSERT_TRUE(result->runs[p].confidence.has_value());
      EXPECT_EQ(result->runs[p].confidence->mean,
                reference->runs[p].confidence->mean);
      EXPECT_EQ(result->runs[p].confidence->lower,
                reference->runs[p].confidence->lower);
    }
  }
}

TEST(SchedulerTest, RandomizedOrderIsAReproduciblePermutation) {
  std::vector<core::TrialSpec> trials;
  for (size_t p = 0; p < 8; ++p) {
    for (int r = 0; r < 3; ++r) {
      core::TrialSpec spec;
      spec.point_index = p;
      spec.replication = r;
      trials.push_back(spec);
    }
  }
  std::vector<size_t> shuffled =
      ExecutionOrder(trials, core::RunOrder::kRandomized, 7);
  // A permutation of [0, n): every index exactly once.
  std::set<size_t> unique(shuffled.begin(), shuffled.end());
  EXPECT_EQ(unique.size(), trials.size());
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), trials.size() - 1);
  // Reproducible from the seed; a different seed gives a different order.
  EXPECT_EQ(shuffled, ExecutionOrder(trials, core::RunOrder::kRandomized, 7));
  EXPECT_NE(shuffled, ExecutionOrder(trials, core::RunOrder::kRandomized, 8));
  // And it actually deviates from design order.
  EXPECT_NE(shuffled,
            ExecutionOrder(trials, core::RunOrder::kDesignOrder, 7));
}

TEST(SchedulerTest, InterleavedOrderRoundRobinsOverPoints) {
  std::vector<core::TrialSpec> trials;
  for (size_t p = 0; p < 3; ++p) {
    for (int r = 0; r < 2; ++r) {
      core::TrialSpec spec;
      spec.point_index = p;
      spec.replication = r;
      trials.push_back(spec);
    }
  }
  std::vector<size_t> order =
      ExecutionOrder(trials, core::RunOrder::kInterleaved, 0);
  // Expect (p0,r0) (p1,r0) (p2,r0) (p0,r1) (p1,r1) (p2,r1).
  ASSERT_EQ(order.size(), 6u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(trials[order[i]].replication, 0);
    EXPECT_EQ(trials[order[i]].point_index, i);
    EXPECT_EQ(trials[order[3 + i]].replication, 1);
    EXPECT_EQ(trials[order[3 + i]].point_index, i);
  }
}

TEST(SchedulerTest, SurvivesAThrowingRunFunction) {
  // One trial throws: the experiment reports a Status, but the pool must
  // not die — every other trial still runs.
  doe::Design design = ThreeFactorDesign();
  core::RunProtocol protocol = Replicated(2);
  std::atomic<int> executed{0};
  Scheduler scheduler(
      ConcurrentOptions(4, core::RunOrder::kDesignOrder));
  Result<core::ExperimentResult> result = scheduler.Run(
      design, protocol, core::ResponseMetric::kObservedRealMs,
      [&](const doe::DesignPoint& point, const core::TrialSpec& spec) {
        ++executed;
        if (spec.point_index == 2 && spec.replication == 1) {
          throw std::runtime_error("injected trial failure");
        }
        return SyntheticTrial(point, spec);
      });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("injected trial failure"),
            std::string::npos);
  // 8 points x 2 reps — all attempted despite the failure.
  EXPECT_EQ(executed.load(), 16);
}

TEST(SchedulerTest, ExclusiveIsolationNeverOverlapsTrials) {
  // kExclusive serializes timing-sensitive trials on one slot even when
  // the caller asked for 4 jobs.
  Scheduler scheduler([] {
    Options options;
    options.experiment_id = "sched-test";
    options.jobs = 4;
    options.isolation = core::IsolationPolicy::kExclusive;
    return options;
  }());
  EXPECT_EQ(scheduler.effective_jobs(), 1);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  doe::Design design = ThreeFactorDesign();
  Result<core::ExperimentResult> result = scheduler.Run(
      design, Replicated(3), core::ResponseMetric::kObservedRealMs,
      [&](const doe::DesignPoint& point, const core::TrialSpec& spec) {
        int now = ++in_flight;
        int seen = max_in_flight.load();
        while (now > seen && !max_in_flight.compare_exchange_weak(seen, now)) {
        }
        core::Measurement m = SyntheticTrial(point, spec);
        --in_flight;
        return m;
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(max_in_flight.load(), 1);
}

TEST(SchedulerTest, ProtocolDescriptionDocumentsTheSchedule) {
  // Slide 32: the result's protocol line must document jobs, order and
  // isolation — the schedule is part of the protocol.
  doe::Design design = ThreeFactorDesign();
  Scheduler scheduler(
      ConcurrentOptions(4, core::RunOrder::kRandomized, 42));
  Result<core::ExperimentResult> result = scheduler.Run(
      design, Replicated(2), core::ResponseMetric::kObservedRealMs,
      SyntheticTrial);
  ASSERT_TRUE(result.ok());
  const std::string& description = result->protocol_description;
  EXPECT_NE(description.find("4 job(s)"), std::string::npos) << description;
  EXPECT_NE(description.find("randomized order"), std::string::npos)
      << description;
  EXPECT_NE(description.find("seed 42"), std::string::npos) << description;
  EXPECT_NE(description.find("concurrent trials"), std::string::npos)
      << description;
}

TEST(SchedulerTest, TrialSeedsMatchTheDocumentedFormula) {
  // The seed reaching a trial is hash(experiment, point, replication) —
  // the documented contract, checkable by downstream tooling.
  doe::Design design = ThreeFactorDesign();
  uint64_t base = HashExperimentId("sched-test");
  std::atomic<int> mismatches{0};
  Scheduler scheduler(
      ConcurrentOptions(2, core::RunOrder::kInterleaved));
  Result<core::ExperimentResult> result = scheduler.Run(
      design, Replicated(2), core::ResponseMetric::kObservedRealMs,
      [&](const doe::DesignPoint& point, const core::TrialSpec& spec) {
        if (spec.seed !=
            TrialSeed(base, spec.point_index, spec.replication)) {
          ++mismatches;
        }
        return SyntheticTrial(point, spec);
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace sched
}  // namespace perfeval
