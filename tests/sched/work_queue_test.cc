#include "sched/work_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace perfeval {
namespace sched {
namespace {

TEST(WorkQueueTest, FifoOrderPreserved) {
  // The scheduler encodes the run-order policy in push order; the queue
  // must hand jobs out in exactly that order.
  WorkQueue queue;
  std::vector<int> seen;
  for (int i = 0; i < 5; ++i) {
    queue.Push([&seen, i] { seen.push_back(i); });
  }
  queue.Close();
  WorkQueue::Job job;
  while (queue.Pop(&job)) {
    job();
  }
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(WorkQueueTest, PopReturnsFalseOnlyWhenClosedAndDrained) {
  WorkQueue queue;
  queue.Push([] {});
  queue.Close();
  WorkQueue::Job job;
  EXPECT_TRUE(queue.Pop(&job));
  EXPECT_FALSE(queue.Pop(&job));
}

}  // namespace
}  // namespace sched
}  // namespace perfeval
