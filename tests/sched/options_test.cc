#include "sched/options.h"

#include <gtest/gtest.h>

namespace perfeval {
namespace sched {
namespace {

TEST(OptionsTest, ParseRunOrderAcceptsTheThreeNames) {
  EXPECT_EQ(ParseRunOrder("design").value(), core::RunOrder::kDesignOrder);
  EXPECT_EQ(ParseRunOrder("randomized").value(),
            core::RunOrder::kRandomized);
  EXPECT_EQ(ParseRunOrder("interleaved").value(),
            core::RunOrder::kInterleaved);
}

TEST(OptionsTest, ParseRunOrderRejectsTypos) {
  Result<core::RunOrder> result = ParseRunOrder("random");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(OptionsTest, ParseIsolationPolicy) {
  EXPECT_EQ(ParseIsolationPolicy("concurrent").value(),
            core::IsolationPolicy::kConcurrent);
  EXPECT_EQ(ParseIsolationPolicy("exclusive").value(),
            core::IsolationPolicy::kExclusive);
  EXPECT_FALSE(ParseIsolationPolicy("alone").ok());
}

TEST(OptionsTest, ToScheduleSpecClampsJobs) {
  Options options;
  options.jobs = 0;
  EXPECT_EQ(options.ToScheduleSpec().jobs, 1);
  options.jobs = 8;
  options.order = core::RunOrder::kRandomized;
  options.seed = 99;
  core::ScheduleSpec spec = options.ToScheduleSpec();
  EXPECT_EQ(spec.jobs, 8);
  EXPECT_EQ(spec.order, core::RunOrder::kRandomized);
  EXPECT_EQ(spec.seed, 99u);
}

TEST(OptionsTest, RunOrderAndIsolationNamesRoundTrip) {
  for (core::RunOrder order :
       {core::RunOrder::kDesignOrder, core::RunOrder::kRandomized,
        core::RunOrder::kInterleaved}) {
    EXPECT_EQ(ParseRunOrder(core::RunOrderName(order)).value(), order);
  }
  for (core::IsolationPolicy policy : {core::IsolationPolicy::kConcurrent,
                                       core::IsolationPolicy::kExclusive}) {
    EXPECT_EQ(ParseIsolationPolicy(core::IsolationPolicyName(policy)).value(),
              policy);
  }
}

}  // namespace
}  // namespace sched
}  // namespace perfeval
