#include "sched/parallel_for.h"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

namespace perfeval {
namespace sched {
namespace {

TEST(ParallelForTest, RunsEveryIndexExactlyOnce) {
  constexpr size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  for (auto& h : hits) {
    h.store(0);
  }
  ParallelFor(4, kCount, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, SingleThreadRunsInlineInOrder) {
  std::vector<size_t> order;
  ParallelFor(1, 17, [&](size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 17u);
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(ParallelForTest, ZeroCountNeverInvokes) {
  bool called = false;
  ParallelFor(4, 0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SingleIndexRunsInline) {
  // count <= 1 must not spin up workers (callers rely on this for cheap
  // single-morsel plans).
  std::vector<size_t> order;
  ParallelFor(8, 1, [&](size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0], 0u);
}

TEST(ParallelForTest, PerIndexSlotsReduceInIndexOrder) {
  // The intended usage pattern: nondeterministic claim order, per-index
  // output slots, deterministic reduction by index afterwards.
  constexpr size_t kCount = 256;
  std::vector<long long> partial(kCount, 0);
  ParallelFor(4, kCount, [&](size_t i) {
    partial[i] = static_cast<long long>(i) * static_cast<long long>(i);
  });
  long long sum = 0;
  for (size_t i = 0; i < kCount; ++i) {
    sum += partial[i];
  }
  EXPECT_EQ(sum, 5559680);  // sum of squares 0..255.
}

TEST(ParallelForTest, StatsAccountForEveryClaimAtEveryThreadCount) {
  // Regression guard for the work-distribution accounting: at every thread
  // count the per-worker claim counts must sum to `count`, every index must
  // run exactly once, at least one worker must have claimed work, and
  // workers_spawned must match the min(threads, count) clamp (1 for the
  // inline serial path).
  constexpr size_t kCount = 512;
  for (int threads : {1, 2, 4, 8}) {
    SCOPED_TRACE(threads);
    std::vector<std::atomic<int>> hits(kCount);
    for (auto& h : hits) {
      h.store(0);
    }
    ParallelForStats stats;
    ParallelFor(threads, kCount, [&](size_t i) { hits[i].fetch_add(1); },
                &stats);
    for (size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    }
    EXPECT_EQ(stats.TotalClaimed(), kCount);
    EXPECT_EQ(stats.workers_spawned, threads);
    EXPECT_EQ(stats.workers.size(), static_cast<size_t>(threads));
    size_t workers_with_claims = 0;
    for (const ParallelForStats::WorkerStats& w : stats.workers) {
      workers_with_claims += w.claimed > 0 ? 1 : 0;
    }
    EXPECT_GE(workers_with_claims, 1u);
  }
}

TEST(ParallelForTest, StatsSerialPathReportsOneWorker) {
  ParallelForStats stats;
  ParallelFor(8, 1, [](size_t) {}, &stats);
  EXPECT_EQ(stats.workers_spawned, 1);
  EXPECT_EQ(stats.TotalClaimed(), 1u);
}

TEST(ParallelForTest, WorkerStatsSlotsArePaddedToCacheLines) {
  // The per-worker slots are written concurrently by their own workers;
  // two slots sharing a cache line would false-share on every claim.
  static_assert(alignof(ParallelForStats::WorkerStats) >= 64,
                "worker stats slots must be cache-line aligned");
  static_assert(sizeof(ParallelForStats::WorkerStats) >= 64,
                "worker stats slots must span a full cache line");
}

TEST(ParallelForTest, ExcessThreadsClampedToCount) {
  std::vector<std::atomic<int>> hits(3);
  for (auto& h : hits) {
    h.store(0);
  }
  ParallelFor(64, 3, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(hits[i].load(), 1);
  }
}

}  // namespace
}  // namespace sched
}  // namespace perfeval
