#include "sched/parallel_for.h"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

namespace perfeval {
namespace sched {
namespace {

TEST(ParallelForTest, RunsEveryIndexExactlyOnce) {
  constexpr size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  for (auto& h : hits) {
    h.store(0);
  }
  ParallelFor(4, kCount, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, SingleThreadRunsInlineInOrder) {
  std::vector<size_t> order;
  ParallelFor(1, 17, [&](size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 17u);
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(ParallelForTest, ZeroCountNeverInvokes) {
  bool called = false;
  ParallelFor(4, 0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SingleIndexRunsInline) {
  // count <= 1 must not spin up workers (callers rely on this for cheap
  // single-morsel plans).
  std::vector<size_t> order;
  ParallelFor(8, 1, [&](size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0], 0u);
}

TEST(ParallelForTest, PerIndexSlotsReduceInIndexOrder) {
  // The intended usage pattern: nondeterministic claim order, per-index
  // output slots, deterministic reduction by index afterwards.
  constexpr size_t kCount = 256;
  std::vector<long long> partial(kCount, 0);
  ParallelFor(4, kCount, [&](size_t i) {
    partial[i] = static_cast<long long>(i) * static_cast<long long>(i);
  });
  long long sum = 0;
  for (size_t i = 0; i < kCount; ++i) {
    sum += partial[i];
  }
  EXPECT_EQ(sum, 5559680);  // sum of squares 0..255.
}

TEST(ParallelForTest, ExcessThreadsClampedToCount) {
  std::vector<std::atomic<int>> hits(3);
  for (auto& h : hits) {
    h.store(0);
  }
  ParallelFor(64, 3, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(hits[i].load(), 1);
  }
}

}  // namespace
}  // namespace sched
}  // namespace perfeval
