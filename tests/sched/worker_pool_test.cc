#include "sched/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>

namespace perfeval {
namespace sched {
namespace {

TEST(WorkerPoolTest, RunsEverySubmittedJob) {
  std::atomic<int> executed{0};
  WorkerPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4);
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&executed] { ++executed; });
  }
  pool.Drain();
  EXPECT_EQ(executed.load(), 100);
}

TEST(WorkerPoolTest, ClampsWorkerCountToAtLeastOne) {
  std::atomic<int> executed{0};
  WorkerPool pool(0);
  EXPECT_EQ(pool.num_workers(), 1);
  pool.Submit([&executed] { ++executed; });
  pool.Drain();
  EXPECT_EQ(executed.load(), 1);
}

TEST(WorkerPoolTest, JobsActuallyOverlapAcrossWorkers) {
  // A 4-way rendezvous: each of the first four jobs blocks until all four
  // have started. This can only complete if four workers run jobs
  // concurrently — with fewer, the barrier would deadlock (and the test
  // would time out).
  constexpr int kParties = 4;
  std::mutex mu;
  std::condition_variable all_here;
  int arrived = 0;
  WorkerPool pool(kParties);
  for (int i = 0; i < kParties; ++i) {
    pool.Submit([&] {
      std::unique_lock<std::mutex> lock(mu);
      ++arrived;
      all_here.notify_all();
      all_here.wait(lock, [&] { return arrived == kParties; });
    });
  }
  pool.Drain();
  EXPECT_EQ(arrived, kParties);
}

TEST(WorkerPoolTest, DrainIsIdempotentAndDestructorSafe) {
  std::atomic<int> executed{0};
  {
    WorkerPool pool(2);
    pool.Submit([&executed] { ++executed; });
    pool.Drain();
    pool.Drain();  // Second drain is a no-op.
  }  // Destructor after explicit Drain must not double-join.
  EXPECT_EQ(executed.load(), 1);
}

}  // namespace
}  // namespace sched
}  // namespace perfeval
