#include "workload/tpch_gen.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "workload/tpch_schema.h"

namespace perfeval {
namespace workload {
namespace {

using db::DataType;
using db::DateFromYmd;
using db::Table;

class TpchGenTest : public ::testing::Test {
 protected:
  TpchGenTest() : gen_(0.01) {}
  TpchGenerator gen_;
};

TEST_F(TpchGenTest, CardinalitiesScale) {
  EXPECT_EQ(gen_.Cardinality("region"), 5);
  EXPECT_EQ(gen_.Cardinality("nation"), 25);
  EXPECT_EQ(gen_.Cardinality("supplier"), 100);
  EXPECT_EQ(gen_.Cardinality("customer"), 1500);
  EXPECT_EQ(gen_.Cardinality("part"), 2000);
  EXPECT_EQ(gen_.Cardinality("partsupp"), 8000);
  EXPECT_EQ(gen_.Cardinality("orders"), 15000);
}

TEST_F(TpchGenTest, GeneratedSizesMatchCardinality) {
  for (const char* name : {"region", "nation", "supplier", "customer",
                           "part", "partsupp", "orders"}) {
    auto table = gen_.Generate(name);
    EXPECT_EQ(static_cast<int64_t>(table->num_rows()),
              gen_.Cardinality(name))
        << name;
  }
}

TEST_F(TpchGenTest, LineitemSizeNearExpectation) {
  auto lineitem = gen_.Generate("lineitem");
  int64_t expected = gen_.Cardinality("lineitem");  // approximate.
  EXPECT_GT(static_cast<int64_t>(lineitem->num_rows()), expected * 8 / 10);
  EXPECT_LT(static_cast<int64_t>(lineitem->num_rows()), expected * 12 / 10);
}

TEST_F(TpchGenTest, DeterministicForSameSeed) {
  TpchGenerator a(0.01, 7);
  TpchGenerator b(0.01, 7);
  auto ta = a.Generate("orders");
  auto tb = b.Generate("orders");
  ASSERT_EQ(ta->num_rows(), tb->num_rows());
  for (size_t r = 0; r < std::min<size_t>(ta->num_rows(), 200); ++r) {
    for (size_t c = 0; c < ta->num_columns(); ++c) {
      EXPECT_EQ(ta->ValueAt(r, c).ToString(), tb->ValueAt(r, c).ToString());
    }
  }
}

TEST_F(TpchGenTest, DifferentSeedsProduceDifferentData) {
  TpchGenerator a(0.01, 7);
  TpchGenerator b(0.01, 8);
  auto ta = a.Generate("orders");
  auto tb = b.Generate("orders");
  int differences = 0;
  for (size_t r = 0; r < 100; ++r) {
    if (ta->ValueAt(r, 4).ToString() != tb->ValueAt(r, 4).ToString()) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 50);
}

TEST_F(TpchGenTest, ForeignKeysAreValid) {
  db::Database database;
  gen_.LoadAll(&database);
  const Table& lineitem = database.GetTable("lineitem");
  int64_t parts = gen_.Cardinality("part");
  int64_t suppliers = gen_.Cardinality("supplier");
  int64_t orders_count = gen_.Cardinality("orders");
  const auto& partkeys = lineitem.ColumnByName("l_partkey").ints();
  const auto& suppkeys = lineitem.ColumnByName("l_suppkey").ints();
  const auto& orderkeys = lineitem.ColumnByName("l_orderkey").ints();
  for (size_t r = 0; r < lineitem.num_rows(); ++r) {
    ASSERT_GE(partkeys[r], 1);
    ASSERT_LE(partkeys[r], parts);
    ASSERT_GE(suppkeys[r], 1);
    ASSERT_LE(suppkeys[r], suppliers);
    ASSERT_GE(orderkeys[r], 1);
    ASSERT_LE(orderkeys[r], orders_count);
  }
  const Table& orders = database.GetTable("orders");
  int64_t customers = gen_.Cardinality("customer");
  const auto& custkeys = orders.ColumnByName("o_custkey").ints();
  for (size_t r = 0; r < orders.num_rows(); ++r) {
    ASSERT_GE(custkeys[r], 1);
    ASSERT_LE(custkeys[r], customers);
  }
}

TEST_F(TpchGenTest, LineitemDateOrderingInvariant) {
  // shipdate > orderdate; receiptdate > shipdate (spec-derived ordering
  // that Q4/Q12/Q21 depend on).
  db::Database database;
  gen_.LoadAll(&database);
  const Table& lineitem = database.GetTable("lineitem");
  const Table& orders = database.GetTable("orders");
  const auto& ship = lineitem.ColumnByName("l_shipdate").ints();
  const auto& receipt = lineitem.ColumnByName("l_receiptdate").ints();
  const auto& l_orderkey = lineitem.ColumnByName("l_orderkey").ints();
  const auto& orderdate = orders.ColumnByName("o_orderdate").ints();
  for (size_t r = 0; r < lineitem.num_rows(); ++r) {
    int64_t order_row = l_orderkey[r] - 1;  // dense keys.
    ASSERT_GT(ship[r], orderdate[static_cast<size_t>(order_row)]);
    ASSERT_GT(receipt[r], ship[r]);
  }
}

TEST_F(TpchGenTest, ValueRangesFollowSpec) {
  auto lineitem = gen_.Generate("lineitem");
  const auto& qty = lineitem->ColumnByName("l_quantity").doubles();
  const auto& discount = lineitem->ColumnByName("l_discount").doubles();
  const auto& tax = lineitem->ColumnByName("l_tax").doubles();
  for (size_t r = 0; r < lineitem->num_rows(); ++r) {
    ASSERT_GE(qty[r], 1.0);
    ASSERT_LE(qty[r], 50.0);
    ASSERT_GE(discount[r], 0.0);
    ASSERT_LE(discount[r], 0.10);
    ASSERT_GE(tax[r], 0.0);
    ASSERT_LE(tax[r], 0.08);
  }
}

TEST_F(TpchGenTest, OrderDatesInSpecWindow) {
  auto orders = gen_.Generate("orders");
  int32_t lo = DateFromYmd(1992, 1, 1);
  int32_t hi = DateFromYmd(1998, 8, 2);
  const auto& dates = orders->ColumnByName("o_orderdate").ints();
  for (size_t r = 0; r < orders->num_rows(); ++r) {
    ASSERT_GE(dates[r], lo);
    ASSERT_LE(dates[r], hi);
  }
}

TEST_F(TpchGenTest, ReturnFlagsAndStatusAreConsistent) {
  auto lineitem = gen_.Generate("lineitem");
  const auto& flags = lineitem->ColumnByName("l_returnflag").strings();
  const auto& status = lineitem->ColumnByName("l_linestatus").strings();
  std::set<std::string> flag_values(flags.begin(), flags.end());
  std::set<std::string> status_values(status.begin(), status.end());
  EXPECT_EQ(flag_values, (std::set<std::string>{"A", "N", "R"}));
  EXPECT_EQ(status_values, (std::set<std::string>{"F", "O"}));
}

TEST_F(TpchGenTest, PartsuppPairsAreUnique) {
  auto partsupp = gen_.Generate("partsupp");
  const auto& pk = partsupp->ColumnByName("ps_partkey").ints();
  const auto& sk = partsupp->ColumnByName("ps_suppkey").ints();
  std::set<std::pair<int64_t, int64_t>> pairs;
  for (size_t r = 0; r < partsupp->num_rows(); ++r) {
    EXPECT_TRUE(pairs.insert({pk[r], sk[r]}).second)
        << "duplicate (" << pk[r] << ", " << sk[r] << ")";
  }
}

TEST_F(TpchGenTest, BrandsBelongToManufacturers) {
  auto part = gen_.Generate("part");
  const auto& mfgr = part->ColumnByName("p_mfgr").strings();
  const auto& brand = part->ColumnByName("p_brand").strings();
  for (size_t r = 0; r < std::min<size_t>(part->num_rows(), 500); ++r) {
    // "Manufacturer#M" owns "Brand#Mx".
    char m = mfgr[r].back();
    EXPECT_EQ(brand[r][6], m) << mfgr[r] << " vs " << brand[r];
  }
}

TEST_F(TpchGenTest, LoadAllRegistersEightTables) {
  db::Database database;
  gen_.LoadAll(&database);
  EXPECT_EQ(database.TableNames().size(), 8u);
  EXPECT_TRUE(database.HasTable("lineitem"));
  EXPECT_TRUE(database.HasTable("region"));
}


TEST(TpchSkewTest, ZipfThetaSkewsForeignKeys) {
  TpchGenerator uniform(0.01, 7, 0.0);
  TpchGenerator skewed(0.01, 7, 1.2);
  (void)uniform.Generate("orders");
  (void)skewed.Generate("orders");
  auto count_top = [](const db::Table& t, const char* col) {
    std::map<int64_t, int64_t> counts;
    for (int64_t k : t.ColumnByName(col).ints()) {
      ++counts[k];
    }
    int64_t top = 0;
    for (const auto& [key, count] : counts) {
      top = std::max(top, count);
    }
    return std::make_pair(top, static_cast<int64_t>(counts.size()));
  };
  auto uniform_li = uniform.Generate("lineitem");
  auto skewed_li = skewed.Generate("lineitem");
  auto [u_top, u_distinct] = count_top(*uniform_li, "l_partkey");
  auto [s_top, s_distinct] = count_top(*skewed_li, "l_partkey");
  EXPECT_GT(s_top, 10 * u_top);        // hottest key far hotter.
  EXPECT_LT(s_distinct, u_distinct);   // fewer keys touched.
  // Keys stay in the valid FK domain.
  int64_t parts = skewed.Cardinality("part");
  for (int64_t k : skewed_li->ColumnByName("l_partkey").ints()) {
    ASSERT_GE(k, 1);
    ASSERT_LE(k, parts);
  }
}

TEST(TpchSkewTest, ThetaZeroMatchesDefaultGenerator) {
  TpchGenerator a(0.005, 9);
  TpchGenerator b(0.005, 9, 0.0);
  auto ta = a.Generate("orders");
  auto tb = b.Generate("orders");
  ASSERT_EQ(ta->num_rows(), tb->num_rows());
  for (size_t r = 0; r < 100; ++r) {
    EXPECT_EQ(ta->ValueAt(r, 1).AsInt64(), tb->ValueAt(r, 1).AsInt64());
  }
}

TEST(TpchSkewDeathTest, NegativeThetaRejected) {
  EXPECT_DEATH(TpchGenerator(0.01, 1, -0.5), "CHECK failed");
}

TEST(TpchGenScaleTest, TinyScaleFactorStillWorks) {
  TpchGenerator gen(0.001);
  auto lineitem = gen.Generate("lineitem");
  EXPECT_GT(lineitem->num_rows(), 0u);
  EXPECT_EQ(gen.Cardinality("supplier"), 10);
}

TEST(TpchGenDeathTest, RejectsNonPositiveScale) {
  EXPECT_DEATH(TpchGenerator(0.0), "CHECK failed");
}

TEST(TpchGenParallelTest, ThreadCountDoesNotChangeTheData) {
  // set_threads is a pure speed knob: chunk streams and chunk order are
  // fixed by (seed, scale_factor), so parallel generation must be
  // bit-identical to serial — every table, every row, every column.
  TpchGenerator serial(0.01, 7);
  TpchGenerator parallel(0.01, 7);
  parallel.set_threads(4);
  for (const char* name : {"customer", "part", "partsupp", "orders",
                           "lineitem"}) {
    SCOPED_TRACE(name);
    auto ts = serial.Generate(name);
    auto tp = parallel.Generate(name);
    ASSERT_EQ(ts->num_rows(), tp->num_rows());
    ASSERT_EQ(ts->num_columns(), tp->num_columns());
    for (size_t r = 0; r < ts->num_rows(); ++r) {
      for (size_t c = 0; c < ts->num_columns(); ++c) {
        ASSERT_EQ(ts->ValueAt(r, c).ToString(), tp->ValueAt(r, c).ToString())
            << "row " << r << " col " << c;
      }
    }
  }
}

TEST(TpchGenParallelTest, ChunkBoundariesDoNotShowInKeys) {
  // Orderkeys must stay dense (row i holds orderkey i+1) and lineitem must
  // stay clustered by orderkey across chunk seams — the invariants the
  // merge join and the dense-key joins rely on.
  TpchGenerator gen(0.02, 11);
  gen.set_threads(8);
  auto orders = gen.Generate("orders");
  const auto& okey = orders->ColumnByName("o_orderkey").ints();
  for (size_t i = 0; i < okey.size(); ++i) {
    ASSERT_EQ(okey[i], static_cast<int64_t>(i) + 1);
  }
  auto lineitem = gen.Generate("lineitem");
  const auto& lkey = lineitem->ColumnByName("l_orderkey").ints();
  for (size_t i = 1; i < lkey.size(); ++i) {
    ASSERT_LE(lkey[i - 1], lkey[i]);
  }
}

}  // namespace
}  // namespace workload
}  // namespace perfeval
