#include "workload/driver.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "workload/tpch_gen.h"

namespace perfeval {
namespace workload {
namespace {

db::Database* Db() {
  static db::Database* database = [] {
    auto* d = new db::Database();
    TpchGenerator gen(0.002);
    gen.LoadAll(d);
    return d;
  }();
  return database;
}

TEST(DriverTest, DefaultsToAll22Queries) {
  TpchDriver driver(Db());
  EXPECT_EQ(driver.query_numbers().size(), 22u);
  EXPECT_EQ(driver.query_numbers().front(), 1);
  EXPECT_EQ(driver.query_numbers().back(), 22);
}

TEST(DriverTest, PowerTestShape) {
  TpchDriver driver(Db(), {1, 6, 14});
  PowerResult power = driver.RunPowerTest();
  ASSERT_EQ(power.stream.query_ms.size(), 3u);
  EXPECT_EQ(power.stream.query_order, (std::vector<int>{1, 6, 14}));
  EXPECT_GT(power.geomean_ms, 0.0);
  EXPECT_GT(power.power_qph, 0.0);
  // Total is the sum of the parts.
  double sum = 0.0;
  for (double ms : power.stream.query_ms) {
    sum += ms;
  }
  EXPECT_NEAR(power.stream.total_ms, sum, 1e-9);
  // qph definition.
  EXPECT_NEAR(power.power_qph, 3600'000.0 / power.geomean_ms, 1e-6);
}

TEST(DriverTest, ThroughputStreamsArePermutations) {
  TpchDriver driver(Db(), {1, 6, 13, 14, 22});
  ThroughputResult result = driver.RunThroughputTest(3);
  ASSERT_EQ(result.streams.size(), 3u);
  std::set<std::vector<int>> orders;
  for (const StreamResult& stream : result.streams) {
    // Every stream runs exactly the query set.
    std::vector<int> sorted = stream.query_order;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<int>{1, 6, 13, 14, 22}));
    EXPECT_EQ(stream.query_ms.size(), 5u);
    orders.insert(stream.query_order);
  }
  // With 5! = 120 permutations, three draws almost surely differ.
  EXPECT_GE(orders.size(), 2u);
  // Totals add up.
  double sum = 0.0;
  for (const StreamResult& stream : result.streams) {
    sum += stream.total_ms;
  }
  EXPECT_NEAR(result.total_ms, sum, 1e-9);
  EXPECT_GT(result.throughput_qph, 0.0);
}

TEST(DriverTest, PermutationsAreSeedDeterministic) {
  TpchDriver driver(Db(), {1, 6, 13, 14, 22});
  ThroughputResult a = driver.RunThroughputTest(2, 9);
  ThroughputResult b = driver.RunThroughputTest(2, 9);
  for (size_t s = 0; s < 2; ++s) {
    EXPECT_EQ(a.streams[s].query_order, b.streams[s].query_order);
  }
  ThroughputResult c = driver.RunThroughputTest(2, 10);
  bool same = a.streams[0].query_order == c.streams[0].query_order &&
              a.streams[1].query_order == c.streams[1].query_order;
  EXPECT_FALSE(same);
}

TEST(DriverTest, ConcurrentThroughputReportsPerStreamSpread) {
  TpchDriver driver(Db(), {1, 6, 13, 14, 22});
  ThroughputResult result = driver.RunConcurrentThroughputTest(3, 7);
  ASSERT_EQ(result.streams.size(), 3u);
  // total_ms is the measured window's wall clock (warm-up excluded), so
  // it must not exceed the sum of stream times, and the aggregate qph is
  // defined against it.
  EXPECT_GT(result.total_ms, 0.0);
  EXPECT_NEAR(result.throughput_qph, 15.0 * 3600'000.0 / result.total_ms,
              1e-6);
  // The spread statistics really are over the per-stream rates.
  double min_qph = result.streams[0].qph;
  double max_qph = result.streams[0].qph;
  for (const StreamResult& stream : result.streams) {
    EXPECT_GT(stream.qph, 0.0);
    EXPECT_NEAR(stream.qph, 5.0 * 3600'000.0 / stream.total_ms, 1e-6);
    min_qph = std::min(min_qph, stream.qph);
    max_qph = std::max(max_qph, stream.qph);
  }
  EXPECT_DOUBLE_EQ(result.stream_qph_min, min_qph);
  EXPECT_DOUBLE_EQ(result.stream_qph_max, max_qph);
  EXPECT_GE(result.stream_qph_median, result.stream_qph_min);
  EXPECT_LE(result.stream_qph_median, result.stream_qph_max);
}

TEST(DriverTest, SequentialThroughputAlsoCarriesSpread) {
  TpchDriver driver(Db(), {1, 6});
  ThroughputResult result = driver.RunThroughputTest(2, 5);
  EXPECT_GT(result.stream_qph_min, 0.0);
  EXPECT_LE(result.stream_qph_min, result.stream_qph_max);
}

TEST(DriverDeathTest, RejectsBadQueryNumbers) {
  EXPECT_DEATH(TpchDriver(Db(), {0}), "CHECK failed");
  EXPECT_DEATH(TpchDriver(Db(), {23}), "CHECK failed");
}

}  // namespace
}  // namespace workload
}  // namespace perfeval
