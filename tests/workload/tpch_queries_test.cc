#include "workload/tpch_queries.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "workload/tpch_gen.h"

namespace perfeval {
namespace workload {
namespace {

using db::Database;
using db::ExecMode;
using db::QueryResult;

/// One shared database for the whole suite — generation is the slow part.
Database* SharedDb() {
  static Database* database = [] {
    auto* d = new Database();
    TpchGenerator gen(0.005);
    gen.LoadAll(d);
    return d;
  }();
  return database;
}

TEST(TpchQueriesTest, RegistryHasAll22) {
  const std::vector<TpchQuery>& queries = AllTpchQueries();
  ASSERT_EQ(queries.size(), 22u);
  for (int q = 1; q <= 22; ++q) {
    EXPECT_EQ(queries[static_cast<size_t>(q - 1)].number, q);
    EXPECT_FALSE(queries[static_cast<size_t>(q - 1)].name.empty());
    EXPECT_FALSE(
        queries[static_cast<size_t>(q - 1)].simplification.empty());
  }
  EXPECT_EQ(GetTpchQuery(6).name, "Forecasting Revenue Change");
}

class TpchQueryParamTest : public ::testing::TestWithParam<int> {};

TEST_P(TpchQueryParamTest, BuildsAndRuns) {
  Database* database = SharedDb();
  const TpchQuery& query = GetTpchQuery(GetParam());
  db::PlanPtr plan = query.Build(*database);
  ASSERT_NE(plan, nullptr);
  QueryResult result = database->Run(plan);
  ASSERT_NE(result.table, nullptr);
  EXPECT_GT(result.table->num_columns(), 0u);
}

TEST_P(TpchQueryParamTest, DebugAndOptimizedModesAgree) {
  Database* database = SharedDb();
  const TpchQuery& query = GetTpchQuery(GetParam());
  db::PlanPtr plan = query.Build(*database);
  QueryResult optimized = database->Run(plan, ExecMode::kOptimized);
  QueryResult debug = database->Run(plan, ExecMode::kDebug);
  ASSERT_EQ(optimized.table->num_rows(), debug.table->num_rows());
  ASSERT_EQ(optimized.table->num_columns(), debug.table->num_columns());
  for (size_t r = 0; r < optimized.table->num_rows(); ++r) {
    for (size_t c = 0; c < optimized.table->num_columns(); ++c) {
      EXPECT_EQ(optimized.table->ValueAt(r, c).ToString(),
                debug.table->ValueAt(r, c).ToString())
          << "Q" << GetParam() << " row " << r << " col " << c;
    }
  }
}

TEST_P(TpchQueryParamTest, RepeatedRunsAreIdentical) {
  Database* database = SharedDb();
  const TpchQuery& query = GetTpchQuery(GetParam());
  db::PlanPtr plan = query.Build(*database);
  QueryResult first = database->Run(plan);
  QueryResult second = database->Run(plan);
  ASSERT_EQ(first.table->num_rows(), second.table->num_rows());
  for (size_t r = 0; r < first.table->num_rows(); ++r) {
    for (size_t c = 0; c < first.table->num_columns(); ++c) {
      EXPECT_EQ(first.table->ValueAt(r, c).ToString(),
                second.table->ValueAt(r, c).ToString());
    }
  }
}

TEST_P(TpchQueryParamTest, ExplainIsNonTrivial) {
  Database* database = SharedDb();
  db::PlanPtr plan = GetTpchQuery(GetParam()).Build(*database);
  std::string explain = db::Explain(plan);
  EXPECT_GT(explain.size(), 20u);
}

INSTANTIATE_TEST_SUITE_P(AllQueries, TpchQueryParamTest,
                         ::testing::Range(1, 23));

TEST(TpchQueriesTest, Q1ShapeMatchesSpec) {
  Database* database = SharedDb();
  QueryResult result = database->Run(GetTpchQuery(1).Build(*database));
  // Q1 groups by (returnflag, linestatus): exactly the 4 spec groups
  // A/F, N/F, N/O, R/F at any non-trivial scale.
  ASSERT_EQ(result.table->num_rows(), 4u);
  EXPECT_EQ(result.table->num_columns(), 10u);
  EXPECT_EQ(result.table->ValueAt(0, 0).AsString(), "A");
  EXPECT_EQ(result.table->ValueAt(0, 1).AsString(), "F");
  EXPECT_EQ(result.table->ValueAt(3, 0).AsString(), "R");
  // avg_qty must lie inside [1, 50].
  double avg_qty = result.table->ColumnByName("avg_qty").GetDouble(0);
  EXPECT_GE(avg_qty, 1.0);
  EXPECT_LE(avg_qty, 50.0);
  // sum_disc_price <= sum_base_price (discounts only reduce).
  EXPECT_LE(result.table->ColumnByName("sum_disc_price").GetDouble(0),
            result.table->ColumnByName("sum_base_price").GetDouble(0));
}

TEST(TpchQueriesTest, Q6RevenueMatchesManualScan) {
  Database* database = SharedDb();
  QueryResult result = database->Run(GetTpchQuery(6).Build(*database));
  ASSERT_EQ(result.table->num_rows(), 1u);
  double revenue = result.table->ColumnByName("revenue").GetDouble(0);

  // Recompute by hand.
  const db::Table& lineitem = database->GetTable("lineitem");
  int32_t lo = db::DateFromYmd(1994, 1, 1);
  int32_t hi = db::DateFromYmd(1995, 1, 1);
  const auto& ship = lineitem.ColumnByName("l_shipdate").ints();
  const auto& disc = lineitem.ColumnByName("l_discount").doubles();
  const auto& qty = lineitem.ColumnByName("l_quantity").doubles();
  const auto& price = lineitem.ColumnByName("l_extendedprice").doubles();
  double expected = 0.0;
  for (size_t r = 0; r < lineitem.num_rows(); ++r) {
    if (ship[r] >= lo && ship[r] < hi && disc[r] >= 0.05 - 1e-12 &&
        disc[r] <= 0.07 + 1e-12 && qty[r] < 24.0) {
      expected += price[r] * disc[r];
    }
  }
  EXPECT_NEAR(revenue, expected, 1e-6 * std::max(1.0, expected));
}

TEST(TpchQueriesTest, Q13CountsEveryOrderOnce) {
  Database* database = SharedDb();
  QueryResult result = database->Run(GetTpchQuery(13).Build(*database));
  // Sum over c_count * custdist = number of orders passing the comment
  // filter (every order counted exactly once).
  const db::Column& c_count = result.table->ColumnByName("c_count");
  const db::Column& custdist = result.table->ColumnByName("custdist");
  int64_t orders_counted = 0;
  for (size_t r = 0; r < result.table->num_rows(); ++r) {
    orders_counted += c_count.GetInt64(r) * custdist.GetInt64(r);
  }
  EXPECT_GT(orders_counted, 0);
  EXPECT_LE(orders_counted,
            static_cast<int64_t>(database->GetTable("orders").num_rows()));
}

TEST(TpchQueriesTest, Q14PercentageInRange) {
  Database* database = SharedDb();
  QueryResult result = database->Run(GetTpchQuery(14).Build(*database));
  ASSERT_EQ(result.table->num_rows(), 1u);
  double promo = result.table->ColumnByName("promo_revenue").GetDouble(0);
  EXPECT_GE(promo, 0.0);
  EXPECT_LE(promo, 100.0);
}

TEST(TpchQueriesTest, Q18FindsOnlyLargeOrders) {
  Database* database = SharedDb();
  QueryResult result = database->Run(GetTpchQuery(18).Build(*database));
  const db::Column& sum_qty = result.table->ColumnByName("sum_qty");
  for (size_t r = 0; r < result.table->num_rows(); ++r) {
    EXPECT_GT(sum_qty.GetDouble(r), 300.0);
  }
}

TEST(TpchQueriesTest, Q22GroupsByCountryCode) {
  Database* database = SharedDb();
  QueryResult result = database->Run(GetTpchQuery(22).Build(*database));
  const db::Column& code = result.table->ColumnByName("cntrycode");
  std::set<std::string> allowed = {"13", "31", "23", "29", "30", "18",
                                   "17"};
  for (size_t r = 0; r < result.table->num_rows(); ++r) {
    EXPECT_TRUE(allowed.count(code.GetString(r)) > 0) << code.GetString(r);
  }
}

}  // namespace
}  // namespace workload
}  // namespace perfeval
