#include "workload/micro.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

namespace perfeval {
namespace workload {
namespace {

MicroTableSpec OneColumnSpec(Distribution distribution, size_t rows) {
  MicroTableSpec spec;
  spec.num_rows = rows;
  MicroColumnSpec column;
  column.name = "v";
  column.distribution = distribution;
  column.min_value = 0;
  column.max_value = 10000;
  spec.columns.push_back(column);
  return spec;
}

TEST(MicroTest, GeneratesRequestedShape) {
  auto table = GenerateMicroTable(OneColumnSpec(Distribution::kUniform,
                                                5000));
  EXPECT_EQ(table->num_rows(), 5000u);
  EXPECT_EQ(table->num_columns(), 1u);
}

TEST(MicroTest, ValuesStayInRange) {
  for (Distribution d : {Distribution::kUniform, Distribution::kZipf,
                         Distribution::kGaussian}) {
    auto table = GenerateMicroTable(OneColumnSpec(d, 2000));
    const auto& values = table->column(0).ints();
    for (int64_t v : values) {
      ASSERT_GE(v, 0) << DistributionName(d);
      ASSERT_LE(v, 10000) << DistributionName(d);
    }
  }
}

TEST(MicroTest, SequentialIsSortedUnique) {
  auto table = GenerateMicroTable(OneColumnSpec(Distribution::kSequential,
                                                1000));
  const auto& values = table->column(0).ints();
  for (size_t i = 1; i < values.size(); ++i) {
    ASSERT_EQ(values[i], values[i - 1] + 1);
  }
}

TEST(MicroTest, DeterministicBySeed) {
  MicroTableSpec spec = OneColumnSpec(Distribution::kUniform, 500);
  auto a = GenerateMicroTable(spec);
  auto b = GenerateMicroTable(spec);
  EXPECT_EQ(a->column(0).ints(), b->column(0).ints());
  spec.seed = 99;
  auto c = GenerateMicroTable(spec);
  EXPECT_NE(a->column(0).ints(), c->column(0).ints());
}

TEST(MicroTest, ZipfIsSkewedUniformIsNot) {
  auto uniform = GenerateMicroTable(OneColumnSpec(Distribution::kUniform,
                                                  20000));
  MicroTableSpec zipf_spec = OneColumnSpec(Distribution::kZipf, 20000);
  zipf_spec.columns[0].zipf_theta = 1.2;
  auto zipf = GenerateMicroTable(zipf_spec);
  auto median_of = [](const std::vector<int64_t>& v) {
    std::vector<int64_t> sorted = v;
    std::sort(sorted.begin(), sorted.end());
    return sorted[sorted.size() / 2];
  };
  // A heavy-skew Zipf pushes the median far below the uniform's.
  EXPECT_LT(median_of(zipf->column(0).ints()),
            median_of(uniform->column(0).ints()) / 4);
}

TEST(MicroTest, GaussianConcentratesAroundMean) {
  auto table = GenerateMicroTable(OneColumnSpec(Distribution::kGaussian,
                                                20000));
  const auto& values = table->column(0).ints();
  int64_t in_middle = 0;
  for (int64_t v : values) {
    in_middle += (v > 3333 && v < 6667) ? 1 : 0;
  }
  // +-1 sd covers ~68%.
  EXPECT_GT(in_middle, static_cast<int64_t>(values.size() * 6 / 10));
}

TEST(MicroTest, FullCorrelationCopiesColumn) {
  MicroTableSpec spec;
  spec.num_rows = 1000;
  spec.columns.push_back({"a", Distribution::kUniform, 0, 1000, 1.0, 0.0});
  spec.columns.push_back({"b", Distribution::kUniform, 0, 1000, 1.0, 1.0});
  auto table = GenerateMicroTable(spec);
  EXPECT_EQ(table->column(0).ints(), table->column(1).ints());
}

TEST(MicroTest, ZeroCorrelationIsIndependent) {
  MicroTableSpec spec;
  spec.num_rows = 20000;
  spec.columns.push_back({"a", Distribution::kUniform, 0, 1000, 1.0, 0.0});
  spec.columns.push_back({"b", Distribution::kUniform, 0, 1000, 1.0, 0.0});
  auto table = GenerateMicroTable(spec);
  // Empirical Pearson correlation near zero.
  const auto& a = table->column(0).ints();
  const auto& b = table->column(1).ints();
  double n = static_cast<double>(a.size());
  double ma = 0.0;
  double mb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    ma += static_cast<double>(a[i]) / n;
    mb += static_cast<double>(b[i]) / n;
  }
  double cov = 0.0;
  double va = 0.0;
  double vb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double da = static_cast<double>(a[i]) - ma;
    double db_ = static_cast<double>(b[i]) - mb;
    cov += da * db_;
    va += da * da;
    vb += db_ * db_;
  }
  double r = cov / std::sqrt(va * vb);
  EXPECT_NEAR(r, 0.0, 0.03);
}

TEST(MicroTest, PartialCorrelationIsBetween) {
  MicroTableSpec spec;
  spec.num_rows = 20000;
  spec.columns.push_back({"a", Distribution::kUniform, 0, 1000, 1.0, 0.0});
  spec.columns.push_back({"b", Distribution::kUniform, 0, 1000, 1.0, 0.8});
  auto table = GenerateMicroTable(spec);
  const auto& a = table->column(0).ints();
  const auto& b = table->column(1).ints();
  double n = static_cast<double>(a.size());
  double ma = 0.0;
  double mb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    ma += static_cast<double>(a[i]) / n;
    mb += static_cast<double>(b[i]) / n;
  }
  double cov = 0.0;
  double va = 0.0;
  double vb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double da = static_cast<double>(a[i]) - ma;
    double db_ = static_cast<double>(b[i]) - mb;
    cov += da * db_;
    va += da * da;
    vb += db_ * db_;
  }
  double r = cov / std::sqrt(va * vb);
  EXPECT_GT(r, 0.8);
  EXPECT_LT(r, 1.0);
}

class SelectivitySweepTest : public ::testing::TestWithParam<double> {};

TEST_P(SelectivitySweepTest, PredicateHitsTarget) {
  double target = GetParam();
  auto table = GenerateMicroTable(OneColumnSpec(Distribution::kUniform,
                                                50000));
  double measured = MeasuredSelectivity(*table, "v", target);
  EXPECT_NEAR(measured, target, 0.02) << "target " << target;
}

INSTANTIATE_TEST_SUITE_P(Selectivities, SelectivitySweepTest,
                         ::testing::Values(0.0, 0.01, 0.1, 0.25, 0.5, 0.75,
                                           0.9, 1.0));

TEST(SelectivityTest, WorksOnSkewedData) {
  MicroTableSpec spec = OneColumnSpec(Distribution::kZipf, 50000);
  spec.columns[0].zipf_theta = 1.0;
  auto table = GenerateMicroTable(spec);
  // Quantile-based thresholds adapt to the skew; duplicates make the
  // match inexact but bounded.
  double measured = MeasuredSelectivity(*table, "v", 0.5);
  EXPECT_GT(measured, 0.40);
  EXPECT_LT(measured, 0.75);
}

}  // namespace
}  // namespace workload
}  // namespace perfeval
