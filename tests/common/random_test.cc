#include "common/random.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace perfeval {
namespace {

TEST(Pcg32Test, DeterministicForSameSeed) {
  Pcg32 a(123);
  Pcg32 b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Pcg32Test, DifferentSeedsDiverge) {
  Pcg32 a(1);
  Pcg32 b(2);
  int differences = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() != b.Next()) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 90);
}

TEST(Pcg32Test, DifferentStreamsDiverge) {
  Pcg32 a(1, 10);
  Pcg32 b(1, 11);
  int differences = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() != b.Next()) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 90);
}

TEST(Pcg32Test, BoundedStaysInBounds) {
  Pcg32 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(13), 13u);
  }
}

TEST(Pcg32Test, BoundedIsRoughlyUniform) {
  Pcg32 rng(9);
  std::vector<int> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.NextBounded(10)];
  }
  for (int count : counts) {
    EXPECT_NEAR(count, kDraws / 10, kDraws / 100);
  }
}

TEST(Pcg32Test, RangeInclusive) {
  Pcg32 rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.NextInRange(5, 8);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 8);
    saw_lo |= v == 5;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Pcg32Test, NegativeRange) {
  Pcg32 rng(13);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInRange(-10, -5);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -5);
  }
}

TEST(Pcg32Test, DoubleInUnitInterval) {
  Pcg32 rng(17);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Pcg32Test, GaussianMomentsMatch) {
  Pcg32 rng(19);
  const int kDraws = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / kDraws;
  double variance = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(variance, 1.0, 0.03);
}

TEST(Pcg32Test, ExponentialMeanMatchesRate) {
  Pcg32 rng(23);
  const int kDraws = 200000;
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    double v = rng.NextExponential(2.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Pcg32Test, BernoulliFrequencyMatchesP) {
  Pcg32 rng(29);
  int hits = 0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    hits += rng.NextBernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

class Pcg32BoundSweepTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(Pcg32BoundSweepTest, NoValueEscapesBound) {
  uint32_t bound = GetParam();
  Pcg32 rng(bound);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(rng.NextBounded(bound), bound);
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, Pcg32BoundSweepTest,
                         ::testing::Values(1u, 2u, 3u, 7u, 16u, 100u, 1000u,
                                           1u << 20, ~0u));

}  // namespace
}  // namespace perfeval
