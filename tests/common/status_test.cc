#include "common/status.h"

#include <gtest/gtest.h>

namespace perfeval {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad k");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad k");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Aborted("x").code(), StatusCode::kAborted);
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
}

TEST(StatusTest, WritePathCodesAreDistinctAndNotOk) {
  // kAborted (a transaction lost a write-write conflict; retryable) and
  // kDataLoss (durable state is corrupt; not retryable) must never
  // collapse into each other or into any pre-existing code — recovery
  // branches on exactly this distinction.
  Status aborted = Status::Aborted("write-write conflict");
  Status data_loss = Status::DataLoss("WAL corrupt mid-log");
  EXPECT_FALSE(aborted.ok());
  EXPECT_FALSE(data_loss.ok());
  EXPECT_NE(aborted.code(), data_loss.code());
  EXPECT_FALSE(aborted == data_loss);
  EXPECT_EQ(aborted.ToString(), "Aborted: write-write conflict");
  EXPECT_EQ(data_loss.ToString(), "DataLoss: WAL corrupt mid-log");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAborted), "Aborted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDataLoss), "DataLoss");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
}

Status FailsThrough() {
  PERFEVAL_RETURN_IF_ERROR(Status::Internal("inner"));
  return Status::OK();
}

Status Succeeds() {
  PERFEVAL_RETURN_IF_ERROR(Status::OK());
  return Status::NotFound("reached end");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailsThrough().code(), StatusCode::kInternal);
  EXPECT_EQ(Succeeds().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace perfeval
