#include "common/status.h"

#include <gtest/gtest.h>

namespace perfeval {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad k");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad k");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
}

Status FailsThrough() {
  PERFEVAL_RETURN_IF_ERROR(Status::Internal("inner"));
  return Status::OK();
}

Status Succeeds() {
  PERFEVAL_RETURN_IF_ERROR(Status::OK());
  return Status::NotFound("reached end");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailsThrough().code(), StatusCode::kInternal);
  EXPECT_EQ(Succeeds().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace perfeval
