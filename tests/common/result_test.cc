#include "common/result.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace perfeval {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueOnSuccess) {
  Result<std::string> result(std::string("hello"));
  EXPECT_EQ(result.value_or("fallback"), "hello");
}

TEST(ResultTest, ArrowOperatorReachesMembers) {
  Result<std::vector<int>> result(std::vector<int>{1, 2, 3});
  EXPECT_EQ(result->size(), 3u);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> result(std::vector<int>{1, 2, 3});
  std::vector<int> moved = std::move(result).value();
  EXPECT_EQ(moved.size(), 3u);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) {
    return Status::InvalidArgument("not positive");
  }
  return x;
}

Status UseParsed(int x, int* out) {
  PERFEVAL_ASSIGN_OR_RETURN(*out, ParsePositive(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseParsed(7, &out).ok());
  EXPECT_EQ(out, 7);
  Status status = UseParsed(-1, &out);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> result(Status::Internal("boom"));
  EXPECT_DEATH((void)result.value(), "boom");
}

TEST(ResultDeathTest, OkStatusRejected) {
  EXPECT_DEATH(Result<int>{Status::OK()}, "OK status");
}

}  // namespace
}  // namespace perfeval
