#include "common/zipf.h"

#include <map>

#include <gtest/gtest.h>

namespace perfeval {
namespace {

TEST(ZipfTest, ValuesStayInDomain) {
  ZipfGenerator zipf(100, 1.0);
  Pcg32 rng(1);
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = zipf.Next(rng);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 100u);
  }
}

TEST(ZipfTest, RankOneIsMostFrequent) {
  ZipfGenerator zipf(50, 1.0);
  Pcg32 rng(2);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) {
    ++counts[zipf.Next(rng)];
  }
  // Frequency of rank 1 should exceed rank 10 which exceeds rank 50.
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[10], counts[50]);
}

TEST(ZipfTest, ThetaZeroDegeneratesToUniform) {
  ZipfGenerator zipf(10, 0.0);
  Pcg32 rng(3);
  std::map<uint64_t, int> counts;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[zipf.Next(rng)];
  }
  for (uint64_t v = 1; v <= 10; ++v) {
    EXPECT_NEAR(counts[v], kDraws / 10, kDraws / 50);
  }
}

TEST(ZipfTest, HigherThetaMeansMoreSkew) {
  Pcg32 rng1(4);
  Pcg32 rng2(4);
  ZipfGenerator mild(100, 0.5);
  ZipfGenerator heavy(100, 1.5);
  int mild_rank1 = 0;
  int heavy_rank1 = 0;
  for (int i = 0; i < 20000; ++i) {
    mild_rank1 += mild.Next(rng1) == 1 ? 1 : 0;
    heavy_rank1 += heavy.Next(rng2) == 1 ? 1 : 0;
  }
  EXPECT_GT(heavy_rank1, mild_rank1 * 2);
}

TEST(ZipfTest, TheoreticalFrequencyOfRankOne) {
  // For n=2, theta=1: P(1) = (1/1)/(1/1 + 1/2) = 2/3.
  ZipfGenerator zipf(2, 1.0);
  Pcg32 rng(5);
  int rank1 = 0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    rank1 += zipf.Next(rng) == 1 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(rank1) / kDraws, 2.0 / 3.0, 0.01);
}

TEST(ZipfDeathTest, RejectsEmptyDomain) {
  EXPECT_DEATH(ZipfGenerator(0, 1.0), "CHECK failed");
}

}  // namespace
}  // namespace perfeval
