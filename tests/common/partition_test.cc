#include "common/partition.h"

#include <map>
#include <vector>

#include <gtest/gtest.h>

namespace perfeval {
namespace {

TEST(HashPartitionerTest, PureFunctionOfKeySaltAndShardCount) {
  HashPartitioner a(4, 7);
  HashPartitioner b(4, 7);
  for (int64_t key = -100; key < 5000; ++key) {
    EXPECT_EQ(a.ShardOf(key), b.ShardOf(key));
    EXPECT_EQ(a.Hash(key), b.Hash(key));
  }
}

TEST(HashPartitionerTest, AssignmentIndependentOfLoadOrder) {
  // The "seam" the sharded loader depends on: the shard of a key must not
  // depend on how many keys were assigned before it, so partitioning a
  // table row-by-row, in reverse, or in parallel chunks gives the same
  // placement for every row.
  HashPartitioner p(8, 42);
  std::map<int64_t, int> forward;
  for (int64_t key = 0; key < 2000; ++key) {
    forward[key] = p.ShardOf(key);
  }
  HashPartitioner q(8, 42);
  for (int64_t key = 1999; key >= 0; --key) {
    EXPECT_EQ(q.ShardOf(key), forward[key]) << "key " << key;
  }
}

TEST(HashPartitionerTest, ShardCountChangesOnlyByModulus) {
  // The mixed hash is shard-count-independent; re-sharding from 4 to 8
  // shards must re-derive assignments from the *same* hash values.
  HashPartitioner four(4, 3);
  HashPartitioner eight(8, 3);
  for (int64_t key = 0; key < 4096; ++key) {
    EXPECT_EQ(four.Hash(key), eight.Hash(key));
    EXPECT_EQ(four.ShardOf(key),
              static_cast<int>(four.Hash(key) % 4));
    EXPECT_EQ(eight.ShardOf(key),
              static_cast<int>(eight.Hash(key) % 8));
  }
}

TEST(HashPartitionerTest, CoPartitionedDomainsAgree) {
  // Two partitioners over the same salt and shard count place equal keys
  // identically — the property that keeps lineitem co-located with orders.
  HashPartitioner orders(4, 19920101);
  HashPartitioner lineitem(4, 19920101);
  for (int64_t orderkey = 1; orderkey <= 6000; ++orderkey) {
    EXPECT_EQ(orders.ShardOf(orderkey), lineitem.ShardOf(orderkey));
  }
  // A different salt is a different domain (customer keys need not follow
  // order keys); statistically some keys must move.
  HashPartitioner customers(4, 815);
  int moved = 0;
  for (int64_t key = 1; key <= 6000; ++key) {
    moved += customers.ShardOf(key) != orders.ShardOf(key) ? 1 : 0;
  }
  EXPECT_GT(moved, 1000);
}

TEST(HashPartitionerTest, SpreadsDenseKeysUniformly) {
  // Dense sequential keys (TPC-H orderkeys) must not stripe: every shard
  // should receive roughly 1/N of the keys.
  const int kShards = 8;
  const int64_t kKeys = 80000;
  HashPartitioner p(kShards, 1);
  std::vector<int64_t> counts(kShards, 0);
  for (int64_t key = 0; key < kKeys; ++key) {
    ++counts[static_cast<size_t>(p.ShardOf(key))];
  }
  double expected = static_cast<double>(kKeys) / kShards;
  for (int s = 0; s < kShards; ++s) {
    EXPECT_GT(counts[static_cast<size_t>(s)], expected * 0.9);
    EXPECT_LT(counts[static_cast<size_t>(s)], expected * 1.1);
  }
}

TEST(HashPartitionerTest, PlatformStableReferenceVectors) {
  // Pinned outputs: the partitioner feeds stored shard layouts, so its
  // mapping is part of the on-disk format and must never drift across
  // platforms or compiler versions. MixSeed is pure 64-bit arithmetic;
  // these vectors lock the composition.
  HashPartitioner p(4, 19920101);
  EXPECT_EQ(p.Hash(0), 10108414434828872322ULL);
  EXPECT_EQ(p.Hash(1), 6525621186290313130ULL);
  EXPECT_EQ(p.Hash(123456789), 15194278280223211433ULL);
  EXPECT_EQ(p.Hash(-1), 8844790481633563062ULL);
}

}  // namespace
}  // namespace perfeval
