#include "common/string_util.h"

#include <gtest/gtest.h>

namespace perfeval {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, AdjacentDelimitersYieldEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(SplitTest, TrailingDelimiter) {
  EXPECT_EQ(Split("a,", ','), (std::vector<std::string>{"a", ""}));
}

TEST(JoinTest, RoundTripsWithSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
}

TEST(JoinTest, EmptyAndSingle) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim("nochange"), "nochange");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("MiXeD 123"), "mixed 123");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("lineitem", "line"));
  EXPECT_FALSE(StartsWith("line", "lineitem"));
  EXPECT_TRUE(EndsWith("lineitem", "item"));
  EXPECT_FALSE(EndsWith("item", "lineitem"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 42, "q", 3.14159), "42-q-3.14");
}

TEST(StrFormatTest, LongOutputNotTruncated) {
  std::string long_arg(5000, 'x');
  std::string out = StrFormat("[%s]", long_arg.c_str());
  EXPECT_EQ(out.size(), 5002u);
}

TEST(ParseInt64Test, StrictParsing) {
  EXPECT_EQ(ParseInt64("42"), 42);
  EXPECT_EQ(ParseInt64(" -7 "), -7);
  EXPECT_FALSE(ParseInt64("12abc").has_value());
  EXPECT_FALSE(ParseInt64("").has_value());
  EXPECT_FALSE(ParseInt64("3.5").has_value());
}

TEST(ParseDoubleTest, StrictParsing) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value(), -1000.0);
  EXPECT_FALSE(ParseDouble("x").has_value());
  EXPECT_FALSE(ParseDouble("1.5 stuff").has_value());
}

TEST(ParseBoolTest, AcceptedSpellings) {
  EXPECT_TRUE(ParseBool("true").value());
  EXPECT_TRUE(ParseBool("YES").value());
  EXPECT_TRUE(ParseBool("1").value());
  EXPECT_TRUE(ParseBool("on").value());
  EXPECT_FALSE(ParseBool("false").value());
  EXPECT_FALSE(ParseBool("0").value());
  EXPECT_FALSE(ParseBool("off").value());
  EXPECT_FALSE(ParseBool("maybe").has_value());
}

TEST(PaddingTest, PadsToWidthWithoutTruncation) {
  EXPECT_EQ(PadLeft("ab", 5), "   ab");
  EXPECT_EQ(PadRight("ab", 5), "ab   ");
  EXPECT_EQ(PadLeft("abcdef", 3), "abcdef");
  EXPECT_EQ(PadRight("abcdef", 3), "abcdef");
}

}  // namespace
}  // namespace perfeval
