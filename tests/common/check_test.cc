#include "common/check.h"

#include <gtest/gtest.h>

namespace perfeval {
namespace {

TEST(CheckTest, PassingCheckIsSilent) {
  PERFEVAL_CHECK(1 + 1 == 2);
  PERFEVAL_CHECK_EQ(3, 3);
  PERFEVAL_CHECK_NE(3, 4);
  PERFEVAL_CHECK_LT(3, 4);
  PERFEVAL_CHECK_LE(3, 3);
  PERFEVAL_CHECK_GT(4, 3);
  PERFEVAL_CHECK_GE(4, 4);
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(PERFEVAL_CHECK(false), "CHECK failed");
}

TEST(CheckDeathTest, FailureIncludesStreamedDetail) {
  int n = -3;
  EXPECT_DEATH(PERFEVAL_CHECK(n > 0) << "n=" << n, "n=-3");
}

TEST(CheckDeathTest, ComparisonMacroShowsExpression) {
  EXPECT_DEATH(PERFEVAL_CHECK_EQ(2 + 2, 5), "CHECK failed");
}

TEST(CheckTest, DanglingElseSafe) {
  // The macro must compose with unbraced if/else.
  bool reached_else = false;
  if (false)
    PERFEVAL_CHECK(true);
  else
    reached_else = true;
  EXPECT_TRUE(reached_else);
}

}  // namespace
}  // namespace perfeval
