// Cardinality and cost estimation (opt/estimator.h) over real plans on a
// small TPC-H instance: catalog lookups, selectivity and join-edge
// estimates, the post-order EstimatePlan contract (one NodeEstimate per
// plan node, positionally aligned with the Profiler's OpTraces), and
// cost-model orderings the DP relies on.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "db/database.h"
#include "db/plan.h"
#include "opt/cost_model.h"
#include "opt/estimator.h"
#include "workload/tpch_gen.h"

namespace perfeval {
namespace opt {
namespace {

db::Database* Db() {
  static db::Database* database = [] {
    auto* d = new db::Database();
    workload::TpchGenerator gen(0.005);
    gen.LoadAll(d);
    return d;
  }();
  return database;
}

class EstimatorTest : public ::testing::Test {
 protected:
  EstimatorTest()
      : stats_(*Db()),
        model_(CostModel::Default()),
        estimator_(stats_, model_, *Db()) {}

  StatsCatalog stats_;
  CostModel model_;
  CardinalityEstimator estimator_;
};

TEST_F(EstimatorTest, CatalogResolvesBaseColumns) {
  const db::ColumnStats* orderkey = stats_.Column("l_orderkey");
  ASSERT_NE(orderkey, nullptr);
  EXPECT_GT(orderkey->rows, 0u);
  EXPECT_EQ(stats_.Column("no_such_column"), nullptr);
}

TEST_F(EstimatorTest, ScanEstimateIsExact) {
  db::PlanPtr scan = db::Scan("lineitem");
  double rows = estimator_.EstimateRows(*scan);
  size_t actual = Db()->GetTable("lineitem").num_rows();
  EXPECT_DOUBLE_EQ(rows, static_cast<double>(actual));
}

TEST_F(EstimatorTest, FilterEstimateTracksActualWithinQError) {
  db::Database* database = Db();
  const db::Schema& schema = database->GetTable("lineitem").schema();
  db::ExprPtr pred = db::Lt(db::Col(schema, "l_quantity"), db::LitInt(25));
  db::PlanPtr plan =
      db::FilterScan("lineitem", {"l_orderkey", "l_quantity"}, pred);
  double est = estimator_.EstimateRows(*plan);
  double actual =
      static_cast<double>(database->Run(plan).table->num_rows());
  ASSERT_GT(actual, 0.0);
  double q = est > actual ? est / actual : actual / est;
  // l_quantity is uniform 1..50: the histogram should be well within 2x.
  EXPECT_LT(q, 2.0) << "est=" << est << " actual=" << actual;
}

TEST_F(EstimatorTest, JoinSelectivityUsesTheLargerNdv) {
  double l_rows =
      static_cast<double>(Db()->GetTable("lineitem").num_rows());
  double o_rows = static_cast<double>(Db()->GetTable("orders").num_rows());
  double sel = estimator_.JoinSelectivity("l_orderkey", l_rows,
                                          "o_orderkey", o_rows);
  ASSERT_GT(sel, 0.0);
  // FK join: |L join O| = |L|, so sel ~= 1/|O| (o_orderkey is the key).
  double est_out = l_rows * o_rows * sel;
  double q = est_out > l_rows ? est_out / l_rows : l_rows / est_out;
  EXPECT_LT(q, 2.0);
}

TEST_F(EstimatorTest, EstimatePlanAlignsWithProfilerTraces) {
  db::Database* database = Db();
  const db::Schema& orders = database->GetTable("orders").schema();
  db::PlanPtr plan = db::Aggregate(
      db::HashJoin(db::FilterScan("orders", {},
                                  db::Lt(db::Col(orders, "o_orderkey"),
                                         db::LitInt(1000))),
                   db::Scan("customer"), "o_custkey", "c_custkey"),
      {"o_orderpriority"}, {{db::AggOp::kCount, nullptr, "n"}});
  std::vector<NodeEstimate> estimates;
  estimator_.EstimatePlan(*plan, &estimates);

  db::QueryResult result = database->Run(plan);
  const std::vector<db::OpTrace>& traces = result.profile.traces();
  ASSERT_EQ(estimates.size(), traces.size());
  for (size_t i = 0; i < estimates.size(); ++i) {
    // Positional zip: each estimate's op name prefixes its trace name
    // ("HashJoin" vs "HashJoin(radix, 4 bits)").
    EXPECT_EQ(traces[i].op.rfind(estimates[i].op, 0), 0u)
        << "node " << i << ": estimate op '" << estimates[i].op
        << "' vs trace '" << traces[i].op << "'";
    EXPECT_GE(estimates[i].rows_out, 0.0);
  }
}

TEST(CostModelTest, OrderingsTheDpDependsOn) {
  CostModel model = CostModel::Default();
  // Legacy (node-allocating unordered_map) must dominate the compact
  // hash join at every size, else the DP would pick it.
  EXPECT_GT(model.JoinCost(db::JoinAlgo::kLegacy, 1e6, 1e5, 1e6),
            model.JoinCost(db::JoinAlgo::kHash, 1e6, 1e5, 1e6));
  // In-cache build: radix's extra partition pass must not pay off.
  double small = 1000.0;
  EXPECT_LE(model.JoinCost(db::JoinAlgo::kHash, 1e5, small, 1e5),
            model.JoinCost(db::JoinAlgo::kRadix, 1e5, small, 1e5));
  // Out-of-cache build: partitioning must beat the cache-miss penalty.
  double big = 4.0 * model.l2_build_rows;
  EXPECT_LT(model.JoinCost(db::JoinAlgo::kRadix, 10.0 * big, big, 1e5),
            model.JoinCost(db::JoinAlgo::kHash, 10.0 * big, big, 1e5));
  // More output rows never cost less.
  EXPECT_LT(model.JoinCost(db::JoinAlgo::kHash, 1e5, 1e4, 1e3),
            model.JoinCost(db::JoinAlgo::kHash, 1e5, 1e4, 1e6));
}

}  // namespace
}  // namespace opt
}  // namespace perfeval
