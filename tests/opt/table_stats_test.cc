// Per-column statistics (db/table_stats.h): the optimizer's input. The
// contract under test: exact row/NULL counts, min/max agreeing with the
// data (zone-map path and scan path), NDV clamped to the row count,
// histogram-backed selectivities inside [0, 1] that rank intuitively,
// and determinism — stats are a pure function of table contents.

#include <memory>

#include <gtest/gtest.h>

#include "db/database.h"
#include "db/table_stats.h"

namespace perfeval {
namespace db {
namespace {

std::shared_ptr<Table> MakeInts(int n, int null_every = 0) {
  auto table = std::make_shared<Table>(
      Schema({{"k", DataType::kInt64}, {"x", DataType::kDouble}}));
  for (int i = 0; i < n; ++i) {
    if (null_every > 0 && i % null_every == 0) {
      table->column(0).AppendNull();
    } else {
      table->column(0).AppendInt64(i % 100);
    }
    table->column(1).AppendDouble(static_cast<double>(i));
  }
  table->FinishBulkLoad();
  return table;
}

TEST(TableStatsTest, CountsMinMaxAndNdv) {
  TableStats stats = ComputeTableStats(*MakeInts(1000));
  ASSERT_EQ(stats.columns.size(), 2u);
  EXPECT_EQ(stats.rows, 1000u);

  const ColumnStats* k = stats.Find("k");
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(k->rows, 1000u);
  EXPECT_EQ(k->null_count, 0u);
  EXPECT_TRUE(k->numeric);
  EXPECT_DOUBLE_EQ(k->min, 0.0);
  EXPECT_DOUBLE_EQ(k->max, 99.0);
  // k cycles through 100 values; the estimate must be clamped to rows
  // and land near the truth on this easy input.
  EXPECT_LE(k->distinct, 1000u);
  EXPECT_GE(k->distinct, 50u);
  EXPECT_LE(k->distinct, 200u);
  EXPECT_TRUE(k->histogram.has_value());

  const ColumnStats* x = stats.Find("x");
  ASSERT_NE(x, nullptr);
  EXPECT_DOUBLE_EQ(x->min, 0.0);
  EXPECT_DOUBLE_EQ(x->max, 999.0);
  EXPECT_EQ(stats.Find("nope"), nullptr);
}

TEST(TableStatsTest, NullsAreCountedAndScaleSelectivity) {
  TableStats stats = ComputeTableStats(*MakeInts(1000, /*null_every=*/4));
  const ColumnStats* k = stats.Find("k");
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(k->null_count, 250u);
  EXPECT_EQ(k->non_null(), 750u);
  EXPECT_DOUBLE_EQ(k->null_fraction(), 0.25);
  // NULLs never match: even the whole range can select at most the
  // non-NULL fraction.
  EXPECT_LE(k->Selectivity(CmpOp::kLe, 99.0), 0.75 + 1e-9);
  EXPECT_GE(k->Selectivity(CmpOp::kLe, 99.0), 0.5);
}

TEST(TableStatsTest, SelectivityRanksAndClamps) {
  TableStats stats = ComputeTableStats(*MakeInts(10000));
  const ColumnStats* x = stats.Find("x");
  ASSERT_NE(x, nullptr);
  // Out-of-range predicates are free lunches.
  EXPECT_DOUBLE_EQ(x->Selectivity(CmpOp::kLt, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(x->Selectivity(CmpOp::kGt, 1e9), 0.0);
  EXPECT_DOUBLE_EQ(x->Selectivity(CmpOp::kEq, -5.0), 0.0);
  // x is uniform over [0, 9999]: the histogram interpolation should be
  // close to the true fractions and must rank monotonically.
  double q10 = x->Selectivity(CmpOp::kLt, 1000.0);
  double q50 = x->Selectivity(CmpOp::kLt, 5000.0);
  double q90 = x->Selectivity(CmpOp::kLt, 9000.0);
  EXPECT_NEAR(q10, 0.10, 0.03);
  EXPECT_NEAR(q50, 0.50, 0.03);
  EXPECT_NEAR(q90, 0.90, 0.03);
  EXPECT_LT(q10, q50);
  EXPECT_LT(q50, q90);
  // Equality on a (nearly) unique column is tiny but positive.
  double eq = x->Selectivity(CmpOp::kEq, 1234.0);
  EXPECT_GT(eq, 0.0);
  EXPECT_LT(eq, 0.01);
}

TEST(TableStatsTest, PureFunctionOfContents) {
  std::shared_ptr<Table> table = MakeInts(5000, /*null_every=*/7);
  TableStats a = ComputeTableStats(*table);
  TableStats b = ComputeTableStats(*table);
  ASSERT_EQ(a.columns.size(), b.columns.size());
  for (size_t i = 0; i < a.columns.size(); ++i) {
    EXPECT_EQ(a.columns[i].null_count, b.columns[i].null_count);
    EXPECT_EQ(a.columns[i].distinct, b.columns[i].distinct);
    EXPECT_DOUBLE_EQ(a.columns[i].min, b.columns[i].min);
    EXPECT_DOUBLE_EQ(a.columns[i].max, b.columns[i].max);
  }
}

TEST(TableStatsTest, DatabaseRefreshesStatsOnRegisterAndReplace) {
  Database database;
  database.RegisterTable("t", MakeInts(100));
  std::shared_ptr<const TableStats> first = database.GetTableStats("t");
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->rows, 100u);

  database.ReplaceTable("t", MakeInts(300));
  std::shared_ptr<const TableStats> second = database.GetTableStats("t");
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->rows, 300u);
  // The old snapshot stays valid for readers that captured it.
  EXPECT_EQ(first->rows, 100u);
}

}  // namespace
}  // namespace db
}  // namespace perfeval
