// The cost-based plan rewrite (opt/optimizer.h). Safety first: on every
// TPC-H plan the optimized tree must produce the same relation as the
// rule-built tree (multiset-compared, 1e-9 double tolerance — join
// reordering legitimately reassociates double sums), with the same output
// schema, deterministically. Then shape: the pass must actually engage on
// the multi-join queries, leave join-free plans untouched, absorb
// column-equality filters, and pin per-join algorithms the DP chose.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "db/database.h"
#include "db/plan.h"
#include "db/reference.h"
#include "opt/estimator.h"
#include "opt/optimizer.h"
#include "workload/tpch_gen.h"
#include "workload/tpch_queries.h"

namespace perfeval {
namespace opt {
namespace {

constexpr double kDoubleTol = 1e-9;

db::Database* Db() {
  static db::Database* database = [] {
    auto* d = new db::Database();
    workload::TpchGenerator gen(0.005);
    gen.LoadAll(d);
    return d;
  }();
  return database;
}

class TpchOptimizeTest : public ::testing::TestWithParam<int> {};

TEST_P(TpchOptimizeTest, OptimizedPlanIsEquivalent) {
  db::Database* database = Db();
  db::PlanPtr plan = workload::GetTpchQuery(GetParam()).Build(*database);
  ASSERT_NE(plan, nullptr);
  OptimizeResult optimized = Optimize(plan, *database);
  ASSERT_NE(optimized.plan, nullptr);

  // Downstream consumers were compiled against the rule plan's schema:
  // the optimizer must reproduce it exactly (names, order, types).
  db::Schema before = OutputSchema(*plan, *database);
  db::Schema after = OutputSchema(*optimized.plan, *database);
  ASSERT_EQ(before.columns().size(), after.columns().size());
  for (size_t i = 0; i < before.columns().size(); ++i) {
    EXPECT_EQ(before.columns()[i].name, after.columns()[i].name);
    EXPECT_EQ(before.columns()[i].type, after.columns()[i].type);
  }

  db::QueryResult expected = database->Run(plan);
  db::QueryResult actual = database->Run(optimized.plan);
  EXPECT_EQ(db::DiffTables(*actual.table, *expected.table, kDoubleTol,
                           /*ignore_row_order=*/true),
            "")
      << db::Explain(optimized.plan);
}

TEST_P(TpchOptimizeTest, RewriteIsDeterministic) {
  db::Database* database = Db();
  db::PlanPtr plan = workload::GetTpchQuery(GetParam()).Build(*database);
  ASSERT_NE(plan, nullptr);
  OptimizeResult a = Optimize(plan, *database);
  OptimizeResult b = Optimize(plan, *database);
  EXPECT_EQ(db::Explain(a.plan), db::Explain(b.plan));
  EXPECT_EQ(a.regions, b.regions);
  EXPECT_EQ(a.reordered, b.reordered);
}

INSTANTIATE_TEST_SUITE_P(All22, TpchOptimizeTest, ::testing::Range(1, 23));

TEST(OptimizerTest, EngagesOnTheJoinQueries) {
  db::Database* database = Db();
  int regions = 0;
  int reordered = 0;
  int pinned = 0;
  for (int q = 1; q <= 22; ++q) {
    db::PlanPtr plan = workload::GetTpchQuery(q).Build(*database);
    OptimizeResult result = Optimize(plan, *database);
    regions += result.regions;
    reordered += result.reordered;
    if (db::Explain(result.plan).find("algo=") != std::string::npos) {
      ++pinned;
    }
  }
  // The 22 plans contain dozens of equi-join regions; the pass must have
  // examined many, re-ordered at least one, and pinned algorithms.
  EXPECT_GT(regions, 10);
  EXPECT_GE(reordered, 1);
  EXPECT_GT(pinned, 5);
}

TEST(OptimizerTest, JoinFreePlansAreUntouched) {
  db::Database* database = Db();
  db::PlanPtr plan = db::Aggregate(db::Scan("lineitem"), {"l_returnflag"},
                                   {{db::AggOp::kCount, nullptr, "n"}});
  OptimizeResult result = Optimize(plan, *database);
  EXPECT_FALSE(result.changed);
  EXPECT_EQ(result.plan.get(), plan.get());
}

TEST(OptimizerTest, AbsorbsColumnEqualityFilterAsJoinEdge) {
  db::Database* database = Db();
  // supplier and customer both join nation; the cross-table equality
  // s_nationkey = c_nationkey arrives as a Filter over a join, which the
  // optimizer may absorb as an edge — results must be unchanged either
  // way.
  db::PlanPtr join = db::HashJoin(
      db::HashJoin(db::Scan("supplier"), db::Scan("nation"), "s_nationkey",
                   "n_nationkey"),
      db::Scan("customer"), "s_nationkey", "c_nationkey");
  db::Schema schema = OutputSchema(*join, *database);
  db::PlanPtr plan = db::Aggregate(
      db::Filter(join, db::Eq(db::Col(schema, "s_nationkey"),
                              db::Col(schema, "c_nationkey"))),
      {"n_name"}, {{db::AggOp::kCount, nullptr, "n"}});
  OptimizeResult optimized = Optimize(plan, *database);
  db::QueryResult expected = database->Run(plan);
  db::QueryResult actual = database->Run(optimized.plan);
  EXPECT_EQ(db::DiffTables(*actual.table, *expected.table, kDoubleTol,
                           /*ignore_row_order=*/true),
            "");
}

TEST(OptimizerTest, ResultsIdenticalAcrossThreadCounts) {
  db::Database* database = Db();
  // The optimized plan must inherit the engine's determinism contract:
  // the same plan, any worker count, identical relations.
  db::PlanPtr plan = workload::GetTpchQuery(5).Build(*database);
  OptimizeResult optimized = Optimize(plan, *database);
  database->set_threads(1);
  db::QueryResult t1 = database->Run(optimized.plan);
  database->set_threads(4);
  db::QueryResult t4 = database->Run(optimized.plan);
  database->set_threads(1);
  EXPECT_EQ(db::DiffTables(*t4.table, *t1.table, /*tolerance=*/0.0,
                           /*ignore_row_order=*/false),
            "");
}

}  // namespace
}  // namespace opt
}  // namespace perfeval
