#include "netsim/simulator.h"

#include <gtest/gtest.h>

#include "doe/allocation.h"

namespace perfeval {
namespace netsim {
namespace {

SimulationConfig FastConfig() {
  SimulationConfig config;
  config.measured_cycles = 2000;
  config.warmup_cycles = 100;
  return config;
}

TEST(SimulatorTest, ThroughputIsAFraction) {
  for (const char* net : {"Crossbar", "Omega"}) {
    for (const char* pattern : {"Random", "Matrix"}) {
      NetworkMetrics m = SimulateCell(net, pattern, FastConfig());
      EXPECT_GT(m.throughput, 0.0) << net << "/" << pattern;
      EXPECT_LE(m.throughput, 1.0) << net << "/" << pattern;
      EXPECT_GT(m.granted_requests, 0);
    }
  }
}

TEST(SimulatorTest, CrossbarBeatsOmegaOnBothPatterns) {
  // The paper's slide-92 direction: the crossbar wins under both
  // patterns because the Omega network blocks internally.
  SimulationConfig config = FastConfig();
  for (const char* pattern : {"Random", "Matrix"}) {
    NetworkMetrics crossbar = SimulateCell("Crossbar", pattern, config);
    NetworkMetrics omega = SimulateCell("Omega", pattern, config);
    EXPECT_GT(crossbar.throughput, omega.throughput) << pattern;
    EXPECT_LT(crossbar.avg_response_cycles, omega.avg_response_cycles)
        << pattern;
  }
}

TEST(SimulatorTest, MatrixPatternBeatsRandomOnBothNetworks) {
  SimulationConfig config = FastConfig();
  for (const char* net : {"Crossbar", "Omega"}) {
    NetworkMetrics random = SimulateCell(net, "Random", config);
    NetworkMetrics matrix = SimulateCell(net, "Matrix", config);
    EXPECT_GT(matrix.throughput, random.throughput) << net;
  }
}

TEST(SimulatorTest, CrossbarRandomThroughputNearBirthdayBound) {
  // With uniform random destinations, expected distinct modules per cycle
  // is N(1 - (1-1/N)^N) ~ 0.63N; retries keep the steady state near it.
  NetworkMetrics m = SimulateCell("Crossbar", "Random", FastConfig());
  EXPECT_NEAR(m.throughput, 0.62, 0.05);
}

TEST(SimulatorTest, PaperShapeAllocationOfVariation) {
  // Reproduce the slide-92 analysis on simulated data: the address
  // pattern explains the largest share of the variation in T, the
  // interaction the smallest (the paper's conclusion).
  SimulationConfig config = FastConfig();
  config.measured_cycles = 4000;
  doe::SignTable table = doe::SignTable::FullFactorial(2);
  // Factor A = pattern (Random/Matrix), factor B = network.
  std::vector<double> t = {
      SimulateCell("Crossbar", "Random", config).throughput,
      SimulateCell("Crossbar", "Matrix", config).throughput,
      SimulateCell("Omega", "Random", config).throughput,
      SimulateCell("Omega", "Matrix", config).throughput,
  };
  doe::VariationAllocation allocation = doe::AllocateVariation(table, t);
  double pattern = allocation.FractionFor(0b01);
  double network = allocation.FractionFor(0b10);
  double interaction = allocation.FractionFor(0b11);
  EXPECT_GT(pattern, network);
  EXPECT_GT(pattern, 0.5);
  EXPECT_LT(interaction, 0.1);
}

TEST(SimulatorTest, TransitTimesRespectPathLengths) {
  SimulationConfig config = FastConfig();
  NetworkMetrics crossbar = SimulateCell("Crossbar", "Random", config);
  NetworkMetrics omega = SimulateCell("Omega", "Random", config);
  // Minimum possible transit = path cycles.
  EXPECT_GE(crossbar.transit_p90_cycles, 2.0);
  EXPECT_GE(omega.transit_p90_cycles, 5.0);
  EXPECT_GE(crossbar.avg_response_cycles, 2.0);
}

TEST(SimulatorTest, DeterministicForSeed) {
  SimulationConfig config = FastConfig();
  NetworkMetrics a = SimulateCell("Omega", "Random", config);
  NetworkMetrics b = SimulateCell("Omega", "Random", config);
  EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
  config.seed = 99;
  NetworkMetrics c = SimulateCell("Omega", "Random", config);
  EXPECT_NE(a.granted_requests, c.granted_requests);
}

TEST(SimulatorTest, MetricsToStringMentionsCell) {
  NetworkMetrics m = SimulateCell("Crossbar", "Matrix", FastConfig());
  std::string text = m.ToString();
  EXPECT_NE(text.find("Crossbar"), std::string::npos);
  EXPECT_NE(text.find("Matrix"), std::string::npos);
  EXPECT_NE(text.find("T="), std::string::npos);
}

TEST(SimulatorDeathTest, UnknownCellNamesAbort) {
  EXPECT_DEATH(SimulateCell("Mesh", "Random", FastConfig()),
               "unknown network");
  EXPECT_DEATH(SimulateCell("Omega", "Bursty", FastConfig()),
               "unknown pattern");
}

}  // namespace
}  // namespace netsim
}  // namespace perfeval
