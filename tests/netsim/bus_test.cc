#include "netsim/bus.h"

#include <gtest/gtest.h>

#include "netsim/simulator.h"

namespace perfeval {
namespace netsim {
namespace {

TEST(BusTest, GrantsExactlyOnePerCycle) {
  SharedBus bus;
  std::vector<Request> requests = {{0, 1, 0}, {1, 2, 0}, {2, 3, 0}};
  std::vector<bool> granted;
  bus.Arbitrate(requests, &granted);
  int grants = 0;
  for (bool g : granted) {
    grants += g ? 1 : 0;
  }
  EXPECT_EQ(grants, 1);
}

TEST(BusTest, RoundRobinAlternates) {
  SharedBus bus;
  std::vector<int> winners;
  for (int cycle = 0; cycle < 6; ++cycle) {
    std::vector<Request> requests = {{0, 0, cycle}, {1, 0, cycle},
                                     {2, 0, cycle}};
    std::vector<bool> granted;
    bus.Arbitrate(requests, &granted);
    for (size_t i = 0; i < granted.size(); ++i) {
      if (granted[i]) {
        winners.push_back(requests[i].processor);
      }
    }
  }
  EXPECT_EQ(winners, (std::vector<int>{0, 1, 2, 0, 1, 2}));
}

TEST(BusTest, EmptyOfferIsFine) {
  SharedBus bus;
  std::vector<bool> granted;
  bus.Arbitrate({}, &granted);
  EXPECT_TRUE(granted.empty());
}

TEST(BusTest, ThroughputCapsAtOneOverN) {
  SimulationConfig config;
  config.num_processors = 16;
  config.measured_cycles = 2000;
  NetworkMetrics bus = SimulateCell("Bus", "Random", config);
  EXPECT_NEAR(bus.throughput, 1.0 / 16.0, 0.005);
}

TEST(BusTest, LosesToBothSwitchedNetworks) {
  SimulationConfig config;
  config.num_processors = 16;
  config.measured_cycles = 2000;
  NetworkMetrics bus = SimulateCell("Bus", "Random", config);
  NetworkMetrics omega = SimulateCell("Omega", "Random", config);
  NetworkMetrics crossbar = SimulateCell("Crossbar", "Random", config);
  EXPECT_LT(bus.throughput, omega.throughput / 4);
  EXPECT_LT(bus.throughput, crossbar.throughput / 4);
}

TEST(BusTest, GapGrowsWithSystemSize) {
  SimulationConfig small;
  small.num_processors = 4;
  small.measured_cycles = 2000;
  SimulationConfig large = small;
  large.num_processors = 64;
  double small_ratio =
      SimulateCell("Crossbar", "Random", small).throughput /
      SimulateCell("Bus", "Random", small).throughput;
  double large_ratio =
      SimulateCell("Crossbar", "Random", large).throughput /
      SimulateCell("Bus", "Random", large).throughput;
  EXPECT_GT(large_ratio, 3.0 * small_ratio);
}

}  // namespace
}  // namespace netsim
}  // namespace perfeval
