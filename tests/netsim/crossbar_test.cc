#include "netsim/crossbar.h"

#include <gtest/gtest.h>

namespace perfeval {
namespace netsim {
namespace {

TEST(CrossbarTest, PermutationRoutesWithoutConflict) {
  Crossbar crossbar(8);
  std::vector<Request> requests;
  for (int p = 0; p < 8; ++p) {
    requests.push_back({p, (p + 3) % 8, 0});
  }
  std::vector<bool> granted;
  crossbar.Arbitrate(requests, &granted);
  for (bool g : granted) {
    EXPECT_TRUE(g);
  }
}

TEST(CrossbarTest, SameModuleConflictGrantsExactlyOne) {
  Crossbar crossbar(8);
  std::vector<Request> requests = {{0, 5, 0}, {1, 5, 0}, {2, 5, 0}};
  std::vector<bool> granted;
  crossbar.Arbitrate(requests, &granted);
  int grants = 0;
  for (bool g : granted) {
    grants += g ? 1 : 0;
  }
  EXPECT_EQ(grants, 1);
}

TEST(CrossbarTest, IndependentConflictsResolvedPerModule) {
  Crossbar crossbar(8);
  std::vector<Request> requests = {{0, 1, 0}, {1, 1, 0},   // module 1
                                   {2, 2, 0}, {3, 2, 0},   // module 2
                                   {4, 3, 0}};             // module 3
  std::vector<bool> granted;
  crossbar.Arbitrate(requests, &granted);
  int grants = 0;
  for (bool g : granted) {
    grants += g ? 1 : 0;
  }
  EXPECT_EQ(grants, 3);
  EXPECT_TRUE(granted[4]);
}

TEST(CrossbarTest, RotatingPriorityIsFairOverTime) {
  Crossbar crossbar(4);
  // Two processors fight for module 0 every cycle.
  int wins[2] = {0, 0};
  for (int cycle = 0; cycle < 100; ++cycle) {
    std::vector<Request> requests = {{0, 0, cycle}, {1, 0, cycle}};
    std::vector<bool> granted;
    crossbar.Arbitrate(requests, &granted);
    wins[0] += granted[0] ? 1 : 0;
    wins[1] += granted[1] ? 1 : 0;
  }
  EXPECT_EQ(wins[0] + wins[1], 100);
  EXPECT_NEAR(wins[0], 50, 10);
}

TEST(CrossbarTest, PathIsTwoCycles) {
  EXPECT_EQ(Crossbar(16).PathCycles(), 2);
}

TEST(CrossbarTest, EmptyOfferIsFine) {
  Crossbar crossbar(4);
  std::vector<bool> granted;
  crossbar.Arbitrate({}, &granted);
  EXPECT_TRUE(granted.empty());
}

}  // namespace
}  // namespace netsim
}  // namespace perfeval
