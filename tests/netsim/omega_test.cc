#include "netsim/omega.h"

#include <set>

#include <gtest/gtest.h>

namespace perfeval {
namespace netsim {
namespace {

TEST(OmegaTest, StagesAreLogN) {
  EXPECT_EQ(OmegaNetwork(2).num_stages(), 1);
  EXPECT_EQ(OmegaNetwork(8).num_stages(), 3);
  EXPECT_EQ(OmegaNetwork(16).num_stages(), 4);
  EXPECT_EQ(OmegaNetwork(16).PathCycles(), 5);
}

TEST(OmegaDeathTest, RejectsNonPowerOfTwo) {
  EXPECT_DEATH(OmegaNetwork(12), "power of two");
}

TEST(OmegaTest, SingleRequestAlwaysRoutes) {
  OmegaNetwork omega(16);
  for (int dst = 0; dst < 16; ++dst) {
    std::vector<Request> requests = {{3, dst, 0}};
    std::vector<bool> granted;
    omega.Arbitrate(requests, &granted);
    EXPECT_TRUE(granted[0]) << "dst " << dst;
  }
}

TEST(OmegaTest, IdentityPermutationRoutesConflictFree) {
  // The identity is one of the permutations an Omega network passes.
  OmegaNetwork omega(8);
  std::vector<Request> requests;
  for (int p = 0; p < 8; ++p) {
    requests.push_back({p, p, 0});
  }
  std::vector<bool> granted;
  omega.Arbitrate(requests, &granted);
  for (int p = 0; p < 8; ++p) {
    EXPECT_TRUE(granted[static_cast<size_t>(p)]) << p;
  }
}

TEST(OmegaTest, CyclicShiftRoutesConflictFree) {
  // Uniform shifts sigma(x) = x + c are Omega-passable.
  OmegaNetwork omega(16);
  for (int shift = 0; shift < 16; ++shift) {
    std::vector<Request> requests;
    for (int p = 0; p < 16; ++p) {
      requests.push_back({p, (p + shift) % 16, 0});
    }
    std::vector<bool> granted;
    omega.Arbitrate(requests, &granted);
    for (bool g : granted) {
      EXPECT_TRUE(g) << "shift " << shift;
    }
  }
}

TEST(OmegaTest, BlockingPermutationExists) {
  // Unlike the crossbar, Omega blocks some full permutations: two requests
  // can need the same internal wire while addressing different modules.
  // Bit-reversal is the classic adversary.
  OmegaNetwork omega(8);
  auto bit_reverse3 = [](int x) {
    return ((x & 1) << 2) | (x & 2) | ((x & 4) >> 2);
  };
  std::vector<Request> requests;
  for (int p = 0; p < 8; ++p) {
    requests.push_back({p, bit_reverse3(p), 0});
  }
  std::vector<bool> granted;
  omega.Arbitrate(requests, &granted);
  int grants = 0;
  for (bool g : granted) {
    grants += g ? 1 : 0;
  }
  EXPECT_LT(grants, 8);  // blocking network: someone loses.
  EXPECT_GT(grants, 0);
}

TEST(OmegaTest, SameDestinationConflictsAtTheLastStage) {
  OmegaNetwork omega(8);
  std::vector<Request> requests = {{0, 4, 0}, {1, 4, 0}};
  std::vector<bool> granted;
  omega.Arbitrate(requests, &granted);
  int grants = 0;
  for (bool g : granted) {
    grants += g ? 1 : 0;
  }
  EXPECT_EQ(grants, 1);
}

TEST(OmegaTest, GrantedSetNeverSharesWires) {
  // Property check over random offered sets: re-route every granted
  // request and verify pairwise wire-disjointness by construction —
  // the arbiter must never grant two requests with a common path edge.
  OmegaNetwork omega(16);
  // Deterministic pseudo-random destinations.
  uint32_t state = 12345;
  auto next = [&state]() {
    state = state * 1664525 + 1013904223;
    return state >> 16;
  };
  for (int round = 0; round < 200; ++round) {
    std::vector<Request> requests;
    for (int p = 0; p < 16; ++p) {
      requests.push_back({p, static_cast<int>(next() % 16), round});
    }
    std::vector<bool> granted;
    omega.Arbitrate(requests, &granted);
    // Recompute paths of granted requests; no (stage, wire) may repeat.
    auto shuffle = [](int wire) {
      int msb = (wire >> 3) & 1;
      return ((wire << 1) & 15) | msb;
    };
    std::set<std::pair<int, int>> used;
    for (size_t i = 0; i < requests.size(); ++i) {
      if (!granted[i]) {
        continue;
      }
      int wire = requests[i].processor;
      for (int stage = 0; stage < 4; ++stage) {
        int dst_bit = (requests[i].destination >> (3 - stage)) & 1;
        wire = (shuffle(wire) & ~1) | dst_bit;
        EXPECT_TRUE(used.insert({stage, wire}).second)
            << "round " << round << " stage " << stage;
      }
    }
  }
}

}  // namespace
}  // namespace netsim
}  // namespace perfeval
