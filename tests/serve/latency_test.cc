#include "serve/latency.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "gtest/gtest.h"

namespace perfeval {
namespace serve {
namespace {

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  // Below two octaves of sub-buckets every value has its own bucket, so
  // quantization starts only at 2 * kSubBuckets.
  for (int64_t v = 0; v < 2 * LatencyHistogram::kSubBuckets; ++v) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(v), static_cast<size_t>(v));
    EXPECT_EQ(LatencyHistogram::BucketLowerNs(static_cast<size_t>(v)), v);
  }
}

TEST(LatencyHistogramTest, BucketIndexIsMonotoneAndCoversEdges) {
  const int64_t probes[] = {0,       1,        15,        16,      31,
                            32,      33,       1000,      4095,    4096,
                            1 << 20, 1'000'000'000, int64_t{1} << 40};
  size_t prev = 0;
  for (int64_t v : probes) {
    size_t index = LatencyHistogram::BucketIndex(v);
    EXPECT_GE(index, prev) << "non-monotone at " << v;
    EXPECT_LE(LatencyHistogram::BucketLowerNs(index), v);
    prev = index;
  }
}

TEST(LatencyHistogramTest, RelativeErrorBounded) {
  // The bucket midpoint must be within 1/kSubBuckets of the true value at
  // every magnitude the service can plausibly record.
  for (int64_t v = 1; v < (int64_t{1} << 40); v = v * 3 + 7) {
    size_t index = LatencyHistogram::BucketIndex(v);
    double mid = LatencyHistogram::BucketMidNs(index);
    double rel = std::abs(mid - static_cast<double>(v)) /
                 static_cast<double>(v);
    EXPECT_LE(rel, 1.0 / LatencyHistogram::kSubBuckets)
        << "value " << v << " -> midpoint " << mid;
  }
}

TEST(LatencyHistogramTest, ExactExtremesAndMean) {
  LatencyHistogram h;
  h.Record(1000);
  h.Record(3000);
  h.Record(2000);
  EXPECT_EQ(h.TotalCount(), 3);
  EXPECT_EQ(h.MinNs(), 1000);
  EXPECT_EQ(h.MaxNs(), 3000);
  EXPECT_DOUBLE_EQ(h.MeanNs(), 2000.0);
}

TEST(LatencyHistogramTest, NegativeClampsToZero) {
  LatencyHistogram h;
  h.Record(-5);
  EXPECT_EQ(h.TotalCount(), 1);
  EXPECT_EQ(h.MinNs(), 0);
  EXPECT_EQ(h.MaxNs(), 0);
}

TEST(LatencyHistogramTest, PercentilesWithinQuantizationError) {
  LatencyHistogram h;
  for (int64_t v = 1; v <= 10000; ++v) {
    h.Record(v);
  }
  EXPECT_DOUBLE_EQ(h.ValueAtPercentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.ValueAtPercentile(100.0), 10000.0);
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    double expected = p / 100.0 * 10000.0;
    double got = h.ValueAtPercentile(p);
    EXPECT_NEAR(got, expected, expected / LatencyHistogram::kSubBuckets)
        << "p" << p;
  }
}

TEST(LatencyHistogramTest, MergeMatchesSingleHistogram) {
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram all;
  for (int64_t v = 1; v <= 2000; ++v) {
    ((v % 2 == 0) ? a : b).Record(v * 17);
    all.Record(v * 17);
  }
  a.Merge(b);
  EXPECT_EQ(a.TotalCount(), all.TotalCount());
  EXPECT_EQ(a.MinNs(), all.MinNs());
  EXPECT_EQ(a.MaxNs(), all.MaxNs());
  EXPECT_DOUBLE_EQ(a.MeanNs(), all.MeanNs());
  for (double p : {10.0, 50.0, 90.0, 99.0}) {
    EXPECT_DOUBLE_EQ(a.ValueAtPercentile(p), all.ValueAtPercentile(p));
  }
}

TEST(LatencyHistogramTest, RepresentativeValuesSortedAndComplete) {
  LatencyHistogram h;
  h.Record(100);
  h.Record(90000);
  h.Record(100);
  h.Record(7);
  std::vector<double> values = h.RepresentativeValues();
  ASSERT_EQ(values.size(), 4u);
  EXPECT_TRUE(std::is_sorted(values.begin(), values.end()));
  EXPECT_DOUBLE_EQ(values.front(), 7.0);  // exact range: value itself.
}

TEST(LatencyHistogramTest, PercentileCIDeterministicInSeed) {
  LatencyHistogram h;
  for (int64_t v = 1; v <= 500; ++v) {
    h.Record(v * 1000);
  }
  stats::ConfidenceInterval a = h.PercentileCI(99.0, 0.95, 42, 300);
  stats::ConfidenceInterval b = h.PercentileCI(99.0, 0.95, 42, 300);
  EXPECT_DOUBLE_EQ(a.lower, b.lower);
  EXPECT_DOUBLE_EQ(a.upper, b.upper);
  EXPECT_LE(a.lower, a.upper);
  // The interval brackets the point estimate's neighborhood.
  double p99 = h.ValueAtPercentile(99.0);
  EXPECT_LE(a.lower, p99 * 1.01);
  EXPECT_GE(a.upper, p99 * 0.9);
}

TEST(LatencyHistogramTest, SummaryStringMentionsCountAndTail) {
  LatencyHistogram h;
  h.Record(2'000'000);  // 2 ms
  h.Record(4'000'000);
  std::string s = h.SummaryString();
  EXPECT_NE(s.find("n=2"), std::string::npos) << s;
  EXPECT_NE(s.find("p99"), std::string::npos) << s;
}

}  // namespace
}  // namespace serve
}  // namespace perfeval
