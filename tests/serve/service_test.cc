#include "serve/service.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "db/database.h"
#include "gtest/gtest.h"
#include "workload/tpch_gen.h"

namespace perfeval {
namespace serve {
namespace {

/// One tiny TPC-H catalog shared by every test in this binary: the service
/// only reads it, so sharing is safe and keeps the suite fast enough to run
/// under the thread sanitizer.
db::Database* SharedDb() {
  static db::Database* database = [] {
    auto* d = new db::Database();
    workload::TpchGenerator gen(0.005);
    gen.LoadAll(d);
    return d;
  }();
  return database;
}

/// A manually released gate for before_execute hooks: lets a test park a
/// worker inside a request deterministically (no sleeps on the hot path).
class Gate {
 public:
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

void WaitForStarted(const QueryService& service, int64_t n) {
  while (service.stats().started < n) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(QueryServiceTest, ExecutesQueryWithServerSplit) {
  QueryService service(SharedDb(), ServiceOptions{});
  Request request;
  request.query = 1;
  request.seed = 77;
  Response response = service.Execute(std::move(request));
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.seed, 77u);
  ASSERT_NE(response.table, nullptr);
  EXPECT_GT(response.table->num_rows(), 0u);
  EXPECT_NE(response.fingerprint, 0u);
  EXPECT_GE(response.server.queue_wait_ns, 0);
  EXPECT_GT(response.server.exec_ns, 0);
  EXPECT_EQ(response.server.TotalNs(),
            response.server.queue_wait_ns + response.server.exec_ns);
}

TEST(QueryServiceTest, FingerprintIdenticalAcrossWorkerCounts) {
  uint64_t fingerprints[3] = {0, 0, 0};
  int workers[3] = {1, 4, 8};
  for (int i = 0; i < 3; ++i) {
    ServiceOptions options;
    options.workers = workers[i];
    QueryService service(SharedDb(), options);
    Request request;
    request.query = 3;
    Response response = service.Execute(std::move(request));
    ASSERT_TRUE(response.status.ok());
    fingerprints[i] = response.fingerprint;
  }
  EXPECT_NE(fingerprints[0], 0u);
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
  EXPECT_EQ(fingerprints[0], fingerprints[2]);
}

TEST(QueryServiceTest, ShedPolicyReturnsOverloadedImmediately) {
  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  options.overload = OverloadPolicy::kShed;
  QueryService service(SharedDb(), options);

  Gate gate;
  Request holder;
  holder.query = 1;
  holder.before_execute = [&gate] { gate.Wait(); };
  ResponseHandle h1 = service.Submit(std::move(holder));
  WaitForStarted(service, 1);  // worker parked inside request 1.

  ResponseHandle h2 = service.Submit(Request{});  // fills the queue.
  ResponseHandle h3 = service.Submit(Request{});  // must shed, not hang.
  EXPECT_TRUE(h3->Done());
  EXPECT_EQ(h3->Wait().status.code(), StatusCode::kOverloaded);

  gate.Release();
  EXPECT_TRUE(h1->Wait().status.ok());
  EXPECT_TRUE(h2->Wait().status.ok());
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.shed, 1);
  EXPECT_EQ(stats.executed, 2);
}

TEST(QueryServiceTest, TimeoutPolicyGivesUpAfterDeadline) {
  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  options.overload = OverloadPolicy::kTimeout;
  options.admission_timeout_ns = 2'000'000;  // 2 ms
  QueryService service(SharedDb(), options);

  Gate gate;
  Request holder;
  holder.before_execute = [&gate] { gate.Wait(); };
  ResponseHandle h1 = service.Submit(std::move(holder));
  WaitForStarted(service, 1);
  ResponseHandle h2 = service.Submit(Request{});
  // The queue is full and stays full: this submit waits out the admission
  // timeout and is then shed — the test would hang here if it blocked.
  ResponseHandle h3 = service.Submit(Request{});
  EXPECT_EQ(h3->Wait().status.code(), StatusCode::kOverloaded);

  gate.Release();
  EXPECT_TRUE(h1->Wait().status.ok());
  EXPECT_TRUE(h2->Wait().status.ok());
}

TEST(QueryServiceTest, BlockPolicyAppliesBackPressure) {
  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  options.overload = OverloadPolicy::kBlock;
  QueryService service(SharedDb(), options);

  Gate gate;
  Request holder;
  holder.before_execute = [&gate] { gate.Wait(); };
  ResponseHandle h1 = service.Submit(std::move(holder));
  WaitForStarted(service, 1);
  ResponseHandle h2 = service.Submit(Request{});

  std::atomic<bool> admitted{false};
  ResponseHandle h3;
  std::thread blocked([&] {
    h3 = service.Submit(Request{});  // blocks until a slot frees.
    admitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(admitted.load());  // still waiting for back-pressure.

  gate.Release();
  blocked.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_TRUE(h1->Wait().status.ok());
  EXPECT_TRUE(h2->Wait().status.ok());
  EXPECT_TRUE(h3->Wait().status.ok());
  EXPECT_EQ(service.stats().shed, 0);
}

TEST(QueryServiceTest, ExpiredDeadlineNeverExecutes) {
  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 4;
  QueryService service(SharedDb(), options);

  Gate gate;
  Request holder;
  holder.before_execute = [&gate] { gate.Wait(); };
  ResponseHandle h1 = service.Submit(std::move(holder));
  WaitForStarted(service, 1);

  std::atomic<bool> ran{false};
  Request doomed;
  doomed.query = 1;
  doomed.deadline_ns = 1;  // expires while queued behind the held request.
  doomed.before_execute = [&ran] { ran.store(true); };
  ResponseHandle h2 = service.Submit(std::move(doomed));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  gate.Release();

  const Response& response = h2->Wait();
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(response.table, nullptr);
  EXPECT_FALSE(ran.load()) << "expired request reached execution";
  EXPECT_TRUE(h1->Wait().status.ok());
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.deadline_expired, 1);
  EXPECT_EQ(stats.executed, 1);
}

TEST(QueryServiceTest, SubmitAfterShutdownFailsFast) {
  QueryService service(SharedDb(), ServiceOptions{});
  EXPECT_TRUE(service.Execute(Request{}).status.ok());
  service.Shutdown();
  Response response = service.Execute(Request{});
  EXPECT_EQ(response.status.code(), StatusCode::kFailedPrecondition);
  service.Shutdown();  // idempotent.
}

TEST(QueryServiceTest, StatsAddUp) {
  ServiceOptions options;
  options.workers = 2;
  QueryService service(SharedDb(), options);
  std::vector<ResponseHandle> handles;
  for (int i = 0; i < 8; ++i) {
    Request request;
    request.query = 1 + (i % 2 == 0 ? 0 : 5);  // Q1 and Q6.
    handles.push_back(service.Submit(std::move(request)));
  }
  for (auto& handle : handles) {
    EXPECT_TRUE(handle->Wait().status.ok());
  }
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 8);
  EXPECT_EQ(stats.admitted, 8);
  EXPECT_EQ(stats.started, 8);
  EXPECT_EQ(stats.executed, 8);
  EXPECT_EQ(stats.shed, 0);
  EXPECT_EQ(stats.deadline_expired, 0);
}

TEST(QueryServiceTest, TenantQuotaRejectsWithoutBlocking) {
  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 8;
  options.overload = OverloadPolicy::kBlock;  // quota must still not block.
  options.tenant_quotas["greedy"] = 2;
  QueryService service(SharedDb(), options);

  Gate gate;
  std::vector<ResponseHandle> held;
  for (int i = 0; i < 2; ++i) {
    Request request;
    request.query = 1;
    request.tenant = "greedy";
    request.before_execute = [&gate] { gate.Wait(); };
    held.push_back(service.Submit(std::move(request)));
  }
  WaitForStarted(service, 1);  // one executing, one queued: 2 outstanding.

  Request third;
  third.tenant = "greedy";
  ResponseHandle rejected = service.Submit(std::move(third));
  EXPECT_TRUE(rejected->Done());  // immediate — never parked in the queue.
  EXPECT_EQ(rejected->Wait().status.code(), StatusCode::kOverloaded);

  // Other tenants (and untenanted requests) are unaffected by the quota.
  Request other;
  other.tenant = "modest";
  ResponseHandle ok1 = service.Submit(std::move(other));
  ResponseHandle ok2 = service.Submit(Request{});

  gate.Release();
  for (auto& handle : held) {
    EXPECT_TRUE(handle->Wait().status.ok());
  }
  EXPECT_TRUE(ok1->Wait().status.ok());
  EXPECT_TRUE(ok2->Wait().status.ok());

  // Completion freed the quota slots: the tenant is admittable again.
  Request again;
  again.tenant = "greedy";
  EXPECT_TRUE(service.Execute(std::move(again)).status.ok());

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.quota_rejected, 1);
  EXPECT_EQ(stats.shed, 0);
  EXPECT_EQ(stats.executed, 5);
}

TEST(QueryServiceTest, QueueSnapshotSeesQueuedAndInflight) {
  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 8;
  QueryService service(SharedDb(), options);

  Gate gate;
  Request holder;
  holder.before_execute = [&gate] { gate.Wait(); };
  ResponseHandle h1 = service.Submit(std::move(holder));
  WaitForStarted(service, 1);
  ResponseHandle h2 = service.Submit(Request{});

  QueueSnapshot snap = service.queue_snapshot();
  EXPECT_EQ(snap.inflight, 1u);  // parked inside before_execute.
  EXPECT_EQ(snap.queued, 1u);    // waiting behind the single worker.

  gate.Release();
  EXPECT_TRUE(h1->Wait().status.ok());
  EXPECT_TRUE(h2->Wait().status.ok());
  snap = service.queue_snapshot();
  EXPECT_EQ(snap.inflight, 0u);
  EXPECT_EQ(snap.queued, 0u);
}

TEST(QueryServiceTest, RequestModeOverridesServiceDefault) {
  ServiceOptions options;
  options.mode = db::ExecMode::kOptimized;
  QueryService service(SharedDb(), options);

  Request debug_request;
  debug_request.query = 6;
  debug_request.mode = db::ExecMode::kDebug;
  Response debug_response = service.Execute(std::move(debug_request));
  ASSERT_TRUE(debug_response.status.ok());

  Request default_request;
  default_request.query = 6;
  Response default_response = service.Execute(std::move(default_request));
  ASSERT_TRUE(default_response.status.ok());

  // Mode is a performance knob, not a semantic one: same fingerprint.
  EXPECT_EQ(debug_response.fingerprint, default_response.fingerprint);
  EXPECT_NE(debug_response.fingerprint, 0u);
}

TEST(QueryServiceTest, ExecutorSeamServesNonDatabaseBackends) {
  // The front-end seam: a service whose executor is arbitrary code, with
  // queueing/stats/fingerprinting unchanged.
  std::atomic<int> calls{0};
  QueryService::ExecutorFn executor =
      [&calls](const Request& request, db::ExecMode, db::SinkKind) {
        ++calls;
        db::Table table(db::Schema({{"echo", db::DataType::kInt64}}));
        table.AppendRow({db::Value::Int64(request.query)});
        db::QueryResult result;
        result.table = std::make_shared<db::Table>(std::move(table));
        return result;
      };
  QueryService service(std::move(executor), ServiceOptions{});
  Request request;
  request.query = 42;
  Response response = service.Execute(std::move(request));
  ASSERT_TRUE(response.status.ok());
  ASSERT_NE(response.table, nullptr);
  EXPECT_EQ(response.table->ValueAt(0, 0).AsInt64(), 42);
  EXPECT_NE(response.fingerprint, 0u);
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(service.stats().executed, 1);
}

}  // namespace
}  // namespace serve
}  // namespace perfeval
