#include "serve/loadgen.h"

#include <cstdint>
#include <set>
#include <vector>

#include "db/database.h"
#include "gtest/gtest.h"
#include "workload/tpch_gen.h"

namespace perfeval {
namespace serve {
namespace {

db::Database* SharedDb() {
  static db::Database* database = [] {
    auto* d = new db::Database();
    workload::TpchGenerator gen(0.005);
    gen.LoadAll(d);
    return d;
  }();
  return database;
}

TEST(BuildScheduleTest, PureFunctionOfOptions) {
  LoadOptions options;
  options.mode = LoadMode::kOpen;
  options.requests = 64;
  options.offered_qps = 500.0;
  options.run_seed = 9;
  std::vector<PlannedRequest> a = BuildSchedule(options);
  std::vector<PlannedRequest> b = BuildSchedule(options);
  ASSERT_EQ(a.size(), 64u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, b[i].index);
    EXPECT_EQ(a[i].stream, b[i].stream);
    EXPECT_EQ(a[i].query, b[i].query);
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].intended_ns, b[i].intended_ns);
    EXPECT_EQ(a[i].think_ns, b[i].think_ns);
  }
}

TEST(BuildScheduleTest, SeedChangesSchedule) {
  LoadOptions options;
  options.mode = LoadMode::kOpen;
  options.requests = 64;
  options.run_seed = 9;
  std::vector<PlannedRequest> a = BuildSchedule(options);
  options.run_seed = 10;
  std::vector<PlannedRequest> b = BuildSchedule(options);
  bool any_differs = false;
  for (size_t i = 0; i < a.size(); ++i) {
    any_differs |= a[i].query != b[i].query ||
                   a[i].intended_ns != b[i].intended_ns;
  }
  EXPECT_TRUE(any_differs);
}

TEST(BuildScheduleTest, OpenLoopArrivalsNondecreasingAndPoissonLike) {
  LoadOptions options;
  options.mode = LoadMode::kOpen;
  options.requests = 2000;
  options.offered_qps = 1000.0;
  options.run_seed = 3;
  std::vector<PlannedRequest> schedule = BuildSchedule(options);
  int64_t prev = 0;
  for (const PlannedRequest& r : schedule) {
    EXPECT_GE(r.intended_ns, prev);
    prev = r.intended_ns;
    EXPECT_EQ(r.think_ns, 0);
  }
  // Mean inter-arrival of a 1000 q/s Poisson process is 1 ms; 2000 draws
  // put the sample mean within a few percent.
  double mean_gap_ns =
      static_cast<double>(schedule.back().intended_ns) / (2000 - 1);
  EXPECT_NEAR(mean_gap_ns, 1e6, 1e5);
}

TEST(BuildScheduleTest, ClosedLoopAssignsStreamsRoundRobin) {
  LoadOptions options;
  options.mode = LoadMode::kClosed;
  options.requests = 12;
  options.clients = 4;
  options.think_ms_mean = 1.0;
  std::vector<PlannedRequest> schedule = BuildSchedule(options);
  for (const PlannedRequest& r : schedule) {
    EXPECT_EQ(r.stream, r.index % 4);
    EXPECT_EQ(r.intended_ns, -1);
    EXPECT_GE(r.think_ns, 0);
  }
}

TEST(BuildScheduleTest, QueryMixRestrictsQueries) {
  LoadOptions options;
  options.requests = 100;
  options.query_mix = {1, 6, 14};
  std::vector<PlannedRequest> schedule = BuildSchedule(options);
  std::set<int> seen;
  for (const PlannedRequest& r : schedule) {
    seen.insert(r.query);
  }
  for (int q : seen) {
    EXPECT_TRUE(q == 1 || q == 6 || q == 14) << q;
  }
  EXPECT_GE(seen.size(), 2u);
}

/// The replay invariant of the whole subsystem: the same load options
/// produce bit-identical schedules AND bit-identical result fingerprints
/// at any service worker count — parallelism is a pure concurrency knob.
TEST(LoadGeneratorTest, ReplayIdenticalAcrossWorkerCounts) {
  LoadOptions load;
  load.mode = LoadMode::kClosed;
  load.requests = 44;  // two laps over all 22 queries.
  load.clients = 4;
  load.run_seed = 42;

  std::vector<PlannedRequest> reference_schedule = BuildSchedule(load);
  std::vector<uint64_t> reference_fingerprints;
  for (int workers : {1, 4, 8}) {
    ServiceOptions options;
    options.workers = workers;
    options.queue_capacity = 64;
    QueryService service(SharedDb(), options);
    LoadGenerator generator(&service, load);
    LoadResult result = generator.Run();
    ASSERT_EQ(result.outcomes.size(), reference_schedule.size());
    EXPECT_EQ(result.errors, 0);

    std::vector<uint64_t> fingerprints;
    for (size_t i = 0; i < result.outcomes.size(); ++i) {
      const RequestOutcome& outcome = result.outcomes[i];
      ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
      // The executed schedule is the planned schedule, in order.
      EXPECT_EQ(outcome.spec.index, reference_schedule[i].index);
      EXPECT_EQ(outcome.spec.query, reference_schedule[i].query);
      EXPECT_EQ(outcome.spec.seed, reference_schedule[i].seed);
      EXPECT_NE(outcome.fingerprint, 0u);
      fingerprints.push_back(outcome.fingerprint);
    }
    if (reference_fingerprints.empty()) {
      reference_fingerprints = fingerprints;
    } else {
      EXPECT_EQ(fingerprints, reference_fingerprints)
          << "results differ at " << workers << " workers";
    }
  }
}

TEST(LoadGeneratorTest, OpenLoopChargesFromIntendedArrival) {
  ServiceOptions options;
  options.workers = 1;  // serialize: the backlog makes dispatch late.
  options.queue_capacity = 256;
  options.fingerprint_results = false;
  QueryService service(SharedDb(), options);

  LoadOptions load;
  load.mode = LoadMode::kOpen;
  load.requests = 30;
  load.offered_qps = 100000.0;  // far beyond capacity: all arrive at ~t=0.
  load.query_mix = {1};
  load.run_seed = 7;
  LoadGenerator generator(&service, load);
  LoadResult result = generator.Run();

  ASSERT_EQ(result.outcomes.size(), 30u);
  EXPECT_EQ(result.errors, 0);
  int64_t prev_latency = 0;
  for (const RequestOutcome& outcome : result.outcomes) {
    // Coordinated omission charged: latency counts from the virtual
    // schedule, so it can only exceed the service-side view.
    EXPECT_EQ(outcome.client_latency_ns,
              outcome.complete_ns - outcome.spec.intended_ns);
    EXPECT_GE(outcome.client_latency_ns,
              outcome.complete_ns - outcome.dispatch_ns);
    prev_latency = outcome.client_latency_ns;
  }
  // The last request waited behind ~29 earlier ones on one worker: its
  // charged latency dwarfs any single execution.
  EXPECT_GT(prev_latency, result.outcomes.front().client_latency_ns);
  EXPECT_EQ(result.client_latency.TotalCount(), 30);
}

TEST(LoadGeneratorTest, ShedRequestsCountAsErrorsNotLatency) {
  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  options.overload = OverloadPolicy::kShed;
  options.fingerprint_results = false;
  QueryService service(SharedDb(), options);

  LoadOptions load;
  load.mode = LoadMode::kOpen;
  load.requests = 40;
  load.offered_qps = 100000.0;  // instant burst against a queue of one.
  load.query_mix = {1};
  load.run_seed = 11;
  LoadGenerator generator(&service, load);
  LoadResult result = generator.Run();

  EXPECT_GT(result.errors, 0) << "burst against capacity-1 queue must shed";
  EXPECT_EQ(result.client_latency.TotalCount() + result.errors, 40);
  for (const RequestOutcome& outcome : result.outcomes) {
    if (!outcome.status.ok()) {
      EXPECT_EQ(outcome.status.code(), StatusCode::kOverloaded);
    }
  }
}

TEST(LoadGeneratorTest, ClosedLoopRecordsServerSplit) {
  QueryService service(SharedDb(), ServiceOptions{});
  LoadOptions load;
  load.mode = LoadMode::kClosed;
  load.requests = 16;
  load.clients = 2;
  load.query_mix = {1, 6};
  LoadGenerator generator(&service, load);
  LoadResult result = generator.Run();
  EXPECT_EQ(result.errors, 0);
  EXPECT_EQ(result.queue_wait.TotalCount(), 16);
  EXPECT_EQ(result.exec_time.TotalCount(), 16);
  EXPECT_GT(result.exec_time.MeanNs(), 0.0);
  EXPECT_GT(result.qph, 0.0);
  EXPECT_GT(result.wall_ms, 0.0);
  for (const RequestOutcome& outcome : result.outcomes) {
    // Closed loop charges from dispatch. (No ordering claim against
    // server.exec_ns: that clock includes *simulated* I/O stall, which
    // the client's real clock never sees.)
    EXPECT_EQ(outcome.client_latency_ns,
              outcome.complete_ns - outcome.dispatch_ns);
  }
}

}  // namespace
}  // namespace serve
}  // namespace perfeval
