// BenchContext's database-knob parsing. The scheduler flags degrade
// gracefully (a typo must not abort an overnight run), but the treatment
// knobs --dbJoin/--dbOpt/--dbBackend are the experiment itself: an
// unrecognized value must surface as a usage error, never as a silent
// fallback that quietly measures the wrong engine.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_util.h"
#include "db/database.h"

namespace perfeval {
namespace bench {
namespace {

BenchContext MakeContext(std::vector<std::string> extra) {
  std::vector<std::string> args = {"bench_test"};
  args.insert(args.end(), extra.begin(), extra.end());
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& arg : args) {
    argv.push_back(arg.data());
  }
  return BenchContext("T0", "knob parsing test",
                      static_cast<int>(argv.size()), argv.data());
}

TEST(BenchUtilTest, DefaultsAreRadixAndOptimizerOff) {
  BenchContext ctx = MakeContext({});
  Result<db::JoinAlgo> join = ctx.DbJoin();
  ASSERT_TRUE(join.ok());
  EXPECT_EQ(join.value(), db::JoinAlgo::kRadix);
  Result<bool> opt = ctx.DbOpt();
  ASSERT_TRUE(opt.ok());
  EXPECT_FALSE(opt.value());
}

TEST(BenchUtilTest, ValidKnobValuesParse) {
  BenchContext ctx = MakeContext({"--dbJoin=merge", "--dbOpt=on"});
  Result<db::JoinAlgo> join = ctx.DbJoin();
  ASSERT_TRUE(join.ok());
  EXPECT_EQ(join.value(), db::JoinAlgo::kMerge);
  Result<bool> opt = ctx.DbOpt();
  ASSERT_TRUE(opt.ok());
  EXPECT_TRUE(opt.value());
}

TEST(BenchUtilTest, InvalidDbJoinIsAUsageErrorNotAFallback) {
  BenchContext ctx = MakeContext({"--dbJoin=hashh"});
  Result<db::JoinAlgo> join = ctx.DbJoin();
  ASSERT_FALSE(join.ok());
  EXPECT_NE(join.status().message().find("usage: --dbJoin"),
            std::string::npos);
  EXPECT_NE(join.status().message().find("hashh"), std::string::npos);
}

TEST(BenchUtilTest, InvalidDbOptIsAUsageErrorNotAFallback) {
  BenchContext ctx = MakeContext({"--dbOpt=maybe"});
  Result<bool> opt = ctx.DbOpt();
  ASSERT_FALSE(opt.ok());
  EXPECT_NE(opt.status().message().find("usage: --dbOpt"),
            std::string::npos);
  EXPECT_NE(opt.status().message().find("maybe"), std::string::npos);
}

TEST(BenchUtilTest, DbBackendDefaultsToColumnar) {
  BenchContext ctx = MakeContext({});
  Result<db::BackendKind> backend = ctx.DbBackend();
  ASSERT_TRUE(backend.ok());
  EXPECT_EQ(backend.value(), db::BackendKind::kColumnar);
}

TEST(BenchUtilTest, ValidDbBackendValuesParse) {
  for (const char* text : {"row", "rowstore"}) {
    BenchContext ctx = MakeContext({std::string("--dbBackend=") + text});
    Result<db::BackendKind> backend = ctx.DbBackend();
    ASSERT_TRUE(backend.ok()) << text;
    EXPECT_EQ(backend.value(), db::BackendKind::kRowStore) << text;
  }
}

TEST(BenchUtilTest, InvalidDbBackendIsAUsageErrorNotAFallback) {
  BenchContext ctx = MakeContext({"--dbBackend=clo"});
  Result<db::BackendKind> backend = ctx.DbBackend();
  ASSERT_FALSE(backend.ok());
  EXPECT_NE(backend.status().message().find("usage: --dbBackend"),
            std::string::npos);
  EXPECT_NE(backend.status().message().find("clo"), std::string::npos);
}

TEST(BenchUtilTest, ApplyDbKnobsConfiguresTheDatabase) {
  BenchContext ctx = MakeContext({"--dbJoin=hash", "--dbOpt=on",
                                  "--dbThreads=3", "--radixBits=6",
                                  "--dbBackend=row"});
  db::Database database;
  Status status = ctx.ApplyDbKnobs(&database);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(database.join_algo(), db::JoinAlgo::kHash);
  EXPECT_TRUE(database.optimize());
  EXPECT_EQ(database.threads(), 3);
  EXPECT_EQ(database.radix_bits(), 6);
  EXPECT_EQ(database.backend(), db::BackendKind::kRowStore);
}

TEST(BenchUtilTest, ApplyDbKnobsRejectsBadBackend) {
  BenchContext ctx = MakeContext({"--dbBackend=vector"});
  db::Database database;
  Status status = ctx.ApplyDbKnobs(&database);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("usage: --dbBackend"), std::string::npos);
  // The default must be untouched after a rejected apply.
  EXPECT_EQ(database.backend(), db::BackendKind::kColumnar);
}

TEST(BenchUtilTest, ApplyDbKnobsPropagatesTheFirstError) {
  BenchContext ctx = MakeContext({"--dbJoin=bogus"});
  db::Database database;
  Status status = ctx.ApplyDbKnobs(&database);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("usage: --dbJoin"), std::string::npos);
}

}  // namespace
}  // namespace bench
}  // namespace perfeval
