#include "db/expr.h"

#include <gtest/gtest.h>

namespace perfeval {
namespace db {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  ExprTest()
      : table_(Schema({{"qty", DataType::kDouble},
                       {"price", DataType::kDouble},
                       {"flag", DataType::kString},
                       {"ship", DataType::kDate},
                       {"id", DataType::kInt64}})) {
    int32_t base = DateFromYmd(1994, 1, 1);
    table_.AppendRow({Value::Double(10.0), Value::Double(100.0),
                      Value::String("R"), Value::Date(base),
                      Value::Int64(1)});
    table_.AppendRow({Value::Double(20.0), Value::Double(50.0),
                      Value::String("A"), Value::Date(base + 400),
                      Value::Int64(2)});
    table_.AppendRow({Value::Double(30.0), Value::Double(25.0),
                      Value::String("N"), Value::Date(base + 800),
                      Value::Int64(3)});
  }

  const Schema& schema() const { return table_.schema(); }
  Table table_;
};

TEST_F(ExprTest, ColumnRefEvaluates) {
  ExprPtr qty = Col(schema(), "qty");
  EXPECT_DOUBLE_EQ(qty->EvalRow(table_, 1).AsDouble(), 20.0);
  EXPECT_EQ(qty->ResultType(schema()), DataType::kDouble);
}

TEST_F(ExprTest, LiteralTypes) {
  EXPECT_EQ(LitInt(5)->EvalRow(table_, 0).AsInt64(), 5);
  EXPECT_DOUBLE_EQ(LitDouble(2.5)->EvalRow(table_, 0).AsDouble(), 2.5);
  EXPECT_EQ(LitString("x")->EvalRow(table_, 0).AsString(), "x");
  EXPECT_EQ(LitDate("1994-01-01")->EvalRow(table_, 0).AsDate(),
            DateFromYmd(1994, 1, 1));
}

TEST_F(ExprTest, ComparisonOperators) {
  ExprPtr qty = Col(schema(), "qty");
  EXPECT_TRUE(Eq(qty, LitDouble(10.0))->EvalBool(table_, 0));
  EXPECT_TRUE(Ne(qty, LitDouble(10.0))->EvalBool(table_, 1));
  EXPECT_TRUE(Lt(qty, LitDouble(15.0))->EvalBool(table_, 0));
  EXPECT_TRUE(Le(qty, LitDouble(20.0))->EvalBool(table_, 1));
  EXPECT_TRUE(Gt(qty, LitDouble(25.0))->EvalBool(table_, 2));
  EXPECT_TRUE(Ge(qty, LitDouble(30.0))->EvalBool(table_, 2));
  EXPECT_FALSE(Gt(qty, LitDouble(30.0))->EvalBool(table_, 2));
}

TEST_F(ExprTest, DateComparison) {
  ExprPtr pred = Le(Col(schema(), "ship"), LitDate("1994-06-01"));
  EXPECT_TRUE(pred->EvalBool(table_, 0));
  EXPECT_FALSE(pred->EvalBool(table_, 1));
}

TEST_F(ExprTest, BooleanConnectives) {
  ExprPtr qty = Col(schema(), "qty");
  ExprPtr both = And(Gt(qty, LitDouble(15.0)), Lt(qty, LitDouble(25.0)));
  EXPECT_FALSE(both->EvalBool(table_, 0));
  EXPECT_TRUE(both->EvalBool(table_, 1));
  ExprPtr either = Or(Lt(qty, LitDouble(15.0)), Gt(qty, LitDouble(25.0)));
  EXPECT_TRUE(either->EvalBool(table_, 0));
  EXPECT_FALSE(either->EvalBool(table_, 1));
  EXPECT_TRUE(either->EvalBool(table_, 2));
  EXPECT_TRUE(Not(both)->EvalBool(table_, 0));
}

TEST_F(ExprTest, ArithmeticScalar) {
  ExprPtr revenue = Mul(Col(schema(), "qty"), Col(schema(), "price"));
  EXPECT_DOUBLE_EQ(revenue->EvalRow(table_, 0).AsDouble(), 1000.0);
  ExprPtr combo = Div(Sub(Add(LitDouble(10.0), LitDouble(6.0)),
                          LitDouble(4.0)),
                      LitDouble(3.0));
  EXPECT_DOUBLE_EQ(combo->EvalRow(table_, 0).AsDouble(), 4.0);
}

TEST_F(ExprTest, VectorizedMatchesScalar) {
  ExprPtr expr = Mul(Col(schema(), "qty"),
                     Sub(LitDouble(1.0), Div(Col(schema(), "price"),
                                             LitDouble(1000.0))));
  std::vector<uint32_t> rows = {0, 1, 2};
  std::vector<double> batch;
  expr->EvalNumericBatch(table_, rows, &batch);
  ASSERT_EQ(batch.size(), 3u);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], expr->EvalRow(table_, rows[i]).AsDouble());
  }
}

TEST_F(ExprTest, VectorizedRespectsSelection) {
  ExprPtr qty = Col(schema(), "qty");
  std::vector<uint32_t> rows = {2, 0};
  std::vector<double> batch;
  qty->EvalNumericBatch(table_, rows, &batch);
  EXPECT_DOUBLE_EQ(batch[0], 30.0);
  EXPECT_DOUBLE_EQ(batch[1], 10.0);
}

TEST_F(ExprTest, SimplePredicateExtraction) {
  SimplePredicate sp;
  EXPECT_TRUE(Le(Col(schema(), "qty"), LitDouble(24.0))
                  ->AsSimplePredicate(&sp));
  EXPECT_EQ(sp.column, 0u);
  EXPECT_EQ(sp.op, CmpOp::kLe);
  EXPECT_DOUBLE_EQ(sp.value, 24.0);
  // String comparisons and column-column comparisons are not simple.
  EXPECT_FALSE(Eq(Col(schema(), "flag"), LitString("R"))
                   ->AsSimplePredicate(&sp));
  EXPECT_FALSE(Lt(Col(schema(), "qty"), Col(schema(), "price"))
                   ->AsSimplePredicate(&sp));
}

TEST_F(ExprTest, ConjunctCollectionFlattensAnd) {
  ExprPtr a = Gt(Col(schema(), "qty"), LitDouble(1.0));
  ExprPtr b = Lt(Col(schema(), "qty"), LitDouble(100.0));
  ExprPtr c = Eq(Col(schema(), "flag"), LitString("R"));
  ExprPtr pred = And(And(a, b), c);
  std::vector<ExprPtr> conjuncts;
  pred->CollectConjuncts(&conjuncts, pred);
  EXPECT_EQ(conjuncts.size(), 3u);
}

TEST_F(ExprTest, OrIsNotFlattened) {
  ExprPtr pred = Or(Gt(Col(schema(), "qty"), LitDouble(1.0)),
                    Lt(Col(schema(), "qty"), LitDouble(0.0)));
  std::vector<ExprPtr> conjuncts;
  pred->CollectConjuncts(&conjuncts, pred);
  EXPECT_EQ(conjuncts.size(), 1u);
}

struct LikeCase {
  const char* text;
  const char* pattern;
  bool expected;
};

class LikeTest : public ::testing::TestWithParam<LikeCase> {};

TEST_P(LikeTest, Matches) {
  const LikeCase& c = GetParam();
  Table table(Schema({{"s", DataType::kString}}));
  table.AppendRow({Value::String(c.text)});
  ExprPtr pred = Like(Col(table.schema(), "s"), c.pattern);
  EXPECT_EQ(pred->EvalBool(table, 0), c.expected)
      << c.text << " LIKE " << c.pattern;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LikeTest,
    ::testing::Values(
        LikeCase{"PROMO BRUSHED TIN", "PROMO%", true},
        LikeCase{"LARGE PROMO TIN", "PROMO%", false},
        LikeCase{"MEDIUM POLISHED COPPER", "MEDIUM POLISHED%", true},
        LikeCase{"anything", "%", true},
        LikeCase{"", "%", true},
        LikeCase{"", "", true},
        LikeCase{"abc", "abc", true},
        LikeCase{"abc", "a_c", true},
        LikeCase{"abc", "a_d", false},
        LikeCase{"special packages requests", "%special%requests%", true},
        LikeCase{"special offer", "%special%requests%", false},
        LikeCase{"xxBRASSxx", "%BRASS", false},
        LikeCase{"ECONOMY BRASS", "%BRASS", true},
        LikeCase{"aXbXc", "a%b%c", true},
        LikeCase{"ac", "a%b%c", false},
        LikeCase{"aaa", "%a", true},
        LikeCase{"ab", "_", false},
        LikeCase{"a", "_", true}));

TEST_F(ExprTest, InStringsAndInInts) {
  ExprPtr in_str =
      InStrings(Col(schema(), "flag"), {"R", "N"});
  EXPECT_TRUE(in_str->EvalBool(table_, 0));
  EXPECT_FALSE(in_str->EvalBool(table_, 1));
  ExprPtr in_int = InInts(Col(schema(), "id"), {1, 3});
  EXPECT_TRUE(in_int->EvalBool(table_, 0));
  EXPECT_FALSE(in_int->EvalBool(table_, 1));
}

TEST_F(ExprTest, ContainsSubstring) {
  Table table(Schema({{"s", DataType::kString}}));
  table.AppendRow({Value::String("dark green metallic")});
  table.AppendRow({Value::String("bright red")});
  ExprPtr pred = Contains(Col(table.schema(), "s"), "green");
  EXPECT_TRUE(pred->EvalBool(table, 0));
  EXPECT_FALSE(pred->EvalBool(table, 1));
}

TEST_F(ExprTest, YearExtraction) {
  ExprPtr year = Year(Col(schema(), "ship"));
  EXPECT_EQ(year->EvalRow(table_, 0).AsInt64(), 1994);
  EXPECT_EQ(year->EvalRow(table_, 1).AsInt64(), 1995);
  std::vector<double> batch;
  year->EvalNumericBatch(table_, {0, 1, 2}, &batch);
  EXPECT_DOUBLE_EQ(batch[2], 1996.0);
}

TEST_F(ExprTest, CaseWhen) {
  ExprPtr expr = If(Eq(Col(schema(), "flag"), LitString("R")),
                    LitDouble(1.0), LitDouble(0.0));
  EXPECT_DOUBLE_EQ(expr->EvalRow(table_, 0).AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(expr->EvalRow(table_, 1).AsDouble(), 0.0);
  std::vector<double> batch;
  expr->EvalNumericBatch(table_, {0, 1, 2}, &batch);
  EXPECT_DOUBLE_EQ(batch[0], 1.0);
  EXPECT_DOUBLE_EQ(batch[1], 0.0);
}

TEST_F(ExprTest, SubstringOneBased) {
  Table table(Schema({{"phone", DataType::kString}}));
  table.AppendRow({Value::String("13-555-0101")});
  ExprPtr code = Substr(Col(table.schema(), "phone"), 1, 2);
  EXPECT_EQ(code->EvalRow(table, 0).AsString(), "13");
  ExprPtr mid = Substr(Col(table.schema(), "phone"), 4, 3);
  EXPECT_EQ(mid->EvalRow(table, 0).AsString(), "555");
  ExprPtr past_end = Substr(Col(table.schema(), "phone"), 50, 2);
  EXPECT_EQ(past_end->EvalRow(table, 0).AsString(), "");
}

TEST_F(ExprTest, ToStringIsSqlLike) {
  ExprPtr pred = And(Le(Col(schema(), "qty"), LitDouble(24.0)),
                     Eq(Col(schema(), "flag"), LitString("R")));
  std::string text = pred->ToString();
  EXPECT_NE(text.find("qty <= 24"), std::string::npos);
  EXPECT_NE(text.find("flag = 'R'"), std::string::npos);
  EXPECT_NE(text.find("AND"), std::string::npos);
}

}  // namespace
}  // namespace db
}  // namespace perfeval
