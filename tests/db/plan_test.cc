#include "db/plan.h"

#include <gtest/gtest.h>

#include "db/database.h"

namespace perfeval {
namespace db {
namespace {

/// Builds a small two-table database:
///   sales(item_id, amount, region)   6 rows
///   items(item_id2, label)           3 rows
std::unique_ptr<Database> MakeTestDb() {
  DatabaseOptions options;
  options.rows_per_page = 2;
  options.buffer_pool_pages = 64;
  auto database = std::make_unique<Database>(options);

  auto sales = std::make_shared<Table>(
      Schema({{"item_id", DataType::kInt64},
              {"amount", DataType::kDouble},
              {"region", DataType::kString}}));
  sales->AppendRow({Value::Int64(1), Value::Double(10.0),
                    Value::String("east")});
  sales->AppendRow({Value::Int64(2), Value::Double(20.0),
                    Value::String("west")});
  sales->AppendRow({Value::Int64(1), Value::Double(30.0),
                    Value::String("east")});
  sales->AppendRow({Value::Int64(3), Value::Double(40.0),
                    Value::String("west")});
  sales->AppendRow({Value::Int64(2), Value::Double(50.0),
                    Value::String("east")});
  sales->AppendRow({Value::Int64(9), Value::Double(60.0),
                    Value::String("north")});
  database->RegisterTable("sales", sales);

  auto items = std::make_shared<Table>(Schema(
      {{"item_id2", DataType::kInt64}, {"label", DataType::kString}}));
  items->AppendRow({Value::Int64(1), Value::String("apple")});
  items->AppendRow({Value::Int64(2), Value::String("banana")});
  items->AppendRow({Value::Int64(3), Value::String("cherry")});
  database->RegisterTable("items", items);
  return database;
}

TEST(ScanTest, ReturnsAllRows) {
  auto database = MakeTestDb();
  QueryResult result = database->Run(Scan("sales"));
  EXPECT_EQ(result.table->num_rows(), 6u);
  EXPECT_EQ(result.table->num_columns(), 3u);
}

TEST(FilterScanTest, SelectsMatchingRows) {
  auto database = MakeTestDb();
  const Schema& schema = database->GetTable("sales").schema();
  PlanPtr plan = FilterScan("sales", {"item_id", "amount"},
                            Gt(Col(schema, "amount"), LitDouble(25.0)));
  QueryResult result = database->Run(plan);
  EXPECT_EQ(result.table->num_rows(), 4u);
}

TEST(FilterScanTest, ZoneMapsSkipPages) {
  auto database = MakeTestDb();
  const Schema& schema = database->GetTable("sales").schema();
  // amount is sorted ascending: pages are [10,20], [30,40], [50,60].
  // amount <= 15 can only live in the first page.
  PlanPtr plan = FilterScan("sales", {"amount"},
                            Le(Col(schema, "amount"), LitDouble(15.0)));
  database->storage().ResetStats();
  QueryResult with_zone_maps = database->Run(plan, ExecMode::kOptimized,
                                             SinkKind::kDiscard,
                                             /*use_zone_maps=*/true);
  int64_t zone_map_misses = database->storage().stats().page_misses;
  EXPECT_EQ(with_zone_maps.table->num_rows(), 1u);

  database->FlushCaches();
  database->storage().ResetStats();
  QueryResult without = database->Run(plan, ExecMode::kOptimized,
                                      SinkKind::kDiscard,
                                      /*use_zone_maps=*/false);
  EXPECT_EQ(without.table->num_rows(), 1u);
  EXPECT_LT(zone_map_misses, database->storage().stats().page_misses);
}

TEST(FilterTest, ComposesWithScan) {
  auto database = MakeTestDb();
  const Schema& schema = database->GetTable("sales").schema();
  PlanPtr plan = Filter(Scan("sales"),
                        Eq(Col(schema, "region"), LitString("east")));
  QueryResult result = database->Run(plan);
  EXPECT_EQ(result.table->num_rows(), 3u);
}

TEST(ProjectTest, ComputesExpressions) {
  auto database = MakeTestDb();
  const Schema& schema = database->GetTable("sales").schema();
  PlanPtr plan = Project(
      Scan("sales"),
      {Col(schema, "item_id"), Mul(Col(schema, "amount"), LitDouble(2.0))},
      {"id", "double_amount"});
  QueryResult result = database->Run(plan);
  EXPECT_EQ(result.table->num_rows(), 6u);
  EXPECT_EQ(result.table->schema().column(0).type, DataType::kInt64);
  EXPECT_EQ(result.table->schema().column(1).type, DataType::kDouble);
  EXPECT_DOUBLE_EQ(result.table->column(1).GetDouble(0), 20.0);
  EXPECT_EQ(result.table->column(0).GetInt64(5), 9);
}

TEST(HashJoinTest, InnerJoinSemantics) {
  auto database = MakeTestDb();
  PlanPtr plan = HashJoin(Scan("sales"), Scan("items"), "item_id",
                          "item_id2");
  QueryResult result = database->Run(plan);
  // item 9 has no match; the other 5 sales rows match exactly one item.
  EXPECT_EQ(result.table->num_rows(), 5u);
  EXPECT_EQ(result.table->num_columns(), 5u);
  // Every output row's item_id equals its item_id2.
  const Column& left_key = result.table->ColumnByName("item_id");
  const Column& right_key = result.table->ColumnByName("item_id2");
  for (size_t r = 0; r < result.table->num_rows(); ++r) {
    EXPECT_EQ(left_key.GetInt64(r), right_key.GetInt64(r));
  }
}

TEST(HashJoinTest, DuplicateBuildKeysFanOut) {
  auto database = MakeTestDb();
  // Join items with sales as build side: item 1 matches 2 sales rows.
  PlanPtr plan = HashJoin(Scan("items"), Scan("sales"), "item_id2",
                          "item_id");
  QueryResult result = database->Run(plan);
  EXPECT_EQ(result.table->num_rows(), 5u);
}

TEST(HashJoin2Test, CompositeKeys) {
  DatabaseOptions options;
  auto database = std::make_unique<Database>(options);
  auto left = std::make_shared<Table>(
      Schema({{"a", DataType::kInt64}, {"b", DataType::kInt64}}));
  left->AppendRow({Value::Int64(1), Value::Int64(1)});
  left->AppendRow({Value::Int64(1), Value::Int64(2)});
  left->AppendRow({Value::Int64(2), Value::Int64(1)});
  database->RegisterTable("left", left);
  auto right = std::make_shared<Table>(
      Schema({{"c", DataType::kInt64}, {"d", DataType::kInt64}}));
  right->AppendRow({Value::Int64(1), Value::Int64(2)});
  right->AppendRow({Value::Int64(2), Value::Int64(2)});
  database->RegisterTable("right", right);
  PlanPtr plan =
      HashJoin2(Scan("left"), Scan("right"), "a", "c", "b", "d");
  QueryResult result = database->Run(plan);
  // Only (1,2) matches; single-column join on a=c would produce 2 rows.
  EXPECT_EQ(result.table->num_rows(), 1u);
}

TEST(AggregateTest, GlobalAggregates) {
  auto database = MakeTestDb();
  const Schema& schema = database->GetTable("sales").schema();
  PlanPtr plan = Aggregate(
      Scan("sales"), {},
      {{AggOp::kSum, Col(schema, "amount"), "total"},
       {AggOp::kAvg, Col(schema, "amount"), "mean"},
       {AggOp::kMin, Col(schema, "amount"), "lo"},
       {AggOp::kMax, Col(schema, "amount"), "hi"},
       {AggOp::kCount, nullptr, "n"},
       {AggOp::kCountDistinct, Col(schema, "item_id"), "distinct_items"}});
  QueryResult result = database->Run(plan);
  ASSERT_EQ(result.table->num_rows(), 1u);
  EXPECT_DOUBLE_EQ(result.table->ColumnByName("total").GetDouble(0), 210.0);
  EXPECT_DOUBLE_EQ(result.table->ColumnByName("mean").GetDouble(0), 35.0);
  EXPECT_DOUBLE_EQ(result.table->ColumnByName("lo").GetDouble(0), 10.0);
  EXPECT_DOUBLE_EQ(result.table->ColumnByName("hi").GetDouble(0), 60.0);
  EXPECT_EQ(result.table->ColumnByName("n").GetInt64(0), 6);
  EXPECT_EQ(result.table->ColumnByName("distinct_items").GetInt64(0), 4);
}

TEST(AggregateTest, GroupByStringColumn) {
  auto database = MakeTestDb();
  const Schema& schema = database->GetTable("sales").schema();
  PlanPtr plan = Aggregate(Scan("sales"), {"region"},
                           {{AggOp::kSum, Col(schema, "amount"), "total"}});
  PlanPtr sorted = Sort(plan, {{"region", true}});
  QueryResult result = database->Run(sorted);
  ASSERT_EQ(result.table->num_rows(), 3u);
  EXPECT_EQ(result.table->ColumnByName("region").GetString(0), "east");
  EXPECT_DOUBLE_EQ(result.table->ColumnByName("total").GetDouble(0), 90.0);
  EXPECT_EQ(result.table->ColumnByName("region").GetString(1), "north");
  EXPECT_DOUBLE_EQ(result.table->ColumnByName("total").GetDouble(1), 60.0);
  EXPECT_DOUBLE_EQ(result.table->ColumnByName("total").GetDouble(2), 60.0);
}

TEST(AggregateTest, EmptyInputGlobalAggregateYieldsOneRow) {
  auto database = MakeTestDb();
  const Schema& schema = database->GetTable("sales").schema();
  PlanPtr plan = Aggregate(
      Filter(Scan("sales"), Gt(Col(schema, "amount"), LitDouble(1e9))),
      {}, {{AggOp::kCount, nullptr, "n"}});
  QueryResult result = database->Run(plan);
  ASSERT_EQ(result.table->num_rows(), 1u);
  EXPECT_EQ(result.table->ColumnByName("n").GetInt64(0), 0);
}

TEST(AggregateTest, EmptyInputGroupByYieldsNoRows) {
  auto database = MakeTestDb();
  const Schema& schema = database->GetTable("sales").schema();
  PlanPtr plan = Aggregate(
      Filter(Scan("sales"), Gt(Col(schema, "amount"), LitDouble(1e9))),
      {"region"}, {{AggOp::kCount, nullptr, "n"}});
  QueryResult result = database->Run(plan);
  EXPECT_EQ(result.table->num_rows(), 0u);
}

TEST(SortTest, MultiKeyWithDirections) {
  auto database = MakeTestDb();
  PlanPtr plan = Sort(Scan("sales"),
                      {{"region", true}, {"amount", false}});
  QueryResult result = database->Run(plan);
  const Column& region = result.table->ColumnByName("region");
  const Column& amount = result.table->ColumnByName("amount");
  // east rows first, amounts descending within region.
  EXPECT_EQ(region.GetString(0), "east");
  EXPECT_DOUBLE_EQ(amount.GetDouble(0), 50.0);
  EXPECT_DOUBLE_EQ(amount.GetDouble(1), 30.0);
  EXPECT_DOUBLE_EQ(amount.GetDouble(2), 10.0);
  EXPECT_EQ(region.GetString(3), "north");
  EXPECT_EQ(region.GetString(4), "west");
  EXPECT_DOUBLE_EQ(amount.GetDouble(4), 40.0);
}

TEST(LimitTest, TruncatesAndPreservesOrder) {
  auto database = MakeTestDb();
  PlanPtr plan = Limit(Sort(Scan("sales"), {{"amount", false}}), 2);
  QueryResult result = database->Run(plan);
  ASSERT_EQ(result.table->num_rows(), 2u);
  EXPECT_DOUBLE_EQ(result.table->ColumnByName("amount").GetDouble(0), 60.0);
  EXPECT_DOUBLE_EQ(result.table->ColumnByName("amount").GetDouble(1), 50.0);
}

TEST(LimitTest, LargerThanInputIsNoop) {
  auto database = MakeTestDb();
  QueryResult result = database->Run(Limit(Scan("sales"), 100));
  EXPECT_EQ(result.table->num_rows(), 6u);
}

TEST(ExecModeTest, DebugAndOptimizedAgreeOnComplexPlan) {
  auto database = MakeTestDb();
  const Schema& sales = database->GetTable("sales").schema();
  PlanPtr plan = Sort(
      Aggregate(
          HashJoin(FilterScan("sales", {"item_id", "amount", "region"},
                              Gt(Col(sales, "amount"), LitDouble(5.0))),
                   Scan("items"), "item_id", "item_id2"),
          {"label"},
          {{AggOp::kSum,
            Mul(Col(sales, "amount"), LitDouble(1.0)), "total"},
           {AggOp::kCount, nullptr, "n"}}),
      {{"label", true}});
  QueryResult optimized = database->Run(plan, ExecMode::kOptimized);
  QueryResult debug = database->Run(plan, ExecMode::kDebug);
  ASSERT_EQ(optimized.table->num_rows(), debug.table->num_rows());
  for (size_t r = 0; r < optimized.table->num_rows(); ++r) {
    for (size_t c = 0; c < optimized.table->num_columns(); ++c) {
      EXPECT_EQ(optimized.table->ValueAt(r, c).ToString(),
                debug.table->ValueAt(r, c).ToString())
          << "row " << r << " col " << c;
    }
  }
}

TEST(ExplainTest, ShowsTreeStructure) {
  auto database = MakeTestDb();
  const Schema& schema = database->GetTable("sales").schema();
  PlanPtr plan = Limit(
      Sort(Aggregate(Filter(Scan("sales"),
                            Gt(Col(schema, "amount"), LitDouble(0.0))),
                     {"region"},
                     {{AggOp::kSum, Col(schema, "amount"), "total"}}),
           {{"total", false}}),
      3);
  std::string explain = Explain(plan);
  EXPECT_NE(explain.find("Limit 3"), std::string::npos);
  EXPECT_NE(explain.find("Sort"), std::string::npos);
  EXPECT_NE(explain.find("Aggregate"), std::string::npos);
  EXPECT_NE(explain.find("Filter [amount > 0"), std::string::npos);
  EXPECT_NE(explain.find("Scan sales"), std::string::npos);
  // Children are indented under parents.
  EXPECT_LT(explain.find("Limit"), explain.find("Sort"));
  EXPECT_LT(explain.find("Sort"), explain.find("Aggregate"));
}

TEST(ProfileTest, TracesEveryOperator) {
  auto database = MakeTestDb();
  PlanPtr plan =
      Sort(HashJoin(Scan("sales"), Scan("items"), "item_id", "item_id2"),
           {{"amount", true}});
  QueryResult result = database->Run(plan);
  // Scan, Scan, HashJoin, Sort.
  EXPECT_EQ(result.profile.traces().size(), 4u);
  std::string trace = result.profile.ToString();
  EXPECT_NE(trace.find("HashJoin"), std::string::npos);
  EXPECT_NE(trace.find("Sort"), std::string::npos);
  EXPECT_GE(result.profile.TotalWallNs(), 0);
}

TEST(ModeNamesTest, Stable) {
  EXPECT_NE(std::string(ExecModeName(ExecMode::kDebug)).find("debug"),
            std::string::npos);
  EXPECT_NE(
      std::string(ExecModeName(ExecMode::kOptimized)).find("vectorized"),
      std::string::npos);
}

}  // namespace
}  // namespace db
}  // namespace perfeval
