#include "db/table.h"

#include <gtest/gtest.h>

namespace perfeval {
namespace db {
namespace {

Schema TestSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"price", DataType::kDouble},
                 {"name", DataType::kString}});
}

TEST(SchemaTest, IndexLookup) {
  Schema schema = TestSchema();
  EXPECT_EQ(schema.num_columns(), 3u);
  EXPECT_EQ(schema.IndexOf("price"), 1);
  EXPECT_EQ(schema.IndexOf("missing"), -1);
  EXPECT_EQ(schema.MustIndexOf("name"), 2u);
}

TEST(SchemaTest, ToStringListsColumns) {
  EXPECT_EQ(TestSchema().ToString(),
            "(id int64, price double, name string)");
}

TEST(SchemaDeathTest, MustIndexOfAbortsOnMissing) {
  EXPECT_DEATH(TestSchema().MustIndexOf("nope"), "no column named nope");
}

TEST(TableTest, AppendRowGrowsAllColumns) {
  Table table(TestSchema());
  table.AppendRow({Value::Int64(1), Value::Double(9.99),
                   Value::String("widget")});
  table.AppendRow({Value::Int64(2), Value::Double(19.99),
                   Value::String("gadget")});
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.ValueAt(1, 2).AsString(), "gadget");
  EXPECT_EQ(table.ColumnByName("id").GetInt64(0), 1);
}

TEST(TableTest, BulkLoadViaColumns) {
  Table table(TestSchema());
  table.column(0).AppendInt64(1);
  table.column(1).AppendDouble(2.0);
  table.column(2).AppendString("x");
  table.FinishBulkLoad();
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(TableDeathTest, RaggedBulkLoadAborts) {
  Table table(TestSchema());
  table.column(0).AppendInt64(1);
  // price and name columns left empty.
  EXPECT_DEATH(table.FinishBulkLoad(), "ragged");
}

TEST(TableDeathTest, WrongRowWidthAborts) {
  Table table(TestSchema());
  EXPECT_DEATH(table.AppendRow({Value::Int64(1)}), "CHECK failed");
}

TEST(TableTest, ByteSizeAggregatesColumns) {
  Table table(TestSchema());
  table.AppendRow({Value::Int64(1), Value::Double(1.0),
                   Value::String("abc")});
  EXPECT_GE(table.ByteSize(), 2 * sizeof(int64_t));
}

TEST(TableTest, ToStringTruncatesLongTables) {
  Table table(Schema({{"n", DataType::kInt64}}));
  for (int i = 0; i < 50; ++i) {
    table.AppendRow({Value::Int64(i)});
  }
  std::string text = table.ToString(5);
  EXPECT_NE(text.find("50 rows total"), std::string::npos);
}

TEST(TableTest, ToStringAlignsHeader) {
  Table table(TestSchema());
  table.AppendRow({Value::Int64(7), Value::Double(1.5),
                   Value::String("thing")});
  std::string text = table.ToString();
  EXPECT_NE(text.find("id"), std::string::npos);
  EXPECT_NE(text.find("thing"), std::string::npos);
}

}  // namespace
}  // namespace db
}  // namespace perfeval
