// The row-at-a-time reference interpreter (db/reference.h) — the ground
// truth for the differential oracle harness — and the DiffTables result
// comparator it is paired with.

#include "db/reference.h"

#include <memory>

#include <gtest/gtest.h>

#include "db/database.h"
#include "db/plan.h"

namespace perfeval {
namespace db {
namespace {

std::unique_ptr<Database> MakeDb() {
  DatabaseOptions options;
  options.rows_per_page = 2;
  auto database = std::make_unique<Database>(options);
  auto sales = std::make_shared<Table>(
      Schema({{"item_id", DataType::kInt64},
              {"amount", DataType::kDouble},
              {"region", DataType::kString}}));
  sales->AppendRow({Value::Int64(1), Value::Double(10.0),
                    Value::String("east")});
  sales->AppendRow({Value::Int64(2), Value::Double(20.0),
                    Value::String("west")});
  sales->AppendRow({Value::Int64(1), Value::Double(30.0),
                    Value::String("east")});
  sales->AppendRow({Value::Int64(3), Value::Double(40.0),
                    Value::String("west")});
  sales->AppendRow({Value::Int64(2), Value::Double(50.0),
                    Value::String("east")});
  sales->AppendRow({Value::Int64(9), Value::Double(60.0),
                    Value::String("north")});
  database->RegisterTable("sales", sales);
  auto items = std::make_shared<Table>(Schema(
      {{"item_id2", DataType::kInt64}, {"label", DataType::kString}}));
  items->AppendRow({Value::Int64(1), Value::String("apple")});
  items->AppendRow({Value::Int64(2), Value::String("banana")});
  items->AppendRow({Value::Int64(3), Value::String("cherry")});
  database->RegisterTable("items", items);
  return database;
}

AggSpec MakeAgg(AggOp op, ExprPtr expr, std::string name) {
  AggSpec spec;
  spec.op = op;
  spec.expr = std::move(expr);
  spec.output_name = std::move(name);
  return spec;
}

TEST(ReferenceTest, MatchesEngineOnFilterJoinAggregateSort) {
  auto database = MakeDb();
  const Schema& schema = database->GetTable("sales").schema();
  PlanPtr plan = Sort(
      Aggregate(
          HashJoin(FilterScan("sales", {"item_id", "amount"},
                              Gt(Col(schema, "amount"), LitDouble(5.0))),
                   Scan("items"), "item_id", "item_id2"),
          {"label"},
          {MakeAgg(AggOp::kSum, Col(schema, "amount"), "total"),
           MakeAgg(AggOp::kCount, nullptr, "n")}),
      {{"label", true}});
  std::shared_ptr<const Table> expected =
      ReferenceExecute(plan, *database);
  ASSERT_EQ(expected->num_rows(), 3u);
  for (ExecMode mode : {ExecMode::kDebug, ExecMode::kOptimized}) {
    for (int threads : {1, 4}) {
      database->set_threads(threads);
      QueryResult result = database->Run(plan, mode);
      EXPECT_EQ(DiffTables(*result.table, *expected, 1e-9,
                           /*ignore_row_order=*/false),
                "")
          << ExecModeName(mode) << " threads=" << threads;
    }
  }
}

TEST(ReferenceTest, MatchesEngineOnProjectTopNLimit) {
  auto database = MakeDb();
  const Schema& schema = database->GetTable("sales").schema();
  PlanPtr projected = Project(
      Scan("sales"),
      {Col(schema, "item_id"),
       Mul(Col(schema, "amount"), LitDouble(2.0))},
      {"item_id", "doubled"});
  for (PlanPtr plan :
       {TopN(projected, {{"doubled", false}}, 3), Limit(projected, 4)}) {
    std::shared_ptr<const Table> expected =
        ReferenceExecute(plan, *database);
    QueryResult result = database->Run(plan);
    EXPECT_EQ(DiffTables(*result.table, *expected, 1e-9, false), "");
  }
}

TEST(ReferenceTest, ScansAllRowsIndependentlyOfZoneMaps) {
  // Seed the same stale-zone-map bug the checked mode catches: the
  // engine prunes pages with the stale map and silently loses the row,
  // while the reference (which never consults zone maps) finds it — so
  // the differential harness flags the divergence.
  auto database = MakeDb();
  auto sales = std::const_pointer_cast<Table>(
      database->GetTableShared("sales"));
  sales->column(1).mutable_doubles()[5] = 6000.0;
  const Schema& schema = database->GetTable("sales").schema();
  PlanPtr plan = FilterScan("sales", {"item_id", "amount"},
                            Gt(Col(schema, "amount"), LitDouble(100.0)));
  std::shared_ptr<const Table> reference =
      ReferenceExecute(plan, *database);
  EXPECT_EQ(reference->num_rows(), 1u);
  QueryResult engine = database->Run(plan);
  EXPECT_NE(DiffTables(*engine.table, *reference, 1e-9, true), "");
}

TEST(DiffTablesTest, EmptyOnEqualAndToleratesTinyDoubleDrift) {
  auto a = std::make_shared<Table>(
      Schema({{"k", DataType::kInt64}, {"x", DataType::kDouble}}));
  a->AppendRow({Value::Int64(1), Value::Double(100.0)});
  a->AppendRow({Value::Int64(2), Value::Double(200.0)});
  auto b = std::make_shared<Table>(a->schema());
  b->AppendRow({Value::Int64(2), Value::Double(200.0 + 1e-10)});
  b->AppendRow({Value::Int64(1), Value::Double(100.0)});
  EXPECT_EQ(DiffTables(*a, *b, 1e-9, /*ignore_row_order=*/true), "");
  EXPECT_NE(DiffTables(*a, *b, 1e-9, /*ignore_row_order=*/false), "");
}

TEST(DiffTablesTest, ReportsCellRowCountAndNullMismatches) {
  auto a = std::make_shared<Table>(Schema({{"x", DataType::kDouble}}));
  a->AppendRow({Value::Double(1.0)});
  auto b = std::make_shared<Table>(a->schema());
  b->AppendRow({Value::Double(2.0)});
  EXPECT_NE(DiffTables(*a, *b, 1e-9, false), "");
  auto c = std::make_shared<Table>(a->schema());
  c->AppendRow({Value::Null(DataType::kDouble)});
  EXPECT_NE(DiffTables(*a, *c, 1e-9, false), "");
  auto d = std::make_shared<Table>(a->schema());
  EXPECT_NE(DiffTables(*a, *d, 1e-9, false), "");
  EXPECT_EQ(DiffTables(*c, *c, 1e-9, false), "");
}

TEST(ReferenceTest, NullAggregateSemanticsMatchEngine) {
  DatabaseOptions options;
  auto database = std::make_unique<Database>(options);
  auto table = std::make_shared<Table>(
      Schema({{"g", DataType::kInt64}, {"x", DataType::kDouble}}));
  table->AppendRow({Value::Int64(1), Value::Double(3.0)});
  table->AppendRow({Value::Int64(1), Value::Null(DataType::kDouble)});
  table->AppendRow({Value::Int64(2), Value::Null(DataType::kDouble)});
  database->RegisterTable("t", table);
  const Schema& schema = table->schema();
  PlanPtr plan = Sort(
      Aggregate(Scan("t"), {"g"},
                {MakeAgg(AggOp::kAvg, Col(schema, "x"), "a"),
                 MakeAgg(AggOp::kCount, Col(schema, "x"), "nx")}),
      {{"g", true}});
  std::shared_ptr<const Table> expected =
      ReferenceExecute(plan, *database);
  ASSERT_EQ(expected->num_rows(), 2u);
  EXPECT_TRUE(expected->column(1).IsNull(1));
  for (ExecMode mode : {ExecMode::kDebug, ExecMode::kOptimized}) {
    QueryResult result = database->Run(plan, mode);
    EXPECT_EQ(DiffTables(*result.table, *expected, 1e-9, false), "")
        << ExecModeName(mode);
  }
}

}  // namespace
}  // namespace db
}  // namespace perfeval
