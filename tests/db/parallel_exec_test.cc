// Determinism tests for morsel-driven parallel execution: thread count is
// a pure concurrency knob (PR 1's A6 invariant), so result relations AND
// simulated I/O accounting must be bit-identical at any `threads` setting,
// in both execution modes. Runs under PERFEVAL_SANITIZE=thread via the
// `db` ctest label.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "db/database.h"
#include "db/morsel.h"
#include "sql/planner.h"
#include "workload/driver.h"
#include "workload/tpch_gen.h"
#include "workload/tpch_queries.h"

namespace perfeval {
namespace db {
namespace {

Database* SharedTpchDb() {
  static Database* database = [] {
    auto* d = new Database();
    workload::TpchGenerator gen(0.005);
    gen.LoadAll(d);
    return d;
  }();
  return database;
}

std::string Render(const Table& table) {
  std::string out;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      out += table.ValueAt(r, c).ToString();
      out += '|';
    }
    out += '\n';
  }
  return out;
}

struct RunRecord {
  std::string rendered;
  std::string storage_stats;
};

/// Runs one TPC-H query from a cold, counter-reset storage state so the
/// accumulated StorageStats of the run are comparable across settings.
RunRecord RunCold(Database* database, int query_number, ExecMode mode,
                  int threads, JoinAlgo join_algo = JoinAlgo::kRadix) {
  database->set_threads(threads);
  database->set_join_algo(join_algo);
  database->FlushCaches();
  database->storage().ResetStats();
  PlanPtr plan = workload::GetTpchQuery(query_number).Build(*database);
  QueryResult result = database->Run(plan, mode);
  RunRecord record;
  record.rendered = Render(*result.table);
  record.storage_stats = database->storage().StatsSnapshot().ToString();
  return record;
}

class TpchParallelParamTest : public ::testing::TestWithParam<int> {};

TEST_P(TpchParallelParamTest, ResultsAndStatsBitIdenticalAcrossThreads) {
  // Per join algorithm (flat hash and radix-partitioned): threads 1 vs 8
  // must agree bit-for-bit, in both execution modes. Each algorithm has
  // its own fixed match order, so comparisons stay within one algorithm.
  Database* database = SharedTpchDb();
  for (JoinAlgo algo : {JoinAlgo::kHash, JoinAlgo::kRadix}) {
    SCOPED_TRACE(JoinAlgoName(algo));
    for (ExecMode mode : {ExecMode::kOptimized, ExecMode::kDebug}) {
      SCOPED_TRACE(ExecModeName(mode));
      RunRecord serial = RunCold(database, GetParam(), mode, 1, algo);
      RunRecord parallel = RunCold(database, GetParam(), mode, 8, algo);
      EXPECT_EQ(serial.rendered, parallel.rendered);
      EXPECT_EQ(serial.storage_stats, parallel.storage_stats);
    }
  }
  database->set_threads(1);
  database->set_join_algo(JoinAlgo::kRadix);
}

INSTANTIATE_TEST_SUITE_P(AllQueries, TpchParallelParamTest,
                         ::testing::Range(1, 23));

TEST(ParallelExecTest, RepeatedParallelRunsAreIdentical) {
  // Same query, same setting, run twice: any scheduling-dependent leak
  // into results or stats shows up as a diff here.
  Database* database = SharedTpchDb();
  RunRecord first = RunCold(database, 1, ExecMode::kOptimized, 8);
  RunRecord second = RunCold(database, 1, ExecMode::kOptimized, 8);
  EXPECT_EQ(first.rendered, second.rendered);
  EXPECT_EQ(first.storage_stats, second.storage_stats);
  database->set_threads(1);
}

/// A database whose page size makes morsel boundaries land mid-table, with
/// a partial last morsel.
std::unique_ptr<Database> MakeBoundaryDb(size_t rows) {
  DatabaseOptions options;
  options.rows_per_page = 1000;
  auto database = std::make_unique<Database>(options);
  auto table = std::make_shared<Table>(Schema({{"id", DataType::kInt64},
                                               {"k", DataType::kInt64},
                                               {"s", DataType::kString},
                                               {"v", DataType::kDouble}}));
  for (size_t i = 0; i < rows; ++i) {
    table->AppendRow({Value::Int64(static_cast<int64_t>(i)),
                      Value::Int64(static_cast<int64_t>(i % 7)),
                      Value::String("g" + std::to_string(i % 5)),
                      Value::Double(0.001 * static_cast<double>(i) + 0.1)});
  }
  database->RegisterTable("t", table);
  return database;
}

std::string RunSql(Database* database, const std::string& sql_text,
                   ExecMode mode, int threads) {
  database->set_threads(threads);
  Result<QueryResult> result = sql::RunQuery(sql_text, *database, mode);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? Render(*result->table) : std::string();
}

class MorselBoundaryParamTest : public ::testing::TestWithParam<size_t> {};

TEST_P(MorselBoundaryParamTest, FilterConcatenationPreservesRowOrder) {
  // No ORDER BY: the output order is the selection order, so a morsel
  // concatenated out of place changes the rendering.
  auto database = MakeBoundaryDb(GetParam());
  const std::string sql_text = "SELECT id, v FROM t WHERE v < 2.0";
  for (ExecMode mode : {ExecMode::kOptimized, ExecMode::kDebug}) {
    SCOPED_TRACE(ExecModeName(mode));
    std::string serial = RunSql(database.get(), sql_text, mode, 1);
    EXPECT_EQ(serial, RunSql(database.get(), sql_text, mode, 3));
    EXPECT_EQ(serial, RunSql(database.get(), sql_text, mode, 8));
  }
}

TEST_P(MorselBoundaryParamTest, GroupOrderIsFirstOccurrenceOrder) {
  auto database = MakeBoundaryDb(GetParam());
  // Int64 single-key grouping (the optimized fast path) and string-key
  // grouping; no ORDER BY, so group emission order must be the global
  // first-occurrence order regardless of which worker saw a group first.
  for (const std::string& sql_text :
       {std::string("SELECT k, sum(v) AS s, count(*) AS c FROM t "
                    "GROUP BY k"),
        std::string("SELECT s, min(v) AS lo, max(v) AS hi, "
                    "avg(v) AS mean FROM t GROUP BY s")}) {
    SCOPED_TRACE(sql_text);
    for (ExecMode mode : {ExecMode::kOptimized, ExecMode::kDebug}) {
      SCOPED_TRACE(ExecModeName(mode));
      std::string serial = RunSql(database.get(), sql_text, mode, 1);
      EXPECT_EQ(serial, RunSql(database.get(), sql_text, mode, 3));
      EXPECT_EQ(serial, RunSql(database.get(), sql_text, mode, 8));
    }
  }
}

// 999/1000/1001 straddle the 1000-row page (= morsel) boundary; 2500 adds
// multiple full morsels plus a partial one; 1 is the degenerate case.
INSTANTIATE_TEST_SUITE_P(Sizes, MorselBoundaryParamTest,
                         ::testing::Values(1, 999, 1000, 1001, 2500));

TEST(MorselPolicyTest, EffectiveThreadsHonorsSerialCutoff) {
  MorselPolicy policy;
  policy.morsel_rows = 1000;
  policy.serial_cutoff_rows = 10000;
  policy.min_rows_per_worker = 2000;
  // Below the cutoff: serial, however many threads were requested.
  EXPECT_EQ(policy.EffectiveThreads(0, 8), 1);
  EXPECT_EQ(policy.EffectiveThreads(9999, 8), 1);
  // At and above the cutoff: requested threads, capped so each worker has
  // at least min_rows_per_worker rows.
  EXPECT_EQ(policy.EffectiveThreads(10000, 8), 5);
  EXPECT_EQ(policy.EffectiveThreads(16000, 8), 8);
  EXPECT_EQ(policy.EffectiveThreads(1000000, 8), 8);
  EXPECT_EQ(policy.EffectiveThreads(1000000, 2), 2);
  // threads <= 1 is always serial.
  EXPECT_EQ(policy.EffectiveThreads(1000000, 1), 1);
  EXPECT_EQ(policy.EffectiveThreads(1000000, 0), 1);
}

TEST(MorselPolicyTest, HardwarePolicyIsCacheCalibratedAndStable) {
  const MorselPolicy& hw = MorselPolicy::Hardware();
  EXPECT_GT(hw.morsel_rows, 0u);
  EXPECT_GE(hw.serial_cutoff_rows, hw.morsel_rows);
  EXPECT_GE(hw.min_rows_per_worker, hw.morsel_rows);
  // Computed once per process: repeated calls return the same object.
  EXPECT_EQ(&hw, &MorselPolicy::Hardware());
}

/// Largest threads_used over the query's operator traces — what the
/// adaptive go-parallel decision actually did.
int MaxThreadsUsed(const QueryResult& result) {
  int used = 0;
  for (const OpTrace& trace : result.profile.traces()) {
    used = std::max(used, trace.threads_used);
  }
  return used;
}

TEST(AdaptiveParallelismTest, TinyInputStaysSerialAtHighThreadCounts) {
  // The A7 regression case: a small scan must not fan out just because
  // threads were requested. threads_used in the operator traces is the
  // observable proof.
  auto database = MakeBoundaryDb(5000);  // far below any serial cutoff.
  database->set_threads(8);
  Result<QueryResult> result = sql::RunQuery(
      "SELECT k, sum(v) AS s FROM t WHERE v < 900.0 GROUP BY k", *database,
      ExecMode::kOptimized);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(MaxThreadsUsed(*result), 1)
      << result->profile.ToString();
}

TEST(AdaptiveParallelismTest, LargeInputGoesParallelAboveCutoff) {
  // Shrink the policy so a test-sized table crosses the cutoff; the same
  // query that stayed serial above must now use > 1 worker.
  auto database = MakeBoundaryDb(5000);
  MorselPolicy policy;
  policy.morsel_rows = 500;
  policy.serial_cutoff_rows = 2000;
  policy.min_rows_per_worker = 500;
  database->set_morsel_policy(policy);
  database->set_threads(8);
  Result<QueryResult> result = sql::RunQuery(
      "SELECT k, sum(v) AS s FROM t WHERE v < 900.0 GROUP BY k", *database,
      ExecMode::kOptimized);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(MaxThreadsUsed(*result), 1) << result->profile.ToString();
}

class AdaptiveBoundaryParamTest : public ::testing::TestWithParam<int> {};

TEST_P(AdaptiveBoundaryParamTest, BitIdenticalAroundTheSerialCutoff) {
  // Straddle the go-parallel decision boundary: at cutoff-1 rows the scan
  // runs serially, at cutoff it fans out. Results — including the
  // order-sensitive floating-point SUM/AVG — must be bit-identical across
  // thread counts on both sides of the flip.
  const size_t kCutoff = 2000;
  size_t rows = static_cast<size_t>(static_cast<int>(kCutoff) + GetParam());
  auto database = MakeBoundaryDb(rows);
  MorselPolicy policy;
  policy.morsel_rows = 500;
  policy.serial_cutoff_rows = kCutoff;
  policy.min_rows_per_worker = 500;
  database->set_morsel_policy(policy);
  for (const std::string& sql_text :
       {std::string("SELECT id, v FROM t WHERE v < 900.0"),
        std::string("SELECT k, sum(v) AS s, avg(v) AS a, count(*) AS c "
                    "FROM t GROUP BY k")}) {
    SCOPED_TRACE(sql_text);
    for (ExecMode mode : {ExecMode::kOptimized, ExecMode::kDebug}) {
      SCOPED_TRACE(ExecModeName(mode));
      std::string serial = RunSql(database.get(), sql_text, mode, 1);
      EXPECT_EQ(serial, RunSql(database.get(), sql_text, mode, 2));
      EXPECT_EQ(serial, RunSql(database.get(), sql_text, mode, 8));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AroundCutoff, AdaptiveBoundaryParamTest,
                         ::testing::Values(-1, 0, 1));

TEST(ParallelExecTest, ConcurrentStreamsMatchSequentialPermutations) {
  Database* database = SharedTpchDb();
  database->set_threads(1);
  workload::TpchDriver driver(database, {1, 6});
  workload::ThroughputResult sequential = driver.RunThroughputTest(3, 42);
  workload::ThroughputResult concurrent =
      driver.RunConcurrentThroughputTest(3, 42);
  ASSERT_EQ(sequential.streams.size(), concurrent.streams.size());
  for (size_t s = 0; s < sequential.streams.size(); ++s) {
    // Identical seeded permutations; every query ran and was timed.
    EXPECT_EQ(sequential.streams[s].query_order,
              concurrent.streams[s].query_order);
    EXPECT_EQ(concurrent.streams[s].query_ms.size(), 2u);
  }
  EXPECT_GT(concurrent.total_ms, 0.0);
  EXPECT_GT(concurrent.throughput_qph, 0.0);
}

TEST(ParallelExecTest, ConcurrentStreamsLeaveResultsDeterministic) {
  // Queries executed while other streams run concurrently still return
  // the same relation as a quiet serial run.
  Database* database = SharedTpchDb();
  database->set_threads(2);
  workload::TpchDriver driver(database, {1, 3, 6});
  (void)driver.RunConcurrentThroughputTest(4, 7);
  database->set_threads(1);
  RunRecord after = RunCold(database, 6, ExecMode::kOptimized, 1);
  RunRecord baseline = RunCold(database, 6, ExecMode::kOptimized, 1);
  EXPECT_EQ(after.rendered, baseline.rendered);
  EXPECT_EQ(after.storage_stats, baseline.storage_stats);
}

}  // namespace
}  // namespace db
}  // namespace perfeval
