#include "db/value.h"

#include <gtest/gtest.h>

namespace perfeval {
namespace db {
namespace {

TEST(ValueTest, ConstructorsAndAccessors) {
  EXPECT_EQ(Value::Int64(42).AsInt64(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(3.5).AsDouble(), 3.5);
  EXPECT_EQ(Value::String("abc").AsString(), "abc");
  EXPECT_EQ(Value::Date(100).AsDate(), 100);
}

TEST(ValueTest, NumericCoercionViaAsDouble) {
  EXPECT_DOUBLE_EQ(Value::Int64(7).AsDouble(), 7.0);
  EXPECT_DOUBLE_EQ(Value::Date(5).AsDouble(), 5.0);
}

TEST(ValueTest, CompareWithinTypes) {
  EXPECT_LT(Value::Int64(1).Compare(Value::Int64(2)), 0);
  EXPECT_EQ(Value::Int64(2).Compare(Value::Int64(2)), 0);
  EXPECT_GT(Value::String("b").Compare(Value::String("a")), 0);
  EXPECT_EQ(Value::Double(1.5).Compare(Value::Double(1.5)), 0);
}

TEST(ValueTest, CrossNumericCompare) {
  EXPECT_EQ(Value::Int64(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(Value::Int64(1).Compare(Value::Double(1.5)), 0);
}

TEST(ValueTest, OperatorsMatchCompare) {
  EXPECT_TRUE(Value::Int64(3) == Value::Int64(3));
  EXPECT_TRUE(Value::Int64(2) < Value::Int64(3));
  EXPECT_FALSE(Value::Int64(3) < Value::Int64(3));
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value::Int64(42).ToString(), "42");
  EXPECT_EQ(Value::Double(3.14159).ToString(), "3.14");
  EXPECT_EQ(Value::String("xyz").ToString(), "xyz");
  EXPECT_EQ(Value::Date(DateFromYmd(1998, 9, 2)).ToString(), "1998-09-02");
}

TEST(ValueTest, DefaultIsIntZero) {
  Value v;
  EXPECT_EQ(v.type(), DataType::kInt64);
  EXPECT_EQ(v.AsInt64(), 0);
}

TEST(ValueDeathTest, StringNumericComparisonAborts) {
  EXPECT_DEATH(Value::String("a").Compare(Value::Int64(1)),
               "cannot compare");
}

TEST(ValueDeathTest, WrongAccessorAborts) {
  EXPECT_DEATH(Value::Int64(1).AsString(), "CHECK failed");
  EXPECT_DEATH(Value::String("a").AsDouble(), "not numeric");
}

}  // namespace
}  // namespace db
}  // namespace perfeval
