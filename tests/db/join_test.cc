// Tests for the cache-conscious join engine (db/join.h) and the parallel
// sort kernels (db/sort.h): kernel correctness, the duplicate-heavy
// capacity regression, determinism at any thread count, and the
// engine-level join_algo knob. Lives in db_parallel_test so the `db` ctest
// label runs it under PERFEVAL_SANITIZE=thread.

#include "db/join.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "db/database.h"
#include "db/sort.h"
#include "sql/planner.h"

namespace perfeval {
namespace db {
namespace {

TEST(FlatKeyIndexTest, LookupReturnsRowsInInsertionOrder) {
  FlatKeyIndex index;
  index.Insert(7, 100);
  index.Insert(3, 200);
  index.Insert(7, 300);
  index.Insert(7, 400);
  std::vector<uint32_t> rows;
  EXPECT_EQ(index.Lookup(7, &rows), 3u);
  EXPECT_EQ(rows, (std::vector<uint32_t>{100, 300, 400}));
  rows.clear();
  EXPECT_EQ(index.Lookup(3, &rows), 1u);
  EXPECT_EQ(rows, (std::vector<uint32_t>{200}));
  rows.clear();
  EXPECT_EQ(index.Lookup(99, &rows), 0u);
  EXPECT_EQ(index.num_keys(), 2u);
  EXPECT_EQ(index.num_rows(), 4u);
}

TEST(FlatKeyIndexTest, GrowsPastInitialEstimateAndKeepsChains) {
  FlatKeyIndex index(/*expected_distinct=*/4, /*expected_rows=*/4);
  for (int64_t k = 0; k < 5000; ++k) {
    index.Insert(k, static_cast<uint32_t>(k));
    index.Insert(k, static_cast<uint32_t>(k) + 100000);
  }
  EXPECT_EQ(index.num_keys(), 5000u);
  for (int64_t k = 0; k < 5000; ++k) {
    std::vector<uint32_t> rows;
    ASSERT_EQ(index.Lookup(k, &rows), 2u) << "key " << k;
    EXPECT_EQ(rows[0] + 100000, rows[1]);
  }
}

TEST(FlatKeyIndexTest, DuplicateHeavyBuildIsSizedByDistinctKeys) {
  // Regression for the old `hash_table.reserve(right.num_rows())`: 100k
  // build rows over 100 distinct keys must size the slot array for ~100
  // keys, not reserve one bucket per row (a 1000x overshoot).
  constexpr size_t kRows = 100000;
  constexpr int64_t kDistinct = 100;
  std::vector<int64_t> keys(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    keys[i] = static_cast<int64_t>(i) % kDistinct;
  }
  size_t estimate = EstimateDistinctKeys(keys);
  EXPECT_GE(estimate, static_cast<size_t>(kDistinct));
  EXPECT_LE(estimate, kRows / 100);  // nowhere near one per row.
  // All-distinct keys estimate at the other extreme: near one per row.
  std::vector<int64_t> unique(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    unique[i] = static_cast<int64_t>(i);
  }
  EXPECT_GE(EstimateDistinctKeys(unique), kRows / 2);

  FlatKeyIndex index(estimate, kRows);
  for (size_t i = 0; i < kRows; ++i) {
    index.Insert(keys[i], static_cast<uint32_t>(i));
  }
  EXPECT_EQ(index.num_keys(), static_cast<size_t>(kDistinct));
  EXPECT_EQ(index.num_rows(), kRows);
  // Slots stay sized by distinct keys; duplicates only extend the chains.
  EXPECT_LE(index.capacity(), 4096u);
}

TEST(EstimateDistinctKeysTest, ExactForSmallInputs) {
  EXPECT_EQ(EstimateDistinctKeys({}), 0u);
  EXPECT_EQ(EstimateDistinctKeys({5, 5, 5, 5}), 1u);
  EXPECT_EQ(EstimateDistinctKeys({1, 2, 3, 2, 1}), 3u);
}

TEST(EstimateDistinctKeysTest, DuplicateFreeInputNeverExceedsRowCount) {
  // Chao1 blow-up regression: with a duplicate-free input every sampled
  // key is a singleton, so f1 = sample size and f2 = 0, and the raw
  // d + f1^2 / (2 (f2 + 1)) estimate is ~d + d^2/2 — half a million for
  // a 1024-key sample, far beyond the input. The estimate must clamp to
  // the row count (an upper bound on the true distinct count).
  for (size_t n : {2000u, 10000u, 100000u}) {
    std::vector<int64_t> unique(n);
    for (size_t i = 0; i < n; ++i) {
      unique[i] = static_cast<int64_t>(i * 7 + 3);
    }
    size_t estimate = EstimateDistinctKeys(unique);
    EXPECT_LE(estimate, n) << "n=" << n;
    EXPECT_GE(estimate, n / 2) << "n=" << n;
  }
}

TEST(ChooseRadixBitsTest, GrowsWithBuildSizeAndIsCapped) {
  EXPECT_EQ(ChooseRadixBits(0), 0);
  EXPECT_EQ(ChooseRadixBits(1000), 0);  // fits one L2-sized partition.
  int bits_1m = ChooseRadixBits(1 << 20);
  EXPECT_GT(bits_1m, 0);
  EXPECT_LE(ChooseRadixBits(1 << 22), kMaxRadixBits);
  EXPECT_GE(ChooseRadixBits(1 << 22), bits_1m);
  EXPECT_EQ(ChooseRadixBits(size_t{1} << 40), kMaxRadixBits);
}

// ---- Match kernels ----

struct Sides {
  std::vector<int64_t> build_keys;
  std::vector<uint32_t> build_rows;
  std::vector<int64_t> probe_keys;
  std::vector<uint32_t> probe_rows;
};

/// Duplicate-rich random sides; big enough to span many morsels.
Sides MakeSides(size_t build_n, size_t probe_n, int64_t key_space,
                uint64_t seed) {
  Pcg32 rng(seed);
  Sides s;
  for (size_t i = 0; i < build_n; ++i) {
    s.build_keys.push_back(rng.NextInRange(0, key_space - 1));
    s.build_rows.push_back(static_cast<uint32_t>(i));
  }
  for (size_t i = 0; i < probe_n; ++i) {
    s.probe_keys.push_back(rng.NextInRange(0, key_space - 1));
    s.probe_rows.push_back(static_cast<uint32_t>(i));
  }
  return s;
}

using MatchPairs = std::vector<std::pair<uint32_t, uint32_t>>;

MatchPairs SortedPairs(const JoinMatches& m) {
  MatchPairs pairs;
  for (size_t i = 0; i < m.size(); ++i) {
    pairs.emplace_back(m.probe_rows[i], m.build_rows[i]);
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

TEST(JoinMatchTest, AllAlgorithmsAgreeOnTheMatchSet) {
  Sides s = MakeSides(20000, 30000, 5000, 1);
  JoinMatches legacy = LegacyHashJoinMatch(s.build_keys, s.build_rows,
                                           s.probe_keys, s.probe_rows);
  JoinMatches hash = FlatHashJoinMatch(s.build_keys, s.build_rows,
                                       s.probe_keys, s.probe_rows, 1);
  JoinMatches radix = RadixJoinMatch(s.build_keys, s.build_rows,
                                     s.probe_keys, s.probe_rows, 5, 1);
  JoinMatches merge = MergeJoinMatch(s.build_keys, s.build_rows,
                                     s.probe_keys, s.probe_rows, 1);
  ASSERT_GT(legacy.size(), 0u);
  // The flat table replays the legacy algorithm's exact emission order.
  EXPECT_EQ(hash.probe_rows, legacy.probe_rows);
  EXPECT_EQ(hash.build_rows, legacy.build_rows);
  // Radix and merge emit in their own fixed orders; the match set is the
  // same.
  MatchPairs expected = SortedPairs(legacy);
  EXPECT_EQ(SortedPairs(radix), expected);
  EXPECT_EQ(SortedPairs(merge), expected);
}

TEST(JoinMatchTest, EveryAlgorithmHandlesEmptyInputs) {
  Sides s = MakeSides(100, 100, 50, 2);
  const std::vector<int64_t> no_keys;
  const std::vector<uint32_t> no_rows;
  for (JoinAlgo algo : {JoinAlgo::kLegacy, JoinAlgo::kHash, JoinAlgo::kRadix,
                        JoinAlgo::kMerge}) {
    SCOPED_TRACE(JoinAlgoName(algo));
    // Empty build side.
    EXPECT_EQ(JoinMatch(algo, no_keys, no_rows, s.probe_keys, s.probe_rows,
                        0, 4)
                  .size(),
              0u);
    // Empty probe side.
    EXPECT_EQ(JoinMatch(algo, s.build_keys, s.build_rows, no_keys, no_rows,
                        0, 4)
                  .size(),
              0u);
    // Both empty.
    EXPECT_EQ(JoinMatch(algo, no_keys, no_rows, no_keys, no_rows, 0, 4)
                  .size(),
              0u);
  }
}

TEST(JoinMatchTest, ThreadCountNeverChangesTheOutput) {
  Sides s = MakeSides(30000, 50000, 2000, 3);
  for (JoinAlgo algo :
       {JoinAlgo::kHash, JoinAlgo::kRadix, JoinAlgo::kMerge}) {
    SCOPED_TRACE(JoinAlgoName(algo));
    JoinMatches serial = JoinMatch(algo, s.build_keys, s.build_rows,
                                   s.probe_keys, s.probe_rows, 6, 1);
    for (int threads : {2, 3, 8}) {
      SCOPED_TRACE(threads);
      JoinMatches parallel = JoinMatch(algo, s.build_keys, s.build_rows,
                                       s.probe_keys, s.probe_rows, 6,
                                       threads);
      EXPECT_EQ(parallel.probe_rows, serial.probe_rows);
      EXPECT_EQ(parallel.build_rows, serial.build_rows);
    }
  }
}

TEST(JoinMatchTest, RadixBitSettingsAgreeOnTheMatchSet) {
  Sides s = MakeSides(10000, 20000, 700, 4);
  MatchPairs expected =
      SortedPairs(LegacyHashJoinMatch(s.build_keys, s.build_rows,
                                      s.probe_keys, s.probe_rows));
  for (int bits : {1, 3, 8, kMaxRadixBits}) {
    SCOPED_TRACE(bits);
    JoinMatches radix = RadixJoinMatch(s.build_keys, s.build_rows,
                                       s.probe_keys, s.probe_rows, bits, 4);
    EXPECT_EQ(SortedPairs(radix), expected);
  }
}

// ---- Parallel sort kernels ----

TEST(StableSortRowsTest, MatchesSerialStableSortAtAnyThreadCount) {
  // Duplicate-rich keys make stability observable: ties must keep input
  // order. 100k rows spans several sort chunks.
  constexpr size_t kRows = 100000;
  Table table(Schema({{"k", DataType::kInt64}, {"v", DataType::kDouble}}));
  Pcg32 rng(17);
  for (size_t i = 0; i < kRows; ++i) {
    table.AppendRow({Value::Int64(rng.NextInRange(0, 99)),
                     Value::Double(rng.NextDouble())});
  }
  RowComparator comparator(
      table, {{"k", /*ascending=*/true}, {"v", /*ascending=*/false}});
  std::vector<uint32_t> expected(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    expected[i] = static_cast<uint32_t>(i);
  }
  std::vector<uint32_t> serial = expected;
  std::stable_sort(serial.begin(), serial.end(), comparator);
  for (int threads : {1, 2, 5, 8}) {
    SCOPED_TRACE(threads);
    std::vector<uint32_t> rows = expected;
    StableSortRows(comparator, threads, &rows);
    EXPECT_EQ(rows, serial);
  }
}

// ---- Engine-level knob ----

TEST(JoinAlgoTest, ParseAndNameRoundTrip) {
  for (JoinAlgo algo : {JoinAlgo::kLegacy, JoinAlgo::kHash, JoinAlgo::kRadix,
                        JoinAlgo::kMerge}) {
    Result<JoinAlgo> parsed = ParseJoinAlgo(JoinAlgoName(algo));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, algo);
  }
  EXPECT_FALSE(ParseJoinAlgo("quantum").ok());
}

TEST(JoinAlgoTest, AllAlgorithmsProduceTheSameOrderedQueryResult) {
  // An ORDER BY pins the output relation, so every join algorithm must
  // render identically — in both execution modes, serial and parallel.
  Database database;
  auto orders = std::make_shared<Table>(
      Schema({{"o_id", DataType::kInt64}, {"o_cust", DataType::kInt64}}));
  auto cust = std::make_shared<Table>(
      Schema({{"c_id", DataType::kInt64}, {"c_name", DataType::kString}}));
  Pcg32 rng(23);
  for (int64_t i = 0; i < 50; ++i) {
    cust->AppendRow({Value::Int64(i),
                     Value::String("c" + std::to_string(i))});
  }
  for (int64_t i = 0; i < 5000; ++i) {
    orders->AppendRow({Value::Int64(i),
                       Value::Int64(rng.NextInRange(0, 49))});
  }
  database.RegisterTable("orders", orders);
  database.RegisterTable("cust", cust);
  const std::string sql_text =
      "SELECT c_name, count(*) AS n FROM orders JOIN cust "
      "ON o_cust = c_id GROUP BY c_name ORDER BY c_name";

  std::string baseline;
  for (JoinAlgo algo : {JoinAlgo::kLegacy, JoinAlgo::kHash, JoinAlgo::kRadix,
                        JoinAlgo::kMerge}) {
    SCOPED_TRACE(JoinAlgoName(algo));
    database.set_join_algo(algo);
    for (ExecMode mode : {ExecMode::kOptimized, ExecMode::kDebug}) {
      SCOPED_TRACE(ExecModeName(mode));
      for (int threads : {1, 8}) {
        SCOPED_TRACE(threads);
        database.set_threads(threads);
        Result<QueryResult> result = sql::RunQuery(sql_text, database, mode);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        std::string rendered = result->table->ToString(1000);
        if (baseline.empty()) {
          baseline = rendered;
        } else {
          EXPECT_EQ(rendered, baseline);
        }
      }
    }
  }
  database.set_threads(1);
  database.set_join_algo(JoinAlgo::kRadix);
}

}  // namespace
}  // namespace db
}  // namespace perfeval
