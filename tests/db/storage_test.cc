#include "db/storage.h"

#include <gtest/gtest.h>

#include "db/expr.h"

namespace perfeval {
namespace db {
namespace {

std::shared_ptr<Table> MakeIntTable(size_t rows) {
  auto table = std::make_shared<Table>(
      Schema({{"v", DataType::kInt64}, {"w", DataType::kInt64}}));
  for (size_t i = 0; i < rows; ++i) {
    table->AppendRow({Value::Int64(static_cast<int64_t>(i)),
                      Value::Int64(static_cast<int64_t>(i * 2))});
  }
  return table;
}

TEST(StorageTest, RegistrationComputesChunks) {
  StorageManager storage(DiskModel(), 16, 100);
  auto table = MakeIntTable(250);
  storage.RegisterTable(1, *table);
  EXPECT_EQ(storage.NumChunks(1, 0), 3u);  // 100+100+50.
  EXPECT_EQ(storage.NumChunks(1, 1), 3u);
}

TEST(StorageTest, ZoneMapsTrackMinMax) {
  StorageManager storage(DiskModel(), 16, 100);
  auto table = MakeIntTable(250);
  storage.RegisterTable(1, *table);
  const ZoneMap& zm0 = storage.GetZoneMap(1, 0, 0);
  EXPECT_TRUE(zm0.valid);
  EXPECT_DOUBLE_EQ(zm0.min, 0.0);
  EXPECT_DOUBLE_EQ(zm0.max, 99.0);
  const ZoneMap& zm2 = storage.GetZoneMap(1, 0, 2);
  EXPECT_DOUBLE_EQ(zm2.min, 200.0);
  EXPECT_DOUBLE_EQ(zm2.max, 249.0);
}

TEST(StorageTest, FirstTouchMissesSecondHits) {
  StorageManager storage(DiskModel(), 16, 100);
  auto table = MakeIntTable(250);
  storage.RegisterTable(1, *table);
  storage.TouchColumn(1, 0);
  EXPECT_EQ(storage.stats().page_misses, 3);
  EXPECT_EQ(storage.stats().page_hits, 0);
  storage.TouchColumn(1, 0);
  EXPECT_EQ(storage.stats().page_misses, 3);
  EXPECT_EQ(storage.stats().page_hits, 3);
}

TEST(StorageTest, FlushMakesPagesColdAgain) {
  StorageManager storage(DiskModel(), 16, 100);
  auto table = MakeIntTable(250);
  storage.RegisterTable(1, *table);
  storage.TouchColumn(1, 0);
  storage.FlushCaches();
  storage.ResetStats();
  storage.TouchColumn(1, 0);
  EXPECT_EQ(storage.stats().page_misses, 3);
}

TEST(StorageTest, MissesChargeStallTime) {
  DiskModel slow;
  slow.seek_ns = 1'000'000;
  slow.ns_per_byte = 100.0;
  StorageManager storage(slow, 16, 100);
  auto table = MakeIntTable(100);
  storage.RegisterTable(1, *table);
  EXPECT_EQ(storage.total_stall_ns(), 0);
  storage.TouchColumn(1, 0);
  // One page: seek + 800 bytes * 100 ns.
  EXPECT_EQ(storage.total_stall_ns(), 1'000'000 + 80'000);
  int64_t after_miss = storage.total_stall_ns();
  storage.TouchColumn(1, 0);  // hit: no extra charge.
  EXPECT_EQ(storage.total_stall_ns(), after_miss);
}

TEST(StorageTest, SequentialReadsSkipSeek) {
  DiskModel model;
  model.seek_ns = 1'000'000;
  model.ns_per_byte = 0.0;
  StorageManager storage(model, 16, 10);
  auto table = MakeIntTable(40);  // 4 chunks per column.
  storage.RegisterTable(1, *table);
  storage.TouchColumn(1, 0);
  // First page seeks, the following three are sequential.
  EXPECT_EQ(storage.total_stall_ns(), 1'000'000);
}

TEST(StorageTest, LruEvictionUnderPressure) {
  // Pool holds 2 pages; touching 3 pages cycles them out.
  StorageManager storage(DiskModel(), 2, 10);
  auto table = MakeIntTable(30);  // 3 chunks.
  storage.RegisterTable(1, *table);
  storage.TouchColumn(1, 0);  // pages 0,1,2: page 0 evicted.
  storage.ResetStats();
  storage.TouchPage(PageId{1, 0, 0});
  EXPECT_EQ(storage.stats().page_misses, 1);  // evicted earlier.
  storage.ResetStats();
  storage.TouchPage(PageId{1, 0, 0});
  EXPECT_EQ(storage.stats().page_hits, 1);
}

TEST(StorageTest, LruKeepsRecentlyUsedPage) {
  StorageManager storage(DiskModel(), 2, 10);
  auto table = MakeIntTable(30);
  storage.RegisterTable(1, *table);
  storage.TouchPage(PageId{1, 0, 0});
  storage.TouchPage(PageId{1, 0, 1});
  storage.TouchPage(PageId{1, 0, 0});  // refresh page 0.
  storage.TouchPage(PageId{1, 0, 2});  // evicts page 1, not page 0.
  storage.ResetStats();
  storage.TouchPage(PageId{1, 0, 0});
  EXPECT_EQ(storage.stats().page_hits, 1);
  storage.TouchPage(PageId{1, 0, 1});
  EXPECT_EQ(storage.stats().page_misses, 1);
}

TEST(StorageTest, TouchColumnRangeOnlyTouchesOverlappingPages) {
  StorageManager storage(DiskModel(), 16, 100);
  auto table = MakeIntTable(1000);  // 10 chunks.
  storage.RegisterTable(1, *table);
  storage.TouchColumnRange(1, 0, 250, 451);  // chunks 2, 3, 4.
  EXPECT_EQ(storage.stats().page_misses, 3);
}

TEST(StorageTest, StringColumnsHaveInvalidZoneMaps) {
  StorageManager storage(DiskModel(), 16, 100);
  Table table(Schema({{"s", DataType::kString}}));
  table.AppendRow({Value::String("a")});
  storage.RegisterTable(2, table);
  EXPECT_FALSE(storage.GetZoneMap(2, 0, 0).valid);
}

TEST(StorageTest, StatsToStringMentionsPages) {
  StorageManager storage(DiskModel(), 4, 10);
  auto table = MakeIntTable(10);
  storage.RegisterTable(1, *table);
  storage.TouchColumn(1, 0);
  EXPECT_NE(storage.stats().ToString().find("misses"), std::string::npos);
}

TEST(SimplePredicateTest, ZoneMapPruning) {
  SimplePredicate le{0, CmpOp::kLe, 50.0};
  EXPECT_TRUE(le.MightMatch(0.0, 100.0));
  EXPECT_FALSE(le.MightMatch(51.0, 100.0));
  SimplePredicate gt{0, CmpOp::kGt, 50.0};
  EXPECT_FALSE(gt.MightMatch(0.0, 50.0));
  EXPECT_TRUE(gt.MightMatch(0.0, 50.5));
  SimplePredicate eq{0, CmpOp::kEq, 25.0};
  EXPECT_TRUE(eq.MightMatch(0.0, 50.0));
  EXPECT_FALSE(eq.MightMatch(26.0, 50.0));
  SimplePredicate ne{0, CmpOp::kNe, 25.0};
  EXPECT_FALSE(ne.MightMatch(25.0, 25.0));
  EXPECT_TRUE(ne.MightMatch(25.0, 26.0));
}

TEST(StorageDeathTest, UnregisteredTableAborts) {
  StorageManager storage(DiskModel(), 4, 10);
  EXPECT_DEATH(storage.TouchPage(PageId{9, 0, 0}), "not registered");
}

}  // namespace
}  // namespace db
}  // namespace perfeval
