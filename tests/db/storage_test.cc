#include "db/storage.h"

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "db/expr.h"

namespace perfeval {
namespace db {
namespace {

std::shared_ptr<Table> MakeIntTable(size_t rows) {
  auto table = std::make_shared<Table>(
      Schema({{"v", DataType::kInt64}, {"w", DataType::kInt64}}));
  for (size_t i = 0; i < rows; ++i) {
    table->AppendRow({Value::Int64(static_cast<int64_t>(i)),
                      Value::Int64(static_cast<int64_t>(i * 2))});
  }
  return table;
}

TEST(StorageTest, RegistrationComputesChunks) {
  StorageManager storage(DiskModel(), 16, 100);
  auto table = MakeIntTable(250);
  storage.RegisterTable(1, *table);
  EXPECT_EQ(storage.NumChunks(1, 0), 3u);  // 100+100+50.
  EXPECT_EQ(storage.NumChunks(1, 1), 3u);
}

TEST(StorageTest, ZoneMapsTrackMinMax) {
  StorageManager storage(DiskModel(), 16, 100);
  auto table = MakeIntTable(250);
  storage.RegisterTable(1, *table);
  const ZoneMap& zm0 = storage.GetZoneMap(1, 0, 0);
  EXPECT_TRUE(zm0.valid);
  EXPECT_DOUBLE_EQ(zm0.min, 0.0);
  EXPECT_DOUBLE_EQ(zm0.max, 99.0);
  const ZoneMap& zm2 = storage.GetZoneMap(1, 0, 2);
  EXPECT_DOUBLE_EQ(zm2.min, 200.0);
  EXPECT_DOUBLE_EQ(zm2.max, 249.0);
}

TEST(StorageTest, FirstTouchMissesSecondHits) {
  StorageManager storage(DiskModel(), 16, 100);
  auto table = MakeIntTable(250);
  storage.RegisterTable(1, *table);
  storage.TouchColumn(1, 0);
  EXPECT_EQ(storage.stats().page_misses, 3);
  EXPECT_EQ(storage.stats().page_hits, 0);
  storage.TouchColumn(1, 0);
  EXPECT_EQ(storage.stats().page_misses, 3);
  EXPECT_EQ(storage.stats().page_hits, 3);
}

TEST(StorageTest, FlushMakesPagesColdAgain) {
  StorageManager storage(DiskModel(), 16, 100);
  auto table = MakeIntTable(250);
  storage.RegisterTable(1, *table);
  storage.TouchColumn(1, 0);
  storage.FlushCaches();
  storage.ResetStats();
  storage.TouchColumn(1, 0);
  EXPECT_EQ(storage.stats().page_misses, 3);
}

TEST(StorageTest, MissesChargeStallTime) {
  DiskModel slow;
  slow.seek_ns = 1'000'000;
  slow.ns_per_byte = 100.0;
  StorageManager storage(slow, 16, 100);
  auto table = MakeIntTable(100);
  storage.RegisterTable(1, *table);
  EXPECT_EQ(storage.total_stall_ns(), 0);
  storage.TouchColumn(1, 0);
  // One page: seek + 800 bytes * 100 ns.
  EXPECT_EQ(storage.total_stall_ns(), 1'000'000 + 80'000);
  int64_t after_miss = storage.total_stall_ns();
  storage.TouchColumn(1, 0);  // hit: no extra charge.
  EXPECT_EQ(storage.total_stall_ns(), after_miss);
}

TEST(StorageTest, SequentialReadsSkipSeek) {
  DiskModel model;
  model.seek_ns = 1'000'000;
  model.ns_per_byte = 0.0;
  StorageManager storage(model, 16, 10);
  auto table = MakeIntTable(40);  // 4 chunks per column.
  storage.RegisterTable(1, *table);
  storage.TouchColumn(1, 0);
  // First page seeks, the following three are sequential.
  EXPECT_EQ(storage.total_stall_ns(), 1'000'000);
}

TEST(StorageTest, LruEvictionUnderPressure) {
  // Pool holds 2 pages; touching 3 pages cycles them out.
  StorageManager storage(DiskModel(), 2, 10);
  auto table = MakeIntTable(30);  // 3 chunks.
  storage.RegisterTable(1, *table);
  storage.TouchColumn(1, 0);  // pages 0,1,2: page 0 evicted.
  storage.ResetStats();
  storage.TouchPage(PageId{1, 0, 0});
  EXPECT_EQ(storage.stats().page_misses, 1);  // evicted earlier.
  storage.ResetStats();
  storage.TouchPage(PageId{1, 0, 0});
  EXPECT_EQ(storage.stats().page_hits, 1);
}

TEST(StorageTest, LruKeepsRecentlyUsedPage) {
  StorageManager storage(DiskModel(), 2, 10);
  auto table = MakeIntTable(30);
  storage.RegisterTable(1, *table);
  storage.TouchPage(PageId{1, 0, 0});
  storage.TouchPage(PageId{1, 0, 1});
  storage.TouchPage(PageId{1, 0, 0});  // refresh page 0.
  storage.TouchPage(PageId{1, 0, 2});  // evicts page 1, not page 0.
  storage.ResetStats();
  storage.TouchPage(PageId{1, 0, 0});
  EXPECT_EQ(storage.stats().page_hits, 1);
  storage.TouchPage(PageId{1, 0, 1});
  EXPECT_EQ(storage.stats().page_misses, 1);
}

TEST(StorageTest, TouchColumnRangeOnlyTouchesOverlappingPages) {
  StorageManager storage(DiskModel(), 16, 100);
  auto table = MakeIntTable(1000);  // 10 chunks.
  storage.RegisterTable(1, *table);
  storage.TouchColumnRange(1, 0, 250, 451);  // chunks 2, 3, 4.
  EXPECT_EQ(storage.stats().page_misses, 3);
}

TEST(StorageTest, StringColumnsHaveInvalidZoneMaps) {
  StorageManager storage(DiskModel(), 16, 100);
  Table table(Schema({{"s", DataType::kString}}));
  table.AppendRow({Value::String("a")});
  storage.RegisterTable(2, table);
  EXPECT_FALSE(storage.GetZoneMap(2, 0, 0).valid);
}

TEST(StorageTest, StatsToStringMentionsPages) {
  StorageManager storage(DiskModel(), 4, 10);
  auto table = MakeIntTable(10);
  storage.RegisterTable(1, *table);
  storage.TouchColumn(1, 0);
  EXPECT_NE(storage.stats().ToString().find("misses"), std::string::npos);
}

TEST(StorageTest, PartialLastChunkChargesActualBytes) {
  // 250 int64 rows at 100 rows/page: chunks of 800, 800 and 400 bytes.
  // The old per-chunk charge truncated total/num_chunks and under-charged
  // bytes_read (and stall) on every column whose row count is not a
  // multiple of rows_per_page.
  DiskModel model;
  model.seek_ns = 0;
  model.ns_per_byte = 1.0;
  StorageManager storage(model, 16, 100);
  auto table = MakeIntTable(250);
  storage.RegisterTable(1, *table);
  storage.TouchColumn(1, 0);
  EXPECT_EQ(storage.stats().bytes_read, 2000);
  EXPECT_EQ(storage.stats().stall_ns, 2000);
  // A range touching only the short last chunk charges exactly its bytes.
  storage.FlushCaches();
  storage.ResetStats();
  storage.TouchColumnRange(1, 0, 200, 250);
  EXPECT_EQ(storage.stats().bytes_read, 400);
}

TEST(StorageTest, HitAdvancesStreamHead) {
  DiskModel model;
  model.seek_ns = 1'000'000;
  model.ns_per_byte = 0.0;
  StorageManager storage(model, 16, 10);
  auto table = MakeIntTable(40);  // 4 chunks per column.
  storage.RegisterTable(1, *table);
  // Warm chunk 1 (one seek), then scan 0..3. Chunk 0 misses with a seek,
  // chunk 1 hits — and must advance the stream head — so chunks 2 and 3
  // continue the sequential stream seek-free. The old code left the head
  // at 0 across the hit and charged a third, spurious seek on chunk 2.
  storage.TouchPage(PageId{1, 0, 1});
  storage.TouchColumn(1, 0);
  EXPECT_EQ(storage.total_stall_ns(), 2'000'000);
}

TEST(StorageTest, ZoneMapsAreNanSafe) {
  StorageManager storage(DiskModel(), 16, 4);
  Table table(Schema({{"d", DataType::kDouble}}));
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // Page 0: NaN first (poisons std::min/max-style folds), then 3.0, 5.0.
  table.AppendRow({Value::Double(nan)});
  table.AppendRow({Value::Double(3.0)});
  table.AppendRow({Value::Double(5.0)});
  table.AppendRow({Value::Double(4.0)});
  // Page 1: all NaN.
  table.AppendRow({Value::Double(nan)});
  table.AppendRow({Value::Double(nan)});
  storage.RegisterTable(3, table);

  const ZoneMap& zm0 = storage.GetZoneMap(3, 0, 0);
  EXPECT_TRUE(zm0.valid);
  EXPECT_TRUE(zm0.has_nan);
  EXPECT_DOUBLE_EQ(zm0.min, 3.0);
  EXPECT_DOUBLE_EQ(zm0.max, 5.0);
  // A NaN zone is never prunable, even when [min, max] cannot match.
  SimplePredicate gt{0, CmpOp::kGt, 10.0};
  EXPECT_FALSE(zm0.Prunable(gt.MightMatch(zm0.min, zm0.max)));

  const ZoneMap& zm1 = storage.GetZoneMap(3, 0, 1);
  EXPECT_FALSE(zm1.valid);
  EXPECT_TRUE(zm1.has_nan);
  EXPECT_FALSE(zm1.Prunable(false));
}

TEST(StorageTest, NanFreeZonesStayPrunable) {
  StorageManager storage(DiskModel(), 16, 100);
  auto table = MakeIntTable(250);
  storage.RegisterTable(1, *table);
  const ZoneMap& zm = storage.GetZoneMap(1, 0, 0);  // [0, 99].
  SimplePredicate gt{0, CmpOp::kGt, 1000.0};
  EXPECT_TRUE(zm.Prunable(gt.MightMatch(zm.min, zm.max)));
}

TEST(StorageTest, TouchMorselReturnsPerCallDelta) {
  DiskModel model;
  model.seek_ns = 1000;
  model.ns_per_byte = 1.0;
  StorageManager storage(model, 16, 100);
  auto table = MakeIntTable(250);
  storage.RegisterTable(1, *table);

  std::vector<uint32_t> cols = {0, 1};
  StorageStats first = storage.TouchMorsel(1, cols, 0, 100);
  EXPECT_EQ(first.page_misses, 2);  // chunk 0 of both columns.
  EXPECT_EQ(first.page_hits, 0);
  EXPECT_EQ(first.bytes_read, 1600);
  StorageStats again = storage.TouchMorsel(1, cols, 0, 100);
  EXPECT_EQ(again.page_misses, 0);
  EXPECT_EQ(again.page_hits, 2);
  EXPECT_EQ(again.bytes_read, 0);

  // Deltas reduce to the global counters.
  StorageStats total = first;
  total += again;
  EXPECT_EQ(total.page_misses, storage.stats().page_misses);
  EXPECT_EQ(total.page_hits, storage.stats().page_hits);
  EXPECT_EQ(total.bytes_read, storage.stats().bytes_read);
  EXPECT_EQ(total.stall_ns, storage.stats().stall_ns);
}

TEST(StorageTest, ConcurrentTouchesKeepCountersConsistent) {
  // Two threads touching disjoint columns: the pool serializes internally,
  // so totals must equal the single-threaded sum. Run under
  // PERFEVAL_SANITIZE=thread this also proves the locking is complete.
  StorageManager storage(DiskModel(), 64, 100);
  auto table = MakeIntTable(1000);  // 10 chunks per column.
  storage.RegisterTable(1, *table);
  std::thread t0([&] {
    for (int pass = 0; pass < 4; ++pass) storage.TouchColumn(1, 0);
  });
  std::thread t1([&] {
    for (int pass = 0; pass < 4; ++pass) storage.TouchColumn(1, 1);
  });
  t0.join();
  t1.join();
  StorageStats stats = storage.StatsSnapshot();
  EXPECT_EQ(stats.page_misses, 20);
  EXPECT_EQ(stats.page_hits, 60);
}

TEST(SimplePredicateTest, ZoneMapPruning) {
  SimplePredicate le{0, CmpOp::kLe, 50.0};
  EXPECT_TRUE(le.MightMatch(0.0, 100.0));
  EXPECT_FALSE(le.MightMatch(51.0, 100.0));
  SimplePredicate gt{0, CmpOp::kGt, 50.0};
  EXPECT_FALSE(gt.MightMatch(0.0, 50.0));
  EXPECT_TRUE(gt.MightMatch(0.0, 50.5));
  SimplePredicate eq{0, CmpOp::kEq, 25.0};
  EXPECT_TRUE(eq.MightMatch(0.0, 50.0));
  EXPECT_FALSE(eq.MightMatch(26.0, 50.0));
  SimplePredicate ne{0, CmpOp::kNe, 25.0};
  EXPECT_FALSE(ne.MightMatch(25.0, 25.0));
  EXPECT_TRUE(ne.MightMatch(25.0, 26.0));
}

TEST(StorageDeathTest, UnregisteredTableAborts) {
  StorageManager storage(DiskModel(), 4, 10);
  EXPECT_DEATH(storage.TouchPage(PageId{9, 0, 0}), "not registered");
}

}  // namespace
}  // namespace db
}  // namespace perfeval
