// Checked execution mode and checked int64 arithmetic: overflow raises a
// QueryError instead of wrapping, NULL-related aggregate edge cases, and
// the negative tests proving `check = true` actually catches seeded
// invariant violations.

#include <cstdint>
#include <limits>
#include <memory>

#include <gtest/gtest.h>

#include "db/database.h"
#include "db/error.h"
#include "db/plan.h"

namespace perfeval {
namespace db {
namespace {

std::unique_ptr<Database> MakeDb(std::shared_ptr<Table> table,
                                 size_t rows_per_page = 2) {
  DatabaseOptions options;
  options.rows_per_page = rows_per_page;
  options.buffer_pool_pages = 64;
  auto database = std::make_unique<Database>(options);
  database->RegisterTable("t", std::move(table));
  return database;
}

std::shared_ptr<Table> IntTable(const std::vector<int64_t>& values) {
  auto table = std::make_shared<Table>(
      Schema({{"k", DataType::kInt64}, {"v", DataType::kInt64}}));
  for (size_t i = 0; i < values.size(); ++i) {
    table->AppendRow({Value::Int64(static_cast<int64_t>(i % 2)),
                      Value::Int64(values[i])});
  }
  return table;
}

AggSpec MakeAgg(AggOp op, ExprPtr expr, std::string name) {
  AggSpec spec;
  spec.op = op;
  spec.expr = std::move(expr);
  spec.output_name = std::move(name);
  return spec;
}

// ---- Checked int64 arithmetic (always on, not gated by `check`) ----

TEST(CheckedArithmeticTest, SumNearInt64MaxThrowsInsteadOfWrapping) {
  const int64_t kBig = std::numeric_limits<int64_t>::max() - 10;
  auto database = MakeDb(IntTable({kBig, kBig}));
  const Schema& schema = database->GetTable("t").schema();
  PlanPtr plan = Aggregate(
      Scan("t"), {},
      {MakeAgg(AggOp::kSum, Col(schema, "v"), "total")});
  for (ExecMode mode : {ExecMode::kDebug, ExecMode::kOptimized}) {
    try {
      database->Run(plan, mode);
      FAIL() << "SUM past INT64_MAX must throw, mode="
             << ExecModeName(mode);
    } catch (const QueryError& e) {
      EXPECT_EQ(e.code(), StatusCode::kOutOfRange);
      EXPECT_NE(std::string(e.what()).find("SUM"), std::string::npos);
    }
  }
}

TEST(CheckedArithmeticTest, SumBelowLimitStillWorks) {
  const int64_t kBig = std::numeric_limits<int64_t>::max() - 10;
  auto database = MakeDb(IntTable({kBig, 7}));
  const Schema& schema = database->GetTable("t").schema();
  PlanPtr plan = Aggregate(
      Scan("t"), {},
      {MakeAgg(AggOp::kSum, Col(schema, "v"), "total")});
  QueryResult result = database->Run(plan);
  EXPECT_EQ(result.table->schema().column(0).type, DataType::kInt64);
  EXPECT_EQ(result.table->column(0).GetInt64(0), kBig + 7);
}

TEST(CheckedArithmeticTest, IntSumStaysExactPast2To53) {
  // (1 << 53) + 1 is not representable as a double; the old
  // accumulate-through-double path silently rounded it away.
  const int64_t kBeyondDouble = (int64_t{1} << 53) + 1;
  auto database = MakeDb(IntTable({kBeyondDouble, 2}));
  const Schema& schema = database->GetTable("t").schema();
  PlanPtr plan = Aggregate(
      Scan("t"), {},
      {MakeAgg(AggOp::kSum, Col(schema, "v"), "total"),
       MakeAgg(AggOp::kMax, Col(schema, "v"), "biggest")});
  QueryResult result = database->Run(plan);
  EXPECT_EQ(result.table->column(0).GetInt64(0), kBeyondDouble + 2);
  EXPECT_EQ(result.table->column(1).GetInt64(0), kBeyondDouble);
}

TEST(CheckedArithmeticTest, ExpressionOverflowThrowsInBothModes) {
  const int64_t kBig = std::numeric_limits<int64_t>::max() - 1;
  auto database = MakeDb(IntTable({5, 6}));
  const Schema& schema = database->GetTable("t").schema();
  // v + (INT64_MAX - 1) overflows for any v >= 2.
  PlanPtr plan = Project(Scan("t"),
                         {Add(Col(schema, "v"), LitInt(kBig))}, {"bumped"});
  for (ExecMode mode : {ExecMode::kDebug, ExecMode::kOptimized}) {
    EXPECT_THROW(database->Run(plan, mode), QueryError)
        << ExecModeName(mode);
  }
}

TEST(CheckedArithmeticTest, OverflowInParallelMorselsStillThrows) {
  // The throw happens on a sched::ParallelFor worker; ParallelMorsels must
  // carry it back to the coordinator instead of std::terminate-ing.
  const int64_t kBig = std::numeric_limits<int64_t>::max() / 2;
  std::vector<int64_t> values(10000, kBig);
  auto database = MakeDb(IntTable(values), /*rows_per_page=*/1000);
  database->set_threads(4);
  const Schema& schema = database->GetTable("t").schema();
  PlanPtr plan = Aggregate(
      Scan("t"), {},
      {MakeAgg(AggOp::kSum, Col(schema, "v"), "total")});
  EXPECT_THROW(database->Run(plan), QueryError);
}

// ---- NULL aggregate semantics ----

std::shared_ptr<Table> NullableTable() {
  // g | x (double, NULLs) | y (int64, all NULL)
  auto table = std::make_shared<Table>(Schema({{"g", DataType::kInt64},
                                               {"x", DataType::kDouble},
                                               {"y", DataType::kInt64}}));
  table->AppendRow({Value::Int64(1), Value::Double(10.0),
                    Value::Null(DataType::kInt64)});
  table->AppendRow({Value::Int64(1), Value::Null(DataType::kDouble),
                    Value::Null(DataType::kInt64)});
  table->AppendRow({Value::Int64(2), Value::Null(DataType::kDouble),
                    Value::Null(DataType::kInt64)});
  return table;
}

TEST(NullAggregateTest, AvgOverZeroRowsIsNullNotNan) {
  // Regression: AVG over an empty input used to emit 0.0 (and a 0/0 NaN
  // risk); SUM/MIN/MAX fabricated 0.0 too.
  auto database = MakeDb(IntTable({1, 2, 3}));
  const Schema& schema = database->GetTable("t").schema();
  PlanPtr plan = Aggregate(
      FilterScan("t", {"k", "v"}, Gt(Col(schema, "v"), LitInt(100))), {},
      {MakeAgg(AggOp::kAvg, Col(schema, "v"), "a"),
       MakeAgg(AggOp::kSum, Col(schema, "v"), "s"),
       MakeAgg(AggOp::kMin, Col(schema, "v"), "lo"),
       MakeAgg(AggOp::kCount, nullptr, "n")});
  for (ExecMode mode : {ExecMode::kDebug, ExecMode::kOptimized}) {
    QueryResult result = database->Run(plan, mode);
    ASSERT_EQ(result.table->num_rows(), 1u);
    EXPECT_TRUE(result.table->column(0).IsNull(0)) << ExecModeName(mode);
    EXPECT_TRUE(result.table->column(1).IsNull(0));
    EXPECT_TRUE(result.table->column(2).IsNull(0));
    EXPECT_EQ(result.table->column(3).GetInt64(0), 0);
  }
}

TEST(NullAggregateTest, MinMaxAvgOverAllNullColumnIsNull) {
  auto database = MakeDb(NullableTable());
  const Schema& schema = database->GetTable("t").schema();
  PlanPtr plan = Aggregate(
      Scan("t"), {"g"},
      {MakeAgg(AggOp::kMin, Col(schema, "y"), "lo"),
       MakeAgg(AggOp::kMax, Col(schema, "y"), "hi"),
       MakeAgg(AggOp::kAvg, Col(schema, "x"), "a"),
       MakeAgg(AggOp::kCount, Col(schema, "x"), "nx")});
  for (ExecMode mode : {ExecMode::kDebug, ExecMode::kOptimized}) {
    QueryResult result = database->Run(plan, mode);
    ASSERT_EQ(result.table->num_rows(), 2u);
    // Group 1 (rows 0,1): y all NULL; x has one non-NULL value 10.
    EXPECT_TRUE(result.table->column(1).IsNull(0));
    EXPECT_TRUE(result.table->column(2).IsNull(0));
    EXPECT_DOUBLE_EQ(result.table->column(3).GetDouble(0), 10.0);
    EXPECT_EQ(result.table->column(4).GetInt64(0), 1);
    // Group 2: everything NULL.
    EXPECT_TRUE(result.table->column(3).IsNull(1)) << ExecModeName(mode);
    EXPECT_EQ(result.table->column(4).GetInt64(1), 0);
  }
}

// ---- Checked mode (ctx.check) negative tests ----

TEST(CheckedModeTest, CatchesSeededStaleZoneMap) {
  // Seed a real invariant violation: mutate a column *after* its zone
  // maps were registered. Plain runs silently prune pages using the stale
  // map; a checked run must refuse.
  auto table = IntTable({1, 2, 3, 4, 5, 6});
  auto database = MakeDb(table);
  table->column(1).mutable_ints()[5] = 600;  // zone map still says <= 6.
  const Schema& schema = database->GetTable("t").schema();
  PlanPtr plan = FilterScan("t", {"k", "v"},
                            Gt(Col(schema, "v"), LitInt(100)));

  EXPECT_NO_THROW(database->Run(plan));  // unchecked: silent wrong answer.

  database->set_check(true);
  try {
    database->Run(plan);
    FAIL() << "checked mode must detect the stale zone map";
  } catch (const QueryError& e) {
    EXPECT_EQ(e.code(), StatusCode::kInternal);
    EXPECT_NE(std::string(e.what()).find("zone map"), std::string::npos);
  }
}

TEST(CheckedModeTest, CleanQueriesPassAllOperatorChecks) {
  // A join + group + sort pipeline under check=true must run to the same
  // answer as the unchecked run: the assertions are pure observers.
  auto table = IntTable({5, 3, 9, 1, 7, 2, 8, 4});
  auto database = MakeDb(table);
  const Schema& schema = database->GetTable("t").schema();
  PlanPtr plan = Sort(
      Aggregate(FilterScan("t", {"k", "v"},
                           Gt(Col(schema, "v"), LitInt(2))),
                {"k"},
                {MakeAgg(AggOp::kSum, Col(schema, "v"), "total"),
                 MakeAgg(AggOp::kCount, nullptr, "n")}),
      {{"k", true}});
  QueryResult plain = database->Run(plan);
  database->set_check(true);
  for (ExecMode mode : {ExecMode::kDebug, ExecMode::kOptimized}) {
    QueryResult checked = database->Run(plan, mode);
    ASSERT_EQ(checked.table->num_rows(), plain.table->num_rows());
    for (size_t r = 0; r < plain.table->num_rows(); ++r) {
      EXPECT_EQ(checked.table->column(0).GetInt64(r),
                plain.table->column(0).GetInt64(r));
      EXPECT_EQ(checked.table->column(1).GetInt64(r),
                plain.table->column(1).GetInt64(r));
    }
  }
}

TEST(CheckedModeTest, JoinChecksPassOnHealthyJoin) {
  auto left = IntTable({10, 20, 30, 40});
  DatabaseOptions options;
  options.rows_per_page = 2;
  auto database = std::make_unique<Database>(options);
  database->RegisterTable("t", left);
  auto right = std::make_shared<Table>(
      Schema({{"k2", DataType::kInt64}, {"w", DataType::kInt64}}));
  right->AppendRow({Value::Int64(0), Value::Int64(100)});
  right->AppendRow({Value::Int64(1), Value::Int64(200)});
  database->RegisterTable("u", right);
  database->set_check(true);
  for (JoinAlgo algo :
       {JoinAlgo::kLegacy, JoinAlgo::kHash, JoinAlgo::kRadix}) {
    database->set_join_algo(algo);
    QueryResult result =
        database->Run(HashJoin(Scan("t"), Scan("u"), "k", "k2"));
    EXPECT_EQ(result.table->num_rows(), 4u);
  }
  database->set_join_algo(JoinAlgo::kHash);
  QueryResult merged =
      database->Run(MergeJoin(Scan("t"), Scan("u"), "k", "k2"));
  EXPECT_EQ(merged.table->num_rows(), 4u);
}

TEST(NullSemanticsTest, PredicatesOverNullAreFalse) {
  auto database = MakeDb(NullableTable());
  const Schema& schema = database->GetTable("t").schema();
  for (ExecMode mode : {ExecMode::kDebug, ExecMode::kOptimized}) {
    QueryResult gt = database->Run(
        Filter(Scan("t"), Gt(Col(schema, "x"), LitDouble(0.0))), mode);
    EXPECT_EQ(gt.table->num_rows(), 1u) << ExecModeName(mode);
    // NOT(x > 0) is also false for NULL x: both branches drop the row.
    QueryResult le = database->Run(
        Filter(Scan("t"), Not(Gt(Col(schema, "x"), LitDouble(0.0)))),
        mode);
    EXPECT_EQ(le.table->num_rows(), 0u) << ExecModeName(mode);
  }
}

TEST(NullSemanticsTest, NullJoinKeysAreRejected) {
  auto database = MakeDb(NullableTable());
  auto other = std::make_shared<Table>(
      Schema({{"k2", DataType::kInt64}, {"w", DataType::kInt64}}));
  other->AppendRow({Value::Int64(1), Value::Int64(5)});
  // Register through a second catalog entry on the same database.
  // NullableTable's y column is all NULL.
  DatabaseOptions options;
  auto database2 = std::make_unique<Database>(options);
  database2->RegisterTable("t", NullableTable());
  database2->RegisterTable("u", other);
  EXPECT_THROW(
      database2->Run(HashJoin(Scan("t"), Scan("u"), "y", "k2")),
      QueryError);
  EXPECT_THROW(
      database2->Run(MergeJoin(Scan("t"), Scan("u"), "y", "k2")),
      QueryError);
}

TEST(NullSemanticsTest, NullsSortFirstAscendingLastDescending) {
  auto database = MakeDb(NullableTable());
  for (ExecMode mode : {ExecMode::kDebug, ExecMode::kOptimized}) {
    QueryResult asc =
        database->Run(Sort(Scan("t"), {{"x", true}}), mode);
    EXPECT_TRUE(asc.table->column(1).IsNull(0)) << ExecModeName(mode);
    EXPECT_TRUE(asc.table->column(1).IsNull(1));
    EXPECT_DOUBLE_EQ(asc.table->column(1).GetDouble(2), 10.0);
    QueryResult desc =
        database->Run(Sort(Scan("t"), {{"x", false}}), mode);
    EXPECT_DOUBLE_EQ(desc.table->column(1).GetDouble(0), 10.0);
    EXPECT_TRUE(desc.table->column(1).IsNull(2));
  }
}

}  // namespace
}  // namespace db
}  // namespace perfeval
