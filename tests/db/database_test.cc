#include "db/database.h"

#include <gtest/gtest.h>

namespace perfeval {
namespace db {
namespace {

std::shared_ptr<Table> MakeTable(size_t rows) {
  auto table = std::make_shared<Table>(
      Schema({{"k", DataType::kInt64}, {"v", DataType::kDouble}}));
  for (size_t i = 0; i < rows; ++i) {
    table->AppendRow({Value::Int64(static_cast<int64_t>(i)),
                      Value::Double(static_cast<double>(i) * 1.5)});
  }
  return table;
}

TEST(DatabaseTest, CatalogBasics) {
  Database database;
  database.RegisterTable("t1", MakeTable(10));
  database.RegisterTable("t2", MakeTable(5));
  EXPECT_TRUE(database.HasTable("t1"));
  EXPECT_FALSE(database.HasTable("t3"));
  EXPECT_EQ(database.GetTable("t2").num_rows(), 5u);
  EXPECT_EQ(database.TableNames(),
            (std::vector<std::string>{"t1", "t2"}));
  EXPECT_NE(database.TableId("t1"), database.TableId("t2"));
}

TEST(DatabaseDeathTest, DuplicateRegistrationAborts) {
  Database database;
  database.RegisterTable("t", MakeTable(1));
  EXPECT_DEATH(database.RegisterTable("t", MakeTable(1)),
               "already registered");
}

TEST(DatabaseDeathTest, MissingTableAborts) {
  Database database;
  EXPECT_DEATH(database.GetTable("nope"), "no table named");
}

TEST(DatabaseTest, ColdRunPaysStallHotRunDoesNot) {
  DatabaseOptions options;
  options.rows_per_page = 64;
  options.buffer_pool_pages = 1024;
  Database database(options);
  database.RegisterTable("t", MakeTable(10000));
  PlanPtr plan = Scan("t");

  QueryResult cold = database.Run(plan);
  EXPECT_GT(cold.server.simulated_stall_ns, 0);

  QueryResult hot = database.Run(plan);
  EXPECT_EQ(hot.server.simulated_stall_ns, 0);

  // Flush -> cold again (the slide-32 definition).
  database.FlushCaches();
  QueryResult cold_again = database.Run(plan);
  EXPECT_EQ(cold_again.server.simulated_stall_ns,
            cold.server.simulated_stall_ns);
}

TEST(DatabaseTest, ColdRealExceedsUserHotRealDoesNot) {
  // The slide-33 table: cold real >> user; hot real ~ user.
  DatabaseOptions options;
  options.rows_per_page = 64;
  options.buffer_pool_pages = 4096;  // table fits: hot runs stay hot.
  Database database(options);
  database.RegisterTable("t", MakeTable(50000));
  PlanPtr plan = Scan("t");
  QueryResult cold = database.Run(plan);
  QueryResult hot = database.Run(plan);
  EXPECT_GT(cold.ServerRealMs(), 3 * hot.ServerRealMs());
}

TEST(DatabaseTest, ClientTimeIncludesSinkCost) {
  Database database;
  database.RegisterTable("t", MakeTable(5000));
  PlanPtr plan = Scan("t");
  (void)database.Run(plan);  // warm.
  QueryResult discard = database.Run(plan, ExecMode::kOptimized,
                                     SinkKind::kDiscard);
  QueryResult terminal = database.Run(plan, ExecMode::kOptimized,
                                      SinkKind::kTerminal);
  EXPECT_EQ(discard.sink.bytes, 0u);
  EXPECT_GT(terminal.sink.bytes, 0u);
  EXPECT_GT(terminal.ClientRealMs() - terminal.ServerRealMs(),
            discard.ClientRealMs() - discard.ServerRealMs());
}

TEST(DatabaseTest, ServerAndClientMeasurementsNest) {
  Database database;
  database.RegisterTable("t", MakeTable(100));
  QueryResult result = database.Run(Scan("t"), ExecMode::kOptimized,
                                    SinkKind::kFile);
  EXPECT_GE(result.client.real_ns, result.server.real_ns);
  EXPECT_GE(result.client.simulated_stall_ns,
            result.server.simulated_stall_ns);
}

TEST(DatabaseTest, SelectionResultsAreMaterialized) {
  Database database;
  database.RegisterTable("t", MakeTable(100));
  const Schema& schema = database.GetTable("t").schema();
  PlanPtr plan =
      FilterScan("t", {"k", "v"}, Lt(Col(schema, "k"), LitInt(10)));
  QueryResult result = database.Run(plan);
  EXPECT_EQ(result.table->num_rows(), 10u);
  // The materialized result carries actual values, not row ids.
  EXPECT_DOUBLE_EQ(result.table->ColumnByName("v").GetDouble(9), 13.5);
}

TEST(DatabaseTest, PerQueryStorageStats) {
  DatabaseOptions options;
  options.rows_per_page = 64;
  options.buffer_pool_pages = 1024;
  Database database(options);
  database.RegisterTable("t", MakeTable(10000));
  PlanPtr plan = Scan("t");
  QueryResult cold = database.Run(plan);
  EXPECT_GT(cold.storage.page_misses, 0);
  EXPECT_EQ(cold.storage.page_hits, 0);
  EXPECT_GT(cold.storage.bytes_read, 0);
  QueryResult hot = database.Run(plan);
  EXPECT_EQ(hot.storage.page_misses, 0);
  EXPECT_EQ(hot.storage.page_hits, cold.storage.page_misses);
  EXPECT_EQ(hot.storage.stall_ns, 0);
}

TEST(DatabaseTest, ProfileAccompaniesEveryRun) {
  Database database;
  database.RegisterTable("t", MakeTable(100));
  QueryResult result = database.Run(Scan("t"));
  EXPECT_FALSE(result.profile.traces().empty());
}

}  // namespace
}  // namespace db
}  // namespace perfeval
