#include "db/types.h"

#include <gtest/gtest.h>

namespace perfeval {
namespace db {
namespace {

TEST(DateTest, EpochIsZero) {
  EXPECT_EQ(DateFromYmd(1970, 1, 1), 0);
}

TEST(DateTest, KnownDates) {
  EXPECT_EQ(DateFromYmd(1970, 1, 2), 1);
  EXPECT_EQ(DateFromYmd(1969, 12, 31), -1);
  EXPECT_EQ(DateFromYmd(2000, 1, 1), 10957);
  // TPC-H range endpoints.
  EXPECT_EQ(DateFromYmd(1992, 1, 1), 8035);
  EXPECT_EQ(DateFromYmd(1998, 12, 31), 10591);
}

TEST(DateTest, RoundTripsOverTpchRange) {
  for (int32_t days = DateFromYmd(1992, 1, 1);
       days <= DateFromYmd(1998, 12, 31); ++days) {
    int y = 0;
    int m = 0;
    int d = 0;
    YmdFromDate(days, &y, &m, &d);
    EXPECT_EQ(DateFromYmd(y, m, d), days);
  }
}

TEST(DateTest, LeapYearHandling) {
  // 2000 was a leap year (divisible by 400), 1900 was not.
  EXPECT_EQ(DateFromYmd(2000, 3, 1) - DateFromYmd(2000, 2, 28), 2);
  EXPECT_EQ(DateFromYmd(1900, 3, 1) - DateFromYmd(1900, 2, 28), 1);
  EXPECT_EQ(DateFromYmd(1996, 2, 29) + 1, DateFromYmd(1996, 3, 1));
}

TEST(DateTest, ParseAndFormatRoundTrip) {
  int32_t days = 0;
  ASSERT_TRUE(ParseDate("1998-09-02", &days));
  EXPECT_EQ(days, DateFromYmd(1998, 9, 2));
  EXPECT_EQ(FormatDate(days), "1998-09-02");
}

TEST(DateTest, ParseRejectsMalformed) {
  int32_t days = 0;
  EXPECT_FALSE(ParseDate("1998/09/02", &days));
  EXPECT_FALSE(ParseDate("1998-9-2", &days));
  EXPECT_FALSE(ParseDate("not-a-date", &days));
  EXPECT_FALSE(ParseDate("1998-13-01", &days));
  EXPECT_FALSE(ParseDate("1998-00-01", &days));
  EXPECT_FALSE(ParseDate("1998-01-32", &days));
  EXPECT_FALSE(ParseDate("", &days));
}

TEST(DataTypeTest, NamesAndNumericClassification) {
  EXPECT_STREQ(DataTypeName(DataType::kInt64), "int64");
  EXPECT_STREQ(DataTypeName(DataType::kString), "string");
  EXPECT_TRUE(IsNumeric(DataType::kInt64));
  EXPECT_TRUE(IsNumeric(DataType::kDouble));
  EXPECT_TRUE(IsNumeric(DataType::kDate));
  EXPECT_FALSE(IsNumeric(DataType::kString));
}

}  // namespace
}  // namespace db
}  // namespace perfeval
