#include "db/column.h"

#include <gtest/gtest.h>

namespace perfeval {
namespace db {
namespace {

TEST(ColumnTest, Int64AppendAndGet) {
  Column col(DataType::kInt64);
  col.AppendInt64(10);
  col.AppendInt64(-5);
  EXPECT_EQ(col.size(), 2u);
  EXPECT_EQ(col.GetInt64(0), 10);
  EXPECT_EQ(col.GetInt64(1), -5);
}

TEST(ColumnTest, DoubleColumn) {
  Column col(DataType::kDouble);
  col.AppendDouble(1.5);
  EXPECT_DOUBLE_EQ(col.GetDouble(0), 1.5);
  EXPECT_DOUBLE_EQ(col.GetNumeric(0), 1.5);
}

TEST(ColumnTest, StringColumn) {
  Column col(DataType::kString);
  col.AppendString("hello");
  EXPECT_EQ(col.GetString(0), "hello");
  EXPECT_EQ(col.strings().size(), 1u);
}

TEST(ColumnTest, DateColumnSharesIntStorage) {
  Column col(DataType::kDate);
  col.AppendDate(DateFromYmd(1995, 6, 17));
  EXPECT_EQ(col.GetDate(0), DateFromYmd(1995, 6, 17));
  EXPECT_DOUBLE_EQ(col.GetNumeric(0),
                   static_cast<double>(DateFromYmd(1995, 6, 17)));
}

TEST(ColumnTest, AppendValueDispatchesOnType) {
  Column ints(DataType::kInt64);
  ints.AppendValue(Value::Int64(3));
  EXPECT_EQ(ints.GetValue(0), Value::Int64(3));
  Column dates(DataType::kDate);
  dates.AppendValue(Value::Date(10));
  EXPECT_EQ(dates.GetValue(0).AsDate(), 10);
  Column strs(DataType::kString);
  strs.AppendValue(Value::String("s"));
  EXPECT_EQ(strs.GetValue(0).AsString(), "s");
}

TEST(ColumnTest, ByteSizeScalesWithRows) {
  Column col(DataType::kInt64);
  for (int i = 0; i < 100; ++i) {
    col.AppendInt64(i);
  }
  EXPECT_EQ(col.ByteSize(), 100 * sizeof(int64_t));
}

TEST(ColumnTest, StringByteSizeIncludesContent) {
  Column col(DataType::kString);
  col.AppendString(std::string(1000, 'x'));
  EXPECT_GE(col.ByteSize(), 1000u);
}

TEST(ColumnTest, NullMaskTracksAppends) {
  Column col(DataType::kInt64);
  col.AppendInt64(1);
  EXPECT_FALSE(col.has_nulls());
  col.AppendNull();
  col.AppendInt64(3);
  ASSERT_TRUE(col.has_nulls());
  ASSERT_EQ(col.size(), 3u);
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_FALSE(col.IsNull(2));
  EXPECT_TRUE(col.GetValue(1).is_null());
}

// Regression: NoteAppend materialized the mask with assign(size()-1, 0),
// which is empty when the very first append is the NULL, and the guarded
// push_back then silently dropped the flag — a leading NULL came back as
// the placeholder value 0. Flushed out by the differential oracle via
// single-group aggregates whose first output cell is NULL.
TEST(ColumnTest, LeadingNullIsNotDropped) {
  Column col(DataType::kInt64);
  col.AppendNull();
  ASSERT_TRUE(col.has_nulls());
  ASSERT_EQ(col.size(), 1u);
  EXPECT_TRUE(col.IsNull(0));
  EXPECT_TRUE(col.GetValue(0).is_null());
  col.AppendInt64(7);
  EXPECT_TRUE(col.IsNull(0));
  EXPECT_FALSE(col.IsNull(1));
  EXPECT_EQ(col.GetInt64(1), 7);
}

TEST(ColumnDeathTest, TypeMismatchAborts) {
  Column col(DataType::kInt64);
  EXPECT_DEATH(col.AppendDouble(1.0), "CHECK failed");
  EXPECT_DEATH(col.AppendString("x"), "CHECK failed");
  Column strs(DataType::kString);
  strs.AppendString("x");
  EXPECT_DEATH(strs.GetNumeric(0), "GetNumeric on string");
}

}  // namespace
}  // namespace db
}  // namespace perfeval
