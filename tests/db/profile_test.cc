#include "db/profile.h"

#include <gtest/gtest.h>

namespace perfeval {
namespace db {
namespace {

TEST(ProfilerTest, RecordsAndTotals) {
  Profiler profiler;
  profiler.Record({"Scan(lineitem)", 1000, 1000, 5'000'000, 2'000'000});
  profiler.Record({"Filter", 1000, 120, 1'000'000, 0});
  EXPECT_EQ(profiler.traces().size(), 2u);
  EXPECT_EQ(profiler.TotalWallNs(), 6'000'000);
  EXPECT_EQ(profiler.TotalStallNs(), 2'000'000);
}

TEST(ProfilerTest, ClearEmpties) {
  Profiler profiler;
  profiler.Record({"Sort", 10, 10, 100, 0});
  profiler.Clear();
  EXPECT_TRUE(profiler.traces().empty());
  EXPECT_EQ(profiler.TotalWallNs(), 0);
}

TEST(ProfilerTest, RenderingIsMonetTraceLike) {
  Profiler profiler;
  profiler.Record({"FilterScan(lineitem)", 59928, 4883, 2'500'000,
                   9'200'000});
  std::string text = profiler.ToString();
  EXPECT_NE(text.find("operator"), std::string::npos);
  EXPECT_NE(text.find("FilterScan(lineitem)"), std::string::npos);
  EXPECT_NE(text.find("59928"), std::string::npos);
  EXPECT_NE(text.find("4883"), std::string::npos);
  EXPECT_NE(text.find("2.500"), std::string::npos);   // cpu ms
  EXPECT_NE(text.find("9.200"), std::string::npos);   // stall ms
  EXPECT_NE(text.find("total"), std::string::npos);
}

TEST(ProfilerTest, EmptyProfilerStillRendersHeader) {
  Profiler profiler;
  EXPECT_NE(profiler.ToString().find("operator"), std::string::npos);
}

}  // namespace
}  // namespace db
}  // namespace perfeval
