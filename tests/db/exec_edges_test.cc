// Regressions for three executor assumptions flushed out by racing a
// second backend through the differential oracle (DESIGN.md S18):
//
//   1. The sort comparator's raw `<`/`==` fallthrough answered "greater"
//      for BOTH Compare(NaN, x) and Compare(x, NaN); a descending key
//      direction turned that asymmetry into a strict-weak-ordering
//      violation — undefined behaviour for std::stable_sort, and the
//      checked-mode "output ordered" invariant fired on correct output.
//   2. TopN's unstable partial_sort broke ties arbitrarily, so TopN(k)
//      could keep a different key-equal row than Sort + Limit(k).
//   3. MergeJoin rejected any input whose BASE column had a null mask,
//      even when the selection vector excluded every NULL row — an input
//      the hash join and the reference interpreter both accept.

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "db/database.h"
#include "db/error.h"
#include "db/plan.h"
#include "db/reference.h"

namespace perfeval {
namespace db {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::shared_ptr<Table> MessyDoubles() {
  auto table = std::make_shared<Table>(
      Schema({{"k", DataType::kInt64}, {"v", DataType::kDouble}}));
  int64_t k = 0;
  for (double v : {3.5, kNaN, -1.0, 0.0, kNaN, 7.25, -0.0, 2.0}) {
    table->AppendRow({Value::Int64(k++), Value::Double(v)});
  }
  table->AppendRow({Value::Int64(k++), Value::Null(DataType::kDouble)});
  table->AppendRow({Value::Int64(k++), Value::Double(1.5)});
  table->AppendRow({Value::Int64(k++), Value::Null(DataType::kDouble)});
  return table;
}

TEST(ExecEdgesTest, DescendingSortWithNaNKeysPassesCheckedMode) {
  Database database;
  database.RegisterTable("t", MessyDoubles());
  database.set_check(true);
  const Schema& schema = database.GetTable("t").schema();
  PlanPtr plan = Sort(Scan("t"), {{"v", false}, {"k", true}});
  std::shared_ptr<const Table> expected =
      ReferenceExecute(plan, database);
  for (ExecMode mode : {ExecMode::kDebug, ExecMode::kOptimized}) {
    QueryResult result = database.Run(plan, mode);
    EXPECT_EQ(DiffTables(*result.table, *expected, 0.0,
                         /*ignore_row_order=*/false),
              "")
        << "mode " << static_cast<int>(mode);
    // NaN orders as the greatest double and NULL as the smallest, so
    // descending puts the NaNs first (in stable input order: k=1 then
    // k=4) and the NULLs last.
    const Table& t = *result.table;
    ASSERT_EQ(t.num_rows(), 11u);
    EXPECT_TRUE(std::isnan(t.column(1).GetDouble(0)));
    EXPECT_TRUE(std::isnan(t.column(1).GetDouble(1)));
    EXPECT_EQ(t.column(0).GetInt64(0), 1);
    EXPECT_EQ(t.column(0).GetInt64(1), 4);
    EXPECT_EQ(t.column(1).GetDouble(2), 7.25);
    EXPECT_TRUE(t.column(1).IsNull(9));
    EXPECT_TRUE(t.column(1).IsNull(10));
  }
  (void)schema;
}

TEST(ExecEdgesTest, TopNBreaksTiesExactlyLikeSortPlusLimit) {
  // Heavily tied keys: only k % 3 distinguishes rows under the sort key,
  // so the cut at n falls inside a tie group and only a stable tie-break
  // keeps TopN and Sort+Limit identical.
  auto table = std::make_shared<Table>(
      Schema({{"g", DataType::kInt64}, {"id", DataType::kInt64},
              {"v", DataType::kDouble}}));
  for (int64_t i = 0; i < 200; ++i) {
    table->AppendRow({Value::Int64(i % 3), Value::Int64(i),
                      Value::Double(i % 5 == 2 ? kNaN : 1.0)});
  }
  Database database;
  database.RegisterTable("t", std::move(table));
  std::vector<SortKey> keys = {{"g", true}, {"v", false}};
  for (size_t n : {1u, 7u, 66u, 67u, 150u, 400u}) {
    PlanPtr top = TopN(Scan("t"), keys, n);
    PlanPtr sorted = Limit(Sort(Scan("t"), keys), n);
    for (ExecMode mode : {ExecMode::kDebug, ExecMode::kOptimized}) {
      QueryResult a = database.Run(top, mode);
      QueryResult b = database.Run(sorted, mode);
      EXPECT_EQ(DiffTables(*a.table, *b.table, 0.0,
                           /*ignore_row_order=*/false),
                "")
          << "n=" << n << " mode " << static_cast<int>(mode);
      std::shared_ptr<const Table> expected =
          ReferenceExecute(top, database);
      EXPECT_EQ(DiffTables(*a.table, *expected, 0.0,
                           /*ignore_row_order=*/false),
                "")
          << "n=" << n << " vs reference";
    }
  }
}

TEST(ExecEdgesTest, MergeJoinAcceptsKeysFilteredPastNulls) {
  auto fact = std::make_shared<Table>(
      Schema({{"k", DataType::kInt64}, {"v", DataType::kInt64}}));
  for (int64_t i = 0; i < 60; ++i) {
    if (i % 7 == 2) {
      fact->AppendRow({Value::Null(DataType::kInt64), Value::Int64(i)});
    } else {
      fact->AppendRow({Value::Int64(i % 4), Value::Int64(i)});
    }
  }
  auto dim = std::make_shared<Table>(
      Schema({{"k", DataType::kInt64}, {"name", DataType::kString}}));
  for (int64_t i = 0; i < 4; ++i) {
    dim->AppendRow({Value::Int64(i), Value::String("d" + std::to_string(i))});
  }
  Database database;
  database.RegisterTable("fact", std::move(fact));
  database.RegisterTable("dim", std::move(dim));
  const Schema& fs = database.GetTable("fact").schema();

  // Filter(k >= 0) drops every NULL key (3VL: UNKNOWN is not selected),
  // so the merge join's visible input is NULL-free even though the base
  // column's null mask is not.
  PlanPtr filtered = Filter(Scan("fact"), Ge(Col(fs, "k"), LitInt(0)));
  PlanPtr merge = Sort(MergeJoin(filtered, Scan("dim"), "k", "k"),
                       {{"v", true}, {"name", true}});
  PlanPtr hash = Sort(HashJoin(filtered, Scan("dim"), "k", "k"),
                      {{"v", true}, {"name", true}});
  std::shared_ptr<const Table> expected = ReferenceExecute(merge, database);
  for (ExecMode mode : {ExecMode::kDebug, ExecMode::kOptimized}) {
    QueryResult m = database.Run(merge, mode);
    QueryResult h = database.Run(hash, mode);
    EXPECT_EQ(DiffTables(*m.table, *expected, 0.0,
                         /*ignore_row_order=*/false),
              "")
        << "merge vs reference, mode " << static_cast<int>(mode);
    EXPECT_EQ(DiffTables(*m.table, *h.table, 0.0,
                         /*ignore_row_order=*/false),
              "")
        << "merge vs hash, mode " << static_cast<int>(mode);
  }

  // A NULL key that IS visible must still be rejected, with the row id.
  PlanPtr bad = MergeJoin(Scan("fact"), Scan("dim"), "k", "k");
  try {
    database.Run(bad);
    FAIL() << "visible NULL join key must throw";
  } catch (const QueryError& e) {
    EXPECT_NE(std::string(e.what()).find("contains NULL (row 2)"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace db
}  // namespace perfeval
