#include "db/sink.h"

#include <gtest/gtest.h>

namespace perfeval {
namespace db {
namespace {

Table MakeResult(size_t rows) {
  Table table(Schema({{"k", DataType::kInt64}, {"v", DataType::kString}}));
  for (size_t i = 0; i < rows; ++i) {
    table.AppendRow({Value::Int64(static_cast<int64_t>(i)),
                     Value::String("value-" + std::to_string(i))});
  }
  return table;
}

TEST(SinkTest, DiscardCostsNothing) {
  Table result = MakeResult(100);
  SinkReport report = SendToSink(result, SinkKind::kDiscard);
  EXPECT_EQ(report.bytes, 0u);
  EXPECT_EQ(report.lines, 0u);
  EXPECT_EQ(report.stall_ns, 0);
}

TEST(SinkTest, FileCountsBytesAndLines) {
  Table result = MakeResult(10);
  SinkReport report = SendToSink(result, SinkKind::kFile);
  EXPECT_EQ(report.lines, 10u);
  EXPECT_GT(report.bytes, 10u * 10);  // each row renders > 10 chars.
  EXPECT_GT(report.stall_ns, 0);
}

TEST(SinkTest, TerminalIsSlowerThanFile) {
  // The slide-23 observation: the same result costs more on a terminal.
  Table result = MakeResult(1000);
  SinkReport file = SendToSink(result, SinkKind::kFile);
  SinkReport terminal = SendToSink(result, SinkKind::kTerminal);
  EXPECT_EQ(file.bytes, terminal.bytes);
  EXPECT_GT(terminal.stall_ns, 5 * file.stall_ns);
}

TEST(SinkTest, TerminalGapGrowsWithResultSize) {
  // Q1's 1.3KB result shows a small gap; Q16's 1.2MB result doubles the
  // client time. The gap must scale with bytes.
  Table small = MakeResult(4);
  Table large = MakeResult(4000);
  int64_t small_gap = SendToSink(small, SinkKind::kTerminal).stall_ns -
                      SendToSink(small, SinkKind::kFile).stall_ns;
  int64_t large_gap = SendToSink(large, SinkKind::kTerminal).stall_ns -
                      SendToSink(large, SinkKind::kFile).stall_ns;
  EXPECT_GT(large_gap, 100 * small_gap / 2);
}

TEST(SinkTest, CustomModelScalesCosts) {
  Table result = MakeResult(10);
  SinkModel expensive;
  expensive.file_ns_per_byte = 1000.0;
  SinkReport cheap = SendToSink(result, SinkKind::kFile);
  SinkReport costly = SendToSink(result, SinkKind::kFile, expensive);
  EXPECT_GT(costly.stall_ns, cheap.stall_ns);
}

TEST(SinkTest, EmptyResultCostsAlmostNothing) {
  Table result = MakeResult(0);
  SinkReport report = SendToSink(result, SinkKind::kTerminal);
  EXPECT_EQ(report.bytes, 0u);
  EXPECT_EQ(report.stall_ns, 0);
}

TEST(SinkTest, KindNames) {
  EXPECT_STREQ(SinkKindName(SinkKind::kDiscard), "discard");
  EXPECT_STREQ(SinkKindName(SinkKind::kFile), "file");
  EXPECT_STREQ(SinkKindName(SinkKind::kTerminal), "terminal");
}

}  // namespace
}  // namespace db
}  // namespace perfeval
