#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "db/database.h"
#include "db/plan.h"

namespace perfeval {
namespace db {
namespace {

/// Random two-table database with controllable key ranges, so joins have
/// duplicates on both sides and unmatched keys.
std::unique_ptr<Database> MakeRandomDb(size_t left_rows, size_t right_rows,
                                       int64_t key_range, uint64_t seed,
                                       bool sorted_keys) {
  auto database = std::make_unique<Database>();
  Pcg32 rng(seed);
  auto make = [&](const char* key_name, const char* value_name,
                  size_t rows) {
    auto table = std::make_shared<Table>(
        Schema({{key_name, DataType::kInt64},
                {value_name, DataType::kInt64}}));
    std::vector<int64_t> keys;
    for (size_t i = 0; i < rows; ++i) {
      keys.push_back(rng.NextInRange(0, key_range));
    }
    if (sorted_keys) {
      std::sort(keys.begin(), keys.end());
    }
    for (size_t i = 0; i < rows; ++i) {
      table->AppendRow({Value::Int64(keys[i]),
                        Value::Int64(static_cast<int64_t>(i))});
    }
    return table;
  };
  database->RegisterTable("l", make("lk", "lv", left_rows));
  database->RegisterTable("r", make("rk", "rv", right_rows));
  return database;
}

/// Sorted multiset of rendered rows — join output order is not specified.
std::multiset<std::string> RowSet(const Table& table) {
  std::multiset<std::string> out;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::string row;
    for (size_t c = 0; c < table.num_columns(); ++c) {
      row += table.ValueAt(r, c).ToString();
      row += "|";
    }
    out.insert(row);
  }
  return out;
}

struct JoinCase {
  size_t left_rows;
  size_t right_rows;
  int64_t key_range;
  bool sorted;
};

class MergeVsHashTest : public ::testing::TestWithParam<JoinCase> {};

TEST_P(MergeVsHashTest, SameResultAsHashJoin) {
  const JoinCase& c = GetParam();
  auto database = MakeRandomDb(c.left_rows, c.right_rows, c.key_range, 77,
                               c.sorted);
  PlanPtr hash = HashJoin(Scan("l"), Scan("r"), "lk", "rk");
  PlanPtr merge = MergeJoin(Scan("l"), Scan("r"), "lk", "rk");
  QueryResult hash_result = database->Run(hash);
  QueryResult merge_result = database->Run(merge);
  EXPECT_EQ(hash_result.table->num_rows(), merge_result.table->num_rows());
  EXPECT_EQ(RowSet(*hash_result.table), RowSet(*merge_result.table));
}

TEST_P(MergeVsHashTest, DebugModeAgrees) {
  const JoinCase& c = GetParam();
  auto database = MakeRandomDb(c.left_rows, c.right_rows, c.key_range, 78,
                               c.sorted);
  PlanPtr merge = MergeJoin(Scan("l"), Scan("r"), "lk", "rk");
  QueryResult optimized = database->Run(merge, ExecMode::kOptimized);
  QueryResult debug = database->Run(merge, ExecMode::kDebug);
  EXPECT_EQ(RowSet(*optimized.table), RowSet(*debug.table));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MergeVsHashTest,
    ::testing::Values(JoinCase{100, 100, 20, false},   // heavy duplicates.
                      JoinCase{100, 100, 20, true},    // pre-sorted.
                      JoinCase{500, 50, 1000, false},  // mostly unmatched.
                      JoinCase{1, 1, 1, false},        // single rows.
                      JoinCase{200, 0, 10, false},     // empty right side.
                      JoinCase{0, 200, 10, false}));   // empty left side.

TEST(MergeJoinTest, DescendingClusteredInputMustStillSort) {
  // Keys clustered in DESCENDING order: monotone, but not the ascending
  // order the skip-sort fast path detects (it checks key >= previous).
  // Taking the fast path here would emit garbage matches, so this guards
  // the detector's direction.
  auto database = std::make_unique<Database>();
  auto make = [&](const char* key_name, const char* value_name,
                  uint64_t seed) {
    Pcg32 rng(seed);
    auto table = std::make_shared<Table>(
        Schema({{key_name, DataType::kInt64},
                {value_name, DataType::kInt64}}));
    std::vector<int64_t> keys;
    for (size_t i = 0; i < 400; ++i) {
      keys.push_back(rng.NextInRange(0, 60));
    }
    std::sort(keys.begin(), keys.end(), std::greater<int64_t>());
    for (size_t i = 0; i < keys.size(); ++i) {
      table->AppendRow({Value::Int64(keys[i]),
                        Value::Int64(static_cast<int64_t>(i))});
    }
    return table;
  };
  database->RegisterTable("l", make("lk", "lv", 21));
  database->RegisterTable("r", make("rk", "rv", 22));
  PlanPtr hash = HashJoin(Scan("l"), Scan("r"), "lk", "rk");
  PlanPtr merge = MergeJoin(Scan("l"), Scan("r"), "lk", "rk");
  for (ExecMode mode : {ExecMode::kOptimized, ExecMode::kDebug}) {
    QueryResult hash_result = database->Run(hash, mode);
    QueryResult merge_result = database->Run(merge, mode);
    ASSERT_GT(hash_result.table->num_rows(), 0u);
    EXPECT_EQ(RowSet(*hash_result.table), RowSet(*merge_result.table));
  }
}

class EmptyInputJoinTest : public ::testing::TestWithParam<JoinAlgo> {};

TEST_P(EmptyInputJoinTest, EmptySidesYieldEmptyJoins) {
  // Plan-level edge cases for every physical algorithm: empty build side,
  // empty probe side, both empty. The schema must survive even when no
  // row does.
  for (auto [left_rows, right_rows] :
       {std::pair<size_t, size_t>{0, 200}, {200, 0}, {0, 0}}) {
    auto database = MakeRandomDb(left_rows, right_rows, 10, 31, false);
    database->set_join_algo(GetParam());
    for (PlanPtr plan : {HashJoin(Scan("l"), Scan("r"), "lk", "rk"),
                         MergeJoin(Scan("l"), Scan("r"), "lk", "rk")}) {
      for (ExecMode mode : {ExecMode::kOptimized, ExecMode::kDebug}) {
        QueryResult result = database->Run(plan, mode);
        EXPECT_EQ(result.table->num_rows(), 0u);
        EXPECT_EQ(result.table->num_columns(), 4u);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Algos, EmptyInputJoinTest,
                         ::testing::Values(JoinAlgo::kLegacy,
                                           JoinAlgo::kHash,
                                           JoinAlgo::kRadix),
                         [](const auto& info) {
                           return JoinAlgoName(info.param);
                         });

TEST(MergeJoinTest, FilteredInputsJoinCorrectly) {
  auto database = MakeRandomDb(300, 300, 50, 5, false);
  const Schema& left = database->GetTable("l").schema();
  PlanPtr merge = MergeJoin(
      FilterScan("l", {"lk", "lv"}, Lt(Col(left, "lk"), LitInt(25))),
      Scan("r"), "lk", "rk");
  QueryResult result = database->Run(merge);
  const Column& lk = result.table->ColumnByName("lk");
  const Column& rk = result.table->ColumnByName("rk");
  for (size_t r = 0; r < result.table->num_rows(); ++r) {
    EXPECT_LT(lk.GetInt64(r), 25);
    EXPECT_EQ(lk.GetInt64(r), rk.GetInt64(r));
  }
}

TEST(MergeJoinTest, ExplainNamesTheOperator) {
  auto database = MakeRandomDb(10, 10, 5, 1, false);
  PlanPtr merge = MergeJoin(Scan("l"), Scan("r"), "lk", "rk");
  EXPECT_NE(Explain(merge).find("MergeJoin [lk = rk]"), std::string::npos);
}

TEST(TopNTest, MatchesSortPlusLimitOnUniqueKeys) {
  auto database = MakeRandomDb(500, 1, 1'000'000, 9, false);
  PlanPtr top = TopN(Scan("l"), {{"lk", true}}, 10);
  PlanPtr sorted = Limit(Sort(Scan("l"), {{"lk", true}}), 10);
  QueryResult top_result = database->Run(top);
  QueryResult sorted_result = database->Run(sorted);
  ASSERT_EQ(top_result.table->num_rows(), 10u);
  for (size_t r = 0; r < 10; ++r) {
    EXPECT_EQ(top_result.table->ValueAt(r, 0).AsInt64(),
              sorted_result.table->ValueAt(r, 0).AsInt64());
  }
}

TEST(TopNTest, DescendingAndMultiKey) {
  auto database = MakeRandomDb(200, 1, 20, 11, false);
  PlanPtr top = TopN(Scan("l"), {{"lk", false}, {"lv", true}}, 5);
  QueryResult result = database->Run(top);
  ASSERT_EQ(result.table->num_rows(), 5u);
  for (size_t r = 1; r < 5; ++r) {
    int64_t prev_k = result.table->ValueAt(r - 1, 0).AsInt64();
    int64_t cur_k = result.table->ValueAt(r, 0).AsInt64();
    EXPECT_GE(prev_k, cur_k);
    if (prev_k == cur_k) {
      EXPECT_LE(result.table->ValueAt(r - 1, 1).AsInt64(),
                result.table->ValueAt(r, 1).AsInt64());
    }
  }
}

TEST(TopNTest, NLargerThanInputReturnsAllSorted) {
  auto database = MakeRandomDb(20, 1, 1'000'000, 13, false);
  QueryResult result =
      database->Run(TopN(Scan("l"), {{"lk", true}}, 100));
  EXPECT_EQ(result.table->num_rows(), 20u);
  for (size_t r = 1; r < 20; ++r) {
    EXPECT_LE(result.table->ValueAt(r - 1, 0).AsInt64(),
              result.table->ValueAt(r, 0).AsInt64());
  }
}

TEST(TopNTest, DebugModeAgrees) {
  auto database = MakeRandomDb(300, 1, 1'000'000, 15, false);
  PlanPtr top = TopN(Scan("l"), {{"lk", true}}, 7);
  QueryResult optimized = database->Run(top, ExecMode::kOptimized);
  QueryResult debug = database->Run(top, ExecMode::kDebug);
  EXPECT_EQ(RowSet(*optimized.table), RowSet(*debug.table));
}

}  // namespace
}  // namespace db
}  // namespace perfeval
