#include "db/csv_loader.h"

#include <fstream>

#include <gtest/gtest.h>

namespace perfeval {
namespace db {
namespace {

TEST(CsvLoaderTest, TypeInference) {
  const std::string text =
      "id,price,when,label\n"
      "1,9.99,2020-01-31,widget\n"
      "2,19.5,2020-02-01,gadget\n";
  Result<std::shared_ptr<Table>> result = ParseCsvText(text, nullptr);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Table& table = **result;
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.schema().column(0).type, DataType::kInt64);
  EXPECT_EQ(table.schema().column(1).type, DataType::kDouble);
  EXPECT_EQ(table.schema().column(2).type, DataType::kDate);
  EXPECT_EQ(table.schema().column(3).type, DataType::kString);
  EXPECT_EQ(table.ValueAt(1, 0).AsInt64(), 2);
  EXPECT_DOUBLE_EQ(table.ValueAt(0, 1).AsDouble(), 9.99);
  EXPECT_EQ(table.ValueAt(0, 2).ToString(), "2020-01-31");
  EXPECT_EQ(table.ValueAt(1, 3).AsString(), "gadget");
}

TEST(CsvLoaderTest, IntegersPreferIntOverDouble) {
  Result<std::shared_ptr<Table>> result =
      ParseCsvText("n\n1\n2\n3\n", nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->schema().column(0).type, DataType::kInt64);
}

TEST(CsvLoaderTest, MixedIntDoubleBecomesDouble) {
  Result<std::shared_ptr<Table>> result =
      ParseCsvText("n\n1\n2.5\n", nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->schema().column(0).type, DataType::kDouble);
}

TEST(CsvLoaderTest, QuotedFieldsWithCommasAndNewlines) {
  const std::string text =
      "name,comment\n"
      "\"Smith, John\",\"said \"\"hello\"\"\nand left\"\n";
  Result<std::shared_ptr<Table>> result = ParseCsvText(text, nullptr);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Table& table = **result;
  ASSERT_EQ(table.num_rows(), 1u);
  EXPECT_EQ(table.ValueAt(0, 0).AsString(), "Smith, John");
  EXPECT_EQ(table.ValueAt(0, 1).AsString(), "said \"hello\"\nand left");
}

TEST(CsvLoaderTest, ExplicitSchemaValidatesHeaderAndTypes) {
  Schema schema({{"id", DataType::kInt64}, {"v", DataType::kDouble}});
  Result<std::shared_ptr<Table>> ok =
      ParseCsvText("id,v\n7,1.5\n", &schema);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok)->ValueAt(0, 0).AsInt64(), 7);

  Result<std::shared_ptr<Table>> bad_header =
      ParseCsvText("id,wrong\n7,1.5\n", &schema);
  ASSERT_FALSE(bad_header.ok());
  EXPECT_NE(bad_header.status().message().find("does not match"),
            std::string::npos);

  Result<std::shared_ptr<Table>> bad_value =
      ParseCsvText("id,v\nseven,1.5\n", &schema);
  ASSERT_FALSE(bad_value.ok());
  EXPECT_NE(bad_value.status().message().find("not a valid int64"),
            std::string::npos);
  EXPECT_NE(bad_value.status().message().find("row 2"), std::string::npos);
}

TEST(CsvLoaderTest, RaggedRowRejectedWithRowNumber) {
  Result<std::shared_ptr<Table>> result =
      ParseCsvText("a,b\n1,2\n3\n", nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("row 3"), std::string::npos);
}

TEST(CsvLoaderTest, BlankLinesSkippedCrLfHandled) {
  Result<std::shared_ptr<Table>> result =
      ParseCsvText("a\r\n1\r\n\r\n2\r\n", nullptr);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ((*result)->num_rows(), 2u);
}

TEST(CsvLoaderTest, UnterminatedQuoteRejected) {
  Result<std::shared_ptr<Table>> result =
      ParseCsvText("a\n\"oops\n", nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("unterminated"),
            std::string::npos);
}

// ---- Error-position regression tests: parse errors name the physical
// line (and field/column) so a bad cell in a large load is findable.

TEST(CsvLoaderTest, BadValueErrorNamesLineAndColumn) {
  Schema schema({{"id", DataType::kInt64}, {"v", DataType::kDouble}});
  // Blank lines push the bad record's physical line past its row number:
  // row 3 of the relation, but line 5 of the file.
  Result<std::shared_ptr<Table>> result =
      ParseCsvText("id,v\n1,1.5\n\n\n2,not-a-double\n", &schema);
  ASSERT_FALSE(result.ok());
  const std::string& message = result.status().message();
  EXPECT_NE(message.find("row 3"), std::string::npos) << message;
  EXPECT_NE(message.find("line 5"), std::string::npos) << message;
  EXPECT_NE(message.find("column 'v'"), std::string::npos) << message;
  EXPECT_NE(message.find("not-a-double"), std::string::npos) << message;
}

TEST(CsvLoaderTest, RaggedRowErrorNamesPhysicalLine) {
  // A quoted field spanning two lines shifts later records down: the
  // ragged row is row 3 but sits on line 4.
  Result<std::shared_ptr<Table>> result =
      ParseCsvText("a,b\n\"x\ny\",2\n3\n", nullptr);
  ASSERT_FALSE(result.ok());
  const std::string& message = result.status().message();
  EXPECT_NE(message.find("row 3"), std::string::npos) << message;
  EXPECT_NE(message.find("line 4"), std::string::npos) << message;
}

TEST(CsvLoaderTest, UnterminatedQuoteErrorNamesLineAndField) {
  Result<std::shared_ptr<Table>> result =
      ParseCsvText("a,b\n1,2\n3,\"oops\n", nullptr);
  ASSERT_FALSE(result.ok());
  const std::string& message = result.status().message();
  EXPECT_NE(message.find("line 3"), std::string::npos) << message;
  EXPECT_NE(message.find("field 2"), std::string::npos) << message;
}

TEST(CsvLoaderTest, EmptyInputRejected) {
  EXPECT_FALSE(ParseCsvText("", nullptr).ok());
}

TEST(CsvLoaderTest, LoadFromFile) {
  std::string path = ::testing::TempDir() + "/csv_loader_test.csv";
  {
    std::ofstream file(path);
    file << "k,v\n1,10\n2,20\n";
  }
  Result<std::shared_ptr<Table>> result = LoadCsv(path);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->num_rows(), 2u);
  EXPECT_EQ(LoadCsv("/no/such/file.csv").status().code(),
            StatusCode::kNotFound);
}

TEST(CsvLoaderTest, HeaderOnlyGivesEmptyStringTable) {
  Result<std::shared_ptr<Table>> result = ParseCsvText("a,b\n", nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->num_rows(), 0u);
  EXPECT_EQ((*result)->schema().column(0).type, DataType::kString);
}

TEST(CsvLoaderTest, NoTrailingNewline) {
  // Regression guard: the final record must not be dropped when the file
  // lacks the trailing newline, including when its last field is quoted.
  Result<std::shared_ptr<Table>> result =
      ParseCsvText("k,v\n1,10\n2,\"a,b\"", nullptr);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ((*result)->num_rows(), 2u);
  EXPECT_EQ((*result)->ValueAt(1, 1).AsString(), "a,b");
}

TEST(CsvLoaderTest, QuotedEmptyLineIsARecordNotBlank) {
  // Regression: a line holding only `""` parsed to the same single empty
  // field as a blank line and was silently skipped.
  Result<std::shared_ptr<Table>> result =
      ParseCsvText("name\nalpha\n\"\"\nbeta\n", nullptr);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ((*result)->num_rows(), 3u);
  EXPECT_EQ((*result)->ValueAt(1, 0).AsString(), "");
}

TEST(CsvLoaderTest, EmptyNumericFieldsLoadAsNull) {
  Result<std::shared_ptr<Table>> result =
      ParseCsvText("k,v\n1,1.5\n2,\n3,2.5\n", nullptr);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Table& table = **result;
  // The empty field neither votes on the inferred type nor poisons it.
  EXPECT_EQ(table.schema().column(1).type, DataType::kDouble);
  EXPECT_FALSE(table.column(1).IsNull(0));
  EXPECT_TRUE(table.column(1).IsNull(1));
  EXPECT_TRUE(table.ValueAt(1, 1).is_null());
  EXPECT_DOUBLE_EQ(table.ValueAt(2, 1).AsDouble(), 2.5);
}

TEST(CsvLoaderTest, WriteReadRoundTrip) {
  const std::string text =
      "id,price,when,label\n"
      "1,9.9900000000000002,2020-01-31,\"Smith, John\"\n"
      "2,,2020-02-01,\"said \"\"hi\"\"\nand left\"\n";
  Result<std::shared_ptr<Table>> first = ParseCsvText(text, nullptr);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  std::string rendered = WriteCsvText(**first);
  Result<std::shared_ptr<Table>> second = ParseCsvText(rendered, nullptr);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  const Table& a = **first;
  const Table& b = **second;
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  for (size_t c = 0; c < a.num_columns(); ++c) {
    EXPECT_EQ(a.schema().column(c).type, b.schema().column(c).type);
    for (size_t r = 0; r < a.num_rows(); ++r) {
      EXPECT_EQ(a.column(c).IsNull(r), b.column(c).IsNull(r))
          << "row " << r << " col " << c;
      if (!a.column(c).IsNull(r)) {
        EXPECT_EQ(a.ValueAt(r, c).ToString(), b.ValueAt(r, c).ToString())
            << "row " << r << " col " << c;
      }
    }
  }
}

TEST(CsvLoaderTest, WriteCsvToFileAndBack) {
  std::string path = ::testing::TempDir() + "/csv_writer_test.csv";
  Result<std::shared_ptr<Table>> original =
      ParseCsvText("k,v\n1,alpha\n2,\"beta,gamma\"\n", nullptr);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(WriteCsv(**original, path).ok());
  Result<std::shared_ptr<Table>> reloaded = LoadCsv(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  ASSERT_EQ((*reloaded)->num_rows(), 2u);
  EXPECT_EQ((*reloaded)->ValueAt(1, 1).AsString(), "beta,gamma");
}

}  // namespace
}  // namespace db
}  // namespace perfeval
