#include "db/csv_loader.h"

#include <fstream>

#include <gtest/gtest.h>

namespace perfeval {
namespace db {
namespace {

TEST(CsvLoaderTest, TypeInference) {
  const std::string text =
      "id,price,when,label\n"
      "1,9.99,2020-01-31,widget\n"
      "2,19.5,2020-02-01,gadget\n";
  Result<std::shared_ptr<Table>> result = ParseCsvText(text, nullptr);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Table& table = **result;
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.schema().column(0).type, DataType::kInt64);
  EXPECT_EQ(table.schema().column(1).type, DataType::kDouble);
  EXPECT_EQ(table.schema().column(2).type, DataType::kDate);
  EXPECT_EQ(table.schema().column(3).type, DataType::kString);
  EXPECT_EQ(table.ValueAt(1, 0).AsInt64(), 2);
  EXPECT_DOUBLE_EQ(table.ValueAt(0, 1).AsDouble(), 9.99);
  EXPECT_EQ(table.ValueAt(0, 2).ToString(), "2020-01-31");
  EXPECT_EQ(table.ValueAt(1, 3).AsString(), "gadget");
}

TEST(CsvLoaderTest, IntegersPreferIntOverDouble) {
  Result<std::shared_ptr<Table>> result =
      ParseCsvText("n\n1\n2\n3\n", nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->schema().column(0).type, DataType::kInt64);
}

TEST(CsvLoaderTest, MixedIntDoubleBecomesDouble) {
  Result<std::shared_ptr<Table>> result =
      ParseCsvText("n\n1\n2.5\n", nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->schema().column(0).type, DataType::kDouble);
}

TEST(CsvLoaderTest, QuotedFieldsWithCommasAndNewlines) {
  const std::string text =
      "name,comment\n"
      "\"Smith, John\",\"said \"\"hello\"\"\nand left\"\n";
  Result<std::shared_ptr<Table>> result = ParseCsvText(text, nullptr);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Table& table = **result;
  ASSERT_EQ(table.num_rows(), 1u);
  EXPECT_EQ(table.ValueAt(0, 0).AsString(), "Smith, John");
  EXPECT_EQ(table.ValueAt(0, 1).AsString(), "said \"hello\"\nand left");
}

TEST(CsvLoaderTest, ExplicitSchemaValidatesHeaderAndTypes) {
  Schema schema({{"id", DataType::kInt64}, {"v", DataType::kDouble}});
  Result<std::shared_ptr<Table>> ok =
      ParseCsvText("id,v\n7,1.5\n", &schema);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok)->ValueAt(0, 0).AsInt64(), 7);

  Result<std::shared_ptr<Table>> bad_header =
      ParseCsvText("id,wrong\n7,1.5\n", &schema);
  ASSERT_FALSE(bad_header.ok());
  EXPECT_NE(bad_header.status().message().find("does not match"),
            std::string::npos);

  Result<std::shared_ptr<Table>> bad_value =
      ParseCsvText("id,v\nseven,1.5\n", &schema);
  ASSERT_FALSE(bad_value.ok());
  EXPECT_NE(bad_value.status().message().find("not a valid int64"),
            std::string::npos);
  EXPECT_NE(bad_value.status().message().find("row 2"), std::string::npos);
}

TEST(CsvLoaderTest, RaggedRowRejectedWithRowNumber) {
  Result<std::shared_ptr<Table>> result =
      ParseCsvText("a,b\n1,2\n3\n", nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("row 3"), std::string::npos);
}

TEST(CsvLoaderTest, BlankLinesSkippedCrLfHandled) {
  Result<std::shared_ptr<Table>> result =
      ParseCsvText("a\r\n1\r\n\r\n2\r\n", nullptr);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ((*result)->num_rows(), 2u);
}

TEST(CsvLoaderTest, UnterminatedQuoteRejected) {
  Result<std::shared_ptr<Table>> result =
      ParseCsvText("a\n\"oops\n", nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("unterminated"),
            std::string::npos);
}

TEST(CsvLoaderTest, EmptyInputRejected) {
  EXPECT_FALSE(ParseCsvText("", nullptr).ok());
}

TEST(CsvLoaderTest, LoadFromFile) {
  std::string path = ::testing::TempDir() + "/csv_loader_test.csv";
  {
    std::ofstream file(path);
    file << "k,v\n1,10\n2,20\n";
  }
  Result<std::shared_ptr<Table>> result = LoadCsv(path);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->num_rows(), 2u);
  EXPECT_EQ(LoadCsv("/no/such/file.csv").status().code(),
            StatusCode::kNotFound);
}

TEST(CsvLoaderTest, HeaderOnlyGivesEmptyStringTable) {
  Result<std::shared_ptr<Table>> result = ParseCsvText("a,b\n", nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->num_rows(), 0u);
  EXPECT_EQ((*result)->schema().column(0).type, DataType::kString);
}

}  // namespace
}  // namespace db
}  // namespace perfeval
