#include "core/runner.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace perfeval {
namespace core {
namespace {

doe::Design TwoByTwo() {
  return doe::TwoLevelFullFactorial({doe::Factor::TwoLevel("A", "lo", "hi"),
                                     doe::Factor::TwoLevel("B", "lo", "hi")});
}

/// A deterministic fake system under test: the "measured" time is a
/// function of the configuration plus warm-up state.
struct FakeSystem {
  int runs_since_flush = 0;
  int total_runs = 0;
  int flushes = 0;

  Measurement Run(const doe::DesignPoint& point) {
    ++total_runs;
    ++runs_since_flush;
    Measurement m;
    int64_t base = 100 + 50 * static_cast<int64_t>(point.levels[0]) +
                   20 * static_cast<int64_t>(point.levels[1]);
    m.real_ns = base * 1'000'000;
    m.user_ns = base * 900'000;
    // First run after a flush pays simulated I/O (cold).
    m.simulated_stall_ns = runs_since_flush == 1 ? 500'000'000 : 0;
    return m;
  }

  void Flush() {
    runs_since_flush = 0;
    ++flushes;
  }
};

TEST(RunnerTest, HotProtocolRunsWarmupsUnmeasured) {
  FakeSystem system;
  system.runs_since_flush = 0;
  RunProtocol protocol;
  protocol.warmup_runs = 2;
  protocol.measured_runs = 3;
  ExperimentRunner runner(protocol, ResponseMetric::kObservedRealMs);
  doe::Design design = TwoByTwo();
  ExperimentResult result = runner.Run(
      design, [&](const doe::DesignPoint& p) { return system.Run(p); });
  ASSERT_EQ(result.runs.size(), 4u);
  // 4 points x (2 warmup + 3 measured).
  EXPECT_EQ(system.total_runs, 20);
  for (const RunResult& run : result.runs) {
    EXPECT_EQ(run.responses.size(), 3u);
  }
}

TEST(RunnerTest, ColdProtocolFlushesBeforeEveryMeasuredRun) {
  FakeSystem system;
  RunProtocol protocol = RunProtocol::Cold(3);
  ExperimentRunner runner(protocol, ResponseMetric::kObservedRealMs);
  runner.set_flush_hook([&] { system.Flush(); });
  doe::Design design = TwoByTwo();
  ExperimentResult result = runner.Run(
      design, [&](const doe::DesignPoint& p) { return system.Run(p); });
  EXPECT_EQ(system.flushes, 12);  // 4 points x 3 measured runs.
  // Every measured cold run pays the stall: observed >> user-only view.
  for (const RunResult& run : result.runs) {
    for (const Measurement& m : run.measurements) {
      EXPECT_EQ(m.simulated_stall_ns, 500'000'000);
    }
  }
}

TEST(RunnerTest, HotRunsAfterWarmupPayNoStall) {
  FakeSystem system;
  RunProtocol protocol;
  protocol.warmup_runs = 1;
  protocol.measured_runs = 2;
  ExperimentRunner runner(protocol, ResponseMetric::kObservedRealMs);
  doe::Design design = TwoByTwo();
  ExperimentResult result = runner.Run(
      design, [&](const doe::DesignPoint& p) { return system.Run(p); });
  for (const RunResult& run : result.runs) {
    for (const Measurement& m : run.measurements) {
      EXPECT_EQ(m.simulated_stall_ns, 0);
    }
  }
}

TEST(RunnerTest, ResponsesFollowConfiguration) {
  FakeSystem system;
  system.runs_since_flush = 5;  // warm
  RunProtocol protocol;
  protocol.warmup_runs = 0;
  protocol.measured_runs = 1;
  protocol.aggregation = Aggregation::kLast;
  ExperimentRunner runner(protocol, ResponseMetric::kUserMs);
  doe::Design design = TwoByTwo();
  ExperimentResult result = runner.Run(
      design, [&](const doe::DesignPoint& p) { return system.Run(p); });
  std::vector<double> y = result.AggregatedResponses();
  ASSERT_EQ(y.size(), 4u);
  // user_ms = 0.9 * (100 + 50*a + 20*b).
  EXPECT_NEAR(y[0], 90.0, 1e-9);
  EXPECT_NEAR(y[1], 135.0, 1e-9);
  EXPECT_NEAR(y[2], 108.0, 1e-9);
  EXPECT_NEAR(y[3], 153.0, 1e-9);
}

TEST(RunnerTest, ConfidenceIntervalPresentWithReplication) {
  FakeSystem system;
  system.runs_since_flush = 5;
  RunProtocol protocol;
  protocol.warmup_runs = 0;
  protocol.measured_runs = 3;
  ExperimentRunner runner(protocol, ResponseMetric::kRealMs);
  ExperimentResult result = runner.Run(TwoByTwo(), [&](const auto& p) {
    return system.Run(p);
  });
  for (const RunResult& run : result.runs) {
    ASSERT_TRUE(run.confidence.has_value());
    EXPECT_TRUE(run.confidence->Contains(run.aggregated));
  }
}

TEST(RunnerTest, ResultTableMentionsProtocolAndLevels) {
  FakeSystem system;
  RunProtocol protocol;
  ExperimentRunner runner(protocol, ResponseMetric::kRealMs);
  doe::Design design = TwoByTwo();
  ExperimentResult result = runner.Run(
      design, [&](const doe::DesignPoint& p) { return system.Run(p); });
  std::string table = result.ToTable(design);
  EXPECT_NE(table.find("protocol:"), std::string::npos);
  EXPECT_NE(table.find("hi"), std::string::npos);
}

TEST(RunnerTest, MeasureSingleAggregates) {
  RunProtocol protocol;
  protocol.warmup_runs = 0;
  protocol.measured_runs = 3;
  protocol.aggregation = Aggregation::kMin;
  ExperimentRunner runner(protocol, ResponseMetric::kRealMs);
  int call = 0;
  RunResult run = runner.MeasureSingle([&] {
    ++call;
    Measurement m;
    m.real_ns = call * 1'000'000;  // 1ms, 2ms, 3ms.
    return m;
  });
  EXPECT_EQ(call, 3);
  EXPECT_NEAR(run.aggregated, 1.0, 1e-9);
}


TEST(RunnerTest, OutlierRunsAreFlagged) {
  RunProtocol protocol;
  protocol.warmup_runs = 0;
  protocol.measured_runs = 8;
  ExperimentRunner runner(protocol, ResponseMetric::kRealMs);
  int call = 0;
  RunResult run = runner.MeasureSingle([&] {
    ++call;
    Measurement m;
    // Seven quiet runs and one spike (run index 4).
    m.real_ns = call == 5 ? 90'000'000 : 10'000'000 + call * 10'000;
    return m;
  });
  ASSERT_EQ(run.outlier_runs.size(), 1u);
  EXPECT_EQ(run.outlier_runs[0], 4u);
}

TEST(RunnerTest, NoOutliersOnQuietRuns) {
  RunProtocol protocol;
  protocol.warmup_runs = 0;
  protocol.measured_runs = 6;
  ExperimentRunner runner(protocol, ResponseMetric::kRealMs);
  RunResult run = runner.MeasureSingle([&] {
    Measurement m;
    m.real_ns = 10'000'000;
    return m;
  });
  EXPECT_TRUE(run.outlier_runs.empty());
}

Measurement RealMs(double ms) {
  Measurement m;
  m.real_ns = static_cast<int64_t>(ms * 1e6);
  return m;
}

TEST(AssembleRunResultTest, BookkeepingDependsOnlyOnResponses) {
  // Pin for the parallel path: aggregation, the confidence interval and
  // the outlier fences are pure functions of the response vector. Feeding
  // the same measurements through AssembleRunResult must reproduce what
  // the serial loop computed — this is what makes reassembly after a
  // parallel schedule bit-identical.
  RunProtocol protocol;
  protocol.warmup_runs = 0;
  protocol.measured_runs = 8;
  protocol.aggregation = Aggregation::kMedian;
  std::vector<Measurement> measurements;
  for (int i = 0; i < 8; ++i) {
    measurements.push_back(RealMs(i == 5 ? 90.0 : 10.0 + 0.01 * i));
  }
  RunResult direct = AssembleRunResult(protocol, ResponseMetric::kRealMs,
                                       doe::DesignPoint{}, measurements);
  ExperimentRunner runner(protocol, ResponseMetric::kRealMs);
  int call = 0;
  RunResult serial =
      runner.MeasureSingle([&] { return measurements[call++]; });
  EXPECT_EQ(direct.responses, serial.responses);
  EXPECT_EQ(direct.aggregated, serial.aggregated);
  EXPECT_EQ(direct.outlier_runs, serial.outlier_runs);
  ASSERT_TRUE(direct.confidence.has_value());
  ASSERT_TRUE(serial.confidence.has_value());
  EXPECT_EQ(direct.confidence->mean, serial.confidence->mean);
  EXPECT_EQ(direct.confidence->lower, serial.confidence->lower);
  EXPECT_EQ(direct.confidence->upper, serial.confidence->upper);
  // And the flagged outlier is the spike we injected.
  ASSERT_EQ(direct.outlier_runs.size(), 1u);
  EXPECT_EQ(direct.outlier_runs[0], 5u);
}

TEST(AssembleRunResultTest, FewSamplesSkipIntervalAndFences) {
  RunProtocol protocol;
  protocol.measured_runs = 1;
  RunResult one = AssembleRunResult(protocol, ResponseMetric::kRealMs,
                                    doe::DesignPoint{}, {RealMs(5.0)});
  EXPECT_FALSE(one.confidence.has_value());
  EXPECT_TRUE(one.outlier_runs.empty());
  EXPECT_DOUBLE_EQ(one.aggregated, 5.0);
}

/// Minimal TrialExecutor that runs the batch in reverse, as a stand-in for
/// an arbitrary schedule. Reassembly must put results back in design order.
class ReverseExecutor : public TrialExecutor {
 public:
  Status ExecuteTrials(
      const std::vector<TrialSpec>& trials,
      const std::function<Measurement(const TrialSpec&)>& run_trial,
      const std::function<void(const TrialSpec&, const Measurement&)>& record)
      override {
    for (auto it = trials.rbegin(); it != trials.rend(); ++it) {
      record(*it, run_trial(*it));
    }
    return Status::OK();
  }
};

TEST(RunnerTest, ExecutorPathMatchesSerialPath) {
  FakeSystem serial_system;
  serial_system.runs_since_flush = 5;  // warm
  RunProtocol protocol;
  protocol.warmup_runs = 0;
  protocol.measured_runs = 2;
  protocol.aggregation = Aggregation::kMean;
  ExperimentRunner runner(protocol, ResponseMetric::kUserMs);
  doe::Design design = TwoByTwo();
  ExperimentResult serial = runner.Run(
      design, [&](const doe::DesignPoint& p) { return serial_system.Run(p); });

  ReverseExecutor executor;
  Result<ExperimentResult> scheduled = runner.Run(
      design,
      [](const doe::DesignPoint& p, const TrialSpec&) {
        FakeSystem per_trial;
        per_trial.runs_since_flush = 5;
        return per_trial.Run(p);
      },
      executor);
  ASSERT_TRUE(scheduled.ok());
  EXPECT_EQ(scheduled->AggregatedResponses(), serial.AggregatedResponses());
}

TEST(RunnerTest, ExecutorTrialsCarryDistinctSeeds) {
  RunProtocol protocol;
  protocol.warmup_runs = 0;
  protocol.measured_runs = 3;
  ExperimentRunner runner(protocol, ResponseMetric::kRealMs);
  runner.set_trial_seed_base(0x1234);
  std::vector<uint64_t> seeds;
  ReverseExecutor executor;
  Result<ExperimentResult> result = runner.Run(
      TwoByTwo(),
      [&](const doe::DesignPoint&, const TrialSpec& spec) {
        seeds.push_back(spec.seed);
        return RealMs(1.0);
      },
      executor);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(seeds.size(), 12u);  // 4 points x 3 reps.
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

TEST(ResponseMetricTest, ExtractionMatchesFields) {
  Measurement m;
  m.real_ns = 2'000'000;
  m.user_ns = 1'000'000;
  m.simulated_stall_ns = 3'000'000;
  EXPECT_DOUBLE_EQ(ExtractResponse(ResponseMetric::kRealMs, m), 2.0);
  EXPECT_DOUBLE_EQ(ExtractResponse(ResponseMetric::kUserMs, m), 1.0);
  EXPECT_DOUBLE_EQ(ExtractResponse(ResponseMetric::kObservedRealMs, m), 5.0);
}

}  // namespace
}  // namespace core
}  // namespace perfeval
