#include "core/run_protocol.h"

#include <gtest/gtest.h>

namespace perfeval {
namespace core {
namespace {

TEST(RunProtocolTest, PaperDefaultIsLastOfThreeHotRuns) {
  RunProtocol protocol = RunProtocol::PaperDefault();
  EXPECT_EQ(protocol.thermal, ThermalState::kHot);
  EXPECT_EQ(protocol.measured_runs, 3);
  EXPECT_EQ(protocol.aggregation, Aggregation::kLast);
}

TEST(RunProtocolTest, ColdFactory) {
  RunProtocol protocol = RunProtocol::Cold(5);
  EXPECT_EQ(protocol.thermal, ThermalState::kCold);
  EXPECT_EQ(protocol.warmup_runs, 0);
  EXPECT_EQ(protocol.measured_runs, 5);
}

TEST(RunProtocolTest, DescribeDocumentsTheChoice) {
  // "Be aware and document what you do / choose" (slide 32).
  std::string hot = RunProtocol::PaperDefault().Describe();
  EXPECT_NE(hot.find("hot"), std::string::npos);
  EXPECT_NE(hot.find("3 measured"), std::string::npos);
  EXPECT_NE(hot.find("last"), std::string::npos);
  std::string cold = RunProtocol::Cold(4).Describe();
  EXPECT_NE(cold.find("cold"), std::string::npos);
  EXPECT_NE(cold.find("flushed"), std::string::npos);
}

TEST(AggregateTest, AllPolicies) {
  std::vector<double> samples = {30.0, 10.0, 20.0};
  EXPECT_DOUBLE_EQ(Aggregate(Aggregation::kLast, samples), 20.0);
  EXPECT_DOUBLE_EQ(Aggregate(Aggregation::kMin, samples), 10.0);
  EXPECT_DOUBLE_EQ(Aggregate(Aggregation::kMean, samples), 20.0);
  EXPECT_DOUBLE_EQ(Aggregate(Aggregation::kMedian, samples), 20.0);
}

TEST(AggregateTest, SingleSample) {
  std::vector<double> one = {42.0};
  for (Aggregation agg : {Aggregation::kLast, Aggregation::kMin,
                          Aggregation::kMean, Aggregation::kMedian}) {
    EXPECT_DOUBLE_EQ(Aggregate(agg, one), 42.0);
  }
}

TEST(AggregateDeathTest, EmptySamplesAbort) {
  EXPECT_DEATH(Aggregate(Aggregation::kMean, {}), "CHECK failed");
}

TEST(NamesTest, StableStrings) {
  EXPECT_STREQ(ThermalStateName(ThermalState::kCold), "cold");
  EXPECT_STREQ(ThermalStateName(ThermalState::kHot), "hot");
  EXPECT_STREQ(AggregationName(Aggregation::kMedian), "median");
}

}  // namespace
}  // namespace core
}  // namespace perfeval
