#include "core/run_protocol.h"

#include <gtest/gtest.h>

namespace perfeval {
namespace core {
namespace {

TEST(RunProtocolTest, PaperDefaultIsLastOfThreeHotRuns) {
  RunProtocol protocol = RunProtocol::PaperDefault();
  EXPECT_EQ(protocol.thermal, ThermalState::kHot);
  EXPECT_EQ(protocol.measured_runs, 3);
  EXPECT_EQ(protocol.aggregation, Aggregation::kLast);
}

TEST(RunProtocolTest, ColdFactory) {
  RunProtocol protocol = RunProtocol::Cold(5);
  EXPECT_EQ(protocol.thermal, ThermalState::kCold);
  EXPECT_EQ(protocol.warmup_runs, 0);
  EXPECT_EQ(protocol.measured_runs, 5);
}

TEST(RunProtocolTest, DescribeDocumentsTheChoice) {
  // "Be aware and document what you do / choose" (slide 32).
  std::string hot = RunProtocol::PaperDefault().Describe();
  EXPECT_NE(hot.find("hot"), std::string::npos);
  EXPECT_NE(hot.find("3 measured"), std::string::npos);
  EXPECT_NE(hot.find("last"), std::string::npos);
  std::string cold = RunProtocol::Cold(4).Describe();
  EXPECT_NE(cold.find("cold"), std::string::npos);
  EXPECT_NE(cold.find("flushed"), std::string::npos);
}

TEST(RunProtocolTest, DescribeDocumentsTheSchedule) {
  // The schedule is part of the protocol: jobs, run order and isolation
  // must appear in the documented description.
  RunProtocol protocol = RunProtocol::PaperDefault();
  std::string serial = protocol.Describe();
  EXPECT_NE(serial.find("1 job(s)"), std::string::npos) << serial;
  EXPECT_NE(serial.find("design order"), std::string::npos) << serial;
  EXPECT_NE(serial.find("exclusive trials"), std::string::npos) << serial;

  protocol.schedule.jobs = 4;
  protocol.schedule.order = RunOrder::kRandomized;
  protocol.schedule.seed = 7;
  protocol.schedule.isolation = IsolationPolicy::kConcurrent;
  std::string parallel = protocol.Describe();
  EXPECT_NE(parallel.find("4 job(s)"), std::string::npos) << parallel;
  EXPECT_NE(parallel.find("randomized order (seed 7)"), std::string::npos)
      << parallel;
  EXPECT_NE(parallel.find("concurrent trials"), std::string::npos) << parallel;
}

TEST(ScheduleSpecTest, SeedOnlyShownForRandomizedOrder) {
  ScheduleSpec spec;
  spec.seed = 9;
  EXPECT_EQ(spec.Describe().find("seed"), std::string::npos);
  spec.order = RunOrder::kInterleaved;
  EXPECT_EQ(spec.Describe().find("seed"), std::string::npos);
  spec.order = RunOrder::kRandomized;
  EXPECT_NE(spec.Describe().find("seed 9"), std::string::npos);
}

TEST(AggregateTest, AllPolicies) {
  std::vector<double> samples = {30.0, 10.0, 20.0};
  EXPECT_DOUBLE_EQ(Aggregate(Aggregation::kLast, samples), 20.0);
  EXPECT_DOUBLE_EQ(Aggregate(Aggregation::kMin, samples), 10.0);
  EXPECT_DOUBLE_EQ(Aggregate(Aggregation::kMean, samples), 20.0);
  EXPECT_DOUBLE_EQ(Aggregate(Aggregation::kMedian, samples), 20.0);
}

TEST(AggregateTest, SingleSample) {
  std::vector<double> one = {42.0};
  for (Aggregation agg : {Aggregation::kLast, Aggregation::kMin,
                          Aggregation::kMean, Aggregation::kMedian}) {
    EXPECT_DOUBLE_EQ(Aggregate(agg, one), 42.0);
  }
}

TEST(AggregateDeathTest, EmptySamplesAbort) {
  EXPECT_DEATH(Aggregate(Aggregation::kMean, {}), "CHECK failed");
}

TEST(NamesTest, StableStrings) {
  EXPECT_STREQ(ThermalStateName(ThermalState::kCold), "cold");
  EXPECT_STREQ(ThermalStateName(ThermalState::kHot), "hot");
  EXPECT_STREQ(AggregationName(Aggregation::kMedian), "median");
}

}  // namespace
}  // namespace core
}  // namespace perfeval
