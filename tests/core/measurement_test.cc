#include "core/measurement.h"

#include <gtest/gtest.h>

namespace perfeval {
namespace core {
namespace {

TEST(MeasurementTest, ObservedRealAddsSimulatedStall) {
  Measurement m;
  m.real_ns = 2'000'000;
  m.simulated_stall_ns = 3'000'000;
  EXPECT_EQ(m.ObservedRealNs(), 5'000'000);
  EXPECT_DOUBLE_EQ(m.ObservedRealMs(), 5.0);
}

TEST(MeasurementTest, AdditionIsComponentwise) {
  Measurement a{10, 6, 1, 100};
  Measurement b{5, 3, 1, 50};
  Measurement sum = a + b;
  EXPECT_EQ(sum.real_ns, 15);
  EXPECT_EQ(sum.user_ns, 9);
  EXPECT_EQ(sum.sys_ns, 2);
  EXPECT_EQ(sum.simulated_stall_ns, 150);
}

TEST(MeasurementTest, MeasureOnceTimesTheBody) {
  Measurement m = MeasureOnce([] {
    volatile double sink = 0.0;
    for (int i = 0; i < 3'000'000; ++i) {
      sink += i * 1e-9;
    }
  });
  EXPECT_GT(m.real_ns, 100'000);    // a few million FLOPs > 0.1 ms.
  EXPECT_EQ(m.simulated_stall_ns, 0);  // caller's responsibility.
}

TEST(MeasurementTest, ToStringShowsObservedAndMeasured) {
  Measurement m{1'000'000, 900'000, 50'000, 2'000'000};
  std::string text = m.ToString();
  EXPECT_NE(text.find("real=1.000ms"), std::string::npos);
  EXPECT_NE(text.find("observed 3.000ms"), std::string::npos);
}

}  // namespace
}  // namespace core
}  // namespace perfeval
