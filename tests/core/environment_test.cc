#include "core/environment.h"

#include <gtest/gtest.h>

namespace perfeval {
namespace core {
namespace {

TEST(EnvironmentTest, CaptureFillsSoftwareFields) {
  EnvironmentSpec spec = CaptureEnvironment();
  EXPECT_FALSE(spec.compiler.empty());
  EXPECT_FALSE(spec.build_type.empty());
  EXPECT_FALSE(spec.library_version.empty());
  EXPECT_FALSE(spec.os.empty());
  EXPECT_GE(spec.num_cpus, 1);
}

TEST(EnvironmentTest, CaptureFillsHardwareFieldsOnLinux) {
  EnvironmentSpec spec = CaptureEnvironment();
  // /proc/meminfo always exists on Linux.
  EXPECT_GT(spec.ram_mb, 0);
}

TEST(EnvironmentTest, ReportHasTheRightGranularity) {
  // The slide-149/155 rule: the report must name CPU, memory, OS,
  // compiler — no more, no less.
  EnvironmentSpec spec;
  spec.cpu_model = "Intel(R) Pentium(R) M processor 1.50GHz";
  spec.cpu_mhz = 1500.0;
  spec.cache_kb = 2048;
  spec.num_cpus = 1;
  spec.ram_mb = 2048;
  spec.os = "Linux 2.6";
  spec.compiler = "gcc 3.4";
  spec.build_type = "optimized";
  spec.library_version = "perfeval 1.0.0";
  std::string report = spec.ToReportString();
  EXPECT_NE(report.find("Pentium"), std::string::npos);
  EXPECT_NE(report.find("2048 KB cache"), std::string::npos);
  EXPECT_NE(report.find("2048 MB RAM"), std::string::npos);
  EXPECT_NE(report.find("gcc 3.4"), std::string::npos);
  // Not an lspci dump: a handful of lines only (over-specification check).
  int lines = 0;
  for (char c : report) {
    lines += c == '\n' ? 1 : 0;
  }
  EXPECT_LE(lines, 8);
}

TEST(EnvironmentTest, UnderSpecifiedSpecIsNotPublishable) {
  // "We use a machine with 3.4 GHz" (slide 149) is under-specified.
  EnvironmentSpec spec;
  spec.cpu_mhz = 3400.0;
  EXPECT_FALSE(spec.IsPublishable());
}

TEST(EnvironmentTest, CompleteSpecIsPublishable) {
  EnvironmentSpec spec;
  spec.cpu_model = "test";
  spec.cpu_mhz = 1000.0;
  spec.cache_kb = 512;
  spec.ram_mb = 1024;
  spec.os = "Linux";
  spec.compiler = "gcc";
  EXPECT_TRUE(spec.IsPublishable());
}

}  // namespace
}  // namespace core
}  // namespace perfeval
