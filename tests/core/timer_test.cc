#include "core/timer.h"

#include <gtest/gtest.h>

namespace perfeval {
namespace core {
namespace {

TEST(WallTimerTest, ElapsedIsNonNegativeAndMonotone) {
  WallTimer timer;
  int64_t first = timer.ElapsedNs();
  int64_t second = timer.ElapsedNs();
  EXPECT_GE(first, 0);
  EXPECT_GE(second, first);
}

TEST(WallTimerTest, MeasuresRealWork) {
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 1000000; ++i) {
    sink += i * 0.5;
  }
  // A million FLOPs cannot complete in under a microsecond on anything.
  EXPECT_GT(timer.ElapsedNs(), 1000);
  (void)sink;
}

TEST(WallTimerTest, RestartResets) {
  WallTimer timer;
  volatile int sink = 0;
  for (int i = 0; i < 100000; ++i) {
    sink += i;
  }
  int64_t before_restart = timer.ElapsedNs();
  timer.Restart();
  EXPECT_LT(timer.ElapsedNs(), before_restart + 1000000);
  (void)sink;
}

TEST(WallTimerTest, UnitConversions) {
  WallTimer timer;
  double ms = timer.ElapsedMs();
  double s = timer.ElapsedSeconds();
  EXPECT_GE(ms, 0.0);
  EXPECT_GE(s, 0.0);
  EXPECT_LE(s, 1.0);  // constructing and reading takes well under a second.
}

TEST(TimerCalibrationTest, ResolutionIsPositiveAndSane) {
  int64_t resolution = MeasureTimerResolutionNs();
  EXPECT_GT(resolution, 0);
  // steady_clock on Linux resolves far better than the 10ms the paper
  // warns about for timeGetTime.
  EXPECT_LT(resolution, 10'000'000);
}

TEST(TimerCalibrationTest, OverheadIsSmall) {
  double overhead = MeasureTimerOverheadNs();
  EXPECT_GT(overhead, 0.0);
  EXPECT_LT(overhead, 10'000.0);  // < 10us per reading.
}

}  // namespace
}  // namespace core
}  // namespace perfeval
