#include "core/metrics.h"

#include <gtest/gtest.h>

namespace perfeval {
namespace core {
namespace {

TEST(ThroughputTest, QueriesPerSecond) {
  // 100 queries in 2 seconds = 50 qps.
  EXPECT_DOUBLE_EQ(ThroughputPerSecond(100, 2'000'000'000), 50.0);
}

TEST(ThroughputTest, SubSecondInterval) {
  EXPECT_DOUBLE_EQ(ThroughputPerSecond(10, 1'000'000), 10'000'000.0 / 1000);
}

TEST(ThroughputDeathTest, ZeroElapsedAborts) {
  EXPECT_DEATH(ThroughputPerSecond(1, 0), "CHECK failed");
}

TEST(FormatBytesTest, UnitsScale) {
  EXPECT_EQ(FormatBytes(512), "512B");
  EXPECT_EQ(FormatBytes(2048), "2.0KB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3.0MB");
  EXPECT_EQ(FormatBytes(int64_t{5} * 1024 * 1024 * 1024), "5.0GB");
}

TEST(FormatMsTest, AdaptivePrecision) {
  EXPECT_EQ(FormatMs(3534.2), "3534 ms");
  EXPECT_EQ(FormatMs(12.34), "12.3 ms");
  EXPECT_EQ(FormatMs(0.273), "0.273 ms");
}

TEST(SeriesTest, AppendKeepsParallelArrays) {
  Series series;
  series.name = "Q1";
  series.Append(1.0, 10.0);
  series.AppendWithError(2.0, 20.0, 1.5);
  EXPECT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series.x[1], 2.0);
  EXPECT_DOUBLE_EQ(series.y[1], 20.0);
  ASSERT_EQ(series.y_error.size(), 1u);
  EXPECT_DOUBLE_EQ(series.y_error[0], 1.5);
}

}  // namespace
}  // namespace core
}  // namespace perfeval
