#include "core/noise.h"

#include <gtest/gtest.h>

namespace perfeval {
namespace core {
namespace {

TEST(NoiseTest, ReportFieldsAreSane) {
  NoiseReport report = MeasureNoiseFloor(10, 200'000);
  EXPECT_EQ(report.samples, 10);
  EXPECT_GT(report.median_ns, 0.0);
  EXPECT_GE(report.p95_ns, report.median_ns);
  EXPECT_GE(report.p95_over_median, 1.0);
  EXPECT_GE(report.coefficient_of_variation, 0.0);
  EXPECT_GT(report.timer_resolution_ns, 0);
}

TEST(NoiseTest, QuietnessThreshold) {
  NoiseReport report;
  report.coefficient_of_variation = 0.02;
  EXPECT_TRUE(report.IsQuiet());
  EXPECT_FALSE(report.IsQuiet(0.01));
  report.coefficient_of_variation = 0.5;
  EXPECT_FALSE(report.IsQuiet());
}

TEST(NoiseTest, ToStringStatesVerdict) {
  NoiseReport quiet;
  quiet.coefficient_of_variation = 0.01;
  quiet.median_ns = 1e6;
  quiet.p95_ns = 1.05e6;
  quiet.p95_over_median = 1.05;
  EXPECT_NE(quiet.ToString().find("quiet enough"), std::string::npos);
  NoiseReport noisy = quiet;
  noisy.coefficient_of_variation = 0.4;
  EXPECT_NE(noisy.ToString().find("NOISY"), std::string::npos);
}

TEST(NoiseDeathTest, RejectsTooFewSamples) {
  EXPECT_DEATH(MeasureNoiseFloor(2, 200'000), "CHECK failed");
}

}  // namespace
}  // namespace core
}  // namespace perfeval
