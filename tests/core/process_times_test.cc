#include "core/process_times.h"

#include <gtest/gtest.h>

namespace perfeval {
namespace core {
namespace {

TEST(ProcessTimesTest, SnapshotsAreMonotone) {
  ProcessTimes a = ProcessTimes::Now();
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) {
    sink += i * 1e-9;
  }
  ProcessTimes b = ProcessTimes::Now();
  ProcessTimes delta = b - a;
  EXPECT_GE(delta.real_ns, 0);
  EXPECT_GE(delta.user_ns, 0);
  EXPECT_GE(delta.sys_ns, 0);
  (void)sink;
}

TEST(ProcessTimesTest, CpuBoundWorkShowsUpAsUserTime) {
  ProcessTimes before = ProcessTimes::Now();
  volatile double sink = 0.0;
  // ~50ms of arithmetic.
  for (int i = 0; i < 30000000; ++i) {
    sink += i * 1e-9;
  }
  ProcessTimes delta = ProcessTimes::Now() - before;
  // A CPU-bound loop accrues user time, not system time (the slide-22
  // distinction). Assert on the CPU split rather than user/real: under
  // parallel ctest on a small box the process may be descheduled for
  // most of the wall time, but user time counts only while running.
  EXPECT_GT(delta.user_ns, 10'000'000);  // >=10ms of a ~50ms loop.
  EXPECT_GT(delta.user_ns, delta.sys_ns);
  EXPECT_GE(delta.real_ns, delta.user_ns);
  (void)sink;
}

TEST(ProcessTimesTest, ArithmeticIsComponentwise) {
  ProcessTimes a{100, 60, 10};
  ProcessTimes b{40, 30, 5};
  ProcessTimes sum = a + b;
  ProcessTimes diff = a - b;
  EXPECT_EQ(sum.real_ns, 140);
  EXPECT_EQ(sum.user_ns, 90);
  EXPECT_EQ(sum.sys_ns, 15);
  EXPECT_EQ(diff.real_ns, 60);
  EXPECT_EQ(diff.user_ns, 30);
  EXPECT_EQ(diff.sys_ns, 5);
}

TEST(ProcessTimesTest, MillisecondAccessors) {
  ProcessTimes t{2'500'000, 1'000'000, 500'000};
  EXPECT_DOUBLE_EQ(t.real_ms(), 2.5);
  EXPECT_DOUBLE_EQ(t.user_ms(), 1.0);
  EXPECT_DOUBLE_EQ(t.sys_ms(), 0.5);
}

TEST(ProcessTimesTest, ToStringHasAllThreeTimes) {
  std::string text = ProcessTimes{1000000, 2000000, 3000000}.ToString();
  EXPECT_NE(text.find("real="), std::string::npos);
  EXPECT_NE(text.find("user="), std::string::npos);
  EXPECT_NE(text.find("sys="), std::string::npos);
}

}  // namespace
}  // namespace core
}  // namespace perfeval
