// Sharded differential oracle (DESIGN.md S16): all 22 TPC-H queries run
// scatter-gather across 2- and 4-shard clusters, swept over execution
// modes and join algorithms on the shard engines, and each merged result
// is diffed against the single-node engine. The distributed path — hash
// partitioning, fragment extraction, partial-aggregate merging, residual
// execution — shares none of its merge logic with single-node execution,
// so agreement here localizes distribution bugs the same way the
// reference oracle localizes engine bugs.
//
// Comparison discipline matches the single-node oracle: multiset row
// comparison (TPC-H spec ordering can tie) with 1e-9 relative tolerance
// on doubles (per-shard partial SUMs reassociate the additions).

#include <map>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "db/reference.h"
#include "shard/cluster.h"
#include "workload/tpch_gen.h"
#include "workload/tpch_queries.h"

namespace perfeval {
namespace sql {
namespace {

using db::ExecMode;
using db::JoinAlgo;

constexpr double kShardSf = 0.002;
constexpr double kDoubleTol = 1e-9;

db::Database* ShardOracleDb() {
  static db::Database* database = [] {
    auto* d = new db::Database();
    workload::TpchGenerator gen(kShardSf);
    gen.LoadAll(d);
    return d;
  }();
  return database;
}

shard::ShardCluster* OracleCluster(int num_shards) {
  static auto* clusters =
      new std::map<int, std::unique_ptr<shard::ShardCluster>>();
  auto it = clusters->find(num_shards);
  if (it == clusters->end()) {
    shard::ShardClusterOptions options;
    options.num_shards = num_shards;
    options.shard_service.workers = 2;
    options.shard_service.fingerprint_results = false;
    auto cluster = std::make_unique<shard::ShardCluster>(options);
    workload::TpchGenerator gen(kShardSf);
    cluster->LoadTpch(&gen);
    it = clusters->emplace(num_shards, std::move(cluster)).first;
  }
  return it->second.get();
}

class ShardedTpchOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(ShardedTpchOracleTest, ShardedMatchesSingleNode) {
  db::Database* database = ShardOracleDb();
  db::PlanPtr plan =
      workload::GetTpchQuery(GetParam()).Build(*database);
  ASSERT_NE(plan, nullptr);
  db::QueryResult expected = database->Run(plan);

  const ExecMode kModes[] = {ExecMode::kDebug, ExecMode::kOptimized};
  const JoinAlgo kAlgos[] = {JoinAlgo::kLegacy, JoinAlgo::kHash,
                             JoinAlgo::kRadix, JoinAlgo::kMerge};
  for (int num_shards : {2, 4}) {
    shard::ShardCluster* cluster = OracleCluster(num_shards);
    for (JoinAlgo algo : kAlgos) {
      for (int s = 0; s < cluster->num_shards(); ++s) {
        cluster->shard_db(s).set_join_algo(algo);
      }
      for (ExecMode mode : kModes) {
        shard::ShardedResult actual = cluster->Execute(plan, mode);
        std::string diff =
            db::DiffTables(*actual.result.table, *expected.table, kDoubleTol,
                           /*ignore_row_order=*/true);
        EXPECT_EQ(diff, "")
            << "shards=" << num_shards << " algo=" << JoinAlgoName(algo)
            << " mode=" << ExecModeName(mode);
      }
    }
    for (int s = 0; s < cluster->num_shards(); ++s) {
      cluster->shard_db(s).set_join_algo(JoinAlgo::kRadix);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(All22, ShardedTpchOracleTest,
                         ::testing::Range(1, 23));

}  // namespace
}  // namespace sql
}  // namespace perfeval
