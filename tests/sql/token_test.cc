#include "sql/token.h"

#include <gtest/gtest.h>

namespace perfeval {
namespace sql {
namespace {

std::vector<Token> MustLex(const std::string& source) {
  Result<std::vector<Token>> result = Lex(source);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.value();
}

TEST(LexTest, EmptyInputYieldsEnd) {
  std::vector<Token> tokens = MustLex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEnd);
}

TEST(LexTest, KeywordsAreCaseInsensitiveAndNormalized) {
  std::vector<Token> tokens = MustLex("select SeLeCt FROM");
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_TRUE(tokens[1].IsKeyword("SELECT"));
  EXPECT_TRUE(tokens[2].IsKeyword("FROM"));
}

TEST(LexTest, IdentifiersAreLowercased) {
  std::vector<Token> tokens = MustLex("L_QuantitY lineitem");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "l_quantity");
  EXPECT_EQ(tokens[1].text, "lineitem");
}

TEST(LexTest, NumbersIntAndDouble) {
  std::vector<Token> tokens = MustLex("42 3.14 0.05");
  EXPECT_EQ(tokens[0].kind, TokenKind::kInteger);
  EXPECT_EQ(tokens[0].text, "42");
  EXPECT_EQ(tokens[1].kind, TokenKind::kDouble);
  EXPECT_EQ(tokens[1].text, "3.14");
  EXPECT_EQ(tokens[2].kind, TokenKind::kDouble);
}

TEST(LexTest, StringsWithEscapedQuotes) {
  std::vector<Token> tokens = MustLex("'hello' 'it''s'");
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "it's");
}

TEST(LexTest, UnterminatedStringIsError) {
  Result<std::vector<Token>> result = Lex("'oops");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("unterminated"),
            std::string::npos);
}

TEST(LexTest, TwoCharacterSymbols) {
  std::vector<Token> tokens = MustLex("<= >= <> != < >");
  EXPECT_TRUE(tokens[0].IsSymbol("<="));
  EXPECT_TRUE(tokens[1].IsSymbol(">="));
  EXPECT_TRUE(tokens[2].IsSymbol("<>"));
  EXPECT_TRUE(tokens[3].IsSymbol("<>"));  // != normalizes.
  EXPECT_TRUE(tokens[4].IsSymbol("<"));
  EXPECT_TRUE(tokens[5].IsSymbol(">"));
}

TEST(LexTest, LineCommentsSkipped) {
  std::vector<Token> tokens = MustLex("select -- the list\n 1");
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_EQ(tokens[1].kind, TokenKind::kInteger);
}

TEST(LexTest, OffsetsPointAtSource) {
  std::vector<Token> tokens = MustLex("select x");
  EXPECT_EQ(tokens[0].offset, 0u);
  EXPECT_EQ(tokens[1].offset, 7u);
}

TEST(LexTest, UnexpectedCharacterIsError) {
  Result<std::vector<Token>> result = Lex("select @");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("'@'"), std::string::npos);
}

TEST(LexTest, FullStatementTokenStream) {
  std::vector<Token> tokens = MustLex(
      "SELECT sum(l_extendedprice * l_discount) AS revenue FROM lineitem "
      "WHERE l_shipdate >= DATE '1994-01-01';");
  // Spot-check shape: starts with SELECT, ends with ';' then end.
  EXPECT_TRUE(tokens.front().IsKeyword("SELECT"));
  EXPECT_TRUE(tokens[tokens.size() - 2].IsSymbol(";"));
  EXPECT_EQ(tokens.back().kind, TokenKind::kEnd);
}

}  // namespace
}  // namespace sql
}  // namespace perfeval
