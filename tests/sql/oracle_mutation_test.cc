// Differential oracle over a *mutating* database: randomized interleaved
// INSERT/DELETE batches run through the write path (txn::DeltaStore)
// between TPC-H queries, and after every batch all affected queries must
// still agree with the row-at-a-time reference — across execution modes,
// worker-thread counts {1, 8} and join algorithms. The reference reads
// the same merged catalog snapshots the engine scans, but shares none of
// the engine's fast paths, so any disagreement localizes a wrong-result
// bug in the merge (delete bitmaps, insert side, zone-map rebuilds)
// rather than in the query itself.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "db/reference.h"
#include "txn/store.h"
#include "txn/vdisk.h"
#include "workload/tpch_gen.h"
#include "workload/tpch_queries.h"

namespace perfeval {
namespace sql {
namespace {

using db::ExecMode;
using db::JoinAlgo;

constexpr double kDoubleTol = 1e-9;

/// One randomized mutation batch against `table`: a handful of inserted
/// rows cloned from live rows (always schema-valid) and a DELETE of one
/// seeded key-residue class, committed as a single transaction.
void MutateTable(txn::DeltaStore& store, const std::string& table,
                 Pcg32& rng) {
  auto merged = store.MergedTable(table);
  ASSERT_GT(merged->num_rows(), 0u);
  size_t cols = merged->schema().num_columns();
  std::vector<std::vector<db::Value>> rows;
  int num_inserts = 4 + static_cast<int>(rng.NextBounded(8));
  for (int i = 0; i < num_inserts; ++i) {
    size_t src = rng.NextBounded(static_cast<uint32_t>(merged->num_rows()));
    std::vector<db::Value> row;
    row.reserve(cols);
    for (size_t c = 0; c < cols; ++c) {
      row.push_back(merged->ValueAt(src, c));
    }
    rows.push_back(std::move(row));
  }
  int64_t residue = static_cast<int64_t>(rng.NextBounded(97));

  uint64_t txn_id = store.Begin();
  ASSERT_TRUE(store.BufferInsert(txn_id, table, std::move(rows)).ok());
  // Column 0 is the table's leading key (l_orderkey / o_orderkey / ...):
  // one residue class deletes a scattered ~1% slice.
  ASSERT_TRUE(store
                  .BufferDelete(txn_id, table,
                                [residue](const db::Table& t, uint32_t r) {
                                  return t.ValueAt(r, 0).AsInt64() % 97 ==
                                         residue;
                                })
                  .ok());
  txn::DeltaStore::CommitInfo info;
  Status committed = store.Commit(txn_id, &info);
  ASSERT_TRUE(committed.ok()) << committed.ToString();
}

TEST(SqlOracleMutationTest, Tpch22StaysBitIdenticalUnderInterleavedDml) {
  db::Database database;
  workload::TpchGenerator gen(0.002);
  gen.LoadAll(&database);
  txn::VirtualDisk disk;
  txn::DeltaStore store(&database, &disk);
  {
    Status opened = store.Open();
    ASSERT_TRUE(opened.ok()) << opened.ToString();
  }

  Pcg32 rng(MixSeed(20260808, 0xD31, 0x7));
  const ExecMode kModes[] = {ExecMode::kDebug, ExecMode::kOptimized};
  const int kThreads[] = {1, 8};
  const JoinAlgo kJoinAlgos[] = {JoinAlgo::kLegacy, JoinAlgo::kHash,
                                 JoinAlgo::kRadix, JoinAlgo::kMerge};

  int engine_runs = 0;
  for (int q = 1; q <= 22; ++q) {
    // Mutate between queries: lineitem every round, orders every third,
    // with a checkpoint (delta compaction) partway through the sweep.
    MutateTable(store, "lineitem", rng);
    if (q % 3 == 0) {
      MutateTable(store, "orders", rng);
    }
    if (q == 11) {
      Status ckpt = store.Checkpoint();
      ASSERT_TRUE(ckpt.ok()) << ckpt.ToString();
    }
    // The reference reads the catalog directly and does not trigger the
    // refresh hook: fold the freshly committed deltas in first.
    store.RefreshCatalog();

    const workload::TpchQuery& query = workload::GetTpchQuery(q);
    db::PlanPtr plan = query.Build(database);
    ASSERT_NE(plan, nullptr) << "Q" << q;
    std::shared_ptr<const db::Table> expected =
        db::ReferenceExecute(plan, database);

    for (JoinAlgo algo : kJoinAlgos) {
      database.set_join_algo(algo);
      for (ExecMode mode : kModes) {
        for (int threads : kThreads) {
          database.set_threads(threads);
          db::QueryResult result = database.Run(plan, mode);
          std::string diff = DiffTables(*result.table, *expected, kDoubleTol,
                                        /*ignore_row_order=*/true);
          EXPECT_EQ(diff, "")
              << "Q" << q << " algo=" << JoinAlgoName(algo)
              << " mode=" << ExecModeName(mode) << " threads=" << threads;
          ++engine_runs;
        }
      }
    }
    database.set_threads(1);
    database.set_join_algo(JoinAlgo::kRadix);
  }
  EXPECT_EQ(engine_runs, 22 * 4 * 2 * 2);

  // The write path really mutated what the queries scanned.
  txn::DeltaStoreStats stats = store.stats();
  EXPECT_EQ(stats.commits, 22u + 7u);
  EXPECT_GT(stats.rows_inserted, 0u);
  EXPECT_GT(stats.rows_deleted, 0u);
  EXPECT_EQ(stats.checkpoints, 1u);
  EXPECT_TRUE(store.CheckIntegrity().ok());
}

}  // namespace
}  // namespace sql
}  // namespace perfeval
