// Backend-vs-backend differential oracle (DESIGN.md, "Comparing backends
// defensibly"): every TPC-H plan and a fuzzed query corpus run on BOTH
// production backends — the columnar vectorized executor and the
// packed-tuple row store — across execution modes, worker-thread counts
// {1, 4} and checked execution, and every result must agree with the
// row-at-a-time reference interpreter AND with the other backend. The two
// backends share the plan representation and nothing else (different
// storage layout, different kernels, different I/O accounting), so a
// three-way agreement failure localizes a wrong-result bug to one
// implementation immediately.
//
// The mutation half runs randomized INSERT/DELETE batches through the
// write path between queries: the row store's SyncFrom must observe
// exactly the committed snapshot a columnar Run() would, or the sweep
// diverges.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/string_util.h"
#include "db/reference.h"
#include "engine/backend.h"
#include "engine/row_backend.h"
#include "sql/planner.h"
#include "txn/store.h"
#include "txn/vdisk.h"
#include "workload/tpch_gen.h"
#include "workload/tpch_queries.h"

namespace perfeval {
namespace sql {
namespace {

using db::ExecMode;

constexpr double kDoubleTol = 1e-9;

const ExecMode kModes[] = {ExecMode::kDebug, ExecMode::kOptimized};
const int kThreads[] = {1, 4};

struct BackendFixture {
  db::Database database;
  std::unique_ptr<engine::Backend> columnar;
  std::unique_ptr<engine::Backend> row;
};

BackendFixture* Fixture() {
  static BackendFixture* fixture = [] {
    auto* f = new BackendFixture();
    workload::TpchGenerator gen(0.002);
    gen.LoadAll(&f->database);
    f->columnar =
        engine::CreateBackend(db::BackendKind::kColumnar, &f->database);
    f->row = engine::CreateBackend(db::BackendKind::kRowStore, &f->database);
    return f;
  }();
  return fixture;
}

/// Runs `plan` on both backends under every mode x threads x check
/// combination; each run must match `expected` (the reference result) and
/// the two backends must match each other within the same combination.
/// Returns the number of backend executions performed.
int DiffAcrossBackends(BackendFixture* f, const db::PlanPtr& plan,
                       const db::Table& expected, bool ignore_row_order) {
  int runs = 0;
  for (ExecMode mode : kModes) {
    for (int threads : kThreads) {
      for (bool check : {false, true}) {
        engine::ExecOptions options;
        options.mode = mode;
        options.threads = threads;
        options.check = check;
        engine::BackendResult col = f->columnar->Execute(plan, options);
        engine::BackendResult row = f->row->Execute(plan, options);
        runs += 2;
        const std::string label =
            std::string(" mode=") + ExecModeName(mode) +
            " threads=" + std::to_string(threads) +
            " check=" + (check ? "on" : "off");
        EXPECT_EQ(DiffTables(*col.table, expected, kDoubleTol,
                             ignore_row_order),
                  "")
            << "columnar vs reference" << label;
        EXPECT_EQ(DiffTables(*row.table, expected, kDoubleTol,
                             ignore_row_order),
                  "")
            << "row vs reference" << label;
        EXPECT_EQ(DiffTables(*row.table, *col.table, kDoubleTol,
                             ignore_row_order),
                  "")
            << "row vs columnar" << label;
      }
    }
  }
  return runs;
}

class TpchBackendOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(TpchBackendOracleTest, BackendsMatchReferenceAndEachOther) {
  BackendFixture* f = Fixture();
  const workload::TpchQuery& query = workload::GetTpchQuery(GetParam());
  db::PlanPtr plan = query.Build(f->database);
  ASSERT_NE(plan, nullptr);
  std::shared_ptr<const db::Table> expected =
      db::ReferenceExecute(plan, f->database);
  int runs = DiffAcrossBackends(f, plan, *expected,
                                /*ignore_row_order=*/true);
  EXPECT_EQ(runs, 2 * 2 * 2 * 2);
}

INSTANTIATE_TEST_SUITE_P(All22, TpchBackendOracleTest,
                         ::testing::Range(1, 23));

/// Compact fuzzer for the backend sweep: the oracle_test.cc grammar
/// family (aggregates and projections over lineitem, optional orders
/// join), always ending in a total-order ORDER BY so backends must agree
/// positionally.
class BackendQueryGen {
 public:
  explicit BackendQueryGen(uint64_t seed) : rng_(seed) {}

  std::string Next() {
    bool join = rng_.NextBernoulli(0.4);
    std::string sql_text = "SELECT ";
    if (rng_.NextBernoulli(0.6)) {
      std::string group_col = PickOne(
          join ? std::vector<std::string>{"l_returnflag", "l_shipmode",
                                          "o_orderpriority", "l_suppkey"}
               : std::vector<std::string>{"l_returnflag", "l_linestatus",
                                          "l_suppkey", "l_linenumber"});
      sql_text += group_col + ", " + RandomAggregate() + " AS agg_val";
      sql_text += " FROM lineitem";
      if (join) {
        sql_text += " JOIN orders ON l_orderkey = o_orderkey";
      }
      if (rng_.NextBernoulli(0.7)) {
        sql_text += " WHERE " + RandomPredicate(join);
      }
      sql_text += " GROUP BY " + group_col + " ORDER BY " + group_col;
    } else {
      sql_text += "l_orderkey, l_quantity, l_extendedprice FROM lineitem";
      if (join) {
        sql_text += " JOIN orders ON l_orderkey = o_orderkey";
      }
      sql_text += " WHERE " + RandomPredicate(join);
      sql_text +=
          " ORDER BY l_extendedprice DESC, l_orderkey, l_linenumber";
    }
    if (rng_.NextBernoulli(0.5)) {
      sql_text += " LIMIT " + std::to_string(rng_.NextInRange(1, 40));
    }
    return sql_text;
  }

 private:
  std::string PickOne(std::vector<std::string> options) {
    return options[rng_.NextBounded(static_cast<uint32_t>(options.size()))];
  }

  std::string RandomAggregate() {
    switch (rng_.NextBounded(6)) {
      case 0:
        return "sum(l_quantity)";
      case 1:
        return "avg(l_extendedprice)";
      case 2:
        return "min(l_discount)";
      case 3:
        return "max(l_extendedprice * (1 - l_discount))";
      case 4:
        return "count(*)";
      default:
        return "count(DISTINCT l_suppkey)";
    }
  }

  std::string RandomPredicate(bool join) {
    std::vector<std::string> conjuncts;
    int n = static_cast<int>(rng_.NextInRange(1, 3));
    for (int i = 0; i < n; ++i) {
      switch (rng_.NextBounded(join ? 6 : 5)) {
        case 0:
          conjuncts.push_back(StrFormat(
              "l_quantity < %lld", (long long)rng_.NextInRange(2, 50)));
          break;
        case 1:
          conjuncts.push_back(
              StrFormat("l_discount BETWEEN 0.0%lld AND 0.0%lld",
                        (long long)rng_.NextInRange(0, 4),
                        (long long)rng_.NextInRange(5, 9)));
          break;
        case 2:
          conjuncts.push_back("l_shipmode IN ('MAIL', 'SHIP', 'AIR')");
          break;
        case 3:
          conjuncts.push_back("l_shipdate >= DATE '199" +
                              std::to_string(rng_.NextInRange(2, 8)) +
                              "-01-01'");
          break;
        case 4:
          conjuncts.push_back(rng_.NextBernoulli(0.5)
                                  ? "l_returnflag = 'R'"
                                  : "NOT l_returnflag = 'N'");
          break;
        default:
          conjuncts.push_back(
              StrFormat("o_totalprice > %lld",
                        (long long)rng_.NextInRange(1000, 400000)));
          break;
      }
    }
    return Join(conjuncts, " AND ");
  }

  Pcg32 rng_;
};

TEST(BackendOracleTest, FuzzedQueriesAgreeAcrossBackends) {
  BackendFixture* f = Fixture();
  BackendQueryGen gen(20260808);
  int backend_runs = 0;
  const int kQueries = 120;
  for (int i = 0; i < kQueries; ++i) {
    std::string sql_text = gen.Next();
    SCOPED_TRACE(sql_text);
    Result<PlannedQuery> planned = PlanQuery(sql_text, f->database);
    ASSERT_TRUE(planned.ok()) << planned.status().ToString();
    std::shared_ptr<const db::Table> expected =
        db::ReferenceExecute(planned->plan, f->database);
    backend_runs += DiffAcrossBackends(f, planned->plan, *expected,
                                       /*ignore_row_order=*/false);
  }
  EXPECT_EQ(backend_runs, kQueries * 2 * 2 * 2 * 2);
}

/// One randomized mutation batch (the oracle_mutation_test.cc shape):
/// inserted rows cloned from live rows plus a DELETE of one seeded
/// key-residue class, committed as a single transaction.
void MutateTable(txn::DeltaStore& store, const std::string& table,
                 Pcg32& rng) {
  auto merged = store.MergedTable(table);
  ASSERT_GT(merged->num_rows(), 0u);
  size_t cols = merged->schema().num_columns();
  std::vector<std::vector<db::Value>> rows;
  int num_inserts = 4 + static_cast<int>(rng.NextBounded(8));
  for (int i = 0; i < num_inserts; ++i) {
    size_t src = rng.NextBounded(static_cast<uint32_t>(merged->num_rows()));
    std::vector<db::Value> row;
    row.reserve(cols);
    for (size_t c = 0; c < cols; ++c) {
      row.push_back(merged->ValueAt(src, c));
    }
    rows.push_back(std::move(row));
  }
  int64_t residue = static_cast<int64_t>(rng.NextBounded(97));
  uint64_t txn_id = store.Begin();
  ASSERT_TRUE(store.BufferInsert(txn_id, table, std::move(rows)).ok());
  ASSERT_TRUE(store
                  .BufferDelete(txn_id, table,
                                [residue](const db::Table& t, uint32_t r) {
                                  return t.ValueAt(r, 0).AsInt64() % 97 ==
                                         residue;
                                })
                  .ok());
  Status committed = store.Commit(txn_id);
  ASSERT_TRUE(committed.ok()) << committed.ToString();
}

TEST(BackendOracleTest, RowBackendTracksMutationsThroughSyncFrom) {
  db::Database database;
  workload::TpchGenerator gen(0.002);
  gen.LoadAll(&database);
  txn::VirtualDisk disk;
  txn::DeltaStore store(&database, &disk);
  {
    Status opened = store.Open();
    ASSERT_TRUE(opened.ok()) << opened.ToString();
  }
  std::unique_ptr<engine::Backend> row =
      engine::CreateBackend(db::BackendKind::kRowStore, &database);

  Pcg32 rng(MixSeed(20260808, 0xBAC, 0xE17));
  const int kQueryIds[] = {1, 3, 6, 12, 14, 19};
  for (int round = 0; round < 6; ++round) {
    MutateTable(store, "lineitem", rng);
    if (round % 2 == 1) {
      MutateTable(store, "orders", rng);
    }
    // SyncFrom runs the database refresh hook (folding the committed
    // deltas) before re-packing changed tables, so the row backend and
    // the reference read the same snapshot.
    row->SyncFrom(&database);

    const workload::TpchQuery& query =
        workload::GetTpchQuery(kQueryIds[round]);
    db::PlanPtr plan = query.Build(database);
    ASSERT_NE(plan, nullptr);
    std::shared_ptr<const db::Table> expected =
        db::ReferenceExecute(plan, database);
    for (int threads : kThreads) {
      engine::ExecOptions options;
      options.threads = threads;
      options.check = true;
      engine::BackendResult result = row->Execute(plan, options);
      EXPECT_EQ(DiffTables(*result.table, *expected, kDoubleTol,
                           /*ignore_row_order=*/true),
                "")
          << "Q" << kQueryIds[round] << " round " << round << " threads "
          << threads;
    }
  }
  txn::DeltaStoreStats stats = store.stats();
  EXPECT_GT(stats.rows_inserted, 0u);
  EXPECT_GT(stats.rows_deleted, 0u);
}

}  // namespace
}  // namespace sql
}  // namespace perfeval
