#include "sql/parser.h"

#include <gtest/gtest.h>

namespace perfeval {
namespace sql {
namespace {

SelectStatement MustParse(const std::string& source) {
  Result<SelectStatement> result = Parse(source);
  EXPECT_TRUE(result.ok()) << source << " -> "
                           << result.status().ToString();
  return result.ok() ? result.value() : SelectStatement{};
}

Status ParseError(const std::string& source) {
  Result<SelectStatement> result = Parse(source);
  EXPECT_FALSE(result.ok()) << source << " unexpectedly parsed";
  return result.ok() ? Status::OK() : result.status();
}

TEST(ParserTest, SelectStar) {
  SelectStatement stmt = MustParse("SELECT * FROM lineitem");
  EXPECT_TRUE(stmt.select_star);
  EXPECT_EQ(stmt.from_table, "lineitem");
  EXPECT_FALSE(stmt.explain);
  EXPECT_EQ(stmt.where, nullptr);
}

TEST(ParserTest, SelectListWithAliases) {
  SelectStatement stmt =
      MustParse("SELECT a, b AS bee, a + b AS total FROM t");
  ASSERT_EQ(stmt.items.size(), 3u);
  EXPECT_EQ(stmt.items[0].expr->kind, AstExprKind::kColumn);
  EXPECT_EQ(stmt.items[0].alias, "");
  EXPECT_EQ(stmt.items[1].alias, "bee");
  EXPECT_EQ(stmt.items[2].expr->kind, AstExprKind::kBinary);
  EXPECT_EQ(stmt.items[2].expr->text, "+");
}

TEST(ParserTest, ArithmeticPrecedence) {
  // a + b * c parses as a + (b * c).
  SelectStatement stmt = MustParse("SELECT a + b * c FROM t");
  const AstExprPtr& expr = stmt.items[0].expr;
  ASSERT_EQ(expr->text, "+");
  EXPECT_EQ(expr->children[1]->text, "*");
}

TEST(ParserTest, BooleanPrecedence) {
  // a = 1 OR b = 2 AND c = 3  =>  OR(a=1, AND(b=2, c=3)).
  SelectStatement stmt =
      MustParse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
  ASSERT_EQ(stmt.where->text, "OR");
  EXPECT_EQ(stmt.where->children[1]->text, "AND");
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  SelectStatement stmt = MustParse("SELECT (a + b) * c FROM t");
  ASSERT_EQ(stmt.items[0].expr->text, "*");
  EXPECT_EQ(stmt.items[0].expr->children[0]->text, "+");
}

TEST(ParserTest, NotBindings) {
  SelectStatement stmt =
      MustParse("SELECT * FROM t WHERE NOT a = 1 AND b = 2");
  // NOT binds tighter than AND.
  ASSERT_EQ(stmt.where->text, "AND");
  EXPECT_EQ(stmt.where->children[0]->kind, AstExprKind::kNot);
}

TEST(ParserTest, DateLiteral) {
  SelectStatement stmt =
      MustParse("SELECT * FROM t WHERE d >= DATE '1994-01-01'");
  EXPECT_EQ(stmt.where->children[1]->kind, AstExprKind::kDateLit);
  EXPECT_EQ(stmt.where->children[1]->text, "1994-01-01");
}

TEST(ParserTest, LikeAndNotLike) {
  SelectStatement stmt =
      MustParse("SELECT * FROM t WHERE a LIKE 'PROMO%' AND b NOT LIKE '%x'");
  const AstExprPtr& both = stmt.where;
  EXPECT_EQ(both->children[0]->kind, AstExprKind::kLike);
  EXPECT_EQ(both->children[0]->text, "PROMO%");
  EXPECT_EQ(both->children[1]->kind, AstExprKind::kNot);
  EXPECT_EQ(both->children[1]->children[0]->kind, AstExprKind::kLike);
}

TEST(ParserTest, InLists) {
  SelectStatement stmt = MustParse(
      "SELECT * FROM t WHERE mode IN ('MAIL', 'SHIP') AND size IN (1, 2)");
  const AstExprPtr& strings = stmt.where->children[0];
  EXPECT_EQ(strings->kind, AstExprKind::kInList);
  EXPECT_EQ(strings->string_list,
            (std::vector<std::string>{"MAIL", "SHIP"}));
  const AstExprPtr& ints = stmt.where->children[1];
  EXPECT_EQ(ints->int_list, (std::vector<int64_t>{1, 2}));
}

TEST(ParserTest, MixedInListRejected) {
  ParseError("SELECT * FROM t WHERE a IN (1, 'x')");
}

TEST(ParserTest, Between) {
  SelectStatement stmt =
      MustParse("SELECT * FROM t WHERE x BETWEEN 0.05 AND 0.07");
  EXPECT_EQ(stmt.where->kind, AstExprKind::kBetween);
  EXPECT_EQ(stmt.where->children.size(), 3u);
}

TEST(ParserTest, CaseWhen) {
  SelectStatement stmt = MustParse(
      "SELECT sum(CASE WHEN p LIKE 'PROMO%' THEN x ELSE 0.0 END) FROM t");
  const AstExprPtr& agg = stmt.items[0].expr;
  ASSERT_EQ(agg->kind, AstExprKind::kAgg);
  EXPECT_EQ(agg->children[0]->kind, AstExprKind::kCase);
}

TEST(ParserTest, Aggregates) {
  SelectStatement stmt = MustParse(
      "SELECT sum(a), avg(b), min(c), max(d), count(*), "
      "count(DISTINCT e) FROM t");
  ASSERT_EQ(stmt.items.size(), 6u);
  EXPECT_EQ(stmt.items[0].expr->text, "sum");
  EXPECT_EQ(stmt.items[4].expr->text, "count");
  EXPECT_TRUE(stmt.items[4].expr->children.empty());
  EXPECT_TRUE(stmt.items[5].expr->distinct);
}

TEST(ParserTest, DistinctOutsideCountRejected) {
  ParseError("SELECT sum(DISTINCT a) FROM t");
}

TEST(ParserTest, Functions) {
  SelectStatement stmt =
      MustParse("SELECT year(d), substr(phone, 1, 2) FROM t");
  EXPECT_EQ(stmt.items[0].expr->kind, AstExprKind::kFunc);
  EXPECT_EQ(stmt.items[0].expr->text, "year");
  EXPECT_EQ(stmt.items[1].expr->children.size(), 3u);
}

TEST(ParserTest, JoinsWithOn) {
  SelectStatement stmt = MustParse(
      "SELECT * FROM lineitem JOIN orders ON l_orderkey = o_orderkey "
      "INNER JOIN customer ON o_custkey = c_custkey");
  ASSERT_EQ(stmt.joins.size(), 2u);
  EXPECT_EQ(stmt.joins[0].table, "orders");
  EXPECT_EQ(stmt.joins[1].table, "customer");
  EXPECT_EQ(stmt.joins[1].condition->text, "=");
}

TEST(ParserTest, GroupByHavingOrderByLimit) {
  SelectStatement stmt = MustParse(
      "SELECT region, sum(amount) AS total FROM sales "
      "GROUP BY region HAVING sum(amount) > 100 "
      "ORDER BY total DESC, region LIMIT 5");
  EXPECT_EQ(stmt.group_by, (std::vector<std::string>{"region"}));
  ASSERT_NE(stmt.having, nullptr);
  ASSERT_EQ(stmt.order_by.size(), 2u);
  EXPECT_FALSE(stmt.order_by[0].ascending);
  EXPECT_TRUE(stmt.order_by[1].ascending);
  EXPECT_EQ(stmt.limit, 5u);
}

TEST(ParserTest, ExplainPrefix) {
  SelectStatement stmt = MustParse("EXPLAIN SELECT * FROM t");
  EXPECT_TRUE(stmt.explain);
}

TEST(ParserTest, TrailingSemicolonOk) {
  MustParse("SELECT * FROM t;");
}

TEST(ParserTest, ErrorsNameTheProblem) {
  EXPECT_NE(ParseError("SELECT FROM t").message().find("expected"),
            std::string::npos);
  EXPECT_NE(ParseError("SELECT a t").message().find("FROM"),
            std::string::npos);
  EXPECT_NE(ParseError("SELECT a FROM t WHERE").message().find("expression"),
            std::string::npos);
  EXPECT_NE(ParseError("SELECT a FROM t LIMIT x").message().find("integer"),
            std::string::npos);
  EXPECT_NE(ParseError("SELECT a FROM t extra").message().find("trailing"),
            std::string::npos);
  EXPECT_NE(ParseError("SELECT a FROM t JOIN s").message().find("ON"),
            std::string::npos);
}

TEST(ParserTest, ErrorsCarryOffsets) {
  Status status = ParseError("SELECT a FROM t WHERE (a = 1");
  EXPECT_NE(status.message().find("offset"), std::string::npos);
}

}  // namespace
}  // namespace sql
}  // namespace perfeval
