// Property test: generate hundreds of random valid SQL queries over the
// TPC-H schema and check, for each, that the planner accepts them and that
// debug and optimized execution produce identical results — at one worker
// thread and at four (morsel-driven parallelism must never change a
// result). Guards the whole parse -> bind -> execute pipeline against
// combination bugs no hand-written test enumerates.

#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/string_util.h"
#include "sql/planner.h"
#include "workload/tpch_gen.h"

namespace perfeval {
namespace sql {
namespace {

db::Database* Db() {
  static db::Database* database = [] {
    auto* d = new db::Database();
    workload::TpchGenerator gen(0.002);
    gen.LoadAll(d);
    return d;
  }();
  return database;
}

/// Grammar-directed random query generator over the lineitem/orders join.
class QueryGen {
 public:
  explicit QueryGen(uint64_t seed) : rng_(seed) {}

  std::string Next() {
    bool join = rng_.NextBernoulli(0.4);
    bool aggregate = rng_.NextBernoulli(0.6);
    std::string sql_text = "SELECT ";
    std::vector<std::string> output_names;
    if (aggregate) {
      // Mixes string keys with int64 keys (l_suppkey, l_linenumber) so the
      // single-int-key aggregation fast path is fuzzed too.
      std::string group_col = join ? PickOne({"l_returnflag", "l_shipmode",
                                              "o_orderpriority",
                                              "o_orderstatus", "l_suppkey"})
                                   : PickOne({"l_returnflag", "l_shipmode",
                                              "l_linestatus", "l_suppkey",
                                              "l_linenumber"});
      sql_text += group_col + ", " + RandomAggregate() + " AS agg_val";
      output_names = {group_col, "agg_val"};
      sql_text += " FROM lineitem";
      if (join) {
        sql_text += " JOIN orders ON l_orderkey = o_orderkey";
      }
      if (rng_.NextBernoulli(0.7)) {
        sql_text += " WHERE " + RandomPredicate(join);
      }
      sql_text += " GROUP BY " + group_col;
      if (rng_.NextBernoulli(0.3)) {
        sql_text += " HAVING count(*) > " +
                    std::to_string(rng_.NextInRange(0, 5));
      }
      sql_text += " ORDER BY " + output_names[rng_.NextBounded(2)];
    } else {
      sql_text += "l_orderkey, l_quantity, l_extendedprice";
      output_names = {"l_orderkey"};
      sql_text += " FROM lineitem";
      if (join) {
        sql_text += " JOIN orders ON l_orderkey = o_orderkey";
      }
      sql_text += " WHERE " + RandomPredicate(join);
      sql_text += " ORDER BY l_extendedprice DESC, l_orderkey";
    }
    if (rng_.NextBernoulli(0.6)) {
      sql_text += " LIMIT " + std::to_string(rng_.NextInRange(1, 50));
    }
    return sql_text;
  }

 private:
  std::string PickOne(std::vector<std::string> options) {
    return options[rng_.NextBounded(
        static_cast<uint32_t>(options.size()))];
  }

  std::string RandomAggregate() {
    switch (rng_.NextBounded(6)) {
      case 0:
        return "sum(l_quantity)";
      case 1:
        return "avg(l_extendedprice)";
      case 2:
        return "min(l_discount)";
      case 3:
        return "max(l_extendedprice * (1 - l_discount))";
      case 4:
        return "count(*)";
      default:
        return "count(DISTINCT l_suppkey)";
    }
  }

  std::string RandomPredicate(bool join) {
    std::vector<std::string> conjuncts;
    int n = static_cast<int>(rng_.NextInRange(1, 3));
    for (int i = 0; i < n; ++i) {
      switch (rng_.NextBounded(join ? 7 : 5)) {
        case 0:
          conjuncts.push_back(StrFormat("l_quantity < %lld",
                                        (long long)rng_.NextInRange(2, 50)));
          break;
        case 1:
          conjuncts.push_back(
              StrFormat("l_discount BETWEEN 0.0%lld AND 0.0%lld",
                        (long long)rng_.NextInRange(0, 4),
                        (long long)rng_.NextInRange(5, 9)));
          break;
        case 2:
          conjuncts.push_back("l_shipmode IN ('MAIL', 'SHIP', 'AIR')");
          break;
        case 3:
          conjuncts.push_back("l_shipdate >= DATE '199" +
                              std::to_string(rng_.NextInRange(2, 8)) +
                              "-01-01'");
          break;
        case 4:
          conjuncts.push_back(
              rng_.NextBernoulli(0.5)
                  ? "l_returnflag = 'R'"
                  : "NOT l_returnflag = 'N'");
          break;
        case 5:
          conjuncts.push_back("o_orderpriority IN ('1-URGENT', '2-HIGH')");
          break;
        default:
          conjuncts.push_back(StrFormat(
              "o_totalprice > %lld",
              (long long)rng_.NextInRange(1000, 400000)));
          break;
      }
    }
    return Join(conjuncts, " AND ");
  }

  Pcg32 rng_;
};

std::string Render(const db::Table& table) {
  std::string out;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      out += table.ValueAt(r, c).ToString();
      out += '|';
    }
    out += '\n';
  }
  return out;
}

TEST(SqlFuzzTest, RandomQueriesPlanRunAndAgreeAcrossModesAndThreads) {
  QueryGen gen(2026);
  int aggregate_queries = 0;
  int int_key_groups = 0;
  for (int i = 0; i < 300; ++i) {
    std::string sql_text = gen.Next();
    SCOPED_TRACE(sql_text);
    Result<PlannedQuery> planned = PlanQuery(sql_text, *Db());
    ASSERT_TRUE(planned.ok()) << planned.status().ToString();

    // Every query runs in all four mode x threads combinations; the four
    // result relations must be bit-identical (A6: concurrency knobs never
    // change reported results).
    Db()->set_threads(1);
    Result<db::QueryResult> optimized =
        RunQuery(sql_text, *Db(), db::ExecMode::kOptimized);
    Result<db::QueryResult> debug =
        RunQuery(sql_text, *Db(), db::ExecMode::kDebug);
    Db()->set_threads(4);
    Result<db::QueryResult> optimized4 =
        RunQuery(sql_text, *Db(), db::ExecMode::kOptimized);
    Result<db::QueryResult> debug4 =
        RunQuery(sql_text, *Db(), db::ExecMode::kDebug);
    Db()->set_threads(1);
    ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
    ASSERT_TRUE(debug.ok()) << debug.status().ToString();
    ASSERT_TRUE(optimized4.ok()) << optimized4.status().ToString();
    ASSERT_TRUE(debug4.ok()) << debug4.status().ToString();
    ASSERT_EQ(optimized->table->num_rows(), debug->table->num_rows());
    std::string expected = Render(*optimized->table);
    EXPECT_EQ(expected, Render(*debug->table));
    EXPECT_EQ(expected, Render(*optimized4->table));
    EXPECT_EQ(expected, Render(*debug4->table));

    aggregate_queries +=
        sql_text.find("GROUP BY") != std::string::npos ? 1 : 0;
    int_key_groups +=
        (sql_text.find("GROUP BY l_suppkey") != std::string::npos ||
         sql_text.find("GROUP BY l_linenumber") != std::string::npos)
            ? 1
            : 0;
  }
  // The generator really exercises both shapes, including the
  // single-int-key aggregation fast path.
  EXPECT_GT(aggregate_queries, 100);
  EXPECT_LT(aggregate_queries, 280);
  EXPECT_GT(int_key_groups, 10);
}

TEST(SqlFuzzTest, GeneratorIsDeterministic) {
  QueryGen a(7);
  QueryGen b(7);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

int64_t CountWhere(const std::string& from_where) {
  Result<db::QueryResult> result =
      RunQuery("SELECT count(*) AS n FROM " + from_where, *Db());
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? (*result).table->ValueAt(0, 0).AsInt64() : -1;
}

/// Conjuncts the metamorphic test can negate with a leading NOT. Mirrors
/// QueryGen::RandomPredicate but keeps each conjunct NOT-prefixable.
class PredicateGen {
 public:
  explicit PredicateGen(uint64_t seed) : rng_(seed) {}

  std::vector<std::string> NextConjuncts(bool join) {
    std::vector<std::string> conjuncts;
    int n = static_cast<int>(rng_.NextInRange(1, 3));
    for (int i = 0; i < n; ++i) {
      switch (rng_.NextBounded(join ? 6 : 4)) {
        case 0:
          conjuncts.push_back(StrFormat(
              "l_quantity < %lld", (long long)rng_.NextInRange(2, 50)));
          break;
        case 1:
          conjuncts.push_back(
              StrFormat("l_discount BETWEEN 0.0%lld AND 0.0%lld",
                        (long long)rng_.NextInRange(0, 4),
                        (long long)rng_.NextInRange(5, 9)));
          break;
        case 2:
          conjuncts.push_back("l_shipmode IN ('MAIL', 'SHIP', 'AIR')");
          break;
        case 3:
          conjuncts.push_back("l_returnflag = 'R'");
          break;
        case 4:
          conjuncts.push_back("o_orderpriority IN ('1-URGENT', '2-HIGH')");
          break;
        default:
          conjuncts.push_back(
              StrFormat("o_totalprice > %lld",
                        (long long)rng_.NextInRange(1000, 400000)));
          break;
      }
    }
    return conjuncts;
  }

 private:
  Pcg32 rng_;
};

TEST(SqlFuzzTest, MetamorphicPredicatePartition) {
  // For any predicate P over NULL-free data, P and NOT P partition the
  // rows: COUNT under P plus COUNT under NOT P must equal the
  // unpartitioned COUNT. NOT (A AND B) is spelled via De Morgan because
  // the grammar applies NOT to single predicates. The generated TPC-H
  // data is NULL-free, so the P-is-NULL leg is empty here; the NULL leg
  // of the partition is exercised by the plan-level test below.
  PredicateGen gen(404);
  for (int i = 0; i < 60; ++i) {
    bool join = i % 3 == 0;
    std::string from = join
                           ? "lineitem JOIN orders ON l_orderkey = "
                             "o_orderkey"
                           : "lineitem";
    std::vector<std::string> conjuncts = gen.NextConjuncts(join);
    std::string predicate = Join(conjuncts, " AND ");
    std::vector<std::string> negated;
    for (const std::string& conjunct : conjuncts) {
      negated.push_back("NOT " + conjunct);
    }
    std::string complement = Join(negated, " OR ");
    SCOPED_TRACE(predicate);
    int64_t total = CountWhere(from);
    int64_t matched = CountWhere(from + " WHERE " + predicate);
    int64_t rest = CountWhere(from + " WHERE " + complement);
    ASSERT_GE(total, 0);
    EXPECT_EQ(matched + rest, total);
  }
}

TEST(SqlFuzzTest, MetamorphicPartitionWithNulls) {
  // Three-way partition over nullable data: rows where P holds, rows
  // where NOT P holds, and rows where P is NULL (here: x IS NULL, since
  // P compares x against a constant) must sum to the table size. Both P
  // and NOT P evaluate to UNKNOWN on the NULL rows and drop them, so a
  // NULL-handling bug in either the filter or the aggregate breaks the
  // sum.
  // COUNT(x) counts non-NULL x, so the NULL leg is COUNT(*) - COUNT(x).
  Pcg32 rng(77);
  db::Database database;
  auto table = std::make_shared<db::Table>(
      db::Schema({{"id", db::DataType::kInt64},
                  {"x", db::DataType::kDouble}}));
  const int kRows = 500;
  for (int i = 0; i < kRows; ++i) {
    table->AppendRow({db::Value::Int64(i),
                      rng.NextBernoulli(0.2)
                          ? db::Value::Null(db::DataType::kDouble)
                          : db::Value::Double(rng.NextDouble() * 100.0)});
  }
  database.RegisterTable("t", table);
  const db::Schema& schema = table->schema();
  auto count_of = [&](db::PlanPtr input, db::ExprPtr counted) {
    db::AggSpec spec;
    spec.op = db::AggOp::kCount;
    spec.expr = std::move(counted);
    spec.output_name = "n";
    db::QueryResult result =
        database.Run(db::Aggregate(std::move(input), {}, {spec}));
    return result.table->column(0).GetInt64(0);
  };
  for (int trial = 0; trial < 20; ++trial) {
    double threshold = rng.NextDouble() * 100.0;
    db::ExprPtr p = db::Gt(db::Col(schema, "x"), db::LitDouble(threshold));
    db::ExprPtr not_p = db::Not(
        db::Gt(db::Col(schema, "x"), db::LitDouble(threshold)));
    int64_t total = count_of(db::Scan("t"), nullptr);
    int64_t non_null = count_of(db::Scan("t"), db::Col(schema, "x"));
    int64_t matched =
        count_of(db::Filter(db::Scan("t"), std::move(p)), nullptr);
    int64_t rest =
        count_of(db::Filter(db::Scan("t"), std::move(not_p)), nullptr);
    EXPECT_EQ(total, kRows);
    EXPECT_GT(total - non_null, 0);  // The data really has NULLs.
    EXPECT_EQ(matched + rest + (total - non_null), total)
        << "threshold=" << threshold;
  }
}

}  // namespace
}  // namespace sql
}  // namespace perfeval
