#include "sql/planner.h"

#include <gtest/gtest.h>

#include "workload/tpch_gen.h"
#include "workload/tpch_queries.h"

namespace perfeval {
namespace sql {
namespace {

using db::Database;
using db::QueryResult;

/// Shared TPC-H database (generation dominates test time).
Database* Db() {
  static Database* database = [] {
    auto* d = new Database();
    workload::TpchGenerator gen(0.005);
    gen.LoadAll(d);
    return d;
  }();
  return database;
}

QueryResult MustRun(const std::string& sql_text) {
  Result<QueryResult> result = RunQuery(sql_text, *Db());
  EXPECT_TRUE(result.ok()) << sql_text << "\n-> "
                           << result.status().ToString();
  return result.ok() ? std::move(result).value() : QueryResult{};
}

Status PlanError(const std::string& sql_text) {
  Result<PlannedQuery> result = PlanQuery(sql_text, *Db());
  EXPECT_FALSE(result.ok()) << sql_text << " unexpectedly planned";
  return result.ok() ? Status::OK() : result.status();
}

TEST(PlannerTest, SelectStarScansWholeTable) {
  QueryResult result = MustRun("SELECT * FROM nation");
  EXPECT_EQ(result.table->num_rows(), 25u);
  EXPECT_EQ(result.table->num_columns(), 4u);
}

TEST(PlannerTest, ProjectionAndAliases) {
  QueryResult result = MustRun(
      "SELECT n_name, n_nationkey + 100 AS shifted FROM nation LIMIT 3");
  EXPECT_EQ(result.table->num_rows(), 3u);
  EXPECT_EQ(result.table->schema().column(0).name, "n_name");
  EXPECT_EQ(result.table->schema().column(1).name, "shifted");
  // Integer arithmetic stays int64 (checked) instead of widening to
  // double.
  EXPECT_EQ(result.table->schema().column(1).type, db::DataType::kInt64);
  EXPECT_EQ(result.table->column(1).GetInt64(0), 100);
}

TEST(PlannerTest, WherePushdownProducesFilterScan) {
  Result<PlannedQuery> planned = PlanQuery(
      "SELECT l_quantity FROM lineitem WHERE l_quantity < 5", *Db());
  ASSERT_TRUE(planned.ok());
  std::string explain = db::Explain(planned->plan);
  EXPECT_NE(explain.find("FilterScan lineitem"), std::string::npos);
  EXPECT_EQ(explain.find("\nFilter ["), std::string::npos);
}

TEST(PlannerTest, CrossTablePredicateStaysAboveJoin) {
  Result<PlannedQuery> planned = PlanQuery(
      "SELECT o_orderkey FROM orders JOIN customer "
      "ON o_custkey = c_custkey WHERE o_totalprice > c_acctbal",
      *Db());
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  std::string explain = db::Explain(planned->plan);
  EXPECT_NE(explain.find("Filter [o_totalprice > c_acctbal]"),
            std::string::npos);
  EXPECT_NE(explain.find("HashJoin"), std::string::npos);
}

TEST(PlannerTest, WhereSemanticsMatchManualCount) {
  QueryResult result = MustRun(
      "SELECT count(*) AS n FROM lineitem WHERE l_quantity <= 10");
  const db::Table& lineitem = Db()->GetTable("lineitem");
  const auto& qty = lineitem.ColumnByName("l_quantity").doubles();
  int64_t expected = 0;
  for (double q : qty) {
    expected += q <= 10.0 ? 1 : 0;
  }
  EXPECT_EQ(result.table->ColumnByName("n").GetInt64(0), expected);
}

TEST(PlannerTest, JoinMatchesHandBuiltPlan) {
  QueryResult via_sql = MustRun(
      "SELECT count(*) AS n FROM lineitem JOIN orders "
      "ON l_orderkey = o_orderkey");
  // Every lineitem row joins its order exactly once.
  EXPECT_EQ(
      via_sql.table->ColumnByName("n").GetInt64(0),
      static_cast<int64_t>(Db()->GetTable("lineitem").num_rows()));
}

TEST(PlannerTest, CompositeJoinKeys) {
  QueryResult result = MustRun(
      "SELECT count(*) AS n FROM lineitem JOIN partsupp "
      "ON l_partkey = ps_partkey AND l_suppkey = ps_suppkey");
  // Each lineitem references an existing (part, supplier) pair.
  EXPECT_EQ(result.table->ColumnByName("n").GetInt64(0),
            static_cast<int64_t>(Db()->GetTable("lineitem").num_rows()));
}

TEST(PlannerTest, GroupByWithHavingAndOrder) {
  QueryResult result = MustRun(
      "SELECT l_returnflag, count(*) AS n FROM lineitem "
      "GROUP BY l_returnflag HAVING count(*) > 1 ORDER BY n DESC");
  ASSERT_GE(result.table->num_rows(), 2u);
  // Ordered descending.
  const db::Column& n = result.table->ColumnByName("n");
  for (size_t r = 1; r < result.table->num_rows(); ++r) {
    EXPECT_LE(n.GetInt64(r), n.GetInt64(r - 1));
  }
}

TEST(PlannerTest, AggregateInsideExpression) {
  // The Q14 pattern: arithmetic over aggregates.
  QueryResult result = MustRun(
      "SELECT 100.0 * sum(l_discount) / count(*) AS avg_disc_pct "
      "FROM lineitem");
  ASSERT_EQ(result.table->num_rows(), 1u);
  double pct = result.table->ColumnByName("avg_disc_pct").GetDouble(0);
  EXPECT_GT(pct, 0.0);
  EXPECT_LT(pct, 10.0 + 1e-9);  // discounts are 0..10%.
}

TEST(PlannerTest, SqlQ6MatchesHandBuiltQ6) {
  QueryResult via_sql = MustRun(
      "SELECT sum(l_extendedprice * l_discount) AS revenue FROM lineitem "
      "WHERE l_shipdate >= DATE '1994-01-01' "
      "AND l_shipdate < DATE '1995-01-01' "
      "AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24");
  QueryResult via_api =
      Db()->Run(workload::GetTpchQuery(6).Build(*Db()));
  ASSERT_EQ(via_sql.table->num_rows(), 1u);
  EXPECT_NEAR(via_sql.table->ColumnByName("revenue").GetDouble(0),
              via_api.table->ColumnByName("revenue").GetDouble(0), 1e-6);
}

TEST(PlannerTest, SqlQ1MatchesHandBuiltQ1) {
  QueryResult via_sql = MustRun(
      "SELECT l_returnflag, l_linestatus, sum(l_quantity) AS sum_qty, "
      "count(*) AS count_order FROM lineitem "
      "WHERE l_shipdate <= DATE '1998-09-02' "
      "GROUP BY l_returnflag, l_linestatus "
      "ORDER BY l_returnflag, l_linestatus");
  QueryResult via_api = Db()->Run(workload::GetTpchQuery(1).Build(*Db()));
  ASSERT_EQ(via_sql.table->num_rows(), via_api.table->num_rows());
  for (size_t r = 0; r < via_sql.table->num_rows(); ++r) {
    EXPECT_EQ(via_sql.table->ColumnByName("l_returnflag").GetString(r),
              via_api.table->ColumnByName("l_returnflag").GetString(r));
    EXPECT_NEAR(via_sql.table->ColumnByName("sum_qty").GetDouble(r),
                via_api.table->ColumnByName("sum_qty").GetDouble(r), 1e-6);
    EXPECT_EQ(via_sql.table->ColumnByName("count_order").GetInt64(r),
              via_api.table->ColumnByName("count_order").GetInt64(r));
  }
}

TEST(PlannerTest, FiveWayJoinRuns) {
  QueryResult result = MustRun(
      "SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue "
      "FROM lineitem "
      "JOIN orders ON l_orderkey = o_orderkey "
      "JOIN customer ON o_custkey = c_custkey "
      "JOIN nation ON c_nationkey = n_nationkey "
      "JOIN region ON n_regionkey = r_regionkey "
      "WHERE r_name = 'ASIA' GROUP BY n_name ORDER BY revenue DESC");
  EXPECT_GT(result.table->num_rows(), 0u);
  EXPECT_LE(result.table->num_rows(), 5u);  // ASIA has 5 nations.
}

TEST(PlannerTest, OrderByBaseColumnNotInSelect) {
  QueryResult result = MustRun(
      "SELECT n_name FROM nation ORDER BY n_nationkey DESC LIMIT 1");
  ASSERT_EQ(result.table->num_rows(), 1u);
  EXPECT_EQ(result.table->column(0).GetString(0), "UNITED STATES");
}

TEST(PlannerTest, CaseWhenAndLikeEndToEnd) {
  QueryResult result = MustRun(
      "SELECT sum(CASE WHEN p_type LIKE 'PROMO%' THEN 1.0 ELSE 0.0 END) "
      "AS promos, count(*) AS total FROM part");
  double promos = result.table->ColumnByName("promos").GetDouble(0);
  int64_t total = result.table->ColumnByName("total").GetInt64(0);
  EXPECT_GT(promos, 0.0);
  EXPECT_LT(promos, static_cast<double>(total));
}

TEST(PlannerTest, YearAndSubstrFunctions) {
  QueryResult result = MustRun(
      "SELECT year(o_orderdate) AS y, count(*) AS n FROM orders "
      "GROUP BY y ORDER BY y");
  // Orders span 1992..1998.
  EXPECT_EQ(result.table->num_rows(), 7u);
  EXPECT_EQ(result.table->ColumnByName("y").GetInt64(0), 1992);

  QueryResult codes = MustRun(
      "SELECT substr(c_phone, 1, 2) AS code, count(*) AS n FROM customer "
      "GROUP BY code ORDER BY code LIMIT 3");
  EXPECT_EQ(codes.table->ColumnByName("code").GetString(0).size(), 2u);
}

TEST(PlannerTest, GroupByFunctionResultWorksViaAlias) {
  // GROUP BY y where y = year(...) — supported because the planner groups
  // over the aggregate input by name; year(o_orderdate) aliased as a
  // select item is evaluated pre-aggregation... this subset instead
  // requires grouping by a real column; the previous test works because
  // the binder resolves "y"... Verify the error path for a non-column.
  Status status = PlanError(
      "SELECT o_orderstatus FROM orders GROUP BY nosuchcolumn");
  EXPECT_NE(status.message().find("nosuchcolumn"), std::string::npos);
}

TEST(PlannerTest, ExplainReturnsPlanText) {
  QueryResult result = MustRun(
      "EXPLAIN SELECT count(*) FROM lineitem WHERE l_quantity < 5");
  ASSERT_GT(result.table->num_rows(), 0u);
  bool saw_filter_scan = false;
  for (size_t r = 0; r < result.table->num_rows(); ++r) {
    saw_filter_scan |= result.table->column(0).GetString(r).find(
                           "FilterScan") != std::string::npos;
  }
  EXPECT_TRUE(saw_filter_scan);
}

TEST(PlannerTest, DebugAndOptimizedModesAgreeOnSql) {
  const std::string sql_text =
      "SELECT l_shipmode, count(*) AS n FROM lineitem "
      "JOIN orders ON l_orderkey = o_orderkey "
      "WHERE o_orderpriority IN ('1-URGENT', '2-HIGH') "
      "GROUP BY l_shipmode ORDER BY l_shipmode";
  Result<QueryResult> optimized =
      RunQuery(sql_text, *Db(), db::ExecMode::kOptimized);
  Result<QueryResult> debug =
      RunQuery(sql_text, *Db(), db::ExecMode::kDebug);
  ASSERT_TRUE(optimized.ok());
  ASSERT_TRUE(debug.ok());
  ASSERT_EQ(optimized->table->num_rows(), debug->table->num_rows());
  for (size_t r = 0; r < optimized->table->num_rows(); ++r) {
    EXPECT_EQ(optimized->table->ValueAt(r, 1).AsInt64(),
              debug->table->ValueAt(r, 1).AsInt64());
  }
}

TEST(PlannerTest, SemanticErrors) {
  EXPECT_EQ(PlanError("SELECT * FROM nosuchtable").code(),
            StatusCode::kNotFound);
  EXPECT_NE(PlanError("SELECT nosuchcol FROM nation").message().find(
                "unknown column"),
            std::string::npos);
  EXPECT_NE(PlanError("SELECT n_name, count(*) FROM nation")
                .message()
                .find("GROUP BY"),
            std::string::npos);
  EXPECT_NE(PlanError("SELECT n_name FROM nation HAVING n_nationkey > 1")
                .message()
                .find("HAVING"),
            std::string::npos);
  EXPECT_NE(PlanError("SELECT * FROM nation JOIN region ON n_name <> "
                      "r_name")
                .message()
                .find("equalit"),
            std::string::npos);
  EXPECT_NE(
      PlanError("SELECT n_name FROM nation ORDER BY nosuch").message().find(
          "ORDER BY"),
      std::string::npos);
}

TEST(PlannerTest, AmbiguousColumnRejected) {
  // Join nation with itself is impossible (one name), but two tables with
  // an overlapping column name must be rejected: build a tiny database.
  db::Database database;
  auto t1 = std::make_shared<db::Table>(
      db::Schema({{"id", db::DataType::kInt64}}));
  t1->AppendRow({db::Value::Int64(1)});
  auto t2 = std::make_shared<db::Table>(
      db::Schema({{"id", db::DataType::kInt64}}));
  t2->AppendRow({db::Value::Int64(1)});
  database.RegisterTable("t1", t1);
  database.RegisterTable("t2", t2);
  Result<PlannedQuery> planned =
      PlanQuery("SELECT * FROM t1 JOIN t2 ON id = id", database);
  ASSERT_FALSE(planned.ok());
  EXPECT_NE(planned.status().message().find("ambiguous"),
            std::string::npos);
}

}  // namespace
}  // namespace sql
}  // namespace perfeval
