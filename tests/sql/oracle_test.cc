// Differential oracle harness (DESIGN.md, checked execution + reference
// oracle): every query runs both on the engine — across execution modes,
// worker-thread counts {1, 4} and join algorithms — and on the naive
// row-at-a-time reference interpreter (db/reference.h), and the result
// relations must agree. The engine's fast paths (vectorized kernels,
// zone-map skipping, morsel parallelism, radix joins) share no code with
// the reference, so any agreement failure localizes a wrong-result bug.
//
// Comparison discipline: fuzzed queries carry a total-order ORDER BY
// (group keys are unique per group; (l_orderkey, l_linenumber) is the
// lineitem primary key), so rows are compared positionally. TPC-H plans
// keep their spec ordering, which can tie, so they are compared as
// multisets (DiffTables ignore_row_order). Doubles compare with a 1e-9
// relative tolerance: the reference accumulates flat while the engine
// reduces per-morsel partials, which legitimately differ in the last ulps.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/string_util.h"
#include "db/reference.h"
#include "sql/planner.h"
#include "workload/tpch_gen.h"
#include "workload/tpch_queries.h"

namespace perfeval {
namespace sql {
namespace {

using db::ExecMode;
using db::JoinAlgo;

constexpr double kDoubleTol = 1e-9;

const ExecMode kModes[] = {ExecMode::kDebug, ExecMode::kOptimized};
const int kThreads[] = {1, 4};
const JoinAlgo kJoinAlgos[] = {JoinAlgo::kLegacy, JoinAlgo::kHash,
                               JoinAlgo::kRadix, JoinAlgo::kMerge};

db::Database* Db() {
  static db::Database* database = [] {
    auto* d = new db::Database();
    workload::TpchGenerator gen(0.002);
    gen.LoadAll(d);
    return d;
  }();
  return database;
}

/// Runs `plan` under every mode x threads x join-algo combination and
/// diffs each result against `expected`. Returns the number of engine
/// runs performed. `with_algos` toggles the join-algorithm sweep (it is
/// irrelevant for plans without join nodes).
int DiffAgainstEngine(db::Database* database, const db::PlanPtr& plan,
                      const db::Table& expected, bool with_algos,
                      bool ignore_row_order) {
  int runs = 0;
  for (JoinAlgo algo : kJoinAlgos) {
    database->set_join_algo(algo);
    for (ExecMode mode : kModes) {
      for (int threads : kThreads) {
        database->set_threads(threads);
        db::QueryResult result = database->Run(plan, mode);
        std::string diff = DiffTables(*result.table, expected, kDoubleTol,
                                      ignore_row_order);
        EXPECT_EQ(diff, "") << "algo=" << JoinAlgoName(algo)
                            << " mode=" << ExecModeName(mode)
                            << " threads=" << threads;
        ++runs;
      }
    }
    if (!with_algos) {
      break;
    }
  }
  database->set_threads(1);
  database->set_join_algo(JoinAlgo::kRadix);
  return runs;
}

class TpchOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(TpchOracleTest, EngineMatchesReference) {
  db::Database* database = Db();
  const workload::TpchQuery& query = workload::GetTpchQuery(GetParam());
  db::PlanPtr plan = query.Build(*database);
  ASSERT_NE(plan, nullptr);
  std::shared_ptr<const db::Table> expected =
      db::ReferenceExecute(plan, *database);
  DiffAgainstEngine(database, plan, *expected, /*with_algos=*/true,
                    /*ignore_row_order=*/true);
}

INSTANTIATE_TEST_SUITE_P(All22, TpchOracleTest, ::testing::Range(1, 23));

/// Random query generator for the oracle: same grammar family as
/// fuzz_test.cc, but every query ends in a total-order ORDER BY so the
/// engine and the reference must agree positionally, not just as sets.
class OracleQueryGen {
 public:
  explicit OracleQueryGen(uint64_t seed) : rng_(seed) {}

  struct Generated {
    std::string sql;
    bool has_join = false;
  };

  Generated Next() {
    Generated out;
    out.has_join = rng_.NextBernoulli(0.4);
    bool aggregate = rng_.NextBernoulli(0.6);
    std::string sql_text = "SELECT ";
    if (aggregate) {
      std::string group_col =
          out.has_join
              ? PickOne({"l_returnflag", "l_shipmode", "o_orderpriority",
                         "o_orderstatus", "l_suppkey"})
              : PickOne({"l_returnflag", "l_shipmode", "l_linestatus",
                         "l_suppkey", "l_linenumber"});
      sql_text += group_col + ", " + RandomAggregate() + " AS agg_val";
      sql_text += " FROM lineitem";
      if (out.has_join) {
        sql_text += " JOIN orders ON l_orderkey = o_orderkey";
      }
      if (rng_.NextBernoulli(0.7)) {
        sql_text += " WHERE " + RandomPredicate(out.has_join);
      }
      sql_text += " GROUP BY " + group_col;
      if (rng_.NextBernoulli(0.3)) {
        sql_text +=
            " HAVING count(*) > " + std::to_string(rng_.NextInRange(0, 5));
      }
      // The group key is unique per output row: a total order.
      sql_text += " ORDER BY " + group_col;
    } else {
      sql_text += "l_orderkey, l_quantity, l_extendedprice FROM lineitem";
      if (out.has_join) {
        sql_text += " JOIN orders ON l_orderkey = o_orderkey";
      }
      sql_text += " WHERE " + RandomPredicate(out.has_join);
      // (l_orderkey, l_linenumber) is the lineitem primary key, so the
      // trailing keys break every l_extendedprice tie deterministically.
      sql_text += " ORDER BY l_extendedprice DESC, l_orderkey, l_linenumber";
    }
    if (rng_.NextBernoulli(0.6)) {
      sql_text += " LIMIT " + std::to_string(rng_.NextInRange(1, 50));
    }
    out.sql = sql_text;
    return out;
  }

 private:
  std::string PickOne(std::vector<std::string> options) {
    return options[rng_.NextBounded(static_cast<uint32_t>(options.size()))];
  }

  std::string RandomAggregate() {
    switch (rng_.NextBounded(6)) {
      case 0:
        return "sum(l_quantity)";
      case 1:
        return "avg(l_extendedprice)";
      case 2:
        return "min(l_discount)";
      case 3:
        return "max(l_extendedprice * (1 - l_discount))";
      case 4:
        return "count(*)";
      default:
        return "count(DISTINCT l_suppkey)";
    }
  }

  std::string RandomPredicate(bool join) {
    std::vector<std::string> conjuncts;
    int n = static_cast<int>(rng_.NextInRange(1, 3));
    for (int i = 0; i < n; ++i) {
      switch (rng_.NextBounded(join ? 7 : 5)) {
        case 0:
          conjuncts.push_back(StrFormat(
              "l_quantity < %lld", (long long)rng_.NextInRange(2, 50)));
          break;
        case 1:
          conjuncts.push_back(
              StrFormat("l_discount BETWEEN 0.0%lld AND 0.0%lld",
                        (long long)rng_.NextInRange(0, 4),
                        (long long)rng_.NextInRange(5, 9)));
          break;
        case 2:
          conjuncts.push_back("l_shipmode IN ('MAIL', 'SHIP', 'AIR')");
          break;
        case 3:
          conjuncts.push_back("l_shipdate >= DATE '199" +
                              std::to_string(rng_.NextInRange(2, 8)) +
                              "-01-01'");
          break;
        case 4:
          conjuncts.push_back(rng_.NextBernoulli(0.5)
                                  ? "l_returnflag = 'R'"
                                  : "NOT l_returnflag = 'N'");
          break;
        case 5:
          conjuncts.push_back("o_orderpriority IN ('1-URGENT', '2-HIGH')");
          break;
        default:
          conjuncts.push_back(
              StrFormat("o_totalprice > %lld",
                        (long long)rng_.NextInRange(1000, 400000)));
          break;
      }
    }
    return Join(conjuncts, " AND ");
  }

  Pcg32 rng_;
};

TEST(SqlOracleTest, FuzzedQueriesMatchReference) {
  db::Database* database = Db();
  OracleQueryGen gen(20260806);
  int join_queries = 0;
  int engine_runs = 0;
  const int kQueries = 220;
  for (int i = 0; i < kQueries; ++i) {
    OracleQueryGen::Generated q = gen.Next();
    SCOPED_TRACE(q.sql);
    Result<PlannedQuery> planned = PlanQuery(q.sql, *database);
    ASSERT_TRUE(planned.ok()) << planned.status().ToString();
    std::shared_ptr<const db::Table> expected =
        db::ReferenceExecute(planned->plan, *database);
    engine_runs +=
        DiffAgainstEngine(database, planned->plan, *expected,
                          /*with_algos=*/q.has_join,
                          /*ignore_row_order=*/false);
    join_queries += q.has_join ? 1 : 0;
  }
  // The sweep really covered both query shapes and the full grid.
  EXPECT_GT(join_queries, 50);
  EXPECT_LT(join_queries, 170);
  EXPECT_GE(engine_runs, 4 * kQueries);
}

TEST(SqlOracleTest, GeneratorIsDeterministic) {
  OracleQueryGen a(9);
  OracleQueryGen b(9);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.Next().sql, b.Next().sql);
  }
}

}  // namespace
}  // namespace sql
}  // namespace perfeval
