// Differential oracle for the cost-based optimizer (DESIGN.md S17): the
// optimizer re-orders join trees and pins per-join algorithms, which is
// exactly the kind of rewrite that can silently corrupt results — so every
// TPC-H plan and a fuzzed-query sweep run with the optimizer enabled
// across execution modes x worker threads {1, 4} x shard counts {1, 2},
// and each result is diffed against BOTH the rule-only plan's result and
// the row-at-a-time reference interpreter. Zero mismatches required.
//
// Comparison discipline matches the base oracle: TPC-H as multisets,
// fuzzed queries positionally (they end in a total-order ORDER BY), 1e-9
// relative tolerance on doubles — join reordering reassociates per-group
// double sums, which legitimately differs in the last ulps.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/string_util.h"
#include "db/reference.h"
#include "opt/optimizer.h"
#include "shard/cluster.h"
#include "sql/planner.h"
#include "workload/tpch_gen.h"
#include "workload/tpch_queries.h"

namespace perfeval {
namespace sql {
namespace {

using db::ExecMode;

constexpr double kOptSf = 0.002;
constexpr double kDoubleTol = 1e-9;

const ExecMode kModes[] = {ExecMode::kDebug, ExecMode::kOptimized};
const int kThreads[] = {1, 4};

db::Database* OptOracleDb() {
  static db::Database* database = [] {
    auto* d = new db::Database();
    workload::TpchGenerator gen(kOptSf);
    gen.LoadAll(d);
    return d;
  }();
  return database;
}

shard::ShardCluster* OptOracleCluster() {
  static shard::ShardCluster* cluster = [] {
    shard::ShardClusterOptions options;
    options.num_shards = 2;
    options.shard_service.workers = 2;
    options.shard_service.fingerprint_results = false;
    auto* c = new shard::ShardCluster(options);
    workload::TpchGenerator gen(kOptSf);
    c->LoadTpch(&gen);
    return c;
  }();
  return cluster;
}

/// Runs `optimized` across modes x threads (1 shard) plus the 2-shard
/// scatter-gather path, diffing every result against `expected`.
void DiffOptimizedEverywhere(db::Database* database,
                             const db::PlanPtr& optimized,
                             const db::Table& expected,
                             bool ignore_row_order) {
  for (ExecMode mode : kModes) {
    for (int threads : kThreads) {
      database->set_threads(threads);
      db::QueryResult result = database->Run(optimized, mode);
      EXPECT_EQ(DiffTables(*result.table, expected, kDoubleTol,
                           ignore_row_order),
                "")
          << "mode=" << ExecModeName(mode) << " threads=" << threads
          << "\n" << db::Explain(optimized);
    }
  }
  database->set_threads(1);
  shard::ShardCluster* cluster = OptOracleCluster();
  for (ExecMode mode : kModes) {
    shard::ShardedResult sharded = cluster->Execute(optimized, mode);
    EXPECT_EQ(DiffTables(*sharded.result.table, expected, kDoubleTol,
                         /*ignore_row_order=*/true),
              "")
        << "shards=2 mode=" << ExecModeName(mode) << "\n"
        << db::Explain(optimized);
  }
}

class OptimizedTpchOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(OptimizedTpchOracleTest, OptimizerMatchesReferenceAndRulePlan) {
  db::Database* database = OptOracleDb();
  db::PlanPtr rule_plan =
      workload::GetTpchQuery(GetParam()).Build(*database);
  ASSERT_NE(rule_plan, nullptr);
  db::PlanPtr optimized = opt::Optimize(rule_plan, *database).plan;
  ASSERT_NE(optimized, nullptr);

  // Oracle 1: the independent reference interpreter.
  std::shared_ptr<const db::Table> reference =
      db::ReferenceExecute(rule_plan, *database);
  // Oracle 2: the engine on the rule-only plan.
  db::QueryResult rule_result = database->Run(rule_plan);

  DiffOptimizedEverywhere(database, optimized, *reference,
                          /*ignore_row_order=*/true);
  DiffOptimizedEverywhere(database, optimized, *rule_result.table,
                          /*ignore_row_order=*/true);
}

INSTANTIATE_TEST_SUITE_P(All22, OptimizedTpchOracleTest,
                         ::testing::Range(1, 23));

/// Fuzzed join queries with a total-order ORDER BY, planned through the
/// SQL path with the `optimize` knob on — the exact production wiring
/// (`\opt on` / --dbOpt=on).
TEST(OptimizedSqlOracleTest, FuzzedQueriesMatchReferenceAndRulePlan) {
  db::Database* database = OptOracleDb();
  Pcg32 rng(20260808);
  const int kQueries = 60;
  int reordered_plans = 0;
  for (int i = 0; i < kQueries; ++i) {
    std::string agg;
    switch (rng.NextBounded(4)) {
      case 0: agg = "sum(l_quantity)"; break;
      case 1: agg = "avg(l_extendedprice)"; break;
      case 2: agg = "count(*)"; break;
      default: agg = "max(l_extendedprice * (1 - l_discount))"; break;
    }
    std::string group =
        rng.NextBernoulli(0.5) ? "l_returnflag" : "o_orderpriority";
    std::string sql = "SELECT " + group + ", " + agg +
                      " AS agg_val FROM lineitem JOIN orders ON "
                      "l_orderkey = o_orderkey";
    if (rng.NextBernoulli(0.7)) {
      sql += StrFormat(" WHERE l_quantity < %lld",
                       (long long)rng.NextInRange(5, 45));
    }
    sql += " GROUP BY " + group + " ORDER BY " + group;
    SCOPED_TRACE(sql);

    database->set_optimize(false);
    Result<PlannedQuery> rule = PlanQuery(sql, *database);
    ASSERT_TRUE(rule.ok()) << rule.status().ToString();
    database->set_optimize(true);
    Result<PlannedQuery> optimized = PlanQuery(sql, *database);
    database->set_optimize(false);
    ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
    if (db::Explain(optimized->plan) != db::Explain(rule->plan)) {
      ++reordered_plans;
    }

    std::shared_ptr<const db::Table> reference =
        db::ReferenceExecute(rule->plan, *database);
    db::QueryResult rule_result = database->Run(rule->plan);
    for (ExecMode mode : kModes) {
      for (int threads : kThreads) {
        database->set_threads(threads);
        db::QueryResult result = database->Run(optimized->plan, mode);
        EXPECT_EQ(DiffTables(*result.table, *reference, kDoubleTol,
                             /*ignore_row_order=*/false),
                  "")
            << "mode=" << ExecModeName(mode) << " threads=" << threads;
        EXPECT_EQ(DiffTables(*result.table, *rule_result.table, kDoubleTol,
                             /*ignore_row_order=*/false),
                  "")
            << "vs rule plan, mode=" << ExecModeName(mode)
            << " threads=" << threads;
      }
    }
    database->set_threads(1);
  }
  // The sweep must actually exercise the optimizer, not no-op through it.
  EXPECT_GT(reordered_plans, 0);
}

/// Plan choice is part of the determinism contract: the knob may not let
/// scheduling state leak into the chosen plan.
TEST(OptimizedSqlOracleTest, PlanChoiceIgnoresThreadCount) {
  db::Database* database = OptOracleDb();
  const std::string sql =
      "SELECT l_returnflag, sum(l_quantity) AS q FROM lineitem "
      "JOIN orders ON l_orderkey = o_orderkey "
      "WHERE o_totalprice > 1000 GROUP BY l_returnflag ORDER BY "
      "l_returnflag";
  database->set_optimize(true);
  database->set_threads(1);
  Result<PlannedQuery> t1 = PlanQuery(sql, *database);
  database->set_threads(4);
  Result<PlannedQuery> t4 = PlanQuery(sql, *database);
  database->set_threads(1);
  database->set_optimize(false);
  ASSERT_TRUE(t1.ok() && t4.ok());
  EXPECT_EQ(db::Explain(t1->plan), db::Explain(t4->plan));
}

}  // namespace
}  // namespace sql
}  // namespace perfeval
