// Scatter-gather equality and determinism (DESIGN.md S16). The central
// claims under test:
//
//   1. Results: every TPC-H query executed across N shards equals the
//      single-node result at every shard count (multiset comparison with
//      the repo's 1e-9 double tolerance — double SUMs reassociate across
//      shards).
//   2. StorageStats: the coordinator's replayed logical I/O is
//      *bit-identical* to the single-node counters — exact integer
//      equality on hits/misses/bytes/stall, any shard count.
//   3. Determinism: at a fixed shard count the merged result fingerprint
//      is bit-identical at any per-shard thread count.
//   4. Straggler attribution: a shard with a slow disk shows up as
//      slowest_shard with the stall in its timing split.

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "db/reference.h"
#include "serve/service.h"
#include "shard/cluster.h"
#include "shard/frontend.h"
#include "workload/tpch_gen.h"
#include "workload/tpch_queries.h"

namespace perfeval {
namespace shard {
namespace {

constexpr double kSf = 0.002;
constexpr double kDoubleTol = 1e-9;

db::Database* SingleNode() {
  static db::Database* database = [] {
    auto* d = new db::Database();
    workload::TpchGenerator gen(kSf);
    gen.LoadAll(d);
    return d;
  }();
  return database;
}

ShardCluster* Cluster(int num_shards) {
  static std::map<int, std::unique_ptr<ShardCluster>>* clusters =
      new std::map<int, std::unique_ptr<ShardCluster>>();
  auto it = clusters->find(num_shards);
  if (it == clusters->end()) {
    ShardClusterOptions options;
    options.num_shards = num_shards;
    options.shard_service.workers = 2;
    options.shard_service.fingerprint_results = false;
    auto cluster = std::make_unique<ShardCluster>(options);
    workload::TpchGenerator gen(kSf);
    cluster->LoadTpch(&gen);
    it = clusters->emplace(num_shards, std::move(cluster)).first;
  }
  return it->second.get();
}

/// Cold-runs `plan` on the single-node engine and on the cluster and
/// compares result relations (multiset, 1e-9) and the four logical
/// StorageStats fields (exact).
void ExpectShardedMatches(ShardCluster* cluster, const db::PlanPtr& plan,
                          const char* label) {
  SingleNode()->FlushCaches();
  db::QueryResult expected = SingleNode()->Run(plan);
  cluster->FlushCaches();
  ShardedResult actual = cluster->Execute(plan);

  std::string diff = db::DiffTables(*actual.result.table, *expected.table,
                                    kDoubleTol, /*ignore_row_order=*/true);
  EXPECT_EQ(diff, "") << label;
  EXPECT_EQ(actual.result.storage.page_hits, expected.storage.page_hits)
      << label;
  EXPECT_EQ(actual.result.storage.page_misses, expected.storage.page_misses)
      << label;
  EXPECT_EQ(actual.result.storage.bytes_read, expected.storage.bytes_read)
      << label;
  EXPECT_EQ(actual.result.storage.stall_ns, expected.storage.stall_ns)
      << label;
  EXPECT_EQ(actual.result.server.simulated_stall_ns,
            expected.server.simulated_stall_ns)
      << label;
}

class ShardedTpchTest : public ::testing::TestWithParam<int> {};

TEST_P(ShardedTpchTest, MatchesSingleNodeAtEveryShardCount) {
  db::PlanPtr plan =
      workload::GetTpchQuery(GetParam()).Build(*SingleNode());
  for (int n : {1, 2, 4, 8}) {
    std::string label = "Q" + std::to_string(GetParam()) + " shards=" +
                        std::to_string(n);
    ExpectShardedMatches(Cluster(n), plan, label.c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(All22, ShardedTpchTest, ::testing::Range(1, 23));

TEST(ShardClusterTest, WarmRunStatsAlsoMatch) {
  // The replay shares the engine's buffer-pool semantics, so the hot-run
  // deltas (second execution, pages resident) must match too.
  db::PlanPtr plan = workload::GetTpchQuery(6).Build(*SingleNode());
  ShardCluster* cluster = Cluster(4);
  SingleNode()->FlushCaches();
  cluster->FlushCaches();
  SingleNode()->Run(plan);
  cluster->Execute(plan);
  db::QueryResult expected = SingleNode()->Run(plan);
  ShardedResult actual = cluster->Execute(plan);
  EXPECT_EQ(actual.result.storage.page_hits, expected.storage.page_hits);
  EXPECT_EQ(actual.result.storage.page_misses, expected.storage.page_misses);
  EXPECT_EQ(actual.result.storage.bytes_read, expected.storage.bytes_read);
  EXPECT_EQ(actual.result.storage.stall_ns, expected.storage.stall_ns);
}

TEST(ShardClusterTest, FingerprintBitIdenticalAcrossShardThreads) {
  ShardCluster* cluster = Cluster(4);
  for (int q : {1, 3, 6, 18}) {
    db::PlanPtr plan = workload::GetTpchQuery(q).Build(*SingleNode());
    for (int s = 0; s < cluster->num_shards(); ++s) {
      cluster->shard_db(s).set_threads(1);
    }
    uint64_t fp1 = serve::QueryService::FingerprintTable(
        *cluster->Execute(plan).result.table);
    for (int s = 0; s < cluster->num_shards(); ++s) {
      cluster->shard_db(s).set_threads(4);
    }
    uint64_t fp4 = serve::QueryService::FingerprintTable(
        *cluster->Execute(plan).result.table);
    for (int s = 0; s < cluster->num_shards(); ++s) {
      cluster->shard_db(s).set_threads(1);
    }
    EXPECT_EQ(fp1, fp4) << "Q" << q;
  }
}

TEST(ShardClusterTest, StragglerShardIsAttributed) {
  ShardClusterOptions options;
  options.num_shards = 4;
  options.shard_service.fingerprint_results = false;
  // Shard 2 runs a spinning-rust disk 10x slower than the default model;
  // the others get zero-cost disks so the contrast is unambiguous.
  for (int s = 0; s < 4; ++s) {
    options.shard_disk_override[s] = db::DiskModel{0, 0.0};
  }
  options.shard_disk_override[2] = db::DiskModel{90'000'000, 200.0};
  ShardCluster cluster(options);
  workload::TpchGenerator gen(kSf);
  cluster.LoadTpch(&gen);

  db::PlanPtr plan = workload::GetTpchQuery(6).Build(*SingleNode());
  cluster.FlushCaches();
  ShardedResult result = cluster.Execute(plan);

  EXPECT_EQ(result.slowest_shard, 2);
  for (int s = 0; s < 4; ++s) {
    if (s == 2) {
      continue;
    }
    EXPECT_GT(result.shards[2].timing.exec_ns,
              result.shards[static_cast<size_t>(s)].timing.exec_ns)
        << "shard " << s;
  }
  // A slow disk changes timing, never results or the logical stats.
  SingleNode()->FlushCaches();
  db::QueryResult expected = SingleNode()->Run(plan);
  EXPECT_EQ(db::DiffTables(*result.result.table, *expected.table, kDoubleTol,
                           /*ignore_row_order=*/true),
            "");
  EXPECT_EQ(result.result.storage.bytes_read, expected.storage.bytes_read);
}

TEST(ShardClusterTest, FrontEndServesPlanlessRequestsWithQuotas) {
  ShardCluster* cluster = Cluster(2);
  serve::ServiceOptions options;
  options.workers = 2;
  options.tenant_quotas["capped"] = 1;
  FrontEnd frontend(cluster, options);

  // Plan-less request: the executor builds TPC-H Q6 against the cluster
  // catalog; fingerprint must equal the single-node result's.
  serve::Request request;
  request.query = 6;
  serve::Response response = frontend.Execute(request);
  ASSERT_TRUE(response.status.ok());
  db::PlanPtr plan = workload::GetTpchQuery(6).Build(*SingleNode());
  EXPECT_EQ(response.fingerprint, serve::QueryService::FingerprintTable(
                                      *SingleNode()->Run(plan).table));

  // The front-end enforces per-tenant admission like the single-node
  // service: a tenant at quota is shed without blocking.
  serve::Request held;
  held.query = 1;
  held.tenant = "capped";
  serve::Request second;
  second.query = 6;
  second.tenant = "capped";
  // Submit both back to back; with quota 1 at least one of the two must
  // be admitted, and a rejection (if the first is still outstanding) is
  // immediate with kOverloaded.
  auto h1 = frontend.Submit(held);
  auto h2 = frontend.Submit(second);
  const serve::Response& r1 = h1->Wait();
  const serve::Response& r2 = h2->Wait();
  EXPECT_TRUE(r1.status.ok());
  if (!r2.status.ok()) {
    EXPECT_EQ(r2.status.code(), StatusCode::kOverloaded);
  }
  frontend.Shutdown();
}

// Concurrent scatter-gather: several client threads drive one cluster's
// front-end at once. Run under TSan (ctest -L shard in the sanitizer
// build) this is the data-race check for the coordinator, the per-shard
// services, and the shared replay storage.
TEST(ShardClusterTest, ConcurrentScatterGatherIsRaceFreeAndCorrect) {
  ShardCluster* cluster = Cluster(2);
  db::PlanPtr q1 = workload::GetTpchQuery(1).Build(*SingleNode());
  db::PlanPtr q6 = workload::GetTpchQuery(6).Build(*SingleNode());
  std::shared_ptr<const db::Table> expected1 = SingleNode()->Run(q1).table;
  std::shared_ptr<const db::Table> expected6 = SingleNode()->Run(q6).table;

  serve::ServiceOptions options;
  options.workers = 4;
  FrontEnd frontend(cluster, options);
  constexpr int kClients = 4;
  constexpr int kPerClient = 4;
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        bool odd = (c + i) % 2 == 1;
        serve::Request request;
        request.plan = odd ? q6 : q1;
        serve::Response response = frontend.Execute(request);
        if (!response.status.ok()) {
          failures[c] = response.status.ToString();
          return;
        }
        std::string diff =
            db::DiffTables(*response.table, odd ? *expected6 : *expected1,
                           kDoubleTol, /*ignore_row_order=*/true);
        if (!diff.empty()) {
          failures[c] = diff;
          return;
        }
      }
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  frontend.Shutdown();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], "") << "client " << c;
  }
}

TEST(ShardClusterTest, PartitionCoversAndSeparatesRows) {
  // The union of per-shard slices is exactly the input, and each row lands
  // on the shard its key hashes to.
  ShardCluster* cluster = Cluster(4);
  size_t total = 0;
  for (int s = 0; s < 4; ++s) {
    total += cluster->shard_db(s).GetTable("lineitem").num_rows();
  }
  EXPECT_EQ(total, SingleNode()->GetTable("lineitem").num_rows());
  // Replicated tables are whole everywhere.
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(cluster->shard_db(s).GetTable("nation").num_rows(),
              SingleNode()->GetTable("nation").num_rows());
  }
}

}  // namespace
}  // namespace shard
}  // namespace perfeval
