// Site-lattice placement and fragment extraction (DESIGN.md S16). These
// tests pin the planner's placement decisions on hand-built plans: which
// subtrees stay shard-local, which joins are recognized as co-located, and
// where the coordinator boundary cuts fragments.

#include <memory>

#include <gtest/gtest.h>

#include "db/plan.h"
#include "shard/planner.h"
#include "workload/tpch_gen.h"
#include "workload/tpch_queries.h"

namespace perfeval {
namespace shard {
namespace {

db::Database* Catalog() {
  static db::Database* database = [] {
    auto* d = new db::Database();
    workload::TpchGenerator gen(0.001);
    gen.LoadAll(d);
    return d;
  }();
  return database;
}

const SiteAnnotation& AnnotOf(
    const std::map<const db::PlanNode*, SiteAnnotation>& annot,
    const db::PlanPtr& node) {
  return annot.at(node.get());
}

TEST(ShardPlannerTest, ScanSitesFollowTheScheme) {
  PartitionScheme scheme = TpchPartitionScheme();
  db::PlanPtr lineitem = db::Scan("lineitem");
  db::PlanPtr nation = db::Scan("nation");
  auto annot_l = AnnotateSites(lineitem, scheme, *Catalog());
  auto annot_n = AnnotateSites(nation, scheme, *Catalog());

  const SiteAnnotation& l = AnnotOf(annot_l, lineitem);
  EXPECT_EQ(l.site, Site::kPartitioned);
  // l_orderkey (column 0 of lineitem) carries the orderkey domain.
  ASSERT_EQ(l.key_domains.size(), 1u);
  EXPECT_EQ(l.key_domains.begin()->second, "orderkey");
  EXPECT_EQ(l.schema.num_columns(),
            Catalog()->GetTable("lineitem").schema().num_columns());

  EXPECT_EQ(AnnotOf(annot_n, nation).site, Site::kReplicated);
  EXPECT_TRUE(AnnotOf(annot_n, nation).key_domains.empty());
}

TEST(ShardPlannerTest, CoPartitionedJoinStaysPartitioned) {
  PartitionScheme scheme = TpchPartitionScheme();
  // lineitem ⨝ orders on the co-partitioned orderkey domain.
  db::PlanPtr join = db::HashJoin(db::Scan("lineitem"), db::Scan("orders"),
                                  "l_orderkey", "o_orderkey");
  auto annot = AnnotateSites(join, scheme, *Catalog());
  const SiteAnnotation& a = AnnotOf(annot, join);
  EXPECT_EQ(a.site, Site::kPartitioned);
  // Both sides' keys survive into the join output.
  EXPECT_EQ(a.key_domains.size(), 2u);
}

TEST(ShardPlannerTest, NonColocatedJoinMovesToCoordinator) {
  PartitionScheme scheme = TpchPartitionScheme();
  // orders ⨝ customer joins the orderkey domain against the custkey
  // domain: equal o_custkey/c_custkey values live on different shards.
  db::PlanPtr join = db::HashJoin(db::Scan("orders"), db::Scan("customer"),
                                  "o_custkey", "c_custkey");
  auto annot = AnnotateSites(join, scheme, *Catalog());
  EXPECT_EQ(AnnotOf(annot, join).site, Site::kCoordinator);
}

TEST(ShardPlannerTest, PartitionedJoinReplicatedStaysPartitioned) {
  PartitionScheme scheme = TpchPartitionScheme();
  db::PlanPtr join = db::HashJoin(db::Scan("lineitem"), db::Scan("supplier"),
                                  "l_suppkey", "s_suppkey");
  auto annot = AnnotateSites(join, scheme, *Catalog());
  EXPECT_EQ(AnnotOf(annot, join).site, Site::kPartitioned);
}

TEST(ShardPlannerTest, SortAndAggregateLeaveThePartitionedSite) {
  PartitionScheme scheme = TpchPartitionScheme();
  db::PlanPtr sort =
      db::Sort(db::Scan("lineitem"), {{"l_orderkey", true}});
  auto annot = AnnotateSites(sort, scheme, *Catalog());
  EXPECT_EQ(AnnotOf(annot, sort).site, Site::kCoordinator);

  db::PlanPtr agg = db::Aggregate(
      db::Scan("nation"), {"n_regionkey"},
      {{db::AggOp::kCount, nullptr, "cnt"}});
  auto annot2 = AnnotateSites(agg, scheme, *Catalog());
  // Over a replicated child any single shard can aggregate.
  EXPECT_EQ(AnnotOf(annot2, agg).site, Site::kReplicated);
}

TEST(ShardPlannerTest, ReplicatedPlanBecomesOneShardZeroFragment) {
  PartitionScheme scheme = TpchPartitionScheme();
  db::PlanPtr plan = db::Sort(db::Scan("nation"), {{"n_name", true}});
  DistributedPlan dp = PlanDistributed(plan, scheme, *Catalog());
  ASSERT_EQ(dp.fragments.size(), 1u);
  EXPECT_TRUE(dp.fragments[0].replicated_only);
  EXPECT_FALSE(dp.fragments[0].agg_split.has_value());
  // The whole plan is the fragment; the residual is just its scan.
  EXPECT_EQ(dp.residual->Spec().kind, db::PlanKind::kScan);
  EXPECT_EQ(dp.residual->Spec().table_name, FragmentTableName(0));
}

TEST(ShardPlannerTest, AggregateOverPartitionedSplitsIntoPartials) {
  PartitionScheme scheme = TpchPartitionScheme();
  const db::Schema& lineitem = Catalog()->GetTable("lineitem").schema();
  db::PlanPtr plan = db::Aggregate(
      db::Scan("lineitem"), {"l_returnflag"},
      {{db::AggOp::kSum, db::Col(lineitem, "l_quantity"), "sum_qty"},
       {db::AggOp::kAvg, db::Col(lineitem, "l_extendedprice"), "avg_price"},
       {db::AggOp::kCount, nullptr, "cnt"}});
  DistributedPlan dp = PlanDistributed(plan, scheme, *Catalog());
  ASSERT_EQ(dp.fragments.size(), 1u);
  const FragmentPlan& frag = dp.fragments[0];
  EXPECT_FALSE(frag.replicated_only);
  ASSERT_TRUE(frag.agg_split.has_value());
  // AVG decomposes into SUM + COUNT partials, so the partial relation is
  // wider than the original aggregate list; the gathered fragment table
  // still has the original output schema.
  EXPECT_GT(frag.agg_split->partial.size(), 3u);
  EXPECT_EQ(frag.output_schema.num_columns(), 4u);  // group key + 3 aggs.
  EXPECT_EQ(frag.plan->Spec().kind, db::PlanKind::kAggregate);
}

TEST(ShardPlannerTest, CountDistinctGathersInsteadOfSplitting) {
  PartitionScheme scheme = TpchPartitionScheme();
  const db::Schema& lineitem = Catalog()->GetTable("lineitem").schema();
  db::PlanPtr plan = db::Aggregate(
      db::Scan("lineitem"), {"l_returnflag"},
      {{db::AggOp::kCountDistinct, db::Col(lineitem, "l_suppkey"), "d"}});
  DistributedPlan dp = PlanDistributed(plan, scheme, *Catalog());
  // COUNT DISTINCT cannot merge from per-shard states: the fragment is
  // the raw child and the aggregate runs at the coordinator.
  ASSERT_EQ(dp.fragments.size(), 1u);
  EXPECT_FALSE(dp.fragments[0].agg_split.has_value());
  EXPECT_EQ(dp.fragments[0].plan->Spec().kind, db::PlanKind::kScan);
  EXPECT_EQ(dp.residual->Spec().kind, db::PlanKind::kAggregate);
}

TEST(ShardPlannerTest, ProjectKeepsKeysThroughIdentityColumns) {
  PartitionScheme scheme = TpchPartitionScheme();
  const db::Schema& orders = Catalog()->GetTable("orders").schema();
  db::PlanPtr project = db::Project(
      db::Scan("orders"),
      {db::Col(orders, "o_orderkey"), db::Col(orders, "o_totalprice")},
      {"key", "price"});
  auto annot = AnnotateSites(project, scheme, *Catalog());
  const SiteAnnotation& a = AnnotOf(annot, project);
  EXPECT_EQ(a.site, Site::kPartitioned);
  ASSERT_EQ(a.key_domains.count(0), 1u);
  EXPECT_EQ(a.key_domains.at(0), "orderkey");
  EXPECT_EQ(a.schema.num_columns(), 2u);
}

TEST(ShardPlannerTest, All22QueriesDecompose) {
  PartitionScheme scheme = TpchPartitionScheme();
  for (int q = 1; q <= 22; ++q) {
    db::PlanPtr plan = workload::GetTpchQuery(q).Build(*Catalog());
    DistributedPlan dp = PlanDistributed(plan, scheme, *Catalog());
    EXPECT_GE(dp.fragments.size(), 1u) << "Q" << q;
    EXPECT_NE(dp.residual, nullptr) << "Q" << q;
    EXPECT_EQ(dp.original.get(), plan.get()) << "Q" << q;
  }
}

}  // namespace
}  // namespace shard
}  // namespace perfeval
