#include "repro/manifest.h"

#include <fstream>

#include <gtest/gtest.h>

namespace perfeval {
namespace repro {
namespace {

TEST(ManifestTest, RendersAllSections) {
  RunManifest manifest("T2", "hot runs: 1 warm-up, 3 measured, last");
  core::EnvironmentSpec env;
  env.cpu_model = "TestCPU";
  env.cpu_mhz = 1000;
  env.cache_kb = 512;
  env.ram_mb = 1024;
  env.os = "Linux test";
  env.compiler = "gcc";
  env.build_type = "optimized";
  env.library_version = "perfeval 1.0.0";
  manifest.set_environment(env);
  Properties props;
  props.Set("scaleFactor", "0.02");
  manifest.set_properties(props);
  manifest.AddOutput("bench_results/t2_hot_cold.csv");
  manifest.AddNote("cold achieved via buffer-pool flush");

  std::string text = manifest.ToString();
  EXPECT_NE(text.find("[experiment]"), std::string::npos);
  EXPECT_NE(text.find("id=T2"), std::string::npos);
  EXPECT_NE(text.find("protocol=hot runs"), std::string::npos);
  EXPECT_NE(text.find("[environment]"), std::string::npos);
  EXPECT_NE(text.find("TestCPU"), std::string::npos);
  EXPECT_NE(text.find("[parameters]"), std::string::npos);
  EXPECT_NE(text.find("scaleFactor=0.02"), std::string::npos);
  EXPECT_NE(text.find("[outputs]"), std::string::npos);
  EXPECT_NE(text.find("t2_hot_cold.csv"), std::string::npos);
  EXPECT_NE(text.find("[notes]"), std::string::npos);
  EXPECT_NE(text.find("buffer-pool flush"), std::string::npos);
}

TEST(ManifestTest, NotesSectionOmittedWhenEmpty) {
  RunManifest manifest("T1", "protocol");
  EXPECT_EQ(manifest.ToString().find("[notes]"), std::string::npos);
}

TEST(ManifestTest, WritesToFile) {
  RunManifest manifest("F2", "cold simulated caches");
  manifest.AddOutput("f2.csv");
  std::string path =
      ::testing::TempDir() + "/manifest_test/sub/manifest.txt";
  ASSERT_TRUE(manifest.WriteToFile(path).ok());
  std::ifstream file(path);
  std::string content((std::istreambuf_iterator<char>(file)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("id=F2"), std::string::npos);
}

}  // namespace
}  // namespace repro
}  // namespace perfeval
