#include "repro/suite.h"

#include <gtest/gtest.h>

namespace perfeval {
namespace repro {
namespace {

TEST(SuiteTest, RegisterAndFind) {
  ExperimentSuite suite("demo", "a compiler");
  ASSERT_TRUE(suite
                  .Register({"E1", "first experiment", "bin/e1", "out/e1",
                             "1 min", ""})
                  .ok());
  ASSERT_NE(suite.Find("E1"), nullptr);
  EXPECT_EQ(suite.Find("E1")->title, "first experiment");
  EXPECT_EQ(suite.Find("E2"), nullptr);
}

TEST(SuiteTest, DuplicateIdsRejected) {
  ExperimentSuite suite("demo", "deps");
  ASSERT_TRUE(suite.Register({"E1", "t", "c", "o", "r", ""}).ok());
  Status status = suite.Register({"E1", "t2", "c2", "o2", "r2", ""});
  EXPECT_EQ(status.code(), StatusCode::kAlreadyExists);
}

TEST(SuiteTest, InstructionsFollowSlide216Checklist) {
  // Slide 216: specify installation, per experiment the script to run,
  // where to look for the graph, how long it takes, extra setup.
  ExperimentSuite suite("demo", "needs cmake and ninja");
  ASSERT_TRUE(suite
                  .Register({"E1", "warm scan", "bin/scan --warm",
                             "results/scan.csv", "about 2 minutes",
                             "generate data first"})
                  .ok());
  std::string doc = suite.InstructionsMarkdown();
  EXPECT_NE(doc.find("## Installation"), std::string::npos);
  EXPECT_NE(doc.find("needs cmake and ninja"), std::string::npos);
  EXPECT_NE(doc.find("### E1: warm scan"), std::string::npos);
  EXPECT_NE(doc.find("`bin/scan --warm`"), std::string::npos);
  EXPECT_NE(doc.find("results/scan.csv"), std::string::npos);
  EXPECT_NE(doc.find("about 2 minutes"), std::string::npos);
  EXPECT_NE(doc.find("generate data first"), std::string::npos);
}

TEST(SuiteTest, NotesAppearAfterExperimentSections) {
  ExperimentSuite suite("demo", "deps");
  ASSERT_TRUE(suite.Register({"E1", "t", "c", "o", "r", ""}).ok());
  suite.AddNote("Sanitizers", "run the labelled tests under TSan");
  std::string doc = suite.InstructionsMarkdown();
  size_t experiment = doc.find("### E1");
  size_t note = doc.find("## Sanitizers");
  ASSERT_NE(experiment, std::string::npos);
  ASSERT_NE(note, std::string::npos);
  EXPECT_LT(experiment, note);
  EXPECT_NE(doc.find("run the labelled tests under TSan"), std::string::npos);
}

TEST(SuiteTest, PerfevalSuiteDocumentsSchedulingFlags) {
  // The generated REPRODUCING.md must cover the uniform --jobs/--order
  // flags and the ThreadSanitizer recipe for the sched-labelled tests.
  std::string doc = PerfevalSuite().InstructionsMarkdown();
  EXPECT_NE(doc.find("--jobs"), std::string::npos);
  EXPECT_NE(doc.find("design|randomized|interleaved"), std::string::npos);
  EXPECT_NE(doc.find("PERFEVAL_SANITIZE=thread"), std::string::npos);
  EXPECT_NE(doc.find("-L sched"), std::string::npos);
  // ... and the engine-level parallelism knob plus its db-labelled tests.
  EXPECT_NE(doc.find("--dbThreads"), std::string::npos);
  EXPECT_NE(doc.find("-L db"), std::string::npos);
  EXPECT_NE(doc.find("morsel"), std::string::npos);
  // ... and the write-path suite: its ctest label and crash fuzzer.
  EXPECT_NE(doc.find("-L txn"), std::string::npos);
  EXPECT_NE(doc.find("crash-point"), std::string::npos);
  // ... and the shard cluster: its ctest label and the scale-out story.
  EXPECT_NE(doc.find("-L shard"), std::string::npos);
  EXPECT_NE(doc.find("ShardCluster"), std::string::npos);
  // ... and the cost-based optimizer: its ctest label and the opt-in knob.
  EXPECT_NE(doc.find("-L opt"), std::string::npos);
  EXPECT_NE(doc.find("--dbOpt"), std::string::npos);
}

TEST(SuiteTest, PerfevalSuiteCoversDesignDocIndex) {
  // Every experiment id from DESIGN.md's per-experiment index must be
  // registered.
  const ExperimentSuite& suite = PerfevalSuite();
  for (const char* id :
       {"T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "F1", "F2", "F3",
        "F4", "F5", "A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8",
        "A9", "A10", "A11", "A12"}) {
    EXPECT_NE(suite.Find(id), nullptr) << id;
  }
  EXPECT_EQ(suite.experiments().size(), 25u);
}

TEST(SuiteTest, PerfevalSuiteCommandsPointAtBenchBinaries) {
  for (const ExperimentInfo& info : PerfevalSuite().experiments()) {
    EXPECT_NE(info.command.find("build/bench/bench_"), std::string::npos)
        << info.id;
    EXPECT_FALSE(info.approx_runtime.empty()) << info.id;
  }
}

}  // namespace
}  // namespace repro
}  // namespace perfeval
