#include "repro/properties.h"

#include <cstdlib>
#include <fstream>

#include <gtest/gtest.h>

namespace perfeval {
namespace repro {
namespace {

TEST(PropertiesTest, DefaultsAndOverrides) {
  Properties props;
  props.SetDefault("dataDir", "./data");
  props.SetDefault("doStore", "true");
  EXPECT_EQ(props.GetOr("dataDir", ""), "./data");
  props.Set("dataDir", "/tmp/override");
  EXPECT_EQ(props.GetOr("dataDir", ""), "/tmp/override");
  // Re-setting a default does not clobber the explicit value.
  props.SetDefault("dataDir", "./other");
  EXPECT_EQ(props.GetOr("dataDir", ""), "/tmp/override");
}

TEST(PropertiesTest, MissingKeyFallsBack) {
  Properties props;
  EXPECT_FALSE(props.Has("nope"));
  EXPECT_FALSE(props.Get("nope").has_value());
  EXPECT_EQ(props.GetOr("nope", "fallback"), "fallback");
}

TEST(PropertiesTest, TypedGetters) {
  Properties props;
  props.Set("n", "42");
  props.Set("x", "2.5");
  props.Set("flag", "true");
  props.Set("junk", "abc");
  EXPECT_EQ(props.GetInt("n", -1), 42);
  EXPECT_DOUBLE_EQ(props.GetDouble("x", -1.0), 2.5);
  EXPECT_TRUE(props.GetBool("flag", false));
  EXPECT_EQ(props.GetInt("junk", -1), -1);
  EXPECT_EQ(props.GetInt("absent", 7), 7);
}

TEST(PropertiesTest, LoadFileParsesKeyValueLines) {
  std::string path = ::testing::TempDir() + "/props_test.conf";
  {
    std::ofstream file(path);
    file << "# comment line\n"
         << "! also a comment\n"
         << "\n"
         << "scaleFactor = 0.05\n"
         << "bufferPages=256\n"
         << "  sink = terminal  \n";
  }
  Properties props;
  ASSERT_TRUE(props.LoadFile(path).ok());
  EXPECT_DOUBLE_EQ(props.GetDouble("scaleFactor", 0.0), 0.05);
  EXPECT_EQ(props.GetInt("bufferPages", 0), 256);
  EXPECT_EQ(props.GetOr("sink", ""), "terminal");
}

TEST(PropertiesTest, MissingFileIsMeaningfulError) {
  // "Report meaningful error if the configuration file is not found"
  // (slide 189).
  Properties props;
  Status status = props.LoadFile("/nonexistent/path.conf");
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_NE(status.message().find("/nonexistent/path.conf"),
            std::string::npos);
}

TEST(PropertiesTest, MalformedLineReportsLineNumber) {
  std::string path = ::testing::TempDir() + "/bad_props.conf";
  {
    std::ofstream file(path);
    file << "good=1\n"
         << "this line has no equals sign\n";
  }
  Properties props;
  Status status = props.LoadFile(path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find(":2:"), std::string::npos);
}

TEST(PropertiesTest, CommandLineOverrides) {
  // Mirrors the paper's
  // `java -DdataDir=./test -DdoStore=false pack.AnyClass` (slide 195).
  Properties props;
  props.SetDefault("dataDir", "./data");
  props.SetDefault("doStore", "true");
  const char* argv[] = {"prog", "-DdataDir=./test", "-DdoStore=false",
                        "positional"};
  std::vector<std::string> rest =
      props.OverrideFromArgs(4, const_cast<char**>(argv));
  EXPECT_EQ(props.GetOr("dataDir", ""), "./test");
  EXPECT_FALSE(props.GetBool("doStore", true));
  EXPECT_EQ(rest, (std::vector<std::string>{"positional"}));
}

TEST(PropertiesTest, EnvironmentOverrides) {
  Properties props;
  props.SetDefault("envKeyForTest", "default");
  ASSERT_EQ(setenv("PERFEVAL_envKeyForTest", "from-env", 1), 0);
  props.OverrideFromEnv("PERFEVAL_");
  EXPECT_EQ(props.GetOr("envKeyForTest", ""), "from-env");
  unsetenv("PERFEVAL_envKeyForTest");
}

TEST(PropertiesTest, SerializeIsSortedAndComplete) {
  Properties props;
  props.SetDefault("zeta", "1");
  props.Set("alpha", "2");
  EXPECT_EQ(props.Serialize(), "alpha=2\nzeta=1\n");
  EXPECT_EQ(props.Keys(), (std::vector<std::string>{"alpha", "zeta"}));
}

}  // namespace
}  // namespace repro
}  // namespace perfeval
