#include "repro/fingerprint.h"

#include <gtest/gtest.h>

namespace perfeval {
namespace repro {
namespace {

core::EnvironmentSpec TestEnv() {
  core::EnvironmentSpec env;
  env.cpu_model = "Pentium M 1.50GHz";
  env.cpu_mhz = 1500;
  env.cache_kb = 2048;
  env.num_cpus = 1;
  env.ram_mb = 2048;
  env.os = "Linux";
  env.compiler = "gcc 12";
  env.build_type = "optimized";
  env.library_version = "perfeval 1.0.0";
  return env;
}

TEST(Fnv1aTest, KnownVectors) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(Fnv1a64(""), 14695981039346656037ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(FingerprintTest, DeterministicForSameSetup) {
  Properties props;
  props.Set("scaleFactor", "0.01");
  SetupFingerprint a = FingerprintSetup(TestEnv(), props);
  SetupFingerprint b = FingerprintSetup(TestEnv(), props);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.ShortId(), b.ShortId());
}

TEST(FingerprintTest, ParameterChangeChangesHash) {
  // The slide-37 war story: one side compiled with optimization, the
  // other without — a setup difference a fingerprint catches.
  Properties optimized;
  optimized.Set("optimize", "true");
  Properties debug;
  debug.Set("optimize", "false");
  EXPECT_NE(FingerprintSetup(TestEnv(), optimized).hash,
            FingerprintSetup(TestEnv(), debug).hash);
}

TEST(FingerprintTest, EnvironmentChangeChangesHash) {
  Properties props;
  core::EnvironmentSpec other = TestEnv();
  other.compiler = "clang 15";
  EXPECT_NE(FingerprintSetup(TestEnv(), props).hash,
            FingerprintSetup(other, props).hash);
}

TEST(FingerprintTest, ShortIdFormat) {
  Properties props;
  std::string id = FingerprintSetup(TestEnv(), props).ShortId();
  EXPECT_EQ(id.size(), 3 + 16u);
  EXPECT_EQ(id.substr(0, 3), "fp-");
}

TEST(FingerprintTest, CarriesHumanReadableParts) {
  Properties props;
  props.Set("bufferPages", "256");
  SetupFingerprint fp = FingerprintSetup(TestEnv(), props);
  EXPECT_NE(fp.environment_summary.find("Pentium"), std::string::npos);
  EXPECT_NE(fp.parameters.find("bufferPages=256"), std::string::npos);
}

}  // namespace
}  // namespace repro
}  // namespace perfeval
