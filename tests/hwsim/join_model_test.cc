#include "hwsim/join_model.h"

#include <gtest/gtest.h>

#include "hwsim/machine.h"

namespace perfeval {
namespace hwsim {
namespace {

JoinSpec SmallSpec() {
  JoinSpec spec;
  spec.build_rows = 1 << 15;
  spec.probe_rows = 1 << 17;
  return spec;
}

TEST(SimulateRadixJoin, NonPartitionedHasTwoPasses) {
  JoinSpec spec = SmallSpec();
  spec.radix_bits = 0;
  JoinCostResult result =
      SimulateRadixJoin(MachineByName("Sun Ultra"), spec);
  ASSERT_EQ(result.passes.size(), 2u);
  EXPECT_EQ(result.passes[0].pass, "build");
  EXPECT_EQ(result.passes[1].pass, "probe");
  EXPECT_EQ(result.passes[0].tuples, spec.build_rows);
  EXPECT_EQ(result.passes[1].tuples, spec.probe_rows);
  EXPECT_GT(result.TotalNs(), 0.0);
}

TEST(SimulateRadixJoin, PartitionedAddsThePartitionPass) {
  JoinSpec spec = SmallSpec();
  spec.radix_bits = 4;
  JoinCostResult result =
      SimulateRadixJoin(MachineByName("Sun Ultra"), spec);
  ASSERT_EQ(result.passes.size(), 3u);
  EXPECT_EQ(result.passes[0].pass, "partition");
  EXPECT_EQ(result.passes[0].tuples, spec.build_rows + spec.probe_rows);
  EXPECT_GT(result.passes[0].mem_ns_per_tuple, 0.0);
}

TEST(SimulateRadixJoin, PartitioningBeatsFlatWhenTableOverflowsL2) {
  // A build side whose flat hash table (~16 bytes/row) is far larger than
  // the Sun Ultra's 512 KB L2: the probe pass of the flat join misses to
  // memory on nearly every lookup, while partitions sized under the L2
  // turn those misses into hits. This is the crossover the engine's
  // ChooseRadixBits banks on — and the paper's point that an algorithm's
  // cache behaviour, not its instruction count, decides its rank.
  JoinSpec flat = SmallSpec();
  flat.build_rows = 1 << 17;  // ~2 MB of slots > 512 KB L2.
  flat.probe_rows = 1 << 19;
  flat.radix_bits = 0;
  JoinSpec radix = flat;
  radix.radix_bits = 4;  // 16 partitions -> ~128 KB of slots each.
  const MachineProfile& machine = MachineByName("Sun Ultra");
  JoinCostResult flat_cost = SimulateRadixJoin(machine, flat);
  JoinCostResult radix_cost = SimulateRadixJoin(machine, radix);
  EXPECT_LT(radix_cost.TotalNs(), flat_cost.TotalNs());
  // The win comes from the probe pass's memory time.
  EXPECT_LT(radix_cost.passes.back().mem_ns_per_tuple,
            flat_cost.passes.back().mem_ns_per_tuple);
}

TEST(SimulateRadixJoin, ExcessiveFanOutCostsMoreThanItSaves) {
  // With the whole build side already cache-resident, partitioning only
  // adds the extra scatter pass.
  JoinSpec tiny = SmallSpec();
  tiny.build_rows = 1 << 10;
  tiny.probe_rows = 1 << 12;
  tiny.radix_bits = 0;
  JoinSpec fanned = tiny;
  fanned.radix_bits = 8;
  const MachineProfile& machine = MachineByName("Sun Ultra");
  EXPECT_LT(SimulateRadixJoin(machine, tiny).TotalNs(),
            SimulateRadixJoin(machine, fanned).TotalNs());
}

TEST(SimulateRadixJoin, DeterministicForFixedSeed) {
  JoinSpec spec = SmallSpec();
  spec.radix_bits = 6;
  const MachineProfile& machine = MachineByName("DEC Alpha");
  JoinCostResult a = SimulateRadixJoin(machine, spec);
  JoinCostResult b = SimulateRadixJoin(machine, spec);
  ASSERT_EQ(a.passes.size(), b.passes.size());
  for (size_t i = 0; i < a.passes.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.passes[i].mem_ns_per_tuple,
                     b.passes[i].mem_ns_per_tuple);
    EXPECT_DOUBLE_EQ(a.passes[i].cpu_ns_per_tuple,
                     b.passes[i].cpu_ns_per_tuple);
  }
  EXPECT_EQ(a.counter_report, b.counter_report);
}

TEST(SimulateRadixJoin, ReportsMemoryShareAndCounters) {
  JoinSpec spec = SmallSpec();
  spec.radix_bits = 2;
  JoinCostResult result =
      SimulateRadixJoin(MachineByName("Origin2000"), spec);
  EXPECT_GT(result.MemoryShare(), 0.0);
  EXPECT_LE(result.MemoryShare(), 1.0);
  EXPECT_NE(result.counter_report.find("L1"), std::string::npos);
}

}  // namespace
}  // namespace hwsim
}  // namespace perfeval
