#include "hwsim/machine.h"

#include <gtest/gtest.h>

namespace perfeval {
namespace hwsim {
namespace {

TEST(MachineTest, FiveHistoricalGenerations) {
  const std::vector<MachineProfile>& machines = HistoricalMachines();
  ASSERT_EQ(machines.size(), 5u);
  EXPECT_EQ(machines[0].system, "Sun LX");
  EXPECT_EQ(machines[0].year, 1992);
  EXPECT_EQ(machines[4].system, "Origin2000");
  EXPECT_EQ(machines[4].year, 2000);
}

TEST(MachineTest, ClockSpeedsMatchTheFigure) {
  // Slide 46's header row: 50, 200, 296, 500, 300 MHz.
  const std::vector<MachineProfile>& machines = HistoricalMachines();
  EXPECT_DOUBLE_EQ(machines[0].clock_mhz, 50.0);
  EXPECT_DOUBLE_EQ(machines[1].clock_mhz, 200.0);
  EXPECT_DOUBLE_EQ(machines[2].clock_mhz, 296.0);
  EXPECT_DOUBLE_EQ(machines[3].clock_mhz, 500.0);
  EXPECT_DOUBLE_EQ(machines[4].clock_mhz, 300.0);
}

TEST(MachineTest, TenXClockImprovement) {
  // "Up to 10x improvement in CPU clock-speed" (slide 47).
  const std::vector<MachineProfile>& machines = HistoricalMachines();
  double min_clock = machines[0].clock_mhz;
  double max_clock = 0.0;
  for (const MachineProfile& m : machines) {
    max_clock = std::max(max_clock, m.clock_mhz);
  }
  EXPECT_DOUBLE_EQ(max_clock / min_clock, 10.0);
}

TEST(MachineTest, MemoryLatencyBarelyImproves) {
  // The figure's crux: while clocks improved 10x, memory latency did not
  // improve at all across these systems.
  const std::vector<MachineProfile>& machines = HistoricalMachines();
  for (const MachineProfile& m : machines) {
    EXPECT_GE(m.memory_latency_ns, 100.0) << m.system;
    EXPECT_LE(m.memory_latency_ns, 300.0) << m.system;
  }
}

TEST(MachineTest, CycleTimeFromClock) {
  EXPECT_DOUBLE_EQ(MachineByName("Sun LX").CycleNs(), 20.0);
  EXPECT_DOUBLE_EQ(MachineByName("DEC Alpha").CycleNs(), 2.0);
}

TEST(MachineTest, HierarchiesAreConstructible) {
  for (const MachineProfile& m : HistoricalMachines()) {
    MemoryHierarchy hierarchy = m.MakeHierarchy();
    EXPECT_GE(hierarchy.num_levels(), 1u) << m.system;
    // Cold access costs at least the memory latency.
    EXPECT_GE(hierarchy.AccessNs(0), m.memory_latency_ns) << m.system;
  }
}

TEST(MachineTest, LaterMachinesHaveDeeperHierarchies) {
  EXPECT_EQ(MachineByName("Sun LX").caches.size(), 1u);
  EXPECT_EQ(MachineByName("DEC Alpha").caches.size(), 3u);
}

TEST(MachineDeathTest, UnknownNameAborts) {
  EXPECT_DEATH(MachineByName("Cray-1"), "unknown machine");
}

}  // namespace
}  // namespace hwsim
}  // namespace perfeval
