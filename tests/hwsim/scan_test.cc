#include "hwsim/scan.h"

#include <gtest/gtest.h>

namespace perfeval {
namespace hwsim {
namespace {

ScanSpec SmallScan() {
  ScanSpec spec;
  spec.num_elements = 1 << 16;
  return spec;
}

std::vector<ScanResult> RunAllMachines(const ScanSpec& spec) {
  std::vector<ScanResult> results;
  for (const MachineProfile& machine : HistoricalMachines()) {
    results.push_back(SimulateScanMax(machine, spec));
  }
  return results;
}

TEST(ScanFigureTest, HardlyAnyPerformanceImprovement) {
  // The slide-46/51 message: 10x clock improvement, yet total time per
  // iteration improves by well under 2x.
  std::vector<ScanResult> results = RunAllMachines(SmallScan());
  double slowest = 0.0;
  double fastest = 1e18;
  for (const ScanResult& r : results) {
    slowest = std::max(slowest, r.TotalNsPerIter());
    fastest = std::min(fastest, r.TotalNsPerIter());
  }
  EXPECT_LT(slowest / fastest, 2.0);
}

TEST(ScanFigureTest, CpuShareCollapsesMemoryDominates) {
  std::vector<ScanResult> results = RunAllMachines(SmallScan());
  // 1992: CPU is roughly half the cost. 1998 (500MHz Alpha): memory is
  // essentially everything.
  EXPECT_GT(results[0].cpu_ns_per_iter, results[0].mem_ns_per_iter * 0.5);
  EXPECT_GT(results[3].MemoryShare(), 0.90);
  // Memory share in 1992 is the smallest of the five.
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GT(results[i].MemoryShare(), results[0].MemoryShare());
  }
}

TEST(ScanFigureTest, CpuTimeTracksClockSpeed) {
  std::vector<ScanResult> results = RunAllMachines(SmallScan());
  // CPU ns/iter = instrs * cpi * cycle: strictly ordered by clock/cpi.
  EXPECT_GT(results[0].cpu_ns_per_iter, 10 * results[3].cpu_ns_per_iter);
}

TEST(ScanLayoutTest, ColumnarBeatsRowStore) {
  // The columnar layout (MonetDB's answer to the figure) amortizes each
  // line fetch over line/value elements.
  const MachineProfile& machine = MachineByName("DEC Alpha");
  ScanSpec row = SmallScan();
  row.layout = ScanLayout::kRowStore;
  ScanSpec col = SmallScan();
  col.layout = ScanLayout::kColumnar;
  ScanResult row_result = SimulateScanMax(machine, row);
  ScanResult col_result = SimulateScanMax(machine, col);
  EXPECT_LT(col_result.mem_ns_per_iter, row_result.mem_ns_per_iter / 3);
  // CPU cost is layout-independent.
  EXPECT_DOUBLE_EQ(col_result.cpu_ns_per_iter, row_result.cpu_ns_per_iter);
}

TEST(ScanTest, MemoryCostScalesWithLatency) {
  MachineProfile fast = MachineByName("Sun Ultra");
  MachineProfile slow = fast;
  slow.memory_latency_ns *= 3.0;
  ScanResult fast_result = SimulateScanMax(fast, SmallScan());
  ScanResult slow_result = SimulateScanMax(slow, SmallScan());
  EXPECT_GT(slow_result.mem_ns_per_iter,
            2.0 * fast_result.mem_ns_per_iter);
}

TEST(ScanTest, CountersReportPresent) {
  ScanResult result =
      SimulateScanMax(MachineByName("Sun LX"), SmallScan());
  EXPECT_NE(result.counter_report.find("L1"), std::string::npos);
  EXPECT_EQ(result.iterations, SmallScan().num_elements);
  EXPECT_EQ(result.system, "Sun LX");
}

TEST(ScanTest, MoreInstructionsMoreCpuTime) {
  ScanSpec light = SmallScan();
  light.instructions_per_iteration = 2;
  ScanSpec heavy = SmallScan();
  heavy.instructions_per_iteration = 20;
  const MachineProfile& machine = MachineByName("Sun LX");
  EXPECT_DOUBLE_EQ(
      SimulateScanMax(machine, heavy).cpu_ns_per_iter,
      10.0 * SimulateScanMax(machine, light).cpu_ns_per_iter);
}


TEST(ScanTest, PrefetcherCutsRowStoreMemoryTime) {
  const MachineProfile& machine = MachineByName("DEC Alpha");
  ScanSpec plain = SmallScan();
  ScanSpec prefetched = SmallScan();
  prefetched.next_line_prefetch = true;
  ScanResult without = SimulateScanMax(machine, plain);
  ScanResult with = SimulateScanMax(machine, prefetched);
  // Next-line prefetch halves demand misses of a stride-64/line-64 scan.
  EXPECT_LT(with.mem_ns_per_iter, without.mem_ns_per_iter * 0.6);
  EXPECT_DOUBLE_EQ(with.cpu_ns_per_iter, without.cpu_ns_per_iter);
}

TEST(ScanTest, LayoutNames) {
  EXPECT_STREQ(ScanLayoutName(ScanLayout::kColumnar), "columnar");
  EXPECT_STREQ(ScanLayoutName(ScanLayout::kRowStore), "row-store");
}

}  // namespace
}  // namespace hwsim
}  // namespace perfeval
