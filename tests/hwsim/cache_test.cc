#include "hwsim/cache.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace perfeval {
namespace hwsim {
namespace {

CacheConfig SmallCache() {
  // 1KB, 64B lines, 2-way: 16 lines, 8 sets.
  return CacheConfig{"L1", 1024, 64, 2, 1};
}

TEST(CacheLevelTest, GeometryFromConfig) {
  CacheLevel cache(SmallCache());
  EXPECT_EQ(cache.num_sets(), 8u);
}

TEST(CacheLevelTest, FirstAccessMissesRepeatHits) {
  CacheLevel cache(SmallCache());
  EXPECT_FALSE(cache.Access(0));
  EXPECT_TRUE(cache.Access(0));
  EXPECT_TRUE(cache.Access(63));   // same line.
  EXPECT_FALSE(cache.Access(64));  // next line.
  EXPECT_EQ(cache.counters().accesses, 4);
  EXPECT_EQ(cache.counters().hits, 2);
  EXPECT_EQ(cache.counters().misses, 2);
}

TEST(CacheLevelTest, LruEvictionWithinSet) {
  CacheLevel cache(SmallCache());
  // Three lines mapping to set 0: line numbers 0, 8, 16 (8 sets).
  uint64_t a = 0;
  uint64_t b = 8 * 64;
  uint64_t c = 16 * 64;
  cache.Access(a);
  cache.Access(b);
  cache.Access(a);  // refresh a: b becomes LRU.
  cache.Access(c);  // evicts b.
  EXPECT_TRUE(cache.Access(a));
  EXPECT_FALSE(cache.Access(b));
}

TEST(CacheLevelTest, FlushEmptiesButKeepsCounters) {
  CacheLevel cache(SmallCache());
  cache.Access(0);
  cache.Access(0);
  cache.Flush();
  EXPECT_FALSE(cache.Access(0));
  EXPECT_EQ(cache.counters().accesses, 3);
}

TEST(CacheLevelTest, SequentialScanMissRateEqualsInverseLineRatio) {
  CacheLevel cache(SmallCache());
  // Scan 8-byte elements sequentially: one miss per 64B line -> 1/8.
  const int kElements = 8000;
  for (int i = 0; i < kElements; ++i) {
    cache.Access(static_cast<uint64_t>(i) * 8);
  }
  EXPECT_NEAR(cache.counters().MissRate(), 1.0 / 8.0, 0.001);
}

TEST(CacheLevelTest, StrideEqualToLineMissesEveryTime) {
  CacheLevel cache(SmallCache());
  for (int i = 0; i < 1000; ++i) {
    cache.Access(static_cast<uint64_t>(i) * 64);
  }
  EXPECT_NEAR(cache.counters().MissRate(), 1.0, 0.001);
}

TEST(CacheLevelTest, WorkingSetThatFitsHasNoCapacityMisses) {
  CacheLevel cache(SmallCache());  // 1KB.
  // Loop repeatedly over 512 bytes: after the first pass, all hits.
  for (int pass = 0; pass < 10; ++pass) {
    for (uint64_t addr = 0; addr < 512; addr += 64) {
      cache.Access(addr);
    }
  }
  EXPECT_EQ(cache.counters().misses, 8);  // cold misses only.
}

TEST(CacheLevelTest, WorkingSetLargerThanCacheThrashes) {
  CacheLevel cache(SmallCache());  // 16 lines.
  // Loop over 64 lines repeatedly: LRU keeps evicting.
  for (int pass = 0; pass < 5; ++pass) {
    for (uint64_t line = 0; line < 64; ++line) {
      cache.Access(line * 64);
    }
  }
  EXPECT_NEAR(cache.counters().MissRate(), 1.0, 0.01);
}

TEST(MemoryHierarchyTest, HitAndMissLatencies) {
  MemoryHierarchy hierarchy({{"L1", 1024, 64, 2, 1}}, 2.0, 100.0);
  // Cold access: L1 lookup (1 cycle = 2ns) + memory (100ns).
  EXPECT_DOUBLE_EQ(hierarchy.AccessNs(0), 102.0);
  // Hot access: L1 hit only.
  EXPECT_DOUBLE_EQ(hierarchy.AccessNs(0), 2.0);
  EXPECT_EQ(hierarchy.memory_accesses(), 1);
}

TEST(MemoryHierarchyTest, TwoLevelsFilterMisses) {
  MemoryHierarchy hierarchy(
      {{"L1", 1024, 64, 2, 1}, {"L2", 8192, 64, 4, 10}}, 1.0, 100.0);
  // Touch 64 lines (4KB): fits L2 (8KB), not L1 (1KB).
  for (uint64_t line = 0; line < 64; ++line) {
    hierarchy.AccessNs(line * 64);
  }
  // Second pass: all L1 misses (thrash) but all L2 hits.
  int64_t memory_before = hierarchy.memory_accesses();
  for (uint64_t line = 0; line < 64; ++line) {
    double ns = hierarchy.AccessNs(line * 64);
    EXPECT_DOUBLE_EQ(ns, 11.0);  // L1 1 cycle + L2 10 cycles.
  }
  EXPECT_EQ(hierarchy.memory_accesses(), memory_before);
}

TEST(MemoryHierarchyTest, FlushRestoresColdState) {
  MemoryHierarchy hierarchy({{"L1", 1024, 64, 2, 1}}, 1.0, 50.0);
  hierarchy.AccessNs(0);
  hierarchy.Flush();
  EXPECT_DOUBLE_EQ(hierarchy.AccessNs(0), 51.0);
}

TEST(MemoryHierarchyTest, CountersReportIsTabular) {
  MemoryHierarchy hierarchy({{"L1", 1024, 64, 2, 1}}, 1.0, 50.0);
  hierarchy.AccessNs(0);
  std::string report = hierarchy.CountersToString();
  EXPECT_NE(report.find("L1"), std::string::npos);
  EXPECT_NE(report.find("miss rate"), std::string::npos);
  EXPECT_NE(report.find("memory"), std::string::npos);
}


TEST(PrefetchTest, StreamPrefetchKillsConstantStrideMisses) {
  MemoryHierarchy plain({{"L1", 1024, 64, 2, 1}}, 1.0, 100.0);
  MemoryHierarchy prefetching({{"L1", 1024, 64, 2, 1}}, 1.0, 100.0);
  prefetching.set_next_line_prefetch(true);
  for (uint64_t line = 0; line < 512; ++line) {
    plain.AccessNs(line * 64);
    prefetching.AccessNs(line * 64);
  }
  EXPECT_EQ(plain.memory_accesses(), 512);
  // Two training misses arm the stream; everything after hits.
  EXPECT_LE(prefetching.memory_accesses(), 3);
  EXPECT_GE(prefetching.prefetches_issued(), 500);
}

TEST(PrefetchTest, NonLineStrideStillStreams) {
  // 64-byte stride over 32-byte lines (the row-store layout on the 1990s
  // machines): the stream detector keys on the delta, not the line size.
  MemoryHierarchy prefetching({{"L1", 1024, 32, 2, 1}}, 1.0, 100.0);
  prefetching.set_next_line_prefetch(true);
  for (uint64_t i = 0; i < 512; ++i) {
    prefetching.AccessNs(i * 64);
  }
  EXPECT_LE(prefetching.memory_accesses(), 3);
}

TEST(PrefetchTest, InstallDoesNotPolluteCounters) {
  CacheLevel cache(SmallCache());
  cache.Install(0);
  EXPECT_EQ(cache.counters().accesses, 0);
  EXPECT_TRUE(cache.Access(0));  // installed line hits.
  EXPECT_EQ(cache.counters().accesses, 1);
  EXPECT_EQ(cache.counters().hits, 1);
}

TEST(PrefetchTest, RandomAccessGainsNothing) {
  MemoryHierarchy plain({{"L1", 1024, 64, 2, 1}}, 1.0, 100.0);
  MemoryHierarchy prefetching({{"L1", 1024, 64, 2, 1}}, 1.0, 100.0);
  prefetching.set_next_line_prefetch(true);
  uint32_t state = 99;
  auto next = [&state]() {
    state = state * 1664525u + 1013904223u;
    return static_cast<uint64_t>(state % 100000) * 64;
  };
  int64_t plain_mem = 0;
  int64_t prefetch_mem = 0;
  for (int i = 0; i < 2000; ++i) {
    uint64_t addr = next();
    plain.AccessNs(addr);
    prefetching.AccessNs(addr);
  }
  plain_mem = plain.memory_accesses();
  prefetch_mem = prefetching.memory_accesses();
  // Random lines rarely follow a prefetched neighbour.
  EXPECT_GT(prefetch_mem, plain_mem * 9 / 10);
}

TEST(CacheDeathTest, RejectsInvalidGeometry) {
  EXPECT_DEATH(CacheLevel(CacheConfig{"bad", 100, 64, 3, 1}),
               "CHECK failed");
}

}  // namespace
}  // namespace hwsim
}  // namespace perfeval
