#include "stats/outliers.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace perfeval {
namespace stats {
namespace {

TEST(OutliersTest, CleanSampleHasNone) {
  std::vector<double> xs = {10.0, 11.0, 10.5, 10.2, 10.8, 10.4};
  OutlierReport report = DetectOutliers(xs);
  EXPECT_FALSE(report.HasOutliers());
}

TEST(OutliersTest, SingleSpikeFlagged) {
  // Nine quiet runs and one perturbed by background activity.
  std::vector<double> xs = {10.0, 10.1, 9.9, 10.2, 9.8,
                            10.0, 10.1, 9.9, 10.0, 35.0};
  OutlierReport report = DetectOutliers(xs);
  ASSERT_EQ(report.outlier_indices.size(), 1u);
  EXPECT_EQ(report.outlier_indices[0], 9u);
  EXPECT_GT(report.upper_fence, 10.2);
  EXPECT_LT(report.upper_fence, 35.0);
}

TEST(OutliersTest, LowOutlierFlaggedToo) {
  std::vector<double> xs = {10.0, 10.1, 9.9, 10.2, 9.8, 0.5};
  OutlierReport report = DetectOutliers(xs);
  ASSERT_EQ(report.outlier_indices.size(), 1u);
  EXPECT_EQ(report.outlier_indices[0], 5u);
}

TEST(OutliersTest, WiderFenceIsMoreTolerant) {
  // 10.9 is beyond the 1.5*IQR fence (10.55) but inside 3*IQR (10.925).
  std::vector<double> xs = {10.0, 10.1, 9.9, 10.2, 9.8, 10.9};
  EXPECT_TRUE(DetectOutliers(xs, 1.5).HasOutliers());
  EXPECT_FALSE(DetectOutliers(xs, 3.0).HasOutliers());
}

TEST(OutliersTest, RemoveOutliersKeepsOrder) {
  std::vector<double> xs = {10.0, 99.0, 10.1, 9.9, 10.2, 9.8};
  std::vector<double> kept = RemoveOutliers(xs);
  EXPECT_EQ(kept, (std::vector<double>{10.0, 10.1, 9.9, 10.2, 9.8}));
}

TEST(OutliersTest, ConstantSampleKeepsEverything) {
  std::vector<double> xs = {5.0, 5.0, 5.0, 5.0};
  EXPECT_FALSE(DetectOutliers(xs).HasOutliers());
  EXPECT_EQ(RemoveOutliers(xs), xs);
}

TEST(OutliersTest, GaussianFalsePositiveRateIsLow) {
  Pcg32 rng(5);
  int total_outliers = 0;
  int total_samples = 0;
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> xs;
    for (int i = 0; i < 50; ++i) {
      xs.push_back(rng.NextGaussian());
    }
    total_outliers +=
        static_cast<int>(DetectOutliers(xs).outlier_indices.size());
    total_samples += 50;
  }
  // For a normal distribution ~0.7% of points fall outside 1.5 IQR.
  double rate = static_cast<double>(total_outliers) / total_samples;
  EXPECT_LT(rate, 0.04);
}

TEST(OutliersTest, ToStringMentionsFences) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_NE(DetectOutliers(xs).ToString().find("fences"),
            std::string::npos);
}

TEST(OutliersDeathTest, NeedsFourSamples) {
  EXPECT_DEATH(DetectOutliers({1.0, 2.0, 3.0}), ">= 4 samples");
}

}  // namespace
}  // namespace stats
}  // namespace perfeval
