#include "stats/compare.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace perfeval {
namespace stats {
namespace {

TEST(CompareTest, ClearlyDifferentPaired) {
  std::vector<double> fast = {10.0, 11.0, 10.5, 10.2, 10.8};
  std::vector<double> slow = {20.0, 21.0, 20.5, 20.2, 20.8};
  Comparison cmp = ComparePaired(fast, slow, 0.95);
  EXPECT_EQ(cmp.verdict, Verdict::kAIsBetter);
  EXPECT_LT(cmp.difference.upper, 0.0);
}

TEST(CompareTest, ReversedOrderFlipsVerdict) {
  std::vector<double> fast = {10.0, 11.0, 10.5, 10.2, 10.8};
  std::vector<double> slow = {20.0, 21.0, 20.5, 20.2, 20.8};
  Comparison cmp = ComparePaired(slow, fast, 0.95);
  EXPECT_EQ(cmp.verdict, Verdict::kBIsBetter);
}

TEST(CompareTest, NoisyEqualSystemsAreIndifferent) {
  // The paper's slide-142 point: overlapping intervals => no winner.
  Pcg32 rng(3);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 10; ++i) {
    a.push_back(100.0 + 10.0 * rng.NextGaussian());
    b.push_back(100.0 + 10.0 * rng.NextGaussian());
  }
  Comparison cmp = CompareUnpaired(a, b, 0.95);
  EXPECT_EQ(cmp.verdict, Verdict::kIndifferent);
  EXPECT_TRUE(cmp.difference.Contains(0.0));
}

TEST(CompareTest, PairedBeatsUnpairedOnCorrelatedData) {
  // Per-unit noise is huge but the per-pair difference is constant:
  // the paired test must detect it, the unpaired one cannot.
  Pcg32 rng(5);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 10; ++i) {
    double workload = 100.0 + 50.0 * rng.NextGaussian();
    a.push_back(workload);
    b.push_back(workload + 2.0);  // B always 2 units slower.
  }
  EXPECT_EQ(ComparePaired(a, b, 0.95).verdict, Verdict::kAIsBetter);
  EXPECT_EQ(CompareUnpaired(a, b, 0.95).verdict, Verdict::kIndifferent);
}

TEST(CompareTest, UnpairedHandlesUnequalSizes) {
  std::vector<double> a = {1.0, 1.1, 0.9, 1.05};
  std::vector<double> b = {5.0, 5.2, 4.8, 5.1, 5.05, 4.95};
  Comparison cmp = CompareUnpaired(a, b, 0.95);
  EXPECT_EQ(cmp.verdict, Verdict::kAIsBetter);
}

TEST(CompareTest, VerdictNames) {
  EXPECT_STREQ(VerdictName(Verdict::kAIsBetter), "A is better");
  EXPECT_STREQ(VerdictName(Verdict::kIndifferent),
               "statistically indifferent");
}

TEST(CompareTest, ToStringContainsMeans) {
  Comparison cmp = ComparePaired({1.0, 1.0}, {2.0, 2.0}, 0.95);
  EXPECT_NE(cmp.ToString().find("mean(A)"), std::string::npos);
}

TEST(SpeedupTest, Basics) {
  EXPECT_DOUBLE_EQ(Speedup(10.0, 5.0), 2.0);
  EXPECT_DOUBLE_EQ(Speedup(5.0, 10.0), 0.5);
}

TEST(ScaleupTest, PerfectScaleupIsOne) {
  // 4x work in 4x time.
  EXPECT_DOUBLE_EQ(ScaleupEfficiency(1.0, 10.0, 4.0, 40.0), 1.0);
}

TEST(ScaleupTest, SuperAndSubLinear) {
  // 4x work in 2x time: efficiency 2 (super-linear).
  EXPECT_DOUBLE_EQ(ScaleupEfficiency(1.0, 10.0, 4.0, 20.0), 2.0);
  // 4x work in 8x time: efficiency 0.5.
  EXPECT_DOUBLE_EQ(ScaleupEfficiency(1.0, 10.0, 4.0, 80.0), 0.5);
}

TEST(CompareDeathTest, PairedSizesMustMatch) {
  EXPECT_DEATH(ComparePaired({1.0, 2.0}, {1.0}, 0.95), "CHECK failed");
}

}  // namespace
}  // namespace stats
}  // namespace perfeval
