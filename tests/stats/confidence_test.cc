#include "stats/confidence.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "stats/descriptive.h"

namespace perfeval {
namespace stats {
namespace {

TEST(ConfidenceTest, KnownInterval) {
  // Sample {1..5}: mean 3, sd sqrt(2.5), n=5, t(0.95, 4)=2.776.
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  ConfidenceInterval ci = MeanConfidenceInterval(xs, 0.95);
  EXPECT_DOUBLE_EQ(ci.mean, 3.0);
  double half = 2.776 * std::sqrt(2.5) / std::sqrt(5.0);
  EXPECT_NEAR(ci.HalfWidth(), half, 0.01);
  EXPECT_TRUE(ci.Contains(3.0));
}

TEST(ConfidenceTest, HigherConfidenceMeansWiderInterval) {
  std::vector<double> xs = {10.0, 12.0, 11.0, 13.0, 9.0};
  ConfidenceInterval ci90 = MeanConfidenceInterval(xs, 0.90);
  ConfidenceInterval ci99 = MeanConfidenceInterval(xs, 0.99);
  EXPECT_LT(ci90.HalfWidth(), ci99.HalfWidth());
}

TEST(ConfidenceTest, MoreSamplesMeanNarrowerInterval) {
  Pcg32 rng(3);
  std::vector<double> small;
  std::vector<double> large;
  for (int i = 0; i < 10; ++i) {
    small.push_back(rng.NextGaussian());
  }
  for (int i = 0; i < 1000; ++i) {
    large.push_back(rng.NextGaussian());
  }
  EXPECT_LT(MeanConfidenceInterval(large, 0.95).HalfWidth(),
            MeanConfidenceInterval(small, 0.95).HalfWidth());
}

TEST(ConfidenceTest, OverlapDetection) {
  ConfidenceInterval a{5.0, 4.0, 6.0, 0.95};
  ConfidenceInterval b{6.5, 5.5, 7.5, 0.95};
  ConfidenceInterval c{9.0, 8.0, 10.0, 0.95};
  EXPECT_TRUE(a.Overlaps(b));
  EXPECT_TRUE(b.Overlaps(a));
  EXPECT_FALSE(a.Overlaps(c));
  EXPECT_TRUE(a.Overlaps(a));
}

TEST(ConfidenceTest, CoverageProperty) {
  // Repeatedly sample from N(7, 2); the 95% CI should contain 7 about 95%
  // of the time. This is the defining property of the interval.
  Pcg32 rng(11);
  const int kTrials = 2000;
  int covered = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<double> xs;
    for (int i = 0; i < 12; ++i) {
      xs.push_back(7.0 + 2.0 * rng.NextGaussian());
    }
    if (MeanConfidenceInterval(xs, 0.95).Contains(7.0)) {
      ++covered;
    }
  }
  double coverage = static_cast<double>(covered) / kTrials;
  EXPECT_NEAR(coverage, 0.95, 0.02);
}

TEST(ProportionCiTest, KnownValue) {
  // p=0.5, n=100: half-width = 1.96 * sqrt(0.25/100) = 0.098.
  ConfidenceInterval ci = ProportionConfidenceInterval(50, 100, 0.95);
  EXPECT_DOUBLE_EQ(ci.mean, 0.5);
  EXPECT_NEAR(ci.HalfWidth(), 0.098, 0.001);
}

TEST(ProportionCiTest, ClampedToUnitInterval) {
  ConfidenceInterval lo = ProportionConfidenceInterval(0, 10, 0.95);
  ConfidenceInterval hi = ProportionConfidenceInterval(10, 10, 0.95);
  EXPECT_GE(lo.lower, 0.0);
  EXPECT_LE(hi.upper, 1.0);
}

TEST(RequiredReplicationsTest, TighterTargetsNeedMoreRuns) {
  std::vector<double> pilot = {100.0, 105.0, 95.0, 102.0, 98.0};
  int64_t loose = RequiredReplications(pilot, 0.95, 0.10);
  int64_t tight = RequiredReplications(pilot, 0.95, 0.01);
  EXPECT_GE(tight, loose);
  EXPECT_GE(loose, 2);
}

TEST(RequiredReplicationsTest, ZeroVariancePilotNeedsMinimum) {
  std::vector<double> pilot = {50.0, 50.0, 50.0};
  EXPECT_EQ(RequiredReplications(pilot, 0.95, 0.05), 2);
}

TEST(ConfidenceTest, ToStringMentionsLevel) {
  ConfidenceInterval ci{1.0, 0.5, 1.5, 0.95};
  EXPECT_NE(ci.ToString().find("95%"), std::string::npos);
}

TEST(ConfidenceTest, SingleSampleGivesUnboundedInterval) {
  // Regression: n=1 used to abort. With zero degrees of freedom the only
  // defensible interval is the sample with infinite bounds — never a
  // garbage finite one.
  ConfidenceInterval ci = MeanConfidenceInterval({42.0}, 0.95);
  EXPECT_DOUBLE_EQ(ci.mean, 42.0);
  EXPECT_TRUE(std::isinf(ci.lower));
  EXPECT_TRUE(std::isinf(ci.upper));
  EXPECT_LT(ci.lower, 0.0);
  EXPECT_GT(ci.upper, 0.0);
  EXPECT_TRUE(ci.Contains(42.0));
  EXPECT_TRUE(ci.Contains(-1e300));
}

TEST(ConfidenceTest, SmallSampleUsesStudentT) {
  // n=2 (df=1): t(0.95, 1) = 12.706 — more than 6x the normal z of 1.96.
  // A normal-approximation bug here produces far-too-narrow intervals for
  // exactly the small pilot samples where the interval matters most.
  std::vector<double> xs = {1.0, 3.0};  // mean 2, sd sqrt(2).
  ConfidenceInterval ci = MeanConfidenceInterval(xs, 0.95);
  double expected_half = 12.706 * std::sqrt(2.0) / std::sqrt(2.0);
  EXPECT_NEAR(ci.HalfWidth(), expected_half, 0.05);
  // n=3 (df=2): t(0.95, 2) = 4.303.
  std::vector<double> ys = {1.0, 2.0, 3.0};  // mean 2, sd 1.
  ConfidenceInterval ci3 = MeanConfidenceInterval(ys, 0.95);
  EXPECT_NEAR(ci3.HalfWidth(), 4.303 / std::sqrt(3.0), 0.02);
}

TEST(ConfidenceDeathTest, NeedsAtLeastOneSample) {
  EXPECT_DEATH(MeanConfidenceInterval({}, 0.95), "CHECK failed");
}

}  // namespace
}  // namespace stats
}  // namespace perfeval
