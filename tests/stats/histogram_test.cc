#include "stats/histogram.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace perfeval {
namespace stats {
namespace {

TEST(HistogramTest, CellEdgesCoverRangeEvenly) {
  Histogram h(0.0, 12.0, 6);
  ASSERT_EQ(h.cells().size(), 6u);
  EXPECT_DOUBLE_EQ(h.cells()[0].lower, 0.0);
  EXPECT_DOUBLE_EQ(h.cells()[0].upper, 2.0);
  EXPECT_DOUBLE_EQ(h.cells()[5].lower, 10.0);
  EXPECT_DOUBLE_EQ(h.cells()[5].upper, 12.0);
}

TEST(HistogramTest, ValuesLandInRightCells) {
  Histogram h(0.0, 10.0, 5);
  h.Add(0.5);   // cell 0
  h.Add(2.0);   // cell 1
  h.Add(9.99);  // cell 4
  h.Add(10.0);  // upper boundary -> last cell
  EXPECT_EQ(h.cells()[0].count, 1);
  EXPECT_EQ(h.cells()[1].count, 1);
  EXPECT_EQ(h.cells()[4].count, 2);
  EXPECT_EQ(h.total_count(), 4);
  EXPECT_EQ(h.out_of_range(), 0);
}

TEST(HistogramTest, OutOfRangeClampsAndCounts) {
  Histogram h(0.0, 10.0, 5);
  h.Add(-5.0);
  h.Add(15.0);
  EXPECT_EQ(h.out_of_range(), 2);
  EXPECT_EQ(h.cells()[0].count, 1);
  EXPECT_EQ(h.cells()[4].count, 1);
}

TEST(HistogramTest, TotalEqualsSumOfCells) {
  Pcg32 rng(2);
  Histogram h(0.0, 1.0, 7);
  for (int i = 0; i < 500; ++i) {
    h.Add(rng.NextDouble());
  }
  int64_t sum = 0;
  for (const HistogramCell& cell : h.cells()) {
    sum += cell.count;
  }
  EXPECT_EQ(sum, h.total_count());
  EXPECT_EQ(sum, 500);
}

TEST(HistogramTest, PaperCellRule) {
  // The slide-144 rule: each cell should have >= 5 points. The paper's
  // 6-cell rendering of its 36-point sample violates it; the 2-cell
  // rendering satisfies it.
  std::vector<double> response_times;
  // Reconstruct slide 144's histogram: counts per [0,2),[2,4),... cell
  // are 2, 6, 12, 8, 6, 2 (36 points total).
  const int counts[6] = {2, 6, 12, 8, 6, 2};
  for (int cell = 0; cell < 6; ++cell) {
    for (int i = 0; i < counts[cell]; ++i) {
      response_times.push_back(cell * 2.0 + 1.0);
    }
  }
  Histogram fine(0.0, 12.0, 6);
  fine.AddAll(response_times);
  EXPECT_FALSE(fine.EveryCellHasAtLeast(5));
  EXPECT_EQ(fine.MinCellCount(), 2);

  Histogram coarse(0.0, 12.0, 2);
  coarse.AddAll(response_times);
  EXPECT_TRUE(coarse.EveryCellHasAtLeast(5));
  EXPECT_EQ(coarse.cells()[0].count, 20);
  EXPECT_EQ(coarse.cells()[1].count, 16);
}

TEST(HistogramTest, SturgesSuggestion) {
  EXPECT_EQ(Histogram::SuggestCellCount(1), 1);
  EXPECT_EQ(Histogram::SuggestCellCount(32), 6);
  EXPECT_EQ(Histogram::SuggestCellCount(1000), 11);
}

TEST(HistogramTest, ToStringHasOneLinePerCell) {
  Histogram h(0.0, 4.0, 4);
  h.Add(1.0);
  std::string text = h.ToString();
  int newlines = 0;
  for (char c : text) {
    newlines += c == '\n' ? 1 : 0;
  }
  EXPECT_EQ(newlines, 4);
}

TEST(HistogramTest, DegenerateRangeWidensInsteadOfZeroWidthCells) {
  // Regression: lower == upper (every sample identical — common for
  // quantized timers) used to abort; zero-width cells would also divide
  // by zero in Add(). The range widens to a unit interval instead.
  Histogram h(5.0, 5.0, 4);
  ASSERT_EQ(h.cells().size(), 4u);
  EXPECT_DOUBLE_EQ(h.cells().front().lower, 4.5);
  EXPECT_DOUBLE_EQ(h.cells().back().upper, 5.5);
  for (const HistogramCell& cell : h.cells()) {
    EXPECT_GT(cell.upper, cell.lower);
  }
  h.Add(5.0);
  h.Add(5.0);
  h.Add(5.0);
  EXPECT_EQ(h.total_count(), 3);
  EXPECT_EQ(h.out_of_range(), 0);
  int64_t counted = 0;
  for (const HistogramCell& cell : h.cells()) {
    counted += cell.count;
  }
  EXPECT_EQ(counted, 3);
}

TEST(HistogramTest, ExactInteriorBoundariesLandInNextCell) {
  // Cells are [lower, upper): a value exactly equal to an interior cell's
  // upper bound belongs to the *next* cell. With a range whose width is
  // not exactly representable (0.7 / 7 here), the float division used to
  // put some exact edges one cell low.
  Histogram h(0.0, 0.7, 7);
  for (size_t i = 0; i + 1 < h.cells().size(); ++i) {
    Histogram probe(0.0, 0.7, 7);
    probe.Add(h.cells()[i].upper);  // == cells[i+1].lower
    EXPECT_EQ(probe.cells()[i].count, 0)
        << "edge " << i << " landed in its own cell";
    EXPECT_EQ(probe.cells()[i + 1].count, 1)
        << "edge " << i << " missed the next cell";
  }
  // Integer edges must behave the same way.
  Histogram g(0.0, 10.0, 5);
  g.Add(2.0);
  g.Add(4.0);
  g.Add(6.0);
  g.Add(8.0);
  EXPECT_EQ(g.cells()[0].count, 0);
  EXPECT_EQ(g.cells()[1].count, 1);
  EXPECT_EQ(g.cells()[2].count, 1);
  EXPECT_EQ(g.cells()[3].count, 1);
  EXPECT_EQ(g.cells()[4].count, 1);
}

TEST(HistogramTest, AllEqualInputStaysInRangeAtEveryCellCount) {
  // Degenerate all-equal input at a variety of cell counts: the shared
  // value sits exactly on the widened range's midpoint, which is an
  // interior edge whenever num_cells is even.
  for (int cells = 1; cells <= 9; ++cells) {
    Histogram h(3.0, 3.0, cells);
    for (int i = 0; i < 10; ++i) {
      h.Add(3.0);
    }
    EXPECT_EQ(h.out_of_range(), 0) << cells << " cells";
    int64_t counted = 0;
    int64_t nonempty = 0;
    for (const HistogramCell& cell : h.cells()) {
      counted += cell.count;
      nonempty += cell.count > 0 ? 1 : 0;
      if (cell.count > 0) {
        // The value must actually satisfy the cell's own bounds.
        EXPECT_GE(3.0, cell.lower);
        EXPECT_TRUE(3.0 < cell.upper || &cell == &h.cells().back());
      }
    }
    EXPECT_EQ(counted, 10) << cells << " cells";
    EXPECT_EQ(nonempty, 1) << cells << " cells";
  }
}

TEST(HistogramDeathTest, RejectsBadConstruction) {
  EXPECT_DEATH(Histogram(0.0, 1.0, 0), "CHECK failed");
  EXPECT_DEATH(Histogram(2.0, 1.0, 3), "CHECK failed");
}

}  // namespace
}  // namespace stats
}  // namespace perfeval
