#include "stats/tdist.h"

#include <gtest/gtest.h>

namespace perfeval {
namespace stats {
namespace {

TEST(NormalTest, CdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(NormalCdf(-1.959963985), 0.025, 1e-6);
  EXPECT_NEAR(NormalCdf(1.0), 0.8413447461, 1e-8);
}

TEST(NormalTest, QuantileInvertsCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-9) << "p=" << p;
  }
}

TEST(NormalTest, QuantileKnownValues) {
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(NormalQuantile(0.95), 1.644853627, 1e-6);
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-9);
}

TEST(IncompleteBetaTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBetaTest, SymmetryIdentity) {
  // I_x(a, b) = 1 - I_{1-x}(b, a).
  for (double x : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(2.5, 4.0, x),
                1.0 - RegularizedIncompleteBeta(4.0, 2.5, 1.0 - x), 1e-10);
  }
}

TEST(IncompleteBetaTest, UniformCase) {
  // I_x(1, 1) = x.
  for (double x : {0.2, 0.5, 0.8}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, x), x, 1e-10);
  }
}

TEST(StudentTTest, CdfSymmetry) {
  for (double t : {0.5, 1.0, 2.0, 5.0}) {
    for (double df : {1.0, 5.0, 30.0}) {
      EXPECT_NEAR(StudentTCdf(t, df) + StudentTCdf(-t, df), 1.0, 1e-10);
    }
  }
}

TEST(StudentTTest, CdfAtZeroIsHalf) {
  EXPECT_NEAR(StudentTCdf(0.0, 7.0), 0.5, 1e-12);
}

TEST(StudentTTest, KnownCriticalValues) {
  // Standard t-table two-sided 95% critical values.
  EXPECT_NEAR(TwoSidedTCritical(0.95, 1), 12.706, 0.01);
  EXPECT_NEAR(TwoSidedTCritical(0.95, 2), 4.303, 0.005);
  EXPECT_NEAR(TwoSidedTCritical(0.95, 5), 2.571, 0.005);
  EXPECT_NEAR(TwoSidedTCritical(0.95, 10), 2.228, 0.005);
  EXPECT_NEAR(TwoSidedTCritical(0.95, 30), 2.042, 0.005);
  // 99% two-sided.
  EXPECT_NEAR(TwoSidedTCritical(0.99, 10), 3.169, 0.005);
  // 90% two-sided.
  EXPECT_NEAR(TwoSidedTCritical(0.90, 10), 1.812, 0.005);
}

TEST(StudentTTest, ConvergesToNormalForLargeDf) {
  EXPECT_NEAR(TwoSidedTCritical(0.95, 100000), 1.95996, 0.001);
}

TEST(StudentTTest, QuantileInvertsCdf) {
  for (double p : {0.05, 0.25, 0.5, 0.75, 0.95, 0.995}) {
    for (double df : {1.0, 3.0, 12.0, 60.0}) {
      double t = StudentTQuantile(p, df);
      EXPECT_NEAR(StudentTCdf(t, df), p, 1e-8)
          << "p=" << p << " df=" << df;
    }
  }
}

class TCriticalMonotoneTest : public ::testing::TestWithParam<double> {};

TEST_P(TCriticalMonotoneTest, CriticalValueDecreasesWithDf) {
  double confidence = GetParam();
  double previous = TwoSidedTCritical(confidence, 1);
  for (double df = 2; df <= 64; df *= 2) {
    double current = TwoSidedTCritical(confidence, df);
    EXPECT_LT(current, previous) << "df=" << df;
    previous = current;
  }
}

INSTANTIATE_TEST_SUITE_P(Confidences, TCriticalMonotoneTest,
                         ::testing::Values(0.80, 0.90, 0.95, 0.99));

}  // namespace
}  // namespace stats
}  // namespace perfeval
