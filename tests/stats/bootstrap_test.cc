#include "stats/bootstrap.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "stats/descriptive.h"

namespace perfeval {
namespace stats {
namespace {

TEST(BootstrapMeanCI, BracketsTheSampleMean) {
  std::vector<double> samples = {9.0, 10.0, 11.0, 10.5, 9.5, 10.2,
                                 9.8,  10.1, 9.9,  10.4};
  ConfidenceInterval ci = BootstrapMeanCI(samples, 0.95, 7);
  EXPECT_NEAR(ci.mean, 10.04, 1e-9);
  EXPECT_LT(ci.lower, ci.mean);
  EXPECT_GT(ci.upper, ci.mean);
  EXPECT_DOUBLE_EQ(ci.confidence, 0.95);
  // The data spans [9, 11]; resampled means cannot leave that range.
  EXPECT_GE(ci.lower, 9.0);
  EXPECT_LE(ci.upper, 11.0);
}

TEST(BootstrapMeanCI, DeterministicForFixedSeed) {
  // Continuous-valued samples so the resampled-mean distribution has no
  // mass points and distinct seeds land on distinct quantile estimates.
  Pcg32 gen(2024);
  std::vector<double> samples;
  for (int i = 0; i < 30; ++i) {
    samples.push_back(50.0 + gen.NextGaussian() * 10.0);
  }
  ConfidenceInterval a = BootstrapMeanCI(samples, 0.95, 123);
  ConfidenceInterval b = BootstrapMeanCI(samples, 0.95, 123);
  EXPECT_DOUBLE_EQ(a.lower, b.lower);
  EXPECT_DOUBLE_EQ(a.upper, b.upper);
  ConfidenceInterval c = BootstrapMeanCI(samples, 0.95, 124);
  EXPECT_TRUE(c.lower != a.lower || c.upper != a.upper);
}

TEST(BootstrapMeanCI, NarrowsWithMoreData) {
  Pcg32 rng(99);
  std::vector<double> small;
  std::vector<double> large;
  for (int i = 0; i < 200; ++i) {
    double x = 100.0 + rng.NextGaussian() * 5.0;
    if (i < 10) {
      small.push_back(x);
    }
    large.push_back(x);
  }
  ConfidenceInterval narrow = BootstrapMeanCI(large, 0.95, 1);
  ConfidenceInterval wide = BootstrapMeanCI(small, 0.95, 1);
  EXPECT_LT(narrow.HalfWidth(), wide.HalfWidth());
}

TEST(BootstrapMeanCI, HigherConfidenceIsWider) {
  std::vector<double> samples = {3.0, 5.0, 4.0, 6.0, 2.0, 5.5, 3.5, 4.5};
  ConfidenceInterval c90 = BootstrapMeanCI(samples, 0.90, 5);
  ConfidenceInterval c99 = BootstrapMeanCI(samples, 0.99, 5);
  EXPECT_LE(c99.lower, c90.lower);
  EXPECT_GE(c99.upper, c90.upper);
}

TEST(BootstrapRatioCI, PlugInRatioAndCoverage) {
  // Numerator ~ 20, denominator ~ 10: the speedup is ~2x and the interval
  // should comfortably exclude 1 (a real effect, per Kalibera & Jones the
  // thing a reported speedup must demonstrate).
  std::vector<double> num = {19.0, 20.0, 21.0, 20.5, 19.5, 20.2};
  std::vector<double> den = {9.8, 10.1, 10.0, 9.9, 10.2, 10.0};
  ConfidenceInterval ci = BootstrapRatioCI(num, den, 0.95, 11);
  EXPECT_NEAR(ci.mean, 2.0, 0.05);
  EXPECT_GT(ci.lower, 1.0);
  EXPECT_LT(ci.lower, ci.upper);
  EXPECT_TRUE(ci.Contains(ci.mean));
}

TEST(BootstrapRatioCI, DeterministicForFixedSeed) {
  std::vector<double> num = {4.0, 5.0, 6.0};
  std::vector<double> den = {2.0, 2.5, 3.0};
  ConfidenceInterval a = BootstrapRatioCI(num, den, 0.95, 77);
  ConfidenceInterval b = BootstrapRatioCI(num, den, 0.95, 77);
  EXPECT_DOUBLE_EQ(a.lower, b.lower);
  EXPECT_DOUBLE_EQ(a.upper, b.upper);
}

TEST(BootstrapRatioCI, NoEffectIntervalContainsOne) {
  std::vector<double> num = {10.0, 10.4, 9.6, 10.2, 9.8, 10.1, 9.9, 10.0};
  std::vector<double> den = {10.1, 9.9, 10.3, 9.7, 10.0, 10.2, 9.8, 10.0};
  ConfidenceInterval ci = BootstrapRatioCI(num, den, 0.95, 3);
  EXPECT_TRUE(ci.Contains(1.0));
}

TEST(BootstrapPercentileCI, BracketsTheTruePercentile) {
  // 1..1000: the true p90 is 900ish; the CI of a 1000-point sample should
  // be tight around it and must contain the sample percentile itself.
  std::vector<double> xs;
  for (int i = 1; i <= 1000; ++i) {
    xs.push_back(static_cast<double>(i));
  }
  ConfidenceInterval ci = BootstrapPercentileCI(xs, 90.0, 0.95, 5);
  EXPECT_NEAR(ci.mean, Percentile(xs, 90.0), 20.0);
  EXPECT_LE(ci.lower, Percentile(xs, 90.0));
  EXPECT_GE(ci.upper, Percentile(xs, 90.0) - 30.0);
  EXPECT_LT(ci.upper - ci.lower, 100.0);  // tight at n=1000.
  EXPECT_DOUBLE_EQ(ci.confidence, 0.95);
}

TEST(BootstrapPercentileCI, DeterministicForFixedSeed) {
  std::vector<double> xs = {3.0, 1.0, 4.0, 1.5, 9.0, 2.6, 5.3, 5.9};
  ConfidenceInterval a = BootstrapPercentileCI(xs, 50.0, 0.95, 21);
  ConfidenceInterval b = BootstrapPercentileCI(xs, 50.0, 0.95, 21);
  EXPECT_DOUBLE_EQ(a.lower, b.lower);
  EXPECT_DOUBLE_EQ(a.upper, b.upper);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
}

TEST(BootstrapPercentileCI, AllEqualSamplesCollapseToPoint) {
  std::vector<double> xs(32, 5.0);
  ConfidenceInterval ci = BootstrapPercentileCI(xs, 99.0, 0.95, 1);
  EXPECT_DOUBLE_EQ(ci.lower, 5.0);
  EXPECT_DOUBLE_EQ(ci.upper, 5.0);
}

TEST(BootstrapPercentileCIDeathTest, RejectsDegenerateInputs) {
  EXPECT_DEATH(BootstrapPercentileCI({1.0}, 50.0, 0.95, 1),
               "CHECK failed");
  EXPECT_DEATH(BootstrapPercentileCI({1.0, 2.0}, 101.0, 0.95, 1),
               "CHECK failed");
  EXPECT_DEATH(BootstrapPercentileCI({1.0, 2.0}, 50.0, 1.5, 1),
               "CHECK failed");
}

}  // namespace
}  // namespace stats
}  // namespace perfeval
