#include "stats/regression.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace perfeval {
namespace stats {
namespace {

TEST(RegressionTest, ExactLineRecoveredExactly) {
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> y;
  for (double v : x) {
    y.push_back(3.0 + 2.5 * v);
  }
  LinearFit fit = FitLinear(x, y);
  EXPECT_NEAR(fit.slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.residual_stderr, 0.0, 1e-9);
  EXPECT_NEAR(fit.Predict(10.0), 28.0, 1e-9);
}

TEST(RegressionTest, NoisyLineRecoveredApproximately) {
  Pcg32 rng(3);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    double xi = rng.NextDoubleInRange(0.0, 100.0);
    x.push_back(xi);
    y.push_back(10.0 + 0.7 * xi + rng.NextGaussian() * 2.0);
  }
  LinearFit fit = FitLinear(x, y);
  EXPECT_NEAR(fit.slope, 0.7, 0.03);
  EXPECT_NEAR(fit.intercept, 10.0, 1.5);
  EXPECT_GT(fit.r_squared, 0.98);
  EXPECT_TRUE(fit.slope_ci.Contains(0.7));
  EXPECT_NEAR(fit.residual_stderr, 2.0, 0.4);
}

TEST(RegressionTest, SlopeCiContainsTruthMostOfTheTime) {
  Pcg32 rng(11);
  int covered = 0;
  const int kTrials = 400;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<double> x;
    std::vector<double> y;
    for (int i = 0; i < 15; ++i) {
      double xi = static_cast<double>(i);
      x.push_back(xi);
      y.push_back(1.0 + 0.5 * xi + rng.NextGaussian());
    }
    covered += FitLinear(x, y).slope_ci.Contains(0.5) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(covered) / kTrials, 0.95, 0.04);
}

TEST(RegressionTest, FlatDataHasZeroSlope) {
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> y = {7.0, 7.0, 7.0, 7.0};
  LinearFit fit = FitLinear(x, y);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(fit.r_squared, 1.0);  // zero variance fully "explained".
}

TEST(RegressionTest, UncorrelatedDataLowRSquared) {
  Pcg32 rng(17);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 300; ++i) {
    x.push_back(rng.NextDouble());
    y.push_back(rng.NextDouble());
  }
  LinearFit fit = FitLinear(x, y);
  EXPECT_LT(fit.r_squared, 0.05);
  EXPECT_TRUE(fit.slope_ci.Contains(0.0));
}

TEST(RegressionTest, ToStringShowsModel) {
  LinearFit fit = FitLinear({1, 2, 3}, {2, 4, 6});
  EXPECT_NE(fit.ToString().find("r^2"), std::string::npos);
}

TEST(RegressionDeathTest, DegenerateInputs) {
  EXPECT_DEATH(FitLinear({1.0, 2.0}, {1.0, 2.0}), ">= 3 points");
  EXPECT_DEATH(FitLinear({1.0, 1.0, 1.0}, {1.0, 2.0, 3.0}), "constant");
  EXPECT_DEATH(FitLinear({1.0, 2.0, 3.0}, {1.0, 2.0}), "CHECK failed");
}

}  // namespace
}  // namespace stats
}  // namespace perfeval
