#include "stats/anova.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace perfeval {
namespace stats {
namespace {

TEST(FCdfTest, KnownValues) {
  // F(1, 10): P(F <= 4.96) ~ 0.95 (t(10) critical 2.228 squared).
  EXPECT_NEAR(FCdf(4.9646, 1, 10), 0.95, 0.001);
  // F(2, 10): 95th percentile is 4.103.
  EXPECT_NEAR(FCdf(4.103, 2, 10), 0.95, 0.001);
  EXPECT_DOUBLE_EQ(FCdf(0.0, 3, 5), 0.0);
  EXPECT_DOUBLE_EQ(FCdf(-1.0, 3, 5), 0.0);
}

TEST(FCdfTest, MonotoneInF) {
  double previous = 0.0;
  for (double f = 0.1; f < 20.0; f += 0.5) {
    double current = FCdf(f, 3, 12);
    EXPECT_GE(current, previous);
    previous = current;
  }
  EXPECT_GT(previous, 0.99);
}

TEST(OneWayAnovaTest, ClearlyDifferentGroups) {
  std::vector<std::vector<double>> groups = {
      {10.0, 10.5, 9.5, 10.2},
      {20.0, 20.5, 19.5, 20.2},
      {30.0, 30.5, 29.5, 30.2}};
  AnovaTable table = OneWayAnova(groups);
  const AnovaRow* between = table.Find("between");
  ASSERT_NE(between, nullptr);
  EXPECT_TRUE(between->significant);
  EXPECT_LT(between->p_value, 1e-6);
  EXPECT_EQ(between->degrees_of_freedom, 2.0);
  const AnovaRow* error = table.Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->degrees_of_freedom, 9.0);
}

TEST(OneWayAnovaTest, IdenticalGroupsNotSignificant) {
  Pcg32 rng(4);
  std::vector<std::vector<double>> groups(3);
  for (auto& group : groups) {
    for (int i = 0; i < 8; ++i) {
      group.push_back(50.0 + rng.NextGaussian());
    }
  }
  AnovaTable table = OneWayAnova(groups);
  // Same distribution: usually not significant (this seed is not).
  EXPECT_FALSE(table.Find("between")->significant);
  EXPECT_GT(table.Find("between")->p_value, 0.05);
}

TEST(OneWayAnovaTest, SumOfSquaresDecomposes) {
  std::vector<std::vector<double>> groups = {{1.0, 2.0, 3.0},
                                             {4.0, 6.0, 8.0}};
  AnovaTable table = OneWayAnova(groups);
  EXPECT_NEAR(table.Find("between")->sum_of_squares +
                  table.Find("error")->sum_of_squares,
              table.Find("total")->sum_of_squares, 1e-9);
}

TEST(OneWayAnovaTest, FalsePositiveRateNearAlpha) {
  // Under the null, "significant at alpha=0.05" should fire ~5% of the
  // time — the defining property of the test.
  Pcg32 rng(9);
  int significant = 0;
  const int kTrials = 1000;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<std::vector<double>> groups(2);
    for (auto& group : groups) {
      for (int i = 0; i < 6; ++i) {
        group.push_back(rng.NextGaussian());
      }
    }
    significant += OneWayAnova(groups).Find("between")->significant;
  }
  double rate = static_cast<double>(significant) / kTrials;
  EXPECT_NEAR(rate, 0.05, 0.025);
}

TEST(OneWayAnovaTest, ZeroWithinVariance) {
  std::vector<std::vector<double>> groups = {{5.0, 5.0}, {7.0, 7.0}};
  AnovaTable table = OneWayAnova(groups);
  EXPECT_TRUE(table.Find("between")->significant);
  EXPECT_DOUBLE_EQ(table.Find("between")->p_value, 0.0);
}

TEST(OneWayAnovaTest, ToStringHasHeaderAndStar) {
  std::vector<std::vector<double>> groups = {{1.0, 1.1}, {9.0, 9.1}};
  std::string text = OneWayAnova(groups).ToString();
  EXPECT_NE(text.find("source"), std::string::npos);
  EXPECT_NE(text.find("*"), std::string::npos);
}

TEST(OneWayAnovaDeathTest, RejectsDegenerateInput) {
  EXPECT_DEATH(OneWayAnova({{1.0, 2.0}}), "CHECK failed");
  EXPECT_DEATH(OneWayAnova({{1.0, 2.0}, {1.0}}), ">= 2 observations");
}

}  // namespace
}  // namespace stats
}  // namespace perfeval
