#include "stats/descriptive.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/random.h"

namespace perfeval {
namespace stats {
namespace {

TEST(DescriptiveTest, MeanAndSum) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Sum(xs), 10.0);
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
}

TEST(DescriptiveTest, VarianceUsesBesselCorrection) {
  std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Population variance is 4; sample variance is 32/7.
  EXPECT_NEAR(Variance(xs), 32.0 / 7.0, 1e-12);
}

TEST(DescriptiveTest, StdDevIsRootOfVariance) {
  std::vector<double> xs = {1.0, 3.0};
  EXPECT_NEAR(StdDev(xs), std::sqrt(2.0), 1e-12);
}

TEST(DescriptiveTest, ConstantSampleHasZeroVariance) {
  std::vector<double> xs = {5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(Variance(xs), 0.0);
}

TEST(DescriptiveTest, MinMaxMedian) {
  std::vector<double> xs = {9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(Min(xs), 1.0);
  EXPECT_DOUBLE_EQ(Max(xs), 9.0);
  EXPECT_DOUBLE_EQ(Median(xs), 5.0);
}

TEST(DescriptiveTest, MedianOfEvenCountAverages) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 10.0};
  EXPECT_DOUBLE_EQ(Median(xs), 2.5);
}

TEST(DescriptiveTest, PercentileEndpoints) {
  std::vector<double> xs = {10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100.0), 30.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 20.0);
}

TEST(DescriptiveTest, PercentileInterpolates) {
  std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 25.0), 2.5);
}

TEST(DescriptiveTest, GeometricMeanOfRatios) {
  // gm(2, 8) = 4; the right mean for normalized ratios.
  EXPECT_NEAR(GeometricMean({2.0, 8.0}), 4.0, 1e-12);
  // gm(x, 1/x) = 1: a speedup and its inverse cancel.
  EXPECT_NEAR(GeometricMean({3.0, 1.0 / 3.0}), 1.0, 1e-12);
}

TEST(DescriptiveTest, HarmonicMeanOfRates) {
  // Classic: half the work at 30, half at 60 -> harmonic mean 40.
  EXPECT_NEAR(HarmonicMean({30.0, 60.0}), 40.0, 1e-12);
}

TEST(DescriptiveTest, MeanInequalityChain) {
  // harmonic <= geometric <= arithmetic for positive samples.
  Pcg32 rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> xs;
    for (int i = 0; i < 20; ++i) {
      xs.push_back(rng.NextDoubleInRange(0.1, 100.0));
    }
    double h = HarmonicMean(xs);
    double g = GeometricMean(xs);
    double a = Mean(xs);
    EXPECT_LE(h, g + 1e-9);
    EXPECT_LE(g, a + 1e-9);
  }
}

TEST(DescriptiveTest, SummaryAgreesWithPieces) {
  std::vector<double> xs = {4.0, 1.0, 7.0, 2.0};
  Summary s = Summarize(xs);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, Mean(xs));
  EXPECT_DOUBLE_EQ(s.stddev, StdDev(xs));
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_FALSE(s.ToString().empty());
}

TEST(DescriptiveTest, CoefficientOfVariation) {
  std::vector<double> xs = {90.0, 110.0};
  EXPECT_NEAR(CoefficientOfVariation(xs), StdDev(xs) / 100.0, 1e-12);
}

TEST(DescriptiveDeathTest, EmptySampleAborts) {
  EXPECT_DEATH(Mean({}), "CHECK failed");
  EXPECT_DEATH(Min({}), "CHECK failed");
}

TEST(DescriptiveDeathTest, VarianceNeedsTwo) {
  EXPECT_DEATH(Variance({1.0}), "CHECK failed");
}

TEST(DescriptiveDeathTest, GeometricMeanRejectsNonPositive) {
  EXPECT_DEATH(GeometricMean({1.0, 0.0}), "positive");
}

TEST(DescriptiveTest, PercentileSingleSampleIsThatSample) {
  for (double p : {0.0, 37.0, 50.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(Percentile({42.0}, p), 42.0);
  }
}

TEST(DescriptiveTest, PercentileAllEqualSamples) {
  std::vector<double> xs(100, 7.5);
  for (double p : {0.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(Percentile(xs, p), 7.5);
  }
}

TEST(DescriptiveDeathTest, PercentileRejectsNaN) {
  // A NaN sorts unpredictably, so a percentile over it is whatever the
  // sort happened to do — abort instead of returning garbage.
  double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DEATH(Percentile({1.0, nan, 3.0}, 50.0), "NaN");
}

TEST(DescriptiveDeathTest, PercentileRejectsOutOfRangeP) {
  EXPECT_DEATH(Percentile({1.0, 2.0}, -1.0), "CHECK failed");
  EXPECT_DEATH(Percentile({1.0, 2.0}, 101.0), "CHECK failed");
}

}  // namespace
}  // namespace stats
}  // namespace perfeval
